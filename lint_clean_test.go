// The static-analysis invariants are enforced in the ordinary test run:
// if this test fails, either fix the finding or annotate it with a
// reasoned //lint:ignore (see README.md "Static analysis &
// reproducibility invariants").
package vdcpower_test

import (
	"testing"

	"vdcpower/internal/lint"
)

func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loading the whole module from source is slow; run without -short")
	}
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	findings := mod.Analyze(pkgs, lint.Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d findings in %d packages; run `go run ./cmd/vdclint ./...` locally", len(findings), len(pkgs))
	}
}
