// Package vdcpower reproduces "Power Optimization with Performance
// Assurance for Multi-tier Applications in Virtualized Data Centers"
// (Wang & Wang, ICPP 2010): a two-level power management solution that
// combines per-application MIMO model-predictive response time control
// (CPU allocation + DVFS, short time scale) with data-center-wide
// power-aware VM consolidation (Minimum Slack packing, long time scale).
//
// The library lives under internal/ (see DESIGN.md for the module map);
// runnable entry points are under cmd/ and examples/. The benchmarks in
// bench_test.go regenerate every figure of the paper's evaluation
// section; EXPERIMENTS.md records paper-versus-measured outcomes.
package vdcpower
