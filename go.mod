module vdcpower

go 1.23
