module vdcpower

go 1.22
