// Benchmarks regenerating every figure of the paper's evaluation section
// (Section VII) at reduced scale, plus the DESIGN.md ablations, the
// telemetry-overhead pair, the chaos profile and the vdclint pass.
//
// Every benchmark here is a thin adapter over the internal/bench
// scenario registry — the same registry cmd/vdcbench measures for the
// perf-regression gate — so `go test -bench` and vdcbench time identical
// work. Each adapter reports its scenario's headline metrics via
// b.ReportMetric, so `go test -bench=.` doubles as a results table:
//
//	Fig. 2  ms-mean-abs-err   distance of every app's mean p90 from 1000 ms
//	Fig. 3  surge power rise  watts added while absorbing the surge
//	Fig. 4  ms-mean-abs-err   across concurrency levels
//	Fig. 5  ms-mean-abs-err   across set points
//	Fig. 6  saving-pct        IPAC energy saving vs pMapper
package vdcpower_test

import (
	"testing"

	"vdcpower/internal/bench"
)

// benchEnv carries the full-scale shared fixtures (the Fig. 6 trace is
// generated once per `go test` process, never inside a timed loop).
var benchEnv = bench.NewEnv(bench.ScaleFull)

// benchRegistry is built once; scenarios are stateless closures.
var benchRegistry = bench.Default()

// benchScenario runs the named registry scenario as a Go benchmark:
// Prepare outside the timer, allocation tracking on, one scenario run
// per iteration, headline metrics reported from the final iteration.
func benchScenario(b *testing.B, name string) {
	b.Helper()
	sc, ok := benchRegistry.Get(name)
	if !ok {
		b.Fatalf("scenario %q not in the bench registry", name)
	}
	if sc.Prepare != nil {
		if err := sc.Prepare(benchEnv); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last bench.Metrics
	for i := 0; i < b.N; i++ {
		m, err := sc.Run(benchEnv)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	for _, k := range last.Keys() {
		b.ReportMetric(last[k], k)
	}
}

func BenchmarkFig2ResponseTimeAllApps(b *testing.B) { benchScenario(b, "fig2/response-time") }

func BenchmarkFig3Surge(b *testing.B) { benchScenario(b, "fig3/surge") }

func BenchmarkFig4ConcurrencySweep(b *testing.B) { benchScenario(b, "fig4/concurrency-sweep") }

func BenchmarkFig5SetpointSweep(b *testing.B) { benchScenario(b, "fig5/setpoint-sweep") }

func BenchmarkFig6EnergyPerVM(b *testing.B) { benchScenario(b, "fig6/energy-per-vm") }

func BenchmarkFig6TelemetryOff(b *testing.B) { benchScenario(b, "fig6/telemetry-off") }

func BenchmarkFig6TelemetryOn(b *testing.B) { benchScenario(b, "fig6/telemetry-on") }

func BenchmarkFig6ObsOn(b *testing.B) { benchScenario(b, "fig6/obs-on") }

func BenchmarkChaos(b *testing.B) { benchScenario(b, "fig6/chaos") }

func BenchmarkAblationDVFS(b *testing.B) { benchScenario(b, "ablation/dvfs") }

func BenchmarkAblationWatchdog(b *testing.B) { benchScenario(b, "ablation/watchdog") }

func BenchmarkAblationMigrationCost(b *testing.B) { benchScenario(b, "ablation/migration-cost") }

func BenchmarkAblationEconomicMPC(b *testing.B) { benchScenario(b, "ablation/economic-mpc") }

func BenchmarkMPCSolve(b *testing.B) { benchScenario(b, "mpc/solve") }

func BenchmarkQueueingMVA(b *testing.B) { benchScenario(b, "queueing/mva") }

func BenchmarkPackingMinSlack(b *testing.B) { benchScenario(b, "packing/minslack") }

func BenchmarkPackingFFD(b *testing.B) { benchScenario(b, "packing/ffd") }

func BenchmarkVdclint(b *testing.B) { benchScenario(b, "lint/module") }

func BenchmarkGuardWedge(b *testing.B) { benchScenario(b, "guard/wedge") }
