// Benchmarks regenerating every figure of the paper's evaluation section
// (Section VII) at reduced scale, plus the ablations called out in
// DESIGN.md. Each benchmark reports the headline quantity of its figure
// via b.ReportMetric so `go test -bench=.` doubles as a results table:
//
//	Fig. 2  ms-mean-abs-err   distance of every app's mean p90 from 1000 ms
//	Fig. 3  surge power rise  watts added while absorbing the surge
//	Fig. 4  ms-mean-abs-err   across concurrency levels
//	Fig. 5  ms-mean-abs-err   across set points
//	Fig. 6  saving-pct        IPAC energy saving vs pMapper
package vdcpower_test

import (
	"math"
	"testing"

	"vdcpower/internal/dcsim"
	"vdcpower/internal/lint"
	"vdcpower/internal/mat"
	"vdcpower/internal/mpc"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/testbed"
	"vdcpower/internal/workload"
)

// benchConfig is the reduced-scale testbed configuration shared by the
// figure benchmarks: 4 apps on 2 servers instead of 8 on 4 keeps each
// iteration under a second without changing the control structure.
func benchConfig() testbed.Config {
	cfg := testbed.DefaultConfig()
	cfg.NumApps = 4
	cfg.NumServers = 2
	cfg.IdentPeriods = 80
	cfg.IdentWarmupSec = 20
	return cfg
}

// benchTrace builds the shared Fig. 6 trace at reduced scale.
func benchTrace(b *testing.B) *workload.Trace {
	b.Helper()
	tr, err := workload.Generate(workload.GenConfig{NumVMs: 300, Days: 2, StepsPerHour: 4, Seed: 2008})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkFig2ResponseTimeAllApps regenerates Figure 2: all applications
// held at the 1000 ms set point.
func BenchmarkFig2ResponseTimeAllApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := testbed.Fig2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += math.Abs(r.Mean - 1.0)
		}
		b.ReportMetric(1000*sum/float64(len(rows)), "ms-mean-abs-err")
	}
}

// BenchmarkFig3aWorkloadStep regenerates Figure 3(a): the stressed
// application's response time before/during/after the surge.
func BenchmarkFig3aWorkloadStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Recovery error: distance from the set point late in the surge.
		var late []float64
		for _, p := range res.ResponseTime {
			if p.Time >= 900 && p.Time < 1200 {
				late = append(late, p.Value)
			}
		}
		b.ReportMetric(1000*math.Abs(stats.Mean(late)-1.0), "ms-recovery-err")
	}
}

// BenchmarkFig3bClusterPower regenerates Figure 3(b): the cluster power
// rise while the surge is being absorbed.
func BenchmarkFig3bClusterPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		window := func(lo, hi float64) []float64 {
			var xs []float64
			for _, p := range res.Power {
				if p.Time >= lo && p.Time < hi {
					xs = append(xs, p.Value)
				}
			}
			return xs
		}
		rise := stats.Mean(window(800, 1200)) - stats.Mean(window(300, 600))
		b.ReportMetric(rise, "surge-power-rise-W")
	}
}

// BenchmarkFig4ConcurrencySweep regenerates Figure 4: set-point tracking
// across concurrency levels the model was not identified at.
func BenchmarkFig4ConcurrencySweep(b *testing.B) {
	levels := []int{30, 50, 80}
	for i := 0; i < b.N; i++ {
		rows, err := testbed.Fig4(benchConfig(), levels)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += math.Abs(r.Mean - 1.0)
		}
		b.ReportMetric(1000*sum/float64(len(rows)), "ms-mean-abs-err")
	}
}

// BenchmarkFig5SetpointSweep regenerates Figure 5: tracking across
// set points from 600 to 1300 ms.
func BenchmarkFig5SetpointSweep(b *testing.B) {
	sps := []float64{0.6, 0.9, 1.3}
	for i := 0; i < b.N; i++ {
		rows, err := testbed.Fig5(benchConfig(), sps)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for j, r := range rows {
			sum += math.Abs(r.Mean - sps[j])
		}
		b.ReportMetric(1000*sum/float64(len(sps)), "ms-mean-abs-err")
	}
}

// BenchmarkFig6EnergyPerVM regenerates Figure 6 at reduced scale: energy
// per VM for IPAC vs pMapper across data-center sizes.
func BenchmarkFig6EnergyPerVM(b *testing.B) {
	tr := benchTrace(b)
	sizes := []int{60, 300}
	for i := 0; i < b.N; i++ {
		points, err := dcsim.Fig6(tr, sizes, []func() optimizer.Consolidator{
			func() optimizer.Consolidator { return optimizer.NewIPAC() },
			func() optimizer.Consolidator { return optimizer.NewPMapper() },
		})
		if err != nil {
			b.Fatal(err)
		}
		saving := 0.0
		for _, p := range points {
			saving += 1 - p.PerVMWh["IPAC"]/p.PerVMWh["pMapper"]
		}
		b.ReportMetric(100*saving/float64(len(points)), "saving-pct")
	}
}

// fig6Subset runs one IPAC Figure 6 point — the single-run unit of the
// sweep — with tracing either disabled (nil track, the shipped default)
// or enabled, so the Off/On pair below measures the telemetry overhead.
func fig6Subset(b *testing.B, tr *workload.Trace, tk *telemetry.Track) {
	b.Helper()
	cfg := dcsim.DefaultConfig(tr, 150, optimizer.NewIPAC())
	cfg.Telemetry = tk
	if _, err := dcsim.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig6TelemetryOff is the baseline for the nil-safe opt-out
// claim: the same run as BenchmarkFig6TelemetryOn with no recorder
// attached. The two must agree within run-to-run noise (see
// EXPERIMENTS.md "Telemetry overhead").
func BenchmarkFig6TelemetryOff(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig6Subset(b, tr, nil)
	}
}

// BenchmarkFig6TelemetryOn runs the same Figure 6 point with a span
// track recording every consolidation pass, B&B search, and DVFS sweep.
func BenchmarkFig6TelemetryOn(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracer := telemetry.New(nil, 0)
		fig6Subset(b, tr, tracer.Track("main"))
	}
}

// BenchmarkAblationDVFS isolates the DVFS contribution to IPAC's saving
// (ablation A of DESIGN.md).
func BenchmarkAblationDVFS(b *testing.B) {
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		with, err := dcsim.Run(dcsim.DefaultConfig(tr, 150, optimizer.NewIPAC()))
		if err != nil {
			b.Fatal(err)
		}
		without, err := dcsim.Run(dcsim.DefaultConfig(tr, 150, optimizer.WithoutDVFS{Inner: optimizer.NewIPAC()}))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-with.EnergyPerVMWh/without.EnergyPerVMWh), "dvfs-saving-pct")
	}
}

// BenchmarkAblationPacking compares Minimum Slack against FFD packing
// quality on identical random single-bin instances (ablation B).
func BenchmarkAblationPacking(b *testing.B) {
	// Deterministic awkward sizes: FFD grabs the 8 first and strands
	// capacity; the optimal 12-GHz packing is 7+5 (plus small change).
	sizes := []float64{8, 7, 5, 4.5, 2.9, 1.3, 0.9, 0.6}
	items := make([]packing.Item, len(sizes))
	for i := range items {
		items[i] = packing.Item{ID: string(rune('a' + i)), CPU: sizes[i], Mem: 1}
	}
	cons := packing.VectorConstraint{}
	cfg := packing.DefaultMinSlackConfig()
	cfg.Epsilon = 0
	totalGain := 0.0
	for i := 0; i < b.N; i++ {
		msBin := &packing.Bin{ID: "ms", CPUCap: 12, MemCap: 100}
		res := packing.MinimumSlack(msBin, items, cons, cfg)
		ffdBin := &packing.Bin{ID: "ffd", CPUCap: 12, MemCap: 100}
		packing.FirstFitDecreasing(items, []*packing.Bin{ffdBin}, cons)
		totalGain += ffdBin.Slack() - res.Slack
	}
	b.ReportMetric(totalGain/float64(b.N), "slack-gain-GHz")
}

// BenchmarkAblationWatchdog measures how the on-demand overload reliever
// (paper reference [25]) trades migrations for fewer SLA-violating
// server-steps (ablation D).
func BenchmarkAblationWatchdog(b *testing.B) {
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		plain, err := dcsim.Run(dcsim.DefaultConfig(tr, 150, optimizer.NewIPAC()))
		if err != nil {
			b.Fatal(err)
		}
		cfg := dcsim.DefaultConfig(tr, 150, optimizer.NewIPAC())
		cfg.WatchdogEverySteps = 1
		wd, err := dcsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(plain.OverloadSteps-wd.OverloadSteps), "overload-steps-avoided")
		b.ReportMetric(float64(wd.WatchdogMoves), "watchdog-moves")
	}
}

// BenchmarkAblationEconomicMPC compares the paper's pure-tracking cost
// (Eq. 2) against the level-penalty extension: same SLA, less total CPU.
func BenchmarkAblationEconomicMPC(b *testing.B) {
	model := &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.4},
		B:     []mat.Vec{{-0.5, -0.4}, {-0.15, -0.1}},
		Gamma: 3.0,
	}
	run := func(levelPenalty float64) float64 {
		cfg := mpc.Config{
			Model: model, P: 8, M: 2, Q: 1,
			R:           mat.Vec{0.1, 0.1},
			TrefPeriods: 2, Setpoint: 1.0,
			CMin: mat.Vec{0.1, 0.1}, CMax: mat.Vec{4, 4},
			LevelPenalty: levelPenalty,
		}
		ctl, err := mpc.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Start over-provisioned: the pure-tracking cost descends only
		// until the set point is met and parks; the economic cost keeps
		// drifting to the cheapest feasible allocation.
		tHist := []float64{0.3, 0.3}
		cur := mat.Vec{3, 3}
		cHist := []mat.Vec{cur.Clone(), cur.Clone()}
		for k := 0; k < 100; k++ {
			out, err := ctl.Compute(tHist, cHist)
			if err != nil {
				b.Fatal(err)
			}
			cur = cur.Add(out.Delta)
			cHist = append([]mat.Vec{cur.Clone()}, cHist...)
			if len(cHist) > 3 {
				cHist = cHist[:3]
			}
			y := model.Predict(tHist, cHist)
			tHist = append([]float64{y}, tHist...)
			if len(tHist) > 2 {
				tHist = tHist[:2]
			}
		}
		return cur[0] + cur[1]
	}
	for i := 0; i < b.N; i++ {
		plain := run(0)
		econ := run(0.01)
		b.ReportMetric(plain-econ, "GHz-saved")
	}
}

// BenchmarkAblationMigrationCost measures how a bandwidth-priced cost
// policy trades migrations for energy (ablation C).
func BenchmarkAblationMigrationCost(b *testing.B) {
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		free, err := dcsim.Run(dcsim.DefaultConfig(tr, 150, optimizer.NewIPAC()))
		if err != nil {
			b.Fatal(err)
		}
		priced := optimizer.NewIPAC()
		priced.Policy = optimizer.BandwidthPriced{WattsPerGB: 15}
		pr, err := dcsim.Run(dcsim.DefaultConfig(tr, 150, priced))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(free.Migrations-pr.Migrations), "migrations-avoided")
		b.ReportMetric(100*(pr.EnergyPerVMWh/free.EnergyPerVMWh-1), "energy-cost-pct")
	}
}

// BenchmarkVdclint tracks the cost of the static-analysis pass itself:
// loading and type-checking every package of the module from source and
// running the full analyzer registry (see README.md "Static analysis &
// reproducibility invariants"). The module must be lint-clean, so this
// doubles as an enforcement point in the perf trajectory.
func BenchmarkVdclint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mod, err := lint.LoadModule(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := mod.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		findings := mod.Analyze(pkgs, lint.Analyzers())
		if len(findings) != 0 {
			b.Fatalf("module is not lint-clean: %v", findings)
		}
		b.ReportMetric(float64(len(pkgs)), "packages")
	}
}
