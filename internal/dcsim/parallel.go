package dcsim

import (
	"fmt"
	"runtime"
	"sync"

	"vdcpower/internal/fault"
	"vdcpower/internal/obs"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/workload"
)

// SweepOptions tunes Fig6Sweep beyond the plain worker count.
type SweepOptions struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Tracer, when non-nil, gives each worker its own span track
	// ("worker-00", "worker-01", ...) recording one "dcsim.job" span per
	// run with the run's internal spans nested inside; each job is
	// rebased onto the end of the worker's previous job so the track's
	// timeline advances monotonically even though every run restarts its
	// own clock at zero. Which worker executes which job reflects real
	// scheduling, so parallel sweep traces are not byte-reproducible
	// across runs — single-run serial traces are.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, receives every run's counters and gauges.
	Metrics *telemetry.Registry
	// FaultProfile, when non-nil, injects the same fault profile into
	// every run. Each job gets its own Injector (injectors are stateful:
	// stuck sensors, attempt counters), so runs stay isolated and each
	// remains individually reproducible.
	FaultProfile *fault.Profile
	// Obs, when non-nil, aggregates every run's health scorecard: each
	// job observes into its own fresh scorecard (built from Obs.Config(),
	// so the SLO geometry matches) and the per-job scorecards are merged
	// into Obs in deterministic job order after the sweep completes —
	// scheduling cannot perturb the merged result because Merge is
	// commutative and the fold order is fixed anyway.
	Obs *obs.Scorecard
}

// Fig6Parallel computes the same sweep as Fig6 but fans the independent
// (size, policy) runs out over a worker pool — each run is deterministic
// and isolated, so the results are identical to the serial sweep while
// the wall-clock drops by roughly the core count. workers <= 0 selects
// GOMAXPROCS.
func Fig6Parallel(trace *workload.Trace, sizes []int, policies []func() optimizer.Consolidator, workers int) ([]Fig6Point, error) {
	return Fig6Sweep(trace, sizes, policies, SweepOptions{Workers: workers})
}

// Fig6Sweep is Fig6Parallel with observability: the worker pool fan-out
// of the Figure 6 sweep, optionally recording per-worker span tracks and
// publishing run metrics.
func Fig6Sweep(trace *workload.Trace, sizes []int, policies []func() optimizer.Consolidator, opt SweepOptions) ([]Fig6Point, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		sizeIdx, polIdx int
	}
	type outcome struct {
		job
		name  string
		perVM float64
		sc    *obs.Scorecard
		err   error
	}
	jobs := make(chan job)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		tk := opt.Tracer.Track(fmt.Sprintf("worker-%02d", w))
		go func() {
			defer wg.Done()
			for j := range jobs {
				tk.Rebase() // runs reset their clock; keep the track monotonic
				cons := policies[j.polIdx]()
				cfg := DefaultConfig(trace, sizes[j.sizeIdx], cons)
				cfg.Telemetry = tk
				cfg.Metrics = opt.Metrics
				if opt.FaultProfile != nil {
					cfg.Faults = fault.New(*opt.FaultProfile)
				}
				if opt.Obs != nil {
					jc := opt.Obs.Config()
					jc.Label = fmt.Sprintf("%s/%d", cons.Name(), sizes[j.sizeIdx])
					cfg.Obs = obs.New(jc)
				}
				sp := tk.Start("dcsim.job").Int("vms", sizes[j.sizeIdx]).Str("policy", cons.Name())
				res, err := Run(cfg)
				sp.Float("per_vm_wh", res.EnergyPerVMWh).Bool("failed", err != nil).End()
				results <- outcome{job: j, name: cons.Name(), perVM: res.EnergyPerVMWh, sc: cfg.Obs, err: err}
			}
		}()
	}
	go func() {
		for si := range sizes {
			for pi := range policies {
				jobs <- job{sizeIdx: si, polIdx: pi}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	points := make([]Fig6Point, len(sizes))
	for i, n := range sizes {
		points[i] = Fig6Point{NumVMs: n, PerVMWh: map[string]float64{}}
	}
	var firstErr error
	cards := make([]*obs.Scorecard, len(sizes)*len(policies))
	for out := range results {
		if out.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dcsim: size %d policy %d: %w", sizes[out.sizeIdx], out.polIdx, out.err)
			continue
		}
		if out.err == nil {
			points[out.sizeIdx].PerVMWh[out.name] = out.perVM
			cards[out.sizeIdx*len(policies)+out.polIdx] = out.sc
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Fold the per-job scorecards in fixed job order so the aggregate —
	// including the audit ring's record sequence — is independent of
	// which worker finished first.
	if opt.Obs != nil {
		for _, sc := range cards {
			if sc == nil {
				continue
			}
			if err := opt.Obs.Merge(sc); err != nil {
				return nil, fmt.Errorf("dcsim: merging sweep scorecards: %w", err)
			}
		}
	}
	return points, nil
}
