package dcsim

import (
	"fmt"
	"runtime"
	"sync"

	"vdcpower/internal/optimizer"
	"vdcpower/internal/workload"
)

// Fig6Parallel computes the same sweep as Fig6 but fans the independent
// (size, policy) runs out over a worker pool — each run is deterministic
// and isolated, so the results are identical to the serial sweep while
// the wall-clock drops by roughly the core count. workers <= 0 selects
// GOMAXPROCS.
func Fig6Parallel(trace *workload.Trace, sizes []int, policies []func() optimizer.Consolidator, workers int) ([]Fig6Point, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		sizeIdx, polIdx int
	}
	type outcome struct {
		job
		name  string
		perVM float64
		err   error
	}
	jobs := make(chan job)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cons := policies[j.polIdx]()
				res, err := Run(DefaultConfig(trace, sizes[j.sizeIdx], cons))
				results <- outcome{job: j, name: cons.Name(), perVM: res.EnergyPerVMWh, err: err}
			}
		}()
	}
	go func() {
		for si := range sizes {
			for pi := range policies {
				jobs <- job{sizeIdx: si, polIdx: pi}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	points := make([]Fig6Point, len(sizes))
	for i, n := range sizes {
		points[i] = Fig6Point{NumVMs: n, PerVMWh: map[string]float64{}}
	}
	var firstErr error
	for out := range results {
		if out.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dcsim: size %d policy %d: %w", sizes[out.sizeIdx], out.polIdx, out.err)
			continue
		}
		if out.err == nil {
			points[out.sizeIdx].PerVMWh[out.name] = out.perVM
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return points, nil
}
