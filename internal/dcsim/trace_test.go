package dcsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"vdcpower/internal/optimizer"
	"vdcpower/internal/telemetry"
)

// chromeEvent mirrors the fields of one Chrome-trace event the
// assertions need.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// tracedFig6Run executes one serial Figure 6 run with the recorder on
// and returns the exported Chrome trace bytes.
func tracedFig6Run(t *testing.T) []byte {
	t.Helper()
	tr := testTrace(t)
	tracer := telemetry.New(nil, 0)
	cfg := DefaultConfig(tr, 60, optimizer.NewIPAC())
	cfg.WatchdogEverySteps = 4
	cfg.Telemetry = tracer.Track("main")
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tracer.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeTraceRoundTrip exports a Figure 6 subset run and checks the
// trace parses as JSON, contains the consolidation span taxonomy, and
// nests every span inside the run's root span.
func TestChromeTraceRoundTrip(t *testing.T) {
	raw := tracedFig6Run(t)
	var evs []chromeEvent
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	byName := map[string]int{}
	var root *chromeEvent
	for i, e := range evs {
		byName[e.Name]++
		if e.Name == "dcsim.run" {
			root = &evs[i]
		}
	}
	for _, want := range []string{
		"dcsim.run", "dcsim.consolidate", "ipac.consolidate", "ipac.round",
		"optimizer.pac", "packing.minslack", "dcsim.watchdog",
		"arbitrate.dvfs", "arbitrator.pass",
	} {
		if byName[want] == 0 {
			t.Errorf("trace lacks %q spans (have %v)", want, byName)
		}
	}
	if root == nil {
		t.Fatal("no dcsim.run root span")
	}

	// Every complete span lies inside the root span's interval, and its
	// recorded depth is positive (the root is depth 0).
	end := root.TS + root.Dur
	for _, e := range evs {
		if e.Ph != "X" || e.Name == "dcsim.run" {
			continue
		}
		if e.TS < root.TS || e.TS+e.Dur > end+1e-6 {
			t.Fatalf("span %s [%v,%v] escapes the root [%v,%v]", e.Name, e.TS, e.TS+e.Dur, root.TS, end)
		}
		if d, ok := e.Args["depth"].(float64); !ok || d < 1 {
			t.Fatalf("span %s has depth %v, want >= 1", e.Name, e.Args["depth"])
		}
	}
}

// TestChromeTraceSameSeedByteIdentical checks serial traced runs are
// reproducible artifacts: two runs from the same seed export
// byte-identical files.
func TestChromeTraceSameSeedByteIdentical(t *testing.T) {
	a := tracedFig6Run(t)
	b := tracedFig6Run(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed traces differ: %d vs %d bytes", len(a), len(b))
	}
}

// TestSweepWorkerTrackMonotonic funnels a multi-job sweep through one
// worker and checks the worker track's dcsim.job spans advance
// monotonically with real durations. Each run resets its logical clock
// to zero, so without the per-job Rebase the second job would rewind
// the track, stack at ts 0, and clamp its duration.
func TestSweepWorkerTrackMonotonic(t *testing.T) {
	tr := testTrace(t)
	tracer := telemetry.New(nil, 0)
	_, err := Fig6Sweep(tr, []int{30, 60}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
	}, SweepOptions{Workers: 1, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []telemetry.SpanRecord
	for _, r := range tracer.Snapshot() {
		if r.Name == "dcsim.job" && r.Track == "worker-00" {
			jobs = append(jobs, r)
		}
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d dcsim.job spans on worker-00, want 2", len(jobs))
	}
	prevEnd := 0.0
	for i, j := range jobs {
		if j.Dur <= 0 {
			t.Errorf("job %d duration = %v, want > 0", i, j.Dur)
		}
		if j.Start < prevEnd {
			t.Errorf("job %d starts at %v, before the previous job ended at %v", i, j.Start, prevEnd)
		}
		prevEnd = j.Start + j.Dur
	}
}

// TestRunPublishesMetrics checks a run feeds the metrics registry the
// consolidation counters and state gauges.
func TestRunPublishesMetrics(t *testing.T) {
	tr := testTrace(t)
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(tr, 60, optimizer.NewIPAC())
	cfg.WatchdogEverySteps = 4
	cfg.Metrics = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{
		"vdcpower_optimizer_passes_total{policy=\"IPAC\"}",
		"vdcpower_migrations_total",
		"vdcpower_bnb_nodes_total",
		"vdcpower_watchdog_passes_total",
		"vdcpower_power_watts",
		"vdcpower_active_servers",
	} {
		if !bytes.Contains(prom.Bytes(), []byte(m)) {
			t.Errorf("exposition lacks %s:\n%s", m, prom.String())
		}
	}
}
