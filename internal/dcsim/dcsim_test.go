package dcsim

import (
	"testing"

	"vdcpower/internal/optimizer"
	"vdcpower/internal/workload"
)

// testTrace returns a small shared trace (120 VMs, 2 days) for tests.
func testTrace(t testing.TB) *workload.Trace {
	t.Helper()
	tr, err := workload.Generate(workload.GenConfig{NumVMs: 120, Days: 2, StepsPerHour: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunValidation(t *testing.T) {
	tr := testTrace(t)
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil trace accepted")
	}
	cfg := DefaultConfig(tr, 10, nil)
	if _, err := Run(cfg); err == nil {
		t.Fatal("nil consolidator accepted")
	}
	cfg = DefaultConfig(tr, 9999, optimizer.NewIPAC())
	if _, err := Run(cfg); err == nil {
		t.Fatal("oversized slice accepted")
	}
}

func TestRunIPACBasics(t *testing.T) {
	tr := testTrace(t)
	cfg := DefaultConfig(tr, 60, optimizer.NewIPAC())
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumVMs != 60 || res.Steps != tr.NumSteps() {
		t.Fatalf("bad dims %+v", res)
	}
	if res.TotalEnergyWh <= 0 || res.EnergyPerVMWh <= 0 {
		t.Fatalf("no energy accounted: %+v", res)
	}
	if res.Migrations == 0 {
		t.Fatal("IPAC never migrated on a diurnal trace")
	}
	if res.MeanActive <= 0 || res.MeanActive > float64(res.NumServers) {
		t.Fatalf("implausible MeanActive %v", res.MeanActive)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(t)
	r1, err := Run(DefaultConfig(tr, 40, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(DefaultConfig(tr, 40, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalEnergyWh != r2.TotalEnergyWh || r1.Migrations != r2.Migrations {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestIPACBeatsPMapperEnergy(t *testing.T) {
	// The headline Fig. 6 claim: IPAC consumes meaningfully less energy
	// per VM than pMapper on the same workload.
	tr := testTrace(t)
	ipac, err := Run(DefaultConfig(tr, 80, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Run(DefaultConfig(tr, 80, optimizer.NewPMapper()))
	if err != nil {
		t.Fatal(err)
	}
	if ipac.EnergyPerVMWh >= pm.EnergyPerVMWh {
		t.Fatalf("IPAC %.1f Wh/VM not below pMapper %.1f Wh/VM",
			ipac.EnergyPerVMWh, pm.EnergyPerVMWh)
	}
	saving := 1 - ipac.EnergyPerVMWh/pm.EnergyPerVMWh
	if saving < 0.05 {
		t.Fatalf("saving only %.1f%%, expected a clear margin", saving*100)
	}
	t.Logf("IPAC saves %.1f%% vs pMapper (%.1f vs %.1f Wh/VM)",
		saving*100, ipac.EnergyPerVMWh, pm.EnergyPerVMWh)
}

func TestConsolidationBeatsPeakProvisionedStatic(t *testing.T) {
	// The honest static baseline must be provisioned for peak demand (or
	// it silently violates SLAs). IPAC then wins on energy while keeping
	// overloads resolved.
	tr := testTrace(t)
	ipac, err := Run(DefaultConfig(tr, 60, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	staticCfg := DefaultConfig(tr, 60, optimizer.NoOp{DVFS: true})
	staticCfg.ProvisionPeak = true
	static, err := Run(staticCfg)
	if err != nil {
		t.Fatal(err)
	}
	if static.OverloadSteps != 0 {
		t.Fatalf("peak-provisioned static should never overload, got %d", static.OverloadSteps)
	}
	if ipac.EnergyPerVMWh >= static.EnergyPerVMWh {
		t.Fatalf("IPAC %.1f not below peak-provisioned static %.1f",
			ipac.EnergyPerVMWh, static.EnergyPerVMWh)
	}
}

func TestStaticFirstStepPlacementOverloads(t *testing.T) {
	// Provisioning at the midnight-Monday demand and never re-mapping
	// leaves servers overloaded at peak hours; IPAC's overload resolution
	// keeps violations far lower on the same workload.
	tr := testTrace(t)
	static, err := Run(DefaultConfig(tr, 60, optimizer.NoOp{DVFS: true}))
	if err != nil {
		t.Fatal(err)
	}
	if static.OverloadSteps == 0 {
		t.Fatal("static first-step placement unexpectedly never overloads")
	}
	ipac, err := Run(DefaultConfig(tr, 60, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	if ipac.OverloadSteps*3 >= static.OverloadSteps {
		t.Fatalf("IPAC overload steps %d not well below static %d",
			ipac.OverloadSteps, static.OverloadSteps)
	}
}

func TestDVFSAblation(t *testing.T) {
	// IPAC with DVFS must beat IPAC without DVFS: the second saving
	// source the paper credits.
	tr := testTrace(t)
	with, err := Run(DefaultConfig(tr, 60, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(DefaultConfig(tr, 60, optimizer.WithoutDVFS{Inner: optimizer.NewIPAC()}))
	if err != nil {
		t.Fatal(err)
	}
	if with.EnergyPerVMWh >= without.EnergyPerVMWh {
		t.Fatalf("DVFS saved nothing: %.1f vs %.1f", with.EnergyPerVMWh, without.EnergyPerVMWh)
	}
}

func TestFig6SweepShape(t *testing.T) {
	tr := testTrace(t)
	points, err := Fig6(tr, []int{30, 90}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points=%d", len(points))
	}
	for _, p := range points {
		if p.PerVMWh["IPAC"] <= 0 || p.PerVMWh["pMapper"] <= 0 {
			t.Fatalf("missing policies at n=%d: %v", p.NumVMs, p.PerVMWh)
		}
		if p.PerVMWh["IPAC"] >= p.PerVMWh["pMapper"] {
			t.Fatalf("IPAC not winning at n=%d: %v", p.NumVMs, p.PerVMWh)
		}
	}
}

func TestCostPolicyReducesMigrations(t *testing.T) {
	tr := testTrace(t)
	free, err := Run(DefaultConfig(tr, 60, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	priced := optimizer.NewIPAC()
	priced.Policy = optimizer.BandwidthPriced{WattsPerGB: 20}
	pr, err := Run(DefaultConfig(tr, 60, priced))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Migrations >= free.Migrations {
		t.Fatalf("pricing did not reduce migrations: %d vs %d", pr.Migrations, free.Migrations)
	}
}

func BenchmarkRunIPAC60VMs(b *testing.B) {
	tr := testTrace(b)
	for i := 0; i < b.N; i++ {
		if _, err := Run(DefaultConfig(tr, 60, optimizer.NewIPAC())); err != nil {
			b.Fatal(err)
		}
	}
}
