package dcsim

import (
	"sort"
	"testing"

	"vdcpower/internal/optimizer"
)

func TestOnStepObservesEveryStep(t *testing.T) {
	tr := testTrace(t)
	cfg := DefaultConfig(tr, 50, optimizer.NewIPAC())
	var steps []int
	var powerOK, demandOK = true, true
	cfg.OnStep = func(k int, powerW float64, active int, demand float64) {
		steps = append(steps, k)
		if powerW <= 0 || active <= 0 {
			powerOK = false
		}
		if demand <= 0 {
			demandOK = false
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(steps) != tr.NumSteps() {
		t.Fatalf("OnStep called %d times, want %d", len(steps), tr.NumSteps())
	}
	for i, k := range steps {
		if k != i {
			t.Fatalf("steps out of order at %d: %d", i, k)
		}
	}
	if !powerOK || !demandOK {
		t.Fatal("implausible series values")
	}
}

func TestOnStepSeriesTracksDiurnalDemand(t *testing.T) {
	// The power series must correlate with the demand series: higher
	// demand steps should on average draw more power than low ones.
	tr := testTrace(t)
	cfg := DefaultConfig(tr, 80, optimizer.NewIPAC())
	type pt struct{ power, demand float64 }
	var pts []pt
	cfg.OnStep = func(_ int, powerW float64, _ int, demand float64) {
		pts = append(pts, pt{powerW, demand})
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Split at the median demand and compare mean powers.
	var lo, hi, nlo, nhi float64
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = p.demand
	}
	med := median(ds)
	for _, p := range pts {
		if p.demand <= med {
			lo += p.power
			nlo++
		} else {
			hi += p.power
			nhi++
		}
	}
	if nlo == 0 || nhi == 0 {
		t.Skip("degenerate demand distribution")
	}
	if hi/nhi <= lo/nlo {
		t.Fatalf("power does not track demand: high %.1f vs low %.1f", hi/nhi, lo/nlo)
	}
}

func median(ds []float64) float64 {
	ds = append([]float64(nil), ds...)
	sort.Float64s(ds)
	return ds[len(ds)/2]
}
