package dcsim

import (
	"bytes"
	"testing"

	"vdcpower/internal/obs"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/workload"
)

// obsRun executes one small checked run with a scorecard attached and
// returns the scorecard's JSON document.
func obsRun(t *testing.T, seed int64) []byte {
	t.Helper()
	trace, err := workload.Generate(workload.GenConfig{NumVMs: 40, Days: 1, StepsPerHour: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sc := obs.New(obs.Config{Label: "dcsim-test", SLOBudget: 0.05, FastWindow: 8, SlowWindow: 64})
	cfg := DefaultConfig(trace, 40, optimizer.NewIPAC())
	cfg.Seed = seed
	cfg.WatchdogEverySteps = 4
	cfg.Obs = sc
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sc.Report()
	if rep.Steps != uint64(res.Steps) {
		t.Fatalf("scorecard steps = %d, run steps = %d", rep.Steps, res.Steps)
	}
	if rep.Optimizer.Passes == 0 {
		t.Fatal("no optimizer passes scored")
	}
	if rep.Optimizer.Migrations != res.Migrations {
		t.Fatalf("scorecard migrations = %d, run = %d", rep.Optimizer.Migrations, res.Migrations)
	}
	if rep.SLO.Good+rep.SLO.Bad != uint64(res.Steps) {
		t.Fatalf("SLO events = %d, want one per step (%d)", rep.SLO.Good+rep.SLO.Bad, res.Steps)
	}
	if rep.Power == nil || rep.Power.Count != uint64(res.Steps) {
		t.Fatalf("power sketch = %+v, want one sample per step", rep.Power)
	}
	if rep.SLO.Verdict == obs.VerdictNoData {
		t.Fatal("verdict should not be no-data after a full run")
	}
	var b bytes.Buffer
	if err := sc.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestObsSameSeedByteIdentical is the tentpole determinism criterion:
// two same-seed serial runs must produce byte-identical scorecard JSON.
func TestObsSameSeedByteIdentical(t *testing.T) {
	a := obsRun(t, 7)
	b := obsRun(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed scorecard JSON differs between runs")
	}
	c := obsRun(t, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical scorecards — observation is not wired")
	}
}

// TestObsAuditRecordsDecisions: consolidation on a packable workload
// must leave "server-off"-grade records in the ring.
func TestObsAuditRecordsDecisions(t *testing.T) {
	trace, err := workload.Generate(workload.GenConfig{NumVMs: 60, Days: 1, StepsPerHour: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sc := obs.New(obs.Config{})
	cfg := DefaultConfig(trace, 60, optimizer.NewIPAC())
	cfg.Obs = sc
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	recs := sc.Audit().Records()
	if len(recs) == 0 {
		t.Fatal("no audit records from a consolidating run")
	}
	sawServerChange := false
	for _, d := range recs {
		if d.Action == "server-off" || d.Action == "server-on" {
			sawServerChange = true
			if d.Target == "" || d.Reason == "" || d.Span == "" {
				t.Fatalf("incomplete decision record: %+v", d)
			}
		}
	}
	if !sawServerChange {
		t.Fatal("no server on/off decisions recorded")
	}
}

// TestObsSweepMergeDeterministic: the parallel sweep's merged scorecard
// must not depend on worker scheduling — two sweeps with different
// worker counts (serial vs parallel) agree byte for byte.
func TestObsSweepMergeDeterministic(t *testing.T) {
	trace, err := workload.Generate(workload.GenConfig{NumVMs: 60, Days: 1, StepsPerHour: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{30, 60}
	policies := []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	}
	sweep := func(workers int) []byte {
		agg := obs.New(obs.Config{Label: "sweep", SLOBudget: 0.05, FastWindow: 8, SlowWindow: 64})
		if _, err := Fig6Sweep(trace, sizes, policies, SweepOptions{Workers: workers, Obs: agg}); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := agg.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	one := sweep(1)
	four := sweep(4)
	if !bytes.Equal(one, four) {
		t.Fatal("sweep scorecard depends on worker count")
	}
	again := sweep(4)
	if !bytes.Equal(four, again) {
		t.Fatal("sweep scorecard not reproducible across repeats")
	}
}
