package dcsim

import (
	"errors"
	"strings"
	"testing"

	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
)

// brokenConsolidator always fails its pass, like a wedged planner.
type brokenConsolidator struct{}

func (brokenConsolidator) Consolidate(*cluster.DataCenter) (optimizer.Report, error) {
	return optimizer.Report{}, errors.New("planner wedged")
}
func (brokenConsolidator) UsesDVFS() bool { return true }
func (brokenConsolidator) Name() string   { return "broken" }

func TestRunSurfacesConsolidatorError(t *testing.T) {
	tr := testTrace(t)
	_, err := Run(DefaultConfig(tr, 20, brokenConsolidator{}))
	if err == nil {
		t.Fatal("failing consolidator did not surface an error")
	}
	if !strings.Contains(err.Error(), "planner wedged") {
		t.Fatalf("error lost the cause: %v", err)
	}
}

// wastefulIPAC claims to be an IPAC variant but wakes every suspended
// server after the real pass — exactly the regression the
// active-monotone invariant exists to catch.
type wastefulIPAC struct{ inner *optimizer.IPAC }

func (w wastefulIPAC) Consolidate(dc *cluster.DataCenter) (optimizer.Report, error) {
	rep, err := w.inner.Consolidate(dc)
	if err != nil {
		return rep, err
	}
	for _, s := range dc.Servers {
		if s.State() != cluster.Active {
			s.Wake()
		}
	}
	rep.ActiveAfter = dc.NumActive()
	return rep, nil
}
func (w wastefulIPAC) UsesDVFS() bool { return true }
func (w wastefulIPAC) Name() string   { return "IPAC-wasteful" }

func TestCheckerCatchesWastefulIPAC(t *testing.T) {
	tr := testTrace(t)
	checker := check.New(check.OptimizerInvariants()...)
	cfg := DefaultConfig(tr, 40, wastefulIPAC{inner: optimizer.NewIPAC()})
	cfg.FleetSize = 30 // keep the all-awake pathology cheap to simulate
	cfg.Checker = checker
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("server-waking IPAC variant not caught")
	}
	if checker.NumViolations() == 0 {
		t.Fatal("run failed but no violations recorded")
	}
	if !strings.Contains(err.Error(), "ipac-active-monotone") {
		t.Fatalf("wrong invariant fired: %v", err)
	}
	// Violations surface at the end: the run itself still completes and
	// accounts energy instead of halting mid-trace.
	if res.Steps != tr.NumSteps() || res.TotalEnergyWh <= 0 {
		t.Fatalf("run did not complete: %+v", res)
	}
}

func TestCheckerCleanOnRealPolicies(t *testing.T) {
	tr := testTrace(t)
	for _, cons := range []optimizer.Consolidator{optimizer.NewIPAC(), optimizer.NewPMapper()} {
		checker := check.New(check.All()...)
		cfg := DefaultConfig(tr, 40, cons)
		cfg.WatchdogEverySteps = 4
		cfg.Checker = checker
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", cons.Name(), err)
		}
		if checker.Events() == 0 {
			t.Fatalf("%s: checker observed nothing", cons.Name())
		}
	}
}
