package dcsim

import (
	"testing"

	"vdcpower/internal/optimizer"
	"vdcpower/internal/workload"
)

// saturatedTrace puts every VM at 100% for the whole horizon — a
// data-center-wide flash crowd beyond any consolidation remedy.
func saturatedTrace(t *testing.T, vms, steps int) *workload.Trace {
	t.Helper()
	tr := &workload.Trace{StepSeconds: 900}
	for i := 0; i < vms; i++ {
		series := make([]float64, steps)
		for k := range series {
			// Nearly idle at placement time, saturated afterwards: the
			// flash crowd arrives after the VMs are packed tightly.
			if k == 0 {
				series[k] = 0.05
			} else {
				series[k] = 1.0
			}
		}
		tr.Names = append(tr.Names, workload.Sector(0).String()+"-vm")
		tr.Sectors = append(tr.Sectors, workload.Sector(0))
		tr.Series = append(tr.Series, series)
	}
	// Names must be unique for placement; fix them up.
	for i := range tr.Names {
		tr.Names[i] = tr.Names[i] + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunSurvivesSaturation(t *testing.T) {
	// A tiny fleet that cannot possibly host the saturated VMs: the run
	// must complete, reporting unresolved overloads rather than failing.
	tr := saturatedTrace(t, 40, 8)
	cfg := DefaultConfig(tr, 40, optimizer.NewIPAC())
	cfg.FleetSize = 3                     // one of each type: 19 GHz total vs ~70 GHz demand
	cfg.VMMemMin, cfg.VMMemMax = 0.1, 0.5 // memory fits; CPU will not
	cfg.OptimizeEverySteps = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("saturated run failed: %v", err)
	}
	if res.OverloadSteps == 0 {
		t.Fatal("expected overloaded steps under saturation")
	}
	if res.TotalEnergyWh <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestRunSingleStepTrace(t *testing.T) {
	tr := saturatedTrace(t, 5, 1)
	cfg := DefaultConfig(tr, 5, optimizer.NewIPAC())
	cfg.FleetSize = 6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestRunFleetTooSmallToPlace(t *testing.T) {
	// Initial placement itself is impossible: must error, not panic.
	tr := saturatedTrace(t, 50, 4)
	cfg := DefaultConfig(tr, 50, optimizer.NewIPAC())
	cfg.FleetSize = 3
	cfg.VMMemMin, cfg.VMMemMax = 8, 16 // memory alone overflows the fleet
	if _, err := Run(cfg); err == nil {
		t.Fatal("impossible placement did not error")
	}
}

func TestRunRejectsDegenerateFleet(t *testing.T) {
	tr := testTrace(t)
	cfg := DefaultConfig(tr, 10, optimizer.NewIPAC())
	cfg.FleetSize = 1
	if _, err := Run(cfg); err == nil {
		t.Fatal("fleet of 1 accepted")
	}
	cfg = DefaultConfig(tr, 10, optimizer.NewIPAC())
	cfg.FleetMix = [3]float64{0, 0, 0}
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero mix accepted")
	}
}
