package dcsim

import (
	"testing"

	"vdcpower/internal/optimizer"
)

func TestFig6ParallelMatchesSerial(t *testing.T) {
	tr := testTrace(t)
	sizes := []int{30, 60, 90}
	policies := []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	}
	serial, err := Fig6(tr, sizes, policies)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig6Parallel(tr, sizes, policies, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("lengths differ: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		if parallel[i].NumVMs != serial[i].NumVMs {
			t.Fatalf("size order changed at %d", i)
		}
		for name, v := range serial[i].PerVMWh {
			if parallel[i].PerVMWh[name] != v {
				t.Fatalf("size %d policy %s: %v != %v",
					serial[i].NumVMs, name, parallel[i].PerVMWh[name], v)
			}
		}
	}
}

func TestFig6ParallelDefaultWorkers(t *testing.T) {
	tr := testTrace(t)
	points, err := Fig6Parallel(tr, []int{40}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
	}, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].PerVMWh["IPAC"] <= 0 {
		t.Fatalf("bad points %+v", points)
	}
}

func TestFig6ParallelPropagatesErrors(t *testing.T) {
	tr := testTrace(t)
	_, err := Fig6Parallel(tr, []int{99999}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
	}, 2)
	if err == nil {
		t.Fatal("oversized slice did not error")
	}
}
