package dcsim

import (
	"testing"

	"vdcpower/internal/optimizer"
)

// TestFig6ParallelMatchesSerial is the determinism regression gate: the
// parallel sweep must reproduce the serial sweep bit-for-bit from the
// same seed at every worker count — worker scheduling must not leak into
// results (see the vdclint determinism rule).
func TestFig6ParallelMatchesSerial(t *testing.T) {
	tr := testTrace(t)
	sizes := []int{30, 60, 90}
	policies := []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	}
	serial, err := Fig6(tr, sizes, policies)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		parallel, err := Fig6Parallel(tr, sizes, policies, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: lengths differ: %d vs %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i].NumVMs != serial[i].NumVMs {
				t.Fatalf("workers=%d: size order changed at %d", workers, i)
			}
			if len(parallel[i].PerVMWh) != len(serial[i].PerVMWh) {
				t.Fatalf("workers=%d size %d: policy sets differ: %v vs %v",
					workers, serial[i].NumVMs, parallel[i].PerVMWh, serial[i].PerVMWh)
			}
			for name, v := range serial[i].PerVMWh {
				// Bit-for-bit: any drift here means scheduling leaked
				// into the floating-point result.
				//lint:ignore floatcompare the regression gate asserts exact reproducibility
				if parallel[i].PerVMWh[name] != v {
					t.Fatalf("workers=%d size %d policy %s: %v != %v",
						workers, serial[i].NumVMs, name, parallel[i].PerVMWh[name], v)
				}
			}
		}
	}
}

func TestFig6ParallelDefaultWorkers(t *testing.T) {
	tr := testTrace(t)
	points, err := Fig6Parallel(tr, []int{40}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
	}, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].PerVMWh["IPAC"] <= 0 {
		t.Fatalf("bad points %+v", points)
	}
}

func TestFig6ParallelPropagatesErrors(t *testing.T) {
	tr := testTrace(t)
	_, err := Fig6Parallel(tr, []int{99999}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
	}, 2)
	if err == nil {
		t.Fatal("oversized slice did not error")
	}
}
