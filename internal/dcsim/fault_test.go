package dcsim

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
	"vdcpower/internal/optimizer"
)

// chaosProfile is a smoke-level everything-on profile: every fault class
// fires at rates a run should survive.
func chaosProfile() fault.Profile {
	return fault.Profile{
		Seed:      42,
		Sensor:    fault.SensorProfile{DropoutProb: 0.1, OutlierProb: 0.05},
		DVFS:      fault.DVFSProfile{FailProb: 0.05},
		Migration: fault.MigrationProfile{AbortProb: 0.3, MaxRetries: 2, BackoffSec: 2},
		Optimizer: fault.OptimizerProfile{ErrorProb: 0.1},
		Crash: fault.CrashProfile{
			At:     []fault.CrashSpec{{Step: 8}},
			Policy: fault.Evacuate,
		},
	}
}

// chaosConfig is a small fleet under the chaos profile, with the full law
// registry attached.
func chaosConfig(t *testing.T, p fault.Profile) (Config, *check.Checker) {
	t.Helper()
	cfg := DefaultConfig(testTrace(t), 40, optimizer.NewIPAC())
	cfg.FleetSize = 40
	cfg.WatchdogEverySteps = 4
	cfg.Faults = fault.New(p)
	checker := check.New(check.All()...)
	cfg.Checker = checker
	return cfg, checker
}

func TestChaosRunCompletesCleanly(t *testing.T) {
	cfg, checker := chaosConfig(t, chaosProfile())
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run aborted: %v", err)
	}
	if checker.NumViolations() != 0 {
		t.Fatalf("chaos run broke invariants: %v", checker.Err())
	}
	if res.FaultsInjected == 0 {
		t.Fatal("chaos profile injected nothing")
	}
	if res.Steps != cfg.Trace.NumSteps() || res.TotalEnergyWh <= 0 {
		t.Fatalf("chaos run did not complete: %+v steps", res.Steps)
	}
	if res.Crashes != 1 {
		t.Fatalf("Crashes = %d, want the one scheduled at step 8", res.Crashes)
	}
	if res.VMsLost != 0 {
		t.Fatalf("evacuate policy lost %d VMs", res.VMsLost)
	}
	if len(res.FaultLog) != res.FaultsInjected {
		t.Fatalf("FaultLog has %d records, FaultsInjected = %d", len(res.FaultLog), res.FaultsInjected)
	}
}

func TestFaultRunsAreBitReproducible(t *testing.T) {
	run := func() []byte {
		cfg, _ := chaosConfig(t, chaosProfile())
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed fault runs diverged:\n%s\n%s", a, b)
	}
}

func TestCrashLosePolicyReportsLosses(t *testing.T) {
	p := fault.Profile{
		Seed:  1,
		Crash: fault.CrashProfile{At: []fault.CrashSpec{{Step: 4}}, Policy: fault.Lose},
	}
	cfg, checker := chaosConfig(t, p)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("lose-policy run aborted: %v", err)
	}
	// The conservation laws must accept the reported loss instead of
	// flagging the vanished VMs.
	if checker.NumViolations() != 0 {
		t.Fatalf("reported losses flagged: %v", checker.Err())
	}
	if res.Crashes != 1 || res.VMsLost == 0 || res.VMsEvacuated != 0 {
		t.Fatalf("crashes=%d lost=%d evacuated=%d, want one lossy crash",
			res.Crashes, res.VMsLost, res.VMsEvacuated)
	}
}

func TestInjectedOptimizerErrorsDegradeNotAbort(t *testing.T) {
	p := fault.Profile{Seed: 3, Optimizer: fault.OptimizerProfile{ErrorProb: 1}}
	cfg, checker := chaosConfig(t, p)
	cfg.WatchdogEverySteps = 0 // isolate the consolidator: no watchdog moves
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("degraded run aborted: %v", err)
	}
	if res.DegradedPasses == 0 {
		t.Fatal("no degraded passes counted with error_prob = 1")
	}
	if res.Migrations != 0 {
		t.Fatalf("all passes failed yet %d migrations committed", res.Migrations)
	}
	if checker.NumViolations() != 0 {
		t.Fatalf("degraded run broke invariants: %v", checker.Err())
	}
}

// failsOnSecondPass fails its second invocation with a real (non-injected)
// error, after the run has accounted energy for a full optimizer period.
type failsOnSecondPass struct {
	inner optimizer.Consolidator
	calls int
}

func (f *failsOnSecondPass) Consolidate(dc *cluster.DataCenter) (optimizer.Report, error) {
	f.calls++
	if f.calls == 2 {
		return optimizer.Report{}, errors.New("planner wedged")
	}
	return f.inner.Consolidate(dc)
}
func (f *failsOnSecondPass) UsesDVFS() bool { return true }
func (f *failsOnSecondPass) Name() string   { return "fails-on-second" }

func TestRealErrorReturnsPartialResult(t *testing.T) {
	tr := testTrace(t)
	cfg := DefaultConfig(tr, 20, &failsOnSecondPass{inner: optimizer.NewIPAC()})
	cfg.FleetSize = 30
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("real consolidator error did not surface")
	}
	if !strings.Contains(err.Error(), "planner wedged") {
		t.Fatalf("error lost the cause: %v", err)
	}
	// Satellite: the partial result carries what the run accumulated up to
	// the failure, not a zero value.
	if res.Steps != cfg.OptimizeEverySteps {
		t.Fatalf("partial Steps = %d, want %d (failure at the second pass)", res.Steps, cfg.OptimizeEverySteps)
	}
	if res.TotalEnergyWh <= 0 || res.MeanActive <= 0 {
		t.Fatalf("partial result empty: energy=%v meanActive=%v", res.TotalEnergyWh, res.MeanActive)
	}
}

// TestReusedConsolidatorSurvivesChaos guards the pooled search buffers
// (ROADMAP item 2): an IPAC whose node pool and stats just went through
// a chaos run — crashes, migration aborts, injected pass errors firing
// mid-consolidation — must behave on a subsequent clean run exactly like
// a fresh IPAC. Any divergence means an aborted pass left poisoned state
// in the reused buffers.
func TestReusedConsolidatorSurvivesChaos(t *testing.T) {
	cleanRun := func(c optimizer.Consolidator) []byte {
		cfg := DefaultConfig(testTrace(t), 40, c)
		cfg.FleetSize = 40
		cfg.WatchdogEverySteps = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("clean run aborted: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	reused := optimizer.NewIPAC()
	chaosCfg, checker := chaosConfig(t, chaosProfile())
	chaosCfg.Consolidator = reused
	if _, err := Run(chaosCfg); err != nil {
		t.Fatalf("chaos run aborted: %v", err)
	}
	if checker.NumViolations() != 0 {
		t.Fatalf("chaos run broke invariants: %v", checker.Err())
	}
	// Run only wires a non-nil injector; detach the chaos plane by hand
	// so the second run is genuinely clean.
	reused.SetFaults(nil)
	got := cleanRun(reused)
	want := cleanRun(optimizer.NewIPAC())
	if string(got) != string(want) {
		t.Fatalf("reused consolidator diverged after chaos:\n%s\nfresh:\n%s", got, want)
	}
}

func TestSweepWithFaultProfile(t *testing.T) {
	tr := testTrace(t)
	p := chaosProfile()
	points, err := Fig6Sweep(tr, []int{24}, []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
	}, SweepOptions{Workers: 2, FaultProfile: &p})
	if err != nil {
		t.Fatalf("faulted sweep: %v", err)
	}
	if len(points) != 1 || points[0].PerVMWh["IPAC"] <= 0 {
		t.Fatalf("faulted sweep produced no usable point: %+v", points)
	}
}
