// Package dcsim is the large-scale data-center simulator of Section VI-B:
// it replays a utilization trace as per-VM CPU demands over a fleet of
// heterogeneous servers (the three CPU types of the paper), invokes a
// consolidation policy on the optimizer's long time scale, applies DVFS
// between invocations when the policy supports it, and accounts energy.
// It regenerates Figure 6 and the consolidation ablations.
package dcsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vdcpower/internal/check"
	"vdcpower/internal/cluster"
	"vdcpower/internal/core"
	"vdcpower/internal/fault"
	"vdcpower/internal/obs"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/power"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/workload"
)

// Config parameterizes one simulation run.
type Config struct {
	Trace  *workload.Trace
	NumVMs int // VMs drawn from the head of the trace

	// FleetSize is the number of physical servers available. The paper
	// generates a fixed fleet of 3,000 servers and assumes every data
	// center "has enough inactive servers"; the fleet does NOT scale
	// with the VM count, which is why per-VM energy grows with data
	// center size — the efficient servers run out.
	FleetSize int
	// FleetMix gives the fraction of high-end, mid and low servers.
	// High-end servers are deliberately scarce so large data centers
	// spill onto less efficient hardware.
	FleetMix [3]float64

	// Per-VM peak CPU requirement (GHz) and memory (GB), drawn uniformly
	// from these ranges; trace utilization scales the peak.
	VMPeakMin, VMPeakMax float64
	VMMemMin, VMMemMax   float64

	Seed int64

	// OptimizeEverySteps is the optimizer invocation interval in trace
	// steps (16 steps of 15 min = 4 hours — "hours to days").
	OptimizeEverySteps int

	Consolidator optimizer.Consolidator

	// Headroom is the DVFS frequency-selection headroom.
	Headroom float64

	// ProvisionPeak makes the initial placement use each VM's peak
	// demand over the whole trace instead of its first-step demand —
	// how a static (non-consolidating) data center must be provisioned
	// to avoid overload.
	ProvisionPeak bool

	// WatchdogEverySteps enables the on-demand overload reliever of
	// Section III (the paper's reference [25]): every this many trace
	// steps, VMs are moved off overloaded servers without waiting for
	// the next full optimizer invocation. 0 disables it.
	WatchdogEverySteps int

	// CountSleepPower includes PSleep of suspended servers in the energy
	// account. The paper treats inactive servers as powered off and
	// unaccounted, so the default is false.
	CountSleepPower bool

	// OnStep, if set, observes every trace step: the instantaneous
	// power, the active server count, and the aggregate VM demand. Use
	// it to extract diurnal time series without rerunning.
	OnStep func(step int, powerW float64, activeServers int, demandGHz float64)

	// OnDone, if set, receives the final data center before Run returns —
	// for snapshotting (cluster.Snapshot) or custom inspection.
	OnDone func(dc *cluster.DataCenter)

	// Checker, if set, observes the run through typed events (initial
	// placement, every consolidator/watchdog pass, every step's power
	// accounting) and verifies the registered invariants. Violations do
	// not stop the run; Run reports them as an error at the end. Nil
	// means no checking and no overhead.
	Checker *check.Checker

	// Telemetry, when non-nil, records the run's control flow as nested
	// spans on this track: a "dcsim.run" root, consolidation and
	// watchdog passes (with the optimizer's own spans nested inside),
	// per-server arbitrator passes, and cluster transitions. The track's
	// logical clock is set to simulation time each step, so same-seed
	// runs produce byte-identical traces. Nil disables tracing at ~zero
	// cost. (Named Telemetry because Trace is the workload trace.)
	Telemetry *telemetry.Track

	// Metrics, when non-nil, receives run counters (migrations, vetoes,
	// optimizer/watchdog passes, B&B nodes) and per-step power/active
	// gauges. Nil disables publication at ~zero cost.
	Metrics *telemetry.Registry

	// Faults, when non-nil, injects the deterministic fault plane into the
	// run: DVFS actuation failures, migration aborts (absorbed by the
	// optimizer's retry protocol), transient consolidator/watchdog pass
	// errors (the pass is skipped, the run continues), and server crashes
	// (VMs evacuated or lost per the profile's policy). Same-seed fault
	// runs are bit-reproducible. Nil disables injection at ~zero cost.
	Faults *fault.Injector

	// Obs, when non-nil, receives the run's controller-health scorecard
	// observations: one SLO event per step (good = no active server
	// overloaded), per-step power, optimizer/watchdog pass tallies with
	// B&B node and widening deltas, crash records, and per-server on/off
	// decisions in the audit ring. Everything recorded is derived from
	// simulation state only, so same-seed runs score identically. Nil
	// disables at ~zero cost.
	Obs *obs.Scorecard
}

// DefaultConfig mirrors Section VI-B for the given trace slice size.
func DefaultConfig(trace *workload.Trace, numVMs int, cons optimizer.Consolidator) Config {
	return Config{
		Trace:              trace,
		NumVMs:             numVMs,
		FleetSize:          3000,
		FleetMix:           [3]float64{0.08, 0.25, 0.67},
		VMPeakMin:          1.0,
		VMPeakMax:          3.0,
		VMMemMin:           0.25,
		VMMemMax:           1.5,
		Seed:               7,
		OptimizeEverySteps: 16,
		Consolidator:       cons,
		Headroom:           0.1,
	}
}

// Result summarizes one run.
type Result struct {
	Policy        string
	NumVMs        int
	NumServers    int
	Steps         int
	TotalEnergyWh float64
	EnergyPerVMWh float64
	Migrations    int
	Vetoed        int
	Unresolved    int
	MeanActive    float64
	FinalActive   int
	// OverloadSteps counts (server, step) pairs where an active server's
	// demand exceeded its capacity — time spent violating performance.
	OverloadSteps int
	// WatchdogMoves counts migrations performed by the on-demand
	// overload reliever (included in Migrations).
	WatchdogMoves int
	// FailedMoves counts planned migrations abandoned after exhausting
	// their fault-plane retries.
	FailedMoves int
	// DegradedPasses counts consolidator/watchdog passes skipped on an
	// injected transient error (the run continued degraded).
	DegradedPasses int
	// Crashes counts servers failed by the fault plane; VMsEvacuated and
	// VMsLost split the fates of their hosted VMs.
	Crashes      int
	VMsEvacuated int
	VMsLost      int
	// FaultsInjected totals every fault the plane injected; FaultLog is
	// the full typed record (empty without a fault plane).
	FaultsInjected int
	FaultLog       []fault.Record
}

// String renders the result on one line.
func (r Result) String() string {
	return fmt.Sprintf("%s: vms=%d servers=%d energy/VM=%.1f Wh migrations=%d meanActive=%.1f",
		r.Policy, r.NumVMs, r.NumServers, r.EnergyPerVMWh, r.Migrations, r.MeanActive)
}

// Run executes the simulation over the whole trace.
func Run(cfg Config) (Result, error) {
	if cfg.Trace == nil {
		return Result{}, fmt.Errorf("dcsim: nil trace")
	}
	if cfg.Consolidator == nil {
		return Result{}, fmt.Errorf("dcsim: nil consolidator")
	}
	tr, err := cfg.Trace.Slice(cfg.NumVMs)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// VM population: peak requirement and memory per VM.
	peaks := make([]float64, cfg.NumVMs)
	vms := make([]*cluster.VM, cfg.NumVMs)
	for i := 0; i < cfg.NumVMs; i++ {
		peaks[i] = cfg.VMPeakMin + (cfg.VMPeakMax-cfg.VMPeakMin)*rng.Float64()
		vms[i] = &cluster.VM{
			ID:       tr.Names[i],
			Demand:   tr.At(i, 0) * peaks[i],
			MemoryGB: cfg.VMMemMin + (cfg.VMMemMax-cfg.VMMemMin)*rng.Float64(),
		}
	}

	// Server fleet: the three CPU types of Section VI-B with the
	// configured mix, interleaved deterministically so the index order
	// carries no efficiency bias.
	nServers := cfg.FleetSize
	if nServers < 3 {
		return Result{}, fmt.Errorf("dcsim: fleet of %d is too small", nServers)
	}
	types := power.AllTypes()
	counts := [3]int{}
	mixSum := cfg.FleetMix[0] + cfg.FleetMix[1] + cfg.FleetMix[2]
	if mixSum <= 0 {
		return Result{}, fmt.Errorf("dcsim: fleet mix %v sums to zero", cfg.FleetMix)
	}
	for i := 0; i < 2; i++ {
		counts[i] = int(math.Round(float64(nServers) * cfg.FleetMix[i] / mixSum))
	}
	counts[2] = nServers - counts[0] - counts[1]
	if counts[2] < 0 {
		return Result{}, fmt.Errorf("dcsim: fleet mix %v is inconsistent", cfg.FleetMix)
	}
	servers := make([]*cluster.Server, 0, nServers)
	remaining := counts
	for len(servers) < nServers {
		for t := 0; t < 3; t++ {
			if remaining[t] > 0 {
				servers = append(servers, cluster.NewServer(fmt.Sprintf("srv-%04d", len(servers)), types[t]))
				remaining[t]--
			}
		}
	}
	dc, err := cluster.NewDataCenter(servers)
	if err != nil {
		return Result{}, err
	}
	tk := cfg.Telemetry
	if tk != nil {
		dc.SetTrace(tk)
		if t, ok := cfg.Consolidator.(telemetry.Traceable); ok {
			t.SetTrace(tk)
		}
	}
	if cfg.Faults != nil {
		cfg.Faults.AttachMetrics(cfg.Metrics)
		if f, ok := cfg.Consolidator.(fault.Injectable); ok {
			f.SetFaults(cfg.Faults)
		}
	}
	// With a checker attached, every two-phase migration transition is
	// observed as it happens, so the no-double-placement law sees the
	// reserved state, not just the settled post-pass placement.
	curStep := -1
	if cfg.Checker != nil {
		dc.SetMigrationObserver(func(tx *cluster.MigrationTx) {
			cfg.Checker.Observe(check.Event{
				Kind: check.EvMigration,
				Step: curStep,
				DC:   dc,
				Migration: &check.MigrationObservation{
					VMID:  tx.VM().ID,
					From:  tx.Source().ID,
					To:    tx.Target().ID,
					Phase: string(tx.Phase()),
				},
			})
		})
	}
	// Registry instruments resolve once, before the hot loop; on a nil
	// registry they come back nil and every update below no-ops.
	var (
		mMigrations = cfg.Metrics.Counter("vdcpower_migrations_total", "VM live migrations committed by the consolidation layer")
		mVetoed     = cfg.Metrics.Counter("vdcpower_migration_vetoes_total", "migrations rejected by the cost policy")
		mPasses     = cfg.Metrics.Counter("vdcpower_optimizer_passes_total", "consolidator invocations", telemetry.Label{Key: "policy", Value: cfg.Consolidator.Name()})
		mWatchdog   = cfg.Metrics.Counter("vdcpower_watchdog_passes_total", "on-demand overload reliever invocations")
		mNodes      = cfg.Metrics.Counter("vdcpower_bnb_nodes_total", "Minimum Slack branch-and-bound nodes expanded")
		gPower      = cfg.Metrics.Gauge("vdcpower_power_watts", "total data-center power draw")
		gActive     = cfg.Metrics.Gauge("vdcpower_active_servers", "servers currently powered on")
		mDegraded   = cfg.Metrics.Counter("vdcpower_degraded_steps_total", "optimizer passes skipped on an injected error while the run continued")
	)

	// Initial placement: FFD at the first step's demands — a neutral
	// starting point shared by every policy — or at peak demands when
	// provisioning statically.
	placeDemand := make([]float64, cfg.NumVMs)
	for i := range placeDemand {
		placeDemand[i] = vms[i].Demand
		if cfg.ProvisionPeak {
			peakU := 0.0
			for k := 0; k < tr.NumSteps(); k++ {
				if u := tr.At(i, k); u > peakU {
					peakU = u
				}
			}
			placeDemand[i] = peakU * peaks[i]
		}
	}
	if err := initialPlacement(dc, vms, placeDemand); err != nil {
		return Result{}, err
	}
	dc.SleepIdle()
	if cfg.Checker != nil {
		cfg.Checker.Observe(check.Event{Kind: check.EvInit, Step: -1, DC: dc})
	}

	res := Result{
		Policy:     cfg.Consolidator.Name(),
		NumVMs:     cfg.NumVMs,
		NumServers: nServers,
		Steps:      tr.NumSteps(),
	}
	tk.SetTime(0)
	root := tk.Start("dcsim.run").Str("policy", res.Policy).
		Int("vms", cfg.NumVMs).Int("servers", nServers)
	defer func() {
		root.Int("migrations", res.Migrations).Float("energy_per_vm_wh", res.EnergyPerVMWh).End()
	}()
	var meter power.Meter
	activeSum := 0.0
	// Audit scratch for per-server on/off diffs around optimizer passes
	// (allocated once; unused without a scorecard).
	var prevActive []bool
	if cfg.Obs != nil {
		prevActive = make([]bool, len(dc.Servers))
	}
	// finish fills the aggregate fields from whatever the run accumulated,
	// so error paths return a usable partial Result alongside the error
	// (stepsDone counts fully accounted steps).
	finish := func(stepsDone int) {
		res.Steps = stepsDone
		res.TotalEnergyWh = meter.Wh()
		res.EnergyPerVMWh = meter.Wh() / float64(cfg.NumVMs)
		if stepsDone > 0 {
			res.MeanActive = activeSum / float64(stepsDone)
		}
		res.FinalActive = dc.NumActive()
		res.FaultsInjected = cfg.Faults.Injected()
		res.FaultLog = cfg.Faults.Log()
	}
	for k := 0; k < tr.NumSteps(); k++ {
		tk.SetTime(float64(k) * tr.StepSeconds)
		curStep = k
		cfg.Faults.SetStep(k)
		// New demands from the trace.
		for i, v := range vms {
			v.Demand = tr.At(i, k) * peaks[i]
		}
		// Whole-server crashes fire before this step's passes, so the
		// optimizer and the DVFS arbiter see the post-crash fleet.
		if cfg.Faults != nil {
			applyCrashes(dc, cfg, k, &res)
		}
		if k%cfg.OptimizeEverySteps == 0 {
			overloaded := 0
			if cfg.Checker != nil {
				overloaded = check.CountOverloaded(dc)
			}
			csp := tk.Start("dcsim.consolidate").Int("step", k)
			nodesBefore, widsBefore := searchNodes(cfg.Consolidator)
			if cfg.Obs != nil {
				snapshotActive(dc, prevActive)
			}
			rep, err := cfg.Consolidator.Consolidate(dc)
			csp.Int("migrations", rep.Migrations).Int("vetoed", rep.Vetoed).End()
			if err != nil {
				// An injected transient error degrades the pass — skip it
				// and keep the run alive; a real error still aborts, but
				// returns the partial result accumulated so far.
				if !fault.IsInjected(err) {
					finish(k)
					return res, err
				}
				res.DegradedPasses++
				mDegraded.Inc()
			}
			res.Migrations += rep.Migrations
			res.Vetoed += rep.Vetoed
			res.Unresolved += rep.Unresolved
			res.FailedMoves += rep.FailedMoves
			mPasses.Inc()
			mMigrations.Add(float64(rep.Migrations))
			mVetoed.Add(float64(rep.Vetoed))
			nodesAfter, widsAfter := searchNodes(cfg.Consolidator)
			mNodes.Add(float64(nodesAfter - nodesBefore))
			if cfg.Obs != nil {
				cfg.Obs.AddOptimizerPass(rep.Migrations, rep.Vetoed, rep.FailedMoves, rep.Unresolved, fault.IsInjected(err))
				cfg.Obs.AddSearch(nodesAfter-nodesBefore, widsAfter-widsBefore)
				auditServerDiffs(cfg.Obs, dc, prevActive, k, float64(k)*tr.StepSeconds,
					cfg.Consolidator.Name(), "dcsim.consolidate")
			}
			if cfg.Checker != nil {
				cfg.Checker.Observe(check.Event{
					Kind:             check.EvConsolidate,
					Step:             k,
					DC:               dc,
					Report:           &rep,
					Policy:           cfg.Consolidator.Name(),
					OverloadedBefore: overloaded,
				})
			}
		} else if cfg.WatchdogEverySteps > 0 && k%cfg.WatchdogEverySteps == 0 {
			wCfg := packing.DefaultMinSlackConfig()
			wCfg.Trace = tk
			wsp := tk.Start("dcsim.watchdog").Int("step", k)
			if cfg.Obs != nil {
				snapshotActive(dc, prevActive)
			}
			rep, err := optimizer.ResolveOverloadsWithFaults(dc, packing.VectorConstraint{CPUHeadroom: cfg.Headroom}, wCfg, cfg.Faults)
			wsp.Int("migrations", rep.Migrations).End()
			if err != nil {
				if !fault.IsInjected(err) {
					finish(k)
					return res, err
				}
				res.DegradedPasses++
				mDegraded.Inc()
			}
			res.Migrations += rep.Migrations
			res.WatchdogMoves += rep.Migrations
			res.Unresolved += rep.Unresolved
			res.FailedMoves += rep.FailedMoves
			mWatchdog.Inc()
			mMigrations.Add(float64(rep.Migrations))
			if cfg.Obs != nil {
				cfg.Obs.AddWatchdogPass(rep.Migrations, rep.FailedMoves, rep.Unresolved, fault.IsInjected(err))
				auditServerDiffs(cfg.Obs, dc, prevActive, k, float64(k)*tr.StepSeconds,
					"watchdog", "dcsim.watchdog")
			}
			if cfg.Checker != nil {
				cfg.Checker.Observe(check.Event{
					Kind:   check.EvWatchdog,
					Step:   k,
					DC:     dc,
					Report: &rep,
					Policy: "watchdog",
				})
			}
		}
		// Server-level frequency decision for the step, and energy
		// accounting. Suspended servers are treated as powered off
		// (unaccounted) unless CountSleepPower is set. When tracing, the
		// decision routes through core.Arbitrator — the same frequency
		// choice, but each pass records an "arbitrator.pass" span; the
		// untraced path keeps the allocation-free direct call.
		var dvfs *telemetry.Span
		if tk != nil {
			dvfs = tk.Start("arbitrate.dvfs").Int("step", k)
		}
		stepPower := 0.0
		overloadsBefore := res.OverloadSteps
		for _, s := range dc.Servers {
			if s.State() == cluster.Failed {
				// Crashed servers draw nothing, not even sleep power.
				continue
			}
			if s.State() != cluster.Active {
				if cfg.CountSleepPower {
					stepPower += s.Spec.PSleep
				}
				continue
			}
			if cfg.Consolidator.UsesDVFS() {
				if tk != nil || cfg.Faults != nil {
					// Tracing or fault injection routes through the
					// arbitrator (same frequency choice, plus spans and
					// the DVFS-failure degradation policy); the untraced,
					// fault-free path keeps the allocation-free call.
					arb := core.Arbitrator{Server: s, Headroom: cfg.Headroom, Trace: tk, Faults: cfg.Faults}
					arb.Arbitrate()
				} else {
					s.SetFreq(s.Spec.LowestFreqFor(s.TotalDemand() * (1 + cfg.Headroom)))
				}
			} else {
				s.SetFreq(s.Spec.MaxFreq)
			}
			if s.Overloaded() {
				res.OverloadSteps++
			}
			stepPower += s.Power()
		}
		dvfs.Float("power_w", stepPower).End()
		nActive := dc.NumActive()
		gPower.Set(stepPower)
		gActive.Set(float64(nActive))
		if cfg.Obs != nil {
			cfg.Obs.ObserveStep()
			// The paper's performance objective at data-center scale: no
			// active server's demand exceeds its capacity this step.
			cfg.Obs.ObserveSLO(res.OverloadSteps == overloadsBefore)
			cfg.Obs.ObservePower(stepPower)
		}
		meter.Accumulate(stepPower, tr.StepSeconds)
		if cfg.Checker != nil {
			cfg.Checker.Observe(check.Event{
				Kind:      check.EvStep,
				Step:      k,
				DC:        dc,
				PowerW:    stepPower,
				EnergyJ:   meter.Joules(),
				HasPower:  true,
				HasEnergy: true,
			})
		}
		activeSum += float64(nActive)
		if cfg.OnStep != nil {
			demand := 0.0
			for _, v := range vms {
				demand += v.Demand
			}
			cfg.OnStep(k, stepPower, nActive, demand)
		}
	}
	finish(tr.NumSteps())
	if err := dc.CheckInvariants(); err != nil {
		return res, err
	}
	if cfg.OnDone != nil {
		cfg.OnDone(dc)
	}
	if cfg.Checker != nil {
		if err := cfg.Checker.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// searchNodes reads a consolidator's accumulated branch-and-bound node
// and widening counts through the optional SearchStats accessor (IPAC
// wires one; other policies report 0). Harnesses publish deltas per pass.
func searchNodes(c optimizer.Consolidator) (nodes, widenings int) {
	if s, ok := c.(interface{ SearchStats() *packing.SearchStats }); ok {
		if st := s.SearchStats(); st != nil {
			return st.Nodes, st.Widenings
		}
	}
	return 0, 0
}

// snapshotActive records which servers are active into dst (len must
// match dc.Servers) — the "before" side of an audit diff.
func snapshotActive(dc *cluster.DataCenter, dst []bool) {
	for i, s := range dc.Servers {
		dst[i] = s.State() == cluster.Active
	}
}

// auditServerDiffs records one audit decision per server whose active
// state changed since prev was snapshotted — the "PAC turned server k
// off because…" records of the scorecard's decision ring.
func auditServerDiffs(sc *obs.Scorecard, dc *cluster.DataCenter, prev []bool, step int, timeSec float64, component, span string) {
	ring := sc.Audit()
	for i, s := range dc.Servers {
		now := s.State() == cluster.Active
		if now == prev[i] {
			continue
		}
		action, reason := "server-off", "its load was packed onto fewer servers"
		if now {
			action, reason = "server-on", "woken to host re-placed load"
		}
		ring.Record(obs.Decision{
			Step: step, TimeSec: timeSec,
			Component: component, Action: action, Target: s.ID,
			Reason: reason, Span: span,
		})
	}
}

// initialPlacement first-fit-decreasing places the VMs using the given
// per-VM provisioning demands.
func initialPlacement(dc *cluster.DataCenter, vms []*cluster.VM, demands []float64) error {
	var bins []*packing.Bin
	for _, s := range dc.Servers {
		bins = append(bins, &packing.Bin{
			ID:         s.ID,
			CPUCap:     s.Spec.Capacity(),
			MemCap:     s.Spec.MemoryGB,
			Efficiency: s.Spec.Efficiency(),
		})
	}
	items := make([]packing.Item, len(vms))
	byID := map[string]*cluster.VM{}
	for i, v := range vms {
		items[i] = packing.Item{ID: v.ID, CPU: demands[i], Mem: v.MemoryGB}
		byID[v.ID] = v
	}
	asg, unplaced := packing.FirstFitDecreasing(items, bins, packing.VectorConstraint{})
	if len(unplaced) > 0 {
		return fmt.Errorf("dcsim: %d VMs could not be placed initially", len(unplaced))
	}
	serverByID := map[string]*cluster.Server{}
	for _, s := range dc.Servers {
		serverByID[s.ID] = s
	}
	// Iterate the item slice, not the assignment map: map order is
	// random per process and would make per-server VM order — and with
	// it floating-point summation — nondeterministic.
	for _, it := range items {
		binID, ok := asg[it.ID]
		if !ok {
			continue
		}
		if err := dc.Place(byID[it.ID], serverByID[binID]); err != nil {
			return err
		}
	}
	return nil
}

// applyCrashes fails the servers the fault plane schedules for step k, then
// disposes of their VMs per the crash policy: evacuate re-places them on
// the surviving fleet, lose drops them and reports the loss to the checker
// so the conservation laws shrink their baseline instead of flagging a
// phantom violation.
func applyCrashes(dc *cluster.DataCenter, cfg Config, k int, res *Result) {
	candidates := make([]string, 0, len(dc.Servers))
	byID := make(map[string]*cluster.Server, len(dc.Servers))
	for _, s := range dc.Servers {
		byID[s.ID] = s
		if s.State() == cluster.Active {
			candidates = append(candidates, s.ID)
		}
	}
	for _, cr := range cfg.Faults.Crashes(k, candidates) {
		srv := byID[cr.Server]
		if srv == nil || srv.State() == cluster.Failed {
			continue
		}
		orphans := dc.Crash(srv)
		res.Crashes++
		var lost []string
		reason := "crashed by the fault plane; its VMs were evacuated"
		if cr.Policy == fault.Lose {
			res.VMsLost += len(orphans)
			for _, v := range orphans {
				lost = append(lost, v.ID)
			}
			reason = "crashed by the fault plane; its VMs were lost"
		} else {
			res.VMsEvacuated += len(orphans)
			evacuate(dc, orphans)
		}
		if cfg.Obs != nil {
			evac := len(orphans) - len(lost)
			cfg.Obs.RecordCrash(evac, len(lost))
			cfg.Obs.Audit().Record(obs.Decision{
				Step: k, TimeSec: float64(k) * cfg.Trace.StepSeconds,
				Component: "fault-plane", Action: "server-crash", Target: srv.ID,
				Reason: reason, Value: float64(len(orphans)),
			})
		}
		if cfg.Checker != nil {
			cfg.Checker.Observe(check.Event{Kind: check.EvCrash, Step: k, DC: dc, LostVMs: lost})
		}
	}
}

// evacuate re-places crash orphans over the surviving fleet: first fit by
// decreasing demand onto the first non-failed, non-cordoned server with CPU
// and memory room (waking sleeping servers as needed). When nothing fits,
// the VM is forced onto the surviving server with the most CPU slack — a
// transient overload the watchdog can relieve beats losing customer state.
func evacuate(dc *cluster.DataCenter, orphans []*cluster.VM) {
	sort.Slice(orphans, func(i, j int) bool {
		if orphans[i].Demand > orphans[j].Demand {
			return true
		}
		if orphans[j].Demand > orphans[i].Demand {
			return false
		}
		return orphans[i].ID < orphans[j].ID
	})
	for _, v := range orphans {
		var target, fallback *cluster.Server
		bestSlack := math.Inf(-1)
		for _, s := range dc.Servers {
			if s.State() == cluster.Failed || s.Cordoned() {
				continue
			}
			slack := s.Spec.Capacity() - s.TotalDemand()
			if slack > bestSlack {
				bestSlack = slack
				fallback = s
			}
			if target == nil && slack >= v.Demand && s.TotalMemory()+v.MemoryGB <= s.Spec.MemoryGB {
				target = s
			}
		}
		if target == nil {
			target = fallback
		}
		if target == nil {
			// The whole fleet is failed or cordoned; nothing to do — the
			// VM is gone and conservation laws will flag it, correctly.
			continue
		}
		// Place cannot fail here: the VM was just detached (unplaced) and
		// the target is neither failed nor cordoned.
		if err := dc.Place(v, target); err != nil {
			panic(fmt.Sprintf("dcsim: evacuation re-place failed: %v", err)) //lint:ignore panicpolicy placement invariant broken
		}
	}
}

// Fig6Point is one x-position of Figure 6: energy per VM over the whole
// trace for each policy at a given data-center size.
type Fig6Point struct {
	NumVMs  int
	PerVMWh map[string]float64 // policy name → Wh per VM
}

// Fig6 sweeps data-center sizes and runs every policy on identical
// workloads, reproducing the paper's energy-per-VM comparison. Policies
// are constructed fresh per run via the factory functions so no state
// leaks between sizes.
func Fig6(trace *workload.Trace, sizes []int, policies []func() optimizer.Consolidator) ([]Fig6Point, error) {
	var out []Fig6Point
	for _, n := range sizes {
		pt := Fig6Point{NumVMs: n, PerVMWh: map[string]float64{}}
		for _, mk := range policies {
			cons := mk()
			cfg := DefaultConfig(trace, n, cons)
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			pt.PerVMWh[cons.Name()] = res.EnergyPerVMWh
		}
		out = append(out, pt)
	}
	return out, nil
}
