package dcsim

import (
	"testing"

	"vdcpower/internal/optimizer"
)

func TestWatchdogReducesOverloadSteps(t *testing.T) {
	// IPAC every 16 steps leaves servers overloaded between invocations;
	// the per-step watchdog should cut those violations sharply.
	tr := testTrace(t)
	base := DefaultConfig(tr, 80, optimizer.NewIPAC())
	noWD, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withWDCfg := DefaultConfig(tr, 80, optimizer.NewIPAC())
	withWDCfg.WatchdogEverySteps = 1
	withWD, err := Run(withWDCfg)
	if err != nil {
		t.Fatal(err)
	}
	if noWD.OverloadSteps == 0 {
		t.Skip("workload produced no overloads; nothing to relieve")
	}
	if withWD.OverloadSteps*2 >= noWD.OverloadSteps {
		t.Fatalf("watchdog ineffective: %d vs %d overload steps",
			withWD.OverloadSteps, noWD.OverloadSteps)
	}
	if withWD.WatchdogMoves == 0 {
		t.Fatal("watchdog never moved a VM")
	}
	if withWD.Migrations <= noWD.Migrations {
		t.Fatal("watchdog moves not reflected in total migrations")
	}
}

func TestWatchdogDisabledByDefault(t *testing.T) {
	tr := testTrace(t)
	res, err := Run(DefaultConfig(tr, 40, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	if res.WatchdogMoves != 0 {
		t.Fatalf("watchdog ran while disabled: %d moves", res.WatchdogMoves)
	}
}

func TestWatchdogCostsEnergyButAssuresPerformance(t *testing.T) {
	// The performance/power trade the paper manages: relieving overloads
	// wakes servers, so the watchdog may spend some extra energy. Verify
	// it's bounded (not a blow-up) while violations drop.
	tr := testTrace(t)
	noWD, err := Run(DefaultConfig(tr, 80, optimizer.NewIPAC()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(tr, 80, optimizer.NewIPAC())
	cfg.WatchdogEverySteps = 1
	withWD, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withWD.EnergyPerVMWh > noWD.EnergyPerVMWh*1.3 {
		t.Fatalf("watchdog energy blow-up: %.1f vs %.1f Wh/VM",
			withWD.EnergyPerVMWh, noWD.EnergyPerVMWh)
	}
}
