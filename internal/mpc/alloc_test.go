package mpc

// Steady-state zero-allocation gate for the mpc/solve hot path (ROADMAP
// item 2): once the controller's workspace has warmed up to its
// high-water mark, Compute must not touch the heap. The gate runs in
// ordinary `go test`, so an allocation regression fails CI, not just a
// benchmark dashboard. Skipped under -race: the detector's shadow-state
// allocations would be charged to the code under test.

import (
	"testing"

	"vdcpower/internal/mat"
	"vdcpower/internal/race"
)

func TestComputeZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{1.4, 1.5}
	cHist := []mat.Vec{{1.2, 1.3}, {1.2, 1.3}, {1.2, 1.3}}
	for i := 0; i < 5; i++ { // warm up buffers, workspace, and active set
		if _, err := ctl.Compute(tHist, cHist); err != nil {
			t.Fatal(err)
		}
	}
	var cErr error
	allocs := testing.AllocsPerRun(200, func() {
		_, cErr = ctl.Compute(tHist, cHist)
	})
	if cErr != nil {
		t.Fatal(cErr)
	}
	if allocs != 0 {
		t.Fatalf("Compute allocates %v objects/op in steady state, want 0", allocs)
	}
}

// TestComputeZeroAllocRelaxedPath gates the infeasible-terminal branch
// too: a sustained surge drives the controller through the relaxed QP
// every period, which must be equally allocation-free once warm.
func TestComputeZeroAllocRelaxedPath(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	cfg := defaultConfig()
	cfg.CMax = mat.Vec{1.0, 1.0}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{30, 30}
	cHist := []mat.Vec{{0.9, 0.9}, {0.9, 0.9}}
	res, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TerminalRelaxed {
		t.Fatal("setup: surge did not force the relaxed path")
	}
	for i := 0; i < 5; i++ {
		if _, err := ctl.Compute(tHist, cHist); err != nil {
			t.Fatal(err)
		}
	}
	var cErr error
	allocs := testing.AllocsPerRun(200, func() {
		_, cErr = ctl.Compute(tHist, cHist)
	})
	if cErr != nil {
		t.Fatal(cErr)
	}
	if allocs != 0 {
		t.Fatalf("relaxed Compute allocates %v objects/op in steady state, want 0", allocs)
	}
}
