package mpc

import (
	"testing"

	"vdcpower/internal/mat"
)

// TestSolveStatsAccumulate pins the scorecard-facing tallies: every
// Compute counts one terminal QP solve, warm attempts start with the
// second period, and a clean run records no relaxations or fallbacks.
func TestSolveStatsAccumulate(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	simulate(t, ctl, 10, mat.Vec{1, 1}, 2.0)
	st := ctl.Stats()
	if st.Solves != 10 {
		t.Fatalf("solves = %d, want 10", st.Solves)
	}
	if st.WarmAttempts != 9 {
		t.Fatalf("warm attempts = %d, want 9", st.WarmAttempts)
	}
	if st.Relaxations != 0 || st.Fallbacks != 0 {
		t.Fatalf("clean run recorded relaxations=%d fallbacks=%d", st.Relaxations, st.Fallbacks)
	}
	hit := float64(st.WarmAttempts-st.ColdRetries) / float64(st.Solves)
	if hit <= 0.5 {
		t.Fatalf("warm hit rate %v suspiciously low for a slowly varying program", hit)
	}
}

// TestSolveStatsCountRelaxation drives the infeasible-surge path (same
// setup as TestInfeasibleSurgeRelaxesTerminal) and checks it is counted.
func TestSolveStatsCountRelaxation(t *testing.T) {
	cfg := defaultConfig()
	cfg.CMax = mat.Vec{1.2, 1.2}
	cfg.M = 1
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{30.0, 30.0}
	cHist := []mat.Vec{{1.1, 1.1}, {1.1, 1.1}, {1.1, 1.1}}
	res, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TerminalRelaxed {
		t.Skip("surge no longer infeasible; relaxation path not exercised")
	}
	st := ctl.Stats()
	if st.Relaxations != 1 {
		t.Fatalf("relaxations = %d, want 1", st.Relaxations)
	}
	if st.Solves != 2 {
		t.Fatalf("solves = %d, want 2 (terminal + relaxed)", st.Solves)
	}
}

// TestSolveStatsDisabledWarmStart: with warm starts bypassed the QP
// tallies stay zero — documented disabled-instrument behavior.
func TestSolveStatsDisabledWarmStart(t *testing.T) {
	cfg := defaultConfig()
	cfg.DisableWarmStart = true
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simulate(t, ctl, 5, mat.Vec{1, 1}, 2.0)
	st := ctl.Stats()
	if st.Solves != 0 || st.WarmAttempts != 0 {
		t.Fatalf("stats with warm start disabled = %+v, want zero QP tallies", st)
	}
}

// TestSolveStatsAdd pins the folding helper.
func TestSolveStatsAdd(t *testing.T) {
	a := SolveStats{Solves: 1, WarmAttempts: 2, ColdRetries: 3, Relaxations: 4, Fallbacks: 5}
	a.Add(SolveStats{Solves: 10, WarmAttempts: 20, ColdRetries: 30, Relaxations: 40, Fallbacks: 50})
	want := SolveStats{Solves: 11, WarmAttempts: 22, ColdRetries: 33, Relaxations: 44, Fallbacks: 55}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}
