// Package mpc implements the model predictive controller of Section IV-B:
// at the end of every control period it minimizes the cost function
//
//	J(k) = Σ_{i=1..P} ‖t(k+i|k) − ref(k+i|k)‖²_Q + Σ_{i=0..M−1} ‖Δc(k+i|k)‖²_R
//
// over the input trajectory Δc, subject to the terminal constraint
// t(k+M|k) = Ts (Eq. 4) and box constraints on the absolute CPU
// allocations, where ref is the exponential reference trajectory of
// Eq. (3). Predictions come from the identified ARX model (package sysid);
// the optimization reduces to an inequality-constrained least squares
// problem solved by package mat. Only the first move is applied
// (receding horizon).
package mpc

import (
	"errors"
	"fmt"
	"math"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/units"
)

// Config parameterizes a controller for one application.
type Config struct {
	Model *sysid.Model

	P int // prediction horizon, in control periods
	M int // control horizon, M <= P

	Q           float64      // tracking error weight
	R           mat.Vec      // control penalty per input (length = Model.NumInputs)
	TrefPeriods float64      // reference trajectory time constant, in control periods
	Setpoint    units.Second // Ts, the desired response time (seconds)

	CMin, CMax mat.Vec     // absolute allocation bounds per input (GHz)
	DeltaMax   units.Hertz // optional per-period |Δc| bound per input; 0 = unbounded

	// LevelPenalty optionally adds a small cost on the absolute
	// allocation level above CMin, so that among the many allocations
	// achieving the set point the controller drifts to the cheapest one
	// (most CPU on the highest-gain tier). This is the economic reading
	// of the paper's remark that R can "give preference to increasing"
	// the hungrier VM; 0 disables it and reproduces the paper's cost
	// (Eq. 2) exactly.
	LevelPenalty float64
}

// Controller solves the receding-horizon problem. It is stateless across
// calls: callers provide the measurement history.
type Controller struct {
	cfg   Config
	m     int              // number of inputs
	trace *telemetry.Track // set via SetTrace; nil keeps tracing off
}

// SetTrace implements telemetry.Traceable: each Compute records an
// "mpc.solve" span nesting "mpc.model_update" and "mpc.qp".
func (c *Controller) SetTrace(tk *telemetry.Track) { c.trace = tk }

// New validates the configuration and returns a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Model == nil {
		return nil, errors.New("mpc: nil model")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	m := cfg.Model.NumInputs
	if cfg.P < 1 || cfg.M < 1 || cfg.M > cfg.P {
		return nil, fmt.Errorf("mpc: bad horizons P=%d M=%d", cfg.P, cfg.M)
	}
	if cfg.Q <= 0 {
		return nil, errors.New("mpc: Q must be positive")
	}
	if len(cfg.R) != m {
		return nil, fmt.Errorf("mpc: R has %d entries, want %d", len(cfg.R), m)
	}
	for _, r := range cfg.R {
		if r <= 0 {
			return nil, errors.New("mpc: R entries must be positive")
		}
	}
	if cfg.TrefPeriods <= 0 {
		return nil, errors.New("mpc: TrefPeriods must be positive")
	}
	if cfg.Setpoint <= 0 {
		return nil, errors.New("mpc: Setpoint must be positive")
	}
	if len(cfg.CMin) != m || len(cfg.CMax) != m {
		return nil, fmt.Errorf("mpc: bounds length mismatch (want %d)", m)
	}
	for i := range cfg.CMin {
		if cfg.CMin[i] < 0 || cfg.CMax[i] <= cfg.CMin[i] {
			return nil, fmt.Errorf("mpc: invalid bounds for input %d: [%v, %v]", i, cfg.CMin[i], cfg.CMax[i])
		}
	}
	return &Controller{cfg: cfg, m: m}, nil
}

// Setpoint returns the configured response-time target.
func (c *Controller) Setpoint() units.Second { return c.cfg.Setpoint }

// SetSetpoint retargets the controller (used by the set-point sweep of
// Fig. 5).
func (c *Controller) SetSetpoint(ts units.Second) { c.cfg.Setpoint = ts }

// Result carries the control decision and diagnostics.
type Result struct {
	Delta     mat.Vec        // Δc(k): change to apply to each input now
	Predicted []units.Second // predicted t(k+1..k+P) under the chosen trajectory
	// TerminalRelaxed reports that the terminal constraint had to be
	// dropped to keep the problem feasible (e.g. a workload surge that
	// even maximum allocation cannot absorb within M periods).
	TerminalRelaxed bool
}

// Compute solves the receding-horizon problem. tPast[0] is the current
// measurement t(k), tPast[1] is t(k−1), and so on (at least Model.Na+1
// entries). cPast[0] is the most recently applied allocation c(k−1), etc.
// (at least Model.Nb entries).
//
//vdc:hotpath mpc/solve
func (c *Controller) Compute(tPast []units.Second, cPast []mat.Vec) (Result, error) {
	cfg := c.cfg
	if len(tPast) < cfg.Model.Na+1 {
		return Result{}, fmt.Errorf("mpc: need %d response samples, have %d", cfg.Model.Na+1, len(tPast))
	}
	if len(cPast) < cfg.Model.Nb {
		return Result{}, fmt.Errorf("mpc: need %d allocation samples, have %d", cfg.Model.Nb, len(cPast))
	}
	for _, cv := range cPast {
		if len(cv) != c.m {
			return Result{}, fmt.Errorf("mpc: allocation dimension %d, want %d", len(cv), c.m)
		}
		for _, x := range cv {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return Result{}, fmt.Errorf("mpc: non-finite allocation history %v", x)
			}
		}
	}
	// A single NaN in the regressor would propagate through every rollout
	// and poison the QP; reject it here so callers' measurement guards have
	// a hard backstop.
	for _, t := range tPast {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return Result{}, fmt.Errorf("mpc: non-finite response history %v", t)
		}
	}

	nu := cfg.M * c.m // number of unknowns
	sp := c.trace.Start("mpc.solve").Int("horizon_p", cfg.P).Int("horizon_m", cfg.M)
	mu := c.trace.Start("mpc.model_update")

	// Feedback correction (the MPC re-computation rationale of Section
	// IV-B): the constant output disturbance that reconciles the model's
	// one-step prediction with the actual measurement. Propagating it
	// through the rollout gives offset-free tracking under model
	// mismatch.
	bias := tPast[0] - cfg.Model.Predict(tPast[1:], cPast)

	// Free response and dynamic matrix by superposition: the ARX model is
	// linear, so each unknown's effect is one forward rollout.
	free := c.rollout(tPast, cPast, nil, bias)
	g := mat.NewMat(cfg.P, nu)
	unit := make(mat.Vec, nu)
	for q := 0; q < nu; q++ {
		unit[q] = 1
		resp := c.rollout(tPast, cPast, unit, bias)
		for i := 0; i < cfg.P; i++ {
			g.Set(i, q, resp[i]-free[i])
		}
		unit[q] = 0
	}
	mu.Float("bias", bias).End()

	// Reference trajectory, Eq. (3).
	tNow := tPast[0]
	ref := make([]units.Second, cfg.P)
	for i := 1; i <= cfg.P; i++ {
		ref[i-1] = cfg.Setpoint - math.Exp(-float64(i)/cfg.TrefPeriods)*(cfg.Setpoint-tNow)
	}

	// Least-squares rows: sqrt(Q)·(G·Δ − (ref − free)), sqrt(R)·Δ, and
	// optionally sqrt(LevelPenalty)·(c_final − CMin).
	rows := cfg.P + nu
	if cfg.LevelPenalty > 0 {
		rows += c.m
	}
	a := mat.NewMat(rows, nu)
	b := make(mat.Vec, rows)
	sq := math.Sqrt(cfg.Q)
	for i := 0; i < cfg.P; i++ {
		for q := 0; q < nu; q++ {
			a.Set(i, q, sq*g.At(i, q))
		}
		b[i] = sq * (ref[i] - free[i])
	}
	for q := 0; q < nu; q++ {
		a.Set(cfg.P+q, q, math.Sqrt(cfg.R[q%c.m]))
		// b stays 0: penalize the move itself.
	}
	if cfg.LevelPenalty > 0 {
		// Final allocation level: c(k+M−1)[i] = c0[i] + Σ_l Δ[l·m+i].
		sl := math.Sqrt(cfg.LevelPenalty)
		for i := 0; i < c.m; i++ {
			r := cfg.P + nu + i
			for l := 0; l < cfg.M; l++ {
				a.Set(r, l*c.m+i, sl)
			}
			b[r] = sl * (cfg.CMin[i] - cPast[0][i])
		}
	}

	// Terminal constraint (Eq. 4): t(k+M|k) = Ts.
	cEq := mat.NewMat(1, nu)
	for q := 0; q < nu; q++ {
		cEq.Set(0, q, g.At(cfg.M-1, q))
	}
	dEq := mat.Vec{cfg.Setpoint - free[cfg.M-1]}

	gIneq, hIneq := c.bounds(cPast[0])

	qp := c.trace.Start("mpc.qp").Int("unknowns", nu)
	res := Result{}
	fallback := false
	x, err := mat.InequalityLS(a, b, cEq, dEq, gIneq, hIneq)
	if err != nil {
		// The terminal constraint can make the program infeasible under a
		// surge (the paper assumes feasibility — Section IV-A). Relax it
		// and chase the set point directly: tracking the slow exponential
		// reference would perversely hold the response time up.
		res.TerminalRelaxed = true
		for i := 0; i < cfg.P; i++ {
			b[i] = sq * (cfg.Setpoint - free[i])
		}
		x, err = mat.InequalityLS(a, b, nil, nil, gIneq, hIneq)
		if err != nil {
			// Last resort: unconstrained solve, then clamp the first move.
			fallback = true
			x, err = mat.LeastSquares(a, b)
			if err != nil {
				qp.Bool("relaxed", true).Bool("fallback", true).End()
				sp.End()
				return Result{}, fmt.Errorf("mpc: optimization failed: %w", err)
			}
			c.clampFirstMove(x, cPast[0])
		}
	}
	qp.Bool("relaxed", res.TerminalRelaxed).Bool("fallback", fallback).End()

	res.Delta = mat.Vec(x[:c.m]).Clone()
	res.Predicted = c.rollout(tPast, cPast, x, bias)
	sp.End()
	return res, nil
}

// rollout simulates the ARX model P periods forward, applying the
// feedback-correction bias at every step (and feeding corrected values
// back through the autoregression, which pins the free response to the
// measurement when the loop is at rest). delta holds the stacked moves
// (len M·m) or nil for the free response.
func (c *Controller) rollout(tPast []units.Second, cPast []mat.Vec, delta mat.Vec, bias units.Second) []units.Second {
	cfg := c.cfg
	model := cfg.Model
	//lint:ignore hotalloc per-rollout history scratch; ROADMAP item 2 moves these into controller-owned buffers
	th := append([]units.Second(nil), tPast...)
	//lint:ignore hotalloc per-rollout history scratch; ROADMAP item 2 moves these into controller-owned buffers
	ch := make([]mat.Vec, len(cPast))
	for i, v := range cPast {
		ch[i] = v.Clone()
	}
	cur := cPast[0].Clone()
	//lint:ignore hotalloc per-rollout history scratch; ROADMAP item 2 moves these into controller-owned buffers
	out := make([]units.Second, cfg.P)
	for i := 0; i < cfg.P; i++ {
		if delta != nil && i < cfg.M {
			for j := 0; j < c.m; j++ {
				cur[j] += delta[i*c.m+j]
			}
		}
		//lint:ignore hotalloc sliding-window prepend allocates per step; ROADMAP item 2 replaces it with a ring buffer
		ch = append([]mat.Vec{cur.Clone()}, ch...)
		if len(ch) > model.Nb+1 {
			ch = ch[:model.Nb+1]
		}
		t := model.Predict(th, ch) + bias
		out[i] = t
		//lint:ignore hotalloc sliding-window prepend allocates per step; ROADMAP item 2 replaces it with a ring buffer
		th = append([]units.Second{t}, th...)
		if len(th) > model.Na+1 {
			th = th[:model.Na+1]
		}
	}
	return out
}

// bounds builds the inequality rows: box constraints on the absolute
// allocations over the control horizon, plus optional per-move bounds.
func (c *Controller) bounds(c0 mat.Vec) (*mat.Mat, mat.Vec) {
	cfg := c.cfg
	nu := cfg.M * c.m
	var rows [][]float64
	var rhs mat.Vec
	for l := 0; l < cfg.M; l++ {
		for i := 0; i < c.m; i++ {
			// c(k+l)[i] = c0[i] + Σ_{q<=l} Δ[q·m+i]
			upper := make([]float64, nu)
			lower := make([]float64, nu)
			for q := 0; q <= l; q++ {
				upper[q*c.m+i] = 1
				lower[q*c.m+i] = -1
			}
			rows = append(rows, upper)
			rhs = append(rhs, cfg.CMax[i]-c0[i])
			rows = append(rows, lower)
			rhs = append(rhs, c0[i]-cfg.CMin[i])
		}
	}
	if cfg.DeltaMax > 0 {
		for q := 0; q < nu; q++ {
			up := make([]float64, nu)
			dn := make([]float64, nu)
			up[q] = 1
			dn[q] = -1
			rows = append(rows, up, dn)
			rhs = append(rhs, cfg.DeltaMax, cfg.DeltaMax)
		}
	}
	return mat.FromRows(rows), rhs
}

// clampFirstMove forces the first move to respect the allocation box.
func (c *Controller) clampFirstMove(x mat.Vec, c0 mat.Vec) {
	for i := 0; i < c.m; i++ {
		next := c0[i] + x[i]
		if next > c.cfg.CMax[i] {
			x[i] = c.cfg.CMax[i] - c0[i]
		}
		if next < c.cfg.CMin[i] {
			x[i] = c.cfg.CMin[i] - c0[i]
		}
		if c.cfg.DeltaMax > 0 {
			if x[i] > c.cfg.DeltaMax {
				x[i] = c.cfg.DeltaMax
			}
			if x[i] < -c.cfg.DeltaMax {
				x[i] = -c.cfg.DeltaMax
			}
		}
	}
}
