// Package mpc implements the model predictive controller of Section IV-B:
// at the end of every control period it minimizes the cost function
//
//	J(k) = Σ_{i=1..P} ‖t(k+i|k) − ref(k+i|k)‖²_Q + Σ_{i=0..M−1} ‖Δc(k+i|k)‖²_R
//
// over the input trajectory Δc, subject to the terminal constraint
// t(k+M|k) = Ts (Eq. 4) and box constraints on the absolute CPU
// allocations, where ref is the exponential reference trajectory of
// Eq. (3). Predictions come from the identified ARX model (package sysid);
// the optimization reduces to an inequality-constrained least squares
// problem solved by package mat. Only the first move is applied
// (receding horizon).
package mpc

import (
	"errors"
	"fmt"
	"math"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/units"
)

// Config parameterizes a controller for one application.
type Config struct {
	Model *sysid.Model

	P int // prediction horizon, in control periods
	M int // control horizon, M <= P

	Q           float64      // tracking error weight
	R           mat.Vec      // control penalty per input (length = Model.NumInputs)
	TrefPeriods float64      // reference trajectory time constant, in control periods
	Setpoint    units.Second // Ts, the desired response time (seconds)

	CMin, CMax mat.Vec     // absolute allocation bounds per input (GHz)
	DeltaMax   units.Hertz // optional per-period |Δc| bound per input; 0 = unbounded

	// LevelPenalty optionally adds a small cost on the absolute
	// allocation level above CMin, so that among the many allocations
	// achieving the set point the controller drifts to the cheapest one
	// (most CPU on the highest-gain tier). This is the economic reading
	// of the paper's remark that R can "give preference to increasing"
	// the hungrier VM; 0 disables it and reproduces the paper's cost
	// (Eq. 2) exactly.
	LevelPenalty float64

	// DisableWarmStart forces every period's QP to start from an empty
	// active set instead of the previous period's solution. The warm
	// start is equivalence-tested against this cold path (see the
	// package tests); the knob exists for those tests and debugging.
	DisableWarmStart bool
}

// Controller solves the receding-horizon problem. Callers provide the
// measurement history each period; the controller itself only carries
// solver scratch and the previous period's QP active set (the warm
// start), both of which affect performance, never results beyond
// floating-point tolerance. Compute reuses controller-owned buffers, so
// a Controller must not be shared by concurrent Compute calls.
type Controller struct {
	cfg   Config
	m     int              // number of inputs
	trace *telemetry.Track // set via SetTrace; nil keeps tracing off

	// Solver state and scratch, sized once in New so that a steady-state
	// Compute performs no heap allocation (ROADMAP item 2).
	ws      *mat.Workspace
	qpTerm  mat.QPState    // warm start of the terminal-constrained program
	qpRelax mat.QPState    // warm start of the relaxed program
	g       *mat.Mat       // dynamic matrix G (P×nu)
	a       *mat.Mat       // stacked least-squares rows
	b       mat.Vec        // matching right-hand side
	ref     []units.Second // reference trajectory, Eq. (3)
	free    []units.Second // free response
	resp    []units.Second // per-unknown rollout response
	unit    mat.Vec        // basis vector for superposition rollouts
	cEq     *mat.Mat       // terminal constraint row
	dEq     mat.Vec
	gIneq   *mat.Mat       // inequality geometry, fixed per Config
	hIneq   mat.Vec        // inequality rhs, refreshed per call
	delta   mat.Vec        // Result.Delta backing
	pred    []units.Second // Result.Predicted backing
	thBuf   []units.Second // rollout response-history ring
	cBuf    mat.Vec        // rollout allocation-history ring backing
	cViews  []mat.Vec      // per-step views into cBuf
	cur     mat.Vec        // rollout running allocation

	// Solve-quality tallies for the health scorecard (ints only, no
	// effect on the floating-point path).
	relaxations int // Computes that dropped the terminal constraint
	fallbacks   int // Computes that fell back to the clamped LS solve
}

// SetTrace implements telemetry.Traceable: each Compute records an
// "mpc.solve" span nesting "mpc.model_update" and "mpc.qp".
func (c *Controller) SetTrace(tk *telemetry.Track) { c.trace = tk }

// New validates the configuration and returns a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Model == nil {
		return nil, errors.New("mpc: nil model")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	m := cfg.Model.NumInputs
	if cfg.P < 1 || cfg.M < 1 || cfg.M > cfg.P {
		return nil, fmt.Errorf("mpc: bad horizons P=%d M=%d", cfg.P, cfg.M)
	}
	if cfg.Q <= 0 {
		return nil, errors.New("mpc: Q must be positive")
	}
	if len(cfg.R) != m {
		return nil, fmt.Errorf("mpc: R has %d entries, want %d", len(cfg.R), m)
	}
	for _, r := range cfg.R {
		if r <= 0 {
			return nil, errors.New("mpc: R entries must be positive")
		}
	}
	if cfg.TrefPeriods <= 0 {
		return nil, errors.New("mpc: TrefPeriods must be positive")
	}
	if cfg.Setpoint <= 0 {
		return nil, errors.New("mpc: Setpoint must be positive")
	}
	if len(cfg.CMin) != m || len(cfg.CMax) != m {
		return nil, fmt.Errorf("mpc: bounds length mismatch (want %d)", m)
	}
	for i := range cfg.CMin {
		if cfg.CMin[i] < 0 || cfg.CMax[i] <= cfg.CMin[i] {
			return nil, fmt.Errorf("mpc: invalid bounds for input %d: [%v, %v]", i, cfg.CMin[i], cfg.CMax[i])
		}
	}

	c := &Controller{cfg: cfg, m: m}
	nu := cfg.M * m
	rows := cfg.P + nu
	if cfg.LevelPenalty > 0 {
		rows += m
	}
	c.ws = mat.NewWorkspace()
	c.g = mat.NewMat(cfg.P, nu)
	c.a = mat.NewMat(rows, nu)
	c.b = make(mat.Vec, rows)
	c.ref = make([]units.Second, cfg.P)
	c.free = make([]units.Second, cfg.P)
	c.resp = make([]units.Second, cfg.P)
	c.unit = make(mat.Vec, nu)
	c.cEq = mat.NewMat(1, nu)
	c.dEq = make(mat.Vec, 1)
	c.delta = make(mat.Vec, m)
	c.pred = make([]units.Second, cfg.P)
	c.thBuf = make([]units.Second, cfg.P+cfg.Model.Na+1)
	c.cBuf = make(mat.Vec, (cfg.P+cfg.Model.Nb)*m)
	c.cViews = make([]mat.Vec, cfg.P+cfg.Model.Nb)
	for i := range c.cViews {
		c.cViews[i] = c.cBuf[i*m : (i+1)*m]
	}
	c.cur = make(mat.Vec, m)

	// Constant pieces of the least-squares system: the sqrt(R) block
	// (its rhs stays zero — the cost penalizes the move itself) and the
	// level-penalty coefficient pattern.
	for q := 0; q < nu; q++ {
		c.a.Set(cfg.P+q, q, math.Sqrt(cfg.R[q%m]))
	}
	if cfg.LevelPenalty > 0 {
		sl := math.Sqrt(cfg.LevelPenalty)
		for i := 0; i < m; i++ {
			for l := 0; l < cfg.M; l++ {
				c.a.Set(cfg.P+nu+i, l*m+i, sl)
			}
		}
	}
	c.buildBounds()
	return c, nil
}

// Setpoint returns the configured response-time target.
func (c *Controller) Setpoint() units.Second { return c.cfg.Setpoint }

// SetSetpoint retargets the controller (used by the set-point sweep of
// Fig. 5).
func (c *Controller) SetSetpoint(ts units.Second) { c.cfg.Setpoint = ts }

// Result carries the control decision and diagnostics. Delta and
// Predicted are views into buffers owned by the Controller, valid until
// its next Compute call; callers that keep them longer must copy.
type Result struct {
	Delta     mat.Vec        // Δc(k): change to apply to each input now
	Predicted []units.Second // predicted t(k+1..k+P) under the chosen trajectory
	// TerminalRelaxed reports that the terminal constraint had to be
	// dropped to keep the problem feasible (e.g. a workload surge that
	// even maximum allocation cannot absorb within M periods).
	TerminalRelaxed bool
}

// Compute solves the receding-horizon problem. tPast[0] is the current
// measurement t(k), tPast[1] is t(k−1), and so on (at least Model.Na+1
// entries). cPast[0] is the most recently applied allocation c(k−1), etc.
// (at least Model.Nb entries).
//
//vdc:hotpath mpc/solve
func (c *Controller) Compute(tPast []units.Second, cPast []mat.Vec) (Result, error) {
	cfg := c.cfg
	if len(tPast) < cfg.Model.Na+1 {
		return Result{}, fmt.Errorf("mpc: need %d response samples, have %d", cfg.Model.Na+1, len(tPast))
	}
	if len(cPast) < cfg.Model.Nb {
		return Result{}, fmt.Errorf("mpc: need %d allocation samples, have %d", cfg.Model.Nb, len(cPast))
	}
	for _, cv := range cPast {
		if len(cv) != c.m {
			return Result{}, fmt.Errorf("mpc: allocation dimension %d, want %d", len(cv), c.m)
		}
		for _, x := range cv {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return Result{}, fmt.Errorf("mpc: non-finite allocation history %v", x)
			}
		}
	}
	// A single NaN in the regressor would propagate through every rollout
	// and poison the QP; reject it here so callers' measurement guards have
	// a hard backstop.
	for _, t := range tPast {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return Result{}, fmt.Errorf("mpc: non-finite response history %v", t)
		}
	}

	nu := cfg.M * c.m // number of unknowns
	sp := c.trace.Start("mpc.solve").Int("horizon_p", cfg.P).Int("horizon_m", cfg.M)
	mu := c.trace.Start("mpc.model_update")

	// Feedback correction (the MPC re-computation rationale of Section
	// IV-B): the constant output disturbance that reconciles the model's
	// one-step prediction with the actual measurement. Propagating it
	// through the rollout gives offset-free tracking under model
	// mismatch.
	bias := tPast[0] - cfg.Model.Predict(tPast[1:], cPast)

	// Free response and dynamic matrix by superposition: the ARX model is
	// linear, so each unknown's effect is one forward rollout.
	c.rollout(tPast, cPast, nil, bias, c.free)
	for q := 0; q < nu; q++ {
		c.unit[q] = 1
		c.rollout(tPast, cPast, c.unit, bias, c.resp)
		for i := 0; i < cfg.P; i++ {
			c.g.Set(i, q, c.resp[i]-c.free[i])
		}
		c.unit[q] = 0
	}
	mu.Float("bias", bias).End()

	// Reference trajectory, Eq. (3).
	tNow := tPast[0]
	for i := 1; i <= cfg.P; i++ {
		c.ref[i-1] = cfg.Setpoint - math.Exp(-float64(i)/cfg.TrefPeriods)*(cfg.Setpoint-tNow)
	}

	// Least-squares rows: sqrt(Q)·(G·Δ − (ref − free)), sqrt(R)·Δ, and
	// optionally sqrt(LevelPenalty)·(c_final − CMin). The sqrt(R) block
	// and the level-penalty coefficients are constant, set in New.
	sq := math.Sqrt(cfg.Q)
	for i := 0; i < cfg.P; i++ {
		for q := 0; q < nu; q++ {
			c.a.Set(i, q, sq*c.g.At(i, q))
		}
		c.b[i] = sq * (c.ref[i] - c.free[i])
	}
	if cfg.LevelPenalty > 0 {
		// Final allocation level: c(k+M−1)[i] = c0[i] + Σ_l Δ[l·m+i].
		sl := math.Sqrt(cfg.LevelPenalty)
		for i := 0; i < c.m; i++ {
			c.b[cfg.P+nu+i] = sl * (cfg.CMin[i] - cPast[0][i])
		}
	}

	// Terminal constraint (Eq. 4): t(k+M|k) = Ts.
	for q := 0; q < nu; q++ {
		c.cEq.Set(0, q, c.g.At(cfg.M-1, q))
	}
	c.dEq[0] = cfg.Setpoint - c.free[cfg.M-1]

	c.fillBounds(cPast[0])

	qp := c.trace.Start("mpc.qp").Int("unknowns", nu)
	res := Result{}
	fallback := false
	x, err := mat.InequalityLSW(c.ws, c.qpState(&c.qpTerm), c.a, c.b, c.cEq, c.dEq, c.gIneq, c.hIneq)
	if err != nil {
		// The terminal constraint can make the program infeasible under a
		// surge (the paper assumes feasibility — Section IV-A). Relax it
		// and chase the set point directly: tracking the slow exponential
		// reference would perversely hold the response time up.
		res.TerminalRelaxed = true
		c.relaxations++
		for i := 0; i < cfg.P; i++ {
			c.b[i] = sq * (cfg.Setpoint - c.free[i])
		}
		x, err = mat.InequalityLSW(c.ws, c.qpState(&c.qpRelax), c.a, c.b, nil, nil, c.gIneq, c.hIneq)
		if err != nil {
			// Last resort: unconstrained solve, then clamp the first move.
			fallback = true
			c.fallbacks++
			x, err = mat.LeastSquares(c.a, c.b)
			if err != nil {
				qp.Bool("relaxed", true).Bool("fallback", true).End()
				sp.End()
				return Result{}, fmt.Errorf("mpc: optimization failed: %w", err)
			}
			c.clampFirstMove(x, cPast[0])
		}
	}
	qp.Bool("relaxed", res.TerminalRelaxed).Bool("fallback", fallback).End()

	copy(c.delta, x[:c.m])
	res.Delta = c.delta
	c.rollout(tPast, cPast, x, bias, c.pred)
	res.Predicted = c.pred
	sp.End()
	return res, nil
}

// SolveStats summarizes a controller's QP solve history for the health
// scorecard: the warm-start tallies of both programs (terminal and
// relaxed) plus the relaxation and fallback counts. With warm starts
// disabled the QP tallies stay zero (the states are bypassed).
type SolveStats struct {
	Solves       int // QP solves attempted (both programs)
	WarmAttempts int // solves started from a previous active set
	ColdRetries  int // warm attempts that failed and were retried cold
	Relaxations  int // Computes that dropped the terminal constraint
	Fallbacks    int // Computes that fell back to the clamped LS solve
}

// Add folds o into s (for summing stats across controllers).
func (s *SolveStats) Add(o SolveStats) {
	s.Solves += o.Solves
	s.WarmAttempts += o.WarmAttempts
	s.ColdRetries += o.ColdRetries
	s.Relaxations += o.Relaxations
	s.Fallbacks += o.Fallbacks
}

// Stats returns the controller's cumulative solve tallies.
func (c *Controller) Stats() SolveStats {
	term, relax := c.qpTerm.Stats(), c.qpRelax.Stats()
	return SolveStats{
		Solves:       term.Solves + relax.Solves,
		WarmAttempts: term.WarmAttempts + relax.WarmAttempts,
		ColdRetries:  term.ColdRetries + relax.ColdRetries,
		Relaxations:  c.relaxations,
		Fallbacks:    c.fallbacks,
	}
}

// qpState returns st, or nil when warm starts are disabled.
func (c *Controller) qpState(st *mat.QPState) *mat.QPState {
	if c.cfg.DisableWarmStart {
		return nil
	}
	return st
}

// rollout simulates the ARX model P periods forward into out (length P),
// applying the feedback-correction bias at every step (and feeding
// corrected values back through the autoregression, which pins the free
// response to the measurement when the loop is at rest). delta holds the
// stacked moves (len M·m) or nil for the free response.
//
// The trajectory rings thBuf/cViews are filled backwards from index P —
// slot P+j holds history sample j, slot P−1−i holds step i's output —
// so each step's most-recent-first history for Predict is a zero-copy
// subslice instead of the old per-step prepend allocation.
func (c *Controller) rollout(tPast []units.Second, cPast []mat.Vec, delta mat.Vec, bias units.Second, out []units.Second) {
	cfg := c.cfg
	model := cfg.Model
	th := c.thBuf
	for j := 0; j <= model.Na; j++ {
		th[cfg.P+j] = tPast[j]
	}
	cv := c.cViews
	for j := 0; j < model.Nb; j++ {
		copy(cv[cfg.P+j], cPast[j])
	}
	cur := c.cur
	copy(cur, cPast[0])
	for i := 0; i < cfg.P; i++ {
		if delta != nil && i < cfg.M {
			for j := 0; j < c.m; j++ {
				cur[j] += delta[i*c.m+j]
			}
		}
		copy(cv[cfg.P-1-i], cur)
		t := model.Predict(th[cfg.P-i:], cv[cfg.P-1-i:]) + bias
		out[i] = t
		th[cfg.P-1-i] = t
	}
}

// buildBounds lays out the inequality geometry once: box constraints on
// the absolute allocations over the control horizon, plus optional
// per-move bounds. Only the right-hand side depends on the current
// allocation; fillBounds refreshes it each period. A fixed geometry is
// also what lets the QP active set warm-start across periods — row i
// means the same constraint every call.
func (c *Controller) buildBounds() {
	cfg := c.cfg
	nu := cfg.M * c.m
	rows := 2 * cfg.M * c.m
	if cfg.DeltaMax > 0 {
		rows += 2 * nu
	}
	c.gIneq = mat.NewMat(rows, nu)
	c.hIneq = make(mat.Vec, rows)
	r := 0
	for l := 0; l < cfg.M; l++ {
		for i := 0; i < c.m; i++ {
			// c(k+l)[i] = c0[i] + Σ_{q<=l} Δ[q·m+i]
			for q := 0; q <= l; q++ {
				c.gIneq.Set(r, q*c.m+i, 1)    // upper bound row
				c.gIneq.Set(r+1, q*c.m+i, -1) // lower bound row
			}
			r += 2
		}
	}
	if cfg.DeltaMax > 0 {
		for q := 0; q < nu; q++ {
			c.gIneq.Set(r, q, 1)
			c.gIneq.Set(r+1, q, -1)
			r += 2
		}
	}
}

// fillBounds refreshes the inequality right-hand side for the current
// allocation c0, matching the row order laid out by buildBounds.
func (c *Controller) fillBounds(c0 mat.Vec) {
	cfg := c.cfg
	r := 0
	for l := 0; l < cfg.M; l++ {
		for i := 0; i < c.m; i++ {
			c.hIneq[r] = cfg.CMax[i] - c0[i]
			c.hIneq[r+1] = c0[i] - cfg.CMin[i]
			r += 2
		}
	}
	if cfg.DeltaMax > 0 {
		nu := cfg.M * c.m
		for q := 0; q < nu; q++ {
			c.hIneq[r] = cfg.DeltaMax
			c.hIneq[r+1] = cfg.DeltaMax
			r += 2
		}
	}
}

// clampFirstMove forces the first move to respect the allocation box.
func (c *Controller) clampFirstMove(x mat.Vec, c0 mat.Vec) {
	for i := 0; i < c.m; i++ {
		next := c0[i] + x[i]
		if next > c.cfg.CMax[i] {
			x[i] = c.cfg.CMax[i] - c0[i]
		}
		if next < c.cfg.CMin[i] {
			x[i] = c.cfg.CMin[i] - c0[i]
		}
		if c.cfg.DeltaMax > 0 {
			if x[i] > c.cfg.DeltaMax {
				x[i] = c.cfg.DeltaMax
			}
			if x[i] < -c.cfg.DeltaMax {
				x[i] = -c.cfg.DeltaMax
			}
		}
	}
}
