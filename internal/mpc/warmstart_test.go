package mpc

// Warm-start equivalence (ROADMAP item 2): a controller reusing the
// previous period's active set must produce the same closed-loop moves
// as one that starts every QP cold. The programs are strictly convex
// (R > 0), so the minimizer is unique and the two paths may differ only
// by solver round-off; 1e-8 absolute on a ~1 GHz scale is the documented
// tolerance.

import (
	"math"
	"testing"

	"vdcpower/internal/mat"
)

// TestWarmStartMatchesColdClosedLoop runs warm and cold controllers side
// by side through 100 periods of the perfect-model loop, including a
// mid-run surge that forces the infeasible-terminal fallback (relaxed
// QP) on both: the warm controller must track the cold one before,
// during, and — critically — after the fallback, when its stored active
// set comes from a differently shaped program.
func TestWarmStartMatchesColdClosedLoop(t *testing.T) {
	cfg := defaultConfig()
	cfg.CMax = mat.Vec{1.5, 1.5} // tight enough that the surge is infeasible
	cold := cfg
	cold.DisableWarmStart = true
	ctlWarm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctlCold, err := New(cold)
	if err != nil {
		t.Fatal(err)
	}

	model := plantModel()
	tHist := []float64{3.0, 3.0}
	cHist := []mat.Vec{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	cur := mat.Vec{0.5, 0.5}
	relaxedSeen := false
	for k := 0; k < 100; k++ {
		resW, errW := ctlWarm.Compute(tHist, cHist)
		resC, errC := ctlCold.Compute(tHist, cHist)
		if errW != nil || errC != nil {
			t.Fatalf("period %d: warm err %v, cold err %v", k, errW, errC)
		}
		if resW.TerminalRelaxed != resC.TerminalRelaxed {
			t.Fatalf("period %d: relaxed disagrees (warm %v, cold %v)",
				k, resW.TerminalRelaxed, resC.TerminalRelaxed)
		}
		relaxedSeen = relaxedSeen || resW.TerminalRelaxed
		for i := range resC.Delta {
			if math.Abs(resW.Delta[i]-resC.Delta[i]) > 1e-8 {
				t.Fatalf("period %d tier %d: warm Δ %v, cold Δ %v",
					k, i, resW.Delta[i], resC.Delta[i])
			}
		}
		// Advance the plant with the cold move so both controllers keep
		// seeing identical histories.
		cur = cur.Add(resC.Delta)
		cHist = append([]mat.Vec{cur.Clone()}, cHist...)[:3]
		y := model.Predict(tHist, cHist)
		if k >= 40 && k < 43 {
			y = 30 // measurement surge: terminal equality turns infeasible
		}
		tHist = append([]float64{y}, tHist...)[:2]
	}
	if !relaxedSeen {
		t.Fatal("test never exercised the infeasible-terminal fallback")
	}
}

// TestWarmStartRepeatedSolveIdentical solves the identical program twice
// through one controller: with an unchanged program the warm start must
// converge to exactly the same answer (same active set, same KKT system,
// same floating-point operations).
func TestWarmStartRepeatedSolveIdentical(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{2.0, 2.0}
	cHist := []mat.Vec{{1, 1}, {1, 1}}
	first, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	d0 := first.Delta.Clone()
	second, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d0 {
		//lint:ignore floatcompare an unchanged program re-solved warm must reproduce its answer exactly
		if second.Delta[i] != d0[i] {
			t.Fatalf("tier %d: second solve Δ %v, first %v", i, second.Delta[i], d0[i])
		}
	}
}

// TestResultViewsInvalidatedByNextCompute pins the documented ownership:
// Result.Delta and Result.Predicted are views into controller-owned
// buffers, overwritten by the next Compute. Callers that keep them must
// Clone — the test demonstrates the overwrite is real, not theoretical.
func TestResultViewsInvalidatedByNextCompute(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resA, err := ctl.Compute([]float64{3, 3}, []mat.Vec{{0.5, 0.5}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	saved := resA.Delta.Clone()
	if _, err := ctl.Compute([]float64{1, 1}, []mat.Vec{{2, 2.2}, {2, 2.2}}); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range saved {
		//lint:ignore floatcompare detecting buffer reuse is the point
		if resA.Delta[i] != saved[i] {
			same = false
		}
	}
	if same {
		t.Skip("second solve produced the same move; reuse not observable here")
	}
}
