package mpc

import (
	"math"
	"math/rand"
	"testing"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
)

// Edge configurations and randomized safety properties.

func singleInputModel() *sysid.Model {
	return &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 1,
		A:     []float64{0.3},
		B:     []mat.Vec{{-0.8}, {-0.2}},
		Gamma: 2.4,
	}
}

func TestSingleInputSISO(t *testing.T) {
	cfg := Config{
		Model:       singleInputModel(),
		P:           6,
		M:           2,
		Q:           1,
		R:           mat.Vec{0.05},
		TrefPeriods: 2,
		Setpoint:    1.0,
		CMin:        mat.Vec{0.1},
		CMax:        mat.Vec{4},
	}
	a, err := Analyze(cfg, AnalyzeOptions{InitialT: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatalf("SISO loop did not converge: %+v", a)
	}
}

func TestMinimalHorizonsPEqualsM1(t *testing.T) {
	cfg := defaultConfig()
	cfg.P, cfg.M = 1, 1
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Compute([]float64{2, 2}, []mat.Vec{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != 1 {
		t.Fatalf("predicted horizon %d", len(res.Predicted))
	}
	// One-step terminal constraint: the prediction must hit the set point.
	if !res.TerminalRelaxed && math.Abs(res.Predicted[0]-1.0) > 1e-6 {
		t.Fatalf("one-step prediction %v", res.Predicted[0])
	}
}

func TestLongControlHorizonMEqualsP(t *testing.T) {
	cfg := defaultConfig()
	cfg.M = cfg.P
	a, err := Analyze(cfg, AnalyzeOptions{InitialT: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatalf("M=P loop did not converge: %+v", a)
	}
}

func TestHigherOrderARXModel(t *testing.T) {
	// Na=2, Nb=3: the rollout machinery must handle deeper histories.
	m := &sysid.Model{
		Na: 2, Nb: 3, NumInputs: 2,
		A:     []float64{0.3, 0.1},
		B:     []mat.Vec{{-0.4, -0.3}, {-0.15, -0.1}, {-0.05, -0.05}},
		Gamma: 2.8,
	}
	cfg := defaultConfig()
	cfg.Model = m
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{2, 2, 2}
	cHist := []mat.Vec{{1, 1}, {1, 1}, {1, 1}}
	res, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delta) != 2 {
		t.Fatalf("delta width %d", len(res.Delta))
	}
	a, err := Analyze(cfg, AnalyzeOptions{InitialT: 2.5, Periods: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatalf("second-order loop did not converge: %+v", a)
	}
}

// Property: for random states within bounds, the first move never takes
// an allocation outside its box, and the result is always finite.
func TestComputeBoundsSafetyProperty(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultConfig()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		tNow := rng.Float64() * 6
		tPrev := rng.Float64() * 6
		c0 := mat.Vec{
			cfg.CMin[0] + rng.Float64()*(cfg.CMax[0]-cfg.CMin[0]),
			cfg.CMin[1] + rng.Float64()*(cfg.CMax[1]-cfg.CMin[1]),
		}
		c1 := c0.Clone()
		res, err := ctl.Compute([]float64{tNow, tPrev}, []mat.Vec{c0, c1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, d := range res.Delta {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				t.Fatalf("trial %d: non-finite move %v", trial, d)
			}
			next := c0[i] + d
			if next < cfg.CMin[i]-1e-6 || next > cfg.CMax[i]+1e-6 {
				t.Fatalf("trial %d: move takes input %d to %v outside [%v,%v] (t=%v)",
					trial, i, next, cfg.CMin[i], cfg.CMax[i], tNow)
			}
		}
	}
}

// The economic extension: with a small level penalty the loop converges
// to a cheaper allocation (concentrated on the higher-gain input) while
// still meeting the set point; without it, the loop parks wherever it
// first reached the set point.
func TestLevelPenaltyFindsCheaperOperatingPoint(t *testing.T) {
	run := func(levelPenalty float64) (finalT, totalAlloc float64, alloc mat.Vec) {
		cfg := defaultConfig() // gains: input 0 is stronger (−0.5/−0.15 vs −0.4/−0.1)
		cfg.LevelPenalty = levelPenalty
		ctl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plant := plantModel()
		tHist := []float64{3, 3}
		cur := mat.Vec{0.5, 0.5}
		cHist := []mat.Vec{cur.Clone(), cur.Clone()}
		var y float64
		for k := 0; k < 120; k++ {
			out, err := ctl.Compute(tHist, cHist)
			if err != nil {
				t.Fatal(err)
			}
			cur = cur.Add(out.Delta)
			cHist = append([]mat.Vec{cur.Clone()}, cHist...)
			if len(cHist) > 3 {
				cHist = cHist[:3]
			}
			y = plant.Predict(tHist, cHist)
			tHist = append([]float64{y}, tHist...)
			if len(tHist) > 2 {
				tHist = tHist[:2]
			}
		}
		return y, cur[0] + cur[1], cur
	}
	tPlain, totalPlain, _ := run(0)
	tEcon, totalEcon, allocEcon := run(0.01)
	if math.Abs(tPlain-1.0) > 0.05 || math.Abs(tEcon-1.0) > 0.1 {
		t.Fatalf("set point lost: plain %v economic %v", tPlain, tEcon)
	}
	if totalEcon >= totalPlain {
		t.Fatalf("level penalty did not reduce total allocation: %.2f vs %.2f",
			totalEcon, totalPlain)
	}
	// The cheaper point concentrates CPU on the stronger input 0.
	if allocEcon[0] <= allocEcon[1] {
		t.Fatalf("economic allocation %v not concentrated on the high-gain input", allocEcon)
	}
}

// Property: the control direction is correct — when far above the set
// point with slack in the box, total allocation never decreases, and
// vice versa.
func TestComputeDirectionProperty(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mid := mat.Vec{2, 2}
	over, err := ctl.Compute([]float64{4, 4}, []mat.Vec{mid, mid})
	if err != nil {
		t.Fatal(err)
	}
	if over.Delta[0]+over.Delta[1] <= 0 {
		t.Fatalf("t=4s but total allocation decreased: %v", over.Delta)
	}
	under, err := ctl.Compute([]float64{0.2, 0.2}, []mat.Vec{mid, mid})
	if err != nil {
		t.Fatal(err)
	}
	if under.Delta[0]+under.Delta[1] >= 0 {
		t.Fatalf("t=0.2s but total allocation increased: %v", under.Delta)
	}
}
