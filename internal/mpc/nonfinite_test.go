package mpc

import (
	"math"
	"strings"
	"testing"

	"vdcpower/internal/mat"
)

// TestComputeRejectsNonFiniteHistory pins the NaN backstop: a poisoned
// regressor must be rejected at the door, not propagated through the QP.
func TestComputeRejectsNonFiniteHistory(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	goodT := []float64{2.0, 2.0}
	goodC := []mat.Vec{{1, 1}, {1, 1}, {1, 1}}
	if _, err := ctl.Compute(goodT, goodC); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		t    []float64
		c    []mat.Vec
	}{
		{"NaN response", []float64{math.NaN(), 2.0}, goodC},
		{"Inf response", []float64{2.0, math.Inf(1)}, goodC},
		{"NaN allocation", goodT, []mat.Vec{{1, math.NaN()}, {1, 1}, {1, 1}}},
		{"-Inf allocation", goodT, []mat.Vec{{1, 1}, {math.Inf(-1), 1}, {1, 1}}},
	}
	for _, tc := range cases {
		_, err := ctl.Compute(tc.t, tc.c)
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}
}
