package mpc

import (
	"testing"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
)

func TestAnalyzeNominalConverges(t *testing.T) {
	a, err := Analyze(defaultConfig(), AnalyzeOptions{InitialT: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatalf("nominal loop did not converge: %+v", a)
	}
	if a.SettlingPeriods > 20 {
		t.Fatalf("settling too slow: %d periods", a.SettlingPeriods)
	}
	if a.FinalError > 0.02 {
		t.Fatalf("final error %v", a.FinalError)
	}
}

func TestAnalyzeFromBelow(t *testing.T) {
	a, err := Analyze(defaultConfig(), AnalyzeOptions{InitialT: 0.2, InitialC: mat.Vec{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatalf("loop did not converge from below: %+v", a)
	}
}

func TestAnalyzeOvershootBounded(t *testing.T) {
	a, err := Analyze(defaultConfig(), AnalyzeOptions{InitialT: 4.0})
	if err != nil {
		t.Fatal(err)
	}
	// The exponential reference trajectory should keep overshoot modest.
	if a.Overshoot > 0.3 {
		t.Fatalf("overshoot %.2f too large", a.Overshoot)
	}
}

func TestAnalyzeMismatchedPlant(t *testing.T) {
	// 50% stronger plant gains: feedback must still converge.
	plant := plantModel()
	for j := range plant.B {
		plant.B[j] = plant.B[j].Clone().Scale(1.5)
	}
	plant.Gamma *= 1.5
	a, err := Analyze(defaultConfig(), AnalyzeOptions{Plant: plant, InitialT: 3.0, Periods: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Converged {
		t.Fatalf("loop with 1.5× plant gains did not converge: %+v", a)
	}
}

func TestAnalyzeRejectsMismatchedInputs(t *testing.T) {
	one := &sysid.Model{Na: 1, Nb: 1, NumInputs: 1, A: []float64{0.4}, B: []mat.Vec{{-1}}, Gamma: 2}
	if _, err := Analyze(defaultConfig(), AnalyzeOptions{Plant: one}); err == nil {
		t.Fatal("input mismatch accepted")
	}
}

func TestGainMargin(t *testing.T) {
	margin, err := GainMargin(defaultConfig(), []float64{1, 1.5, 2, 3, 5, 8}, AnalyzeOptions{InitialT: 3.0, Periods: 100})
	if err != nil {
		t.Fatal(err)
	}
	// The bias-corrected MPC tolerates at least 1.5× gain error (the
	// robustness Figs. 4–5 demonstrate empirically).
	if margin < 1.5 {
		t.Fatalf("gain margin %v too small", margin)
	}
	t.Logf("gain margin: %vx", margin)
}

func TestGainMarginValidation(t *testing.T) {
	if _, err := GainMargin(defaultConfig(), nil, AnalyzeOptions{InitialT: 3}); err == nil {
		t.Fatal("empty candidates accepted")
	}
}
