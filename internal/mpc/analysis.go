package mpc

import (
	"errors"
	"math"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
)

// Analysis reports closed-loop behavior from a simulated run of the
// controller against a plant (Section IV-B's "analyze the control
// performance"). The nominal case (plant == controller model) verifies
// the design; the mismatch case measures robustness margins.
type Analysis struct {
	// Converged reports whether the output entered and stayed inside the
	// ±Band around the set point.
	Converged bool
	// SettlingPeriods is the first period after which the output never
	// leaves the band (0-based; meaningful only if Converged).
	SettlingPeriods int
	// Overshoot is the largest excursion past the set point on the far
	// side, as a fraction of the initial error (0 = no overshoot).
	Overshoot float64
	// FinalError is |t − Ts| at the end of the run.
	FinalError float64
}

// AnalyzeOptions tunes the closed-loop analysis.
type AnalyzeOptions struct {
	// Plant is the true system; nil means the controller's own model
	// (nominal analysis).
	Plant *sysid.Model
	// InitialT is the starting response time.
	InitialT float64
	// InitialC is the starting allocation (defaults to mid-range).
	InitialC mat.Vec
	// Periods is the simulation length (default 60).
	Periods int
	// Band is the settling band around the set point (default 2%).
	Band float64
}

// Analyze closes the loop between the controller defined by cfg and a
// linear plant, and reports settling behavior. It never touches a real
// application: both controller and plant are the ARX models, which makes
// it a design-time tool for choosing P, M, Q, R and Tref.
func Analyze(cfg Config, opt AnalyzeOptions) (Analysis, error) {
	ctl, err := New(cfg)
	if err != nil {
		return Analysis{}, err
	}
	plant := opt.Plant
	if plant == nil {
		plant = cfg.Model
	}
	if plant.NumInputs != cfg.Model.NumInputs {
		return Analysis{}, errors.New("mpc: plant and model input counts differ")
	}
	periods := opt.Periods
	if periods <= 0 {
		periods = 60
	}
	band := opt.Band
	if band <= 0 {
		band = 0.02
	}
	m := cfg.Model.NumInputs
	c0 := opt.InitialC
	if c0 == nil {
		c0 = make(mat.Vec, m)
		for i := range c0 {
			c0[i] = (cfg.CMin[i] + cfg.CMax[i]) / 2
		}
	}

	histLen := plant.Na
	if cfg.Model.Na > histLen {
		histLen = cfg.Model.Na
	}
	tHist := make([]float64, histLen+1)
	for i := range tHist {
		tHist[i] = opt.InitialT
	}
	cLen := plant.Nb
	if cfg.Model.Nb > cLen {
		cLen = cfg.Model.Nb
	}
	cHist := make([]mat.Vec, cLen+1)
	for i := range cHist {
		cHist[i] = c0.Clone()
	}

	initialErr := math.Abs(opt.InitialT - cfg.Setpoint)
	//lint:ignore floatcompare exact-zero guard before division
	if initialErr == 0 {
		initialErr = 1e-9
	}
	res := Analysis{SettlingPeriods: -1}
	lastOutside := -1
	cur := c0.Clone()
	startAbove := opt.InitialT > cfg.Setpoint
	for k := 0; k < periods; k++ {
		out, err := ctl.Compute(tHist, cHist)
		if err != nil {
			return Analysis{}, err
		}
		cur = cur.Add(out.Delta)
		cHist = append([]mat.Vec{cur.Clone()}, cHist...)
		if len(cHist) > cLen+1 {
			cHist = cHist[:cLen+1]
		}
		y := plant.Predict(tHist, cHist)
		tHist = append([]float64{y}, tHist...)
		if len(tHist) > histLen+1 {
			tHist = tHist[:histLen+1]
		}
		if math.Abs(y-cfg.Setpoint) > band*cfg.Setpoint {
			lastOutside = k
		}
		// Overshoot: excursion past the set point on the opposite side.
		if startAbove && y < cfg.Setpoint {
			if o := (cfg.Setpoint - y) / initialErr; o > res.Overshoot {
				res.Overshoot = o
			}
		}
		if !startAbove && y > cfg.Setpoint {
			if o := (y - cfg.Setpoint) / initialErr; o > res.Overshoot {
				res.Overshoot = o
			}
		}
		res.FinalError = math.Abs(y - cfg.Setpoint)
	}
	if lastOutside < periods-1 {
		res.Converged = true
		res.SettlingPeriods = lastOutside + 1
	}
	return res, nil
}

// GainMargin returns the largest factor g (searched over candidates) by
// which the plant's input gains can exceed the model's while the loop
// still converges — a robustness margin for the identified model. The
// candidates must be ascending.
func GainMargin(cfg Config, candidates []float64, opt AnalyzeOptions) (float64, error) {
	if len(candidates) == 0 {
		return 0, errors.New("mpc: no candidate gains")
	}
	margin := 0.0
	for _, g := range candidates {
		plant := scaleGains(cfg.Model, g)
		o := opt
		o.Plant = plant
		a, err := Analyze(cfg, o)
		if err != nil {
			return margin, err
		}
		if !a.Converged {
			break
		}
		margin = g
	}
	//lint:ignore floatcompare zero is the never-assigned sentinel, not a computed value
	if margin == 0 {
		return 0, errors.New("mpc: loop does not converge even at the smallest candidate")
	}
	return margin, nil
}

// scaleGains clones the model with B (and the offset, to keep the same
// operating point reachable) scaled by g.
func scaleGains(m *sysid.Model, g float64) *sysid.Model {
	out := &sysid.Model{
		Na: m.Na, Nb: m.Nb, NumInputs: m.NumInputs,
		A:     append([]float64(nil), m.A...),
		Gamma: m.Gamma * g,
	}
	for _, b := range m.B {
		out.B = append(out.B, b.Clone().Scale(g))
	}
	return out
}
