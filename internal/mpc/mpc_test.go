package mpc

import (
	"math"
	"testing"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
)

// plantModel returns a 2-input ARX model with negative input gains (more
// CPU → lower response time), like the identified RUBBoS models.
func plantModel() *sysid.Model {
	return &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.4},
		B:     []mat.Vec{{-0.5, -0.4}, {-0.15, -0.1}},
		Gamma: 3.0,
	}
}

func defaultConfig() Config {
	return Config{
		Model:       plantModel(),
		P:           8,
		M:           2,
		Q:           1,
		R:           mat.Vec{0.1, 0.1},
		TrefPeriods: 2,
		Setpoint:    1.0,
		CMin:        mat.Vec{0.1, 0.1},
		CMax:        mat.Vec{4, 4},
	}
}

// simulate closes the loop: plant == model (perfect model case).
func simulate(t *testing.T, ctl *Controller, steps int, c0 mat.Vec, t0 float64) (ts []float64, cs []mat.Vec) {
	model := plantModel()
	tHist := []float64{t0, t0}
	cHist := []mat.Vec{c0.Clone(), c0.Clone(), c0.Clone()}
	cur := c0.Clone()
	for k := 0; k < steps; k++ {
		res, err := ctl.Compute(tHist, cHist)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		cur = cur.Add(res.Delta)
		cHist = append([]mat.Vec{cur.Clone()}, cHist...)
		// Predict wants cPast[0]=c(k): after pushing, cHist[0] is c(k).
		y := model.Predict(tHist, cHist)
		ts = append(ts, y)
		cs = append(cs, cur.Clone())
		tHist = append([]float64{y}, tHist...)
		if len(tHist) > 4 {
			tHist = tHist[:4]
		}
		if len(cHist) > 4 {
			cHist = cHist[:4]
		}
	}
	return ts, cs
}

func TestNewValidation(t *testing.T) {
	good := defaultConfig()
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"nil model":      func(c *Config) { c.Model = nil },
		"bad P":          func(c *Config) { c.P = 0 },
		"M > P":          func(c *Config) { c.M = 99 },
		"bad Q":          func(c *Config) { c.Q = 0 },
		"R wrong len":    func(c *Config) { c.R = mat.Vec{1} },
		"R nonpositive":  func(c *Config) { c.R = mat.Vec{1, 0} },
		"bad Tref":       func(c *Config) { c.TrefPeriods = 0 },
		"bad setpoint":   func(c *Config) { c.Setpoint = 0 },
		"bounds len":     func(c *Config) { c.CMin = mat.Vec{0.1} },
		"bounds invalid": func(c *Config) { c.CMin = mat.Vec{2, 2}; c.CMax = mat.Vec{1, 1} },
	}
	for name, mutate := range cases {
		cfg := defaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestComputeHistoryValidation(t *testing.T) {
	ctl, _ := New(defaultConfig())
	if _, err := ctl.Compute([]float64{1}, []mat.Vec{{1, 1}}); err == nil {
		t.Fatal("expected error: short c history")
	}
	if _, err := ctl.Compute([]float64{1, 1}, []mat.Vec{{1, 1}}); err == nil {
		t.Fatal("expected error: short c history (needs Nb)")
	}
	if _, err := ctl.Compute([]float64{1, 1}, []mat.Vec{{1}, {1}}); err == nil {
		t.Fatal("expected error: wrong input dim")
	}
}

func TestConvergesToSetpointPerfectModel(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Start far above the set point (t=3s with low allocations).
	ts, _ := simulate(t, ctl, 40, mat.Vec{0.5, 0.5}, 3.0)
	final := ts[len(ts)-1]
	if math.Abs(final-1.0) > 0.02 {
		t.Fatalf("did not converge: final t = %v, want 1.0", final)
	}
	// Monotone-ish approach: last value closer than first.
	if math.Abs(ts[0]-1.0) < math.Abs(final-1.0) {
		t.Fatalf("no progress toward set point: %v", ts[:5])
	}
}

func TestConvergesFromBelow(t *testing.T) {
	// Over-provisioned start (t below set point): the controller should
	// *reduce* allocations until t rises to the set point — the
	// power-saving direction.
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts, cs := simulate(t, ctl, 40, mat.Vec{3.0, 3.0}, 0.3)
	final := ts[len(ts)-1]
	if math.Abs(final-1.0) > 0.02 {
		t.Fatalf("did not converge: final t = %v", final)
	}
	last := cs[len(cs)-1]
	if last[0] >= 3.0 || last[1] >= 3.0 {
		t.Fatalf("allocation did not shrink from (3,3): %v", last)
	}
}

func TestRespectsAllocationBounds(t *testing.T) {
	cfg := defaultConfig()
	cfg.CMax = mat.Vec{1.2, 1.2}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, cs := simulate(t, ctl, 30, mat.Vec{1.0, 1.0}, 5.0)
	for k, cv := range cs {
		for i, x := range cv {
			if x > cfg.CMax[i]+1e-6 || x < cfg.CMin[i]-1e-6 {
				t.Fatalf("step %d input %d: allocation %v outside [%v,%v]", k, i, x, cfg.CMin[i], cfg.CMax[i])
			}
		}
	}
}

func TestDeltaMaxLimitsMoves(t *testing.T) {
	cfg := defaultConfig()
	cfg.DeltaMax = 0.25
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{5, 5}
	cHist := []mat.Vec{{0.5, 0.5}, {0.5, 0.5}}
	res, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Delta {
		if math.Abs(d) > 0.25+1e-6 {
			t.Fatalf("move %d = %v exceeds DeltaMax", i, d)
		}
	}
}

func TestTerminalConstraintHit(t *testing.T) {
	// With feasible bounds, the predicted trajectory must reach the set
	// point at the end of the control horizon (Eq. 4).
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{2.0, 2.0}
	cHist := []mat.Vec{{1, 1}, {1, 1}}
	res, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	if res.TerminalRelaxed {
		t.Fatal("terminal constraint should be feasible here")
	}
	if got := res.Predicted[ctl.cfg.M-1]; math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("t(k+M|k) = %v, want set point 1.0", got)
	}
}

func TestInfeasibleSurgeRelaxesTerminal(t *testing.T) {
	// Tight CMax makes the set point unreachable in M steps from a very
	// high response time: the controller must still return a move (toward
	// the bound), flagged as relaxed.
	cfg := defaultConfig()
	cfg.CMax = mat.Vec{1.0, 1.0}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tHist := []float64{30, 30}
	cHist := []mat.Vec{{0.9, 0.9}, {0.9, 0.9}}
	res, err := ctl.Compute(tHist, cHist)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TerminalRelaxed {
		t.Fatal("expected TerminalRelaxed")
	}
	// Moves must push toward more CPU but stay within bounds.
	for i, d := range res.Delta {
		if cHist[0][i]+d > cfg.CMax[i]+1e-6 {
			t.Fatalf("input %d exceeds CMax: %v", i, cHist[0][i]+d)
		}
		if d < -1e-9 {
			t.Fatalf("input %d moved away from the surge: %v", i, d)
		}
	}
}

func TestAtSetpointStaysPut(t *testing.T) {
	// In steady state at the set point, the optimal move is ~zero.
	model := plantModel()
	// Find steady-state allocation c* with t=1: 1 = 0.4 + (B1+B2)·c + 3
	// → (−0.65, −0.5)·c = −2.4. Pick c=(2, 2.2): −1.3−1.1 = −2.4. ✓
	cStar := mat.Vec{2, 2.2}
	ts := model.Predict([]float64{1}, []mat.Vec{cStar, cStar})
	if math.Abs(ts-1.0) > 1e-9 {
		t.Fatalf("test setup wrong: steady t = %v", ts)
	}
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Compute([]float64{1, 1}, []mat.Vec{cStar, cStar})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Delta {
		if math.Abs(d) > 1e-6 {
			t.Fatalf("nonzero move %d at equilibrium: %v", i, d)
		}
	}
}

func TestSetpointChangeRetargets(t *testing.T) {
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.SetSetpoint(1.5)
	if ctl.Setpoint() != 1.5 {
		t.Fatal("SetSetpoint did not apply")
	}
	ts, _ := simulate(t, ctl, 40, mat.Vec{1, 1}, 3.0)
	if final := ts[len(ts)-1]; math.Abs(final-1.5) > 0.03 {
		t.Fatalf("final t = %v, want 1.5", final)
	}
}

func TestModelMismatchStillConverges(t *testing.T) {
	// Controller uses a model whose gains are 40% off the plant: feedback
	// must still drive the loop to the set point (the robustness argument
	// behind Figs. 4–5).
	cfg := defaultConfig()
	wrong := plantModel()
	wrong.B = []mat.Vec{{-0.3, -0.24}, {-0.09, -0.06}}
	cfg.Model = wrong
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := simulate(t, ctl, 60, mat.Vec{0.5, 0.5}, 3.0)
	if final := ts[len(ts)-1]; math.Abs(final-1.0) > 0.05 {
		t.Fatalf("mismatch loop did not converge: %v", final)
	}
}

func TestReferenceTrajectoryShape(t *testing.T) {
	// The first-period prediction should land near ref(k+1|k), which is
	// between t(k) and Ts.
	ctl, err := New(defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tNow := 3.0
	res, err := ctl.Compute([]float64{tNow, tNow}, []mat.Vec{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted[0] >= tNow || res.Predicted[0] <= 1.0-1e-9 {
		t.Fatalf("first prediction %v not between Ts and t(k)", res.Predicted[0])
	}
}

func BenchmarkCompute(b *testing.B) {
	ctl, err := New(defaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tHist := []float64{2, 2}
	cHist := []mat.Vec{{1, 1}, {1, 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Compute(tHist, cHist); err != nil {
			b.Fatal(err)
		}
	}
}
