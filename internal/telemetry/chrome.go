package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteChromeTrace writes records in the Chrome trace event format
// (JSON array form), loadable in chrome://tracing and Perfetto. Spans
// become complete ('X') events and instants become 'i' events;
// timestamps and durations are microseconds. Each track maps to one
// tid (assigned by sorted track name) and gets a thread_name metadata
// event so the viewer labels rows. The JSON is hand-assembled in a
// fixed order — records as given, attributes in recording order — so
// deterministic runs export byte-identical traces.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	tids := map[string]int{}
	var names []string
	for _, r := range recs {
		if _, ok := tids[r.Track]; !ok {
			tids[r.Track] = 0
			names = append(names, r.Track)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		tids[n] = i + 1
	}

	var b strings.Builder
	b.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for _, n := range names {
		var m strings.Builder
		m.WriteString(`{"name":"thread_name","ph":"M","pid":1,"tid":`)
		m.WriteString(strconv.Itoa(tids[n]))
		m.WriteString(`,"args":{"name":`)
		m.WriteString(jsonString(n))
		m.WriteString(`}}`)
		emit(m.String())
	}
	for _, r := range recs {
		var m strings.Builder
		m.WriteString(`{"name":`)
		m.WriteString(jsonString(r.Name))
		m.WriteString(`,"ph":"`)
		m.WriteByte(r.Phase)
		m.WriteString(`","ts":`)
		m.WriteString(micros(r.Start))
		if r.Phase == PhaseSpan {
			m.WriteString(`,"dur":`)
			m.WriteString(micros(r.Dur))
		} else {
			m.WriteString(`,"s":"t"`)
		}
		m.WriteString(`,"pid":1,"tid":`)
		m.WriteString(strconv.Itoa(tids[r.Track]))
		m.WriteString(`,"args":{`)
		m.WriteString(`"depth":`)
		m.WriteString(strconv.Itoa(r.Depth))
		for _, a := range r.Attrs {
			m.WriteByte(',')
			m.WriteString(jsonString(a.Key))
			m.WriteByte(':')
			switch a.kind {
			case attrInt:
				m.WriteString(strconv.FormatInt(a.i, 10))
			case attrFloat:
				m.WriteString(jsonFloat(a.f))
			case attrStr:
				m.WriteString(jsonString(a.s))
			case attrBool:
				m.WriteString(strconv.FormatBool(a.b))
			}
		}
		m.WriteString(`}}`)
		emit(m.String())
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// micros renders seconds as microseconds with fixed millinanosecond
// precision, keeping output byte-stable across runs.
func micros(sec float64) string {
	return strconv.FormatFloat(sec*1e6, 'f', 3, 64)
}

// jsonFloat renders an attribute float; non-finite values fall back to
// a JSON string since bare NaN/Inf are invalid JSON.
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if strings.ContainsAny(s, "IN") { // Inf, NaN
		return `"` + s + `"`
	}
	return s
}

// jsonString renders a JSON string literal.
func jsonString(s string) string {
	out, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `""`
	}
	return string(out)
}
