package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file instead when -update is set (same convention as internal/report).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s output changed:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestNilSafety drives the entire API through nil receivers: every call
// must no-op without panicking, because nil is the disabled state.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("x")
	if tk != nil {
		t.Fatal("nil tracer must hand out nil tracks")
	}
	tk.SetTime(3)
	if got := tk.Now(); got != 0 {
		t.Fatalf("nil track Now = %v, want 0", got)
	}
	if got := tk.Name(); got != "" {
		t.Fatalf("nil track Name = %q, want empty", got)
	}
	sp := tk.Start("s")
	sp.Int("i", 1).Float("f", 2).Str("s", "x").Bool("b", true).End()
	tk.Event("e").End()
	if recs := tr.Snapshot(); recs != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", recs)
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil tracer Dropped != 0")
	}

	var reg *Registry
	c := reg.Counter("c", "h")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := reg.Gauge("g", "h")
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := reg.Histogram("h", "h", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	if err := reg.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestClockModes exercises the three timestamp sources: injected tracer
// clock, per-track logical override, and none (0).
func TestClockModes(t *testing.T) {
	now := 10.0
	tr := New(func() float64 { return now }, 0)
	tk := tr.Track("main")
	if got := tk.Now(); got != 10 {
		t.Fatalf("tracer clock Now = %v, want 10", got)
	}
	sp := tk.Start("outer")
	now = 12.5
	sp.End()
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].Start != 10 || recs[0].Dur != 2.5 {
		t.Fatalf("tracer-clock span = %+v", recs)
	}

	// SetTime overrides the tracer clock for this track only.
	tk.SetTime(100)
	if got := tk.Now(); got != 100 {
		t.Fatalf("logical Now = %v, want 100", got)
	}
	other := tr.Track("other")
	if got := other.Now(); got != 12.5 {
		t.Fatalf("other track must still see tracer clock, got %v", got)
	}

	// No clock at all: everything stamps 0 until SetTime.
	tr2 := New(nil, 0)
	if got := tr2.Track("a").Now(); got != 0 {
		t.Fatalf("clockless Now = %v, want 0", got)
	}
}

// TestRebase reuses one track for two "runs" that each restart their
// logical clock at zero — the pattern of dcsim sweep workers. Rebase
// between them must keep the timeline monotonic so the second run's
// spans neither rewind to ts 0 nor clamp to zero duration.
func TestRebase(t *testing.T) {
	tr := New(nil, 0)
	tk := tr.Track("worker")
	for run := 0; run < 2; run++ {
		tk.Rebase()
		job := tk.Start("job")
		tk.SetTime(0) // the run resets its own clock...
		tk.SetTime(5) // ...and advances it
		job.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	first, second := recs[0], recs[1]
	if first.Start != 0 || first.Dur != 5 {
		t.Fatalf("first job = [%v, dur %v], want [0, dur 5]", first.Start, first.Dur)
	}
	if second.Start != 5 || second.Dur != 5 {
		t.Fatalf("second job = [%v, dur %v], want [5, dur 5]: the run's SetTime(0) rewound the track", second.Start, second.Dur)
	}
}

// TestNestingDepth checks that Start/End maintain depth and that
// instants do not disturb it.
func TestNestingDepth(t *testing.T) {
	tr := New(nil, 0)
	tk := tr.Track("main")
	tk.SetTime(0)
	root := tk.Start("root")
	child := tk.Start("child")
	tk.Event("instant").Int("k", 1).End()
	grand := tk.Start("grand")
	grand.End()
	child.End()
	root.End()

	byName := map[string]SpanRecord{}
	for _, r := range tr.Snapshot() {
		byName[r.Name] = r
	}
	for name, depth := range map[string]int{"root": 0, "child": 1, "grand": 2, "instant": 2} {
		if byName[name].Depth != depth {
			t.Errorf("%s depth = %d, want %d", name, byName[name].Depth, depth)
		}
	}
	if byName["instant"].Phase != PhaseInstant {
		t.Errorf("instant phase = %c", byName["instant"].Phase)
	}
	if byName["root"].Phase != PhaseSpan {
		t.Errorf("root phase = %c", byName["root"].Phase)
	}
}

// TestRingDropOldest fills a 4-slot track past capacity and checks the
// oldest records are evicted and counted.
func TestRingDropOldest(t *testing.T) {
	tr := New(nil, 4)
	tk := tr.Track("main")
	for i := 0; i < 7; i++ {
		tk.SetTime(float64(i))
		tk.Event("e").Int("i", i).End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("len = %d, want 4", len(recs))
	}
	for j, r := range recs {
		if want := float64(3 + j); r.Start != want {
			t.Errorf("rec %d Start = %v, want %v (newest must survive)", j, r.Start, want)
		}
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
}

// TestSnapshotOrder: tracks sort by name, records keep emission order.
func TestSnapshotOrder(t *testing.T) {
	tr := New(nil, 0)
	b := tr.Track("b")
	a := tr.Track("a")
	b.Event("b1").End()
	a.Event("a1").End()
	b.Event("b2").End()
	var got []string
	for _, r := range tr.Snapshot() {
		got = append(got, r.Name)
	}
	want := "a1,b1,b2"
	if strings.Join(got, ",") != want {
		t.Fatalf("order = %v, want %s", got, want)
	}
}

// TestTrackReuse: Track returns the same instance per name.
func TestTrackReuse(t *testing.T) {
	tr := New(nil, 0)
	if tr.Track("x") != tr.Track("x") {
		t.Fatal("Track not idempotent")
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("vdcpower_test_total", "h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	c.Add(-5) // negative deltas ignored
	if c.Value() != 8000 {
		t.Fatalf("counter after negative Add = %v", c.Value())
	}
}

func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "h", Label{"app", "A"})
	b := reg.Counter("c_total", "h", Label{"app", "A"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := reg.Counter("c_total", "h", Label{"app", "B"})
	if a == other {
		t.Fatal("different labels must return distinct counters")
	}
	// A type conflict yields a working but detached instrument.
	g := reg.Gauge("c_total", "h")
	g.Set(1)
	if g.Value() != 1 {
		t.Fatal("detached gauge must still work")
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "# TYPE c_total gauge") {
		t.Fatal("conflicting type leaked into exposition")
	}
	// The conflict itself is surfaced as a leading comment line.
	if !strings.Contains(buf.String(), "# conflict: c_total requested as gauge but registered as counter") {
		t.Fatalf("exposition lacks conflict comment:\n%s", buf.String())
	}
}

// TestWritePromConcurrentLookup races first-time series creation against
// rendering: WriteProm must hold the registry lock while iterating the
// per-family series maps, or the race detector trips here.
func TestWritePromConcurrentLookup(t *testing.T) {
	reg := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			reg.Counter("c_total", "h", Label{"app", fmt.Sprintf("app-%03d", i)}).Inc()
			reg.Histogram("h_seconds", "h", nil, Label{"app", fmt.Sprintf("app-%03d", i)}).Observe(0.1)
		}
	}()
	for {
		if err := reg.WriteProm(io.Discard); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 55.65; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// le="0.1" is cumulative and inclusive: 0.05 and 0.1 both land there.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestPromEscaping: label values with quotes, backslashes and newlines
// must be escaped per the exposition format.
func TestPromEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g", "help with\nnewline", Label{"app", `we"ird\name` + "\n"}).Set(1)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP g help with\nnewline`) {
		t.Errorf("HELP not escaped: %q", out)
	}
	if !strings.Contains(out, `g{app="we\"ird\\name\n"} 1`) {
		t.Errorf("label value not escaped: %q", out)
	}
}

// TestPromTypeOncePerFamily: multiple series of one family share a
// single # HELP/# TYPE header.
func TestPromTypeOncePerFamily(t *testing.T) {
	reg := NewRegistry()
	for _, app := range []string{"App2", "App1", "App3"} {
		reg.Counter("vdcpower_x_total", "x", Label{"app", app}).Inc()
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE vdcpower_x_total counter"); n != 1 {
		t.Fatalf("# TYPE emitted %d times, want 1:\n%s", n, out)
	}
	// Series are sorted by label signature.
	i1 := strings.Index(out, `app="App1"`)
	i2 := strings.Index(out, `app="App2"`)
	i3 := strings.Index(out, `app="App3"`)
	if !(i1 < i2 && i2 < i3) {
		t.Fatalf("series not sorted: %d %d %d\n%s", i1, i2, i3, out)
	}
}

// goldenRegistry builds a fixed registry covering all three instrument
// kinds, labels, and escaping for the exposition golden file.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("vdcpower_migrations_total", "VM migrations committed by the consolidator").Add(17)
	reg.Counter("vdcpower_migration_vetoes_total", "migrations rejected by the cost policy").Add(3)
	reg.Gauge("vdcpower_power_watts", "total data-center power draw").Set(1234.5)
	reg.Gauge("vdcpower_response_time_seconds", "mean end-to-end response time", Label{"app", "App1"}).Set(0.8)
	reg.Gauge("vdcpower_response_time_seconds", "mean end-to-end response time", Label{"app", "App2"}).Set(0.95)
	h := reg.Histogram("vdcpower_solve_latency_seconds", "MPC QP solve latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.2} {
		h.Observe(v)
	}
	return reg
}

func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "exposition.prom", buf.Bytes())
}

// goldenTrace records a fixed span tree exercising nesting, instants,
// every attribute kind, and two tracks.
func goldenTrace() *Tracer {
	tr := New(nil, 0)
	main := tr.Track("main")
	main.SetTime(0)
	period := main.Start("mpc.period").Str("app", "App1")
	main.SetTime(0.25)
	solve := main.Start("mpc.qp").Bool("relaxed", false)
	main.SetTime(0.75)
	solve.End()
	main.Event("cluster.migrate").Int("vm", 12).Str("from", "S1").Str("to", "S2").End()
	main.SetTime(1)
	period.End()
	w := tr.Track("worker-01")
	w.SetTime(0.5)
	w.Start("dcsim.job").Int("vms", 30).Float("per_vm_wh", 696.9).End()
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTrace().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", buf.String())
	}
	checkGolden(t, "trace.json", buf.Bytes())
}

// TestChromeTraceShape parses the export and checks the event fields
// the trace viewers rely on.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenTrace().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[string]any{}
	phases := map[string]int{}
	for _, e := range events {
		byName[e["name"].(string)] = e
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 2 {
		t.Errorf("want 2 thread_name metadata events, got %d", phases["M"])
	}
	if phases["X"] != 3 || phases["i"] != 1 {
		t.Errorf("phases = %v, want 3 X and 1 i", phases)
	}
	qp := byName["mpc.qp"]
	period := byName["mpc.period"]
	if qp["ts"].(float64) < period["ts"].(float64) {
		t.Error("child starts before parent")
	}
	qpEnd := qp["ts"].(float64) + qp["dur"].(float64)
	periodEnd := period["ts"].(float64) + period["dur"].(float64)
	if qpEnd > periodEnd {
		t.Error("child ends after parent")
	}
	if qp["args"].(map[string]any)["depth"].(float64) != period["args"].(map[string]any)["depth"].(float64)+1 {
		t.Error("child depth is not parent+1")
	}
	mig := byName["cluster.migrate"]
	if mig["s"] != "t" || mig["args"].(map[string]any)["vm"].(float64) != 12 {
		t.Errorf("migrate instant malformed: %v", mig)
	}
	if byName["dcsim.job"]["tid"].(float64) == period["tid"].(float64) {
		t.Error("distinct tracks must get distinct tids")
	}
}

// TestChromeTraceDeterminism: building the same logical trace twice
// exports byte-identical JSON.
func TestChromeTraceDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, goldenTrace().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, goldenTrace().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same logical trace exported differently")
	}
}

// TestSnapshotWhileRecording covers the Snapshot/emit race under the
// race detector: one goroutine records while another snapshots.
func TestSnapshotWhileRecording(t *testing.T) {
	tr := New(WallClock, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		tk := tr.Track("writer")
		for i := 0; i < 500; i++ {
			tk.Start("s").Int("i", i).End()
		}
	}()
	for i := 0; i < 50; i++ {
		tr.Snapshot()
		tr.Dropped()
	}
	<-done
	if n := len(tr.Snapshot()); n != 64 {
		t.Fatalf("final snapshot len = %d, want 64 (ring cap)", n)
	}
}

func TestWallClockAdvances(t *testing.T) {
	a := WallClock()
	b := WallClock()
	if b < a {
		t.Fatalf("WallClock went backwards: %v then %v", a, b)
	}
}
