package telemetry

import (
	"math"
	"testing"
)

func quantileHist(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func TestQuantileNilAndEmpty(t *testing.T) {
	var h *Histogram
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("nil histogram quantile = %v, want NaN", v)
	}
	h = quantileHist([]float64{1, 2})
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("empty histogram quantile = %v, want NaN", v)
	}
	h.Observe(1.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Fatalf("Quantile(%v) = %v, want NaN", q, v)
		}
	}
	if v := quantileHist(nil).Quantile(0.5); !math.IsNaN(v) {
		t.Fatalf("unbucketed histogram quantile = %v, want NaN", v)
	}
}

// TestQuantileInterpolation checks the linear-interpolation estimate
// against a hand-computed case: bounds [1,2,4], 4 samples in (1,2].
// rank(0.5) = 2 lands after the first of those samples would — the
// estimate walks half of the two needed samples into the bucket.
func TestQuantileInterpolation(t *testing.T) {
	h := quantileHist([]float64{1, 2, 4})
	for _, v := range []float64{1.2, 1.4, 1.6, 1.8} {
		h.Observe(v)
	}
	// rank = 0.5*4 = 2; bucket (1,2] holds all 4 → 1 + (2-1)*2/4 = 1.5.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 1.5", got)
	}
	// rank = 1*4 = 4 → upper edge of the containing bucket.
	if got := h.Quantile(1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("p100 = %v, want 2", got)
	}
	// q=0 → rank 0 → lower edge of the first bucket (0 for bucket 0).
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0", got)
	}
}

// TestQuantileErrorBound: the estimate never leaves the containing
// bucket, so |estimate - true| <= bucket width for in-range samples.
func TestQuantileErrorBound(t *testing.T) {
	bounds := ExponentialBuckets(1e-3, 2, 14)
	h := quantileHist(bounds)
	vals := make([]float64, 0, 500)
	x := 0.0017
	for i := 0; i < 500; i++ {
		// Deterministic pseudo-uniform spread over roughly [1e-3, 4].
		x = math.Mod(x*1.9113+0.0003, 4.0)
		v := x + 1e-3
		vals = append(vals, v)
		h.Observe(v)
	}
	// Insertion sort (no dependency on sort in the test path).
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		if rank < 0 {
			rank = 0
		}
		truth := vals[rank]
		// Containing bucket width bounds the error.
		i := 0
		for i < len(bounds) && bounds[i] < truth {
			i++
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		width := bounds[min(i, len(bounds)-1)] - lower
		if math.Abs(got-truth) > width+1e-12 {
			t.Fatalf("q=%v: estimate %v vs truth %v exceeds bucket width %v", q, got, truth, width)
		}
	}
}

// TestQuantileOverflowClamps: samples beyond the last finite bound
// clamp to it.
func TestQuantileOverflowClamps(t *testing.T) {
	h := quantileHist([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
}
