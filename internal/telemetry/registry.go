package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {app="App3"}).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing float64. Updates are atomic
// (CAS on the bit pattern), so hot loops increment without a lock.
// A nil *Counter is a valid disabled instrument.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64 with atomic access. A nil *Gauge is a
// valid disabled instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Observe takes one
// short mutex hold; buckets are immutable after construction. A nil
// *Histogram is a valid disabled instrument.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, linearly interpolating inside the containing bucket — the
// same estimator as Prometheus' histogram_quantile. Error bounds:
// samples are assumed uniform within a bucket, so the estimate is off
// by at most that bucket's width (the first bucket interpolates from a
// lower edge of 0); rank q*count lands exactly on a bucket boundary at
// the boundary value; samples beyond the last finite bound clamp to
// it, so upper-tail quantiles are underestimates once the +Inf bucket
// is populated. Returns NaN when the histogram is empty or unbucketed,
// q is outside [0, 1], or h is nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		if float64(cum) < rank {
			continue
		}
		if h.counts[i] == 0 {
			// An empty bucket can only match with rank exactly on its
			// lower boundary (a later empty bucket leaves cum short of
			// rank and the walk continues past it), so the estimate is
			// that edge: 0 for the first bucket.
			if i == 0 {
				return 0
			}
			return h.bounds[i-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		prev := float64(cum - h.counts[i])
		return lower + (bound-lower)*(rank-prev)/float64(h.counts[i])
	}
	return h.bounds[len(h.bounds)-1] // +Inf bucket clamps to last finite bound
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DefaultBuckets spans 1 ms to 10 s — suitable both for control-step
// solve latencies and for response times around the paper's 1 s SLA.
func DefaultBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// ExponentialBuckets returns n upper bounds starting at start and
// growing by factor. It panics only via the registry's validation path
// (callers pass literals).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// metric family types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instrument within a family.
type series struct {
	labels []Label
	key    string // canonical label signature, used for sort + dedup
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series of one metric name: HELP/TYPE are emitted
// once per family, as the exposition format requires.
type family struct {
	name, help, typ string
	buckets         []float64
	series          map[string]*series
}

// Registry is a metrics namespace the simulation and testbed publish
// into and /metrics renders. Instrument lookup takes the registry
// mutex; the returned instruments update lock-free (counters, gauges)
// or under their own short mutex (histograms), so the registry itself
// is never on a hot path. A nil *Registry hands out nil instruments,
// making disabled metrics free.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	conflicts map[string]string // conflict key → exposition comment line
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey canonicalizes a label set (sorted by key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating family and
// series as needed. A type conflict with an existing family yields a
// detached series: the instrument works but is not exported, and the
// conflict is surfaced as a comment in the exposition.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.typ != typ {
		if r.conflicts == nil {
			r.conflicts = map[string]string{}
		}
		r.conflicts[name+"\x00"+typ] = fmt.Sprintf(
			"# conflict: %s requested as %s but registered as %s; conflicting series not exported",
			name, typ, f.typ)
		return newSeries(typ, buckets, labels) // detached
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = newSeries(typ, f.buckets, labels)
		s.key = key
		f.series[key] = s
	}
	return s
}

func newSeries(typ string, buckets []float64, labels []Label) *series {
	s := &series{labels: append([]Label(nil), labels...)}
	switch typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	return s
}

// Counter returns (creating if needed) the counter for name+labels.
// Repeated calls with the same identity return the same instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeCounter, nil, labels).c
}

// Gauge returns the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, typeGauge, nil, labels).g
}

// Histogram returns the histogram for name+labels. buckets are the
// upper bounds (+Inf is implicit); the first registration of a family
// fixes them and later calls reuse the family's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefaultBuckets()
	}
	return r.lookup(name, help, typeHistogram, buckets, labels).h
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// renderLabels renders a label set (plus an optional extra label, used
// for histogram le) as {k="v",...}, or "" when empty.
func renderLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, HELP and TYPE emitted once
// per family, series sorted by label signature, label values escaped.
// Type-conflicting registrations are surfaced as leading "# conflict"
// comment lines. The output is deterministic for a fixed registry
// state. The registry mutex is held for the whole render: lookup
// inserts into the per-family series maps under the same lock, so
// releasing it mid-iteration would race with first-time series
// creation from concurrent scrapes and publishers.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	if len(r.conflicts) > 0 {
		lines := make([]string, 0, len(r.conflicts))
		for _, line := range r.conflicts {
			lines = append(lines, line)
		}
		sort.Strings(lines)
		for _, line := range lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	for _, n := range names {
		f := r.families[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels, nil), formatValue(s.c.Value()))
			case typeGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels, nil), formatValue(s.g.Value()))
			case typeHistogram:
				s.h.mu.Lock()
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i]
					le := Label{Key: "le", Value: formatValue(bound)}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, &le), cum)
				}
				cum += s.h.counts[len(s.h.bounds)]
				le := Label{Key: "le", Value: "+Inf"}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, &le), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(s.labels, nil), formatValue(s.h.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(s.labels, nil), s.h.count)
				s.h.mu.Unlock()
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
