// Package telemetry is the observability substrate of the two-level
// power manager: a span-based tracer with an injectable clock, a
// lock-cheap metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus text exposition, and a Chrome-trace-JSON
// exporter (chrome://tracing / Perfetto).
//
// Two design rules govern the package:
//
//  1. Telemetry is opt-in and nil-safe. A nil *Tracer, *Track, *Span,
//     *Registry, *Counter, *Gauge or *Histogram is a valid disabled
//     instrument: every method no-ops after a single nil check, so the
//     instrumented hot paths (the Fig. 6 simulation loop, Algorithm 1's
//     branch-and-bound) cost ~zero when tracing is off — proven by
//     BenchmarkFig6TelemetryOff/On at the module root.
//
//  2. The clock is injected, never read directly. Deterministic
//     packages (dcsim, testbed, and everything below them) timestamp
//     spans with logical simulation time, so traces reproduce
//     byte-for-byte from a seed and vdclint's determinism analyzer
//     stays green; interactive edges (cmd/serve) inject WallClock and
//     get real latencies for the dashboard's timing panel. The
//     telemetry vdclint analyzer enforces that instrumented packages
//     never bypass the injected clock.
package telemetry

import (
	"sort"
	"sync"
	"time"
)

// DefaultTrackCapacity bounds each track's span ring buffer when the
// Tracer is constructed with capacity <= 0. When a track overflows, the
// oldest records are dropped (and counted), never the newest: the tail
// of a run is what post-mortems need.
const DefaultTrackCapacity = 16384

// processStart anchors WallClock so exported timestamps stay small.
//
//lint:ignore telemetry this IS the wall-clock implementation the injected clock abstracts
var processStart = time.Now()

// WallClock returns wall-clock seconds since process start. It is the
// clock the interactive edges (cmd/serve) inject; deterministic
// harnesses inject simulation time instead.
func WallClock() float64 {
	//lint:ignore telemetry this IS the wall-clock implementation the injected clock abstracts
	return time.Since(processStart).Seconds()
}

// Traceable is implemented by components (consolidators, controllers)
// that can record spans onto a harness-owned track. Harnesses
// type-assert against it so the Consolidator interface stays telemetry
// free.
type Traceable interface {
	SetTrace(*Track)
}

// attrKind discriminates Attr payloads.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
	attrBool
)

// Attr is one typed span attribute. Attributes keep their recording
// order (call sites list them deterministically), so exports are
// byte-stable without sorting.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
	b    bool
}

// Phase values of a SpanRecord, matching the Chrome trace event phases.
const (
	PhaseSpan    = 'X' // complete event: Start..End
	PhaseInstant = 'i' // point event: Event
)

// SpanRecord is one finished span or instant event.
type SpanRecord struct {
	Name  string
	Track string
	Start float64 // seconds on the track's clock
	Dur   float64 // seconds; 0 for instants
	Depth int     // nesting depth at Start (0 = root)
	Phase byte    // PhaseSpan or PhaseInstant
	Seq   uint64  // per-track emission sequence
	Attrs []Attr
}

// Tracer owns the span sink and the injected clock. Construct with New;
// a nil *Tracer is a valid disabled tracer.
type Tracer struct {
	mu       sync.Mutex
	clock    func() float64
	trackCap int
	tracks   map[string]*Track
}

// New builds a tracer. clock supplies timestamps in seconds — pass the
// simulator's Now for deterministic traces or WallClock at interactive
// edges; nil means tracks run on logical time set via Track.SetTime
// (starting at 0). capacity bounds each track's ring buffer (<= 0
// selects DefaultTrackCapacity).
func New(clock func() float64, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTrackCapacity
	}
	return &Tracer{clock: clock, trackCap: capacity, tracks: map[string]*Track{}}
}

// Track returns the named track, creating it on first use. A track is
// the unit of sequential execution (one goroutine at a time): spans on
// one track nest by Start/End order. Distinct tracks may be used from
// distinct goroutines concurrently. Nil-safe: a nil tracer returns a
// nil (disabled) track.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tk, ok := t.tracks[name]
	if !ok {
		tk = &Track{tracer: t, name: name}
		t.tracks[name] = tk
	}
	return tk
}

// Snapshot returns every recorded span, tracks sorted by name and
// records in emission order within each track — a deterministic order,
// so exports of deterministic runs are byte-identical.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.tracks))
	tracks := make([]*Track, 0, len(t.tracks))
	for n := range t.tracks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tracks = append(tracks, t.tracks[n])
	}
	t.mu.Unlock()
	var out []SpanRecord
	for _, tk := range tracks {
		out = append(out, tk.snapshot()...)
	}
	return out
}

// Dropped returns the total number of records evicted from full ring
// buffers across all tracks.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	tracks := make([]*Track, 0, len(t.tracks))
	for _, tk := range t.tracks {
		tracks = append(tracks, tk)
	}
	t.mu.Unlock()
	n := 0
	for _, tk := range tracks {
		tk.mu.Lock()
		n += tk.dropped
		tk.mu.Unlock()
	}
	return n
}

// Track is one sequential stream of nested spans. Methods must be
// called from one goroutine at a time (the owning simulation loop or
// worker); the tracer serializes cross-track state internally.
type Track struct {
	tracer *Tracer
	name   string

	// logical time override: set via SetTime by harnesses that carry
	// their own step clock (dcsim); when unset the tracer clock rules.
	// base shifts the logical origin (see Rebase) so one track can host
	// consecutive runs that each restart their clock at zero.
	hasTime bool
	now     float64
	base    float64
	depth   int

	mu      sync.Mutex // guards recs/head/seq/dropped against Snapshot
	recs    []SpanRecord
	head    int // ring start when len(recs) == cap
	seq     uint64
	dropped int
}

// Name returns the track name ("" for a disabled track).
func (tk *Track) Name() string {
	if tk == nil {
		return ""
	}
	return tk.name
}

// SetTime sets the track's logical clock, overriding the tracer clock
// for every subsequent Start/End/Event on this track. Deterministic
// harnesses without a continuous simulator clock (dcsim's trace-step
// loop) call it once per step. sec is relative to the track's current
// origin (0 until Rebase moves it).
func (tk *Track) SetTime(sec float64) {
	if tk == nil {
		return
	}
	tk.hasTime = true
	tk.now = tk.base + sec
}

// Rebase moves the track's logical-time origin forward to the current
// timestamp: subsequent SetTime(sec) calls map sec onto origin+sec.
// Harnesses that reuse one track for consecutive runs which each reset
// their own clock (dcsim.Run starts every run at SetTime(0)) call it
// between runs — without it the second run would rewind the track,
// clamping enclosing span durations to zero and stacking every run at
// ts 0 in the exported trace.
func (tk *Track) Rebase() {
	if tk == nil {
		return
	}
	tk.base = tk.Now()
}

// Now returns the track's current timestamp in seconds: the logical
// time if SetTime was used, otherwise the tracer clock (0 when both are
// absent). Nil-safe. Instrumented packages measure durations with it
// instead of reading the wall clock.
func (tk *Track) Now() float64 {
	if tk == nil {
		return 0
	}
	if tk.hasTime {
		return tk.now
	}
	if tk.tracer.clock != nil {
		return tk.tracer.clock()
	}
	return 0
}

// Start opens a span. The returned handle accumulates attributes and
// must be closed with End from the same goroutine. Nil-safe: on a
// disabled track it returns nil and every Span method no-ops.
func (tk *Track) Start(name string) *Span {
	if tk == nil {
		return nil
	}
	sp := &Span{track: tk, name: name, start: tk.Now(), depth: tk.depth}
	tk.depth++
	return sp
}

// Event opens an instant (point-in-time) event — migrations, vetoes,
// server wake/sleep transitions. Close it with End like a span; it does
// not affect nesting depth.
func (tk *Track) Event(name string) *Span {
	if tk == nil {
		return nil
	}
	return &Span{track: tk, name: name, start: tk.Now(), depth: tk.depth, instant: true}
}

// emit appends a finished record to the ring.
func (tk *Track) emit(rec SpanRecord) {
	tk.mu.Lock()
	rec.Seq = tk.seq
	tk.seq++
	if len(tk.recs) < tk.tracer.trackCap {
		tk.recs = append(tk.recs, rec)
	} else {
		tk.recs[tk.head] = rec
		tk.head = (tk.head + 1) % len(tk.recs)
		tk.dropped++
	}
	tk.mu.Unlock()
}

// snapshot copies the ring in emission order.
func (tk *Track) snapshot() []SpanRecord {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	out := make([]SpanRecord, 0, len(tk.recs))
	out = append(out, tk.recs[tk.head:]...)
	out = append(out, tk.recs[:tk.head]...)
	return out
}

// Span is an open span (or instant event) handle. All methods are
// nil-safe and return the receiver so attributes chain:
//
//	sp := track.Start("packing.minslack")
//	...
//	sp.Int("nodes", n).Bool("widened", w).End()
type Span struct {
	track   *Track
	name    string
	start   float64
	depth   int
	instant bool
	attrs   []Attr
}

// Int attaches an integer attribute.
func (sp *Span) Int(key string, v int) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrInt, i: int64(v)})
	return sp
}

// Float attaches a float attribute.
func (sp *Span) Float(key string, v float64) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrFloat, f: v})
	return sp
}

// Str attaches a string attribute.
func (sp *Span) Str(key, v string) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrStr, s: v})
	return sp
}

// Bool attaches a boolean attribute.
func (sp *Span) Bool(key string, v bool) *Span {
	if sp == nil {
		return nil
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrBool, b: v})
	return sp
}

// End closes the span and records it. For instants the duration is 0;
// for spans it is the track clock's advance since Start (0 under a
// stalled logical clock — nesting still reconstructs from depth).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	tk := sp.track
	rec := SpanRecord{
		Name:  sp.name,
		Track: tk.name,
		Start: sp.start,
		Depth: sp.depth,
		Phase: PhaseInstant,
		Attrs: sp.attrs,
	}
	if !sp.instant {
		tk.depth--
		rec.Phase = PhaseSpan
		if end := tk.Now(); end > sp.start {
			rec.Dur = end - sp.start
		}
	}
	tk.emit(rec)
}
