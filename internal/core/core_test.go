package core

import (
	"math"
	"testing"

	"vdcpower/internal/appsim"
	"vdcpower/internal/cluster"
	"vdcpower/internal/devs"
	"vdcpower/internal/mat"
	"vdcpower/internal/power"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
)

// fakeApp is a linear plant implementing ControlledApp: its "response
// time" follows a known ARX model of its allocations, so controller
// behavior can be verified exactly.
type fakeApp struct {
	model  *sysid.Model
	alloc  mat.Vec
	tHist  []float64
	cHist  []mat.Vec
	window []float64
}

func newFakeApp(model *sysid.Model, init mat.Vec, t0 float64) *fakeApp {
	f := &fakeApp{model: model, alloc: init.Clone()}
	for i := 0; i < model.Na; i++ {
		f.tHist = append(f.tHist, t0)
	}
	for j := 0; j < model.Nb; j++ {
		f.cHist = append(f.cHist, init.Clone())
	}
	return f
}

func (f *fakeApp) NumTiers() int { return len(f.alloc) }
func (f *fakeApp) Allocations() []float64 {
	return append([]float64(nil), f.alloc...)
}
func (f *fakeApp) SetAllocation(tier int, ghz float64) { f.alloc[tier] = ghz }

// tick advances the plant one period and fills the window with samples
// spread around the model output (so p90 ≈ output).
func (f *fakeApp) tick() {
	f.cHist = append([]mat.Vec{f.alloc.Clone()}, f.cHist...)
	if len(f.cHist) > f.model.Nb {
		f.cHist = f.cHist[:f.model.Nb]
	}
	y := f.model.Predict(f.tHist, f.cHist)
	f.tHist = append([]float64{y}, f.tHist...)
	if len(f.tHist) > f.model.Na {
		f.tHist = f.tHist[:f.model.Na]
	}
	f.window = nil
	for i := 0; i < 20; i++ {
		f.window = append(f.window, y)
	}
}

func (f *fakeApp) DrainResponseTimes() []float64 {
	w := f.window
	f.window = nil
	return w
}

func testModel() *sysid.Model {
	return &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.4},
		B:     []mat.Vec{{-0.5, -0.4}, {-0.15, -0.1}},
		Gamma: 3.0,
	}
}

func TestNewControllerValidation(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	if _, err := NewResponseTimeController(nil, cfg); err == nil {
		t.Fatal("nil app accepted")
	}
	bad := cfg
	bad.Model = nil
	if _, err := NewResponseTimeController(app, bad); err == nil {
		t.Fatal("nil model accepted")
	}
	oneTier := &sysid.Model{Na: 1, Nb: 1, NumInputs: 1, A: []float64{0.5}, B: []mat.Vec{{-1}}, Gamma: 2}
	mismatch := DefaultControllerConfig(oneTier, 1.0)
	if _, err := NewResponseTimeController(app, mismatch); err == nil {
		t.Fatal("tier mismatch accepted")
	}
	neg := cfg
	neg.MinWindow = -1
	if _, err := NewResponseTimeController(app, neg); err == nil {
		t.Fatal("negative MinWindow accepted")
	}
}

func TestControllerConvergesOnLinearPlant(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{0.5, 0.5}, 3.0)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last StepResult
	for k := 0; k < 40; k++ {
		app.tick()
		last, err = ctl.Step()
		if err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(last.T90-1.0) > 0.05 {
		t.Fatalf("did not converge: T90 = %v", last.T90)
	}
	if ctl.Steps() != 40 {
		t.Fatalf("Steps = %d", ctl.Steps())
	}
}

func TestControllerHoldsOnEmptyWindow(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2.0)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No tick: window empty. The controller must hold the seed value.
	res, err := ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Held {
		t.Fatal("expected Held with empty window")
	}
	if res.T90 != 1.0 { // seeded at the set point
		t.Fatalf("held T90 = %v, want set point", res.T90)
	}
}

func TestControllerRespectsBounds(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 8.0)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	cfg.CMax = mat.Vec{1.5, 1.5}
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		app.tick()
		res, err := ctl.Step()
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range res.Allocations {
			if a > cfg.CMax[i]+1e-9 || a < cfg.CMin[i]-1e-9 {
				t.Fatalf("step %d: allocation %v outside bounds", k, a)
			}
		}
	}
}

func TestControllerDemandsMatchApplied(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2.0)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	app.tick()
	res, err := ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	d := ctl.Demands()
	for i := range d {
		if d[i] != res.Allocations[i] {
			t.Fatalf("Demands %v != applied %v", d, res.Allocations)
		}
		if app.alloc[i] != res.Allocations[i] {
			t.Fatalf("app allocation %v != applied %v", app.alloc, res.Allocations)
		}
	}
}

func TestControllerSetpointChange(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2.0)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	ctl.SetSetpoint(1.4)
	if ctl.Setpoint() != 1.4 {
		t.Fatal("SetSetpoint failed")
	}
	for k := 0; k < 40; k++ {
		app.tick()
		if _, err := ctl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	app.tick()
	res, err := ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T90-1.4) > 0.07 {
		t.Fatalf("did not track new set point: %v", res.T90)
	}
}

// End-to-end: controller on the discrete-event application simulator,
// mirroring the testbed loop of Section VII-A at small scale.
func TestControllerOnSimulatedApp(t *testing.T) {
	sim := devs.NewSimulator()
	app := appsim.New(sim, appsim.Config{
		Name: "e2e",
		Tiers: []appsim.TierConfig{
			{DemandMean: 0.025, DemandCV: 1.0, InitialAllocation: 0.6},
			{DemandMean: 0.040, DemandCV: 1.0, InitialAllocation: 0.6},
		},
		Concurrency: 40,
		ThinkTime:   1.0,
		Seed:        42,
	})
	app.Start()
	const period = 4.0

	// Identify a model by exciting the allocations, as in Section IV-B.
	ds := &sysid.Dataset{}
	rng := newLCG(7)
	sim.RunUntil(20) // warm up
	app.DrainResponseTimes()
	for k := 0; k < 120; k++ {
		c := mat.Vec{0.4 + 1.2*rng.next(), 0.4 + 1.2*rng.next()}
		t90 := stats.Percentile(app.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = 0
		}
		ds.Append(t90, c)
		app.SetAllocation(0, c[0])
		app.SetAllocation(1, c[1])
		sim.RunUntil(sim.Now() + period)
	}
	model, err := sysid.Identify(ds, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultControllerConfig(model, 1.0)
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tail []float64
	for k := 0; k < 150; k++ {
		sim.RunUntil(sim.Now() + period)
		res, err := ctl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if k >= 100 {
			tail = append(tail, res.T90)
		}
	}
	mean := stats.Mean(tail)
	if math.Abs(mean-1.0) > 0.35 {
		t.Fatalf("closed loop settled at %v, want ≈1.0s", mean)
	}
}

// newLCG gives the identification loop a tiny deterministic generator
// without importing math/rand in two places.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }
func (l *lcg) next() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(l.s>>11) / float64(1<<53)
}

func TestArbitratorSelectsFrequencyAndGrants(t *testing.T) {
	srv := cluster.NewServer("s", power.TypeHighEnd()) // 4 cores, 1.0..3.0
	dc, err := cluster.NewDataCenter([]*cluster.Server{srv})
	if err != nil {
		t.Fatal(err)
	}
	v1 := &cluster.VM{ID: "a", Demand: 2, MemoryGB: 1}
	v2 := &cluster.VM{ID: "b", Demand: 1.5, MemoryGB: 1}
	if err := dc.Place(v1, srv); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(v2, srv); err != nil {
		t.Fatal(err)
	}
	arb := &Arbitrator{Server: srv}
	grants, f := arb.Arbitrate()
	if f != 1.0 { // demand 3.5 ≤ 4×1.0
		t.Fatalf("f = %v, want 1.0", f)
	}
	for _, g := range grants {
		if g.Granted != g.Demand {
			t.Fatalf("grant %v != demand %v with spare capacity", g.Granted, g.Demand)
		}
	}
}

func TestArbitratorScalesDownWhenOverloaded(t *testing.T) {
	srv := cluster.NewServer("s", power.TypeMid()) // 4 GHz capacity
	dc, err := cluster.NewDataCenter([]*cluster.Server{srv})
	if err != nil {
		t.Fatal(err)
	}
	v1 := &cluster.VM{ID: "a", Demand: 3, MemoryGB: 1}
	v2 := &cluster.VM{ID: "b", Demand: 5, MemoryGB: 1}
	if err := dc.Place(v1, srv); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(v2, srv); err != nil {
		t.Fatal(err)
	}
	arb := &Arbitrator{Server: srv}
	grants, f := arb.Arbitrate()
	if f != srv.Spec.MaxFreq {
		t.Fatalf("overloaded server must run at max frequency, got %v", f)
	}
	total := 0.0
	for _, g := range grants {
		if g.Granted >= g.Demand {
			t.Fatalf("grant %v not scaled below demand %v", g.Granted, g.Demand)
		}
		total += g.Granted
	}
	if math.Abs(total-4.0) > 1e-9 {
		t.Fatalf("grants sum to %v, want capacity 4", total)
	}
	// Proportionality: 3:5 ratio preserved.
	if math.Abs(grants[0].Granted/grants[1].Granted-3.0/5.0) > 1e-9 {
		t.Fatal("grants not proportional")
	}
}

func TestArbitratorHeadroom(t *testing.T) {
	srv := cluster.NewServer("s", power.TypeHighEnd())
	dc, err := cluster.NewDataCenter([]*cluster.Server{srv})
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(&cluster.VM{ID: "a", Demand: 3.9, MemoryGB: 1}, srv); err != nil {
		t.Fatal(err)
	}
	noHead := &Arbitrator{Server: srv}
	_, f := noHead.Arbitrate()
	if f != 1.0 {
		t.Fatalf("without headroom f = %v, want 1.0", f)
	}
	withHead := &Arbitrator{Server: srv, Headroom: 0.2}
	_, f = withHead.Arbitrate()
	if f != 1.5 { // 3.9×1.2 = 4.68 > 4×1.0
		t.Fatalf("with headroom f = %v, want 1.5", f)
	}
}

func BenchmarkControllerStep(b *testing.B) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2.0)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.tick()
		if _, err := ctl.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
