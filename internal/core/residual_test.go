package core

import (
	"math"
	"testing"

	"vdcpower/internal/mat"
)

// TestResidualLifecycle pins the prediction-residual contract: the first
// period has no prior prediction, a held period yields no residual, and
// once the loop converges on a perfect model the residual shrinks toward
// zero (offset-free tracking means prediction ≈ measurement at rest).
func TestResidualLifecycle(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{0.5, 0.5}, 3.0)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}

	app.tick()
	res, err := ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.HasResidual {
		t.Fatal("first period has no prior prediction, yet HasResidual")
	}

	var last StepResult
	for k := 0; k < 39; k++ {
		app.tick()
		last, err = ctl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !last.HasResidual {
			t.Fatalf("period %d: valid measurement after a solve should carry a residual", k+2)
		}
	}
	if math.Abs(last.Residual) > 0.05 {
		t.Fatalf("converged residual = %v, want ~0 on a perfect model", last.Residual)
	}

	// A held period (empty window) must not fabricate a residual.
	res, err = ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Held || res.HasResidual {
		t.Fatalf("held period: Held=%v HasResidual=%v, want true/false", res.Held, res.HasResidual)
	}
}

// TestResidualInvalidatedByOpenLoop: once the hold window exhausts and
// the controller goes open-loop, the stale prediction must not be
// compared against the measurement that eventually returns.
func TestResidualInvalidatedByOpenLoop(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{0.5, 0.5}, 2.0)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	cfg.HoldWindow = 2
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.tick()
	if _, err := ctl.Step(); err != nil { // seeds a prediction
		t.Fatal(err)
	}
	sawOpenLoop := false
	for k := 0; k < 5; k++ { // empty windows until open-loop fires
		res, err := ctl.Step()
		if err != nil {
			t.Fatal(err)
		}
		sawOpenLoop = sawOpenLoop || res.OpenLoop
	}
	if !sawOpenLoop {
		t.Fatal("hold window never exhausted")
	}
	app.tick() // valid measurement returns
	res, err := ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Held {
		t.Fatal("measurement should be valid again")
	}
	if res.HasResidual {
		t.Fatal("residual after open-loop must be invalidated")
	}
	// The next valid period pairs with a fresh prediction again.
	app.tick()
	res, err = ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasResidual {
		t.Fatal("residual should resume one period after recovery")
	}
}

// TestSolveStatsDelegate: the controller surfaces its inner MPC tallies.
func TestSolveStatsDelegate(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{0.5, 0.5}, 2.0)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		app.tick()
		if _, err := ctl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// A relaxed period performs two QP solves, so >= periods is the bound.
	if st := ctl.SolveStats(); st.Solves < 3 {
		t.Fatalf("solves = %d, want >= 3", st.Solves)
	}
}
