// Package core wires the paper's contribution together: a per-application
// ResponseTimeController that drives the 90-percentile response time of a
// multi-tier application to its SLA set point by reallocating CPU among
// the application's VMs (Section IV), and a per-server Arbitrator that
// aggregates VM demands, grants allocations, and throttles the processor
// with DVFS (end of Section IV-B). The data-center-level optimizer lives
// in package optimizer; experiment harnesses in testbed and dcsim drive
// all three levels together as in Figure 1.
package core

import (
	"errors"
	"fmt"
	"math"

	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
	"vdcpower/internal/mat"
	"vdcpower/internal/mpc"
	"vdcpower/internal/sysid"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/units"
)

// defaultHoldWindow is how many consecutive held measurements the
// controller tolerates before going open-loop (ControllerConfig.HoldWindow
// overrides).
const defaultHoldWindow = 4

// ControlledApp is the sensor/actuator surface the response time
// controller needs from an application: in the simulated testbed it is
// *appsim.App; in a real deployment it would wrap the hypervisor's CPU
// credit scheduler and the application's access log.
type ControlledApp interface {
	// NumTiers returns the number of VMs (tiers) of the application.
	NumTiers() int
	// Allocations returns the current CPU allocation of each tier (GHz).
	Allocations() []units.Hertz
	// SetAllocation changes tier i's CPU allocation (GHz).
	SetAllocation(tier int, ghz units.Hertz)
	// DrainResponseTimes returns the response times (seconds) completed
	// since the last call and resets the window.
	DrainResponseTimes() []units.Second
}

// ControllerConfig parameterizes a response time controller.
type ControllerConfig struct {
	// Model is the identified ARX model (Eq. 1) for this application.
	Model *sysid.Model
	// Setpoint is the desired 90-percentile response time Ts in seconds.
	Setpoint units.Second
	// P and M are the prediction and control horizons.
	P, M int
	// Q is the tracking-error weight; R the per-tier control penalty.
	Q float64
	R mat.Vec
	// TrefPeriods is the reference-trajectory time constant in periods.
	TrefPeriods float64
	// CMin and CMax bound the absolute allocation of each tier (GHz).
	CMin, CMax mat.Vec
	// DeltaMax optionally bounds the per-period move (GHz); 0 = unbounded.
	DeltaMax units.Hertz
	// LevelPenalty optionally steers the loop toward the cheapest
	// SLA-feasible allocation (see mpc.Config.LevelPenalty); 0 keeps the
	// paper's cost function.
	LevelPenalty float64
	// MinWindow is the minimum number of completed requests required to
	// trust a window's percentile; with fewer samples the controller
	// holds the previous measurement (a stalled app yields no samples).
	MinWindow int
	// Metric selects the regulated SLA statistic. The zero value is the
	// paper's 90-percentile.
	Metric SLAMetric
	// HoldWindow bounds how many consecutive periods the controller keeps
	// closing the loop on a held (missing or rejected) measurement. Within
	// the window the MPC still runs with its move damped by the hold
	// streak; beyond it the controller goes open-loop, freezing the
	// last-good allocation (which tracks demand — the converged MPC
	// allocation is the demand-proportional fallback) until a valid
	// measurement returns. 0 means the default of 4 periods.
	HoldWindow int
	// SensorID scopes fault-plane sensor decisions to this controller
	// (defaults to "app"); harnesses set it to the application name.
	SensorID string
}

// DefaultControllerConfig returns the tuning used by the paper-style
// experiments for an application with the given number of tiers.
func DefaultControllerConfig(model *sysid.Model, setpoint units.Second) ControllerConfig {
	m := model.NumInputs
	uniform := func(x float64) mat.Vec {
		v := make(mat.Vec, m)
		for i := range v {
			v[i] = x
		}
		return v
	}
	return ControllerConfig{
		Model:       model,
		Setpoint:    setpoint,
		P:           8,
		M:           2,
		Q:           1,
		R:           uniform(0.05),
		TrefPeriods: 2,
		CMin:        uniform(0.1),
		CMax:        uniform(4.0),
		DeltaMax:    1.0,
		MinWindow:   5,
	}
}

// ResponseTimeController is the application-level controller of Figure 1:
// one per multi-tier application, invoked once per control period.
type ResponseTimeController struct {
	app        ControlledApp
	ctl        *mpc.Controller
	cfg        ControllerConfig
	tHist      []units.Second
	cHist      []mat.Vec
	lastT      units.Second
	steps      int
	heldStreak int              // consecutive periods without a valid measurement
	trace      *telemetry.Track // set via SetTrace; nil keeps tracing off
	faults     *fault.Injector  // set via SetFaults; nil keeps injection off

	// One-step-ahead prediction bookkeeping for the health scorecard:
	// the previous period's Predicted[0] is compared against the next
	// valid measurement to form the MPC prediction residual.
	lastPred      units.Second
	lastPredValid bool
}

// SetFaults implements fault.Injectable: measurements pass through the
// injector's sensor plane (dropouts, outliers, stuck values).
func (c *ResponseTimeController) SetFaults(in *fault.Injector) { c.faults = in }

// sensorID names this controller's sensor for fault-plane hashing.
func (c *ResponseTimeController) sensorID() string {
	if c.cfg.SensorID != "" {
		return c.cfg.SensorID
	}
	return "app"
}

// HoldWindow reports the effective hold window bound (default applied) —
// harnesses feed it to the check package's staleness law.
func (c *ResponseTimeController) HoldWindow() int { return c.holdWindow() }

// holdWindow returns the configured hold window with its default.
func (c *ResponseTimeController) holdWindow() int {
	if c.cfg.HoldWindow > 0 {
		return c.cfg.HoldWindow
	}
	return defaultHoldWindow
}

// SetTrace implements telemetry.Traceable: each Step records a
// "core.step" span nesting "core.measure", the MPC solve, and
// "core.actuate". The inner MPC controller is wired to the same track.
func (c *ResponseTimeController) SetTrace(tk *telemetry.Track) {
	c.trace = tk
	c.ctl.SetTrace(tk)
}

// StepResult reports one control period.
type StepResult struct {
	T90             units.Second  // measured SLA metric (90-percentile by default), seconds
	Samples         int           // completed requests in the window
	Held            bool          // no valid measurement: previous one held over
	Dropped         bool          // measurement rejected (NaN/Inf or injected dropout)
	HeldStreak      int           // consecutive periods without a valid measurement
	OpenLoop        bool          // hold window exhausted: last-good allocation frozen
	Allocations     []units.Hertz // allocations applied for the next period
	TerminalRelaxed bool          // MPC had to relax the terminal constraint
	// Residual is the MPC one-step prediction residual t(k) − t̂(k|k−1),
	// valid only when HasResidual: both a fresh valid measurement and a
	// previous period's prediction must exist.
	Residual    units.Second
	HasResidual bool
}

// NewResponseTimeController validates the configuration and attaches the
// controller to the application.
func NewResponseTimeController(app ControlledApp, cfg ControllerConfig) (*ResponseTimeController, error) {
	if app == nil {
		return nil, errors.New("core: nil application")
	}
	if cfg.Model == nil {
		return nil, errors.New("core: nil model")
	}
	if app.NumTiers() != cfg.Model.NumInputs {
		return nil, fmt.Errorf("core: app has %d tiers, model %d inputs", app.NumTiers(), cfg.Model.NumInputs)
	}
	if cfg.MinWindow < 0 {
		return nil, errors.New("core: negative MinWindow")
	}
	if !cfg.Metric.Valid() {
		return nil, fmt.Errorf("core: unknown SLA metric %d", cfg.Metric)
	}
	inner, err := mpc.New(mpc.Config{
		Model:        cfg.Model,
		P:            cfg.P,
		M:            cfg.M,
		Q:            cfg.Q,
		R:            cfg.R,
		TrefPeriods:  cfg.TrefPeriods,
		Setpoint:     cfg.Setpoint,
		CMin:         cfg.CMin,
		CMax:         cfg.CMax,
		DeltaMax:     cfg.DeltaMax,
		LevelPenalty: cfg.LevelPenalty,
	})
	if err != nil {
		return nil, err
	}
	c := &ResponseTimeController{app: app, ctl: inner, cfg: cfg, lastT: cfg.Setpoint}
	// Seed histories so the first Step has a full regressor: assume the
	// loop starts at rest at the set point with the current allocations.
	cur := mat.Vec(app.Allocations()).Clone()
	for i := 0; i <= cfg.Model.Na; i++ {
		c.tHist = append(c.tHist, cfg.Setpoint)
	}
	for j := 0; j <= cfg.Model.Nb; j++ {
		c.cHist = append(c.cHist, cur.Clone())
	}
	return c, nil
}

// Setpoint returns the current response-time target.
func (c *ResponseTimeController) Setpoint() units.Second { return c.ctl.Setpoint() }

// SetSetpoint retargets the controller at run time.
func (c *ResponseTimeController) SetSetpoint(ts units.Second) { c.ctl.SetSetpoint(ts) }

// Demands returns the CPU resource demand of each tier VM in GHz — what
// the controller most recently requested. The server-level arbitrator and
// the data-center optimizer consume these (Figure 1's "CPU resource
// demands" arrows).
func (c *ResponseTimeController) Demands() []units.Hertz { return c.cHist[0].Clone() }

// Step runs one control period: read the window's 90-percentile response
// time, solve the MPC problem, and apply the first move to the
// application's VMs.
func (c *ResponseTimeController) Step() (StepResult, error) {
	period := c.trace.Start("core.step")
	measure := c.trace.Start("core.measure")
	window := c.app.DrainResponseTimes()
	res := StepResult{Samples: len(window)}
	minW := c.cfg.MinWindow
	if minW == 0 {
		minW = 1
	}
	valid := false
	if len(window) >= minW {
		t := c.cfg.Metric.Measure(window)
		t, _ = c.faults.SensorRead(c.steps, c.sensorID(), t)
		// Measurement guard: a non-finite percentile (poisoned window,
		// injected dropout) must never enter the ARX regressor — a single
		// NaN there poisons every subsequent MPC solve. Negative values
		// pass: linear ARX plants can transiently predict them.
		if math.IsNaN(t) || math.IsInf(t, 0) {
			res.Dropped = true
		} else {
			c.lastT = t
			valid = true
			if c.lastPredValid {
				res.Residual = t - c.lastPred
				res.HasResidual = true
			}
		}
	}
	if valid {
		c.heldStreak = 0
	} else {
		res.Held = true
		c.heldStreak++
	}
	res.HeldStreak = c.heldStreak
	res.T90 = c.lastT
	measure.Int("samples", res.Samples).Float("t90", res.T90).
		Bool("held", res.Held).Bool("dropped", res.Dropped).End()

	// Shift measurement history in place (the held last-good value when
	// invalid): the window has fixed length Na+1 after construction, so an
	// overlapping copy slides it right without reallocating.
	copy(c.tHist[1:], c.tHist)
	c.tHist[0] = c.lastT

	if c.heldStreak > c.holdWindow() {
		// Hold window exhausted: the held measurement is too stale to close
		// the loop on. Go open-loop — freeze the last-good allocation (the
		// converged MPC allocation tracks demand, so this is the
		// demand-proportional fallback) until a valid measurement returns.
		res.OpenLoop = true
		// No solve this period: the stored prediction no longer describes
		// the next measurement.
		c.lastPredValid = false
		next := c.pushAllocSlot()
		for i := range next {
			c.app.SetAllocation(i, next[i])
		}
		res.Allocations = next.Clone()
		c.steps++
		period.Bool("open_loop", true).Int("held_streak", c.heldStreak).End()
		return res, nil
	}

	out, err := c.ctl.Compute(c.tHist, c.cHist)
	if err != nil {
		c.lastPredValid = false
		period.End()
		return res, fmt.Errorf("core: control step failed: %w", err)
	}
	res.TerminalRelaxed = out.TerminalRelaxed
	c.lastPred = out.Predicted[0]
	c.lastPredValid = true

	// Damp the move while closing the loop on a held measurement: stale
	// feedback earns proportionally less authority.
	damp := 1.0
	if c.heldStreak > 0 {
		damp = 1 / float64(1+c.heldStreak)
	}

	actuate := c.trace.Start("core.actuate")
	next := c.pushAllocSlot()
	for i := range next {
		next[i] += out.Delta[i] * damp
		// Defensive clamp: the QP already enforces the box, but floating
		// point can graze it.
		if next[i] < c.cfg.CMin[i] {
			next[i] = c.cfg.CMin[i]
		}
		if next[i] > c.cfg.CMax[i] {
			next[i] = c.cfg.CMax[i]
		}
		c.app.SetAllocation(i, next[i])
	}
	actuate.Int("tiers", len(next)).End()
	res.Allocations = next.Clone()
	c.steps++
	period.Bool("relaxed", res.TerminalRelaxed).End()
	return res, nil
}

// pushAllocSlot rotates the allocation history ring: the oldest slot's
// backing array is recycled as the new head, preloaded with the previous
// head's values, and returned for in-place mutation before being read
// again. History semantics match the old prepend-and-trim exactly; only
// the storage is reused (ROADMAP item 2).
func (c *ResponseTimeController) pushAllocSlot() mat.Vec {
	last := len(c.cHist) - 1
	slot := c.cHist[last]
	copy(slot, c.cHist[0])
	copy(c.cHist[1:], c.cHist[:last])
	c.cHist[0] = slot
	return slot
}

// Steps returns the number of control periods executed.
func (c *ResponseTimeController) Steps() int { return c.steps }

// SolveStats returns the inner MPC controller's cumulative solve
// tallies (QP warm-start hit rate, relaxations, fallbacks) for the
// health scorecard.
func (c *ResponseTimeController) SolveStats() mpc.SolveStats { return c.ctl.Stats() }

// Arbitrator is the server-level CPU resource arbitrator: it collects the
// CPU demands of the VMs hosted on one server, grants allocations
// (scaling proportionally when the server is oversubscribed), and
// throttles the processor to the lowest DVFS frequency that satisfies the
// aggregate demand.
type Arbitrator struct {
	Server *cluster.Server
	// Headroom keeps a fraction of the chosen frequency's capacity free
	// when picking the P-state, absorbing intra-period bursts.
	Headroom units.Fraction
	// Trace, when non-nil, records one "arbitrator.pass" span per
	// Arbitrate call.
	Trace *telemetry.Track
	// Faults, when non-nil, can fail the DVFS actuation. The degradation
	// policy never runs the server below demand because of a failed knob:
	// the previous P-state is kept when it still covers the aggregate
	// demand, otherwise the server fails safe to maximum frequency.
	Faults *fault.Injector
}

// Grant is one VM's arbitrated allocation.
type Grant struct {
	VMID    string
	Demand  units.Hertz // requested GHz
	Granted units.Hertz // granted GHz (≤ demand when oversubscribed)
}

// Arbitrate performs one arbitration round and returns the grants plus
// the chosen frequency.
func (a *Arbitrator) Arbitrate() ([]Grant, units.Hertz) {
	srv := a.Server
	sp := a.Trace.Start("arbitrator.pass").Str("server", srv.ID)
	total := srv.TotalDemand()
	capacity := srv.Spec.Capacity()
	scale := 1.0
	if total > capacity {
		scale = capacity / total // proportional scale-down when overloaded
	}
	f := srv.Spec.LowestFreqFor(total * (1 + a.Headroom))
	dvfsFailed := false
	if a.Faults.DVFSFails(a.Faults.Step(), srv.ID) {
		// Actuation failed. Keep the current P-state if it still covers
		// demand; otherwise fail safe to maximum frequency so a broken
		// knob can only waste power, never violate the SLA.
		dvfsFailed = true
		if srv.Spec.CapacityAt(srv.Freq()) >= total {
			f = srv.Freq()
		} else {
			f = srv.Spec.MaxFreq
		}
	}
	srv.SetFreq(f)
	grants := make([]Grant, 0, srv.NumVMs())
	for _, v := range srv.VMs() {
		grants = append(grants, Grant{VMID: v.ID, Demand: v.Demand, Granted: v.Demand * scale})
	}
	sp.Int("vms", len(grants)).Float("freq_ghz", f).
		Bool("oversubscribed", scale < 1).Bool("dvfs_failed", dvfsFailed).End()
	return grants, f
}
