package core

import (
	"math"
	"testing"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
)

func TestSLAMetricMeasure(t *testing.T) {
	window := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		m    SLAMetric
		want float64
	}{
		{P90, 9.1},
		{Median, 5.5},
		{Mean, 5.5},
		{Max, 10},
	}
	for _, c := range cases {
		if got := c.m.Measure(window); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.m, got, c.want)
		}
	}
	if P95.Measure(window) <= P90.Measure(window) {
		t.Error("p95 must exceed p90 on this window")
	}
	if P99.Measure(window) < P95.Measure(window) {
		t.Error("p99 must be >= p95")
	}
}

func TestSLAMetricStringAndValid(t *testing.T) {
	for m := P90; m <= Max; m++ {
		if m.String() == "" {
			t.Errorf("metric %d has empty name", m)
		}
		if !m.Valid() {
			t.Errorf("metric %d invalid", m)
		}
	}
	if SLAMetric(99).Valid() {
		t.Error("out-of-range metric valid")
	}
	if SLAMetric(99).String() == "" {
		t.Error("out-of-range metric has empty name")
	}
}

func TestControllerRejectsUnknownMetric(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	cfg.Metric = SLAMetric(42)
	if _, err := NewResponseTimeController(app, cfg); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestControllerWithMeanMetric(t *testing.T) {
	// The fake plant fills the window with identical samples, so mean
	// and p90 agree: the loop must converge the same way.
	app := newFakeApp(testModel(), mat.Vec{0.5, 0.5}, 3.0)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	cfg.Metric = Mean
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last StepResult
	for k := 0; k < 40; k++ {
		app.tick()
		if last, err = ctl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(last.T90-1.0) > 0.05 {
		t.Fatalf("mean-metric loop settled at %v", last.T90)
	}
}

func TestSetModelValidation(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.SetModel(nil); err == nil {
		t.Fatal("nil model accepted")
	}
	wrongInputs := &sysid.Model{Na: 1, Nb: 2, NumInputs: 3,
		A: []float64{0.3}, B: []mat.Vec{{-1, -1, -1}, {-0.1, -0.1, -0.1}}, Gamma: 2}
	if err := ctl.SetModel(wrongInputs); err == nil {
		t.Fatal("input mismatch accepted")
	}
	higherOrder := &sysid.Model{Na: 3, Nb: 2, NumInputs: 2,
		A: []float64{0.2, 0.1, 0.05}, B: []mat.Vec{{-1, -1}, {-0.1, -0.1}}, Gamma: 2}
	if err := ctl.SetModel(higherOrder); err == nil {
		t.Fatal("higher-order model accepted")
	}
	ok := testModel()
	ok.A[0] = 0.3
	if err := ctl.SetModel(ok); err != nil {
		t.Fatal(err)
	}
}

func TestSetModelKeepsLoopWorking(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{0.5, 0.5}, 3.0)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		app.tick()
		if _, err := ctl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.SetModel(testModel()); err != nil {
		t.Fatal(err)
	}
	var last StepResult
	for k := 0; k < 30; k++ {
		app.tick()
		if last, err = ctl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(last.T90-1.0) > 0.05 {
		t.Fatalf("loop broken after SetModel: %v", last.T90)
	}
}

func TestAdaptiveControllerValidation(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2)
	mutations := map[string]func(*AdaptiveConfig){
		"RefitEvery 0":      func(c *AdaptiveConfig) { c.RefitEvery = 0 },
		"MinSamples 0":      func(c *AdaptiveConfig) { c.MinSamples = 0 },
		"window < samples":  func(c *AdaptiveConfig) { c.WindowSize = c.MinSamples - 1 },
		"ridge 0":           func(c *AdaptiveConfig) { c.Ridge = 0 },
		"improve factor 0":  func(c *AdaptiveConfig) { c.ImproveFactor = 0 },
		"improve factor >1": func(c *AdaptiveConfig) { c.ImproveFactor = 1.5 },
	}
	for name, mutate := range mutations {
		cfg := DefaultAdaptiveConfig(DefaultControllerConfig(testModel(), 1.0))
		mutate(&cfg)
		if _, err := NewAdaptiveController(app, cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestAdaptiveControllerRefitsUnderDrift(t *testing.T) {
	// The controller starts with testModel but the plant's gains are 3×
	// stronger. The RLS must re-identify and swap models, and the loop
	// must hold the set point.
	plant := &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.4},
		B:     []mat.Vec{{-1.5, -1.2}, {-0.45, -0.3}},
		Gamma: 6.0,
	}
	app := newFakeApp(plant, mat.Vec{0.5, 0.5}, 3.0)
	cfg := DefaultAdaptiveConfig(DefaultControllerConfig(testModel(), 1.0))
	ac, err := NewAdaptiveController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for k := 0; k < 80; k++ {
		app.tick()
		res, err := ac.Step()
		if err != nil {
			t.Fatal(err)
		}
		if k >= 60 { // average over the dither wobble
			sum += res.T90
			n++
		}
	}
	if ac.Refits() == 0 {
		t.Fatal("adaptive controller never refit")
	}
	if mean := sum / float64(n); math.Abs(mean-1.0) > 0.15 {
		t.Fatalf("adaptive loop settled at %v", mean)
	}
	// The swapped-in model should be close to the true plant.
	got := ac.Ctl.cfg.Model
	if math.Abs(got.B[0][0]-plant.B[0][0]) > 0.3 {
		t.Fatalf("re-identified B[0][0] = %v, want ≈%v", got.B[0][0], plant.B[0][0])
	}
}

func TestCredibleRejectsBadModels(t *testing.T) {
	unstable := testModel()
	unstable.A = []float64{1.5}
	if credible(unstable) {
		t.Fatal("unstable model credible")
	}
	positive := testModel()
	positive.B = []mat.Vec{{0.5, 0.4}, {0.15, 0.1}}
	if credible(positive) {
		t.Fatal("positive-gain model credible")
	}
	malformed := testModel()
	malformed.A = nil
	if credible(malformed) {
		t.Fatal("malformed model credible")
	}
	if !credible(testModel()) {
		t.Fatal("good model rejected")
	}
}
