package core

import (
	"errors"
	"fmt"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
)

// SetModel swaps the controller's ARX model at run time, rebuilding the
// underlying MPC with the same tuning. The new model must have the same
// number of inputs. Online re-identification (AdaptiveController) uses
// this when the workload drifts far from the operating point of the
// offline identification experiment.
func (c *ResponseTimeController) SetModel(m *sysid.Model) error {
	if m == nil {
		return errors.New("core: nil model")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if m.NumInputs != c.cfg.Model.NumInputs {
		return fmt.Errorf("core: new model has %d inputs, want %d", m.NumInputs, c.cfg.Model.NumInputs)
	}
	if m.Na > c.cfg.Model.Na || m.Nb > c.cfg.Model.Nb {
		// Histories are sized for the original orders; allow only equal
		// or lower orders so the stored history stays sufficient.
		return fmt.Errorf("core: new model orders (%d,%d) exceed original (%d,%d)",
			m.Na, m.Nb, c.cfg.Model.Na, c.cfg.Model.Nb)
	}
	cfg := c.cfg
	cfg.Model = m
	rebuilt, err := NewResponseTimeController(c.app, cfg)
	if err != nil {
		return err
	}
	// Keep the live histories and counters; only the optimizer changes.
	c.ctl = rebuilt.ctl
	c.cfg.Model = m
	return nil
}

// Model returns the ARX model currently steering the controller.
func (c *ResponseTimeController) Model() *sysid.Model { return c.cfg.Model }

// AdaptiveConfig parameterizes an adaptive response time controller.
type AdaptiveConfig struct {
	// Base is the underlying controller configuration (its Model steers
	// until live data justifies a swap).
	Base ControllerConfig
	// WindowSize is the number of recent (measurement, allocation)
	// samples kept for re-identification.
	WindowSize int
	// RefitEvery is the number of control periods between refit attempts.
	RefitEvery int
	// MinSamples is the minimum window fill before the first attempt.
	MinSamples int
	// Ridge is the Tikhonov parameter for the windowed re-fit: live
	// closed-loop data is often poorly excited, where ordinary least
	// squares is ill-posed.
	Ridge float64
	// ImproveFactor gates the swap: the candidate's one-step RMSE on the
	// window must be below ImproveFactor × the current model's RMSE.
	ImproveFactor float64
	// Dither is the amplitude (GHz) of the persistent-excitation square
	// waves added to the applied allocations. Closed-loop data leaves
	// the individual tier gains unidentifiable (the controller moves all
	// allocations together); a small orthogonal dither — each tier
	// toggling at a different rate — restores identifiability at a
	// negligible performance cost. 0 disables it.
	Dither float64
}

// DefaultAdaptiveConfig wraps a controller config with standard
// adaptation tuning.
func DefaultAdaptiveConfig(base ControllerConfig) AdaptiveConfig {
	return AdaptiveConfig{
		Base:          base,
		WindowSize:    80,
		RefitEvery:    10,
		MinSamples:    30,
		Ridge:         1e-4,
		ImproveFactor: 0.8,
		Dither:        0.08,
	}
}

// AdaptiveController augments the response time controller with online
// re-identification: it keeps a rolling window of live measurements,
// periodically fits a fresh ARX model (ridge-regularized batch least
// squares), and swaps it into the MPC when the fresh model is credible
// (stable, CPU increases reduce response time) and clearly explains the
// recent data better than the current one. This addresses the robustness
// concern of Section VII-A — "a system that is different from the one
// used to do system identification" — beyond what feedback alone
// corrects.
type AdaptiveController struct {
	Ctl *ResponseTimeController

	cfg    AdaptiveConfig
	window *sysid.Dataset
	refits int
}

// NewAdaptiveController validates the tuning and builds the controller.
func NewAdaptiveController(app ControlledApp, cfg AdaptiveConfig) (*AdaptiveController, error) {
	if cfg.RefitEvery < 1 {
		return nil, errors.New("core: RefitEvery must be >= 1")
	}
	if cfg.MinSamples < 1 {
		return nil, errors.New("core: MinSamples must be >= 1")
	}
	if cfg.WindowSize < cfg.MinSamples {
		return nil, errors.New("core: WindowSize must be >= MinSamples")
	}
	if cfg.Ridge <= 0 {
		return nil, errors.New("core: Ridge must be positive")
	}
	if cfg.ImproveFactor <= 0 || cfg.ImproveFactor > 1 {
		return nil, errors.New("core: ImproveFactor must be in (0, 1]")
	}
	inner, err := NewResponseTimeController(app, cfg.Base)
	if err != nil {
		return nil, err
	}
	return &AdaptiveController{Ctl: inner, cfg: cfg, window: &sysid.Dataset{}}, nil
}

// Step runs one control period, records the sample, and periodically
// attempts a model refit.
func (a *AdaptiveController) Step() (StepResult, error) {
	res, err := a.Ctl.Step()
	if err != nil {
		return res, err
	}
	applied := a.dither(res.Allocations)
	if !res.Held {
		// Convention matches sysid.Dataset: the measurement t(k) is
		// recorded with the allocation c(k) actually applied at the same
		// instant (including the excitation).
		a.window.Append(res.T90, applied)
		if a.window.Len() > a.cfg.WindowSize {
			a.window.T = a.window.T[1:]
			a.window.C = a.window.C[1:]
		}
	}
	if a.window.Len() >= a.cfg.MinSamples && a.Ctl.Steps()%a.cfg.RefitEvery == 0 {
		a.tryRefit()
	}
	return res, nil
}

// dither superimposes per-tier square waves of amplitude cfg.Dither on
// the controller's allocations, toggling tier i every 2^i periods so the
// excitation signals are mutually orthogonal, and applies the result.
// It returns the allocations actually applied.
func (a *AdaptiveController) dither(alloc []float64) mat.Vec {
	out := mat.Vec(alloc).Clone()
	if a.cfg.Dither <= 0 {
		return out
	}
	k := a.Ctl.Steps()
	for i := range out {
		sign := 1.0
		if (k>>uint(i))&1 == 1 {
			sign = -1
		}
		v := out[i] + sign*a.cfg.Dither
		if v < a.cfg.Base.CMin[i] {
			v = a.cfg.Base.CMin[i]
		}
		if v > a.cfg.Base.CMax[i] {
			v = a.cfg.Base.CMax[i]
		}
		out[i] = v
		a.Ctl.app.SetAllocation(i, v)
	}
	return out
}

// tryRefit fits a candidate on the window and swaps it in if it clearly
// wins. Failures are silent: the current model keeps steering.
func (a *AdaptiveController) tryRefit() {
	m := a.Ctl.Model()
	cand, err := sysid.IdentifyRidge(a.window, m.Na, m.Nb, m.NumInputs, a.cfg.Ridge)
	if err != nil || !credible(cand) {
		return
	}
	curFit, err1 := sysid.Evaluate(m, a.window)
	candFit, err2 := sysid.Evaluate(cand, a.window)
	if err1 != nil || err2 != nil {
		return
	}
	if candFit.RMSE >= a.cfg.ImproveFactor*curFit.RMSE {
		return
	}
	if a.Ctl.SetModel(cand) == nil {
		a.refits++
	}
}

// Refits returns how many times the model was swapped.
func (a *AdaptiveController) Refits() int { return a.refits }

// credible accepts a re-identified model only if it is stable and every
// input's DC gain is negative (more CPU must not slow the application) —
// a physically wrong estimate must never steer the loop.
func credible(m *sysid.Model) bool {
	if err := m.Validate(); err != nil {
		return false
	}
	if !m.Stable() {
		return false
	}
	for i := 0; i < m.NumInputs; i++ {
		if m.DCGain(i) >= 0 {
			return false
		}
	}
	return true
}
