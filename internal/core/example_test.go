package core_test

import (
	"fmt"

	"vdcpower/internal/cluster"
	"vdcpower/internal/core"
	"vdcpower/internal/power"
)

func ExampleArbitrator() {
	srv := cluster.NewServer("s1", power.TypeHighEnd()) // 4 cores, 1.0–3.0 GHz
	dc, err := cluster.NewDataCenter([]*cluster.Server{srv})
	if err != nil {
		panic(err)
	}
	// Two tier VMs demand 2 + 1.5 GHz: the arbitrator grants both in full
	// and throttles to the lowest P-state covering 3.5 GHz.
	for id, demand := range map[string]float64{"web": 2.0, "db": 1.5} {
		if err := dc.Place(&cluster.VM{ID: id, Demand: demand, MemoryGB: 1}, srv); err != nil {
			panic(err)
		}
	}
	arb := &core.Arbitrator{Server: srv}
	grants, f := arb.Arbitrate()
	fmt.Printf("frequency %.1f GHz, %d grants in full\n", f, len(grants))
	// Output: frequency 1.0 GHz, 2 grants in full
}

func ExampleSLAMetric_Measure() {
	window := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	fmt.Printf("p90=%.2fs mean=%.2fs max=%.2fs\n",
		core.P90.Measure(window), core.Mean.Measure(window), core.Max.Measure(window))
	// Output: p90=1.82s mean=1.10s max=2.00s
}
