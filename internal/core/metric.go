package core

import (
	"fmt"

	"vdcpower/internal/stats"
	"vdcpower/internal/units"
)

// SLAMetric selects which statistic of the per-period response time
// window the controller regulates. The paper controls the 90-percentile
// "as an example SLA metric, but our management solution can be extended
// to control other SLAs such as average or maximum response times"
// (Section III).
type SLAMetric int

// Supported SLA metrics. The zero value is the paper's 90-percentile.
const (
	P90 SLAMetric = iota
	P95
	P99
	Median
	Mean
	Max
)

// String names the metric.
func (m SLAMetric) String() string {
	switch m {
	case P90:
		return "p90"
	case P95:
		return "p95"
	case P99:
		return "p99"
	case Median:
		return "median"
	case Mean:
		return "mean"
	case Max:
		return "max"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// Valid reports whether the metric is one of the supported values.
func (m SLAMetric) Valid() bool { return m >= P90 && m <= Max }

// Measure computes the metric over a window of response times. The
// window must be non-empty.
func (m SLAMetric) Measure(window []units.Second) units.Second {
	switch m {
	case P95:
		return stats.Percentile(window, 95)
	case P99:
		return stats.Percentile(window, 99)
	case Median:
		return stats.Percentile(window, 50)
	case Mean:
		return stats.Mean(window)
	case Max:
		mx := window[0]
		for _, x := range window[1:] {
			if x > mx {
				mx = x
			}
		}
		return mx
	default:
		return stats.Percentile(window, 90)
	}
}
