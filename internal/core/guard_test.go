package core

import (
	"math"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
	"vdcpower/internal/mat"
	"vdcpower/internal/power"
)

// TestNaNMeasurementDoesNotPoisonController is the regression test for the
// measurement guard: before it, a single NaN percentile entered the ARX
// history and every subsequent MPC solve returned NaN allocations.
func TestNaNMeasurementDoesNotPoisonController(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2.0)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	app.tick()
	if _, err := ctl.Step(); err != nil {
		t.Fatal(err)
	}
	// Poison one window: every sample NaN, so the percentile is NaN.
	app.tick()
	app.window = []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	res, err := ctl.Step()
	if err != nil {
		t.Fatalf("NaN window errored instead of degrading: %v", err)
	}
	if !res.Dropped || !res.Held || res.HeldStreak != 1 {
		t.Fatalf("NaN window not dropped+held: %+v", res)
	}
	if math.IsNaN(res.T90) {
		t.Fatal("NaN leaked into the held measurement")
	}
	// The loop keeps running with finite state afterwards.
	for k := 0; k < 5; k++ {
		app.tick()
		res, err = ctl.Step()
		if err != nil {
			t.Fatalf("step %d after NaN: %v", k, err)
		}
		if res.Held {
			t.Fatalf("step %d still held after valid windows", k)
		}
		for _, a := range res.Allocations {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				t.Fatalf("step %d produced non-finite allocation %v", k, a)
			}
		}
	}
}

func TestInfMeasurementDropped(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2.0)
	ctl, err := NewResponseTimeController(app, DefaultControllerConfig(testModel(), 1.0))
	if err != nil {
		t.Fatal(err)
	}
	app.tick()
	app.window = []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}
	res, err := ctl.Step()
	if err != nil || !res.Dropped {
		t.Fatalf("Inf window: res=%+v err=%v", res, err)
	}
}

func TestHoldWindowThenOpenLoopThenRecovery(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 2.0)
	cfg := DefaultControllerConfig(testModel(), 1.0)
	cfg.HoldWindow = 2
	cfg.SensorID = "App1"
	ctl, err := NewResponseTimeController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Settle a few closed-loop periods first.
	for k := 0; k < 3; k++ {
		app.tick()
		if _, err := ctl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Total sensor blackout: every read drops.
	inj := fault.New(fault.Profile{Seed: 1, Sensor: fault.SensorProfile{DropoutProb: 1}})
	ctl.SetFaults(inj)
	var last []float64
	for k := 0; k < 5; k++ {
		app.tick()
		res, err := ctl.Step()
		if err != nil {
			t.Fatalf("blackout step %d: %v", k, err)
		}
		if !res.Held || !res.Dropped || res.HeldStreak != k+1 {
			t.Fatalf("blackout step %d: %+v", k, res)
		}
		wantOpen := k+1 > cfg.HoldWindow
		if res.OpenLoop != wantOpen {
			t.Fatalf("step %d (streak %d): OpenLoop=%v, want %v", k, res.HeldStreak, res.OpenLoop, wantOpen)
		}
		if wantOpen && last != nil {
			// Open loop freezes the last-good allocation.
			for i := range res.Allocations {
				//lint:ignore floatcompare frozen allocation must be bit-identical
				if res.Allocations[i] != last[i] {
					t.Fatalf("open loop moved allocation %d: %v -> %v", i, last[i], res.Allocations[i])
				}
			}
		}
		last = res.Allocations
	}
	if inj.InjectedByKind()[fault.SensorDropout] != 5 {
		t.Fatalf("dropouts injected = %v", inj.InjectedByKind())
	}
	// Sensor returns: the streak resets and the loop closes again.
	ctl.SetFaults(nil)
	app.tick()
	res, err := ctl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Held || res.OpenLoop || res.HeldStreak != 0 {
		t.Fatalf("recovery step: %+v", res)
	}
}

func TestArbitratorDVFSDegradation(t *testing.T) {
	srv := cluster.NewServer("s1", power.TypeMid())
	dc, err := cluster.NewDataCenter([]*cluster.Server{srv})
	if err != nil {
		t.Fatal(err)
	}
	vm := &cluster.VM{ID: "v1", Demand: 0.5, MemoryGB: 1}
	if err := dc.Place(vm, srv); err != nil {
		t.Fatal(err)
	}
	a := &Arbitrator{Server: srv}
	// Healthy pass drops to the lowest covering P-state.
	if _, f := a.Arbitrate(); f != 0.8 {
		t.Fatalf("healthy freq = %v", f)
	}
	// Actuation fails while the current P-state no longer covers demand:
	// fail safe to maximum frequency, never run below demand.
	a.Faults = fault.New(fault.Profile{Seed: 1, DVFS: fault.DVFSProfile{FailProb: 1}})
	vm.Demand = 2.5
	if _, f := a.Arbitrate(); f != srv.Spec.MaxFreq {
		t.Fatalf("fail-safe freq = %v, want max %v", f, srv.Spec.MaxFreq)
	}
	// Actuation fails while the current P-state still covers demand: the
	// knob is stuck, keep it (only wastes power).
	vm.Demand = 0.5
	if _, f := a.Arbitrate(); f != srv.Spec.MaxFreq {
		t.Fatalf("stuck freq = %v, want held %v", f, srv.Spec.MaxFreq)
	}
	if a.Faults.InjectedByKind()[fault.DVFSFailure] != 2 {
		t.Fatalf("injections = %v", a.Faults.InjectedByKind())
	}
	// Degraded grants still cover the demand.
	grants, _ := a.Arbitrate()
	if len(grants) != 1 || grants[0].Granted < vm.Demand {
		t.Fatalf("grants = %+v", grants)
	}
}
