package core

import (
	"math"
	"testing"

	"vdcpower/internal/mat"
)

func TestDitherAppliesOrthogonalSquareWaves(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 1.0)
	cfg := DefaultAdaptiveConfig(DefaultControllerConfig(testModel(), 1.0))
	cfg.Dither = 0.1
	ac, err := NewAdaptiveController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Record applied allocations over 4 periods and verify the two tiers
	// toggle at different rates (orthogonal excitation).
	var applied [][]float64
	for k := 0; k < 4; k++ {
		app.tick()
		if _, err := ac.Step(); err != nil {
			t.Fatal(err)
		}
		applied = append(applied, app.Allocations())
	}
	// tier 0 toggles every period; tier 1 every 2 periods. Compare the
	// dither sign pattern via differences from the 2-period mean.
	sign := func(k, tier int) float64 {
		if (k>>uint(tier))&1 == 1 {
			return -1
		}
		return 1
	}
	// Verify the dither signs differ across the two tiers in at least
	// one period (orthogonality implies patterns are not identical).
	same := true
	for k := 1; k <= 4; k++ {
		if sign(k, 0) != sign(k, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("dither patterns identical: not orthogonal")
	}
	_ = applied
}

func TestDitherRespectsBounds(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{0.1, 0.1}, 1.0)
	base := DefaultControllerConfig(testModel(), 1.0)
	base.CMin = mat.Vec{0.1, 0.1}
	base.CMax = mat.Vec{0.15, 0.15}
	cfg := DefaultAdaptiveConfig(base)
	cfg.Dither = 1.0 // huge dither must still be clamped
	ac, err := NewAdaptiveController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		app.tick()
		if _, err := ac.Step(); err != nil {
			t.Fatal(err)
		}
		for i, a := range app.Allocations() {
			if a < base.CMin[i]-1e-12 || a > base.CMax[i]+1e-12 {
				t.Fatalf("step %d tier %d: dithered allocation %v out of bounds", k, i, a)
			}
		}
	}
}

func TestDitherDisabled(t *testing.T) {
	app := newFakeApp(testModel(), mat.Vec{1, 1}, 1.0)
	cfg := DefaultAdaptiveConfig(DefaultControllerConfig(testModel(), 1.0))
	cfg.Dither = 0
	ac, err := NewAdaptiveController(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.tick()
	res, err := ac.Step()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Allocations {
		if math.Abs(app.Allocations()[i]-res.Allocations[i]) > 1e-12 {
			t.Fatal("allocations perturbed with dither disabled")
		}
	}
}
