package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"vdcpower/internal/fault"
)

// healthDoc fetches and decodes /health.
func healthDoc(t *testing.T, s *Server) (Health, int) {
	t.Helper()
	rr := get(t, s.Handler(), "/health")
	var h Health
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatalf("decoding /health: %v (%s)", err, rr.Body.String())
	}
	return h, rr.Code
}

func TestHealthStartsOK(t *testing.T) {
	s := testServer(t)
	h, code := healthDoc(t, s)
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("fresh /health = %d %q, want 200 ok", code, h.Status)
	}
	if h.Steps != 0 || h.FaultsInjected != 0 {
		t.Fatalf("fresh health counts nonzero: %+v", h)
	}
}

// TestInjectedStepErrorsDegradeAndRecover drives the injected-fault path
// end to end, synchronously: with error_prob 1 until step 3, the first
// three steps fail typed, /health reports degraded with the injection
// count, and the loop recovers to 200 ok once injection stops.
func TestInjectedStepErrorsDegradeAndRecover(t *testing.T) {
	s := testServer(t)
	inj := fault.New(fault.Profile{
		Seed:  7,
		Serve: fault.ServeProfile{ErrorProb: 1, UntilStep: 3},
	})
	s.AttachFaults(inj)
	for k := 0; k < 3; k++ {
		err := s.Step()
		if !fault.IsInjected(err) {
			t.Fatalf("step %d: err = %v, want injected fault", k, err)
		}
		s.recordStep(err)
	}
	h, code := healthDoc(t, s)
	if code != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("faulted /health = %d %q, want 503 degraded", code, h.Status)
	}
	if h.ConsecutiveFailures != 3 || h.FaultsInjected != 3 || h.Steps != 3 {
		t.Fatalf("health counters %+v, want 3 failures / 3 injected / 3 steps", h)
	}
	if !strings.Contains(h.LastError, "injected") {
		t.Fatalf("health.LastError = %q does not identify the injection", h.LastError)
	}
	// Injection stops at step 3: the next real step succeeds and clears
	// the degraded state.
	if err := s.Step(); err != nil {
		t.Fatalf("post-injection step failed: %v", err)
	}
	s.recordStep(nil)
	h, code = healthDoc(t, s)
	if code != http.StatusOK || h.Status != "ok" || h.ConsecutiveFailures != 0 {
		t.Fatalf("recovered /health = %d %+v, want 200 ok", code, h)
	}
	if h.LastError != "" {
		t.Fatalf("recovered health still carries %q", h.LastError)
	}
}

// TestCircuitBreakerLifecycle drives the breaker state machine directly:
// threshold failures open it, cooldown ticks absorb steps, the half-open
// probe closes it on success or re-arms the cooldown on failure.
func TestCircuitBreakerLifecycle(t *testing.T) {
	s := testServer(t)
	s.breakerThreshold = 2
	s.breakerCooldown = 3
	boom := errors.New("boom")
	logs := captureLog(t)

	s.recordStep(boom)
	if s.breakerOpen {
		t.Fatal("breaker opened below threshold")
	}
	s.recordStep(boom)
	if !s.breakerOpen {
		t.Fatal("breaker did not open at the threshold")
	}
	h, code := healthDoc(t, s)
	if code != http.StatusServiceUnavailable || !h.BreakerOpen {
		t.Fatalf("open-breaker /health = %d %+v", code, h)
	}
	// Cooldown: two absorbed ticks, then the half-open probe runs.
	if s.allowStep() {
		t.Fatal("tick 1 of cooldown ran a step")
	}
	if s.allowStep() {
		t.Fatal("tick 2 of cooldown ran a step")
	}
	if !s.allowStep() {
		t.Fatal("half-open probe was absorbed")
	}
	// Probe fails: cooldown re-arms.
	s.recordStep(boom)
	if !s.breakerOpen || s.cooldownLeft != 3 {
		t.Fatalf("failed probe left breaker=%v cooldown=%d", s.breakerOpen, s.cooldownLeft)
	}
	if s.allowStep() {
		t.Fatal("re-armed cooldown ran a step")
	}
	if s.allowStep() {
		t.Fatal("re-armed cooldown tick 2 ran a step")
	}
	if !s.allowStep() {
		t.Fatal("second probe was absorbed")
	}
	// Probe succeeds: breaker closes, error clears.
	s.recordStep(nil)
	if s.breakerOpen || s.LastErr() != nil {
		t.Fatalf("successful probe left breaker=%v err=%v", s.breakerOpen, s.LastErr())
	}
	_, code = healthDoc(t, s)
	if code != http.StatusOK {
		t.Fatalf("closed-breaker /health = %d, want 200", code)
	}
	var opened, reopened, closed bool
	for _, m := range logs() {
		switch {
		case strings.Contains(m, "breaker opened"):
			opened = true
		case strings.Contains(m, "re-opening"):
			reopened = true
		case strings.Contains(m, "breaker closed"):
			closed = true
		}
	}
	if !opened || !reopened || !closed {
		t.Fatalf("breaker transitions not all logged: opened=%v reopened=%v closed=%v\n%v",
			opened, reopened, closed, logs())
	}
}

// TestMetricsCountDegradedSteps checks the degraded-steps counter family
// reaches the exposition endpoint.
func TestMetricsCountDegradedSteps(t *testing.T) {
	s := testServer(t)
	s.recordStep(errors.New("boom"))
	rr := get(t, s.Handler(), "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "vdcpower_degraded_steps_total 1") {
		t.Fatalf("degraded counter missing from exposition:\n%s", rr.Body.String())
	}
}
