package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// captureLog redirects the package logger to a buffer for one test.
func captureLog(t *testing.T) func() []string {
	t.Helper()
	var mu sync.Mutex
	var msgs []string
	old := logf
	logf = func(format string, args ...any) {
		mu.Lock()
		msgs = append(msgs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	t.Cleanup(func() { logf = old })
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), msgs...)
	}
}

// brokenWriter is a ResponseWriter whose body writes always fail, like a
// client that hung up mid-response.
type brokenWriter struct{ header http.Header }

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }
func (w *brokenWriter) WriteHeader(int)           {}

func TestStartRecordsStepError(t *testing.T) {
	s := testServer(t)
	logs := captureLog(t)
	if s.LastErr() != nil {
		t.Fatalf("fresh server has LastErr %v", s.LastErr())
	}
	boom := errors.New("boom")
	s.step = func() error { return boom }
	s.Start(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for s.LastErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background loop never recorded the step error")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(s.LastErr(), boom) {
		t.Fatalf("LastErr = %v, want %v", s.LastErr(), boom)
	}
	// The status document carries the halt reason.
	rr := get(t, s.Handler(), "/status")
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LastError != "boom" {
		t.Fatalf("status.LastError = %q, want boom", st.LastError)
	}
	s.Stop()
	found := false
	for _, m := range logs() {
		if strings.Contains(m, "background loop halted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("halt was not logged: %v", logs())
	}
	// Restarting clears the recorded error.
	s.step = func() error { return nil }
	s.Start(time.Millisecond)
	defer s.Stop()
	if s.LastErr() != nil {
		t.Fatalf("LastErr not cleared on restart: %v", s.LastErr())
	}
}

func TestHealthyStatusHasNoLastError(t *testing.T) {
	s := testServer(t)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	rr := get(t, s.Handler(), "/status")
	if strings.Contains(rr.Body.String(), "last_error") {
		t.Fatalf("healthy status leaks last_error: %s", rr.Body.String())
	}
}

func TestWriteJSONLogsEncodeFailure(t *testing.T) {
	logs := captureLog(t)
	writeJSON(&brokenWriter{}, map[string]int{"x": 1})
	msgs := logs()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "writing JSON response") {
		t.Fatalf("unexpected log output %v", msgs)
	}
}

func TestMetricsLogsWriteFailure(t *testing.T) {
	s := testServer(t)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	logs := captureLog(t)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	s.handleMetrics(&brokenWriter{}, req)
	msgs := logs()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "writing metrics response") {
		t.Fatalf("unexpected log output %v", msgs)
	}
}

func TestDashboardLogsWriteFailure(t *testing.T) {
	s := testServer(t)
	logs := captureLog(t)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	s.handleDashboard(&brokenWriter{}, req)
	msgs := logs()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "writing dashboard") {
		t.Fatalf("unexpected log output %v", msgs)
	}
}
