package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// captureLog redirects the package logger to a buffer for one test.
func captureLog(t *testing.T) func() []string {
	t.Helper()
	var mu sync.Mutex
	var msgs []string
	old := logf
	logf = func(format string, args ...any) {
		mu.Lock()
		msgs = append(msgs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	t.Cleanup(func() { logf = old })
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), msgs...)
	}
}

// brokenWriter is a ResponseWriter whose body writes always fail, like a
// client that hung up mid-response.
type brokenWriter struct{ header http.Header }

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }
func (w *brokenWriter) WriteHeader(int)           {}

func TestStartSurvivesStepErrors(t *testing.T) {
	s := testServer(t)
	logs := captureLog(t)
	if s.LastErr() != nil {
		t.Fatalf("fresh server has LastErr %v", s.LastErr())
	}
	boom := errors.New("boom")
	var mu sync.Mutex
	fail := true
	calls := 0
	s.step = func() error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if fail {
			return boom
		}
		return nil
	}
	s.Start(time.Millisecond)
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for s.LastErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background loop never recorded the step error")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(s.LastErr(), boom) {
		t.Fatalf("LastErr = %v, want %v", s.LastErr(), boom)
	}
	// The loop is degraded, not dead: steps keep being attempted and the
	// status and health documents carry the error.
	rr := get(t, s.Handler(), "/status")
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LastError != "boom" {
		t.Fatalf("status.LastError = %q, want boom", st.LastError)
	}
	rr = get(t, s.Handler(), "/health")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /health = %d, want 503", rr.Code)
	}
	// Failures stop: the loop recovers, clears the error, and /health
	// flips back to 200 — even if the circuit breaker opened meanwhile
	// (its half-open probe succeeds).
	mu.Lock()
	fail = false
	mu.Unlock()
	for s.LastErr() != nil {
		if time.Now().After(deadline) {
			t.Fatalf("loop never recovered; logs: %v", logs())
		}
		time.Sleep(time.Millisecond)
	}
	rr = get(t, s.Handler(), "/health")
	if rr.Code != http.StatusOK {
		t.Fatalf("recovered /health = %d, want 200", rr.Code)
	}
	found := false
	for _, m := range logs() {
		if strings.Contains(m, "continuing degraded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degradation was not logged: %v", logs())
	}
	mu.Lock()
	if calls < 2 {
		t.Fatalf("loop attempted only %d steps after an error", calls)
	}
	mu.Unlock()
}

func TestHealthyStatusHasNoLastError(t *testing.T) {
	s := testServer(t)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	rr := get(t, s.Handler(), "/status")
	if strings.Contains(rr.Body.String(), "last_error") {
		t.Fatalf("healthy status leaks last_error: %s", rr.Body.String())
	}
}

func TestWriteJSONLogsEncodeFailure(t *testing.T) {
	logs := captureLog(t)
	writeJSON(&brokenWriter{}, map[string]int{"x": 1})
	msgs := logs()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "writing JSON response") {
		t.Fatalf("unexpected log output %v", msgs)
	}
}

func TestMetricsLogsWriteFailure(t *testing.T) {
	s := testServer(t)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	logs := captureLog(t)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	s.handleMetrics(&brokenWriter{}, req)
	msgs := logs()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "writing metrics response") {
		t.Fatalf("unexpected log output %v", msgs)
	}
}

func TestDashboardLogsWriteFailure(t *testing.T) {
	s := testServer(t)
	logs := captureLog(t)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	s.handleDashboard(&brokenWriter{}, req)
	msgs := logs()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "writing dashboard") {
		t.Fatalf("unexpected log output %v", msgs)
	}
}
