package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
)

// failingOptimizer fails every pass, simulating a consolidation
// backend outage underneath an otherwise healthy control loop.
type failingOptimizer struct{}

func (failingOptimizer) Consolidate(*cluster.DataCenter) (optimizer.Report, error) {
	return optimizer.Report{}, errors.New("consolidation backend down")
}
func (failingOptimizer) UsesDVFS() bool { return true }
func (failingOptimizer) Name() string   { return "failing" }

// TestOptimizerFailureSurfacesNotHalts drives a real testbed whose
// attached optimizer fails: the background loop must record the error in
// LastErr and /status, while the read-only endpoints keep serving.
func TestOptimizerFailureSurfacesNotHalts(t *testing.T) {
	s := testServer(t)
	logs := captureLog(t)
	// Fail on the very first control period so the test is quick.
	if err := s.tb.AttachOptimizer(failingOptimizer{}, 1, cluster.DefaultMigrationModel()); err != nil {
		t.Fatal(err)
	}
	s.Start(time.Millisecond)
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for s.LastErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("optimizer failure never reached LastErr")
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(s.LastErr().Error(), "consolidation backend down") {
		t.Fatalf("LastErr lost the cause: %v", s.LastErr())
	}
	// The dashboard stays up: /status carries the error, /metrics still
	// renders, neither endpoint 500s.
	rr := get(t, s.Handler(), "/status")
	if rr.Code != http.StatusOK {
		t.Fatalf("/status = %d after optimizer failure", rr.Code)
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.LastError, "consolidation backend down") {
		t.Fatalf("status.LastError = %q", st.LastError)
	}
	rr = get(t, s.Handler(), "/metrics")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "vdcpower_power_watts") {
		t.Fatalf("/metrics = %d after optimizer failure", rr.Code)
	}
	// The loop runs degraded — failures are logged, and /health reflects
	// the state — but it is not dead.
	degradedLog := false
	for _, m := range logs() {
		if strings.Contains(m, "continuing degraded") || strings.Contains(m, "circuit breaker opened") {
			degradedLog = true
		}
	}
	if !degradedLog {
		t.Fatalf("degradation was not logged: %v", logs())
	}
	rr = get(t, s.Handler(), "/health")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/health = %d under optimizer failure, want 503", rr.Code)
	}
}
