package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vdcpower/internal/testbed"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	cfg := testbed.DefaultConfig()
	cfg.NumApps = 2
	cfg.NumServers = 2
	cfg.IdentPeriods = 60
	cfg.IdentWarmupSec = 20
	tb, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(tb)
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func post(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestStatusEndpoint(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 5; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rr := get(t, s.Handler(), "/status")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Apps) != 2 {
		t.Fatalf("apps = %d", len(st.Apps))
	}
	if st.PowerW <= 0 || st.ActiveServers < 1 || st.SimTimeSec <= 0 {
		t.Fatalf("implausible status %+v", st)
	}
	for _, a := range st.Apps {
		if a.T90Sec <= 0 || len(a.Allocations) != 2 {
			t.Fatalf("implausible app %+v", a)
		}
	}
}

func TestHistoryEndpoint(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 10; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rr := get(t, s.Handler(), "/history?n=4")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var recs []testbed.PeriodRecord
	if err := json.Unmarshal(rr.Body.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if bad := get(t, s.Handler(), "/history?n=zero"); bad.Code != http.StatusBadRequest {
		t.Fatalf("bad n accepted: %d", bad.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	rr := get(t, s.Handler(), "/metrics")
	body := rr.Body.String()
	for _, want := range []string{
		"vdcpower_power_watts",
		"vdcpower_active_servers",
		`vdcpower_response_time_seconds{app="App1"}`,
		`vdcpower_setpoint_seconds{app="App2"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestSetpointEndpoint(t *testing.T) {
	s := testServer(t)
	if rr := post(t, s.Handler(), "/setpoint?app=1&seconds=1.3"); rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body)
	}
	if got := s.tb.Controllers[1].Setpoint(); got != 1.3 {
		t.Fatalf("setpoint = %v", got)
	}
	for _, bad := range []string{
		"/setpoint?app=9&seconds=1",
		"/setpoint?app=0&seconds=0",
		"/setpoint?app=x&seconds=1",
	} {
		if rr := post(t, s.Handler(), bad); rr.Code != http.StatusBadRequest {
			t.Fatalf("%s accepted: %d", bad, rr.Code)
		}
	}
	// GET must be rejected.
	if rr := get(t, s.Handler(), "/setpoint?app=0&seconds=1"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET setpoint: %d", rr.Code)
	}
}

func TestConcurrencyEndpoint(t *testing.T) {
	s := testServer(t)
	if rr := post(t, s.Handler(), "/concurrency?app=0&level=80"); rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if got := s.tb.Apps[0].Concurrency(); got != 80 {
		t.Fatalf("concurrency = %d", got)
	}
	if rr := post(t, s.Handler(), "/concurrency?app=0&level=-1"); rr.Code != http.StatusBadRequest {
		t.Fatalf("negative level accepted: %d", rr.Code)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	s := testServer(t)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	rr := get(t, s.Handler(), "/snapshot")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var snap struct {
		Servers []struct {
			ID  string `json:"id"`
			VMs []struct {
				ID string `json:"id"`
			} `json:"vms"`
		} `json:"servers"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Servers) != 2 {
		t.Fatalf("servers = %d", len(snap.Servers))
	}
	vms := 0
	for _, srv := range snap.Servers {
		vms += len(srv.VMs)
	}
	if vms != 4 { // 2 apps × 2 tiers
		t.Fatalf("VMs = %d", vms)
	}
	if rr := post(t, s.Handler(), "/snapshot"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /snapshot: %d", rr.Code)
	}
}

func TestMethodGuards(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	if rr := post(t, h, "/status"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /status: %d", rr.Code)
	}
	if rr := post(t, h, "/metrics"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: %d", rr.Code)
	}
	if rr := post(t, h, "/history"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /history: %d", rr.Code)
	}
}

func TestCordonEndpoint(t *testing.T) {
	s := testServer(t)
	id := s.tb.DC.Servers[0].ID
	if rr := post(t, s.Handler(), "/cordon?server="+id+"&state=on"); rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body)
	}
	if !s.tb.DC.Servers[0].Cordoned() {
		t.Fatal("cordon not applied")
	}
	if rr := post(t, s.Handler(), "/cordon?server="+id+"&state=off"); rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if s.tb.DC.Servers[0].Cordoned() {
		t.Fatal("uncordon not applied")
	}
	for _, bad := range []string{
		"/cordon?server=" + id + "&state=maybe",
		"/cordon?server=nope&state=on",
	} {
		if rr := post(t, s.Handler(), bad); rr.Code != http.StatusBadRequest {
			t.Fatalf("%s: %d", bad, rr.Code)
		}
	}
	if rr := get(t, s.Handler(), "/cordon?server="+id+"&state=on"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET cordon: %d", rr.Code)
	}
}

func TestDashboardServed(t *testing.T) {
	s := testServer(t)
	rr := get(t, s.Handler(), "/")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"vdcpower", "/status", "/history", "canvas"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	if rr := get(t, s.Handler(), "/nonsense"); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown path: %d", rr.Code)
	}
}

func TestBackgroundLoop(t *testing.T) {
	s := testServer(t)
	s.Start(time.Millisecond)
	s.Start(time.Millisecond) // idempotent
	deadline := time.After(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.history)
		s.mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background loop made no progress")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Stop()
	s.mu.Lock()
	n := len(s.history)
	s.mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	s.mu.Lock()
	after := len(s.history)
	s.mu.Unlock()
	if after != n {
		t.Fatal("loop kept running after Stop")
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	s := testServer(t)
	s.Start(time.Millisecond)
	defer s.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h := s.Handler()
		for i := 0; i < 50; i++ {
			get(t, h, "/status")
			get(t, h, "/metrics")
			post(t, h, "/setpoint?app=0&seconds=1.1")
		}
	}()
	<-done
}
