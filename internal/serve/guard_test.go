package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"vdcpower/internal/devs"
	"vdcpower/internal/fault"
	"vdcpower/internal/guard"
)

// Quarantine escalation, driven through the breaker state machine: two
// consecutive wedge-class openings engage it, the cooldown stretches, and
// one successful probe lifts it.
func TestQuarantineLifecycle(t *testing.T) {
	s := testServer(t)
	s.breakerThreshold = 2
	s.breakerCooldown = 3
	logs := captureLog(t)
	abort := &guard.StepAbort{Period: 7, Err: &devs.BudgetError{Reason: devs.ReasonMaxEvents}}

	s.recordStep(abort)
	s.recordStep(abort) // breaker opens: wedge-class opening #1
	if !s.breakerOpen || s.quar.Active() {
		t.Fatalf("after threshold: open=%v quarantined=%v", s.breakerOpen, s.quar.Active())
	}
	if s.cooldownLeft != 3 {
		t.Fatalf("first cooldown = %d, want the plain 3", s.cooldownLeft)
	}
	// Burn the cooldown, then the half-open probe wedges again: opening #2
	// engages quarantine and the next cooldown is stretched sixfold.
	s.allowStep()
	s.allowStep()
	if !s.allowStep() {
		t.Fatal("probe was absorbed")
	}
	s.recordStep(abort)
	if !s.quar.Active() {
		t.Fatal("second wedge-class opening did not quarantine")
	}
	if s.cooldownLeft != 3*guard.DefaultQuarantineFactor {
		t.Fatalf("quarantined cooldown = %d, want %d", s.cooldownLeft, 3*guard.DefaultQuarantineFactor)
	}
	h, code := healthDoc(t, s)
	if code != http.StatusServiceUnavailable || !h.Quarantined {
		t.Fatalf("quarantined /health = %d %+v", code, h)
	}
	if s.obs.Report().Guard.Quarantines != 1 {
		t.Fatalf("Quarantines = %d", s.obs.Report().Guard.Quarantines)
	}
	// A successful step lifts quarantine and restores the normal cadence.
	s.recordStep(nil)
	if s.quar.Active() || s.breakerOpen {
		t.Fatalf("recovery left quarantined=%v open=%v", s.quar.Active(), s.breakerOpen)
	}
	h, code = healthDoc(t, s)
	if code != http.StatusOK || h.Quarantined {
		t.Fatalf("recovered /health = %d %+v", code, h)
	}
	var entered, lifted bool
	for _, m := range logs() {
		if strings.Contains(m, "quarantined after repeated budget exhaustion") {
			entered = true
		}
		if strings.Contains(m, "quarantine lifted") {
			lifted = true
		}
	}
	if !entered || !lifted {
		t.Fatalf("quarantine transitions not logged: entered=%v lifted=%v\n%v", entered, lifted, logs())
	}
	// A non-wedge failure streak opens the breaker without quarantining.
	boom := &brokenStep{}
	s.recordStep(boom)
	s.recordStep(boom)
	if s.quar.Active() {
		t.Fatal("plain failures engaged quarantine")
	}
}

type brokenStep struct{}

func (*brokenStep) Error() string { return "plain step failure" }

// /health and /status must answer while a step holds the server mutex —
// the exact failure mode of the pre-guard wedge, where a spinning step
// blocked every HTTP handler forever.
func TestHealthAnswersWhileStepHoldsMutex(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	s.mu.Lock() // a step in flight
	defer s.mu.Unlock()
	done := make(chan int, 2)
	for _, path := range []string{"/health", "/status"} {
		path := path
		go func() { done <- get(t, h, path).Code }()
	}
	for i := 0; i < 2; i++ {
		select {
		case code := <-done:
			if code != http.StatusOK {
				t.Fatalf("lock-free endpoint returned %d", code)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("/health or /status blocked on the step mutex")
		}
	}
}

// Satellite 3: the end-to-end wedge shape of ROADMAP item 6 — loosened
// setpoints under a fast tick — now completes with the breaker opening on
// injected budget exhaustion and recovering once it stops. Runs under
// -race in CI.
func TestWedgeEndToEndBreakerOpensAndRecovers(t *testing.T) {
	s := testServer(t)
	s.breakerThreshold = 2
	s.breakerCooldown = 2
	captureLog(t)
	s.SetGuard(guard.StepBudget{MaxEvents: 500_000, MaxSameTimeEvents: 50_000, Wall: 5 * time.Second})
	// Exhaustion fires on every period until step 6: enough to open the
	// breaker twice (threshold 2) and engage quarantine, then recovery.
	s.AttachFaults(fault.New(fault.Profile{Seed: 9, Guard: fault.GuardProfile{ExhaustProb: 1, UntilStep: 6}}))
	h := s.Handler()

	// The item-6 storm shape: loosen every setpoint before starting.
	for i := range s.tb.Apps {
		rr := post(t, h, "/setpoint?app="+string(rune('0'+i))+"&seconds=1.2")
		if rr.Code != http.StatusOK {
			t.Fatalf("setpoint: %d %s", rr.Code, rr.Body.String())
		}
	}

	s.Start(2 * time.Millisecond)
	defer s.Stop()

	poll := func(ok func(int, Health) bool, desc string) Health {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			start := time.Now()
			rr := get(t, h, "/health")
			if lat := time.Since(start); lat > time.Second {
				t.Fatalf("/health took %v during %s", lat, desc)
			}
			var doc Health
			if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
				t.Fatal(err)
			}
			if ok(rr.Code, doc) {
				return doc
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("never reached %s", desc)
		return Health{}
	}

	degraded := poll(func(code int, doc Health) bool {
		return code == http.StatusServiceUnavailable && doc.BreakerOpen
	}, "degraded (breaker open on budget exhaustion)")
	if !strings.Contains(degraded.LastError, "budget") {
		t.Fatalf("degraded LastError = %q, want a budget abort", degraded.LastError)
	}
	recovered := poll(func(code int, doc Health) bool {
		return code == http.StatusOK
	}, "recovered (injection stopped at until_step)")
	if recovered.BreakerOpen || recovered.Quarantined {
		t.Fatalf("recovered health still degraded: %+v", recovered)
	}
	s.Stop()

	var doc ScorecardDoc
	if err := json.Unmarshal(get(t, h, "/scorecard").Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Guard.BudgetTrips == 0 {
		t.Fatalf("scorecard records no budget trips: %+v", doc.Guard)
	}
	if doc.Breaker.Transitions == 0 {
		t.Fatalf("scorecard records no breaker transitions: %+v", doc.Breaker)
	}
	if doc.Guard.Drains == 0 || doc.Guard.MaxDrainEvents == 0 {
		t.Fatalf("scorecard drain accounting empty: %+v", doc.Guard)
	}
}

// The real (uninjected) item-6 repro: loosened setpoints and many fast
// periods. Pre-fix this spun forever inside PSQueue.complete; post-fix
// the Zeno guard retires the sub-resolution work and every step stays
// within the default budget.
func TestSetpointStormCompletesBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of control periods")
	}
	s := testServer(t)
	h := s.Handler()
	for i := range s.tb.Apps {
		rr := post(t, h, "/setpoint?app="+string(rune('0'+i))+"&seconds=1.2")
		if rr.Code != http.StatusOK {
			t.Fatalf("setpoint: %d", rr.Code)
		}
	}
	for k := 0; k < 300; k++ {
		if err := s.Step(); err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
	}
	if g := s.obs.Report().Guard; g.BudgetTrips != 0 {
		t.Fatalf("healthy storm tripped %d budgets", g.BudgetTrips)
	}
}
