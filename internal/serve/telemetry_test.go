package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s output changed:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestMetricsTypeOncePerFamily checks exposition well-formedness: every
// family declares # TYPE exactly once, and the endpoint carries the
// registry's counters and histograms, not just the status gauges.
func TestMetricsTypeOncePerFamily(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	body := get(t, s.Handler(), "/metrics").Body.String()
	typeRe := regexp.MustCompile(`(?m)^# TYPE (\S+) (\S+)$`)
	kinds := map[string]string{}
	counters, histograms := 0, 0
	for _, m := range typeRe.FindAllStringSubmatch(body, -1) {
		name, kind := m[1], m[2]
		if _, dup := kinds[name]; dup {
			t.Errorf("family %s declares # TYPE twice", name)
		}
		kinds[name] = kind
		switch kind {
		case "counter":
			counters++
		case "histogram":
			histograms++
		}
	}
	if counters < 4 || histograms < 2 {
		t.Errorf("exposition has %d counter and %d histogram families, want >= 4 and >= 2:\n%s",
			counters, histograms, body)
	}
	// The t90 histogram renders the full cumulative shape.
	for _, want := range []string{
		`vdcpower_t90_seconds_bucket{app="App1",le="+Inf"}`,
		"vdcpower_t90_seconds_sum{",
		"vdcpower_t90_seconds_count{",
		"vdcpower_control_periods_total 6",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsSnapshotFailureIs500 checks a failing snapshot yields a
// clean HTTP 500 with no half-written exposition.
func TestMetricsSnapshotFailureIs500(t *testing.T) {
	s := testServer(t)
	s.snapshot = func() (Status, error) { return Status{}, errors.New("boom") }
	rr := get(t, s.Handler(), "/metrics")
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	if body := rr.Body.String(); strings.Contains(body, "# TYPE") || !strings.Contains(body, "boom") {
		t.Fatalf("want just the error message, got:\n%s", body)
	}
}

// TestMetricsGolden pins the full exposition format for a fabricated
// snapshot, including label escaping, against a golden file.
func TestMetricsGolden(t *testing.T) {
	s := testServer(t)
	s.snapshot = func() (Status, error) {
		return Status{PowerW: 512.5, ActiveServers: 3, Apps: []AppStatus{
			{Name: "we\"ird\\app", SetpointSec: 1, T90Sec: 0.925},
			{Name: "App2", SetpointSec: 1.2, T90Sec: 1.15},
		}}, nil
	}
	rr := get(t, s.Handler(), "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	checkGolden(t, "metrics.prom", rr.Body.Bytes())
}

// TestTraceEndpoint checks /trace serves a parseable Chrome trace with
// the control-loop spans of the steps taken so far.
func TestTraceEndpoint(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 2; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rr := get(t, s.Handler(), "/trace")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var evs []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range evs {
		names[e.Name] = true
	}
	for _, want := range []string{"core.step", "mpc.solve", "mpc.qp", "arbitrator.pass", "testbed.period"} {
		if !names[want] {
			t.Errorf("trace lacks %q spans", want)
		}
	}
	if rr := post(t, s.Handler(), "/trace"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /trace: %d", rr.Code)
	}
}

// TestTimingsEndpoint checks the dashboard's aggregation endpoint.
func TestTimingsEndpoint(t *testing.T) {
	s := testServer(t)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	rr := get(t, s.Handler(), "/timings")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var rows []SpanTiming
	if err := json.Unmarshal(rr.Body.Bytes(), &rows); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Count <= 0 || r.TotalSec < 0 || r.MeanSec > r.MaxSec+1e-12 {
			t.Errorf("implausible row %+v", r)
		}
		if r.Name == "mpc.solve" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no mpc.solve row in %+v", rows)
	}
	if rr := post(t, s.Handler(), "/timings"); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /timings: %d", rr.Code)
	}
}
