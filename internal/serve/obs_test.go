package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"vdcpower/internal/obs"
)

// breakerGauges reads the breaker state/cooldown gauges and transition
// counter straight off the registry.
func breakerGauges(s *Server) (state, cooldown, trans float64) {
	return s.gBreakState.Value(), s.gBreakCooldown.Value(), s.cBreakTrans.Value()
}

// TestBreakerTransitionSequence is the satellite regression test: drive
// the breaker through closed -> open -> (cooldown) -> half-open ->
// open -> half-open -> closed with direct recordStep/allowStep calls
// and assert the exported gauges, the transition counter, and the
// scorecard mirror every state along the way.
func TestBreakerTransitionSequence(t *testing.T) {
	prev := logf
	logf = func(string, ...any) {}
	defer func() { logf = prev }()
	s := testServer(t)
	boom := errors.New("boom")

	if st, cd, tr := breakerGauges(s); st != 0 || cd != 0 || tr != 0 {
		t.Fatalf("fresh gauges = %v/%v/%v, want zeros", st, cd, tr)
	}

	// Failures up to (threshold-1) keep the breaker closed.
	for i := 0; i < s.breakerThreshold-1; i++ {
		s.recordStep(boom)
		if st, _, tr := breakerGauges(s); st != float64(obs.BreakerClosed) || tr != 0 {
			t.Fatalf("after %d failures: state=%v transitions=%v, want closed/0", i+1, st, tr)
		}
	}
	// The threshold-th failure opens it: cooldown armed.
	s.recordStep(boom)
	if st, cd, tr := breakerGauges(s); st != float64(obs.BreakerOpen) || cd != float64(s.breakerCooldown) || tr != 1 {
		t.Fatalf("open gauges = %v/%v/%v, want %d/%d/1", st, cd, tr, obs.BreakerOpen, s.breakerCooldown)
	}

	// Cooldown ticks: absorbed steps decrement the gauge, no transition.
	for i := 0; i < s.breakerCooldown-1; i++ {
		if s.allowStep() {
			t.Fatalf("cooldown tick %d allowed a step", i)
		}
	}
	if st, cd, tr := breakerGauges(s); st != float64(obs.BreakerOpen) || cd != 1 || tr != 1 {
		t.Fatalf("cooldown gauges = %v/%v/%v, want open/1/1", st, cd, tr)
	}

	// Last tick half-opens: the step runs as a probe.
	if !s.allowStep() {
		t.Fatal("probe tick did not allow a step")
	}
	if st, cd, tr := breakerGauges(s); st != float64(obs.BreakerHalfOpen) || cd != 0 || tr != 2 {
		t.Fatalf("half-open gauges = %v/%v/%v, want half-open/0/2", st, cd, tr)
	}

	// Failed probe re-opens and re-arms the cooldown.
	s.recordStep(boom)
	if st, cd, tr := breakerGauges(s); st != float64(obs.BreakerOpen) || cd != float64(s.breakerCooldown) || tr != 3 {
		t.Fatalf("re-open gauges = %v/%v/%v, want open/%d/3", st, cd, tr, s.breakerCooldown)
	}

	// Second cooldown, then a successful probe closes the breaker.
	for i := 0; i < s.breakerCooldown-1; i++ {
		s.allowStep()
	}
	if !s.allowStep() {
		t.Fatal("second probe tick did not allow a step")
	}
	s.recordStep(nil)
	if st, cd, tr := breakerGauges(s); st != float64(obs.BreakerClosed) || cd != 0 || tr != 5 {
		t.Fatalf("closed gauges = %v/%v/%v, want closed/0/5", st, cd, tr)
	}

	// The scorecard mirrored every transition and audited each one.
	rep := s.obs.Report()
	if rep.Breaker.State != "closed" || rep.Breaker.Transitions != 5 {
		t.Fatalf("scorecard breaker = %+v, want closed with 5 transitions", rep.Breaker)
	}
	var actions []string
	for _, d := range s.obs.Audit().Records() {
		if strings.HasPrefix(d.Action, "breaker-") {
			actions = append(actions, d.Action)
		}
	}
	want := []string{"breaker-open", "breaker-half-open", "breaker-open", "breaker-half-open", "breaker-close"}
	if len(actions) != len(want) {
		t.Fatalf("audit actions = %v, want %v", actions, want)
	}
	for i := range want {
		if actions[i] != want[i] {
			t.Fatalf("audit actions = %v, want %v", actions, want)
		}
	}
}

// TestScorecardEndpoint: /scorecard serves the report document with
// per-app health and step-wall quantiles after some real steps.
func TestScorecardEndpoint(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rr := get(t, s.Handler(), "/scorecard")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var doc ScorecardDoc
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decoding /scorecard: %v (%s)", err, rr.Body.String())
	}
	if doc.Schema != obs.SchemaVersion {
		t.Fatalf("schema = %q, want %q", doc.Schema, obs.SchemaVersion)
	}
	if doc.Label != "serve" || doc.Steps != 3 {
		t.Fatalf("label/steps = %q/%d, want serve/3", doc.Label, doc.Steps)
	}
	if len(doc.Apps) != 2 {
		t.Fatalf("apps = %d, want 2", len(doc.Apps))
	}
	for _, a := range doc.Apps {
		if a.Samples == 0 {
			t.Fatalf("app %s has no response samples", a.Name)
		}
	}
	if doc.MPC.Solves == 0 {
		t.Fatal("no MPC solves scored")
	}
	if doc.StepWall.Count != 3 || doc.StepWall.P50Sec <= 0 || doc.StepWall.P99Sec < doc.StepWall.P50Sec {
		t.Fatalf("step-wall quantiles = %+v", doc.StepWall)
	}
	if doc.SLO.Verdict == obs.VerdictNoData {
		t.Fatal("SLO verdict still no-data after steps")
	}
}

// TestScorecardEndpointEmpty: before any step the endpoint still serves
// a valid document (step_wall zeros, not NaN — NaN would break JSON).
func TestScorecardEndpointEmpty(t *testing.T) {
	s := testServer(t)
	rr := get(t, s.Handler(), "/scorecard")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var doc ScorecardDoc
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decoding fresh /scorecard: %v", err)
	}
	if doc.StepWall.Count != 0 || doc.StepWall.P50Sec != 0 {
		t.Fatalf("fresh step-wall = %+v, want zeros", doc.StepWall)
	}
}

// TestMetricsCarrySLOAndBreakerSeries: the exposition includes the new
// burn-rate and breaker families after a scrape.
func TestMetricsCarrySLOAndBreakerSeries(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 2; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	body := get(t, s.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"vdcpower_breaker_state 0",
		"vdcpower_breaker_cooldown_ticks 0",
		"vdcpower_breaker_transitions_total 0",
		"vdcpower_slo_burn_fast",
		"vdcpower_slo_burn_slow",
		"vdcpower_slo_budget_remaining",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}
