package serve

import "net/http"

// handleDashboard serves the single-page live view: it polls /status,
// /history, and /scorecard and renders response-time sparklines per
// application, the cluster power, and a controller-health panel (SLO
// burn rates, breaker state, warm-start hit rate, step latency),
// entirely with inline JavaScript — no external assets, stdlib only.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := w.Write([]byte(dashboardHTML)); err != nil {
		logf("serve: writing dashboard: %v", err)
	}
}

const dashboardHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>vdcpower live testbed</title>
<style>
 body { font-family: monospace; background: #111; color: #ddd; margin: 2em; }
 h1 { font-size: 1.2em; } h2 { font-size: 1em; color: #9cf; margin: 0.3em 0; }
 .row { margin-bottom: 1em; }
 canvas { background: #181818; border: 1px solid #333; }
 .num { color: #fc6; }
 .hint { color: #777; font-size: 0.85em; }
 .hint a { color: #9cf; }
 table { border-collapse: collapse; font-size: 0.9em; }
 th, td { text-align: left; padding: 0.1em 1em 0.1em 0; color: #aaa; }
 th { color: #9cf; } td.num { text-align: right; color: #fc6; }
 .ok { color: #6f6; } .warn { color: #fc6; } .bad { color: #f66; }
</style>
</head>
<body>
<h1>vdcpower — live two-level power management</h1>
<div id="top" class="row"></div>
<div id="apps"></div>
<div class="row"><h2>cluster power (W)</h2><canvas id="power" width="640" height="80"></canvas></div>
<div class="row"><h2>controller health</h2><div id="health" class="hint">waiting for scorecard…</div>
<p class="hint"><a href="/scorecard">/scorecard</a> serves the full health document
(MPC residuals, optimizer tallies, SLO burn, decision audit).</p></div>
<div class="row"><h2>control-loop timings (sim time)</h2>
<table id="timings"><thead><tr>
<th>track</th><th>span</th><th>count</th><th>total</th><th>mean</th><th>max</th>
</tr></thead><tbody></tbody></table>
<p class="hint">aggregated from the span recorder — <a href="/trace">/trace</a> downloads
the full Chrome-trace JSON for chrome://tracing or Perfetto.</p></div>
<p class="hint">POST /concurrency?app=N&amp;level=80 to inject a surge;
POST /setpoint?app=N&amp;seconds=1.2 to retarget;
POST /cordon?server=S1&amp;state=on for maintenance.</p>
<script>
function spark(canvas, values, yref) {
  const ctx = canvas.getContext('2d');
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  if (!values.length) return;
  const max = Math.max(...values, yref || 0) * 1.1 || 1;
  ctx.strokeStyle = '#555';
  if (yref) {
    const yr = canvas.height - (yref / max) * canvas.height;
    ctx.beginPath(); ctx.moveTo(0, yr); ctx.lineTo(canvas.width, yr); ctx.stroke();
  }
  ctx.strokeStyle = '#6cf';
  ctx.beginPath();
  values.forEach((v, i) => {
    const x = i / (values.length - 1 || 1) * canvas.width;
    const y = canvas.height - (v / max) * canvas.height;
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  });
  ctx.stroke();
}
async function tick() {
  try {
    const st = await (await fetch('/status')).json();
    const hist = await (await fetch('/history?n=200')).json() || [];
    document.getElementById('top').innerHTML =
      'sim time <span class=num>' + st.sim_time_sec.toFixed(0) + 's</span> · power ' +
      '<span class=num>' + st.power_w.toFixed(0) + ' W</span> · active servers ' +
      '<span class=num>' + st.active_servers + '/' + st.total_servers + '</span>';
    const apps = document.getElementById('apps');
    st.apps.forEach((a, i) => {
      let div = document.getElementById('app' + i);
      if (!div) {
        div = document.createElement('div');
        div.id = 'app' + i; div.className = 'row';
        div.innerHTML = '<h2>' + a.name + ' <span class=hint id="appinfo' + i +
          '"></span></h2><canvas id="appc' + i + '" width="640" height="60"></canvas>';
        apps.appendChild(div);
      }
      document.getElementById('appinfo' + i).textContent =
        ' p90 ' + (a.t90_sec * 1000).toFixed(0) + 'ms / target ' +
        (a.setpoint_sec * 1000).toFixed(0) + 'ms · clients ' + a.concurrency +
        ' · alloc [' + a.allocations_ghz.map(x => x.toFixed(2)).join(', ') + '] GHz';
      spark(document.getElementById('appc' + i),
            hist.map(r => r.T90[i] * 1000), a.setpoint_sec * 1000);
    });
    spark(document.getElementById('power'), hist.map(r => r.PowerW));
    const sc = await (await fetch('/scorecard')).json();
    const vcls = {met: 'ok', 'at-risk': 'warn', violated: 'bad', 'no-data': 'hint'};
    const ms = s => (s * 1000).toFixed(1) + 'ms';
    document.getElementById('health').innerHTML =
      'SLO <span class="' + (vcls[sc.slo.verdict] || 'hint') + '">' + sc.slo.verdict +
      '</span> · burn fast/slow <span class=num>' + sc.slo.burn_fast.toFixed(2) + '</span>/' +
      '<span class=num>' + sc.slo.burn_slow.toFixed(2) + '</span> · budget left ' +
      '<span class=num>' + (sc.slo.budget_remaining * 100).toFixed(0) + '%</span><br>' +
      'breaker <span class="' + (sc.breaker.state === 'closed' ? 'ok' : 'bad') + '">' +
      sc.breaker.state + '</span> (' + sc.breaker.transitions + ' transitions) · ' +
      'warm-start hit <span class=num>' + (sc.mpc.warm_hit_rate * 100).toFixed(0) + '%</span> · ' +
      'held/open-loop <span class=num>' + sc.control.held + '/' + sc.control.open_loop +
      '</span> of ' + sc.control.periods + ' periods<br>' +
      'step wall p50/p90/p99 <span class=num>' + ms(sc.step_wall.p50_sec) + '</span>/' +
      '<span class=num>' + ms(sc.step_wall.p90_sec) + '</span>/' +
      '<span class=num>' + ms(sc.step_wall.p99_sec) + '</span> · migrations ' +
      '<span class=num>' + sc.optimizer.migrations + '</span> (vetoes ' +
      sc.optimizer.vetoes + ') · audit records <span class=num>' +
      sc.audit.records.length + '</span>';
    const tm = await (await fetch('/timings')).json() || [];
    const fmt = s => s >= 1 ? s.toFixed(2) + 's' : (s * 1000).toFixed(1) + 'ms';
    document.querySelector('#timings tbody').innerHTML = tm.map(t =>
      '<tr><td>' + t.track + '</td><td>' + t.name + '</td>' +
      '<td class=num>' + t.count + '</td><td class=num>' + fmt(t.total_sec) +
      '</td><td class=num>' + fmt(t.mean_sec) + '</td><td class=num>' +
      fmt(t.max_sec) + '</td></tr>').join('');
  } catch (e) { /* server restarting */ }
  setTimeout(tick, 1000);
}
tick();
</script>
</body>
</html>
`
