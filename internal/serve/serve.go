// Package serve exposes a running testbed over HTTP: JSON status and
// history, a Prometheus-style metrics endpoint, and control knobs for
// set points and workload levels. cmd/serve wires it to a real listener
// to make the closed-loop behavior of the paper observable interactively.
package serve

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vdcpower/internal/fault"
	"vdcpower/internal/guard"
	"vdcpower/internal/obs"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/testbed"
	"vdcpower/internal/trace"
)

// Circuit-breaker defaults: after defaultBreakerThreshold consecutive step
// failures the loop stops attempting real steps for
// defaultBreakerCooldown ticks, then half-opens with a single probe step.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 10
)

// logf reports non-fatal serving problems (failed response writes); a
// package variable so tests can capture it.
var logf = log.Printf

// Server owns a testbed and advances it one control period at a time.
// All access — stepping and HTTP handling — is serialized by a mutex:
// the simulator itself is deliberately single-threaded.
type Server struct {
	mu         sync.Mutex
	tb         *testbed.Testbed
	history    []testbed.PeriodRecord
	maxHistory int
	stop       chan struct{}
	wg         sync.WaitGroup
	lastErr    error        // most recent step error; nil after a successful step
	step       func() error // Step, indirected so tests can inject failures

	// Degraded-mode state: the background loop survives step errors. After
	// breakerThreshold consecutive failures the breaker opens and real
	// steps are skipped for breakerCooldown ticks, then one probe step
	// half-opens it — success closes the breaker, failure re-arms the
	// cooldown.
	faults           *fault.Injector
	replay           *trace.Feed
	replayProv       func(final bool) *obs.ReplayProvenance // provenance builder, set by AttachReplay
	replayDone       bool
	totalSteps       int // control steps attempted (fault-plane step index)
	consecFails      int
	breakerOpen      bool
	cooldownLeft     int
	breakerThreshold int
	breakerCooldown  int

	metrics  *telemetry.Registry
	tracer   *telemetry.Tracer
	stepWall *telemetry.Histogram
	stepErrs *telemetry.Counter
	degraded *telemetry.Counter
	snapshot func() (Status, error) // snapshotStatus, indirected so tests can inject failures

	// Controller-health scorecard: the testbed observes into it during
	// Step (under the same mutex), the breaker publishes its transitions,
	// and /scorecard serves the report.
	obs            *obs.Scorecard
	breakerState   int // obs.BreakerClosed/Open/HalfOpen mirror for gauges/audit
	gBreakState    *telemetry.Gauge
	gBreakCooldown *telemetry.Gauge
	cBreakTrans    *telemetry.Counter

	// Bounded execution: each step's event drain runs under guardBudget
	// with the watchdog as its wall-clock deadline, repeated budget
	// exhaustion escalates to quarantine (stretched breaker cooldowns),
	// and /health + /status answer from the lock-free live snapshot even
	// while a step holds s.mu.
	guardBudget guard.StepBudget
	watch       guard.Watchdog
	quar        guard.Quarantine
	live        atomic.Pointer[liveDoc]
}

// liveDoc is the read model behind /health and /status: rebuilt under
// s.mu at every state change, read without any lock. A wedged or merely
// slow step can therefore never block a readiness probe — the bug that
// motivated the guard layer (ROADMAP item 6).
type liveDoc struct {
	status Status
	health Health
}

// New wraps an already-constructed testbed and attaches telemetry to it:
// the testbed's controllers, arbitrators, and optimizer record spans on
// sim-time tracks, while the server itself measures the wall-clock cost
// of each control period at this edge.
func New(tb *testbed.Testbed) *Server {
	s := &Server{tb: tb, maxHistory: 2048}
	s.step = s.Step
	s.snapshot = func() (Status, error) { return s.snapshotStatus(), nil }
	s.metrics = telemetry.NewRegistry()
	s.tracer = tb.AttachTelemetry(0, s.metrics)
	s.stepWall = s.metrics.Histogram("vdcpower_step_wall_seconds",
		"wall-clock latency of one control period (measure, MPC solves, and actuation for every app)",
		telemetry.ExponentialBuckets(1e-4, 4, 10))
	s.stepErrs = s.metrics.Counter("vdcpower_step_errors_total",
		"control steps that failed (the background loop continues degraded)")
	s.degraded = s.metrics.Counter("vdcpower_degraded_steps_total",
		"control steps failed or skipped while the loop ran degraded")
	s.breakerThreshold = defaultBreakerThreshold
	s.breakerCooldown = defaultBreakerCooldown
	s.obs = obs.New(obs.Config{Label: "serve", SLOTargetSec: tb.Cfg.Setpoint})
	tb.AttachObs(s.obs)
	s.gBreakState = s.metrics.Gauge("vdcpower_breaker_state",
		"circuit breaker state (0 closed, 1 open, 2 half-open)")
	s.gBreakCooldown = s.metrics.Gauge("vdcpower_breaker_cooldown_ticks",
		"ticks remaining before the open breaker half-opens (0 while closed)")
	s.cBreakTrans = s.metrics.Counter("vdcpower_breaker_transitions_total",
		"circuit breaker state transitions")
	s.setGuard(guard.DefaultStepBudget())
	s.refreshLive()
	return s
}

// SetGuard bounds every control step: the event budgets lower onto the
// testbed's kernel drain, and a positive Wall arms the watchdog around
// each step. A zero budget removes every bound (not recommended — it
// restores the pre-guard behavior where a Zeno storm wedges the loop).
func (s *Server) SetGuard(b guard.StepBudget) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setGuard(b)
	s.refreshLive()
}

// setGuard applies the budget; callers hold s.mu (or are New).
func (s *Server) setGuard(b guard.StepBudget) {
	s.guardBudget = b
	var interrupt func() bool
	if b.Wall > 0 {
		interrupt = s.watch.Expired
	}
	s.tb.SetStepBudget(b.DevsBudget(interrupt))
}

// refreshLive rebuilds the lock-free /health + /status snapshot. Callers
// hold s.mu (or are New, before any concurrency exists).
func (s *Server) refreshLive() {
	h := Health{
		Status:              "ok",
		ConsecutiveFailures: s.consecFails,
		BreakerOpen:         s.breakerOpen,
		Quarantined:         s.quar.Active(),
		Steps:               s.totalSteps,
		FaultsInjected:      s.faults.Injected(),
	}
	if s.lastErr != nil {
		h.LastError = s.lastErr.Error()
	}
	if s.lastErr != nil || s.breakerOpen {
		h.Status = "degraded"
	}
	s.live.Store(&liveDoc{status: s.snapshotStatus(), health: h})
}

// publishBreaker mirrors the breaker's state into the metrics gauges and
// the scorecard (which counts transitions for the report), records an
// audit decision on every transition, and bumps the transition counter.
// Callers hold s.mu.
func (s *Server) publishBreaker(state int) {
	s.gBreakState.Set(float64(state))
	s.gBreakCooldown.Set(float64(s.cooldownLeft))
	s.obs.RecordBreaker(state, s.cooldownLeft)
	if state == s.breakerState {
		return
	}
	action := map[int]string{
		obs.BreakerClosed:   "breaker-close",
		obs.BreakerOpen:     "breaker-open",
		obs.BreakerHalfOpen: "breaker-half-open",
	}[state]
	reason := map[int]string{
		obs.BreakerClosed:   "probe step succeeded",
		obs.BreakerOpen:     "consecutive step failures reached the threshold",
		obs.BreakerHalfOpen: "cooldown expired: probing with one real step",
	}[state]
	if s.breakerState == obs.BreakerHalfOpen && state == obs.BreakerOpen {
		reason = "probe step failed: cooldown re-armed"
	}
	s.obs.Audit().Record(obs.Decision{
		Step: s.totalSteps, TimeSec: s.tb.Sim.Now(),
		Component: "serve", Action: action, Reason: reason,
		Value: float64(s.consecFails), Span: "serve.step",
	})
	s.cBreakTrans.Inc()
	s.breakerState = state
}

// AttachFaults wires the deterministic fault plane into the server and its
// testbed: each control step first consults the injector's serve plane (an
// injected step error exercises degraded mode end to end), and the testbed
// threads the injector through controllers, arbitrators, and consolidator.
func (s *Server) AttachFaults(inj *fault.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = inj
	s.tb.AttachFaults(inj)
	inj.AttachMetrics(s.metrics)
	s.refreshLive()
}

// AttachReplay drives the applications' client concurrency from a
// replayed trace: each control period pulls one grid step of levels
// from the feed and actuates SetConcurrency before the testbed runs, so
// the loop controls against real (optionally distorted) workload
// instead of the synthetic client mix. prov, when non-nil, builds the
// replay-provenance document the scorecard carries; it runs once at
// attach and once when the feed is exhausted (final=true, with the
// stream's final counters), keeping the step path allocation-free. A
// feed level of -1 holds the app's current setting; an exhausted feed
// holds the last applied levels.
func (s *Server) AttachReplay(feed *trace.Feed, prov func(final bool) *obs.ReplayProvenance) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replay = feed
	s.replayProv = prov
	s.replayDone = false
	if prov != nil {
		s.obs.SetProvenance(prov(false))
	}
	s.refreshLive()
}

// applyReplay actuates one grid step of replayed concurrency levels.
// Called under s.mu from Step.
func (s *Server) applyReplay() {
	if s.replay == nil || s.replayDone {
		return
	}
	levels, ok := s.replay.Step()
	if !ok {
		s.replayDone = true
		if s.replayProv != nil {
			s.obs.SetProvenance(s.replayProv(true))
		}
		if err := s.replay.Err(); err != nil {
			s.obs.Audit().Record(obs.Decision{
				Step: s.totalSteps, TimeSec: s.tb.Sim.Now(),
				Component: "serve", Action: "replay-failed", Reason: err.Error(),
				Span: "serve.replay",
			})
		}
		return
	}
	for i, lvl := range levels {
		if i >= len(s.tb.Apps) || lvl < 0 {
			continue
		}
		s.tb.Apps[i].SetConcurrency(lvl)
	}
}

// Step advances the control loop by one period. The fault plane is
// consulted first: an injected step error fails the period before the
// testbed runs, exactly like a wedged collector or actuator would. The
// period's drain runs under the guard budget with the watchdog armed, so
// a runaway model surfaces as a bounded *guard.StepAbort instead of a
// hang; the periods completed before an abort still land in the history.
func (s *Server) Step() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.refreshLive()
	k := s.totalSteps
	s.totalSteps++
	if err := s.faults.StepError(k); err != nil {
		return err
	}
	s.applyReplay()
	if s.guardBudget.Wall > 0 {
		s.watch.Arm(s.guardBudget.Wall)
		defer s.watch.Disarm()
	}
	start := telemetry.WallClock()
	recs, err := s.tb.Run(s.tb.Cfg.Period, nil)
	s.history = append(s.history, recs...)
	if len(s.history) > s.maxHistory {
		s.history = s.history[len(s.history)-s.maxHistory:]
	}
	if err != nil {
		return err
	}
	s.stepWall.Observe(telemetry.WallClock() - start)
	return nil
}

// Start advances the loop continuously in the background, one control
// period every interval of wall-clock time. Call Stop to halt. A failing
// step no longer kills the loop: the error is retained (LastErr, /status,
// /health report it) and the loop keeps ticking degraded. After
// breakerThreshold consecutive failures the circuit breaker opens — steps
// are skipped for breakerCooldown ticks to let a wedged dependency
// recover — then a single probe step half-opens it; success closes the
// breaker and clears the error, failure re-arms the cooldown.
func (s *Server) Start(interval time.Duration) {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.lastErr = nil
	s.consecFails = 0
	s.breakerOpen = false
	s.quar.RecordRecovery()
	s.refreshLive()
	stop := s.stop
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !s.allowStep() {
					s.degraded.Inc()
					continue
				}
				s.recordStep(s.step())
			}
		}
	}()
}

// allowStep decides whether this tick runs a real step or is absorbed by
// an open circuit breaker. The last cooldown tick half-opens the breaker:
// the step runs as a probe. While quarantined the cooldown was armed
// longer (see recordStep), so probes are correspondingly rarer.
func (s *Server) allowStep() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.refreshLive()
	if !s.breakerOpen {
		return true
	}
	if s.cooldownLeft > 1 {
		s.cooldownLeft--
		s.publishBreaker(obs.BreakerOpen) // refresh the cooldown gauge
		return false
	}
	s.cooldownLeft = 0
	s.publishBreaker(obs.BreakerHalfOpen)
	return true // half-open probe
}

// recordStep folds one step outcome into the degraded-mode state. Budget
// exhaustion (a *guard.StepAbort) is a wedge-class failure: when it opens
// or re-opens the breaker repeatedly, the quarantine engages and every
// subsequent cooldown is stretched — a runaway model burns a full budget
// per probe, so probing it at the normal cadence is itself a cost. Any
// successful step (the half-open probe included) lifts the quarantine.
func (s *Server) recordStep(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.refreshLive()
	if err == nil {
		s.lastErr = nil
		s.consecFails = 0
		if s.breakerOpen {
			s.breakerOpen = false
			logf("serve: circuit breaker closed after successful probe")
		}
		if s.quar.Active() {
			s.obs.Audit().Record(obs.Decision{
				Step: s.totalSteps, TimeSec: s.tb.Sim.Now(),
				Component: "serve", Action: "quarantine-exit",
				Reason: "successful step while quarantined", Span: "serve.step",
			})
			logf("serve: quarantine lifted after successful step")
		}
		s.quar.RecordRecovery()
		s.publishBreaker(obs.BreakerClosed)
		return
	}
	s.lastErr = err
	s.consecFails++
	s.stepErrs.Inc()
	s.degraded.Inc()
	opened := false
	switch {
	case s.breakerOpen:
		opened = true
		logf("serve: circuit breaker probe failed, re-opening: %v", err)
	case s.consecFails >= s.breakerThreshold:
		s.breakerOpen = true
		opened = true
		logf("serve: circuit breaker opened after %d consecutive step failures: %v", s.consecFails, err)
	default:
		logf("serve: control step failed, continuing degraded: %v", err)
	}
	if !opened {
		return
	}
	if guard.IsStepAbort(err) && s.quar.RecordWedge() {
		s.obs.RecordQuarantine()
		s.obs.Audit().Record(obs.Decision{
			Step: s.totalSteps, TimeSec: s.tb.Sim.Now(),
			Component: "serve", Action: "quarantine-enter",
			Reason: "repeated step-budget exhaustion",
			Value:  float64(s.quar.Entries()), Span: "serve.step",
		})
		logf("serve: quarantined after repeated budget exhaustion (cooldown stretched to %d ticks)",
			s.quar.Cooldown(s.breakerCooldown))
	}
	s.cooldownLeft = s.quar.Cooldown(s.breakerCooldown)
	s.publishBreaker(obs.BreakerOpen)
}

// LastErr returns the most recent step error while the loop is degraded,
// or nil while it is healthy (the error clears on the next good step).
func (s *Server) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Stop halts the background loop and waits for it to exit.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// AppStatus is the per-application slice of the status document.
type AppStatus struct {
	Name        string    `json:"name"`
	SetpointSec float64   `json:"setpoint_sec"`
	T90Sec      float64   `json:"t90_sec"`
	Allocations []float64 `json:"allocations_ghz"`
	Concurrency int       `json:"concurrency"`
}

// Status is the live state document served at /status. LastError is the
// most recent step error while the loop runs degraded, empty while it is
// healthy.
type Status struct {
	SimTimeSec    float64     `json:"sim_time_sec"`
	PowerW        float64     `json:"power_w"`
	ActiveServers int         `json:"active_servers"`
	TotalServers  int         `json:"total_servers"`
	Apps          []AppStatus `json:"apps"`
	LastError     string      `json:"last_error,omitempty"`
}

// snapshotStatus builds the status document under the lock.
func (s *Server) snapshotStatus() Status {
	st := Status{
		SimTimeSec:    s.tb.Sim.Now(),
		PowerW:        s.tb.DC.TotalPower(),
		ActiveServers: s.tb.DC.NumActive(),
		TotalServers:  len(s.tb.DC.Servers),
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	var latest *testbed.PeriodRecord
	if len(s.history) > 0 {
		latest = &s.history[len(s.history)-1]
	}
	for i, app := range s.tb.Apps {
		as := AppStatus{
			Name:        app.Name,
			SetpointSec: s.tb.Controllers[i].Setpoint(),
			Allocations: s.tb.Controllers[i].Demands(),
			Concurrency: app.Concurrency(),
		}
		if latest != nil {
			as.T90Sec = latest.T90[i]
		}
		st.Apps = append(st.Apps, as)
	}
	return st
}

// Handler returns the HTTP API:
//
//	GET  /health                        readiness: 200 ok / 503 degraded
//	GET  /status                        live state as JSON
//	GET  /history?n=100                 recent per-period records as JSON
//	GET  /metrics                       Prometheus text exposition
//	GET  /trace                         span recording as Chrome-trace JSON
//	GET  /timings                       per-(track, span) timing aggregates
//	GET  /scorecard                     controller-health scorecard as JSON
//	POST /setpoint?app=0&seconds=1.2    retarget one controller
//	POST /concurrency?app=0&level=80    change one app's workload
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Each route gets its own request counter, resolved once here; the
	// route pattern is the label, so cardinality is fixed.
	handle := func(path string, h http.HandlerFunc) {
		c := s.metrics.Counter("vdcpower_http_requests_total", "HTTP requests served, by route",
			telemetry.Label{Key: "path", Value: path})
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			c.Inc()
			h(w, r)
		})
	}
	handle("/health", s.handleHealth)
	handle("/status", s.handleStatus)
	handle("/history", s.handleHistory)
	handle("/metrics", s.handleMetrics)
	handle("/trace", s.handleTrace)
	handle("/timings", s.handleTimings)
	handle("/scorecard", s.handleScorecard)
	handle("/setpoint", s.handleSetpoint)
	handle("/concurrency", s.handleConcurrency)
	handle("/snapshot", s.handleSnapshot)
	handle("/cordon", s.handleCordon)
	handle("/", s.handleDashboard)
	return mux
}

func (s *Server) handleCordon(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("server")
	state := r.URL.Query().Get("state")
	if state != "on" && state != "off" {
		http.Error(w, "state must be on or off", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, srv := range s.tb.DC.Servers {
		if srv.ID == id {
			if state == "on" {
				srv.Cordon()
			} else {
				srv.Uncordon()
			}
			writeJSON(w, map[string]any{"server": id, "cordoned": srv.Cordoned()})
			return
		}
	}
	http.Error(w, "unknown server", http.StatusBadRequest)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	snap := s.tb.DC.Snapshot()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := snap.WriteJSON(w); err != nil {
		logf("serve: writing snapshot response: %v", err)
	}
}

// Health is the readiness document served at /health: "ok" with HTTP 200
// while the loop is stepping cleanly, "degraded" with HTTP 503 while the
// last step failed or the circuit breaker is open. Probes (Kubernetes-style
// readiness checks, the chaos-smoke CI job) only need the status code.
type Health struct {
	Status              string `json:"status"` // ok | degraded
	ConsecutiveFailures int    `json:"consecutive_failures"`
	BreakerOpen         bool   `json:"breaker_open"`
	Quarantined         bool   `json:"quarantined,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	Steps               int    `json:"steps"`
	FaultsInjected      int    `json:"faults_injected"`
}

// handleHealth answers from the lock-free live snapshot: a readiness
// probe must never wait on s.mu, which a step in flight holds for up to
// its whole budget.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	h := s.live.Load().health
	if h.Status == "degraded" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		if err := json.NewEncoder(w).Encode(h); err != nil {
			logf("serve: writing health response: %v", err)
		}
		return
	}
	writeJSON(w, h)
}

// handleStatus answers from the same lock-free snapshot as /health.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.live.Load().status)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	s.mu.Lock()
	recs := s.history
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	out := make([]testbed.PeriodRecord, len(recs))
	copy(out, recs)
	s.mu.Unlock()
	writeJSON(w, out)
}

// handleMetrics renders the whole registry in Prometheus text format.
// The exposition is built into a buffer first: a snapshot or render
// failure becomes a clean HTTP 500 instead of a half-written body.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	st, err := s.snapshot()
	if err == nil {
		s.publishStatus(st)
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, "snapshot failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	var buf bytes.Buffer
	if err := s.metrics.WriteProm(&buf); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if _, err := w.Write(buf.Bytes()); err != nil {
		logf("serve: writing metrics response: %v", err)
	}
}

// publishStatus refreshes the registry's live gauges from a status
// snapshot. The testbed publishes its own counters and histograms while
// running; these four families mirror the instantaneous state so the
// endpoint is meaningful even before the first background step.
func (s *Server) publishStatus(st Status) {
	s.metrics.Gauge("vdcpower_power_watts", "total data-center power draw").Set(st.PowerW)
	s.metrics.Gauge("vdcpower_active_servers", "servers currently powered on").Set(float64(st.ActiveServers))
	for _, a := range st.Apps {
		l := telemetry.Label{Key: "app", Value: a.Name}
		s.metrics.Gauge("vdcpower_response_time_seconds", "per-application 90-percentile response time", l).Set(a.T90Sec)
		s.metrics.Gauge("vdcpower_setpoint_seconds", "per-application response time target", l).Set(a.SetpointSec)
	}
	if slo := s.obs.SLO(); slo != nil {
		s.metrics.Gauge("vdcpower_slo_burn_fast",
			"fast-window SLO burn rate (windowed bad fraction / error budget)").Set(slo.BurnFast())
		s.metrics.Gauge("vdcpower_slo_burn_slow",
			"slow-window SLO burn rate (windowed bad fraction / error budget)").Set(slo.BurnSlow())
		s.metrics.Gauge("vdcpower_slo_budget_remaining",
			"fraction of the cumulative SLO error budget still unspent").Set(slo.BudgetRemaining())
	}
}

// StepWallQuantiles summarizes the wall-clock step-latency histogram
// with interpolated quantiles (telemetry.Histogram.Quantile documents
// the error bounds); zeros while no step has run yet.
type StepWallQuantiles struct {
	Count  uint64  `json:"count"`
	P50Sec float64 `json:"p50_sec"`
	P90Sec float64 `json:"p90_sec"`
	P99Sec float64 `json:"p99_sec"`
}

// ScorecardDoc is the /scorecard document: the controller-health report
// with the server-edge step latency appended.
type ScorecardDoc struct {
	obs.Report
	StepWall StepWallQuantiles `json:"step_wall"`
}

func (s *Server) handleScorecard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	doc := ScorecardDoc{Report: s.obs.Report()}
	if n := s.stepWall.Count(); n > 0 {
		doc.StepWall = StepWallQuantiles{
			Count:  n,
			P50Sec: s.stepWall.Quantile(0.5),
			P90Sec: s.stepWall.Quantile(0.9),
			P99Sec: s.stepWall.Quantile(0.99),
		}
	}
	s.mu.Unlock()
	writeJSON(w, doc)
}

// handleTrace serves the recorded span tracks as a Chrome trace JSON
// document, loadable in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	recs := s.tracer.Snapshot()
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, recs); err != nil {
		http.Error(w, "rendering trace: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		logf("serve: writing trace response: %v", err)
	}
}

// SpanTiming aggregates every recorded span with one name on one track;
// the dashboard's timing panel renders these rows.
type SpanTiming struct {
	Track    string  `json:"track"`
	Name     string  `json:"name"`
	Count    int     `json:"count"`
	TotalSec float64 `json:"total_sec"`
	MeanSec  float64 `json:"mean_sec"`
	MaxSec   float64 `json:"max_sec"`
}

func (s *Server) handleTimings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	recs := s.tracer.Snapshot()
	s.mu.Unlock()
	writeJSON(w, aggregateTimings(recs))
}

// aggregateTimings folds raw span records into per-(track, name) rows,
// sorted for stable output. Instant events count occurrences with zero
// accumulated time.
func aggregateTimings(recs []telemetry.SpanRecord) []SpanTiming {
	idx := map[[2]string]int{}
	out := []SpanTiming{}
	for _, rec := range recs {
		k := [2]string{rec.Track, rec.Name}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, SpanTiming{Track: rec.Track, Name: rec.Name})
		}
		out[i].Count++
		out[i].TotalSec += rec.Dur
		if rec.Dur > out[i].MaxSec {
			out[i].MaxSec = rec.Dur
		}
	}
	for i := range out {
		out[i].MeanSec = out[i].TotalSec / float64(out[i].Count)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (s *Server) handleSetpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	idx, ok := s.appIndex(w, r)
	if !ok {
		return
	}
	sec, err := strconv.ParseFloat(r.URL.Query().Get("seconds"), 64)
	if err != nil || sec <= 0 {
		http.Error(w, "bad seconds", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.tb.Controllers[idx].SetSetpoint(sec)
	s.refreshLive()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"app": idx, "setpoint_sec": sec})
}

func (s *Server) handleConcurrency(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	idx, ok := s.appIndex(w, r)
	if !ok {
		return
	}
	level, err := strconv.Atoi(r.URL.Query().Get("level"))
	if err != nil || level < 0 {
		http.Error(w, "bad level", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.tb.Apps[idx].SetConcurrency(level)
	s.refreshLive()
	s.mu.Unlock()
	writeJSON(w, map[string]any{"app": idx, "concurrency": level})
}

// appIndex parses and validates the app query parameter.
func (s *Server) appIndex(w http.ResponseWriter, r *http.Request) (int, bool) {
	idx, err := strconv.Atoi(r.URL.Query().Get("app"))
	if err != nil || idx < 0 || idx >= len(s.tb.Apps) {
		http.Error(w, "bad app index", http.StatusBadRequest)
		return 0, false
	}
	return idx, true
}

// writeJSON encodes v onto the response. Encode errors (a client that
// hung up mid-response, a marshalling bug) cannot be reported to the
// client anymore — the header is already out — so they are logged
// instead of dropped.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("serve: writing JSON response: %v", err)
	}
}
