// Package serve exposes a running testbed over HTTP: JSON status and
// history, a Prometheus-style metrics endpoint, and control knobs for
// set points and workload levels. cmd/serve wires it to a real listener
// to make the closed-loop behavior of the paper observable interactively.
package serve

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vdcpower/internal/testbed"
)

// logf reports non-fatal serving problems (failed response writes); a
// package variable so tests can capture it.
var logf = log.Printf

// Server owns a testbed and advances it one control period at a time.
// All access — stepping and HTTP handling — is serialized by a mutex:
// the simulator itself is deliberately single-threaded.
type Server struct {
	mu         sync.Mutex
	tb         *testbed.Testbed
	history    []testbed.PeriodRecord
	maxHistory int
	stop       chan struct{}
	wg         sync.WaitGroup
	lastErr    error        // first error that halted the background loop
	step       func() error // Step, indirected so tests can inject failures
}

// New wraps an already-constructed testbed.
func New(tb *testbed.Testbed) *Server {
	s := &Server{tb: tb, maxHistory: 2048}
	s.step = s.Step
	return s
}

// Step advances the control loop by one period.
func (s *Server) Step() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, err := s.tb.Run(s.tb.Cfg.Period, nil)
	if err != nil {
		return err
	}
	s.history = append(s.history, recs...)
	if len(s.history) > s.maxHistory {
		s.history = s.history[len(s.history)-s.maxHistory:]
	}
	return nil
}

// Start advances the loop continuously in the background, one control
// period every interval of wall-clock time. Call Stop to halt. If a step
// fails the loop halts and the error is retained: LastErr returns it and
// the /status document carries it, so a wedged loop is visible instead
// of silently freezing the dashboard.
func (s *Server) Start(interval time.Duration) {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.lastErr = nil
	stop := s.stop
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := s.step(); err != nil {
					s.mu.Lock()
					s.lastErr = err
					s.mu.Unlock()
					logf("serve: background loop halted: %v", err)
					return
				}
			}
		}
	}()
}

// LastErr returns the error that halted the background loop, or nil
// while it is healthy (or was never started).
func (s *Server) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Stop halts the background loop and waits for it to exit.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// AppStatus is the per-application slice of the status document.
type AppStatus struct {
	Name        string    `json:"name"`
	SetpointSec float64   `json:"setpoint_sec"`
	T90Sec      float64   `json:"t90_sec"`
	Allocations []float64 `json:"allocations_ghz"`
	Concurrency int       `json:"concurrency"`
}

// Status is the live state document served at /status. LastError is the
// error that halted the background loop, empty while it is healthy.
type Status struct {
	SimTimeSec    float64     `json:"sim_time_sec"`
	PowerW        float64     `json:"power_w"`
	ActiveServers int         `json:"active_servers"`
	TotalServers  int         `json:"total_servers"`
	Apps          []AppStatus `json:"apps"`
	LastError     string      `json:"last_error,omitempty"`
}

// snapshotStatus builds the status document under the lock.
func (s *Server) snapshotStatus() Status {
	st := Status{
		SimTimeSec:    s.tb.Sim.Now(),
		PowerW:        s.tb.DC.TotalPower(),
		ActiveServers: s.tb.DC.NumActive(),
		TotalServers:  len(s.tb.DC.Servers),
	}
	if s.lastErr != nil {
		st.LastError = s.lastErr.Error()
	}
	var latest *testbed.PeriodRecord
	if len(s.history) > 0 {
		latest = &s.history[len(s.history)-1]
	}
	for i, app := range s.tb.Apps {
		as := AppStatus{
			Name:        app.Name,
			SetpointSec: s.tb.Controllers[i].Setpoint(),
			Allocations: s.tb.Controllers[i].Demands(),
			Concurrency: app.Concurrency(),
		}
		if latest != nil {
			as.T90Sec = latest.T90[i]
		}
		st.Apps = append(st.Apps, as)
	}
	return st
}

// Handler returns the HTTP API:
//
//	GET  /status                        live state as JSON
//	GET  /history?n=100                 recent per-period records as JSON
//	GET  /metrics                       Prometheus text exposition
//	POST /setpoint?app=0&seconds=1.2    retarget one controller
//	POST /concurrency?app=0&level=80    change one app's workload
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/setpoint", s.handleSetpoint)
	mux.HandleFunc("/concurrency", s.handleConcurrency)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/cordon", s.handleCordon)
	mux.HandleFunc("/", s.handleDashboard)
	return mux
}

func (s *Server) handleCordon(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("server")
	state := r.URL.Query().Get("state")
	if state != "on" && state != "off" {
		http.Error(w, "state must be on or off", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, srv := range s.tb.DC.Servers {
		if srv.ID == id {
			if state == "on" {
				srv.Cordon()
			} else {
				srv.Uncordon()
			}
			writeJSON(w, map[string]any{"server": id, "cordoned": srv.Cordoned()})
			return
		}
	}
	http.Error(w, "unknown server", http.StatusBadRequest)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	snap := s.tb.DC.Snapshot()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := snap.WriteJSON(w); err != nil {
		logf("serve: writing snapshot response: %v", err)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	st := s.snapshotStatus()
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	s.mu.Lock()
	recs := s.history
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	out := make([]testbed.PeriodRecord, len(recs))
	copy(out, recs)
	s.mu.Unlock()
	writeJSON(w, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	st := s.snapshotStatus()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	ew := &errWriter{w: w}
	ew.printf("# HELP vdcpower_power_watts Total cluster power draw.\n")
	ew.printf("# TYPE vdcpower_power_watts gauge\n")
	ew.printf("vdcpower_power_watts %g\n", st.PowerW)
	ew.printf("# HELP vdcpower_active_servers Servers in the active state.\n")
	ew.printf("# TYPE vdcpower_active_servers gauge\n")
	ew.printf("vdcpower_active_servers %d\n", st.ActiveServers)
	ew.printf("# HELP vdcpower_response_time_seconds Per-application 90-percentile response time.\n")
	ew.printf("# TYPE vdcpower_response_time_seconds gauge\n")
	for _, a := range st.Apps {
		ew.printf("vdcpower_response_time_seconds{app=%q} %g\n", a.Name, a.T90Sec)
	}
	ew.printf("# HELP vdcpower_setpoint_seconds Per-application response time target.\n")
	ew.printf("# TYPE vdcpower_setpoint_seconds gauge\n")
	for _, a := range st.Apps {
		ew.printf("vdcpower_setpoint_seconds{app=%q} %g\n", a.Name, a.SetpointSec)
	}
	if ew.err != nil {
		logf("serve: writing metrics response: %v", ew.err)
	}
}

// errWriter accumulates the first write error across a sequence of
// formatted writes, so the exposition code stays linear while no error
// is silently dropped.
type errWriter struct {
	w   http.ResponseWriter
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

func (s *Server) handleSetpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	idx, ok := s.appIndex(w, r)
	if !ok {
		return
	}
	sec, err := strconv.ParseFloat(r.URL.Query().Get("seconds"), 64)
	if err != nil || sec <= 0 {
		http.Error(w, "bad seconds", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.tb.Controllers[idx].SetSetpoint(sec)
	s.mu.Unlock()
	writeJSON(w, map[string]any{"app": idx, "setpoint_sec": sec})
}

func (s *Server) handleConcurrency(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	idx, ok := s.appIndex(w, r)
	if !ok {
		return
	}
	level, err := strconv.Atoi(r.URL.Query().Get("level"))
	if err != nil || level < 0 {
		http.Error(w, "bad level", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.tb.Apps[idx].SetConcurrency(level)
	s.mu.Unlock()
	writeJSON(w, map[string]any{"app": idx, "concurrency": level})
}

// appIndex parses and validates the app query parameter.
func (s *Server) appIndex(w http.ResponseWriter, r *http.Request) (int, bool) {
	idx, err := strconv.Atoi(r.URL.Query().Get("app"))
	if err != nil || idx < 0 || idx >= len(s.tb.Apps) {
		http.Error(w, "bad app index", http.StatusBadRequest)
		return 0, false
	}
	return idx, true
}

// writeJSON encodes v onto the response. Encode errors (a client that
// hung up mid-response, a marshalling bug) cannot be reported to the
// client anymore — the header is already out — so they are logged
// instead of dropped.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("serve: writing JSON response: %v", err)
	}
}
