// Package power is the deliberately unit-broken half of the vdclint
// self-test fixture: Draw adds a wattage to a utilization — the exact
// watt-vs-utilization mix-up the units analyzer exists to catch. If a
// sweep of this module reports no "units" finding, the analyzer has
// regressed; see TestSelfTestFixture in internal/lint.
package power

import "unitbroken/internal/units"

// Server is a minimal power model with tagged fields.
type Server struct {
	PStatic units.Watt
	PPeak   units.Watt
	MaxFreq units.Hertz
}

// Draw is WRONG on purpose: util is a Fraction and must be scaled by
// the dynamic range (PPeak - PStatic) before it may join a Watt sum.
func (s *Server) Draw(util units.Fraction) units.Watt {
	return s.PStatic + util
}
