// Package units mirrors the real module's dimensional vocabulary so the
// self-test fixture type-checks standalone. The aliases only need the
// names the broken code uses — the analyzer keys on the alias name and
// the "internal/units" package-path suffix, not on this module's path.
package units

type (
	// Watt is instantaneous electrical power.
	Watt = float64

	// Hertz is CPU frequency or capacity.
	Hertz = float64

	// Fraction is a dimensionless ratio such as utilization.
	Fraction = float64

	// Second is a duration.
	Second = float64
)
