module unitbroken

go 1.23
