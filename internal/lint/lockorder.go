package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockorderAnalyzer detects inconsistent mutex acquisition order within
// a package. Locks are identified at the class level — the declared
// field (s.mu for every instance of S) or package-level variable — and
// an edge A→B is recorded whenever B is acquired while A is held,
// including through calls into other functions of the same package
// (per-function acquisition summaries are propagated to a fixpoint). A
// cycle in the acquisition graph is a latent deadlock: two goroutines
// taking the locks from different ends block each other forever.
func LockorderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc: "mutex acquisition order must form a DAG per package: an A→B edge is " +
			"recorded when B.Lock() happens under A (directly or via an " +
			"intra-package call); any cycle is reported as a latent deadlock",
		Run: runLockorder,
	}
}

// lockEdge is one observed ordering: to acquired while from was held.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
}

// lockSummary is a function's externally visible locking behaviour:
// the set of locks it may acquire (directly or transitively).
type lockSummary struct {
	acquires map[*types.Var]token.Pos
}

func runLockorder(p *Pass) {
	info := p.Pkg.Info
	decls := funcDecls(p.Pkg)

	// Order functions deterministically by source position.
	fns := make([]*types.Func, 0, len(decls))
	for fn := range decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return decls[fns[i]].Pos() < decls[fns[j]].Pos() })

	// Fixpoint over per-function summaries: which locks can a call into
	// fn acquire?
	summaries := map[*types.Func]*lockSummary{}
	for _, fn := range fns {
		summaries[fn] = &lockSummary{acquires: map[*types.Var]token.Pos{}}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			sum := summaries[fn]
			walkLocking(info, decls[fn].Body, summaries, func(v *types.Var, pos token.Pos, _ []*types.Var) {
				if _, ok := sum.acquires[v]; !ok {
					sum.acquires[v] = pos
					changed = true
				}
			})
		}
	}

	// Edge collection: replay each function tracking the held set.
	edgeSet := map[[2]*types.Var]token.Pos{}
	var edges []lockEdge
	for _, fn := range fns {
		walkLocking(info, decls[fn].Body, summaries, func(v *types.Var, pos token.Pos, held []*types.Var) {
			for _, h := range held {
				if h == v {
					continue // reentrant self-acquisition is a different bug
				}
				key := [2]*types.Var{h, v}
				if _, ok := edgeSet[key]; !ok {
					edgeSet[key] = pos
					edges = append(edges, lockEdge{from: h, to: v, pos: pos})
				}
			}
		})
	}

	reportLockCycles(p, edges)
}

// mutexMethods are the sync.Mutex/RWMutex methods that acquire.
var mutexMethods = map[string]bool{"Lock": true, "RLock": true}

// mutexReleases are the methods that release.
var mutexReleases = map[string]bool{"Unlock": true, "RUnlock": true}

// lockVarOf resolves x.mu.Lock()'s receiver to the class-level lock
// variable: the field or package-level var of type sync.Mutex/RWMutex.
func lockVarOf(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	if !mutexMethods[fn.Name()] && !mutexReleases[fn.Name()] {
		return nil, ""
	}
	v, _ := refObject(info, sel.X).(*types.Var)
	if v == nil {
		return nil, ""
	}
	return v, fn.Name()
}

// walkLocking walks a body in source order maintaining the held-lock
// set, invoking acquire for every direct Lock/RLock and for every lock
// a called same-package function may take (per its summary). defer
// Unlock keeps the lock held to the end of the body, which is the
// common pattern and the conservative reading for ordering.
func walkLocking(info *types.Info, body *ast.BlockStmt, summaries map[*types.Func]*lockSummary, acquire func(v *types.Var, pos token.Pos, held []*types.Var)) {
	var held []*types.Var
	release := func(v *types.Var) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == v {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at function end; for ordering
			// purposes the lock stays held for the rest of the body, so
			// nothing changes here. A deferred Lock is nonsense; skip.
			return false
		case *ast.FuncLit:
			// A function literal's body runs at an unknown time with an
			// unknown held set; its own acquisitions are analyzed when
			// the literal is invoked via a named function, or ignored.
			return false
		case *ast.CallExpr:
			if v, method := lockVarOf(info, n); v != nil {
				if mutexMethods[method] {
					acquire(v, n.Pos(), held)
					held = append(held, v)
				} else {
					release(v)
				}
				return true
			}
			if fn := calleeFunc(info, n); fn != nil {
				if sum, ok := summaries[fn]; ok {
					// Deterministic order over the callee's lock set.
					vs := make([]*types.Var, 0, len(sum.acquires))
					for v := range sum.acquires {
						vs = append(vs, v)
					}
					sort.Slice(vs, func(i, j int) bool { return vs[i].Pos() < vs[j].Pos() })
					for _, v := range vs {
						acquire(v, n.Pos(), held)
					}
				}
			}
		}
		return true
	})
}

// reportLockCycles finds a cycle in the edge graph and reports it once,
// naming both conflicting acquisition sites.
func reportLockCycles(p *Pass, edges []lockEdge) {
	if len(edges) == 0 {
		return
	}
	adj := map[*types.Var][]lockEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i].to.Pos() < adj[v][j].to.Pos() })
	}
	nodes := make([]*types.Var, 0, len(adj))
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[*types.Var]int{}
	var stack []lockEdge
	var cycle []lockEdge
	var dfs func(v *types.Var) bool
	dfs = func(v *types.Var) bool {
		color[v] = grey
		for _, e := range adj[v] {
			switch color[e.to] {
			case grey:
				// Found a back edge: slice the stack from e.to onward.
				cycle = append([]lockEdge(nil), stack...)
				cycle = append(cycle, e)
				for i, se := range cycle {
					if se.from == e.to {
						cycle = cycle[i:]
						break
					}
				}
				return true
			case white:
				stack = append(stack, e)
				if dfs(e.to) {
					return true
				}
				stack = stack[:len(stack)-1]
			}
		}
		color[v] = black
		return false
	}
	for _, v := range nodes {
		if color[v] == white && dfs(v) {
			break
		}
	}
	if len(cycle) == 0 {
		return
	}
	var msg strings.Builder
	msg.WriteString("lock-order cycle (latent deadlock): ")
	for i, e := range cycle {
		if i > 0 {
			msg.WriteString(", then ")
		}
		pos := p.Fset.Position(e.pos)
		fmt.Fprintf(&msg, "%s acquired under %s at %s:%d", e.to.Name(), e.from.Name(), p.rel(pos.Filename), pos.Line)
	}
	msg.WriteString("; pick one global order and acquire in it everywhere")
	p.Reportf(cycle[0].pos, "%s", msg.String())
}
