package lint

import (
	"strings"
	"testing"
)

// TestSelfTestFixture sweeps the deliberately unit-broken mini-module
// under testdata/unitbroken with the full analyzer registry and demands
// the planted watt-vs-utilization finding. A clean sweep here means the
// units analyzer silently regressed — the one failure mode a
// "module must be clean" gate can never see on the real tree.
func TestSelfTestFixture(t *testing.T) {
	mod, err := LoadModule("testdata/unitbroken")
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	pkgs, err := mod.Load("./...")
	if err != nil {
		t.Fatalf("load fixture packages: %v", err)
	}
	findings := mod.Analyze(pkgs, Analyzers())
	var units []Finding
	for _, f := range findings {
		if f.Rule == "units" {
			units = append(units, f)
		}
	}
	if len(units) == 0 {
		t.Fatalf("unit-broken fixture produced no units finding; analyzer regressed\nall findings:\n%s", renderFindings(findings))
	}
	found := false
	for _, f := range units {
		if strings.Contains(f.Message, "watt + fraction") &&
			strings.HasSuffix(f.File, "internal/power/model.go") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no watt + fraction finding in internal/power/model.go:\n%s", renderFindings(units))
	}
}
