package lint

import (
	"go/ast"
	"go/types"
)

// MutexcopyAnalyzer flags copies of values that contain a sync lock
// (sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond —
// directly or through nested structs and arrays). A copied lock guards
// nothing: the copy starts unlocked regardless of the original, so the
// invariant the original protected silently stops holding. Checked
// copy sites: value receivers, by-value parameters and results,
// assignments, range values, and call arguments.
func MutexcopyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "mutexcopy",
		Doc: "never copy a value holding a sync.Mutex/RWMutex/WaitGroup/Once/Cond: " +
			"value receivers, by-value params/results, assignments, range values " +
			"and call arguments of lock-carrying types are flagged; pass a pointer",
		Run: runMutexcopy,
	}
}

// lockTypeNames are the sync types whose copy is always a bug.
var lockTypeNames = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Once":      true,
	"sync.Cond":      true,
}

// typeHasLock reports whether copying a value of type t copies a sync
// lock: t is one of the sync types, or a struct or array containing one
// (pointers, slices, maps, and channels are references — following them
// does not copy).
func typeHasLock(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && lockTypeNames[obj.Pkg().Path()+"."+obj.Name()] {
				return true
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

func runMutexcopy(p *Pass) {
	info := p.Pkg.Info
	// exprCopiesLock reports whether evaluating e produces a fresh copy
	// of a lock-carrying value. Taking an address, or referring to a
	// pointer, does not copy.
	exprCopiesLock := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch e.(type) {
		case *ast.UnaryExpr, *ast.CompositeLit, *ast.FuncLit:
			// &x never copies; a fresh composite literal is the value's
			// birthplace, not a copy of an existing lock.
			return false
		}
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		return typeHasLock(tv.Type)
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, f := range n.Recv.List {
						if tv, ok := info.Types[f.Type]; ok && typeHasLock(tv.Type) {
							p.Reportf(f.Type.Pos(), "value receiver copies a lock-carrying %s on every call; use a pointer receiver", types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)))
						}
					}
				}
				checkSignatureLocks(p, n.Type)
			case *ast.FuncLit:
				checkSignatureLocks(p, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if exprCopiesLock(rhs) {
						p.Reportf(rhs.Pos(), "assignment copies a lock-carrying value; share it through a pointer")
					}
				}
			case *ast.RangeStmt:
				// The := value ident is a definition (info.Defs), not a typed
				// expression, so resolve its object rather than its type-value.
				if n.Value != nil {
					if obj := refObject(info, ast.Unparen(n.Value)); obj != nil && typeHasLock(obj.Type()) {
						p.Reportf(n.Value.Pos(), "range value copies a lock-carrying element each iteration; range over indices or pointers")
					}
				}
			case *ast.CallExpr:
				if conversionType(info, n) != nil || builtinName(info, n) != "" {
					return true
				}
				for _, arg := range n.Args {
					if exprCopiesLock(arg) {
						p.Reportf(arg.Pos(), "call argument copies a lock-carrying value; pass a pointer")
					}
				}
			}
			return true
		})
	}
}

// checkSignatureLocks flags by-value lock-carrying parameters and
// results in a function signature.
func checkSignatureLocks(p *Pass, ft *ast.FuncType) {
	info := p.Pkg.Info
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := info.Types[f.Type]
			if !ok {
				continue
			}
			if typeHasLock(tv.Type) {
				p.Reportf(f.Type.Pos(), "by-value %s copies a lock-carrying %s; use a pointer", what, types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)))
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}
