package lint

import "testing"

func TestGoroutine(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "fire-and-forget literal",
			src: `package dcsim
func spawn() {
	go func() {
		_ = 1 + 1
	}()
}`,
			want: []string{"no join signal"},
		},
		{
			name: "waitgroup join",
			src: `package dcsim
import "sync"
func spawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}`,
			want: nil,
		},
		{
			name: "channel send join",
			src: `package dcsim
func spawn() <-chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return ch
}`,
			want: nil,
		},
		{
			name: "close join",
			src: `package dcsim
func spawn() <-chan int {
	ch := make(chan int)
	go func() {
		close(ch)
	}()
	return ch
}`,
			want: nil,
		},
		{
			name: "named function with join resolved in package",
			src: `package dcsim
import "sync"
var wg sync.WaitGroup
func worker() { defer wg.Done() }
func spawn() {
	wg.Add(1)
	go worker()
	wg.Wait()
}`,
			want: nil,
		},
		{
			name: "named function without join",
			src: `package dcsim
func worker() { _ = 1 }
func spawn() { go worker() }`,
			want: []string{"no join signal"},
		},
		{
			name: "function from another package cannot be verified",
			src: `package dcsim
import "fmt"
func spawn() { go fmt.Println("x") }`,
			want: []string{"defined outside this package"},
		},
		{
			name: "suppressed detached goroutine",
			src: `package dcsim
func spawn() {
	//lint:ignore goroutine demo goroutine detaches by design
	go func() { _ = 1 }()
}`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := analyzeFixture(t, "vdcpower/internal/dcsim", tt.src, GoroutineAnalyzer())
			wantFindings(t, got, "goroutine", tt.want...)
		})
	}
}
