package lint

import (
	"go/token"
	"path/filepath"
)

// wallClockEdges registers, per analyzed package, the single file
// permitted to read the wall clock directly. The benchmark sampler is
// the canonical case: internal/bench must be deterministic like the
// simulators (its statistics, schema and compare engine replay from
// recorded samples), but measuring wall time is the sampler's whole
// job — so exactly one file holds the clock reads, and both time-based
// analyzers enforce the boundary structurally rather than through
// per-line suppressions that rot as the file grows.
var wallClockEdges = map[string]string{
	"internal/bench": "sampler.go",
	"internal/trace": "pace.go",
}

// atWallClockEdge reports whether pos sits in the registered wall-clock
// edge file of the pass's package.
func atWallClockEdge(p *Pass, pos token.Pos) bool {
	for pkg, file := range wallClockEdges {
		if pathHasSuffix(p.Pkg.Path, []string{pkg}) &&
			filepath.Base(p.Fset.Position(pos).Filename) == file {
			return true
		}
	}
	return false
}
