package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unitsPackages are the module-relative packages whose code carries the
// dimensional annotations of internal/units and is therefore subject to
// unit checking. Packages outside this set may freely consume annotated
// APIs — their values simply enter as "unknown" and are never flagged.
var unitsPackages = []string{
	"internal/power",
	"internal/core",
	"internal/mpc",
	"internal/queueing",
	"internal/packing",
	"internal/units",
}

// unit is one abstract dimension tag. uUnknown means "no information";
// it unifies with everything and is never reported.
type unit uint8

const (
	uUnknown unit = iota
	uWatt
	uHertz
	uFraction
	uSecond
	uJoule
	uVM
	uGHzSec
)

var unitNames = [...]string{
	uUnknown:  "unknown",
	uWatt:     "watt",
	uHertz:    "hertz",
	uFraction: "fraction",
	uSecond:   "second",
	uJoule:    "joule",
	uVM:       "vm-count",
	uGHzSec:   "ghz-second",
}

func (u unit) String() string { return unitNames[u] }

// unitByAlias maps the alias names declared in internal/units to tags.
var unitByAlias = map[string]unit{
	"Watt":      uWatt,
	"Hertz":     uHertz,
	"Fraction":  uFraction,
	"Second":    uSecond,
	"Joule":     uJoule,
	"VMCount":   uVM,
	"GHzSecond": uGHzSec,
}

// UnitsAnalyzer is the dimensional-analysis pass: it seeds unit tags
// from the internal/units aliases appearing in declared types (struct
// fields, parameters, results, variables), propagates them through
// assignments, arithmetic, and call boundaries with a per-function
// abstract environment, and reports unit-incompatible additions,
// subtractions, comparisons, assignments, arguments, returns, and
// composite-literal fields.
func UnitsAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "units",
		Doc: "dimensional analysis over the internal/units aliases (watt, hertz, " +
			"fraction, second, joule, vm-count, ghz-second): +, -, comparisons, " +
			"assignments, arguments and returns must combine like with like; " +
			"watt*second=joule, hertz*second=ghz-second, x/x=fraction, and " +
			"fraction scales anything; convert explicitly (units.Watt(x)) at a " +
			"genuine dimensional boundary",
		Applies: func(pkgPath string) bool { return pathHasSuffix(pkgPath, unitsPackages) },
		Run:     runUnits,
	}
}

// unitOfType extracts the unit tag of a declared type: the internal/
// units alias itself, or the element/pointee unit for slices, arrays,
// and pointers (what indexing, ranging, and dereferencing yield).
func unitOfType(t types.Type) unit {
	for t != nil {
		switch tt := t.(type) {
		case *types.Alias:
			obj := tt.Obj()
			if obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), []string{"internal/units"}) {
				if u, ok := unitByAlias[obj.Name()]; ok {
					return u
				}
			}
			t = tt.Rhs()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Pointer:
			t = tt.Elem()
		default:
			return uUnknown
		}
	}
	return uUnknown
}

// mulUnit is the derived-unit table for multiplication.
func mulUnit(a, b unit) unit {
	if a == uFraction {
		return b
	}
	if b == uFraction {
		return a
	}
	switch {
	case (a == uWatt && b == uSecond) || (a == uSecond && b == uWatt):
		return uJoule
	case (a == uHertz && b == uSecond) || (a == uSecond && b == uHertz):
		return uGHzSec
	}
	return uUnknown
}

// divUnit is the derived-unit table for division.
func divUnit(a, b unit) unit {
	if b == uFraction {
		return a
	}
	if a == uUnknown || b == uUnknown {
		return uUnknown
	}
	if a == b {
		return uFraction
	}
	switch {
	case a == uJoule && b == uSecond:
		return uWatt
	case a == uJoule && b == uWatt:
		return uSecond
	case a == uGHzSec && b == uHertz:
		return uSecond
	case a == uGHzSec && b == uSecond:
		return uHertz
	}
	return uUnknown
}

// unitEnv is the per-function abstract environment: inferred units for
// locals. First inference wins; later conflicting assignments are
// reported at their site.
type unitEnv map[types.Object]unit

// unitScope bundles what expression inference needs. defined marks
// locals introduced by := — for those the inferred unit outranks the
// Go-inferred static type, because Go types a quotient of two
// units.Hertz operands as units.Hertz while the dimensional algebra
// says fraction.
type unitScope struct {
	info    *types.Info
	env     unitEnv
	defined map[types.Object]bool
}

// unitOfObj returns the unit of the object: the environment for
// :=-introduced locals, the declared type otherwise, each falling back
// to the other.
func (s *unitScope) unitOfObj(obj types.Object) unit {
	if obj == nil {
		return uUnknown
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
		if s.defined[obj] {
			if u, ok := s.env[obj]; ok {
				return u
			}
			return unitOfType(obj.Type())
		}
		if u := unitOfType(obj.Type()); u != uUnknown {
			return u
		}
		return s.env[obj]
	}
	return uUnknown
}

// unitOf infers the unit of an expression. It never reports; the report
// pass revisits the interesting nodes with this same inference.
func (s *unitScope) unitOf(e ast.Expr) unit {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return s.unitOf(e.X)
	case *ast.Ident:
		return s.unitOfObj(refObject(s.info, e))
	case *ast.SelectorExpr:
		return s.unitOfObj(refObject(s.info, e))
	case *ast.IndexExpr:
		return s.unitOf(e.X)
	case *ast.StarExpr:
		return s.unitOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD || e.Op == token.AND {
			return s.unitOf(e.X)
		}
	case *ast.CompositeLit:
		if tv, ok := s.info.Types[e]; ok {
			return unitOfType(tv.Type)
		}
	case *ast.SliceExpr:
		return s.unitOf(e.X)
	case *ast.CallExpr:
		if t := conversionType(s.info, e); t != nil {
			return unitOfType(t)
		}
		if builtinName(s.info, e) == "append" && len(e.Args) > 0 {
			return s.unitOf(e.Args[0])
		}
		if sig := signatureOf(s.info, e); sig != nil && sig.Results().Len() == 1 {
			return unitOfType(sig.Results().At(0).Type())
		}
	case *ast.BinaryExpr:
		lu, ru := s.unitOf(e.X), s.unitOf(e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			if lu != uUnknown {
				return lu
			}
			return ru
		case token.MUL:
			return mulUnit(lu, ru)
		case token.QUO:
			return divUnit(lu, ru)
		}
	}
	return uUnknown
}

// resultUnits returns the per-result units of a call's callee, or nil.
func (s *unitScope) resultUnits(call *ast.CallExpr) []unit {
	sig := signatureOf(s.info, call)
	if sig == nil {
		return nil
	}
	out := make([]unit, sig.Results().Len())
	for i := range out {
		out[i] = unitOfType(sig.Results().At(i).Type())
	}
	return out
}

func runUnits(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeUnitsFunc(p, fd)
		}
	}
}

// analyzeUnitsFunc runs the two-phase analysis on one function: grow
// the environment to a fixpoint, then report mismatches.
func analyzeUnitsFunc(p *Pass, fd *ast.FuncDecl) {
	s := &unitScope{info: p.Pkg.Info, env: unitEnv{}, defined: map[types.Object]bool{}}
	// Phase 1: fixpoint environment growth. First inference wins, so a
	// variable's unit is set by its first unit-bearing assignment and
	// conflicting later assignments become phase-2 findings.
	for iter := 0; iter < 4; iter++ {
		if !growUnitEnv(s, fd.Body) {
			break
		}
	}
	// Phase 2: single report pass.
	reportUnits(p, s, fd)
}

// growUnitEnv walks the body once, recording inferred units for
// declared-unitless locals. It reports whether anything changed.
func growUnitEnv(s *unitScope, body *ast.BlockStmt) bool {
	changed := false
	markDefined := func(target ast.Expr) {
		id, ok := ast.Unparen(target).(*ast.Ident)
		if !ok {
			return
		}
		if obj := s.info.Defs[id]; obj != nil && !s.defined[obj] {
			s.defined[obj] = true
			changed = true
		}
	}
	learn := func(target ast.Expr, u unit) {
		if u == uUnknown {
			return
		}
		obj := refObject(s.info, ast.Unparen(target))
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		if !s.defined[obj] && unitOfType(obj.Type()) != uUnknown {
			return // explicitly declared type already carries the unit
		}
		if _, ok := s.env[obj]; !ok {
			s.env[obj] = u
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					markDefined(lhs)
				}
			}
			switch st.Tok {
			case token.ASSIGN, token.DEFINE:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						learn(st.Lhs[i], s.unitOf(st.Rhs[i]))
					}
				} else if len(st.Rhs) == 1 {
					if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
						if rus := s.resultUnits(call); len(rus) == len(st.Lhs) {
							for i := range st.Lhs {
								learn(st.Lhs[i], rus[i])
							}
						}
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				learn(st.Lhs[0], s.unitOf(st.Rhs[0]))
			}
		case *ast.RangeStmt:
			if st.Tok == token.DEFINE {
				if st.Key != nil {
					markDefined(st.Key)
				}
				if st.Value != nil {
					markDefined(st.Value)
				}
			}
			if st.Value != nil {
				learn(st.Value, s.unitOf(st.X))
			}
		}
		return true
	})
	return changed
}

// reportUnits is phase 2: revisit every interesting node and report
// incompatible unit combinations.
func reportUnits(p *Pass, s *unitScope, fd *ast.FuncDecl) {
	mismatch := func(a, b unit) bool {
		return a != uUnknown && b != uUnknown && a != b
	}
	// Result units of the enclosing function, for return checking.
	// Function literals override these while walking their bodies; a
	// stack keyed by position handles nesting.
	type retCtx struct {
		node  ast.Node
		units []unit
	}
	sigUnits := func(sig *types.Signature) []unit {
		out := make([]unit, sig.Results().Len())
		for i := range out {
			out[i] = unitOfType(sig.Results().At(i).Type())
		}
		return out
	}
	var retStack []retCtx
	if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		retStack = append(retStack, retCtx{node: fd, units: sigUnits(fn.Type().(*types.Signature))})
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		// Pop function-literal return contexts we have walked past.
		for len(retStack) > 1 && n != nil && n.Pos() >= retStack[len(retStack)-1].node.End() {
			retStack = retStack[:len(retStack)-1]
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if tv, ok := p.Pkg.Info.Types[n]; ok {
				if sig, ok := tv.Type.(*types.Signature); ok {
					retStack = append(retStack, retCtx{node: n, units: sigUnits(sig)})
				}
			}
		case *ast.BinaryExpr:
			lu, ru := s.unitOf(n.X), s.unitOf(n.Y)
			switch n.Op {
			case token.ADD, token.SUB:
				if mismatch(lu, ru) {
					p.Reportf(n.OpPos, "unit mismatch: %s %s %s (dimensions are incompatible; convert explicitly at a genuine boundary)", lu, n.Op, ru)
				}
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				if mismatch(lu, ru) {
					p.Reportf(n.OpPos, "unit mismatch: comparing %s with %s", lu, ru)
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ASSIGN, token.DEFINE:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && p.Pkg.Info.Defs[id] != nil {
							continue // a := definition site cannot mismatch itself
						}
						lu, ru := s.unitOf(n.Lhs[i]), s.unitOf(n.Rhs[i])
						if mismatch(lu, ru) {
							p.Reportf(n.Lhs[i].Pos(), "unit mismatch: assigning %s to a %s location", ru, lu)
						}
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				lu, ru := s.unitOf(n.Lhs[0]), s.unitOf(n.Rhs[0])
				if mismatch(lu, ru) {
					p.Reportf(n.Lhs[0].Pos(), "unit mismatch: %s-accumulating a %s value", lu, ru)
				}
			}
		case *ast.CallExpr:
			reportCallUnits(p, s, n)
		case *ast.ReturnStmt:
			units := retStack[len(retStack)-1].units
			if len(n.Results) == len(units) {
				for i, r := range n.Results {
					ru := s.unitOf(r)
					if mismatch(units[i], ru) {
						p.Reportf(r.Pos(), "unit mismatch: returning %s where %s is declared", ru, units[i])
					}
				}
			}
		case *ast.CompositeLit:
			reportCompositeUnits(p, s, n)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// reportCallUnits checks argument units against parameter units, plus
// the append/copy builtins.
func reportCallUnits(p *Pass, s *unitScope, call *ast.CallExpr) {
	switch builtinName(s.info, call) {
	case "append":
		if len(call.Args) < 2 {
			return
		}
		su := s.unitOf(call.Args[0])
		for _, a := range call.Args[1:] {
			au := s.unitOf(a)
			if su != uUnknown && au != uUnknown && su != au {
				p.Reportf(a.Pos(), "unit mismatch: appending %s to a %s slice", au, su)
			}
		}
		return
	case "copy":
		if len(call.Args) == 2 {
			du, su := s.unitOf(call.Args[0]), s.unitOf(call.Args[1])
			if du != uUnknown && su != uUnknown && du != su {
				p.Reportf(call.Args[1].Pos(), "unit mismatch: copying %s into a %s slice", su, du)
			}
		}
		return
	case "":
		// not a builtin: fall through to signature matching
	default:
		return
	}
	if conversionType(s.info, call) != nil {
		return
	}
	sig := signatureOf(s.info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pu unit
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pu = unitOfType(params.At(params.Len() - 1).Type())
		case i < params.Len():
			pu = unitOfType(params.At(i).Type())
		default:
			continue
		}
		au := s.unitOf(arg)
		if pu != uUnknown && au != uUnknown && pu != au {
			p.Reportf(arg.Pos(), "unit mismatch: argument %d of %s wants %s, got %s", i+1, exprString(p, call.Fun), pu, au)
		}
	}
}

// reportCompositeUnits checks struct-literal fields and slice/array
// literal elements against their declared units.
func reportCompositeUnits(p *Pass, s *unitScope, lit *ast.CompositeLit) {
	tv, ok := s.info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch ut := t.Underlying().(type) {
	case *types.Struct:
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for i := 0; i < ut.NumFields(); i++ {
				f := ut.Field(i)
				if f.Name() != key.Name {
					continue
				}
				fu, vu := unitOfType(f.Type()), s.unitOf(kv.Value)
				if fu != uUnknown && vu != uUnknown && fu != vu {
					p.Reportf(kv.Value.Pos(), "unit mismatch: field %s wants %s, got %s", key.Name, fu, vu)
				}
				break
			}
		}
	case *types.Slice, *types.Array:
		eu := unitOfType(t)
		if eu == uUnknown {
			return
		}
		for _, el := range lit.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			vu := s.unitOf(v)
			if vu != uUnknown && vu != eu {
				p.Reportf(v.Pos(), "unit mismatch: %s element in a %s slice literal", vu, eu)
			}
		}
	}
}
