package lint

import "testing"

func TestChanleakSendWithoutReceive(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/worker", `package worker

func compute() int { return 42 }

func FireAndForget() {
	done := make(chan int)
	go func() {
		done <- compute() // nobody ever receives
	}()
}
`, ChanleakAnalyzer())
	wantFindings(t, got, "chanleak",
		"goroutine sends on done but this function never receives")
}

func TestChanleakReceiveWithoutSend(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/worker", `package worker

func Waiter() {
	stop := make(chan struct{}, 0)
	go func() {
		<-stop // nobody ever sends or closes
	}()
}
`, ChanleakAnalyzer())
	wantFindings(t, got, "chanleak",
		"goroutine receives from stop but this function never sends")
}

func TestChanleakMatchedSides(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/worker", `package worker

func compute() int { return 42 }

func AwaitResult() int {
	out := make(chan int)
	go func() { out <- compute() }()
	return <-out
}

func Signal() {
	ready := make(chan struct{})
	go func() { <-ready }()
	close(ready)
}

func Drain() int {
	vals := make(chan int)
	go func() {
		vals <- 1
		close(vals)
	}()
	sum := 0
	for v := range vals {
		sum += v
	}
	return sum
}
`, ChanleakAnalyzer())
	wantFindings(t, got, "chanleak")
}

func TestChanleakBufferedAndEscaping(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/worker", `package worker

func compute() int { return 42 }

func consume(ch chan int) {}

type holder struct{ ch chan int }

func Buffered() {
	out := make(chan int, 1)
	go func() { out <- compute() }() // buffered: the send completes
}

func PassedOn() {
	out := make(chan int)
	go func() { out <- compute() }()
	consume(out) // drained elsewhere — not our problem
}

func Returned() chan int {
	out := make(chan int)
	go func() { out <- compute() }()
	return out
}

func Stored(h *holder) {
	out := make(chan int)
	go func() { out <- compute() }()
	h.ch = out
}
`, ChanleakAnalyzer())
	wantFindings(t, got, "chanleak")
}

func TestChanleakSuppression(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/worker", `package worker

func compute() int { return 42 }

func Intentional() {
	//lint:ignore chanleak fixture: goroutine lifetime is owned by the test harness
	done := make(chan int)
	go func() { done <- compute() }()
}
`, ChanleakAnalyzer())
	wantFindings(t, got, "chanleak")
}
