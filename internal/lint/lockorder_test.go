package lint

import "testing"

func TestLockorderDirectInversion(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/shard", `package shard

import "sync"

type shard struct {
	muA sync.Mutex
	muB sync.Mutex
}

func (s *shard) Forward() {
	s.muA.Lock()
	s.muB.Lock()
	s.muB.Unlock()
	s.muA.Unlock()
}

func (s *shard) Backward() {
	s.muB.Lock()
	s.muA.Lock()
	s.muA.Unlock()
	s.muB.Unlock()
}
`, LockorderAnalyzer())
	wantFindings(t, got, "lockorder",
		"lock-order cycle (latent deadlock)")
}

func TestLockorderThroughCall(t *testing.T) {
	// The inversion only exists through the intra-package call: Outer
	// holds muA and calls helper, which takes muB; Inverse holds muB and
	// calls helperA, which takes muA.
	got := analyzeFixture(t, "fixturemod/internal/shard", `package shard

import "sync"

var muA, muB sync.Mutex

func helperB() {
	muB.Lock()
	defer muB.Unlock()
}

func helperA() {
	muA.Lock()
	defer muA.Unlock()
}

func Outer() {
	muA.Lock()
	defer muA.Unlock()
	helperB()
}

func Inverse() {
	muB.Lock()
	defer muB.Unlock()
	helperA()
}
`, LockorderAnalyzer())
	wantFindings(t, got, "lockorder",
		"lock-order cycle (latent deadlock)")
}

func TestLockorderConsistentAndDefer(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/shard", `package shard

import "sync"

type pair struct {
	first  sync.Mutex
	second sync.Mutex
}

func (p *pair) Both() {
	p.first.Lock()
	defer p.first.Unlock()
	p.second.Lock()
	defer p.second.Unlock()
}

func (p *pair) AlsoBoth() {
	p.first.Lock()
	p.second.Lock()
	p.second.Unlock()
	p.first.Unlock()
}

func (p *pair) Sequential() {
	// Release before the next acquisition: no edge at all.
	p.second.Lock()
	p.second.Unlock()
	p.first.Lock()
	p.first.Unlock()
}
`, LockorderAnalyzer())
	wantFindings(t, got, "lockorder")
}

func TestLockorderReentrantSelfSkipped(t *testing.T) {
	// A self-edge (the same class-level lock under itself, e.g. two
	// instances locked in a loop) is reentrancy territory, not ordering.
	got := analyzeFixture(t, "fixturemod/internal/shard", `package shard

import "sync"

type node struct {
	mu   sync.Mutex
	next *node
}

func chainLock(a, b *node) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
`, LockorderAnalyzer())
	wantFindings(t, got, "lockorder")
}
