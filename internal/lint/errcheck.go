package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
)

// ErrcheckAnalyzer flags calls whose error result is silently discarded:
// the call appears as a bare statement (or defer/go) and at least one of
// its results is an error. Assigning the error — even to _ — is an
// explicit, reviewable decision and is not flagged. Writers that are
// documented never to fail (bytes.Buffer, strings.Builder) and the
// best-effort fmt.Print family on stdout are allowlisted.
func ErrcheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errcheck",
		Doc: "forbid silently discarded error returns; handle the error, assign it " +
			"explicitly (_ =), or annotate with //lint:ignore errcheck <reason>; " +
			"bytes.Buffer, strings.Builder and fmt.Print* are allowlisted",
		Run: runErrcheck,
	}
}

// errcheckAllowedPkgFuncs are package-level functions whose errors are
// conventionally ignored (best-effort printing to stdout).
var errcheckAllowedPkgFuncs = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// errcheckAllowedRecvTypes are receiver types whose Write/WriteString/...
// methods are documented to never return a non-nil error.
var errcheckAllowedRecvTypes = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

func runErrcheck(p *Pass) {
	check := func(call *ast.CallExpr, how string) {
		if call == nil || !returnsError(p.Pkg.Info, call) || allowlisted(p.Pkg.Info, call) {
			return
		}
		p.Reportf(call.Pos(), "error result of %s%s is silently discarded; handle it, assign it explicitly, or annotate with //lint:ignore errcheck <reason>", how, exprString(p, call.Fun))
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ := s.X.(*ast.CallExpr)
				check(call, "")
			case *ast.DeferStmt:
				// The classic trap: defer f.Close() drops the flush error
				// with no statement left to observe it.
				check(s.Call, "deferred ")
			case *ast.GoStmt:
				check(s.Call, "goroutine call ")
			}
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errcheckFprintFuncs are the fmt functions whose error depends only on
// the destination writer; they are allowlisted when the writer cannot
// fail (bytes.Buffer, strings.Builder) or is a best-effort standard
// stream (os.Stdout, os.Stderr).
var errcheckFprintFuncs = map[string]bool{
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

// allowlisted reports whether the callee is on the built-in allowlist.
func allowlisted(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		qualified := fn.Pkg().Path() + "." + fn.Name()
		if errcheckFprintFuncs[qualified] && len(call.Args) > 0 {
			return safeWriter(info, call.Args[0])
		}
		return errcheckAllowedPkgFuncs[qualified]
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return errcheckAllowedRecvTypes[obj.Pkg().Path()+"."+obj.Name()]
}

// safeWriter reports whether the destination expression is a writer
// whose Write is documented never to fail (*bytes.Buffer,
// *strings.Builder) or a best-effort standard stream (os.Stdout,
// os.Stderr).
func safeWriter(info *types.Info, dst ast.Expr) bool {
	dst = ast.Unparen(dst)
	if sel, ok := dst.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	tv, ok := info.Types[dst]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return errcheckAllowedRecvTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// exprString renders an expression compactly for messages.
func exprString(p *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
