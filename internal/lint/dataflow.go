package lint

import (
	"go/ast"
	"go/types"
)

// This file is the shared intra-procedural dataflow core behind the
// units, hotalloc, and concurrency analyzers. It deliberately stops
// short of a full SSA construction: the analyzers need (a) per-function
// abstract environments keyed by *types.Var, grown to a fixpoint over a
// flow-insensitive walk of the body, (b) static resolution of callees
// and selector chains, and (c) the intra-package call graph for
// transitive summaries. All of that is derivable from go/ast + go/types
// with no external dependencies, and it keeps a whole-module analysis
// in single-digit seconds.

// funcDecls maps each function object declared in the package to its
// declaration, so analyzers can reach doc comments and bodies from a
// statically resolved callee.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// signatureOf resolves the callee's signature, if the call is an
// ordinary function or method call (not a conversion or builtin).
func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// conversionType returns the target type when the call is a type
// conversion, and nil otherwise.
func conversionType(info *types.Info, call *ast.CallExpr) types.Type {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() {
		return nil
	}
	return tv.Type
}

// builtinName returns the name of the builtin being called ("append",
// "make", ...) or "" when the callee is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// refObject resolves an lvalue-ish expression (identifier, selector,
// index, deref) to the object it ultimately reads or writes, or nil.
// For a[i] and *p it resolves the base, which is what abstract
// environments key on.
func refObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel] // package-qualified identifier
	case *ast.IndexExpr:
		return refObject(info, e.X)
	case *ast.StarExpr:
		return refObject(info, e.X)
	}
	return nil
}
