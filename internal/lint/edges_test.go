package lint

import "testing"

// The wall-clock-edge fixtures pin the structural exemption: inside
// internal/bench, time.Now/Since are legal only in sampler.go, and the
// exemption covers the clock alone — global math/rand stays banned even
// there.

const benchClockSrc = `package bench

import "time"

func now() float64 { return time.Since(start).Seconds() }

var start = time.Now()
`

func TestDeterminismBenchSamplerEdgeAllowed(t *testing.T) {
	got := analyzeFixtureFile(t, "vdcpower/internal/bench", "sampler.go", benchClockSrc, DeterminismAnalyzer())
	wantFindings(t, got, "determinism")
}

func TestDeterminismBenchOtherFilesStillBanned(t *testing.T) {
	got := analyzeFixtureFile(t, "vdcpower/internal/bench", "compare.go", benchClockSrc, DeterminismAnalyzer())
	wantFindings(t, got, "determinism", "wall clock", "wall clock")
}

func TestTelemetryBenchSamplerEdgeAllowed(t *testing.T) {
	got := analyzeFixtureFile(t, "vdcpower/internal/bench", "sampler.go", benchClockSrc, TelemetryAnalyzer())
	wantFindings(t, got, "telemetry")
}

func TestTelemetryBenchOtherFilesStillBanned(t *testing.T) {
	got := analyzeFixtureFile(t, "vdcpower/internal/bench", "schema.go", benchClockSrc, TelemetryAnalyzer())
	wantFindings(t, got, "telemetry", "telemetry clock", "telemetry clock")
}

func TestDeterminismEdgeExemptsOnlyTheClock(t *testing.T) {
	src := `package bench

import "math/rand"

func draw() float64 { return rand.Float64() }
`
	got := analyzeFixtureFile(t, "vdcpower/internal/bench", "sampler.go", src, DeterminismAnalyzer())
	wantFindings(t, got, "determinism", "global source")
}

func TestEdgeFileNameDoesNotLeakAcrossPackages(t *testing.T) {
	// A sampler.go in a package without a registered edge gets no pass.
	got := analyzeFixtureFile(t, "vdcpower/internal/dcsim", "sampler.go", benchClockSrc, DeterminismAnalyzer())
	wantFindings(t, got, "determinism", "wall clock", "wall clock")
}

const traceClockSrc = `package trace

import "time"

func wait(d time.Duration) { time.Sleep(time.Until(time.Now().Add(d))) }
`

func TestDeterminismTracePacerEdgeAllowed(t *testing.T) {
	got := analyzeFixtureFile(t, "vdcpower/internal/trace", "pace.go", traceClockSrc, DeterminismAnalyzer())
	wantFindings(t, got, "determinism")
}

func TestDeterminismTraceOtherFilesStillBanned(t *testing.T) {
	got := analyzeFixtureFile(t, "vdcpower/internal/trace", "grid.go", traceClockSrc, DeterminismAnalyzer())
	wantFindings(t, got, "determinism", "wall clock", "wall clock")
}
