package lint

import (
	"strings"
	"testing"
)

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && root == "" {
		t.Fatalf("implausible module root %q", root)
	}
	if _, err := FindModuleRoot("/"); err == nil {
		t.Fatal("expected no go.mod at filesystem root")
	}
}

// Self-hosting smoke test: the loader type-checks a real package of this
// module, including a module-internal import edge.
func TestLoadRealPackage(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if mod.ModPath != "vdcpower" {
		t.Fatalf("module path = %q, want vdcpower", mod.ModPath)
	}
	pkgs, err := mod.Load("./internal/power")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "vdcpower/internal/power" {
		t.Fatalf("unexpected packages %+v", pkgs)
	}
	p := pkgs[0]
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatal("package not fully loaded")
	}
	if p.Types.Scope().Lookup("Spec") == nil {
		t.Fatal("power.Spec not found in type-checked scope")
	}
}

func TestLoadRecursivePattern(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Load("./internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "vdcpower/internal/lint" {
		t.Fatalf("unexpected packages %+v", pkgs)
	}
}

// TestLoadHonorsBuildConstraints loads the race build-tag pair: only the
// !race half participates in the default configuration, so the package
// must type-check with exactly one file (loading both would redeclare
// race.Enabled).
func TestLoadHonorsBuildConstraints(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Load("./internal/race")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("race package loaded %d files, want just the !race half", len(pkgs[0].Files))
	}
	obj := pkgs[0].Types.Scope().Lookup("Enabled")
	if obj == nil {
		t.Fatal("race.Enabled not found")
	}
}

func TestLoadBadPattern(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.Load("./no/such/dir"); err == nil {
		t.Fatal("expected error for nonexistent pattern")
	}
}
