package lint

import "testing"

func TestFloatCompare(t *testing.T) {
	tests := []struct {
		name    string
		pkgPath string
		src     string
		want    []string
	}{
		{
			name:    "raw equality on float64",
			pkgPath: "vdcpower/internal/power",
			src: `package power
func same(a, b float64) bool { return a == b }`,
			want: []string{"floating-point == comparison"},
		},
		{
			name:    "inequality against a float variable",
			pkgPath: "vdcpower/internal/cluster",
			src: `package cluster
func changed(f, prev float64) bool { return f != prev }`,
			want: []string{"floating-point != comparison"},
		},
		{
			name:    "integer comparison is fine",
			pkgPath: "vdcpower/internal/power",
			src: `package power
func same(a, b int) bool { return a == b }`,
			want: nil,
		},
		{
			name:    "ordered float comparisons are fine",
			pkgPath: "vdcpower/internal/power",
			src: `package power
func bigger(a, b float64) bool { return a > b || a >= b }`,
			want: nil,
		},
		{
			name:    "epsilon helper in an approved package",
			pkgPath: "vdcpower/internal/mat",
			src: `package mat
import "math"
func AlmostEqual(a, b, eps float64) bool {
	if a == b { // exact fast path inside the approved helper
		return true
	}
	return math.Abs(a-b) <= eps
}`,
			want: nil,
		},
		{
			name:    "helper naming does not exempt outside approved packages",
			pkgPath: "vdcpower/internal/serve",
			src: `package serve
func AlmostEqual(a, b float64) bool { return a == b }`,
			want: []string{"floating-point == comparison"},
		},
		{
			name:    "constant-folded comparison is exact by definition",
			pkgPath: "vdcpower/internal/power",
			src: `package power
const eps = 1e-9
var strict = eps == 0`,
			want: nil,
		},
		{
			name:    "suppressed deliberate sentinel check",
			pkgPath: "vdcpower/internal/workload",
			src: `package workload
func unset(v float64) bool {
	//lint:ignore floatcompare zero is an exact sentinel, never computed
	return v == 0
}`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := analyzeFixture(t, tt.pkgPath, tt.src, FloatCompareAnalyzer())
			wantFindings(t, got, "floatcompare", tt.want...)
		})
	}
}
