package lint

import "testing"

func TestDeterminism(t *testing.T) {
	tests := []struct {
		name    string
		pkgPath string
		src     string
		want    []string // message substrings, in order
	}{
		{
			name:    "wall clock in simulation package",
			pkgPath: "vdcpower/internal/dcsim",
			src: `package dcsim
import "time"
func step() float64 {
	t0 := time.Now()
	return time.Since(t0).Seconds()
}`,
			want: []string{"time.Now", "time.Since"},
		},
		{
			name:    "global rand in simulation package",
			pkgPath: "vdcpower/internal/appsim",
			src: `package appsim
import "math/rand"
func draw() float64 { return rand.Float64() }
func pick(n int) int { return rand.Intn(n) }`,
			want: []string{"rand.Float64", "rand.Intn"},
		},
		{
			name:    "seeded rand is the approved path",
			pkgPath: "vdcpower/internal/dcsim",
			src: `package dcsim
import "math/rand"
func draw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}`,
			want: nil,
		},
		{
			name:    "global rand in the fault injector",
			pkgPath: "vdcpower/internal/fault",
			src: `package fault
import "math/rand"
func flip(p float64) bool { return rand.Float64() < p }`,
			want: []string{"rand.Float64"},
		},
		{
			name:    "non-simulation package is out of scope",
			pkgPath: "vdcpower/internal/serve",
			src: `package serve
import "time"
func now() time.Time { return time.Now() }`,
			want: nil,
		},
		{
			name:    "duration arithmetic without the clock is fine",
			pkgPath: "vdcpower/internal/queueing",
			src: `package queueing
import "time"
func secs(d time.Duration) float64 { return d.Seconds() }`,
			want: nil,
		},
		{
			name:    "suppressed with reason",
			pkgPath: "vdcpower/internal/testbed",
			src: `package testbed
import "time"
func trace() time.Time {
	//lint:ignore determinism wall-clock used only for log annotation
	return time.Now()
}`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := analyzeFixture(t, tt.pkgPath, tt.src, DeterminismAnalyzer())
			wantFindings(t, got, "determinism", tt.want...)
		})
	}
}
