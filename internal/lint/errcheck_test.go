package lint

import "testing"

func TestErrcheck(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "bare call discarding an error",
			src: `package serve
import "os"
func drop(name string) {
	os.Remove(name)
}`,
			want: []string{"os.Remove"},
		},
		{
			name: "multi-result call with trailing error",
			src: `package serve
import "io"
func drain(w io.Writer, b []byte) {
	w.Write(b)
}`,
			want: []string{"w.Write"},
		},
		{
			name: "deferred close discarding an error",
			src: `package serve
import "os"
func open(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}`,
			want: []string{"deferred f.Close"},
		},
		{
			name: "goroutine call discarding an error",
			src: `package serve
import "os"
func drop(name string) {
	go os.Remove(name)
}`,
			want: []string{"goroutine call os.Remove"},
		},
		{
			name: "deferred closure handling the error is fine",
			src: `package serve
import (
	"log"
	"os"
)
func open(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer func() {
		if err := f.Close(); err != nil {
			log.Print(err)
		}
	}()
	return nil
}`,
			want: nil,
		},
		{
			name: "deferred allowlisted writer is fine",
			src: `package serve
import (
	"fmt"
	"os"
)
func trace() {
	defer fmt.Fprintln(os.Stderr, "done")
}`,
			want: nil,
		},
		{
			name: "explicit blank assignment is a reviewable decision",
			src: `package serve
import "os"
func drop(name string) {
	_ = os.Remove(name)
}`,
			want: nil,
		},
		{
			name: "handled error is fine",
			src: `package serve
import "os"
func drop(name string) error {
	if err := os.Remove(name); err != nil {
		return err
	}
	return nil
}`,
			want: nil,
		},
		{
			name: "errorless call is fine",
			src: `package serve
func touch() {}
func run() { touch() }`,
			want: nil,
		},
		{
			name: "bytes.Buffer and fmt.Printf are allowlisted",
			src: `package serve
import (
	"bytes"
	"fmt"
)
func render() string {
	var b bytes.Buffer
	b.WriteString("x")
	fmt.Printf("rendered\n")
	return b.String()
}`,
			want: nil,
		},
		{
			name: "fmt.Fprintf to an arbitrary writer is not allowlisted",
			src: `package serve
import (
	"fmt"
	"io"
)
func render(w io.Writer) {
	fmt.Fprintf(w, "x")
}`,
			want: []string{"fmt.Fprintf"},
		},
		{
			name: "fmt.Fprintf to a never-failing writer is allowlisted",
			src: `package serve
import (
	"fmt"
	"strings"
)
func render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", 42)
	return b.String()
}`,
			want: nil,
		},
		{
			name: "fmt.Fprintln to the standard streams is best-effort",
			src: `package serve
import (
	"fmt"
	"os"
)
func warn(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	fmt.Fprintf(os.Stdout, "%s\n", msg)
}`,
			want: nil,
		},
		{
			name: "suppressed deliberate discard",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore errcheck removal is best-effort cleanup
	os.Remove(name)
}`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := analyzeFixture(t, "vdcpower/internal/serve", tt.src, ErrcheckAnalyzer())
			wantFindings(t, got, "errcheck", tt.want...)
		})
	}
}
