// Package lint is the project-native static-analysis engine behind
// cmd/vdclint. It loads every package in the module with the standard
// library's go/parser + go/types (no external dependencies, matching the
// dependency-free go.mod) and runs a registry of project-specific
// analyzers that enforce the invariants the paper's evaluation depends
// on: bit-for-bit reproducibility from a seed (determinism), well-defined
// floating-point comparisons (floatcompare), joined goroutines
// (goroutine), no stray panics in library code (panicpolicy), and no
// silently dropped errors (errcheck).
//
// Findings can be suppressed at the offending line — or the line directly
// above it — with an explicit, reasoned directive:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A directive without a reason is itself reported, so every suppression
// in the tree documents why the invariant does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer hit, positioned in module-relative file
// coordinates so output is stable across machines.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Analyzer is one registered rule. Applies filters by import path; a nil
// Applies runs the analyzer on every package.
type Analyzer struct {
	Name    string
	Doc     string
	Applies func(pkgPath string) bool
	Run     func(p *Pass)
}

// Pass carries one (analyzer, package) unit of work. Analyzers report
// through Reportf; the runner attaches rule names and filters
// suppressions afterwards.
type Pass struct {
	Pkg      *Package
	Fset     *token.FileSet
	rel      func(string) string
	findings *[]Finding
	rule     string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Rule:    p.rule,
		File:    p.rel(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full registry in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		TelemetryAnalyzer(),
		FloatCompareAnalyzer(),
		GoroutineAnalyzer(),
		PanicPolicyAnalyzer(),
		ErrcheckAnalyzer(),
	}
}

// DirectiveRule is the pseudo-rule under which malformed //lint:ignore
// directives are reported.
const DirectiveRule = "directive"

var directiveRe = regexp.MustCompile(`^//lint:ignore(\s+(\S+))?(\s+(\S.*))?$`)

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	file  string
	line  int
	rules map[string]bool
}

// collectDirectives parses every //lint:ignore comment in the package.
// Malformed directives (missing rule list or missing reason) become
// findings so suppressions stay self-documenting.
func collectDirectives(fset *token.FileSet, rel func(string) string, pkg *Package) (sups []suppression, bad []Finding) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil || m[2] == "" || strings.TrimSpace(m[4]) == "" {
					bad = append(bad, Finding{
						Rule: DirectiveRule,
						File: rel(pos.Filename),
						Line: pos.Line,
						Col:  pos.Column,
						Message: "malformed //lint:ignore directive: " +
							"want //lint:ignore <rule>[,<rule>] <reason>",
					})
					continue
				}
				rules := map[string]bool{}
				for _, r := range strings.Split(m[2], ",") {
					rules[r] = true
				}
				sups = append(sups, suppression{file: rel(pos.Filename), line: pos.Line, rules: rules})
			}
		}
	}
	return sups, bad
}

// suppressed reports whether f is covered by a directive on the same
// line (trailing comment) or the line directly above.
func suppressed(f Finding, sups []suppression) bool {
	for _, s := range sups {
		if s.file != f.File || !s.rules[f.Rule] {
			continue
		}
		if f.Line == s.line || f.Line == s.line+1 {
			return true
		}
	}
	return false
}

// AnalyzePackages runs the analyzers over the packages, applies
// //lint:ignore suppressions, and returns the surviving findings sorted
// by position. rel maps absolute file names to reported paths (identity
// when nil).
func AnalyzePackages(fset *token.FileSet, rel func(string) string, pkgs []*Package, analyzers []*Analyzer) []Finding {
	if rel == nil {
		rel = func(s string) string { return s }
	}
	var all []Finding
	for _, pkg := range pkgs {
		sups, bad := collectDirectives(fset, rel, pkg)
		var raw []Finding
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, Fset: fset, rel: rel, findings: &raw, rule: a.Name})
		}
		for _, f := range raw {
			if !suppressed(f, sups) {
				all = append(all, f)
			}
		}
		all = append(all, bad...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return all
}

// enclosingFuncName returns the name of the innermost function
// declaration containing pos, or "" when pos is not inside one.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		if fd.Body != nil && fd.Body.Pos() <= pos && pos < fd.Body.End() {
			name = fd.Name.Name
		}
		return true
	})
	return name
}

// pathHasSuffix reports whether the import path ends with one of the
// given module-relative suffixes (e.g. "internal/dcsim").
func pathHasSuffix(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
