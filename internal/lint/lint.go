// Package lint is the project-native static-analysis engine behind
// cmd/vdclint. It loads every package in the module with the standard
// library's go/parser + go/types (no external dependencies, matching the
// dependency-free go.mod) and runs a registry of project-specific
// analyzers that enforce the invariants the paper's evaluation depends
// on: bit-for-bit reproducibility from a seed (determinism), well-defined
// floating-point comparisons (floatcompare), joined goroutines
// (goroutine), no stray panics in library code (panicpolicy), and no
// silently dropped errors (errcheck). A second, dataflow-grade family
// reasons about values rather than syntax: dimensional consistency of
// the paper's physical quantities (units), allocation-free hot paths
// (hotalloc), and concurrency hygiene (mutexcopy, lockorder, chanleak).
//
// Findings can be suppressed at the offending line — or the line directly
// above it — with an explicit, reasoned directive:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A directive without a reason, a directive naming a rule that matches
// no registered analyzer, and a directive that suppresses nothing (the
// anchored line produced no finding of the named rules while those
// analyzers ran) are all themselves reported, so every suppression in
// the tree documents why the invariant does not apply — and stays live.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer hit, positioned in module-relative file
// coordinates so output is stable across machines.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Analyzer is one registered rule. Applies filters by import path; a nil
// Applies runs the analyzer on every package.
type Analyzer struct {
	Name    string
	Doc     string
	Applies func(pkgPath string) bool
	Run     func(p *Pass)
}

// Pass carries one (analyzer, package) unit of work. Analyzers report
// through Reportf; the runner attaches rule names and filters
// suppressions afterwards.
type Pass struct {
	Pkg      *Package
	Fset     *token.FileSet
	rel      func(string) string
	findings *[]Finding
	rule     string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Rule:    p.rule,
		File:    p.rel(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full registry in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		TelemetryAnalyzer(),
		FloatCompareAnalyzer(),
		GoroutineAnalyzer(),
		PanicPolicyAnalyzer(),
		ErrcheckAnalyzer(),
		UnitsAnalyzer(),
		HotallocAnalyzer(),
		MutexcopyAnalyzer(),
		LockorderAnalyzer(),
		ChanleakAnalyzer(),
	}
}

// DirectiveRule is the pseudo-rule under which malformed //lint:ignore
// directives are reported.
const DirectiveRule = "directive"

var directiveRe = regexp.MustCompile(`^//lint:ignore(\s+(\S+))?(\s+(\S.*))?$`)

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	file  string
	line  int
	col   int
	rules map[string]bool
	used  bool
}

// knownRules is every rule name a directive may legitimately name: the
// full analyzer registry, independent of which subset is running.
func knownRules() map[string]bool {
	m := map[string]bool{}
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// collectDirectives parses every //lint:ignore comment in the package.
// Malformed directives (missing rule list or missing reason) and rule
// names that match no registered analyzer become findings so
// suppressions stay self-documenting and typo-free.
func collectDirectives(fset *token.FileSet, rel func(string) string, pkg *Package) (sups []*suppression, bad []Finding) {
	known := knownRules()
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil || m[2] == "" || strings.TrimSpace(m[4]) == "" {
					bad = append(bad, Finding{
						Rule: DirectiveRule,
						File: rel(pos.Filename),
						Line: pos.Line,
						Col:  pos.Column,
						Message: "malformed //lint:ignore directive: " +
							"want //lint:ignore <rule>[,<rule>] <reason>",
					})
					continue
				}
				rules := map[string]bool{}
				unknown := false
				for _, r := range strings.Split(m[2], ",") {
					if !known[r] {
						unknown = true
						bad = append(bad, Finding{
							Rule: DirectiveRule,
							File: rel(pos.Filename),
							Line: pos.Line,
							Col:  pos.Column,
							Message: fmt.Sprintf("//lint:ignore names unknown rule %q; "+
								"registered analyzers: %s", r, strings.Join(ruleNames(), ", ")),
						})
						continue
					}
					rules[r] = true
				}
				if len(rules) == 0 {
					continue // nothing left to suppress; already reported
				}
				sups = append(sups, &suppression{
					file:  rel(pos.Filename),
					line:  pos.Line,
					col:   pos.Column,
					rules: rules,
					// A typo'd rule alongside a valid one is already reported;
					// don't pile an unused-suppression finding on top.
					used: unknown,
				})
			}
		}
	}
	return sups, bad
}

// ruleNames lists the registry's analyzer names in reporting order.
func ruleNames() []string {
	var ns []string
	for _, a := range Analyzers() {
		ns = append(ns, a.Name)
	}
	return ns
}

// suppressed reports whether f is covered by a directive on the same
// line (trailing comment) or the line directly above, marking the
// directive used so stale suppressions can be reported.
func suppressed(f Finding, sups []*suppression) bool {
	for _, s := range sups {
		if s.file != f.File || !s.rules[f.Rule] {
			continue
		}
		if f.Line == s.line || f.Line == s.line+1 {
			s.used = true
			return true
		}
	}
	return false
}

// unusedSuppressions reports directives that suppressed nothing. Only
// directives whose every rule actually ran on the package are eligible —
// a directive for an analyzer skipped via -enable/-disable or an Applies
// filter is not stale, just dormant.
func unusedSuppressions(sups []*suppression, ran map[string]bool) []Finding {
	var out []Finding
	for _, s := range sups {
		if s.used {
			continue
		}
		eligible := true
		rules := make([]string, 0, len(s.rules))
		for r := range s.rules {
			rules = append(rules, r)
			if !ran[r] {
				eligible = false
			}
		}
		if !eligible {
			continue
		}
		sort.Strings(rules)
		out = append(out, Finding{
			Rule: DirectiveRule,
			File: s.file,
			Line: s.line,
			Col:  s.col,
			Message: fmt.Sprintf("unused //lint:ignore suppression for %s: no finding "+
				"on this line or the line below; directives reach exactly one line — "+
				"move it to the offending line or delete it", strings.Join(rules, ",")),
		})
	}
	return out
}

// AnalyzePackages runs the analyzers over the packages, applies
// //lint:ignore suppressions, and returns the surviving findings sorted
// by position. rel maps absolute file names to reported paths (identity
// when nil).
func AnalyzePackages(fset *token.FileSet, rel func(string) string, pkgs []*Package, analyzers []*Analyzer) []Finding {
	if rel == nil {
		rel = func(s string) string { return s }
	}
	var all []Finding
	for _, pkg := range pkgs {
		sups, bad := collectDirectives(fset, rel, pkg)
		var raw []Finding
		ran := map[string]bool{}
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			a.Run(&Pass{Pkg: pkg, Fset: fset, rel: rel, findings: &raw, rule: a.Name})
		}
		for _, f := range raw {
			if !suppressed(f, sups) {
				all = append(all, f)
			}
		}
		all = append(all, bad...)
		all = append(all, unusedSuppressions(sups, ran)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return all
}

// enclosingFuncName returns the name of the innermost function
// declaration containing pos, or "" when pos is not inside one.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		if fd.Body != nil && fd.Body.Pos() <= pos && pos < fd.Body.End() {
			name = fd.Name.Name
		}
		return true
	})
	return name
}

// pathHasSuffix reports whether the import path ends with one of the
// given module-relative suffixes (e.g. "internal/dcsim").
func pathHasSuffix(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
