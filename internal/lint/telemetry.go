package lint

import (
	"go/ast"
	"go/types"
)

// instrumentedPackages are the packages threaded with the telemetry span
// recorder. Their timestamps must come from the injected telemetry clock
// — telemetry.WallClock at interactive edges, the simulator clock or
// Track.SetTime everywhere else — never from the wall clock directly:
// a stray time.Now would put spans on a different time base than the
// recorder and silently break trace reproducibility.
var instrumentedPackages = []string{
	"internal/core",
	"internal/mpc",
	"internal/cluster",
	"internal/serve",
	"internal/telemetry",
	"internal/bench",
	"internal/obs",
}

// TelemetryAnalyzer forbids direct wall-clock reads in instrumented
// packages. The simulation packages are already covered by the stricter
// determinism analyzer; this rule extends the no-direct-clock invariant
// to the control stack and the HTTP edge, where wall time is legitimate
// but must flow through telemetry.WallClock so every timestamp shares
// the recorder's time base.
func TelemetryAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "telemetry",
		Doc: "forbid direct time.Now/Since/Until in telemetry-instrumented packages " +
			"(core, mpc, cluster, serve, telemetry, bench, obs); timestamps must come from the " +
			"injected telemetry clock — telemetry.WallClock at edges, the simulator " +
			"clock or Track.SetTime elsewhere — so spans share one time base; a " +
			"package's registered wall-clock edge file (bench: sampler.go) is exempt",
		Applies: func(pkgPath string) bool { return pathHasSuffix(pkgPath, instrumentedPackages) },
		Run:     runTelemetry,
	}
}

func runTelemetry(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods like (time.Time).Sub don't read the clock
			}
			if fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] && !atWallClockEdge(p, sel.Pos()) {
				p.Reportf(sel.Pos(), "time.%s bypasses the injected telemetry clock; use telemetry.WallClock (edges) or the track's clock so spans share one time base", fn.Name())
			}
			return true
		})
	}
}
