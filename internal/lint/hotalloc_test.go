package lint

import "testing"

// TestHotallocLoopAllocations: allocations inside a root's loops are
// flagged with the declared scenario; one-time setup before the loop is
// not.
func TestHotallocLoopAllocations(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/hot", `package hot

// Solve is the inner loop.
//
//vdc:hotpath mpc/solve
func Solve(xs []float64) []float64 {
	buf := make([]float64, 0, len(xs)) // setup: outside the loop, exempt
	var out []float64
	for _, x := range xs {
		tmp := make([]float64, 2)
		tmp[0] = x
		out = append(out, tmp...)
	}
	_ = buf
	return out
}
`, HotallocAnalyzer())
	wantFindings(t, got, "hotalloc",
		"make allocates in a hot path (vdcbench scenario mpc/solve)",
		"append may grow its backing array in a hot path (vdcbench scenario mpc/solve)")
}

// TestHotallocTransitiveAndRecursive: a package-local callee of a hot
// loop is hot over its whole body, and a recursive root becomes
// whole-body hot through its own call edge.
func TestHotallocTransitiveAndRecursive(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/hot", `package hot

//vdc:hotpath packing/minslack
func Search(n int) {
	for i := 0; i < n; i++ {
		helper(i)
	}
}

func helper(i int) {
	_ = map[int]bool{i: true} // whole body hot via the call edge
}

//vdc:hotpath queueing/mva
func Recurse(n int) {
	if n == 0 {
		return
	}
	_ = []int{n} // outside any loop, but recursion makes the body hot
	for i := 0; i < n; i++ {
		Recurse(n - 1)
	}
}
`, HotallocAnalyzer())
	wantFindings(t, got, "hotalloc",
		"map literal allocates in a hot path (vdcbench scenario packing/minslack)",
		"slice literal allocates in a hot path (vdcbench scenario queueing/mva)")
}

// TestHotallocClosureFmtBoxing: closures, fmt calls, and interface
// boxing inside hot loops are flagged; explicit conversions are not.
func TestHotallocClosureFmtBoxing(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/hot", `package hot

import "fmt"

func sink(v any) {}

//vdc:hotpath fig6/energy-per-vm
func Drain(ids []int) {
	for _, id := range ids {
		f := func() int { return id } // closure capture
		_ = f()
		_ = fmt.Sprintf("vm%d", id)
		sink(id) // boxes id into any
		_ = float64(id)
	}
}
`, HotallocAnalyzer())
	wantFindings(t, got, "hotalloc",
		"function literal allocates a closure in a hot path (vdcbench scenario fig6/energy-per-vm)",
		"fmt.Sprintf formats through interfaces and allocates in a hot path (vdcbench scenario fig6/energy-per-vm)",
		"argument boxes a concrete value into an interface in a hot path (vdcbench scenario fig6/energy-per-vm)")
}

// TestHotallocColdPathsAndReuse: panic messages, error-typed returns,
// and the append(x[:0], ...) reuse idiom are exempt.
func TestHotallocColdPathsAndReuse(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/hot", `package hot

import "fmt"

//vdc:hotpath mpc/solve
func Iterate(xs []float64, scratch []float64) ([]float64, error) {
	for i, x := range xs {
		if x < 0 {
			return nil, fmt.Errorf("negative input %v at %d", x, i) // aborting path
		}
		if x > 1e9 {
			panic(fmt.Sprintf("wild input %v", x)) // aborting path
		}
		scratch = append(scratch[:0], x) // backing-array reuse
	}
	return scratch, nil
}
`, HotallocAnalyzer())
	wantFindings(t, got, "hotalloc")
}

// TestHotallocMalformedAnnotation: a //vdc:hotpath without a valid
// scenario slug is itself a finding, and an unannotated package stays
// silent.
func TestHotallocMalformedAnnotation(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/hot", `package hot

//vdc:hotpath Not A Slug!
func Bad(xs []int) {
	for range xs {
		_ = []int{1}
	}
}
`, HotallocAnalyzer())
	wantFindings(t, got, "hotalloc",
		"malformed //vdc:hotpath annotation")

	got = analyzeFixture(t, "fixturemod/internal/cold", `package cold

func Fine(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`, HotallocAnalyzer())
	wantFindings(t, got, "hotalloc")
}

// TestHotallocSuppression: a justified //lint:ignore hotalloc directive
// silences exactly its line.
func TestHotallocSuppression(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/hot", `package hot

//vdc:hotpath mpc/solve
func Solve(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		//lint:ignore hotalloc out is preallocated by the caller contract
		out = append(out, x)
		out = append(out, -x) // still flagged
	}
	return out
}
`, HotallocAnalyzer())
	wantFindings(t, got, "hotalloc",
		"append may grow its backing array")
}
