package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanleakAnalyzer flags goroutine-leaking channel patterns: a function
// creates an unbuffered channel that never escapes the function, spawns
// a goroutine that sends on (or receives from) it, but contains no
// matching receive (or send), close, or drain on the other side. The
// goroutine blocks on the channel operation forever — a leak that
// accumulates under load and keeps captured state reachable.
//
// The analysis is deliberately conservative: a channel that is passed
// to another function, returned, stored into a struct or map, sent over
// another channel, or captured by a non-go function literal is assumed
// drained elsewhere and never reported.
func ChanleakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "chanleak",
		Doc: "an unbuffered local channel used by a spawned goroutine needs its " +
			"other side in the same function (receive/send/close/range/select); " +
			"otherwise the goroutine blocks forever and leaks",
		Run: runChanleak,
	}
}

// chanUse accumulates how one channel variable is used in a function.
type chanUse struct {
	obj        *types.Var
	makePos    token.Pos
	sendInGo   bool // ch <- x inside a go literal
	recvInGo   bool // <-ch inside a go literal
	sendInFn   bool // ch <- x in the surrounding function
	recvInFn   bool // <-ch, range ch, or a select case in the function
	closed     bool // close(ch) anywhere in the function
	escapes    bool
	goBodyElse bool // goroutine body also closes/drains it
}

func runChanleak(p *Pass) {
	decls := funcDecls(p.Pkg)
	for _, decl := range decls {
		analyzeChanleakFunc(p, decl)
	}
}

// unbufferedChanMake recognizes ch := make(chan T) (or an explicit
// zero-capacity make) and returns the defined variable.
func unbufferedChanMake(info *types.Info, st *ast.AssignStmt) (*types.Var, token.Pos) {
	if st.Tok != token.DEFINE || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil, token.NoPos
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok || builtinName(info, call) != "make" {
		return nil, token.NoPos
	}
	tv, ok := info.Types[call]
	if !ok {
		return nil, token.NoPos
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return nil, token.NoPos
	}
	if len(call.Args) > 1 {
		lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit)
		if !ok || lit.Value != "0" {
			return nil, token.NoPos // buffered: a lone send completes
		}
	}
	id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil, token.NoPos
	}
	v, _ := info.Defs[id].(*types.Var)
	return v, call.Pos()
}

func analyzeChanleakFunc(p *Pass, decl *ast.FuncDecl) {
	info := p.Pkg.Info
	uses := map[*types.Var]*chanUse{}

	// Pass 1: find unbuffered local channel makes.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if st, ok := n.(*ast.AssignStmt); ok {
			if v, pos := unbufferedChanMake(info, st); v != nil {
				uses[v] = &chanUse{obj: v, makePos: pos}
			}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	chanOf := func(e ast.Expr) *chanUse {
		v, _ := refObject(info, ast.Unparen(e)).(*types.Var)
		if v == nil {
			return nil
		}
		return uses[v]
	}

	// Pass 2: classify every use, with goroutine-body context.
	var goDepth int
	var classify func(n ast.Node) bool
	classify = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned body runs concurrently. Both a literal body and
			// call arguments evaluated at spawn time are walked with the
			// go context; a named callee receiving the channel is an
			// escape (handled by CallExpr below).
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				goDepth++
				ast.Inspect(fl.Body, classify)
				goDepth--
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, classify)
				}
				return false
			}
			return true
		case *ast.SendStmt:
			if u := chanOf(n.Chan); u != nil {
				if goDepth > 0 {
					u.sendInGo = true
				} else {
					u.sendInFn = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if u := chanOf(n.X); u != nil {
					if goDepth > 0 {
						u.recvInGo = true
					} else {
						u.recvInFn = true
					}
				}
			}
		case *ast.RangeStmt:
			if u := chanOf(n.X); u != nil {
				if goDepth > 0 {
					u.recvInGo = true
				} else {
					u.recvInFn = true
				}
			}
		case *ast.CallExpr:
			switch builtinName(info, n) {
			case "close":
				if len(n.Args) == 1 {
					if u := chanOf(n.Args[0]); u != nil {
						u.closed = true
					}
				}
				return true
			case "len", "cap", "":
			default:
				return true
			}
			if builtinName(info, n) == "" {
				for _, arg := range n.Args {
					if u := chanOf(arg); u != nil {
						u.escapes = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if u := chanOf(r); u != nil {
					u.escapes = true
				}
			}
		case *ast.AssignStmt:
			// ch assigned to anything beyond its defining make escapes
			// (struct fields, maps, other variables).
			for i, rhs := range n.Rhs {
				u := chanOf(rhs)
				if u == nil {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if v, ok := info.Defs[id].(*types.Var); ok && uses[v] == u {
							continue // its own definition
						}
					}
				}
				u.escapes = true
			}
		}
		return true
	}
	ast.Inspect(decl.Body, classify)

	for _, u := range uses {
		if u.escapes || u.closed {
			continue
		}
		switch {
		case u.sendInGo && !u.recvInFn && !u.recvInGo:
			p.Reportf(u.makePos, "goroutine sends on %s but this function never receives, ranges, or closes it; the send blocks forever and the goroutine leaks", u.obj.Name())
		case u.recvInGo && !u.sendInFn && !u.sendInGo:
			p.Reportf(u.makePos, "goroutine receives from %s but this function never sends on or closes it; the receive blocks forever and the goroutine leaks", u.obj.Name())
		}
	}
}
