package lint

import "testing"

func TestMutexcopyReceiverParamResult(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/reg", `package reg

import "sync"

type Registry struct {
	mu sync.Mutex
	n  int
}

func (r Registry) Count() int { return r.n } // value receiver copies mu

func Observe(r Registry) {} // by-value parameter

func Make() Registry { var r Registry; return r } // by-value result

func UsePtr(r *Registry) {} // fine
`, MutexcopyAnalyzer())
	wantFindings(t, got, "mutexcopy",
		"value receiver copies a lock-carrying Registry",
		"by-value parameter copies a lock-carrying Registry",
		"by-value result copies a lock-carrying Registry")
}

func TestMutexcopyAssignRangeArgs(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/reg", `package reg

import "sync"

type Guarded struct {
	mu sync.RWMutex
	v  int
}

func sink(g *Guarded) {}

func Copies(all []Guarded, one *Guarded) {
	g := *one // deref copies the lock
	g.v = 1
	for _, item := range all { // range value copies per element
		_ = item.v
	}
	for i := range all { // index form is fine
		sink(&all[i])
	}
}

type nested struct{ inner Guarded }

func Nested(n nested, wg sync.WaitGroup) {} // both params flagged
`, MutexcopyAnalyzer())
	wantFindings(t, got, "mutexcopy",
		"assignment copies a lock-carrying value",
		"range value copies a lock-carrying element",
		"by-value parameter copies a lock-carrying nested",
		"by-value parameter copies a lock-carrying sync.WaitGroup")
}

func TestMutexcopyCleanPatterns(t *testing.T) {
	got := analyzeFixture(t, "fixturemod/internal/reg", `package reg

import "sync"

type Store struct {
	mu   sync.Mutex
	data map[string]int
}

func New() *Store {
	return &Store{data: map[string]int{}} // literal is the birthplace, not a copy
}

func (s *Store) Get(k string) int { // pointer receiver
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

func Register(s *Store) {} // pointer param
`, MutexcopyAnalyzer())
	wantFindings(t, got, "mutexcopy")
}
