package lint

import "testing"

func TestTelemetry(t *testing.T) {
	tests := []struct {
		name    string
		pkgPath string
		src     string
		want    []string // message substrings, in order
	}{
		{
			name:    "wall clock in an instrumented package",
			pkgPath: "vdcpower/internal/serve",
			src: `package serve
import "time"
func stamp() float64 {
	t0 := time.Now()
	return time.Since(t0).Seconds()
}`,
			want: []string{"time.Now", "time.Since"},
		},
		{
			name:    "wall clock in the control stack",
			pkgPath: "vdcpower/internal/core",
			src: `package core
import "time"
func deadline(d time.Duration) time.Time { return time.Now().Add(d) }`,
			want: []string{"time.Now"},
		},
		{
			name:    "uninstrumented package is out of scope",
			pkgPath: "vdcpower/internal/report",
			src: `package report
import "time"
func now() time.Time { return time.Now() }`,
			want: nil,
		},
		{
			name:    "duration arithmetic without the clock is fine",
			pkgPath: "vdcpower/internal/mpc",
			src: `package mpc
import "time"
func secs(d time.Duration) float64 { return d.Seconds() }`,
			want: nil,
		},
		{
			name:    "timers and tickers do not read a timestamp",
			pkgPath: "vdcpower/internal/serve",
			src: `package serve
import "time"
func tick(d time.Duration) *time.Ticker { return time.NewTicker(d) }`,
			want: nil,
		},
		{
			name:    "suppressed with reason",
			pkgPath: "vdcpower/internal/telemetry",
			src: `package telemetry
import "time"
func wall() float64 {
	//lint:ignore telemetry this IS the wall-clock the injected clock abstracts
	return float64(time.Now().UnixNano()) / 1e9
}`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := analyzeFixture(t, tt.pkgPath, tt.src, TelemetryAnalyzer())
			wantFindings(t, got, "telemetry", tt.want...)
		})
	}
}
