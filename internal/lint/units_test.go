package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"testing"
)

// unitsFixtureDecls is the internal/units package every units fixture
// imports — the same aliases the real module declares.
const unitsFixtureDecls = `package units

type (
	Watt      = float64
	Hertz     = float64
	Fraction  = float64
	Second    = float64
	Joule     = float64
	VMCount   = float64
	GHzSecond = float64
)
`

// unitsImporter resolves the fixture module's internal/units import to a
// pre-checked package and delegates everything else to the shared
// stdlib source importer.
type unitsImporter struct {
	units *types.Package
}

func (imp unitsImporter) Import(path string) (*types.Package, error) {
	if path == imp.units.Path() {
		return imp.units, nil
	}
	return fixtureStd.Import(path)
}

// analyzeUnitsFixture type-checks src as fixturemod/internal/power — a
// package path the units analyzer applies to — against a synthetic
// fixturemod/internal/units, and runs the units analyzer.
func analyzeUnitsFixture(t *testing.T, src string) []Finding {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()

	const unitsPath = "fixturemod/internal/units"
	ufile, err := parser.ParseFile(fixtureFset, unitsPath+"/units.go", unitsFixtureDecls,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse units fixture: %v", err)
	}
	uconf := types.Config{Importer: fixtureStd}
	upkg, err := uconf.Check(unitsPath, fixtureFset, []*ast.File{ufile}, newInfo())
	if err != nil {
		t.Fatalf("type-check units fixture: %v", err)
	}

	const pkgPath = "fixturemod/internal/power"
	file, err := parser.ParseFile(fixtureFset, pkgPath+"/fixture.go", src,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: unitsImporter{units: upkg}}
	tpkg, err := conf.Check(pkgPath, fixtureFset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	pkg := &Package{Path: pkgPath, Files: []*ast.File{file}, Types: tpkg, Info: info}
	return AnalyzePackages(fixtureFset, nil, []*Package{pkg}, []*Analyzer{UnitsAnalyzer()})
}

// TestUnitsWattVsUtilization is the acceptance fixture: adding a power
// draw to a utilization fraction must be caught even though both are
// float64 at runtime.
func TestUnitsWattVsUtilization(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

type Spec struct {
	PStatic units.Watt
	PDynMax units.Watt
}

func Draw(s Spec, util units.Fraction) units.Watt {
	return s.PStatic + util // adds watts to a utilization
}
`)
	wantFindings(t, got, "units", "unit mismatch: watt + fraction")
}

// TestUnitsPropagation checks that inferred units flow through := chains
// and arithmetic before reaching the offending site.
func TestUnitsPropagation(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

func Mix(freq units.Hertz, resp units.Second) float64 {
	x := freq
	y := x
	return y + resp
}
`)
	wantFindings(t, got, "units", "unit mismatch: hertz + second")
}

// TestUnitsDerived checks the multiplication/division tables: watt·second
// is a joule, hertz·second is CPU work, x/x is a fraction — and the
// derived tags keep propagating.
func TestUnitsDerived(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

func Energy(p units.Watt, dt units.Second) units.Joule {
	return p * dt // ok: watt*second = joule
}

func Work(f units.Hertz, dt units.Second, cap units.Watt) float64 {
	w := f * dt    // ghz-second
	return w + cap // mismatch
}

func Util(used, total units.Hertz) units.Fraction {
	return used / total // ok: hertz/hertz = fraction
}

func AvgPower(e units.Joule, dt units.Second) units.Watt {
	return e / dt // ok: joule/second = watt
}

func Scale(p units.Watt, k units.Fraction) units.Watt {
	return p * k // ok: fraction scales anything
}
`)
	wantFindings(t, got, "units", "unit mismatch: ghz-second + watt")
}

// TestUnitsComparisonAndAccumulate covers ordered comparisons and
// op-assign accumulation across dimensions.
func TestUnitsComparisonAndAccumulate(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

func Check(p units.Watt, slack units.Fraction) bool {
	return p > slack // comparing power to a normalized slack
}

func Acc(total *units.Joule, p units.Watt) {
	*total += p // joules accumulate joules, not watts
}
`)
	wantFindings(t, got, "units",
		"unit mismatch: comparing watt with fraction",
		"unit mismatch: joule-accumulating a watt value")
}

// TestUnitsCallBoundaries covers argument, return, variadic, and append
// checking.
func TestUnitsCallBoundaries(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

func setFreq(f units.Hertz) {}

func Bad(u units.Fraction) {
	setFreq(u) // passes a utilization where a frequency is declared
}

func Sum(ps ...units.Watt) units.Watt {
	var t units.Watt
	for _, p := range ps {
		t += p
	}
	return t
}

func BadVariadic(f units.Hertz) units.Watt {
	return Sum(f) // variadic parameter is watt-tagged
}

func BadReturn(dt units.Second) units.Watt {
	return dt
}

func BadAppend(hist []units.Second, f units.Hertz) []units.Second {
	return append(hist, f)
}
`)
	wantFindings(t, got, "units",
		"argument 1 of setFreq wants hertz, got fraction",
		"argument 1 of Sum wants watt, got hertz",
		"returning second where watt is declared",
		"appending hertz to a second slice")
}

// TestUnitsCompositeAndRange covers struct-literal fields, slice
// literals, and unit flow out of range statements and multi-result
// calls.
func TestUnitsCompositeAndRange(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

type Spec struct {
	MaxFreq units.Hertz
	PStatic units.Watt
}

func Build(p units.Watt) Spec {
	return Spec{MaxFreq: p, PStatic: p} // MaxFreq gets a power
}

func Table(dt units.Second) []units.Hertz {
	return []units.Hertz{1.0, dt} // second element is a duration
}

func twoResults() (units.Watt, units.Second) { return 0, 0 }

func FromCall() units.Hertz {
	p, dt := twoResults()
	_ = dt
	var f units.Hertz
	f = p // watt into a hertz location
	return f
}

func FromRange(hist []units.Second, cap units.Hertz) bool {
	for _, h := range hist {
		if h > cap { // second vs hertz
			return true
		}
	}
	return false
}
`)
	wantFindings(t, got, "units",
		"field MaxFreq wants hertz, got watt",
		"second element in a hertz slice literal",
		"assigning watt to a hertz location",
		"comparing second with hertz")
}

// TestUnitsEscapeHatches: explicit conversions change or strip the tag,
// untyped constants are compatible with everything, and //lint:ignore
// suppresses a justified site.
func TestUnitsEscapeHatches(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

func Convert(x float64, f units.Hertz) units.Watt {
	var p units.Watt
	p = units.Watt(x)       // explicit tag: fine
	p = units.Watt(f)       // explicit conversion at a boundary: fine
	_ = float64(f) + p      // float64() strips the tag: fine
	p = 2.5                 // untyped constant: fine
	return p + 0.1          // untyped constant: fine
}

func Suppressed(f units.Hertz, dt units.Second) float64 {
	//lint:ignore units demand model folds frequency and time deliberately
	return f + dt
}
`)
	wantFindings(t, got, "units")
}

// TestUnitsCleanCode runs dimensionally correct control-loop-shaped code
// and requires zero findings.
func TestUnitsCleanCode(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

type Spec struct {
	MaxFreq units.Hertz
	PStatic units.Watt
	PDynMax units.Watt
}

func Power(s Spec, f units.Hertz, u units.Fraction) units.Watt {
	fr := f / s.MaxFreq
	return s.PStatic + s.PDynMax*fr*fr*fr*u
}

func Meter(p units.Watt, dt units.Second, acc units.Joule) units.Joule {
	acc += p * dt
	return acc
}

func PerVM(e units.Joule, n units.VMCount) float64 {
	return float64(e) / float64(n)
}
`)
	wantFindings(t, got, "units")
}

// TestUnitAlgebra pins the derived-unit tables directly: the fixture
// tests exercise the common paths, this covers every branch including
// the commuted forms and the unknown fallthroughs.
func TestUnitAlgebra(t *testing.T) {
	mul := []struct {
		a, b, want unit
	}{
		{uFraction, uWatt, uWatt},
		{uWatt, uFraction, uWatt},
		{uFraction, uFraction, uFraction},
		{uWatt, uSecond, uJoule},
		{uSecond, uWatt, uJoule},
		{uHertz, uSecond, uGHzSec},
		{uSecond, uHertz, uGHzSec},
		{uWatt, uWatt, uUnknown},
		{uUnknown, uWatt, uUnknown},
		{uJoule, uVM, uUnknown},
	}
	for _, tt := range mul {
		if got := mulUnit(tt.a, tt.b); got != tt.want {
			t.Errorf("mulUnit(%s, %s) = %s, want %s", tt.a, tt.b, got, tt.want)
		}
	}
	div := []struct {
		a, b, want unit
	}{
		{uWatt, uFraction, uWatt},
		{uUnknown, uWatt, uUnknown},
		{uWatt, uUnknown, uUnknown},
		{uWatt, uWatt, uFraction},
		{uJoule, uSecond, uWatt},
		{uJoule, uWatt, uSecond},
		{uGHzSec, uHertz, uSecond},
		{uGHzSec, uSecond, uHertz},
		{uWatt, uHertz, uUnknown},
		{uSecond, uJoule, uUnknown},
	}
	for _, tt := range div {
		if got := divUnit(tt.a, tt.b); got != tt.want {
			t.Errorf("divUnit(%s, %s) = %s, want %s", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestUnitsCopyBuiltin(t *testing.T) {
	got := analyzeUnitsFixture(t, `package power

import "fixturemod/internal/units"

func Mix(dst []units.Watt, src []units.Fraction, same []units.Watt) {
	copy(dst, src)  // fraction into a watt slice
	copy(dst, same) // like into like
}
`)
	wantFindings(t, got, "units",
		"copying fraction into a watt slice")
}
