package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

// All fixture tests share one FileSet and one stdlib source importer:
// importing "fmt" or "sync" from source costs hundreds of milliseconds
// the first time, and the importer memoizes per instance.
var (
	fixtureMu   sync.Mutex
	fixtureFset = token.NewFileSet()
	fixtureStd  = importer.ForCompiler(fixtureFset, "source", nil)
)

// analyzeFixture type-checks src as a single-file package with the given
// import path and runs the analyzer (suppressions included), returning
// the surviving findings.
func analyzeFixture(t *testing.T, pkgPath, src string, a *Analyzer) []Finding {
	t.Helper()
	return analyzeFixtureFile(t, pkgPath, "fixture.go", src, a)
}

// analyzeFixtureFile is analyzeFixture with an explicit file name, for
// rules that key on the file within the package (the wall-clock edge
// exemption matches sampler.go by name).
func analyzeFixtureFile(t *testing.T, pkgPath, filename, src string, a *Analyzer) []Finding {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	file, err := parser.ParseFile(fixtureFset, fmt.Sprintf("%s/%s", pkgPath, filename), src,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: fixtureStd}
	tpkg, err := conf.Check(pkgPath, fixtureFset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	pkg := &Package{Path: pkgPath, Files: []*ast.File{file}, Types: tpkg, Info: info}
	return AnalyzePackages(fixtureFset, nil, []*Package{pkg}, []*Analyzer{a})
}

// wantFindings asserts the number of findings of the analyzer's own rule
// and that each message contains the corresponding substring.
func wantFindings(t *testing.T, got []Finding, rule string, substrings ...string) {
	t.Helper()
	var matched []Finding
	for _, f := range got {
		if f.Rule == rule {
			matched = append(matched, f)
		}
	}
	if len(matched) != len(substrings) {
		t.Fatalf("got %d %s findings, want %d:\n%s", len(matched), rule, len(substrings), renderFindings(got))
	}
	for i, sub := range substrings {
		if !strings.Contains(matched[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, matched[i].Message, sub)
		}
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}
