package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPolicyAnalyzer restricts panic to two sanctioned shapes in
// library code (everything under internal/): functions whose name starts
// with Must/must — the conventional crash-on-error constructors — and
// call sites carrying an explicit //lint:ignore panicpolicy <reason>
// annotation documenting the invariant being asserted. Everything else
// should return an error: a production control loop must degrade, not
// crash.
func PanicPolicyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "panicpolicy",
		Doc: "forbid panic in library code (internal/...) outside Must*/must* helpers; " +
			"return an error, or annotate an invariant check with " +
			"//lint:ignore panicpolicy <reason>",
		Applies: func(pkgPath string) bool { return strings.Contains(pkgPath, "/internal/") },
		Run:     runPanicPolicy,
	}
}

func runPanicPolicy(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || ident.Name != "panic" {
				return true
			}
			if _, ok := p.Pkg.Info.Uses[ident].(*types.Builtin); !ok {
				return true // shadowed panic
			}
			fn := enclosingFuncName(file, call.Pos())
			if strings.HasPrefix(fn, "Must") || strings.HasPrefix(fn, "must") {
				return true
			}
			p.Reportf(call.Pos(), "panic in library code; return an error, or annotate the invariant with //lint:ignore panicpolicy <reason>")
			return true
		})
	}
}
