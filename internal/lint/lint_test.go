package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// Directive handling is shared by all analyzers; exercise the corner
// cases through one of them.
func TestDirectives(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want map[string]int // rule → finding count
	}{
		{
			name: "trailing same-line directive",
			src: `package serve
import "os"
func drop(name string) {
	os.Remove(name) //lint:ignore errcheck best-effort cleanup
}`,
			want: map[string]int{},
		},
		{
			name: "directive without a reason is itself a finding",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore errcheck
	os.Remove(name)
}`,
			want: map[string]int{DirectiveRule: 1, "errcheck": 1},
		},
		{
			name: "directive for a different rule does not suppress",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore floatcompare wrong rule on purpose
	os.Remove(name)
}`,
			want: map[string]int{"errcheck": 1},
		},
		{
			name: "multi-rule directive",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore errcheck,panicpolicy best-effort cleanup
	os.Remove(name)
}`,
			want: map[string]int{},
		},
		{
			name: "directive two lines above does not reach and is reported unused",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore errcheck too far away
	_ = name
	os.Remove(name)
}`,
			want: map[string]int{"errcheck": 1, DirectiveRule: 1},
		},
		{
			name: "unknown rule name is reported",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore errchek typo in the rule name
	os.Remove(name)
}`,
			want: map[string]int{"errcheck": 1, DirectiveRule: 1},
		},
		{
			name: "stacked directives: only the nearest reaches, the outer is unused",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore errcheck stacked and stranded
	//lint:ignore errcheck this one suppresses
	os.Remove(name)
}`,
			want: map[string]int{DirectiveRule: 1},
		},
		{
			name: "directive on a block header does not blanket the body",
			src: `package serve
import "os"
func drop(names []string) {
	//lint:ignore errcheck directives cover lines, not blocks
	for _, n := range names {
		os.Remove(n)
	}
}`,
			want: map[string]int{"errcheck": 1, DirectiveRule: 1},
		},
		{
			name: "one directive covers two findings on its line",
			src: `package serve
import "os"
func drop(a, b string) {
	os.Remove(a); os.Remove(b) //lint:ignore errcheck best-effort cleanup of both
}`,
			want: map[string]int{},
		},
		{
			name: "dormant directive for an analyzer not running is not unused",
			src: `package serve
import "os"
func drop(name string) {
	//lint:ignore floatcompare,errcheck reason spanning two rules
	os.Remove(name)
}`,
			want: map[string]int{},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := analyzeFixture(t, "vdcpower/internal/serve", tt.src, ErrcheckAnalyzer())
			counts := map[string]int{}
			for _, f := range got {
				counts[f.Rule]++
			}
			if len(counts) != len(tt.want) {
				t.Fatalf("rule counts = %v, want %v:\n%s", counts, tt.want, renderFindings(got))
			}
			for rule, n := range tt.want {
				if counts[rule] != n {
					t.Errorf("rule %s: %d findings, want %d", rule, counts[rule], n)
				}
			}
		})
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "errcheck", File: "internal/serve/serve.go", Line: 12, Col: 3, Message: "dropped"}
	want := "internal/serve/serve.go:12:3: errcheck: dropped"
	if f.String() != want {
		t.Fatalf("String() = %q, want %q", f.String(), want)
	}
}

func TestFindingJSONShape(t *testing.T) {
	f := Finding{Rule: "determinism", File: "a.go", Line: 1, Col: 2, Message: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"rule"`, `"file"`, `"line"`, `"col"`, `"message"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON %s lacks %s", b, key)
		}
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	want := []string{
		"determinism", "telemetry", "floatcompare", "goroutine", "panicpolicy",
		"errcheck", "units", "hotalloc", "mutexcopy", "lockorder", "chanleak",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
	}
}

// Findings come back sorted by file, line, column regardless of the
// order analyzers reported them.
func TestFindingsSorted(t *testing.T) {
	src := `package serve
import "os"
func drop(a, b string) {
	os.Remove(b)
	os.Remove(a)
}`
	got := analyzeFixture(t, "vdcpower/internal/serve", src, ErrcheckAnalyzer())
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(got), renderFindings(got))
	}
	if got[0].Line >= got[1].Line {
		t.Fatalf("findings not sorted: %v", got)
	}
}
