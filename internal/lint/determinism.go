package lint

import (
	"go/ast"
	"go/types"
)

// simPackages are the module-relative packages whose results must be
// bit-for-bit reproducible from a seed: the two simulators, the testbed,
// the optimization stack they drive, the fault-injection plane (chaos
// runs must replay exactly from a profile seed), the benchmark
// harness (whose statistics and compare verdicts must replay from
// recorded samples; only its registered sampler edge may read time),
// and the trace-replay engine (same-seed replays must be byte-identical;
// only its registered pacer edge may read time).
var simPackages = []string{
	"internal/dcsim",
	"internal/appsim",
	"internal/testbed",
	"internal/optimizer",
	"internal/packing",
	"internal/queueing",
	"internal/fault",
	"internal/bench",
	"internal/trace",
}

// bannedTimeFuncs read the wall clock, which differs between runs.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// allowedRandFuncs are the math/rand constructors that build an explicit
// seeded source; every other package-level rand function draws from the
// unseeded global source and is banned.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// DeterminismAnalyzer enforces seed-reproducibility in simulation
// packages: no wall-clock reads (time.Now/Since/Until) and no global
// math/rand — all randomness must flow through a seeded *rand.Rand.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "forbid time.Now/Since/Until and global math/rand in simulation packages " +
			"(dcsim, appsim, testbed, optimizer, packing, queueing, fault, bench); randomness " +
			"must flow through a seeded *rand.Rand so runs reproduce bit-for-bit from a seed; " +
			"clock reads are allowed only in a package's registered wall-clock edge file " +
			"(bench: sampler.go)",
		Applies: func(pkgPath string) bool { return pathHasSuffix(pkgPath, simPackages) },
		Run:     runDeterminism,
	}
}

func runDeterminism(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods like (*rand.Rand).Float64 are the approved path
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] && !atWallClockEdge(p, sel.Pos()) {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation results must depend only on the seed", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					p.Reportf(sel.Pos(), "rand.%s draws from the global source; use a seeded *rand.Rand instead", fn.Name())
				}
			}
			return true
		})
	}
}
