package lint

import "testing"

func TestPanicPolicy(t *testing.T) {
	tests := []struct {
		name    string
		pkgPath string
		src     string
		want    []string
	}{
		{
			name:    "bare panic in library code",
			pkgPath: "vdcpower/internal/mat",
			src: `package mat
func Dot(v, w []float64) float64 {
	if len(v) != len(w) {
		panic("mat: length mismatch")
	}
	return 0
}`,
			want: []string{"panic in library code"},
		},
		{
			name:    "Must helper is the sanctioned shape",
			pkgPath: "vdcpower/internal/workload",
			src: `package workload
import "fmt"
func MustParse(s string) int {
	if s == "" {
		panic(fmt.Sprintf("workload: empty input"))
	}
	return len(s)
}`,
			want: nil,
		},
		{
			name:    "annotated invariant is allowed",
			pkgPath: "vdcpower/internal/devs",
			src: `package devs
func schedule(at, now float64) {
	if at < now {
		//lint:ignore panicpolicy scheduling in the past is a simulator bug, not an input error
		panic("devs: scheduling event in the past")
	}
}`,
			want: nil,
		},
		{
			name:    "cmd packages are outside the policy",
			pkgPath: "vdcpower/cmd/dcsim",
			src: `package main
func main() { panic("boom") }`,
			want: nil,
		},
		{
			name:    "shadowed panic is not the builtin",
			pkgPath: "vdcpower/internal/stats",
			src: `package stats
func panic(s string) {}
func touch() { panic("fine") }`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := analyzeFixture(t, tt.pkgPath, tt.src, PanicPolicyAnalyzer())
			wantFindings(t, got, "panicpolicy", tt.want...)
		})
	}
}
