package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// HotallocAnalyzer flags heap allocations inside declared hot paths.
// A hot path is rooted at a function whose doc comment carries
//
//	//vdc:hotpath <scenario>
//
// where <scenario> names the vdcbench scenario whose allocs/op the code
// dominates. Inside a root, the hot region is every loop body (one-time
// setup before the loop is exempt); any package-local function called
// from a hot region is hot over its whole body, transitively — which
// also makes a recursive root hot everywhere. Findings name the
// scenario so a hit can be reproduced with vdcbench run.
//
// Flagged allocation sites: make(map/slice/chan), map/slice composite
// literals, &composite literals, new(), growing append, function
// literals (closure capture), fmt calls, and interface boxing at call
// arguments. Preallocate outside the loop, reuse scratch buffers, or
// suppress with //lint:ignore hotalloc <reason> when the allocation is
// deliberate.
func HotallocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "no heap allocations inside declared //vdc:hotpath regions: " +
			"make, map/slice/&composite literals, new, growing append, closures, " +
			"fmt, and interface boxing are flagged with the owning vdcbench " +
			"scenario; hoist the allocation or annotate why it must stay",
		Run: runHotalloc,
	}
}

// hotpathRe parses the root annotation. The scenario grammar mirrors
// internal/bench's scenarioNameRe.
var (
	hotpathRe      = regexp.MustCompile(`^//vdc:hotpath(?:\s+(.*?))?\s*$`)
	hotScenarioRe  = regexp.MustCompile(`^[a-z0-9]+(?:[-.][a-z0-9]+)*(?:/[a-z0-9]+(?:[-.][a-z0-9]+)*)*$`)
	hotpathComment = "//vdc:hotpath"
)

// hotRoot is one annotated function.
type hotRoot struct {
	decl     *ast.FuncDecl
	scenario string
}

func runHotalloc(p *Pass) {
	roots := collectHotRoots(p)
	if len(roots) == 0 {
		return
	}
	decls := funcDecls(p.Pkg)

	// Transitive closure: functions whose whole body is hot because they
	// are called from a hot region. Seed from calls inside root loops,
	// then saturate over whole-hot bodies. Attribution is first-wins in
	// root source order, which is deterministic.
	wholeHot := map[*types.Func]string{}
	var frontier []*types.Func
	absorb := func(fn *types.Func, scenario string) {
		if fn == nil || wholeHot[fn] != "" {
			return
		}
		if _, local := decls[fn]; !local {
			return
		}
		wholeHot[fn] = scenario
		frontier = append(frontier, fn)
	}
	for _, r := range roots {
		walkHotRegions(r.decl.Body, false, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				absorb(calleeFunc(p.Pkg.Info, call), r.scenario)
			}
		})
	}
	for len(frontier) > 0 {
		fn := frontier[0]
		frontier = frontier[1:]
		scenario := wholeHot[fn]
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				absorb(calleeFunc(p.Pkg.Info, call), scenario)
			}
			return true
		})
	}

	// Report pass. Whole-hot functions are checked everywhere; roots
	// that are not themselves whole-hot (e.g. via recursion) only inside
	// their loops. Allocations on aborting paths (panic messages,
	// error-typed return results) are steady-state-free and exempt.
	report := func(decl *ast.FuncDecl, wholeBody bool, scenario string) {
		cold := coldRanges(p.Pkg.Info, decl.Body)
		walkHotRegions(decl.Body, wholeBody, func(n ast.Node) {
			if inColdRange(cold, n.Pos()) {
				return
			}
			reportHotNode(p, n, scenario)
		})
	}
	reported := map[*ast.FuncDecl]bool{}
	for fn, decl := range decls {
		scenario, whole := wholeHot[fn]
		if !whole {
			continue
		}
		reported[decl] = true
		report(decl, true, scenario)
	}
	for _, r := range roots {
		if reported[r.decl] {
			continue
		}
		report(r.decl, false, r.scenario)
	}
}

// coldRanges collects source ranges whose allocations do not count as
// hot: the arguments of panic calls and error-typed results of return
// statements. Both only execute on a path that abandons the hot loop,
// so their cost never shows up in a steady-state allocs/op profile.
func coldRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	errType := types.Universe.Lookup("error").Type()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					out = append(out, [2]token.Pos{n.Lparen, n.Rparen})
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if tv, ok := info.Types[r]; ok && tv.Type != nil && types.Identical(tv.Type, errType) {
					out = append(out, [2]token.Pos{r.Pos(), r.End()})
				}
			}
		}
		return true
	})
	return out
}

// isReusedSlice recognizes the x[:0] reuse idiom: appending to a
// zero-length reslice of an existing buffer grows into its retained
// capacity, so steady-state iterations allocate nothing.
func isReusedSlice(e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.Slice3 {
		return false
	}
	if se.Low != nil {
		lo, ok := ast.Unparen(se.Low).(*ast.BasicLit)
		if !ok || lo.Value != "0" {
			return false
		}
	}
	hi, ok := ast.Unparen(se.High).(*ast.BasicLit)
	return ok && hi.Value == "0"
}

// inColdRange reports whether pos falls inside any collected range.
func inColdRange(cold [][2]token.Pos, pos token.Pos) bool {
	for _, r := range cold {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

// collectHotRoots finds //vdc:hotpath-annotated functions and reports
// malformed annotations. Roots come back in source order.
func collectHotRoots(p *Pass) []hotRoot {
	var roots []hotRoot
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := hotpathRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if m[1] == "" || !hotScenarioRe.MatchString(m[1]) {
					p.Reportf(c.Pos(), "malformed %s annotation: want %s <vdcbench-scenario> (lowercase slug segments, e.g. mpc/solve)", hotpathComment, hotpathComment)
					continue
				}
				roots = append(roots, hotRoot{decl: fd, scenario: m[1]})
			}
		}
	}
	return roots
}

// walkHotRegions visits the nodes of body that execute per iteration:
// every node when wholeBody is set, otherwise only nodes inside a
// for/range loop. Function-literal bodies are visited (a closure inside
// a hot loop runs in the loop), but the callback decides what to flag.
func walkHotRegions(body *ast.BlockStmt, wholeBody bool, visit func(ast.Node)) {
	depth := 0
	if wholeBody {
		depth = 1
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil && depth > 0 {
				ast.Inspect(n.Init, func(m ast.Node) bool {
					if m != nil {
						visit(m)
					}
					return true
				})
			}
			if n.Cond != nil {
				// The condition re-evaluates per iteration even at the
				// outermost loop.
				depth++
				ast.Inspect(n.Cond, func(m ast.Node) bool {
					if m != nil {
						visit(m)
					}
					return true
				})
				depth--
			}
			depth++
			if n.Post != nil {
				ast.Inspect(n.Post, func(m ast.Node) bool {
					if m != nil {
						visit(m)
					}
					return true
				})
			}
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case *ast.RangeStmt:
			if depth > 0 {
				ast.Inspect(n.X, func(m ast.Node) bool {
					if m != nil {
						visit(m)
					}
					return true
				})
			}
			depth++
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case nil:
			return true
		}
		if depth > 0 {
			visit(n)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// reportHotNode flags n when it is an allocation site.
func reportHotNode(p *Pass, n ast.Node, scenario string) {
	info := p.Pkg.Info
	at := func(pos token.Pos, format string, args ...any) {
		args = append(args, scenario)
		p.Reportf(pos, format+" in a hot path (vdcbench scenario %s); hoist it out of the loop, reuse a scratch buffer, or annotate why it must stay", args...)
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		at(n.Pos(), "function literal allocates a closure")
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				at(n.Pos(), "&composite literal allocates")
			}
		}
	case *ast.CompositeLit:
		tv, ok := info.Types[n]
		if !ok || tv.Type == nil {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			at(n.Pos(), "map literal allocates")
		case *types.Slice:
			at(n.Pos(), "slice literal allocates")
		}
	case *ast.CallExpr:
		switch builtinName(info, n) {
		case "make":
			at(n.Pos(), "make allocates")
			return
		case "append":
			if len(n.Args) > 0 && isReusedSlice(n.Args[0]) {
				return // append(x[:0], ...) reuses x's backing array
			}
			at(n.Pos(), "append may grow its backing array")
			return
		case "new":
			at(n.Pos(), "new allocates")
			return
		case "":
		default:
			return
		}
		if conversionType(info, n) != nil {
			return
		}
		if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			at(n.Pos(), "fmt.%s formats through interfaces and allocates", fn.Name())
			return
		}
		reportBoxing(p, n, at)
	}
}

// reportBoxing flags call arguments whose concrete value is passed to an
// interface-typed parameter — each such pass boxes on the heap unless
// the value is already an interface or a constant nil.
func reportBoxing(p *Pass, call *ast.CallExpr, at func(token.Pos, string, ...any)) {
	info := p.Pkg.Info
	sig := signatureOf(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
			continue
		}
		if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		at(arg.Pos(), "argument boxes a concrete value into an interface")
	}
}
