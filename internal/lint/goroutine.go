package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer enforces the join discipline of dcsim/parallel.go:
// every goroutine must visibly signal completion — a sync.WaitGroup.Done,
// a channel send, or a channel close — so callers can wait for it and no
// goroutine outlives the work that spawned it (a leak under -race and a
// nondeterminism hazard when the leaked goroutine still touches state).
func GoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine",
		Doc: "every go statement must be tied to a join: the goroutine body signals " +
			"completion via (*sync.WaitGroup).Done, a channel send, or close()",
		Run: runGoroutine,
	}
}

func runGoroutine(p *Pass) {
	decls := funcBodies(p.Pkg)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if fn := calleeFunc(p.Pkg.Info, g.Call); fn != nil {
					body = decls[fn]
				}
			}
			if body == nil {
				p.Reportf(g.Pos(), "goroutine runs a function defined outside this package; cannot verify it joins — wrap it in a func literal with a WaitGroup or done channel")
				return true
			}
			if !hasJoinSignal(p.Pkg.Info, body) {
				p.Reportf(g.Pos(), "goroutine has no join signal (WaitGroup.Done, channel send, or close); tie it to a WaitGroup or done channel so callers can wait for it")
			}
			return true
		})
	}
}

// funcBodies maps each function object declared in the package to its
// body, so `go name()` can be verified like a literal.
func funcBodies(pkg *Package) map[*types.Func]*ast.BlockStmt {
	out := map[*types.Func]*ast.BlockStmt{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd.Body
			}
		}
	}
	return out
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hasJoinSignal reports whether the body contains a completion signal:
// a (*sync.WaitGroup).Done call, a channel send, or a close().
func hasJoinSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if obj, ok := info.Uses[fun].(*types.Builtin); ok && obj.Name() == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok &&
					fn.FullName() == "(*sync.WaitGroup).Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
