package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module loads and memoizes the packages of a single Go module. Standard
// library imports are resolved through the source importer, so the
// loader needs nothing beyond GOROOT — no build cache, no export data,
// no external tooling.
type Module struct {
	Root    string // absolute module root (directory of go.mod)
	ModPath string // module path from go.mod
	Fset    *token.FileSet

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

var modPathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule prepares a loader rooted at the module containing dir.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := modPathRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Module{
		Root:    root,
		ModPath: string(m[1]),
		Fset:    fset,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		std:     importer.ForCompiler(fset, "source", nil),
	}, nil
}

// rel maps an absolute file name to a module-root-relative path.
func (m *Module) rel(filename string) string {
	if r, err := filepath.Rel(m.Root, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filename
}

// Load resolves the ./...-style patterns (relative to the module root)
// to type-checked packages, sorted by import path. Test files are not
// loaded: the analyzers enforce invariants on the code under test.
func (m *Module) Load(patterns ...string) ([]*Package, error) {
	dirs, err := m.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := m.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Analyze runs the analyzers over pkgs with module-relative positions.
func (m *Module) Analyze(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return AnalyzePackages(m.Fset, m.rel, pkgs, analyzers)
}

// matchDirs expands patterns like ".", "./...", "./internal/mpc",
// "./cmd/..." into the set of module directories that contain non-test
// Go files.
func (m *Module) matchDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(m.Root, filepath.FromSlash(pat))
		info, err := os.Stat(base)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q does not match a directory under %s", pat, m.Root)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// loadDir type-checks the package in dir (memoized by import path).
func (m *Module) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	path := m.ModPath
	if rel != "." {
		path = m.ModPath + "/" + filepath.ToSlash(rel)
	}
	return m.loadPath(path)
}

// loadPath type-checks the module package with the given import path.
func (m *Module) loadPath(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	dir := m.Root
	if path != m.ModPath {
		dir = filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(path, m.ModPath+"/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if isSourceFile(e) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !fileIncluded(f) {
			continue // excluded by its build constraint (e.g. //go:build race)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: every Go file in %s is excluded by build constraints", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: importerFunc(m.importPkg)}
	tpkg, err := conf.Check(path, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	m.pkgs[path] = pkg
	return pkg, nil
}

// fileIncluded reports whether the file participates in the default
// build configuration (no -tags, the host GOOS/GOARCH): files excluded
// by a //go:build line — like the race-detector half of a build-tag pair
// — must not be type-checked into the same package as their counterpart.
func fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(buildTagSatisfied)
		}
	}
	return true
}

// buildTagSatisfied evaluates one build tag the way `go build` does with
// an empty -tags list on the host platform and a current toolchain.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// importPkg resolves imports during type checking: module-internal paths
// recurse through the loader, everything else goes to the stdlib source
// importer.
func (m *Module) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.ModPath || strings.HasPrefix(path, m.ModPath+"/") {
		pkg, err := m.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
