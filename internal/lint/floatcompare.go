package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// epsilonHelperPackages are the packages allowed to define the approved
// epsilon-comparison helpers; raw == inside a helper there is the
// implementation, not a bug.
var epsilonHelperPackages = []string{
	"internal/mat",
	"internal/mpc",
	"internal/stats",
	"internal/sysid",
}

// epsilonHelperRe matches the naming convention for approved helpers:
// Equal, AlmostEqual, ApproxEqual, EqualWithin, almostEqual, ...
var epsilonHelperRe = regexp.MustCompile(`^(Almost|Approx|almost|approx)?[Ee]qual`)

// FloatCompareAnalyzer flags == and != between floating-point operands.
// Accumulated rounding error makes exact float equality order-sensitive,
// which breaks run-to-run reproducibility the moment evaluation order
// changes (e.g. the parallel Fig6 sweep); comparisons belong in epsilon
// helpers, or carry a //lint:ignore floatcompare justification when the
// exact bit pattern is genuinely intended (sentinel zeros, NaN checks).
func FloatCompareAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floatcompare",
		Doc: "forbid ==/!= on floating-point operands outside approved epsilon helpers " +
			"in mat, mpc, stats, sysid; use an epsilon comparison or annotate the " +
			"deliberate exact comparison",
		Run: runFloatCompare,
	}
}

func runFloatCompare(p *Pass) {
	inHelperPkg := pathHasSuffix(p.Pkg.Path, epsilonHelperPackages)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := p.Pkg.Info.Types[be.X]
			ty := p.Pkg.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded at compile time, exact by definition
			}
			if inHelperPkg && epsilonHelperRe.MatchString(enclosingFuncName(file, be.OpPos)) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon helper or annotate the deliberate exact comparison", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
