package obs

import (
	"testing"

	"vdcpower/internal/race"
)

// requireZeroAllocs runs fn through testing.AllocsPerRun after a short
// warm-up and fails if steady-state observation touches the heap — the
// PR 7 hot-path discipline applied to the obs layer.
func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation gate not meaningful under -race")
	}
	for i := 0; i < 5; i++ {
		fn()
	}
	if avg := testing.AllocsPerRun(200, fn); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

func TestSketchObserveZeroAlloc(t *testing.T) {
	s := NewSketch()
	v := 0.001
	requireZeroAllocs(t, "Sketch.Observe", func() {
		s.Observe(v)
		v *= 1.0001
	})
}

func TestSketchMergeZeroAlloc(t *testing.T) {
	dst, src := NewSketch(), NewSketch()
	for i := 0; i < 100; i++ {
		src.Observe(float64(i + 1))
	}
	requireZeroAllocs(t, "Sketch.Merge", func() { dst.Merge(src) })
}

func TestSLOObserveZeroAlloc(t *testing.T) {
	s := newSLO(1, 0.1, 12, 96)
	i := 0
	requireZeroAllocs(t, "SLO.Observe", func() {
		s.Observe(i%7 != 0)
		i++
	})
}

func TestAuditRecordZeroAlloc(t *testing.T) {
	a := newAudit(16)
	// Fill the ring first: steady state is slot reuse, not append growth.
	for i := 0; i < 16; i++ {
		a.Record(Decision{Component: "x", Action: "y", Reason: "z"})
	}
	d := Decision{Step: 1, Component: "pac", Action: "server-off", Reason: "packed"}
	requireZeroAllocs(t, "Audit.Record", func() { a.Record(d) })
}

func TestScorecardHotPathsZeroAlloc(t *testing.T) {
	s := New(Config{})
	app := s.RegisterApp("app", 1.0)
	i := 0
	requireZeroAllocs(t, "Scorecard hot updates", func() {
		s.ObserveStep()
		s.ObserveResponse(app, 0.5+0.001*float64(i%100))
		s.ObserveSLO(i%11 != 0)
		s.ObservePower(900 + float64(i%13))
		s.RecordControl(i%9 == 0, false, false, i%9)
		s.ObserveResidual(0.01 * float64(i%5))
		i++
	})
}
