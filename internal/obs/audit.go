package obs

// Decision is one entry of the audit ring: a "PAC turned server k off
// because its load was packed away" grade record. Component names the
// deciding loop (a consolidation policy, "watchdog", "controller",
// "serve"), Span links the record to the telemetry span under which the
// decision was traced (same name, same Step → the Chrome-trace view and
// the audit log cross-reference), and TimeSec is logical sim time, so
// same-seed runs audit identically.
type Decision struct {
	Seq       uint64  `json:"seq"`
	Step      int     `json:"step"`
	TimeSec   float64 `json:"time_sec"`
	Component string  `json:"component"`
	Action    string  `json:"action"`
	Target    string  `json:"target,omitempty"`
	Reason    string  `json:"reason"`
	Value     float64 `json:"value,omitempty"`
	Span      string  `json:"span,omitempty"`
}

// Audit is a bounded ring of decisions: the newest records are kept,
// older ones are counted as dropped. Record reuses ring slots, so
// steady-state auditing does not allocate. A nil *Audit is a valid
// disabled instrument.
type Audit struct {
	ring    []Decision // grows to capacity once, then slots are reused
	head    int        // index of the oldest record once the ring is full
	seq     uint64     // next sequence number
	evicted uint64
}

// newAudit returns an empty ring with the given capacity (min 1).
func newAudit(capacity int) *Audit {
	if capacity < 1 {
		capacity = 1
	}
	return &Audit{ring: make([]Decision, 0, capacity)}
}

// Record appends one decision, assigning its sequence number and
// evicting the oldest record once the ring is full.
func (a *Audit) Record(d Decision) {
	if a == nil {
		return
	}
	d.Seq = a.seq
	a.seq++
	if len(a.ring) < cap(a.ring) {
		a.ring = append(a.ring, d)
		return
	}
	a.ring[a.head] = d
	a.head++
	if a.head == cap(a.ring) {
		a.head = 0
	}
	a.evicted++
}

// Len is the number of records currently held.
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	return len(a.ring)
}

// Dropped is the number of records evicted by the bound.
func (a *Audit) Dropped() uint64 {
	if a == nil {
		return 0
	}
	return a.evicted
}

// Records returns the held decisions in sequence order (a copy).
func (a *Audit) Records() []Decision {
	if a == nil || len(a.ring) == 0 {
		return nil
	}
	out := make([]Decision, len(a.ring))
	n := copy(out, a.ring[a.head:])
	copy(out[n:], a.ring[:a.head])
	return out
}

// merge re-records o's decisions into a in o's chronological order
// (their sequence numbers are reassigned in a's space); decisions o had
// already evicted stay counted as dropped.
func (a *Audit) merge(o *Audit) {
	if a == nil || o == nil {
		return
	}
	for _, d := range o.Records() {
		a.Record(d)
	}
	a.evicted += o.evicted
}

// AuditReport is the JSON form of the ring.
type AuditReport struct {
	Dropped uint64     `json:"dropped"`
	Records []Decision `json:"records"`
}

func (a *Audit) report() AuditReport {
	recs := a.Records()
	if recs == nil {
		recs = []Decision{} // render as [], not null
	}
	return AuditReport{Dropped: a.Dropped(), Records: recs}
}
