package obs

import (
	"math"
	"math/rand"
	"testing"
)

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.Count() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatalf("empty sketch not all-zero: count=%d min=%v max=%v mean=%v",
			s.Count(), s.Min(), s.Max(), s.Mean())
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if sum := s.Summary(); sum != (SketchSummary{}) {
		t.Fatalf("empty summary = %+v, want zero", sum)
	}
}

func TestSketchNilSafe(t *testing.T) {
	var s *Sketch
	s.Observe(1)
	s.Merge(NewSketch())
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("nil sketch should answer zeros")
	}
	_ = s.Summary()
}

func TestSketchIgnoresNonFinite(t *testing.T) {
	s := NewSketch()
	s.Observe(math.NaN())
	s.Observe(math.Inf(1))
	s.Observe(math.Inf(-1))
	if s.Count() != 0 {
		t.Fatalf("non-finite values counted: %d", s.Count())
	}
}

func TestSketchRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewSketch()
	vals := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over the sketch's core range.
		v := math.Exp(rng.Float64()*20 - 10) // e^-10 .. e^10
		s.Observe(v)
		vals = append(vals, v)
	}
	sortFloats(vals)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		exact := vals[rank]
		got := s.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > sketchAlpha {
			t.Errorf("q=%v: got %v, exact %v, rel err %v > %v", q, got, exact, rel, sketchAlpha)
		}
	}
	if s.Quantile(0) != vals[0] || s.Quantile(1) != vals[len(vals)-1] {
		t.Error("extreme quantiles should be exact min/max")
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestSketchUnderflowOverflow(t *testing.T) {
	s := NewSketch()
	s.Observe(0)
	s.Observe(-5)
	s.Observe(1e-9)
	s.Observe(1e9) // beyond the log range -> overflow bucket
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	if s.Min() != -5 || s.Max() != 1e9 {
		t.Fatalf("min/max = %v/%v, want -5/1e9", s.Min(), s.Max())
	}
	// Underflow answers min, overflow answers max — tails stay honest.
	if q := s.Quantile(0.99); q != 1e9 {
		t.Fatalf("overflow quantile = %v, want 1e9", q)
	}
	if q := s.Quantile(0.01); q != -5 {
		t.Fatalf("underflow quantile = %v, want -5", q)
	}
}

func TestSketchMergeEqualsSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	single := NewSketch()
	shards := []*Sketch{NewSketch(), NewSketch(), NewSketch()}
	for i := 0; i < 3000; i++ {
		v := rng.ExpFloat64()
		single.Observe(v)
		shards[i%3].Observe(v)
	}
	merged := NewSketch()
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if *merged != *single {
		t.Fatal("merged shards != single-stream sketch (state should be bit-identical)")
	}
}

func TestSketchMergeCommutativeAssociative(t *testing.T) {
	mk := func(seed int64) *Sketch {
		rng := rand.New(rand.NewSource(seed))
		s := NewSketch()
		for i := 0; i < 500; i++ {
			s.Observe(rng.ExpFloat64())
		}
		return s
	}
	a, b, c := mk(1), mk(2), mk(3)

	ab := NewSketch()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewSketch()
	ba.Merge(b)
	ba.Merge(a)
	if *ab != *ba {
		t.Fatal("merge not commutative")
	}

	abC := NewSketch()
	abC.Merge(ab)
	abC.Merge(c)
	bc := NewSketch()
	bc.Merge(b)
	bc.Merge(c)
	aBC := NewSketch()
	aBC.Merge(a)
	aBC.Merge(bc)
	if *abC != *aBC {
		t.Fatal("merge not associative")
	}
}

func TestSketchMergeEmptyNoOp(t *testing.T) {
	s := NewSketch()
	s.Observe(2)
	before := *s
	s.Merge(nil)
	s.Merge(NewSketch())
	if *s != before {
		t.Fatal("merging nil/empty changed the sketch")
	}
}

func TestSketchReset(t *testing.T) {
	s := NewSketch()
	s.Observe(1)
	s.Observe(2)
	s.Reset()
	if *s != *NewSketch() {
		t.Fatal("reset sketch != fresh sketch")
	}
}

func TestSketchMeanReasonable(t *testing.T) {
	s := NewSketch()
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	exact := 50.5
	if rel := math.Abs(s.Mean()-exact) / exact; rel > sketchAlpha {
		t.Fatalf("mean %v vs exact %v, rel err %v", s.Mean(), exact, rel)
	}
}
