package obs

import "fmt"

// ReplayDistortion is one pipeline layer of a trace replay's
// provenance: which distortion ran, with which parameters, and how many
// records it touched. The types mirror internal/trace's stats without
// importing it — obs stays a leaf package.
type ReplayDistortion struct {
	Name      string `json:"name"`
	Params    string `json:"params,omitempty"`
	Distorted int    `json:"distorted"`
}

// ReplayProvenance records where a replayed workload came from and
// exactly how it was distorted, so a scorecard produced from a replay
// carries enough to reproduce the input bit for bit.
type ReplayProvenance struct {
	Source      string             `json:"source"`
	Seed        int64              `json:"seed"`
	Records     int                `json:"records"`
	Distorted   int                `json:"distorted"`
	Distortions []ReplayDistortion `json:"distortions,omitempty"`
}

// clone deep-copies p so the scorecard owns its provenance.
func (p *ReplayProvenance) clone() *ReplayProvenance {
	if p == nil {
		return nil
	}
	out := *p
	out.Distortions = append([]ReplayDistortion(nil), p.Distortions...)
	return &out
}

// SetProvenance attaches replay provenance to the scorecard (nil-safe,
// single-writer like every other recorder; a later call overwrites).
func (s *Scorecard) SetProvenance(p *ReplayProvenance) {
	if s == nil {
		return
	}
	s.replay = p.clone()
}

// mergeReplay folds two provenances: an empty side adopts the other;
// same source and seed sum their record counts (per-worker shards of
// one replay); different sources cannot be combined.
func mergeReplay(a, b *ReplayProvenance) (*ReplayProvenance, error) {
	if b == nil {
		return a, nil
	}
	if a == nil {
		return b.clone(), nil
	}
	if a.Source != b.Source || a.Seed != b.Seed {
		return nil, fmt.Errorf("obs: merging scorecards with different replay provenance (%s seed %d vs %s seed %d)",
			a.Source, a.Seed, b.Source, b.Seed)
	}
	if len(a.Distortions) != len(b.Distortions) {
		return nil, fmt.Errorf("obs: merging replay provenances with %d vs %d distortions", len(a.Distortions), len(b.Distortions))
	}
	a.Records += b.Records
	a.Distorted += b.Distorted
	for i := range b.Distortions {
		if a.Distortions[i].Name != b.Distortions[i].Name {
			return nil, fmt.Errorf("obs: replay distortion %d is %q on one side, %q on the other",
				i, a.Distortions[i].Name, b.Distortions[i].Name)
		}
		a.Distortions[i].Distorted += b.Distortions[i].Distorted
	}
	return a, nil
}
