package obs

// SLO burn-rate accounting in the multi-window style of SRE error-budget
// alerting: every control step classifies as good (the paper's contract
// R̄ ≤ R_ref held) or bad, the total bad fraction is compared against the
// error budget, and two sliding windows — a fast one that reacts within
// minutes of sim time and a slow one that confirms a sustained burn —
// report how many times faster than "exactly exhausting the budget" the
// loop is currently consuming it. A burn rate of 1.0 in both windows
// means the budget runs out exactly at the horizon; above 1 in both
// means the SLO is at risk even though the cumulative budget may still
// be positive.

// Verdict strings for SLOState.Verdict.
const (
	VerdictNoData   = "no-data"  // nothing observed yet
	VerdictMet      = "met"      // cumulative bad fraction within budget, no active burn
	VerdictAtRisk   = "at-risk"  // budget not yet blown, but both windows burn at ≥ 1×
	VerdictViolated = "violated" // cumulative bad fraction exceeds the budget
)

// burnWindow is a sliding window of good/bad events. Live observation
// uses a preallocated ring; Merge folds another window's tallies into
// the aggregate counters (the union of two runs' final windows), which
// keeps merging exactly commutative and associative.
type burnWindow struct {
	bad     []bool // ring of recent event badness
	head    int
	seen    int // events currently in the ring
	badN    int // bad events currently in the ring
	aggBad  int // merged-in bad tallies
	aggSeen int // merged-in event tallies
}

func newBurnWindow(size int) burnWindow {
	return burnWindow{bad: make([]bool, size)}
}

// observe pushes one event, evicting the oldest once full. Zero-alloc.
func (w *burnWindow) observe(good bool) {
	if w.seen == len(w.bad) {
		if w.bad[w.head] {
			w.badN--
		}
	} else {
		w.seen++
	}
	w.bad[w.head] = !good
	if !good {
		w.badN++
	}
	w.head++
	if w.head == len(w.bad) {
		w.head = 0
	}
}

// badFraction is the window's bad-event fraction, including merged-in
// tallies; 0 while empty.
func (w *burnWindow) badFraction() float64 {
	n := w.seen + w.aggSeen
	if n == 0 {
		return 0
	}
	return float64(w.badN+w.aggBad) / float64(n)
}

// merge folds o's window (ring plus aggregates) into w's aggregates.
func (w *burnWindow) merge(o *burnWindow) {
	w.aggBad += o.badN + o.aggBad
	w.aggSeen += o.seen + o.aggSeen
}

// SLO tracks one service-level objective: a cumulative good/bad count
// plus the fast and slow burn windows. Construct via newSLO (Scorecard
// does); methods are nil-safe.
type SLO struct {
	target float64 // R_ref in seconds; 0 when the objective is not a response time
	budget float64 // allowed bad-event fraction, in (0, 1]
	good   uint64
	bad    uint64
	fast   burnWindow
	slow   burnWindow
}

func newSLO(target, budget float64, fastWindow, slowWindow int) *SLO {
	return &SLO{
		target: target,
		budget: budget,
		fast:   newBurnWindow(fastWindow),
		slow:   newBurnWindow(slowWindow),
	}
}

// Observe classifies one step or sample. Zero-alloc.
//
//vdc:hotpath fig6/obs-on
func (s *SLO) Observe(good bool) {
	if s == nil {
		return
	}
	if good {
		s.good++
	} else {
		s.bad++
	}
	s.fast.observe(good)
	s.slow.observe(good)
}

// badFraction is the cumulative bad-event fraction.
func (s *SLO) badFraction() float64 {
	n := s.good + s.bad
	if n == 0 {
		return 0
	}
	return float64(s.bad) / float64(n)
}

// BurnFast is the fast-window burn rate: the window's bad fraction
// divided by the budget. 1.0 means the budget is being consumed exactly
// at the sustainable rate.
func (s *SLO) BurnFast() float64 {
	if s == nil {
		return 0
	}
	return s.fast.badFraction() / s.budget
}

// BurnSlow is the slow-window burn rate.
func (s *SLO) BurnSlow() float64 {
	if s == nil {
		return 0
	}
	return s.slow.badFraction() / s.budget
}

// BudgetRemaining is the unburned fraction of the error budget, clamped
// to [0, 1]: 1 with no bad events, 0 once the cumulative bad fraction
// reaches the budget.
func (s *SLO) BudgetRemaining() float64 {
	if s == nil {
		return 0
	}
	rem := 1 - s.badFraction()/s.budget
	if rem < 0 {
		return 0
	}
	return rem
}

// Verdict is the run-end classification: violated when the cumulative
// bad fraction exceeds the budget, at-risk when both windows burn at
// ≥ 1× (the multi-window page condition), met otherwise.
func (s *SLO) Verdict() string {
	if s == nil || s.good+s.bad == 0 {
		return VerdictNoData
	}
	switch {
	case s.badFraction() > s.budget:
		return VerdictViolated
	case s.BurnFast() >= 1 && s.BurnSlow() >= 1:
		return VerdictAtRisk
	default:
		return VerdictMet
	}
}

// merge folds o into s (same budget/windows — Scorecard.Merge checks).
func (s *SLO) merge(o *SLO) {
	s.good += o.good
	s.bad += o.bad
	s.fast.merge(&o.fast)
	s.slow.merge(&o.slow)
}

// SLOReport is the JSON form of the objective's state.
type SLOReport struct {
	TargetSec       float64 `json:"target_sec"`
	Budget          float64 `json:"budget"`
	Good            uint64  `json:"good"`
	Bad             uint64  `json:"bad"`
	BadFraction     float64 `json:"bad_fraction"`
	FastWindow      int     `json:"fast_window"`
	SlowWindow      int     `json:"slow_window"`
	BurnFast        float64 `json:"burn_fast"`
	BurnSlow        float64 `json:"burn_slow"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Verdict         string  `json:"verdict"`
}

func (s *SLO) report() SLOReport {
	return SLOReport{
		TargetSec:       s.target,
		Budget:          s.budget,
		Good:            s.good,
		Bad:             s.bad,
		BadFraction:     s.badFraction(),
		FastWindow:      len(s.fast.bad),
		SlowWindow:      len(s.slow.bad),
		BurnFast:        s.BurnFast(),
		BurnSlow:        s.BurnSlow(),
		BudgetRemaining: s.BudgetRemaining(),
		Verdict:         s.Verdict(),
	}
}
