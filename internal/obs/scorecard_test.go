package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSLOVerdicts(t *testing.T) {
	s := newSLO(0.1, 0.1, 4, 8)
	if s.Verdict() != VerdictNoData {
		t.Fatalf("empty verdict = %q", s.Verdict())
	}
	for i := 0; i < 20; i++ {
		s.Observe(true)
	}
	if s.Verdict() != VerdictMet {
		t.Fatalf("all-good verdict = %q", s.Verdict())
	}
	if s.BudgetRemaining() != 1 {
		t.Fatalf("budget remaining = %v, want 1", s.BudgetRemaining())
	}
	// Drive both windows into active burn without blowing the cumulative
	// budget: 2 bad of 22 total would violate (2/22 > 0.1), so widen the
	// denominator with more good first.
	for i := 0; i < 80; i++ {
		s.Observe(true)
	}
	s.Observe(false)
	s.Observe(false)
	// Cumulative: 2/102 < 0.1 budget. Fast window (4): 2/4 = 0.5 -> burn 5.
	// Slow window (8): 2/8 = 0.25 -> burn 2.5. Both >= 1 -> at-risk.
	if s.Verdict() != VerdictAtRisk {
		t.Fatalf("verdict = %q, want at-risk (fast %v slow %v)", s.Verdict(), s.BurnFast(), s.BurnSlow())
	}
	for i := 0; i < 30; i++ {
		s.Observe(false)
	}
	if s.Verdict() != VerdictViolated {
		t.Fatalf("verdict = %q, want violated", s.Verdict())
	}
	if s.BudgetRemaining() != 0 {
		t.Fatalf("budget remaining = %v, want 0", s.BudgetRemaining())
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(true)
	if s.Verdict() != VerdictNoData || s.BurnFast() != 0 || s.BurnSlow() != 0 || s.BudgetRemaining() != 0 {
		t.Fatal("nil SLO should answer zeros")
	}
}

func TestBurnWindowEviction(t *testing.T) {
	w := newBurnWindow(3)
	w.observe(false)
	w.observe(false)
	w.observe(true)
	if f := w.badFraction(); f != 2.0/3 {
		t.Fatalf("bad fraction = %v, want 2/3", f)
	}
	w.observe(true) // evicts the first bad
	w.observe(true) // evicts the second bad
	if f := w.badFraction(); f != 0 {
		t.Fatalf("bad fraction after eviction = %v, want 0", f)
	}
}

func TestSLOMergeMatchesUnion(t *testing.T) {
	a := newSLO(0, 0.1, 4, 8)
	b := newSLO(0, 0.1, 4, 8)
	for i := 0; i < 10; i++ {
		a.Observe(i%5 != 0)
		b.Observe(i%2 == 0)
	}
	a.merge(b)
	if a.good+a.bad != 20 {
		t.Fatalf("merged total = %d, want 20", a.good+a.bad)
	}
	// The merged windows carry the union of both final windows.
	wantFast := (a.fast.badN + 0) // receiver ring still live
	_ = wantFast
	rep := a.report()
	if rep.Good+rep.Bad != 20 {
		t.Fatalf("report totals wrong: %+v", rep)
	}
}

func TestAuditRingEviction(t *testing.T) {
	a := newAudit(3)
	for i := 0; i < 5; i++ {
		a.Record(Decision{Step: i, Component: "test", Action: "act", Reason: "r"})
	}
	if a.Len() != 3 || a.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", a.Len(), a.Dropped())
	}
	recs := a.Records()
	for i, r := range recs {
		if r.Step != i+2 || r.Seq != uint64(i+2) {
			t.Fatalf("record %d = step %d seq %d, want step/seq %d", i, r.Step, r.Seq, i+2)
		}
	}
}

func TestAuditNilSafe(t *testing.T) {
	var a *Audit
	a.Record(Decision{})
	if a.Len() != 0 || a.Dropped() != 0 || a.Records() != nil {
		t.Fatal("nil audit should be inert")
	}
}

func TestScorecardNilSafe(t *testing.T) {
	var s *Scorecard
	s.ObserveStep()
	s.ObserveResponse(0, 1)
	s.ObserveSLO(true)
	s.ObservePower(100)
	s.RecordControl(true, false, false, 1)
	s.ObserveResidual(0.1)
	s.SetMPC(1, 1, 0, 0, 0)
	s.RecordBreaker(BreakerOpen, 5)
	s.AddOptimizerPass(1, 0, 0, 0, false)
	s.AddWatchdogPass(1, 0, 0, false)
	s.AddSearch(10, 1)
	s.RecordCrash(2, 0)
	s.Audit().Record(Decision{})
	s.SLO().Observe(true)
	if err := s.Merge(New(Config{})); err != nil {
		t.Fatal(err)
	}
	if s.RegisterApp("x", 1) != -1 {
		t.Fatal("nil RegisterApp should return -1")
	}
	rep := s.Report()
	if rep.Schema != SchemaVersion {
		t.Fatalf("nil report schema = %q", rep.Schema)
	}
}

func buildScorecard(label string) *Scorecard {
	s := New(Config{Label: label, SLOTargetSec: 1.0, SLOBudget: 0.1, FastWindow: 4, SlowWindow: 8})
	a0 := s.RegisterApp("gold", 1.0)
	a1 := s.RegisterApp("silver", 1.5)
	for i := 0; i < 50; i++ {
		s.ObserveStep()
		s.ObserveResponse(a0, 0.8+0.01*float64(i%10))
		s.ObserveResponse(a1, 1.2+0.05*float64(i%12))
		s.ObservePower(900 + float64(i%7)*10)
		s.RecordControl(i%9 == 0, false, i%25 == 0, i%9)
		s.ObserveResidual(0.02 * float64(i%5))
	}
	s.SetMPC(100, 98, 3, 2, 1)
	s.AddOptimizerPass(4, 1, 0, 0, false)
	s.AddWatchdogPass(2, 1, 1, true)
	s.AddSearch(1234, 2)
	s.RecordCrash(3, 1)
	s.RecordBreaker(BreakerOpen, 10)
	s.RecordBreaker(BreakerClosed, 0)
	s.Audit().Record(Decision{Step: 5, TimeSec: 300, Component: "pac", Action: "server-off",
		Target: "server-3", Reason: "load packed onto 2 servers", Span: "dcsim.consolidate"})
	return s
}

func TestScorecardReport(t *testing.T) {
	s := buildScorecard("unit")
	rep := s.Report()
	if rep.Schema != SchemaVersion || rep.Label != "unit" || rep.Steps != 50 {
		t.Fatalf("header wrong: %+v", rep)
	}
	if rep.MPC.Solves != 100 || rep.MPC.WarmHitRate != 0.95 {
		t.Fatalf("mpc slice wrong: %+v", rep.MPC)
	}
	if rep.MPC.Residual.Count != 50 {
		t.Fatalf("residual count = %d", rep.MPC.Residual.Count)
	}
	if len(rep.Apps) != 2 || rep.Apps[0].Name != "gold" || rep.Apps[1].Name != "silver" {
		t.Fatalf("apps wrong: %+v", rep.Apps)
	}
	if rep.Apps[0].Violations != 0 {
		t.Fatalf("gold violations = %d, want 0", rep.Apps[0].Violations)
	}
	if rep.Apps[1].Violations == 0 {
		t.Fatal("silver should violate its 1.5s target sometimes")
	}
	if rep.SLO.Good+rep.SLO.Bad != 100 {
		t.Fatalf("slo totals = %d good %d bad", rep.SLO.Good, rep.SLO.Bad)
	}
	if rep.Breaker.State != "closed" || rep.Breaker.Transitions != 2 {
		t.Fatalf("breaker slice wrong: %+v", rep.Breaker)
	}
	if rep.Optimizer.Passes != 1 || rep.Optimizer.WatchdogPasses != 1 ||
		rep.Optimizer.Migrations != 6 || rep.Optimizer.BnBNodes != 1234 ||
		rep.Optimizer.Widenings != 2 || rep.Optimizer.DegradedPasses != 1 {
		t.Fatalf("optimizer slice wrong: %+v", rep.Optimizer)
	}
	if rep.Cluster.Crashes != 1 || rep.Cluster.VMsEvacuated != 3 || rep.Cluster.VMsLost != 1 {
		t.Fatalf("cluster slice wrong: %+v", rep.Cluster)
	}
	if rep.Power == nil || rep.Power.Count != 50 {
		t.Fatalf("power slice wrong: %+v", rep.Power)
	}
	if len(rep.Audit.Records) != 1 || rep.Audit.Records[0].Action != "server-off" {
		t.Fatalf("audit slice wrong: %+v", rep.Audit)
	}
}

func TestScorecardDeterministicJSON(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := buildScorecard("det").WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := buildScorecard("det").WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same-build scorecard JSON not byte-identical")
	}
	if !strings.Contains(b1.String(), "\"schema\": \"vdcobs/v1\"") {
		t.Fatalf("schema marker missing:\n%s", b1.String())
	}
}

func TestScorecardMerge(t *testing.T) {
	mk := func() *Scorecard {
		s := New(Config{SLOBudget: 0.1, FastWindow: 4, SlowWindow: 8})
		s.RegisterApp("app", 1.0)
		return s
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		a.ObserveStep()
		a.ObserveResponse(0, 0.5)
		b.ObserveStep()
		b.ObserveResponse(0, 2.0)
	}
	a.SetMPC(10, 9, 1, 0, 0)
	b.SetMPC(20, 18, 2, 1, 1)
	a.AddSearch(100, 1)
	b.AddSearch(50, 0)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if rep.Steps != 20 || rep.MPC.Solves != 30 || rep.Optimizer.BnBNodes != 150 {
		t.Fatalf("merged counters wrong: %+v", rep)
	}
	if rep.Apps[0].Samples != 20 || rep.Apps[0].Violations != 10 {
		t.Fatalf("merged app wrong: %+v", rep.Apps[0])
	}
	if rep.SLO.Good != 10 || rep.SLO.Bad != 10 {
		t.Fatalf("merged slo wrong: %+v", rep.SLO)
	}
}

func TestScorecardMergeIntoEmptyAdoptsApps(t *testing.T) {
	agg := New(Config{SLOBudget: 0.1, FastWindow: 4, SlowWindow: 8})
	w := New(agg.Config())
	w.RegisterApp("app", 1.0)
	w.ObserveResponse(0, 0.5)
	if err := agg.Merge(w); err != nil {
		t.Fatal(err)
	}
	rep := agg.Report()
	if len(rep.Apps) != 1 || rep.Apps[0].Samples != 1 {
		t.Fatalf("aggregate did not adopt apps: %+v", rep.Apps)
	}
}

func TestScorecardMergeRejectsMismatch(t *testing.T) {
	a := New(Config{SLOBudget: 0.1, FastWindow: 4, SlowWindow: 8})
	b := New(Config{SLOBudget: 0.2, FastWindow: 4, SlowWindow: 8})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge should reject mismatched SLO geometry")
	}
	c := New(a.Config())
	a.RegisterApp("x", 1)
	c.RegisterApp("y", 1)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge should reject mismatched app names")
	}
	d := New(a.Config())
	d.RegisterApp("x", 1)
	d.RegisterApp("z", 1)
	if err := a.Merge(d); err == nil {
		t.Fatal("merge should reject mismatched app counts")
	}
}

func TestScorecardMergeOrderInvariant(t *testing.T) {
	mk := func(seed int) *Scorecard {
		s := New(Config{SLOBudget: 0.1, FastWindow: 4, SlowWindow: 8})
		s.RegisterApp("app", 1.0)
		for i := 0; i < 20+seed; i++ {
			s.ObserveStep()
			s.ObserveResponse(0, 0.1*float64((i*seed)%30))
			s.ObservePower(800 + float64(seed*i%100))
			s.ObserveResidual(0.01 * float64(seed))
		}
		return s
	}
	marshal := func(order []int) []byte {
		agg := New(Config{SLOBudget: 0.1, FastWindow: 4, SlowWindow: 8})
		for _, seed := range order {
			if err := agg.Merge(mk(seed)); err != nil {
				t.Fatal(err)
			}
		}
		var b bytes.Buffer
		if err := agg.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	// Audit records are empty here, so sequence reassignment cannot
	// distinguish the orders; everything else must be order-invariant.
	if !bytes.Equal(marshal([]int{1, 2, 3}), marshal([]int{3, 1, 2})) {
		t.Fatal("scorecard merge not order-invariant")
	}
}

func TestScorecardResidualAbs(t *testing.T) {
	s := New(Config{})
	s.ObserveResidual(-0.5)
	rep := s.Report()
	if math.Abs(rep.MPC.Residual.Max-0.5) > 1e-12 {
		t.Fatalf("residual should be absolute: %+v", rep.MPC.Residual)
	}
}

func TestBreakerStateName(t *testing.T) {
	if breakerStateName(BreakerClosed) != "closed" ||
		breakerStateName(BreakerOpen) != "open" ||
		breakerStateName(BreakerHalfOpen) != "half-open" {
		t.Fatal("breaker state names wrong")
	}
}
