package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Defaults applied by New when Config leaves the knobs zero.
const (
	defaultSLOBudget     = 0.1 // 10% of steps may violate the objective
	defaultFastWindow    = 12  // fast burn window, in steps/periods
	defaultSlowWindow    = 96  // slow burn window
	defaultAuditCapacity = 256
)

// Config parameterizes a Scorecard. The zero value is usable: New fills
// the SLO budget, burn windows, and audit capacity with the defaults
// above. SLOTargetSec is informational (the response-time R_ref the
// per-app violation counts are judged against is given per app in
// RegisterApp); 0 marks an objective that is not a response time, e.g.
// dcsim's "no server overloaded this step".
type Config struct {
	Label         string  // run label carried into the report
	SLOTargetSec  float64 // R_ref in seconds; 0 = not a response-time SLO
	SLOBudget     float64 // allowed bad-event fraction (default 0.1)
	FastWindow    int     // fast burn window in steps (default 12)
	SlowWindow    int     // slow burn window in steps (default 96)
	AuditCapacity int     // decision ring bound (default 256)
}

// withDefaults resolves the zero knobs.
func (c Config) withDefaults() Config {
	if c.SLOBudget <= 0 {
		c.SLOBudget = defaultSLOBudget
	}
	if c.FastWindow <= 0 {
		c.FastWindow = defaultFastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = defaultSlowWindow
	}
	if c.AuditCapacity <= 0 {
		c.AuditCapacity = defaultAuditCapacity
	}
	return c
}

// appHealth is one registered application's health slice.
type appHealth struct {
	name       string
	rref       float64
	samples    uint64
	violations uint64
	resp       *Sketch
}

// Breaker state codes for RecordBreaker, mirroring serve's circuit
// breaker: closed (healthy), open (cooling down), half-open (probing).
const (
	BreakerClosed = iota
	BreakerOpen
	BreakerHalfOpen
)

// breakerStateName renders a breaker code for the report.
func breakerStateName(s int) string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Scorecard aggregates one control loop's health: MPC solve quality
// (prediction residuals, QP warm-start hit rate, relaxations and
// fallbacks), measurement-plane degradation (hold windows, open-loop
// activations), breaker state, optimizer effort (passes, migrations,
// vetoes, B&B nodes and widenings), cluster faults, per-app response
// time versus R_ref, and the SLO burn state — plus the decision audit
// ring. It is single-writer (harnesses own it; serve serializes under
// its mutex), every method is nil-safe, and the hot update paths
// (ObserveStep, ObserveResponse, ObserveSLO, ObservePower, RecordControl,
// ObserveResidual) are allocation-free in steady state. Merge combines
// per-worker scorecards exactly, in any order.
type Scorecard struct {
	cfg   Config
	steps uint64

	// MPC solve quality (cumulative; SetMPC overwrites).
	qpSolves     int
	warmAttempts int
	coldRetries  int
	relaxations  int
	fallbacks    int
	residual     *Sketch

	// Measurement-plane control health.
	periods       uint64
	held          uint64
	dropped       uint64
	openLoop      uint64
	maxHeldStreak int

	// Circuit breaker (serve).
	breakerState    int
	breakerCooldown int
	breakerTrans    uint64

	// Optimizer effort.
	passes         int
	migrations     int
	vetoes         int
	failedMoves    int
	unresolved     int
	watchdogPasses int
	watchdogMoves  int
	degradedPasses int
	bnbNodes       int
	widenings      int

	// Cluster fault plane.
	crashes      int
	vmsEvacuated int
	vmsLost      int

	// Bounded execution (guard layer).
	drains         uint64
	budgetTrips    uint64
	wallTrips      uint64
	quarantines    uint64
	maxDrainEvents int
	maxSameTime    int

	apps   []appHealth
	power  *Sketch
	slo    *SLO
	audit  *Audit
	replay *ReplayProvenance
}

// New builds an empty scorecard with cfg's knobs (defaults applied).
func New(cfg Config) *Scorecard {
	cfg = cfg.withDefaults()
	return &Scorecard{
		cfg:      cfg,
		residual: NewSketch(),
		power:    NewSketch(),
		slo:      newSLO(cfg.SLOTargetSec, cfg.SLOBudget, cfg.FastWindow, cfg.SlowWindow),
		audit:    newAudit(cfg.AuditCapacity),
	}
}

// Config returns the effective configuration (defaults resolved) — the
// recipe for building merge-compatible sibling scorecards.
func (s *Scorecard) Config() Config {
	if s == nil {
		return Config{}.withDefaults()
	}
	return s.cfg
}

// RegisterApp adds an application with its response-time target R_ref
// and returns its index for the hot ObserveResponse path. Registration
// order is the report order, so callers must register deterministically
// (and must do so before observing).
func (s *Scorecard) RegisterApp(name string, rrefSec float64) int {
	if s == nil {
		return -1
	}
	s.apps = append(s.apps, appHealth{name: name, rref: rrefSec, resp: NewSketch()})
	return len(s.apps) - 1
}

// ObserveStep counts one harness step (trace step in dcsim, control
// period in testbed/serve).
//
//vdc:hotpath fig6/obs-on
func (s *Scorecard) ObserveStep() {
	if s == nil {
		return
	}
	s.steps++
}

// Steps returns the number of observed steps.
func (s *Scorecard) Steps() uint64 {
	if s == nil {
		return 0
	}
	return s.steps
}

// ObserveResponse records app's measured response time for one period:
// the per-app sketch, the violation count against its R_ref, and one
// SLO event (good = within target).
//
//vdc:hotpath fig6/obs-on
func (s *Scorecard) ObserveResponse(app int, tSec float64) {
	if s == nil || app < 0 || app >= len(s.apps) {
		return
	}
	a := &s.apps[app]
	a.samples++
	a.resp.Observe(tSec)
	good := tSec <= a.rref
	if !good {
		a.violations++
	}
	s.slo.Observe(good)
}

// ObserveSLO records one generic SLO event for harnesses whose
// objective is not a per-app response time (dcsim: good = no server
// overloaded this step).
//
//vdc:hotpath fig6/obs-on
func (s *Scorecard) ObserveSLO(good bool) {
	if s == nil {
		return
	}
	s.slo.Observe(good)
}

// ObservePower records one step's total power draw (watts).
//
//vdc:hotpath fig6/obs-on
func (s *Scorecard) ObservePower(w float64) {
	if s == nil {
		return
	}
	s.power.Observe(w)
}

// RecordControl folds one controller period's measurement-plane flags.
//
//vdc:hotpath fig6/obs-on
func (s *Scorecard) RecordControl(held, dropped, openLoop bool, heldStreak int) {
	if s == nil {
		return
	}
	s.periods++
	if held {
		s.held++
	}
	if dropped {
		s.dropped++
	}
	if openLoop {
		s.openLoop++
	}
	if heldStreak > s.maxHeldStreak {
		s.maxHeldStreak = heldStreak
	}
}

// ObserveResidual records one MPC prediction residual |t(k) − t̂(k|k−1)|.
//
//vdc:hotpath fig6/obs-on
func (s *Scorecard) ObserveResidual(r float64) {
	if s == nil {
		return
	}
	s.residual.Observe(math.Abs(r))
}

// SetMPC overwrites the cumulative MPC solver tallies (harnesses read
// them from mpc.SolveStats each period; the stats are themselves
// cumulative, so set semantics avoid double counting).
func (s *Scorecard) SetMPC(solves, warmAttempts, coldRetries, relaxations, fallbacks int) {
	if s == nil {
		return
	}
	s.qpSolves = solves
	s.warmAttempts = warmAttempts
	s.coldRetries = coldRetries
	s.relaxations = relaxations
	s.fallbacks = fallbacks
}

// RecordBreaker publishes the breaker's current state and remaining
// cooldown ticks; a state change counts one transition.
func (s *Scorecard) RecordBreaker(state, cooldownTicks int) {
	if s == nil {
		return
	}
	if state != s.breakerState {
		s.breakerTrans++
	}
	s.breakerState = state
	s.breakerCooldown = cooldownTicks
}

// AddOptimizerPass folds one consolidation pass's report.
func (s *Scorecard) AddOptimizerPass(migrations, vetoed, failedMoves, unresolved int, degraded bool) {
	if s == nil {
		return
	}
	s.passes++
	s.migrations += migrations
	s.vetoes += vetoed
	s.failedMoves += failedMoves
	s.unresolved += unresolved
	if degraded {
		s.degradedPasses++
	}
}

// AddWatchdogPass folds one on-demand overload-relief pass.
func (s *Scorecard) AddWatchdogPass(moves, failedMoves, unresolved int, degraded bool) {
	if s == nil {
		return
	}
	s.watchdogPasses++
	s.migrations += moves
	s.watchdogMoves += moves
	s.failedMoves += failedMoves
	s.unresolved += unresolved
	if degraded {
		s.degradedPasses++
	}
}

// AddSearch folds one pass's branch-and-bound effort deltas.
func (s *Scorecard) AddSearch(nodes, widenings int) {
	if s == nil {
		return
	}
	s.bnbNodes += nodes
	s.widenings += widenings
}

// RecordCrash folds one server crash and the fate of its VMs.
func (s *Scorecard) RecordCrash(evacuated, lost int) {
	if s == nil {
		return
	}
	s.crashes++
	s.vmsEvacuated += evacuated
	s.vmsLost += lost
}

// RecordDrain folds one control period's bounded event drain: the event
// count and the longest same-instant run. It runs every period whether or
// not a budget is in force, so it must stay allocation-free.
func (s *Scorecard) RecordDrain(events, sameTime int) {
	if s == nil {
		return
	}
	s.drains++
	if events > s.maxDrainEvents {
		s.maxDrainEvents = events
	}
	if sameTime > s.maxSameTime {
		s.maxSameTime = sameTime
	}
}

// RecordBudgetTrip counts one drain cut short by its budget; wall marks
// the wall-clock watchdog (as opposed to an event bound) as the cause.
func (s *Scorecard) RecordBudgetTrip(wall bool) {
	if s == nil {
		return
	}
	s.budgetTrips++
	if wall {
		s.wallTrips++
	}
}

// RecordQuarantine counts one quarantine entry (repeated budget
// exhaustion escalated past the breaker).
func (s *Scorecard) RecordQuarantine() {
	if s == nil {
		return
	}
	s.quarantines++
}

// Audit returns the decision ring (nil on a nil scorecard; Record on a
// nil Audit no-ops, so callers need no guard).
func (s *Scorecard) Audit() *Audit {
	if s == nil {
		return nil
	}
	return s.audit
}

// SLO returns the objective state for gauge publication.
func (s *Scorecard) SLO() *SLO {
	if s == nil {
		return nil
	}
	return s.slo
}

// Merge folds o into s: counters add, sketches merge exactly, the SLO
// windows fold their tallies, and o's audit records re-sequence into
// s's ring. The SLO geometry (budget and window sizes) must match — the
// burn semantics of mismatched windows cannot be combined — and apps
// must line up by index and name when both sides registered any. The
// breaker state/cooldown keep s's view (gauges don't sum); transitions
// add. o is not modified.
func (s *Scorecard) Merge(o *Scorecard) error {
	if s == nil || o == nil {
		return nil
	}
	//lint:ignore floatcompare budgets are configured literals, never computed — geometry must match exactly
	if s.cfg.SLOBudget != o.cfg.SLOBudget || s.cfg.FastWindow != o.cfg.FastWindow || s.cfg.SlowWindow != o.cfg.SlowWindow {
		return fmt.Errorf("obs: merging scorecards with different SLO geometry (budget %v/%v, windows %d/%d vs %d/%d)",
			s.cfg.SLOBudget, o.cfg.SLOBudget, s.cfg.FastWindow, s.cfg.SlowWindow, o.cfg.FastWindow, o.cfg.SlowWindow)
	}
	if len(s.apps) == 0 && len(o.apps) > 0 {
		// Adopt o's app set (s was an empty aggregate).
		for _, a := range o.apps {
			i := s.RegisterApp(a.name, a.rref)
			s.apps[i].samples = a.samples
			s.apps[i].violations = a.violations
			s.apps[i].resp.Merge(a.resp)
		}
	} else {
		if len(o.apps) > 0 && len(o.apps) != len(s.apps) {
			return fmt.Errorf("obs: merging scorecards with %d vs %d apps", len(s.apps), len(o.apps))
		}
		for i := range o.apps {
			if s.apps[i].name != o.apps[i].name {
				return fmt.Errorf("obs: app %d is %q on one side, %q on the other", i, s.apps[i].name, o.apps[i].name)
			}
			s.apps[i].samples += o.apps[i].samples
			s.apps[i].violations += o.apps[i].violations
			s.apps[i].resp.Merge(o.apps[i].resp)
		}
	}
	s.steps += o.steps
	s.qpSolves += o.qpSolves
	s.warmAttempts += o.warmAttempts
	s.coldRetries += o.coldRetries
	s.relaxations += o.relaxations
	s.fallbacks += o.fallbacks
	s.residual.Merge(o.residual)
	s.periods += o.periods
	s.held += o.held
	s.dropped += o.dropped
	s.openLoop += o.openLoop
	if o.maxHeldStreak > s.maxHeldStreak {
		s.maxHeldStreak = o.maxHeldStreak
	}
	s.breakerTrans += o.breakerTrans
	s.passes += o.passes
	s.migrations += o.migrations
	s.vetoes += o.vetoes
	s.failedMoves += o.failedMoves
	s.unresolved += o.unresolved
	s.watchdogPasses += o.watchdogPasses
	s.watchdogMoves += o.watchdogMoves
	s.degradedPasses += o.degradedPasses
	s.bnbNodes += o.bnbNodes
	s.widenings += o.widenings
	s.crashes += o.crashes
	s.vmsEvacuated += o.vmsEvacuated
	s.vmsLost += o.vmsLost
	s.drains += o.drains
	s.budgetTrips += o.budgetTrips
	s.wallTrips += o.wallTrips
	s.quarantines += o.quarantines
	if o.maxDrainEvents > s.maxDrainEvents {
		s.maxDrainEvents = o.maxDrainEvents
	}
	if o.maxSameTime > s.maxSameTime {
		s.maxSameTime = o.maxSameTime
	}
	s.power.Merge(o.power)
	s.slo.merge(o.slo)
	s.audit.merge(o.audit)
	merged, err := mergeReplay(s.replay, o.replay)
	if err != nil {
		return err
	}
	s.replay = merged
	return nil
}

// MPCReport is the solver-quality slice of the report.
type MPCReport struct {
	Solves              int           `json:"solves"`
	WarmAttempts        int           `json:"warm_attempts"`
	ColdRetries         int           `json:"cold_retries"`
	WarmHitRate         float64       `json:"warm_hit_rate"`
	TerminalRelaxations int           `json:"terminal_relaxations"`
	Fallbacks           int           `json:"fallbacks"`
	Residual            SketchSummary `json:"residual"`
}

// ControlReport is the measurement-plane slice.
type ControlReport struct {
	Periods       uint64 `json:"periods"`
	Held          uint64 `json:"held"`
	Dropped       uint64 `json:"dropped"`
	OpenLoop      uint64 `json:"open_loop"`
	MaxHeldStreak int    `json:"max_held_streak"`
}

// BreakerReport is the circuit-breaker slice.
type BreakerReport struct {
	State         string `json:"state"`
	CooldownTicks int    `json:"cooldown_ticks"`
	Transitions   uint64 `json:"transitions"`
}

// OptimizerReport is the consolidation-layer slice.
type OptimizerReport struct {
	Passes         int `json:"passes"`
	Migrations     int `json:"migrations"`
	Vetoes         int `json:"vetoes"`
	FailedMoves    int `json:"failed_moves"`
	Unresolved     int `json:"unresolved"`
	WatchdogPasses int `json:"watchdog_passes"`
	WatchdogMoves  int `json:"watchdog_moves"`
	DegradedPasses int `json:"degraded_passes"`
	BnBNodes       int `json:"bnb_nodes"`
	Widenings      int `json:"widenings"`
}

// ClusterReport is the fault-plane slice.
type ClusterReport struct {
	Crashes      int `json:"crashes"`
	VMsEvacuated int `json:"vms_evacuated"`
	VMsLost      int `json:"vms_lost"`
}

// GuardReport is the bounded-execution slice: how hard the step drains
// worked and how often the guard layer had to step in.
type GuardReport struct {
	Drains         uint64 `json:"drains"`
	BudgetTrips    uint64 `json:"budget_trips"`
	WallTrips      uint64 `json:"wall_trips"`
	Quarantines    uint64 `json:"quarantines"`
	MaxDrainEvents int    `json:"max_drain_events"`
	MaxSameTime    int    `json:"max_same_time"`
}

// AppReport is one registered application's slice.
type AppReport struct {
	Name       string        `json:"name"`
	RRefSec    float64       `json:"rref_sec"`
	Samples    uint64        `json:"samples"`
	Violations uint64        `json:"violations"`
	Response   SketchSummary `json:"response"`
}

// Report is the scorecard's JSON document. Every field order is fixed
// by the struct and apps render in registration order, so same-seed
// runs produce byte-identical documents.
type Report struct {
	Schema    string            `json:"schema"`
	Label     string            `json:"label,omitempty"`
	Steps     uint64            `json:"steps"`
	SLO       SLOReport         `json:"slo"`
	MPC       MPCReport         `json:"mpc"`
	Control   ControlReport     `json:"control"`
	Breaker   BreakerReport     `json:"breaker"`
	Optimizer OptimizerReport   `json:"optimizer"`
	Cluster   ClusterReport     `json:"cluster"`
	Guard     GuardReport       `json:"guard"`
	Apps      []AppReport       `json:"apps"`
	Power     *SketchSummary    `json:"power,omitempty"`
	Replay    *ReplayProvenance `json:"replay,omitempty"`
	Audit     AuditReport       `json:"audit"`
}

// SchemaVersion identifies the scorecard document format.
const SchemaVersion = "vdcobs/v1"

// Report snapshots the scorecard.
func (s *Scorecard) Report() Report {
	if s == nil {
		return Report{Schema: SchemaVersion}
	}
	hit := 0.0
	if s.qpSolves > 0 {
		hit = float64(s.warmAttempts-s.coldRetries) / float64(s.qpSolves)
	}
	rep := Report{
		Schema: SchemaVersion,
		Label:  s.cfg.Label,
		Steps:  s.steps,
		SLO:    s.slo.report(),
		MPC: MPCReport{
			Solves:              s.qpSolves,
			WarmAttempts:        s.warmAttempts,
			ColdRetries:         s.coldRetries,
			WarmHitRate:         hit,
			TerminalRelaxations: s.relaxations,
			Fallbacks:           s.fallbacks,
			Residual:            s.residual.Summary(),
		},
		Control: ControlReport{
			Periods:       s.periods,
			Held:          s.held,
			Dropped:       s.dropped,
			OpenLoop:      s.openLoop,
			MaxHeldStreak: s.maxHeldStreak,
		},
		Breaker: BreakerReport{
			State:         breakerStateName(s.breakerState),
			CooldownTicks: s.breakerCooldown,
			Transitions:   s.breakerTrans,
		},
		Optimizer: OptimizerReport{
			Passes:         s.passes,
			Migrations:     s.migrations,
			Vetoes:         s.vetoes,
			FailedMoves:    s.failedMoves,
			Unresolved:     s.unresolved,
			WatchdogPasses: s.watchdogPasses,
			WatchdogMoves:  s.watchdogMoves,
			DegradedPasses: s.degradedPasses,
			BnBNodes:       s.bnbNodes,
			Widenings:      s.widenings,
		},
		Cluster: ClusterReport{
			Crashes:      s.crashes,
			VMsEvacuated: s.vmsEvacuated,
			VMsLost:      s.vmsLost,
		},
		Guard: GuardReport{
			Drains:         s.drains,
			BudgetTrips:    s.budgetTrips,
			WallTrips:      s.wallTrips,
			Quarantines:    s.quarantines,
			MaxDrainEvents: s.maxDrainEvents,
			MaxSameTime:    s.maxSameTime,
		},
		Apps:  []AppReport{},
		Audit: s.audit.report(),
	}
	for i := range s.apps {
		a := &s.apps[i]
		rep.Apps = append(rep.Apps, AppReport{
			Name:       a.name,
			RRefSec:    a.rref,
			Samples:    a.samples,
			Violations: a.violations,
			Response:   a.resp.Summary(),
		})
	}
	if s.power.Count() > 0 {
		sum := s.power.Summary()
		rep.Power = &sum
	}
	rep.Replay = s.replay.clone()
	return rep
}

// WriteJSON renders the report as indented JSON. The document is
// deterministic: struct-ordered fields, registration-ordered apps,
// sequence-ordered audit records.
func (s *Scorecard) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Report())
}
