package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestScorecardGuardReport(t *testing.T) {
	s := New(Config{})
	s.RecordDrain(100, 3)
	s.RecordDrain(250, 7)
	s.RecordDrain(40, 1)
	s.RecordBudgetTrip(false)
	s.RecordBudgetTrip(true)
	s.RecordQuarantine()
	g := s.Report().Guard
	if g.Drains != 3 {
		t.Fatalf("Drains = %d", g.Drains)
	}
	if g.MaxDrainEvents != 250 || g.MaxSameTime != 7 {
		t.Fatalf("max fold wrong: %+v", g)
	}
	if g.BudgetTrips != 2 || g.WallTrips != 1 {
		t.Fatalf("trips wrong: %+v", g)
	}
	if g.Quarantines != 1 {
		t.Fatalf("Quarantines = %d", g.Quarantines)
	}
}

func TestScorecardGuardJSONFields(t *testing.T) {
	s := New(Config{})
	s.RecordDrain(5, 2)
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"guard"`, `"drains"`, `"budget_trips"`, `"wall_trips"`, `"quarantines"`, `"max_drain_events"`, `"max_same_time"`} {
		if !strings.Contains(b.String(), key) {
			t.Fatalf("JSON lacks %s:\n%s", key, b.String())
		}
	}
}

func TestScorecardGuardMerge(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	a.RecordDrain(10, 2)
	a.RecordBudgetTrip(false)
	b.RecordDrain(90, 5)
	b.RecordBudgetTrip(true)
	b.RecordQuarantine()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	g := a.Report().Guard
	if g.Drains != 2 || g.BudgetTrips != 2 || g.WallTrips != 1 || g.Quarantines != 1 {
		t.Fatalf("merged counts wrong: %+v", g)
	}
	if g.MaxDrainEvents != 90 || g.MaxSameTime != 5 {
		t.Fatalf("merged max fold wrong: %+v", g)
	}
}

func TestScorecardGuardNilSafe(t *testing.T) {
	var s *Scorecard
	s.RecordDrain(1, 1)
	s.RecordBudgetTrip(true)
	s.RecordQuarantine()
}

// RecordDrain runs every control period, budget or no budget — it shares
// the zero-allocation discipline of the other scorecard hot paths.
func TestScorecardGuardZeroAlloc(t *testing.T) {
	s := New(Config{})
	i := 0
	requireZeroAllocs(t, "Scorecard guard updates", func() {
		s.RecordDrain(100+i%50, i%9)
		if i%17 == 0 {
			s.RecordBudgetTrip(i%2 == 0)
		}
		i++
	})
}
