// Package obs is the controller-health observability layer: mergeable
// quantile sketches, per-loop health scorecards, SLO burn-rate
// accounting, and a bounded decision-audit ring. It sits on top of
// package telemetry but is independent of it: everything here is
// deterministic (no wall clocks, no randomness — step counters and
// caller-provided sim time only), so same-seed runs produce
// byte-identical scorecard JSON, and every per-worker piece of state
// merges exactly (commutatively and associatively), which is what lets
// sharded sweeps and a future multi-tenant serve aggregate
// constant-memory summaries without loss.
package obs

import "math"

// Sketch parameters: a DDSketch-style logarithmic bucketing with
// relative accuracy sketchAlpha over [sketchMinValue, sketchMaxValue).
// Values below the range land in a dedicated underflow bucket, values
// at or above it in an overflow bucket; the exact min and max are
// tracked separately so the tails stay honest.
const (
	sketchAlpha    = 0.05 // relative quantile error bound within range
	sketchMinValue = 1e-6 // 1 µs — below any response time of interest
	sketchBuckets  = 277  // ceil(ln(1e12) / ln(gamma)) covers up to ~1e6
)

var (
	sketchGamma   = (1 + sketchAlpha) / (1 - sketchAlpha)
	sketchLnGamma = math.Log(sketchGamma)
	sketchInvLn   = 1 / sketchLnGamma
)

// Sketch is a fixed-size mergeable quantile sketch. The state is pure
// integer bucket counts plus the exact min/max, so Merge is exactly
// commutative and associative — merged sketches are byte-identical
// regardless of merge order, and a sketch merged from shards equals the
// single-stream sketch of the concatenated values. There is no stored
// float sum: Mean and Quantile are reconstructed from the bucket counts
// at query time, so they too are merge-order invariant.
//
// Quantile estimates carry a relative error of at most sketchAlpha (5%)
// for values in [1e-6, ~1e6); outside that range the sketch answers
// with the tracked exact min/max. A nil *Sketch is a valid disabled
// instrument. Construct with NewSketch; the zero value is not valid.
type Sketch struct {
	counts [sketchBuckets + 2]uint64 // [0] underflow, [1..sketchBuckets] log buckets, [last] overflow
	count  uint64
	min    float64 // +Inf while empty
	max    float64 // -Inf while empty
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{min: math.Inf(1), max: math.Inf(-1)}
}

// Reset empties the sketch in place.
func (s *Sketch) Reset() {
	if s == nil {
		return
	}
	clear(s.counts[:])
	s.count = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// Observe records one value. Non-finite values are ignored — NaN and
// ±Inf carry no rank information and would poison min/max. Zero-alloc:
// the bucket array is part of the struct, so steady-state observation
// never touches the heap.
//
//vdc:hotpath fig6/obs-on
func (s *Sketch) Observe(v float64) {
	if s == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.count++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v < sketchMinValue { // includes zero and negatives
		s.counts[0]++
		return
	}
	idx := 1 + int(math.Log(v/sketchMinValue)*sketchInvLn)
	if idx > sketchBuckets {
		idx = sketchBuckets + 1 // overflow
	}
	s.counts[idx]++
}

// Merge folds o into s. The operation is exact: counts add, min/max
// take the extremes, so (a+b)+c == a+(b+c) and a+b == b+a bit for bit.
// o is not modified; a nil or empty o is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if s == nil || o == nil || o.count == 0 {
		return
	}
	s.count += o.count
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
}

// Count returns the number of observed values.
func (s *Sketch) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Min returns the smallest observed value (0 while empty).
func (s *Sketch) Min() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observed value (0 while empty).
func (s *Sketch) Max() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	return s.max
}

// bucketRep is the geometric midpoint representative of log bucket i
// (1-based), the value minimizing worst-case relative error within the
// bucket.
func bucketRep(i int) float64 {
	return sketchMinValue * math.Exp((float64(i-1)+0.5)*sketchLnGamma)
}

// Mean estimates the mean from the bucket representatives (underflow
// counts at the exact min, overflow at the exact max). Because the
// summation order is the fixed bucket order and the state merges
// exactly, the estimate is identical however the sketch was assembled.
func (s *Sketch) Mean() float64 {
	if s == nil || s.count == 0 {
		return 0
	}
	total := 0.0
	if c := s.counts[0]; c > 0 {
		total += float64(c) * s.min
	}
	for i := 1; i <= sketchBuckets; i++ {
		if c := s.counts[i]; c > 0 {
			total += float64(c) * bucketRep(i)
		}
	}
	if c := s.counts[sketchBuckets+1]; c > 0 {
		total += float64(c) * s.max
	}
	return total / float64(s.count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1). The answer is a
// bucket representative clamped into [min, max], so the relative error
// is at most sketchAlpha within the sketch's range and the extreme
// quantiles (q=0, q=1) are exact. Returns 0 while empty.
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil || s.count == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	cum := s.counts[0]
	if cum >= rank {
		return s.min
	}
	for i := 1; i <= sketchBuckets; i++ {
		cum += s.counts[i]
		if cum >= rank {
			v := bucketRep(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// SketchSummary is the JSON form of a sketch: the headline statistics
// only, all zero while empty. Field order is fixed by the struct, so
// encoding/json renders it deterministically.
type SketchSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary snapshots the sketch's headline statistics.
func (s *Sketch) Summary() SketchSummary {
	if s == nil || s.count == 0 {
		return SketchSummary{}
	}
	return SketchSummary{
		Count: s.count,
		Mean:  s.Mean(),
		Min:   s.min,
		Max:   s.max,
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}
