// Package guard is the bounded-execution subsystem: it decides how much
// work one control step may do (event budget, same-instant budget,
// wall-clock deadline), turns kernel budget trips into typed step-abort
// errors the circuit breaker understands, and escalates repeated
// exhaustion into a quarantine with automatic half-open recovery.
//
// The package deliberately sits outside the deterministic simulation
// packages: the wall-clock watchdog lives here, and reaches into a drain
// only through the opaque devs.Budget.Interrupt callback, so the kernel
// and testbed never read a real clock.
package guard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"vdcpower/internal/devs"
)

// Defaults for the per-step budget. A healthy control period fires a few
// thousand kernel events per application, so two million events or one
// hundred thousand at a single instant is two-plus orders of magnitude of
// headroom — anything past that is a runaway, not a workload.
const (
	DefaultMaxEvents         = 2_000_000
	DefaultMaxSameTimeEvents = 100_000
	DefaultWall              = 10 * time.Second
)

// StepBudget bounds one control step. Zero fields impose no bound.
type StepBudget struct {
	MaxEvents         int           // kernel events per step
	MaxSameTimeEvents int           // events at one virtual instant
	Wall              time.Duration // wall-clock deadline for the step's drain
}

// DefaultStepBudget returns the budget applied when the operator does not
// choose one.
func DefaultStepBudget() StepBudget {
	return StepBudget{
		MaxEvents:         DefaultMaxEvents,
		MaxSameTimeEvents: DefaultMaxSameTimeEvents,
		Wall:              DefaultWall,
	}
}

// DevsBudget lowers the step budget onto the kernel. The wall deadline
// does not translate directly — the caller arms a Watchdog and passes its
// Expired method as the interrupt.
func (b StepBudget) DevsBudget(interrupt func() bool) devs.Budget {
	return devs.Budget{
		MaxEvents:         b.MaxEvents,
		MaxSameTimeEvents: b.MaxSameTimeEvents,
		Interrupt:         interrupt,
	}
}

// Watchdog is a lock-free wall-clock deadline. Arm starts a timer for the
// current step; Expired reports whether the armed deadline has passed;
// Disarm invalidates it. Generation counters make a late timer firing
// after Disarm or re-Arm harmless, so no timer bookkeeping races matter.
type Watchdog struct {
	gen     atomic.Uint64 // current arming generation; bumped by Arm and Disarm
	expired atomic.Uint64 // generation whose deadline fired
}

// Arm starts (or restarts) the deadline. A non-positive duration arms
// nothing: the step is unbounded in wall time.
func (w *Watchdog) Arm(d time.Duration) {
	g := w.gen.Add(1)
	if d <= 0 {
		return
	}
	time.AfterFunc(d, func() { w.expired.Store(g) })
}

// Disarm invalidates the current deadline.
func (w *Watchdog) Disarm() { w.gen.Add(1) }

// Expired reports whether the currently armed deadline has passed. It is
// safe to call from any goroutine, including a kernel drain's interrupt
// poll.
func (w *Watchdog) Expired() bool {
	g := w.gen.Load()
	return g != 0 && w.expired.Load() == g
}

// StepAbort is a control step cut short by its execution budget: the
// drain was aborted, the period's record is missing, and the breaker
// should treat the step as failed. It wraps the kernel's *devs.BudgetError,
// so errors.Is(err, devs.ErrBudgetExceeded) also matches.
type StepAbort struct {
	Period int   // control period that was aborted
	Wall   bool  // true when the wall-clock watchdog (not an event bound) tripped
	Err    error // the kernel's diagnosis, a *devs.BudgetError
}

func (e *StepAbort) Error() string {
	kind := "event budget"
	if e.Wall {
		kind = "wall-clock deadline"
	}
	return fmt.Sprintf("guard: step %d aborted (%s exhausted): %v", e.Period, kind, e.Err)
}

func (e *StepAbort) Unwrap() error { return e.Err }

// AsStepAbort extracts the *StepAbort from an error chain, if present.
func AsStepAbort(err error) (*StepAbort, bool) {
	var sa *StepAbort
	if errors.As(err, &sa) {
		return sa, true
	}
	return nil, false
}

// IsStepAbort reports whether the error chain contains a budget-exhausted
// step abort.
func IsStepAbort(err error) bool {
	_, ok := AsStepAbort(err)
	return ok
}

// Quarantine defaults: two wedge-class breaker openings in a row engage
// quarantine, which stretches the breaker cooldown sixfold.
const (
	DefaultQuarantineThreshold = 2
	DefaultQuarantineFactor    = 6
)

// Quarantine escalates repeated budget exhaustion. A circuit breaker
// treats every failure alike; a step that exhausts its execution budget
// is worse than one that merely errors — the model is runaway, and rapid
// half-open probes each burn a full budget. Quarantine counts consecutive
// wedge-class (budget-exhausted) breaker openings and, past the
// threshold, stretches the breaker's cooldown so probes become rare. A
// single successful probe lifts it, restoring the normal cadence.
//
// The zero value is ready to use with the defaults. Not safe for
// concurrent use; callers hold their own lock.
type Quarantine struct {
	Threshold int // wedge openings before quarantine engages (0 = default)
	Factor    int // cooldown multiplier while quarantined (0 = default)

	wedges  int  // consecutive wedge-class openings
	active  bool // currently quarantined
	entries int  // times quarantine has been entered, for reporting
}

func (q *Quarantine) threshold() int {
	if q.Threshold > 0 {
		return q.Threshold
	}
	return DefaultQuarantineThreshold
}

func (q *Quarantine) factor() int {
	if q.Factor > 0 {
		return q.Factor
	}
	return DefaultQuarantineFactor
}

// RecordWedge notes a wedge-class breaker opening and reports whether
// this one pushed the state into quarantine.
func (q *Quarantine) RecordWedge() (entered bool) {
	q.wedges++
	if !q.active && q.wedges >= q.threshold() {
		q.active = true
		q.entries++
		return true
	}
	return false
}

// RecordRecovery notes a healthy step; it resets the wedge tally and
// lifts an active quarantine.
func (q *Quarantine) RecordRecovery() {
	q.wedges = 0
	q.active = false
}

// Active reports whether quarantine is engaged.
func (q *Quarantine) Active() bool { return q.active }

// Entries reports how many times quarantine has been entered.
func (q *Quarantine) Entries() int { return q.entries }

// Cooldown maps the breaker's base cooldown to the effective one:
// stretched by Factor while quarantined, untouched otherwise.
func (q *Quarantine) Cooldown(base int) int {
	if q.active {
		return base * q.factor()
	}
	return base
}
