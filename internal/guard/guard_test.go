package guard

import (
	"errors"
	"strings"
	"testing"
	"time"

	"vdcpower/internal/devs"
)

func TestDefaultStepBudget(t *testing.T) {
	b := DefaultStepBudget()
	if b.MaxEvents != DefaultMaxEvents || b.MaxSameTimeEvents != DefaultMaxSameTimeEvents || b.Wall != DefaultWall {
		t.Fatalf("DefaultStepBudget = %+v", b)
	}
}

func TestDevsBudgetLowering(t *testing.T) {
	interrupt := func() bool { return true }
	db := StepBudget{MaxEvents: 7, MaxSameTimeEvents: 3, Wall: time.Second}.DevsBudget(interrupt)
	if db.MaxEvents != 7 || db.MaxSameTimeEvents != 3 {
		t.Fatalf("DevsBudget = %+v", db)
	}
	if db.Interrupt == nil || !db.Interrupt() {
		t.Fatal("interrupt not threaded through")
	}
}

func TestWatchdogExpires(t *testing.T) {
	var w Watchdog
	if w.Expired() {
		t.Fatal("zero watchdog reports expired")
	}
	w.Arm(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !w.Expired() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never expired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWatchdogDisarmInvalidates(t *testing.T) {
	var w Watchdog
	w.Arm(time.Millisecond)
	w.Disarm()
	time.Sleep(20 * time.Millisecond) // let the stale timer fire
	if w.Expired() {
		t.Fatal("expired after Disarm: stale timer generation was honored")
	}
}

func TestWatchdogRearmSupersedes(t *testing.T) {
	var w Watchdog
	w.Arm(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	w.Arm(time.Hour) // new generation: the old expiry must not leak in
	if w.Expired() {
		t.Fatal("old generation's expiry survived a re-arm")
	}
	w.Disarm()
}

func TestWatchdogZeroDurationNeverExpires(t *testing.T) {
	var w Watchdog
	w.Arm(0)
	time.Sleep(5 * time.Millisecond)
	if w.Expired() {
		t.Fatal("zero-duration arm expired")
	}
	w.Disarm()
}

func TestStepAbortErrorChain(t *testing.T) {
	be := &devs.BudgetError{Reason: devs.ReasonMaxEvents, At: 42, Events: 9}
	sa := &StepAbort{Period: 3, Err: be}
	if !errors.Is(sa, devs.ErrBudgetExceeded) {
		t.Fatal("StepAbort does not unwrap to ErrBudgetExceeded")
	}
	got, ok := AsStepAbort(sa)
	if !ok || got.Period != 3 {
		t.Fatalf("AsStepAbort = %+v, %v", got, ok)
	}
	if !IsStepAbort(sa) {
		t.Fatal("IsStepAbort = false")
	}
	if IsStepAbort(errors.New("plain")) {
		t.Fatal("IsStepAbort matched a plain error")
	}
	if !strings.Contains(sa.Error(), "event budget") {
		t.Fatalf("Error() = %q", sa.Error())
	}
	wall := &StepAbort{Period: 4, Wall: true, Err: be}
	if !strings.Contains(wall.Error(), "wall-clock deadline") {
		t.Fatalf("Error() = %q", wall.Error())
	}
}

func TestQuarantineStateMachine(t *testing.T) {
	var q Quarantine // zero value: threshold 2, factor 6
	if q.Active() || q.Cooldown(10) != 10 {
		t.Fatalf("zero value: active=%v cooldown=%d", q.Active(), q.Cooldown(10))
	}
	if q.RecordWedge() {
		t.Fatal("entered quarantine on the first wedge")
	}
	if !q.RecordWedge() {
		t.Fatal("second consecutive wedge did not enter quarantine")
	}
	if !q.Active() || q.Entries() != 1 {
		t.Fatalf("active=%v entries=%d", q.Active(), q.Entries())
	}
	if q.Cooldown(10) != 10*DefaultQuarantineFactor {
		t.Fatalf("quarantined cooldown = %d", q.Cooldown(10))
	}
	if q.RecordWedge() {
		t.Fatal("re-entered quarantine while already active")
	}
	q.RecordRecovery()
	if q.Active() || q.Cooldown(10) != 10 {
		t.Fatal("recovery did not lift quarantine")
	}
	if q.Entries() != 1 {
		t.Fatalf("entries reset by recovery: %d", q.Entries())
	}
	// The wedge tally resets on recovery: one wedge alone must not re-enter.
	if q.RecordWedge() {
		t.Fatal("single wedge after recovery entered quarantine")
	}
}

func TestQuarantineCustomKnobs(t *testing.T) {
	q := Quarantine{Threshold: 1, Factor: 3}
	if !q.RecordWedge() {
		t.Fatal("threshold 1 did not engage on first wedge")
	}
	if q.Cooldown(4) != 12 {
		t.Fatalf("cooldown = %d, want 12", q.Cooldown(4))
	}
}
