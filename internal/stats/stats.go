// Package stats provides the small statistical toolkit used across the
// repository: percentiles for response-time SLAs, running moments for
// monitors, and simple summaries for experiment reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns NaN for an empty
// input. The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes a percentile of an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
// It returns 0 for inputs with fewer than two elements.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Running accumulates streaming moments with Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or NaN if no samples were added.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// StdDev returns the running sample standard deviation.
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Min returns the smallest sample, or NaN if none were added.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest sample, or NaN if none were added.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Summary captures the distributional digest reported by the experiment
// harnesses.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs. The input is not modified.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max = nan, 0, nan, nan, nan, nan, nan
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = percentileSorted(sorted, 50)
	s.P90 = percentileSorted(sorted, 90)
	s.P99 = percentileSorted(sorted, 99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram is a fixed-bin histogram over [Lo, Hi); samples outside the
// range land in the first or last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		//lint:ignore panicpolicy constructor precondition: a binless histogram is a programming error
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		//lint:ignore panicpolicy constructor precondition: an empty range is a programming error
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Quantile returns an approximate quantile (0..1) from bin boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := q * float64(h.total)
	cum := 0.0
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target {
			var frac float64
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}
