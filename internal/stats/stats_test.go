package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 5.5},
		{100, 10},
		{90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 90)) {
		t.Fatal("expected NaN for empty input")
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{42}, 90); got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestPercentileClampsP(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -5); got != 1 {
		t.Fatalf("p<0: got %v", got)
	}
	if got := Percentile(xs, 250); got != 3 {
		t.Fatalf("p>100: got %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestStdDevDegenerate(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev of <2 samples must be 0")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		r.Add(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("running mean %v vs %v", r.Mean(), Mean(xs))
	}
	if math.Abs(r.StdDev()-StdDev(xs)) > 1e-9 {
		t.Fatalf("running sd %v vs %v", r.StdDev(), StdDev(xs))
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if r.Min() != lo || r.Max() != hi {
		t.Fatalf("min/max mismatch")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatal("empty Running should report NaN")
	}
	if r.StdDev() != 0 {
		t.Fatal("empty Running StdDev should be 0")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("bad summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) {
		t.Fatalf("bad empty summary %+v", s)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := Percentile(xs, pa), Percentile(xs, pb)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return qa <= qb+1e-12 && qa >= sorted[0]-1e-12 && qb <= sorted[len(sorted)-1]+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if h.Total() != 1000 {
		t.Fatalf("Total = %d", h.Total())
	}
	q := h.Quantile(0.9)
	if q < 85 || q > 95 {
		t.Fatalf("Quantile(0.9) = %v, want ~90", q)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-5)
	h.Add(50)
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Fatalf("out-of-range samples misplaced: %v", h.Counts)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("expected NaN")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkPercentile1k(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 90)
	}
}
