package stats_test

import (
	"fmt"

	"vdcpower/internal/stats"
)

func ExamplePercentile() {
	latencies := []float64{0.2, 0.4, 0.9, 1.1, 0.3, 0.5, 0.8, 1.4, 0.6, 0.7}
	fmt.Printf("p90 = %.2fs\n", stats.Percentile(latencies, 90))
	// Output: p90 = 1.13s
}

func ExampleRunning() {
	var r stats.Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	fmt.Printf("n=%d mean=%.1f\n", r.N(), r.Mean())
	// Output: n=8 mean=5.0
}
