package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMedian(t *testing.T) {
	if !math.IsNaN(Median(nil)) {
		t.Error("median of empty input should be NaN")
	}
	if got := Median([]float64{3}); got != 3 {
		t.Errorf("Median([3]) = %v", got)
	}
	if got := Median([]float64{1, 3, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
}

func TestMAD(t *testing.T) {
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD of empty input should be NaN")
	}
	// median 5, deviations {4,1,0,1,4} -> MAD 1.
	if got := MAD([]float64{1, 4, 5, 6, 9}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	// A wild outlier moves the standard deviation but not the MAD.
	base := []float64{10, 11, 12, 13, 14}
	spiked := []float64{10, 11, 12, 13, 1e6}
	if MAD(spiked) > 10*MAD(base) {
		t.Errorf("MAD not robust: base %v spiked %v", MAD(base), MAD(spiked))
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 100 + 10*rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, Median, 500, 0.95, rand.New(rand.NewSource(2)))
	if !(lo < hi) {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	med := Median(xs)
	if med < lo || med > hi {
		t.Errorf("median %v outside its own CI [%v, %v]", med, lo, hi)
	}
	if hi-lo > 10 {
		t.Errorf("CI for n=200 suspiciously wide: [%v, %v]", lo, hi)
	}
	// Deterministic under a fixed rng seed.
	lo2, hi2 := BootstrapCI(xs, Median, 500, 0.95, rand.New(rand.NewSource(2)))
	if lo != lo2 || hi != hi2 {
		t.Error("BootstrapCI not reproducible under a fixed seed")
	}
	// Defaults and edge cases.
	if l, h := BootstrapCI(nil, Median, 0, 0, rng); !math.IsNaN(l) || !math.IsNaN(h) {
		t.Errorf("empty input should yield NaNs, got [%v, %v]", l, h)
	}
	lo3, hi3 := BootstrapCI([]float64{5}, Median, -1, 2, rand.New(rand.NewSource(3)))
	if lo3 != 5 || hi3 != 5 {
		t.Errorf("single-point bootstrap = [%v, %v], want [5, 5]", lo3, hi3)
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = 100 + 5*rng.NormFloat64()
		ys[i] = 150 + 5*rng.NormFloat64() // clearly shifted
	}
	_, p := MannWhitney(xs, ys)
	if p > 1e-4 {
		t.Errorf("clear shift not detected: p = %v", p)
	}
	// Symmetry: swapping the samples gives the same p.
	_, p2 := MannWhitney(ys, xs)
	if math.Abs(p-p2) > 1e-12 {
		t.Errorf("p not symmetric: %v vs %v", p, p2)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Across many same-distribution draws, small p must be rare (the
	// test is calibrated): with alpha=0.01, well under 10% of 100
	// trials may reject.
	reject := 0
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = 100 + 20*rng.NormFloat64()
			ys[i] = 100 + 20*rng.NormFloat64()
		}
		if _, p := MannWhitney(xs, ys); p < 0.01 {
			reject++
		}
	}
	if reject > 8 {
		t.Errorf("same-distribution rejection rate too high: %d/100 at alpha=0.01", reject)
	}
}

func TestMannWhitneyEdgeCases(t *testing.T) {
	if _, p := MannWhitney(nil, []float64{1, 2}); p != 1 {
		t.Errorf("empty sample p = %v, want 1", p)
	}
	// All values tied: no ordering information, p = 1.
	if _, p := MannWhitney([]float64{7, 7, 7}, []float64{7, 7}); p != 1 {
		t.Errorf("all-tied p = %v, want 1", p)
	}
	// Identical samples: U = mu, p = 1.
	if _, p := MannWhitney([]float64{1, 2, 3}, []float64{1, 2, 3}); p != 1 {
		t.Errorf("identical samples p = %v, want 1", p)
	}
	// Complete separation of 8 vs 8 is significant even under the
	// normal approximation.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{11, 12, 13, 14, 15, 16, 17, 18}
	u, p := MannWhitney(xs, ys)
	if u != 0 {
		t.Errorf("complete separation U = %v, want 0", u)
	}
	if p > 0.01 {
		t.Errorf("complete separation p = %v, want < 0.01", p)
	}
	// Ties spanning both samples still produce a sane p in [0, 1].
	if _, p := MannWhitney([]float64{1, 2, 2, 3}, []float64{2, 2, 4}); p < 0 || p > 1 {
		t.Errorf("tied p out of range: %v", p)
	}
}
