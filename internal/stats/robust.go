package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Median returns the 50th percentile of xs, or NaN for an empty input.
// The input is not modified.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// MAD returns the median absolute deviation of xs — the median of
// |x - median(xs)| — a robust spread estimate that, unlike the standard
// deviation, is not dominated by a single outlier rep. It returns NaN
// for an empty input. The raw (unscaled) MAD is returned; multiply by
// 1.4826 to estimate sigma under normality.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// BootstrapCI estimates a confidence interval for stat(xs) by the
// percentile bootstrap: resamples draws with replacement from xs, each
// scored by stat, and the (1-conf)/2 and (1+conf)/2 quantiles of the
// scores bound the interval. rng supplies the resampling randomness so
// callers control reproducibility (pass rand.New(rand.NewSource(seed))).
// resamples <= 0 selects 1000; conf outside (0,1) selects 0.95. An empty
// input yields (NaN, NaN).
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, conf float64, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	scores := make([]float64, resamples)
	resample := make([]float64, len(xs))
	for i := range scores {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		scores[i] = stat(resample)
	}
	sort.Float64s(scores)
	alpha := (1 - conf) / 2
	lo = Percentile(scores, 100*alpha)
	hi = Percentile(scores, 100*(1-alpha))
	return lo, hi
}

// MannWhitney runs the two-sided Mann-Whitney U test (Wilcoxon rank-sum)
// on independent samples xs and ys and returns the U statistic (the
// smaller of U1/U2) and the p-value under the tie-corrected normal
// approximation with continuity correction. Small p means the two
// samples are unlikely to come from the same distribution; the bench
// compare engine pairs it with a median-shift threshold so only shifts
// that are both large and significant classify as regressions.
//
// Degenerate inputs are conservative: an empty sample, or samples whose
// values are all tied, return p = 1 (no evidence of a shift). The normal
// approximation is coarse below ~8 reps per side; with n=5 vs 5 the
// smallest attainable p is ≈0.01, so pick Alpha accordingly.
func MannWhitney(xs, ys []float64) (u, p float64) {
	n1, n2 := float64(len(xs)), float64(len(ys))
	//lint:ignore floatcompare n1/n2 are integer sample counts; exact zero test is intended
	if n1 == 0 || n2 == 0 {
		return math.NaN(), 1
	}
	type obs struct {
		v     float64
		first bool // belongs to xs
	}
	all := make([]obs, 0, len(xs)+len(ys))
	for _, x := range xs {
		all = append(all, obs{x, true})
	}
	for _, y := range ys {
		all = append(all, obs{y, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Average ranks over tie groups, accumulating the tie correction
	// term sum(t^3 - t) as each group closes.
	r1 := 0.0     // rank sum of xs
	tieSum := 0.0 // sum over tie groups of t^3 - t
	n := len(all)
	for i := 0; i < n; {
		j := i
		//lint:ignore floatcompare rank ties are exact equality by definition
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := (float64(i+1) + float64(j)) / 2 // average 1-based rank of the group
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		tieSum += t*t*t - t
		i = j
	}

	u1 := r1 - n1*(n1+1)/2
	u2 := n1*n2 - u1
	u = math.Min(u1, u2)

	mu := n1 * n2 / 2
	nn := n1 + n2
	variance := n1 * n2 / 12 * (nn + 1 - tieSum/(nn*(nn-1)))
	if variance <= 0 {
		return u, 1 // every observation tied: no ordering information
	}
	// Continuity-corrected z for the smaller U (always <= mu).
	z := (mu - u - 0.5) / math.Sqrt(variance)
	if z <= 0 {
		return u, 1
	}
	p = math.Erfc(z / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return u, p
}
