package stats

import (
	"math"
	"testing"
)

// TestPercentileEdgeCases covers the boundary inputs the SLA monitors can
// feed the percentile estimator: empty windows, single samples, NaN
// contamination, and the extreme ranks.
func TestPercentileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64 // NaN means "expect NaN"
	}{
		{"empty", nil, 50, nan},
		{"empty-p0", []float64{}, 0, nan},
		{"single-p0", []float64{3.5}, 0, 3.5},
		{"single-p50", []float64{3.5}, 50, 3.5},
		{"single-p100", []float64{3.5}, 100, 3.5},
		{"p0-is-min", []float64{9, 1, 5}, 0, 1},
		{"p100-is-max", []float64{9, 1, 5}, 100, 9},
		{"p-below-zero-clamps", []float64{9, 1, 5}, -10, 1},
		{"p-above-hundred-clamps", []float64{9, 1, 5}, 110, 9},
		{"interpolates", []float64{0, 10}, 25, 2.5},
		{"median-even", []float64{1, 2, 3, 4}, 50, 2.5},
		// sort.Float64s orders NaN before every other value, so p0 of a
		// contaminated window is NaN while upper ranks stay meaningful.
		{"nan-sorts-first", []float64{1, nan, 2}, 0, nan},
		{"nan-p100-is-max", []float64{1, nan, 2}, 100, 2},
		{"nan-p50", []float64{1, nan, 2}, 50, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Percentile(tc.xs, tc.p)
			if math.IsNaN(tc.want) {
				if !math.IsNaN(got) {
					t.Fatalf("Percentile(%v, %v) = %v, want NaN", tc.xs, tc.p, got)
				}
				return
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.xs, tc.p, got, tc.want)
			}
		})
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.P50) || !math.IsNaN(s.Max) {
		t.Fatalf("empty summary: %+v", s)
	}
	if s.StdDev != 0 {
		t.Fatalf("empty summary stddev = %v", s.StdDev)
	}
	s = Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Min != 7 || s.P50 != 7 || s.P99 != 7 || s.Max != 7 {
		t.Fatalf("single-sample summary: %+v", s)
	}
	if s.StdDev != 0 {
		t.Fatalf("single-sample stddev = %v", s.StdDev)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.N() != 0 || !math.IsNaN(r.Mean()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Fatalf("zero-value Running: n=%d mean=%v min=%v max=%v", r.N(), r.Mean(), r.Min(), r.Max())
	}
	if r.StdDev() != 0 {
		t.Fatalf("zero-value stddev = %v", r.StdDev())
	}
	r.Add(-2)
	if r.N() != 1 || r.Mean() != -2 || r.Min() != -2 || r.Max() != -2 || r.StdDev() != 0 {
		t.Fatalf("one-sample Running: n=%d mean=%v min=%v max=%v sd=%v",
			r.N(), r.Mean(), r.Min(), r.Max(), r.StdDev())
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	// Samples outside [Lo, Hi) clamp into the terminal bins.
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d", h.Total())
	}
	if q := h.Quantile(1); q > 10 || q < 8 {
		t.Fatalf("q1 = %v, want in last bin", q)
	}
}
