package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Defaults applied when a profile leaves a tuning field zero.
const (
	defaultOutlierFactor       = 10.0
	defaultStuckPeriods        = 3
	defaultAbortAfterPasses    = 2
	defaultMigrationBackoffSec = 5.0
)

// CrashPolicy decides what happens to a crashed server's VMs.
type CrashPolicy string

// Crash policies.
const (
	// Evacuate re-places the crashed server's VMs on the surviving fleet
	// (waking servers or overcommitting if it must; the watchdog relieves
	// any resulting overload). VM conservation holds.
	Evacuate CrashPolicy = "evacuate"
	// Lose drops the crashed server's VMs from the simulation — the
	// checker is told which VM IDs were lost so conservation laws adjust
	// their baseline instead of reporting false violations.
	Lose CrashPolicy = "lose"
)

// valid reports whether the policy is known ("" means default).
func (p CrashPolicy) valid() bool { return p == "" || p == Evacuate || p == Lose }

// SensorProfile perturbs response-time measurements.
type SensorProfile struct {
	// DropoutProb is the per-read probability the measurement is lost
	// (the controller sees NaN and engages its hold window).
	DropoutProb float64 `json:"dropout_prob,omitempty"`
	// OutlierProb is the per-read probability the measurement is scaled
	// by OutlierFactor (default 10x) — a garbage percentile.
	OutlierProb   float64 `json:"outlier_prob,omitempty"`
	OutlierFactor float64 `json:"outlier_factor,omitempty"`
	// StuckProb is the per-read probability the sensor freezes at the
	// current value for StuckPeriods reads (default 3).
	StuckProb    float64 `json:"stuck_prob,omitempty"`
	StuckPeriods int     `json:"stuck_periods,omitempty"`
}

// DVFSProfile fails frequency actuations.
type DVFSProfile struct {
	// FailProb is the per-(server, step) probability a P-state request
	// is not applied.
	FailProb float64 `json:"fail_prob,omitempty"`
}

// MigrationProfile aborts live migrations.
type MigrationProfile struct {
	// AbortProb is the per-attempt probability a migration aborts
	// mid-copy (the VM stays on the source).
	AbortProb float64 `json:"abort_prob,omitempty"`
	// AbortAfterPasses models where the abort hits: after this many
	// pre-copy passes (default 2; see cluster.MigrationModel).
	AbortAfterPasses int `json:"abort_after_passes,omitempty"`
	// MaxRetries bounds the retry loop after an abort (default 0: no
	// retries). Retries back off deterministically from BackoffSec.
	MaxRetries int     `json:"max_retries,omitempty"`
	BackoffSec float64 `json:"backoff_sec,omitempty"`
}

// OptimizerProfile fails whole consolidation passes.
type OptimizerProfile struct {
	// ErrorProb is the per-pass probability the consolidator returns a
	// transient error; degraded harnesses skip the pass and continue.
	ErrorProb float64 `json:"error_prob,omitempty"`
}

// CrashSpec schedules one server crash.
type CrashSpec struct {
	// Step is the trace step the crash fires at.
	Step int `json:"step"`
	// Server names the victim; empty picks one active server by hash.
	Server string `json:"server,omitempty"`
	// Policy overrides the profile-level crash policy for this crash.
	Policy CrashPolicy `json:"policy,omitempty"`
}

// CrashProfile fails whole servers.
type CrashProfile struct {
	// At lists scheduled crashes.
	At []CrashSpec `json:"at,omitempty"`
	// Prob is the per-(active server, step) crash probability.
	Prob float64 `json:"prob,omitempty"`
	// Policy is the default fate of a crashed server's VMs (evacuate).
	Policy CrashPolicy `json:"policy,omitempty"`
}

// ServeProfile fails serve control steps.
type ServeProfile struct {
	// ErrorProb is the per-step probability the control step fails.
	ErrorProb float64 `json:"error_prob,omitempty"`
	// UntilStep stops injection at this step (exclusive) when > 0, so
	// recovery after a fault burst is observable.
	UntilStep int `json:"until_step,omitempty"`
}

// GuardProfile exhausts control-step execution budgets.
type GuardProfile struct {
	// ExhaustProb is the per-period probability the step's event budget
	// is exhausted (the drain aborts through the guard layer).
	ExhaustProb float64 `json:"exhaust_prob,omitempty"`
	// UntilStep stops injection at this step (exclusive) when > 0, so
	// breaker recovery and quarantine exit are observable.
	UntilStep int `json:"until_step,omitempty"`
}

// Profile is one fault-injection configuration, loadable from JSON
// (cmd/dcsim -faults profile.json). The zero profile injects nothing.
type Profile struct {
	// Seed scopes every hash decision; two injectors with equal profiles
	// make identical decisions.
	Seed      int64            `json:"seed"`
	Sensor    SensorProfile    `json:"sensor,omitempty"`
	DVFS      DVFSProfile      `json:"dvfs,omitempty"`
	Migration MigrationProfile `json:"migration,omitempty"`
	Optimizer OptimizerProfile `json:"optimizer,omitempty"`
	Crash     CrashProfile     `json:"crash,omitempty"`
	Serve     ServeProfile     `json:"serve,omitempty"`
	Guard     GuardProfile     `json:"guard,omitempty"`
}

// probRange checks one probability field.
func probRange(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("fault: %s = %v outside [0,1]", name, p)
	}
	return nil
}

// Validate checks every probability and enum in the profile.
func (p Profile) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"sensor.dropout_prob", p.Sensor.DropoutProb},
		{"sensor.outlier_prob", p.Sensor.OutlierProb},
		{"sensor.stuck_prob", p.Sensor.StuckProb},
		{"dvfs.fail_prob", p.DVFS.FailProb},
		{"migration.abort_prob", p.Migration.AbortProb},
		{"optimizer.error_prob", p.Optimizer.ErrorProb},
		{"crash.prob", p.Crash.Prob},
		{"serve.error_prob", p.Serve.ErrorProb},
		{"guard.exhaust_prob", p.Guard.ExhaustProb},
	}
	for _, c := range checks {
		if err := probRange(c.name, c.v); err != nil {
			return err
		}
	}
	if p.Sensor.OutlierFactor < 0 {
		return fmt.Errorf("fault: sensor.outlier_factor = %v is negative", p.Sensor.OutlierFactor)
	}
	if p.Migration.MaxRetries < 0 {
		return fmt.Errorf("fault: migration.max_retries = %d is negative", p.Migration.MaxRetries)
	}
	if p.Migration.BackoffSec < 0 {
		return fmt.Errorf("fault: migration.backoff_sec = %v is negative", p.Migration.BackoffSec)
	}
	if !p.Crash.Policy.valid() {
		return fmt.Errorf("fault: unknown crash policy %q", p.Crash.Policy)
	}
	for i, sc := range p.Crash.At {
		if sc.Step < 0 {
			return fmt.Errorf("fault: crash.at[%d].step = %d is negative", i, sc.Step)
		}
		if !sc.Policy.valid() {
			return fmt.Errorf("fault: crash.at[%d] has unknown policy %q", i, sc.Policy)
		}
	}
	return nil
}

// Enabled reports whether the profile can inject anything at all.
func (p Profile) Enabled() bool {
	return p.Sensor.DropoutProb > 0 || p.Sensor.OutlierProb > 0 || p.Sensor.StuckProb > 0 ||
		p.DVFS.FailProb > 0 || p.Migration.AbortProb > 0 || p.Optimizer.ErrorProb > 0 ||
		p.Crash.Prob > 0 || len(p.Crash.At) > 0 || p.Serve.ErrorProb > 0 ||
		p.Guard.ExhaustProb > 0
}

// ReadProfile parses and validates a JSON profile.
func ReadProfile(r io.Reader) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("fault: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// LoadProfile reads a JSON profile from a file.
func LoadProfile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, err
	}
	//lint:ignore errcheck close error on a read-only file cannot lose data
	defer f.Close()
	return ReadProfile(f)
}
