// Package fault is the deterministic fault-injection plane of the
// two-level power manager: sensor dropouts, outliers and stuck values on
// the response-time measurements, DVFS actuation failures, live-migration
// aborts, transient optimizer errors, whole-server crashes, and serve
// step errors. Harnesses (dcsim, testbed, serve) attach one Injector per
// run; the instrumented layers consult it at each decision point and fall
// back to their graceful-degradation policies when a fault fires.
//
// Two design rules govern the package, mirroring telemetry:
//
//  1. Injection is opt-in and nil-safe. A nil *Injector is a valid
//     disabled plane: every decision method no-ops (no fault) after a
//     single nil check, so production paths pay ~nothing.
//
//  2. Decisions are pure functions of (seed, kind, step, target,
//     attempt), derived by hashing rather than by consuming a shared
//     random stream. Same-seed runs inject byte-identical fault
//     sequences, and adding a new consultation site cannot perturb the
//     decisions of existing ones — the property a shared *rand.Rand
//     cannot give. No math/rand, no wall clock: vdclint's determinism
//     analyzer covers this package.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"vdcpower/internal/telemetry"
)

// Kind labels one fault class.
type Kind int

// The fault taxonomy (DESIGN.md §9).
const (
	// None marks "no fault injected" in decision results.
	None Kind = iota
	// SensorDropout replaces a response-time measurement with NaN.
	SensorDropout
	// SensorOutlier multiplies a measurement by OutlierFactor.
	SensorOutlier
	// SensorStuck freezes a sensor at its last value for StuckPeriods.
	SensorStuck
	// DVFSFailure makes a frequency actuation request fail.
	DVFSFailure
	// MigrationAbort aborts a live migration after N pre-copy passes.
	MigrationAbort
	// OptimizerError fails a whole consolidator/watchdog pass.
	OptimizerError
	// ServerCrash fails a server; its VMs are evacuated or lost.
	ServerCrash
	// StepError fails one serve control step.
	StepError
	// BudgetExceeded exhausts a control step's execution budget: the
	// period's event drain is cut short by the guard layer, exercising
	// the step-abort → breaker → quarantine degradation path.
	BudgetExceeded
)

// String names the kind for logs and metric labels.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case SensorDropout:
		return "sensor_dropout"
	case SensorOutlier:
		return "sensor_outlier"
	case SensorStuck:
		return "sensor_stuck"
	case DVFSFailure:
		return "dvfs_failure"
	case MigrationAbort:
		return "migration_abort"
	case OptimizerError:
		return "optimizer_error"
	case ServerCrash:
		return "server_crash"
	case StepError:
		return "step_error"
	case BudgetExceeded:
		return "budget_exceeded"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Record is one injected fault, accumulated in the injector's log and in
// optimizer Reports (the typed FaultLog).
type Record struct {
	Kind   Kind   `json:"kind"`
	Step   int    `json:"step"`
	Target string `json:"target,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// String renders the record on one line.
func (r Record) String() string {
	s := fmt.Sprintf("%s step=%d", r.Kind, r.Step)
	if r.Target != "" {
		s += " target=" + r.Target
	}
	if r.Detail != "" {
		s += " (" + r.Detail + ")"
	}
	return s
}

// Error is a typed injected failure. Degradation layers detect it with
// IsInjected and skip-and-continue; real errors still abort.
type Error struct {
	Kind   Kind
	Step   int
	Target string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at step %d (%s)", e.Kind, e.Step, e.Target)
}

// IsInjected reports whether err (or anything it wraps) is an injected
// fault rather than a real failure.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Injectable is implemented by components (consolidators, controllers)
// that can consult a fault plane. Harnesses type-assert against it so
// core interfaces stay fault-free, mirroring telemetry.Traceable.
type Injectable interface {
	SetFaults(*Injector)
}

// stuckState tracks one frozen sensor.
type stuckState struct {
	value float64
	left  int // periods the freeze still covers
}

// Injector decides, deterministically, which faults fire where. Construct
// with New; a nil *Injector is a valid disabled plane. The mutex guards
// the log and stuck-sensor state so a serving loop and its HTTP handlers
// may share one injector; decisions themselves are pure and unaffected
// by interleaving.
type Injector struct {
	prof Profile

	mu       sync.Mutex
	step     int
	log      []Record
	injected int
	byKind   map[Kind]int
	stuck    map[string]*stuckState

	metrics  *telemetry.Registry
	counters map[Kind]*telemetry.Counter
}

// New builds an injector for the profile. Invalid profiles are rejected
// by Profile.Validate; New trusts its input (cmd flag parsing validates).
func New(p Profile) *Injector {
	return &Injector{
		prof:   p,
		byKind: map[Kind]int{},
		stuck:  map[string]*stuckState{},
	}
}

// AttachMetrics publishes per-kind injected-fault counters
// (vdcpower_faults_injected_total{kind=...}) into reg. Nil detaches.
func (in *Injector) AttachMetrics(reg *telemetry.Registry) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.metrics = reg
	in.counters = map[Kind]*telemetry.Counter{}
}

// Profile returns the injector's profile (zero Profile when nil).
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.prof
}

// SetStep advances the injector's step cursor. Harnesses call it once per
// trace step / control period so consultation sites that do not know the
// step (the optimizer's Consolidate has no step parameter) still make
// step-scoped decisions.
func (in *Injector) SetStep(step int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.step = step
	in.mu.Unlock()
}

// Step returns the current step cursor.
func (in *Injector) Step() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step
}

// record logs one injected fault under the mutex.
func (in *Injector) record(r Record) {
	in.mu.Lock()
	in.log = append(in.log, r)
	in.injected++
	in.byKind[r.Kind]++
	reg, counters := in.metrics, in.counters
	if reg != nil {
		c, ok := counters[r.Kind]
		if !ok {
			c = reg.Counter("vdcpower_faults_injected_total",
				"faults injected by the deterministic fault plane, by kind",
				telemetry.Label{Key: "kind", Value: r.Kind.String()})
			counters[r.Kind] = c
		}
		in.mu.Unlock()
		c.Inc()
		return
	}
	in.mu.Unlock()
}

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// InjectedByKind returns the per-kind injection counts (a copy).
func (in *Injector) InjectedByKind() map[Kind]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.byKind))
	for k, v := range in.byKind {
		out[k] = v
	}
	return out
}

// Log returns the accumulated fault log (a copy).
func (in *Injector) Log() []Record {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Record(nil), in.log...)
}

// --- deterministic decision hashing -----------------------------------

// decide hashes (seed, kind, step, target, attempt) into [0,1) with
// splitmix64 over an FNV-folded tuple. Each decision point draws from its
// own pure stream: call order cannot perturb outcomes.
func (in *Injector) decide(kind Kind, step int, target string, attempt int) float64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211 // FNV-64 prime
	}
	mix(uint64(in.prof.Seed))
	mix(uint64(kind))
	mix(uint64(int64(step)))
	mix(uint64(int64(attempt)))
	for i := 0; i < len(target); i++ {
		mix(uint64(target[i]))
	}
	// splitmix64 finalizer: FNV alone is too linear for threshold tests.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// --- sensor faults -----------------------------------------------------

// SensorRead passes one response-time measurement through the fault
// plane. It returns the possibly perturbed value and the fault kind that
// fired (None when untouched). Dropouts return NaN — the controller's
// measurement guard treats NaN as a missing sample. Stuck sensors return
// the value frozen at the first stuck period for StuckPeriods reads.
func (in *Injector) SensorRead(step int, target string, v float64) (float64, Kind) {
	if in == nil {
		return v, None
	}
	p := in.prof.Sensor
	if p.DropoutProb <= 0 && p.OutlierProb <= 0 && p.StuckProb <= 0 {
		return v, None
	}
	// A sensor already stuck keeps returning its frozen value.
	in.mu.Lock()
	if st, ok := in.stuck[target]; ok && st.left > 0 {
		st.left--
		frozen := st.value
		in.mu.Unlock()
		in.record(Record{Kind: SensorStuck, Step: step, Target: target,
			Detail: fmt.Sprintf("frozen at %.4f", frozen)})
		return frozen, SensorStuck
	}
	in.mu.Unlock()
	if in.decide(SensorDropout, step, target, 0) < p.DropoutProb {
		in.record(Record{Kind: SensorDropout, Step: step, Target: target})
		return math.NaN(), SensorDropout
	}
	if in.decide(SensorOutlier, step, target, 0) < p.OutlierProb {
		factor := p.OutlierFactor
		if factor <= 0 {
			factor = defaultOutlierFactor
		}
		in.record(Record{Kind: SensorOutlier, Step: step, Target: target,
			Detail: fmt.Sprintf("x%.1f", factor)})
		return v * factor, SensorOutlier
	}
	if in.decide(SensorStuck, step, target, 0) < p.StuckProb {
		periods := p.StuckPeriods
		if periods <= 0 {
			periods = defaultStuckPeriods
		}
		in.mu.Lock()
		in.stuck[target] = &stuckState{value: v, left: periods - 1}
		in.mu.Unlock()
		in.record(Record{Kind: SensorStuck, Step: step, Target: target,
			Detail: fmt.Sprintf("stuck at %.4f for %d periods", v, periods)})
		return v, SensorStuck
	}
	return v, None
}

// --- DVFS faults -------------------------------------------------------

// DVFSFails reports whether the frequency actuation request for target
// fails this step. The caller applies the degradation policy: keep the
// previous P-state when it still covers demand, else fail safe to the
// maximum frequency (never run below demand because of a failed knob).
func (in *Injector) DVFSFails(step int, target string) bool {
	if in == nil || in.prof.DVFS.FailProb <= 0 {
		return false
	}
	if in.decide(DVFSFailure, step, target, 0) >= in.prof.DVFS.FailProb {
		return false
	}
	in.record(Record{Kind: DVFSFailure, Step: step, Target: target})
	return true
}

// --- migration faults --------------------------------------------------

// MigrationAborts reports whether live-migration attempt number attempt
// (0-based) of vmID aborts mid-copy. Retry loops consult it once per
// attempt; each attempt hashes independently, so a retry can succeed
// deterministically where the first attempt failed.
func (in *Injector) MigrationAborts(vmID string, attempt int) bool {
	if in == nil || in.prof.Migration.AbortProb <= 0 {
		return false
	}
	step := in.Step()
	if in.decide(MigrationAbort, step, vmID, attempt) >= in.prof.Migration.AbortProb {
		return false
	}
	passes := in.prof.Migration.AbortAfterPasses
	if passes <= 0 {
		passes = defaultAbortAfterPasses
	}
	in.record(Record{Kind: MigrationAbort, Step: step, Target: vmID,
		Detail: fmt.Sprintf("attempt %d aborted after %d pre-copy passes, backoff %.1fs",
			attempt, passes, in.MigrationBackoff(attempt))})
	return true
}

// MigrationMaxRetries returns how many retries a failed migration gets
// before the move is abandoned (0 when no fault plane is attached).
func (in *Injector) MigrationMaxRetries() int {
	if in == nil {
		return 0
	}
	if in.prof.Migration.MaxRetries < 0 {
		return 0
	}
	return in.prof.Migration.MaxRetries
}

// MigrationBackoff returns the deterministic exponential backoff (in
// seconds of simulated time) applied before retry attempt (1-based
// doubling from BackoffSec, capped at 8x).
func (in *Injector) MigrationBackoff(attempt int) float64 {
	if in == nil {
		return 0
	}
	base := in.prof.Migration.BackoffSec
	if base <= 0 {
		base = defaultMigrationBackoffSec
	}
	mult := 1.0
	for i := 0; i < attempt && mult < 8; i++ {
		mult *= 2
	}
	return base * mult
}

// --- optimizer faults --------------------------------------------------

// OptimizerError returns a typed injected error when this step's
// consolidator/watchdog pass should fail transiently, nil otherwise.
// Degraded harnesses detect it with IsInjected and skip the pass.
func (in *Injector) OptimizerError(target string) error {
	if in == nil || in.prof.Optimizer.ErrorProb <= 0 {
		return nil
	}
	step := in.Step()
	if in.decide(OptimizerError, step, target, 0) >= in.prof.Optimizer.ErrorProb {
		return nil
	}
	in.record(Record{Kind: OptimizerError, Step: step, Target: target})
	return &Error{Kind: OptimizerError, Step: step, Target: target}
}

// --- server crashes ----------------------------------------------------

// Crash is one server failure decided for a step.
type Crash struct {
	Server string
	Policy CrashPolicy
}

// Crashes returns the servers that crash at this step, drawn from the
// scheduled crash list plus the probabilistic per-server draw over the
// given candidate IDs (callers pass the active servers, in deterministic
// order). Each crash is injected once.
func (in *Injector) Crashes(step int, candidates []string) []Crash {
	if in == nil {
		return nil
	}
	p := in.prof.Crash
	var out []Crash
	policy := p.Policy
	if policy == "" {
		policy = Evacuate
	}
	for _, sc := range p.At {
		if sc.Step != step {
			continue
		}
		pol := sc.Policy
		if pol == "" {
			pol = policy
		}
		srv := sc.Server
		if srv == "" && len(candidates) > 0 {
			// Unnamed scheduled crash: pick deterministically by hash.
			srv = candidates[int(in.decide(ServerCrash, step, "scheduled", 0)*float64(len(candidates)))]
		}
		if srv == "" {
			continue
		}
		in.record(Record{Kind: ServerCrash, Step: step, Target: srv,
			Detail: fmt.Sprintf("scheduled, policy %s", pol)})
		out = append(out, Crash{Server: srv, Policy: pol})
	}
	if p.Prob > 0 {
		for _, id := range candidates {
			if in.decide(ServerCrash, step, id, 0) < p.Prob {
				in.record(Record{Kind: ServerCrash, Step: step, Target: id,
					Detail: fmt.Sprintf("random, policy %s", policy)})
				out = append(out, Crash{Server: id, Policy: policy})
			}
		}
	}
	return out
}

// --- serve step faults -------------------------------------------------

// StepError returns a typed injected error when serve's control step
// number step should fail, nil otherwise. Injection stops after
// Serve.UntilStep (exclusive) when set, so recovery is testable.
func (in *Injector) StepError(step int) error {
	if in == nil || in.prof.Serve.ErrorProb <= 0 {
		return nil
	}
	if in.prof.Serve.UntilStep > 0 && step >= in.prof.Serve.UntilStep {
		return nil
	}
	if in.decide(StepError, step, "serve", 0) >= in.prof.Serve.ErrorProb {
		return nil
	}
	in.record(Record{Kind: StepError, Step: step, Target: "serve"})
	return &Error{Kind: StepError, Step: step, Target: "serve"}
}

// --- guard faults ------------------------------------------------------

// BudgetExhausted reports whether control period number step should run
// with an exhausted execution budget. The harness reacts by draining the
// period under a one-event budget, so the abort travels the real kernel
// trip path rather than a synthetic error. Injection stops after
// Guard.UntilStep (exclusive) when set, so recovery is testable.
func (in *Injector) BudgetExhausted(step int) bool {
	if in == nil || in.prof.Guard.ExhaustProb <= 0 {
		return false
	}
	if in.prof.Guard.UntilStep > 0 && step >= in.prof.Guard.UntilStep {
		return false
	}
	if in.decide(BudgetExceeded, step, "guard", 0) >= in.prof.Guard.ExhaustProb {
		return false
	}
	in.record(Record{Kind: BudgetExceeded, Step: step, Target: "guard"})
	return true
}
