package fault

import (
	"strings"
	"testing"
)

func TestGuardProfileValidation(t *testing.T) {
	bad := Profile{Guard: GuardProfile{ExhaustProb: 1.5}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "guard.exhaust_prob") {
		t.Fatalf("Validate = %v", err)
	}
	good := Profile{Guard: GuardProfile{ExhaustProb: 1, UntilStep: 8}}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	if !good.Enabled() {
		t.Fatal("guard-only profile not Enabled")
	}
}

func TestBudgetExhaustedNilAndDisabled(t *testing.T) {
	var nilIn *Injector
	if nilIn.BudgetExhausted(0) {
		t.Fatal("nil injector exhausted a budget")
	}
	in := New(Profile{Seed: 1})
	for s := 0; s < 10; s++ {
		if in.BudgetExhausted(s) {
			t.Fatal("zero-probability profile fired")
		}
	}
}

func TestBudgetExhaustedStopsAtUntilStep(t *testing.T) {
	in := New(Profile{Seed: 5, Guard: GuardProfile{ExhaustProb: 1, UntilStep: 4}})
	for s := 0; s < 4; s++ {
		if !in.BudgetExhausted(s) {
			t.Fatalf("step %d should exhaust", s)
		}
	}
	for s := 4; s < 10; s++ {
		if in.BudgetExhausted(s) {
			t.Fatalf("injection did not stop at step %d", s)
		}
	}
	if in.Injected() == 0 {
		t.Fatal("exhaustions not recorded")
	}
	if n := in.InjectedByKind()[BudgetExceeded]; n != 4 {
		t.Fatalf("InjectedByKind[BudgetExceeded] = %d, want 4", n)
	}
}

func TestBudgetExhaustedDeterministic(t *testing.T) {
	p := Profile{Seed: 11, Guard: GuardProfile{ExhaustProb: 0.4}}
	a, b := New(p), New(p)
	for s := 0; s < 50; s++ {
		if a.BudgetExhausted(s) != b.BudgetExhausted(s) {
			t.Fatalf("same-seed injectors diverged at step %d", s)
		}
	}
}

func TestBudgetExceededKindString(t *testing.T) {
	if got := BudgetExceeded.String(); got != "budget_exceeded" {
		t.Fatalf("String = %q", got)
	}
}
