package fault

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"vdcpower/internal/telemetry"
)

// chaosProfile enables every fault class with moderate probabilities.
func chaosProfile() Profile {
	return Profile{
		Seed:      42,
		Sensor:    SensorProfile{DropoutProb: 0.2, OutlierProb: 0.1, OutlierFactor: 10, StuckProb: 0.1, StuckPeriods: 2},
		DVFS:      DVFSProfile{FailProb: 0.2},
		Migration: MigrationProfile{AbortProb: 0.3, AbortAfterPasses: 2, MaxRetries: 2, BackoffSec: 5},
		Optimizer: OptimizerProfile{ErrorProb: 0.2},
		Crash:     CrashProfile{At: []CrashSpec{{Step: 3, Server: "srv-0001"}}, Prob: 0.01},
		Serve:     ServeProfile{ErrorProb: 0.5, UntilStep: 10},
	}
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if v, k := in.SensorRead(0, "app", 1.5); v != 1.5 || k != None {
		t.Fatalf("nil SensorRead perturbed: %v %v", v, k)
	}
	if in.DVFSFails(0, "s") {
		t.Fatal("nil DVFSFails fired")
	}
	if in.MigrationAborts("vm", 0) {
		t.Fatal("nil MigrationAborts fired")
	}
	if in.MigrationMaxRetries() != 0 || in.MigrationBackoff(1) != 0 {
		t.Fatal("nil migration tuning nonzero")
	}
	if in.OptimizerError("IPAC") != nil || in.StepError(0) != nil {
		t.Fatal("nil injected an error")
	}
	if in.Crashes(0, []string{"a"}) != nil {
		t.Fatal("nil crashed a server")
	}
	if in.Injected() != 0 || in.Log() != nil || in.InjectedByKind() != nil {
		t.Fatal("nil has state")
	}
	in.SetStep(3)
	in.AttachMetrics(nil)
	if in.Step() != 0 {
		t.Fatal("nil has a step")
	}
	if in.Profile().Enabled() {
		t.Fatal("nil profile enabled")
	}
}

// drive runs a fixed consultation schedule and returns a transcript of
// every decision.
func drive(in *Injector) string {
	var b strings.Builder
	for step := 0; step < 20; step++ {
		in.SetStep(step)
		for _, app := range []string{"App1", "App2"} {
			v, k := in.SensorRead(step, app, 1.0)
			if math.IsNaN(v) {
				b.WriteString("nan ")
			}
			b.WriteString(k.String())
			b.WriteByte(' ')
		}
		for _, srv := range []string{"S1", "S2"} {
			if in.DVFSFails(step, srv) {
				b.WriteString("dvfs:" + srv + " ")
			}
		}
		for a := 0; a <= in.MigrationMaxRetries(); a++ {
			if !in.MigrationAborts("vm-7", a) {
				break
			}
		}
		if err := in.OptimizerError("IPAC"); err != nil {
			b.WriteString("opt ")
		}
		for _, c := range in.Crashes(step, []string{"S1", "S2", "S3"}) {
			b.WriteString("crash:" + c.Server + ":" + string(c.Policy) + " ")
		}
		if err := in.StepError(step); err != nil {
			b.WriteString("step ")
		}
		b.WriteByte('\n')
	}
	for _, r := range in.Log() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSameSeedIsReproducible(t *testing.T) {
	a := drive(New(chaosProfile()))
	b := drive(New(chaosProfile()))
	if a != b {
		t.Fatalf("same-seed transcripts differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "crash:srv-0001") {
		t.Fatalf("scheduled crash missing from transcript:\n%s", a)
	}
	other := chaosProfile()
	other.Seed = 43
	if drive(New(other)) == a {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestDecisionsAreCallOrderIndependent(t *testing.T) {
	// The same (step, target) decision must not depend on what else was
	// consulted before it — the property a shared rand stream lacks.
	a, b := New(chaosProfile()), New(chaosProfile())
	a.SetStep(5)
	b.SetStep(5)
	// Injector b burns unrelated decisions first.
	b.SensorRead(5, "AppX", 2.0)
	b.DVFSFails(5, "SX")
	b.OptimizerError("pMapper")
	va, ka := a.SensorRead(5, "App1", 1.0)
	vb, kb := b.SensorRead(5, "App1", 1.0)
	sameNaN := math.IsNaN(va) && math.IsNaN(vb)
	//lint:ignore floatcompare determinism contract: identical decisions produce identical bits
	if ka != kb || (va != vb && !sameNaN) {
		t.Fatalf("decision depends on call order: (%v,%v) vs (%v,%v)", va, ka, vb, kb)
	}
	if a.DVFSFails(5, "S1") != b.DVFSFails(5, "S1") {
		t.Fatal("DVFS decision depends on call order")
	}
	if a.MigrationAborts("vm-1", 0) != b.MigrationAborts("vm-1", 0) {
		t.Fatal("migration decision depends on call order")
	}
}

func TestSensorFaultRates(t *testing.T) {
	p := Profile{Seed: 7, Sensor: SensorProfile{DropoutProb: 0.25}}
	in := New(p)
	drops := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if v, k := in.SensorRead(i, "app", 1.0); k == SensorDropout {
			if !math.IsNaN(v) {
				t.Fatal("dropout did not return NaN")
			}
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.2 || got > 0.3 {
		t.Fatalf("dropout rate %.3f far from configured 0.25", got)
	}
	if in.Injected() != drops || in.InjectedByKind()[SensorDropout] != drops {
		t.Fatal("injection accounting mismatch")
	}
}

func TestSensorStuckFreezesValue(t *testing.T) {
	p := Profile{Seed: 1, Sensor: SensorProfile{StuckProb: 1, StuckPeriods: 3}}
	in := New(p)
	v0, k := in.SensorRead(0, "app", 1.5)
	if k != SensorStuck || v0 != 1.5 {
		t.Fatalf("first read: %v %v", v0, k)
	}
	// The next two reads return the frozen value regardless of input.
	for i := 1; i <= 2; i++ {
		v, k := in.SensorRead(i, "app", 9.9)
		if k != SensorStuck || v != 1.5 {
			t.Fatalf("read %d: got %v %v, want frozen 1.5", i, v, k)
		}
	}
	// Freeze expired: with StuckProb 1 it re-freezes at the new value.
	if v, _ := in.SensorRead(3, "app", 9.9); v != 9.9 {
		t.Fatalf("freeze did not expire: %v", v)
	}
	// Independent sensors do not share stuck state.
	if v, _ := in.SensorRead(1, "other", 4.4); v != 4.4 {
		t.Fatalf("stuck state leaked across targets: %v", v)
	}
}

func TestSensorOutlierScales(t *testing.T) {
	in := New(Profile{Seed: 2, Sensor: SensorProfile{OutlierProb: 1}})
	v, k := in.SensorRead(0, "app", 2.0)
	if k != SensorOutlier || v != 2.0*defaultOutlierFactor {
		t.Fatalf("outlier: %v %v", v, k)
	}
}

func TestMigrationRetrySchedule(t *testing.T) {
	in := New(Profile{Seed: 3, Migration: MigrationProfile{AbortProb: 1, MaxRetries: 3, BackoffSec: 2}})
	if in.MigrationMaxRetries() != 3 {
		t.Fatalf("retries = %d", in.MigrationMaxRetries())
	}
	wants := []float64{2, 4, 8, 16, 16} // doubling, capped at 8x base
	for i, w := range wants {
		//lint:ignore floatcompare exact doubling of an exact base
		if got := in.MigrationBackoff(i); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w)
		}
	}
	if !in.MigrationAborts("vm", 0) {
		t.Fatal("abort_prob 1 did not abort")
	}
}

func TestInjectedErrorsAreTyped(t *testing.T) {
	in := New(Profile{Seed: 4, Optimizer: OptimizerProfile{ErrorProb: 1}, Serve: ServeProfile{ErrorProb: 1}})
	in.SetStep(6)
	err := in.OptimizerError("IPAC")
	if err == nil || !IsInjected(err) {
		t.Fatalf("optimizer error not typed: %v", err)
	}
	if !strings.Contains(err.Error(), "optimizer_error") || !strings.Contains(err.Error(), "step 6") {
		t.Fatalf("error text: %v", err)
	}
	if serr := in.StepError(2); serr == nil || !IsInjected(serr) {
		t.Fatalf("step error not typed: %v", serr)
	}
	if IsInjected(bytes.ErrTooLarge) {
		t.Fatal("real error classified as injected")
	}
}

func TestServeInjectionStopsAtUntilStep(t *testing.T) {
	in := New(Profile{Seed: 5, Serve: ServeProfile{ErrorProb: 1, UntilStep: 4}})
	for s := 0; s < 4; s++ {
		if in.StepError(s) == nil {
			t.Fatalf("step %d should fail", s)
		}
	}
	for s := 4; s < 10; s++ {
		if in.StepError(s) != nil {
			t.Fatalf("injection did not stop at step %d", s)
		}
	}
}

func TestScheduledAndRandomCrashes(t *testing.T) {
	p := Profile{Seed: 6, Crash: CrashProfile{
		At:     []CrashSpec{{Step: 2, Server: "S2", Policy: Lose}, {Step: 5}},
		Policy: Evacuate,
	}}
	in := New(p)
	if got := in.Crashes(0, []string{"S1", "S2"}); got != nil {
		t.Fatalf("step 0 crashed %v", got)
	}
	got := in.Crashes(2, []string{"S1", "S2"})
	if len(got) != 1 || got[0].Server != "S2" || got[0].Policy != Lose {
		t.Fatalf("scheduled crash = %v", got)
	}
	// The unnamed crash picks one of the candidates deterministically.
	a := in.Crashes(5, []string{"S1", "S2", "S3"})
	b := New(p).Crashes(5, []string{"S1", "S2", "S3"})
	if len(a) != 1 || a[0].Policy != Evacuate || len(b) != 1 || a[0].Server != b[0].Server {
		t.Fatalf("unnamed crash not deterministic: %v vs %v", a, b)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	src := `{
		"seed": 11,
		"sensor": {"dropout_prob": 0.1, "outlier_prob": 0.05},
		"migration": {"abort_prob": 0.3, "max_retries": 2},
		"crash": {"at": [{"step": 8, "policy": "evacuate"}]}
	}`
	p, err := ReadProfile(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 11 || p.Sensor.DropoutProb != 0.1 || p.Migration.MaxRetries != 2 || len(p.Crash.At) != 1 {
		t.Fatalf("profile lost fields: %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("profile should be enabled")
	}
	if (Profile{}).Enabled() {
		t.Fatal("zero profile should be disabled")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Sensor: SensorProfile{DropoutProb: 1.5}},
		{Sensor: SensorProfile{OutlierFactor: -1, OutlierProb: 0.1}},
		{DVFS: DVFSProfile{FailProb: -0.1}},
		{Migration: MigrationProfile{MaxRetries: -1}},
		{Migration: MigrationProfile{BackoffSec: -1}},
		{Crash: CrashProfile{Policy: "explode"}},
		{Crash: CrashProfile{At: []CrashSpec{{Step: -1}}}},
		{Crash: CrashProfile{At: []CrashSpec{{Step: 1, Policy: "explode"}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d validated: %+v", i, p)
		}
	}
	if err := chaosProfile().Validate(); err != nil {
		t.Fatalf("chaos profile rejected: %v", err)
	}
	if _, err := ReadProfile(strings.NewReader(`{"sensor": {"dropout_prob": 2}}`)); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`{"no_such_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadProfile(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadProfileFromFile(t *testing.T) {
	if _, err := LoadProfile("/nonexistent/profile.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := New(Profile{Seed: 8, DVFS: DVFSProfile{FailProb: 1}})
	in.AttachMetrics(reg)
	in.DVFSFails(0, "S1")
	in.DVFSFails(1, "S1")
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `vdcpower_faults_injected_total{kind="dvfs_failure"} 2`) {
		t.Fatalf("counter missing:\n%s", buf.String())
	}
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	// serve shares one injector between its loop and HTTP handlers; the
	// chaos-smoke CI job runs this package under -race.
	in := New(chaosProfile())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.SetStep(i)
				in.SensorRead(i, "app", 1.0)
				in.StepError(i)
				_ = in.Injected()
				_ = in.Log()
			}
		}(g)
	}
	wg.Wait()
	if in.Injected() == 0 {
		t.Fatal("nothing injected")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{None, SensorDropout, SensorOutlier, SensorStuck, DVFSFailure,
		MigrationAbort, OptimizerError, ServerCrash, StepError}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") || seen[s] {
			t.Fatalf("bad or duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(99).String(), "kind(99)") {
		t.Fatal("unknown kind not labeled")
	}
	r := Record{Kind: MigrationAbort, Step: 3, Target: "vm-1", Detail: "attempt 0"}
	if !strings.Contains(r.String(), "migration_abort") || !strings.Contains(r.String(), "vm-1") {
		t.Fatalf("record render: %s", r)
	}
}
