// Package pid implements the state-of-practice baseline the paper's MIMO
// MPC is contrasted with: a discrete PI controller (velocity form, with
// anti-windup) that regulates the response time by scaling the total CPU
// allocation and splitting it across tiers in fixed proportions — the
// SISO approach of prior work such as Bertini et al. (reference [1]).
// Its weakness is exactly what Section II argues: one loop cannot decide
// *which* tier needs the CPU, so the split ratio must be hand-tuned and
// becomes wrong when the bottleneck moves.
package pid

import (
	"errors"
	"fmt"

	"vdcpower/internal/mat"
)

// Config tunes the PI baseline.
type Config struct {
	// Kp and Ki are the proportional and integral gains in GHz per
	// second of response-time error (and per control period for Ki).
	Kp, Ki float64
	// Setpoint is the response-time target in seconds.
	Setpoint float64
	// Split fixes the fraction of the total allocation given to each
	// tier; it must sum to 1.
	Split []float64
	// CMin and CMax bound each tier's allocation in GHz.
	CMin, CMax mat.Vec
}

// Controller is a velocity-form PI regulator.
type Controller struct {
	cfg      Config
	prevErr  float64
	havePrev bool
}

// New validates the configuration.
func New(cfg Config) (*Controller, error) {
	if cfg.Kp < 0 || cfg.Ki <= 0 {
		return nil, errors.New("pid: need Kp >= 0 and Ki > 0")
	}
	if cfg.Setpoint <= 0 {
		return nil, errors.New("pid: setpoint must be positive")
	}
	if len(cfg.Split) == 0 {
		return nil, errors.New("pid: empty split")
	}
	sum := 0.0
	for _, s := range cfg.Split {
		if s <= 0 {
			return nil, errors.New("pid: split entries must be positive")
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("pid: split sums to %v, want 1", sum)
	}
	if len(cfg.CMin) != len(cfg.Split) || len(cfg.CMax) != len(cfg.Split) {
		return nil, errors.New("pid: bounds length mismatch")
	}
	for i := range cfg.CMin {
		if cfg.CMin[i] < 0 || cfg.CMax[i] <= cfg.CMin[i] {
			return nil, fmt.Errorf("pid: invalid bounds for tier %d", i)
		}
	}
	return &Controller{cfg: cfg}, nil
}

// Setpoint returns the target.
func (c *Controller) Setpoint() float64 { return c.cfg.Setpoint }

// SetSetpoint retargets the loop.
func (c *Controller) SetSetpoint(ts float64) { c.cfg.Setpoint = ts }

// Step computes the next allocations from the measured response time and
// the current allocations. Velocity form: Δu = Kp·Δe + Ki·e, distributed
// across tiers by the fixed split, clamped to the per-tier box
// (clamping in velocity form is inherently anti-windup: no integrator
// state can run away while railed).
func (c *Controller) Step(measured float64, current mat.Vec) mat.Vec {
	if len(current) != len(c.cfg.Split) {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("pid: allocation width mismatch")
	}
	e := measured - c.cfg.Setpoint // positive error → needs more CPU
	de := 0.0
	if c.havePrev {
		de = e - c.prevErr
	}
	c.prevErr = e
	c.havePrev = true
	deltaTotal := c.cfg.Kp*de + c.cfg.Ki*e
	next := current.Clone()
	for i := range next {
		next[i] += deltaTotal * c.cfg.Split[i]
		if next[i] < c.cfg.CMin[i] {
			next[i] = c.cfg.CMin[i]
		}
		if next[i] > c.cfg.CMax[i] {
			next[i] = c.cfg.CMax[i]
		}
	}
	return next
}

// Reset clears the error history (after a set-point jump or a long
// measurement gap).
func (c *Controller) Reset() {
	c.prevErr = 0
	c.havePrev = false
}
