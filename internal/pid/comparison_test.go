package pid

import (
	"math"
	"math/rand"
	"testing"

	"vdcpower/internal/appsim"
	"vdcpower/internal/core"
	"vdcpower/internal/devs"
	"vdcpower/internal/mat"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
)

// The Section II argument, quantified: both controllers hold the SLA on
// a two-tier app whose database tier dominates (demand ratio 1:5), but
// the PI baseline must push CPU through a fixed split tuned for a 2:3
// ratio, so it wastes allocation on the web tier; the MIMO MPC, which
// identifies the system and redistributes per tier, reaches the same SLA
// with less total CPU — CPU that DVFS then converts into power savings.
func TestMPCUsesLessCPUThanPIAtEqualSLA(t *testing.T) {
	const (
		webDemand = 0.015
		dbDemand  = 0.075 // heavy db: the tuned-for ratio would be 0.025/0.040
		period    = 4.0
		setpoint  = 1.0
	)
	newApp := func(seed int64) (*devs.Simulator, *appsim.App) {
		sim := devs.NewSimulator()
		app := appsim.New(sim, appsim.Config{
			Name: "cmp",
			Tiers: []appsim.TierConfig{
				{DemandMean: webDemand, DemandCV: 1.0, InitialAllocation: 1.0},
				{DemandMean: dbDemand, DemandCV: 1.0, InitialAllocation: 1.0},
			},
			Concurrency: 40,
			ThinkTime:   1.0,
			Seed:        seed,
		})
		app.Start()
		return sim, app
	}

	// --- MPC: identify, then control (the automatic pipeline). ---
	sim, app := newApp(5)
	rng := rand.New(rand.NewSource(6))
	sim.RunUntil(40)
	app.DrainResponseTimes()
	ds := &sysid.Dataset{}
	for k := 0; k < 120; k++ {
		c := mat.Vec{0.3 + 2.2*rng.Float64(), 0.3 + 2.2*rng.Float64()}
		t90 := stats.Percentile(app.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = 0
		}
		ds.Append(t90, c)
		app.SetAllocation(0, c[0])
		app.SetAllocation(1, c[1])
		sim.RunUntil(sim.Now() + period)
	}
	model, err := sysid.Identify(ds, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mpcCfg := core.DefaultControllerConfig(model, setpoint)
	// The economic extension: drift to the cheapest SLA-feasible
	// allocation instead of parking wherever the set point was first hit.
	mpcCfg.LevelPenalty = 0.01
	mpcCtl, err := core.NewResponseTimeController(app, mpcCfg)
	if err != nil {
		t.Fatal(err)
	}
	var mpcT, mpcCPU []float64
	for k := 0; k < 150; k++ {
		sim.RunUntil(sim.Now() + period)
		res, err := mpcCtl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if k >= 100 {
			mpcT = append(mpcT, res.T90)
			mpcCPU = append(mpcCPU, res.Allocations[0]+res.Allocations[1])
		}
	}

	// --- PI: split tuned for the *original* 2:3 demand ratio. ---
	sim2, app2 := newApp(5)
	piCtl, err := New(Config{
		Kp: 0.6, Ki: 0.25, Setpoint: setpoint,
		Split: []float64{0.4, 0.6},
		CMin:  mat.Vec{0.1, 0.1},
		CMax:  mat.Vec{4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim2.RunUntil(40)
	app2.DrainResponseTimes()
	cur := mat.Vec(app2.Allocations())
	var piT, piCPU []float64
	for k := 0; k < 270; k++ { // same total horizon as ident+control above
		sim2.RunUntil(sim2.Now() + period)
		t90 := stats.Percentile(app2.DrainResponseTimes(), 90)
		if math.IsNaN(t90) {
			t90 = setpoint
		}
		cur = piCtl.Step(t90, cur)
		for j := range cur {
			app2.SetAllocation(j, cur[j])
		}
		if k >= 220 {
			piT = append(piT, t90)
			piCPU = append(piCPU, cur[0]+cur[1])
		}
	}

	mpcSLA, piSLA := stats.Mean(mpcT), stats.Mean(piT)
	mpcTotal, piTotal := stats.Mean(mpcCPU), stats.Mean(piCPU)
	t.Logf("MPC: SLA %.0fms with %.2f GHz; PI: SLA %.0fms with %.2f GHz",
		1000*mpcSLA, mpcTotal, 1000*piSLA, piTotal)

	if math.Abs(mpcSLA-setpoint) > 0.3 {
		t.Fatalf("MPC missed the SLA: %v", mpcSLA)
	}
	if math.Abs(piSLA-setpoint) > 0.3 {
		t.Fatalf("PI missed the SLA: %v", piSLA)
	}
	if mpcTotal >= piTotal {
		t.Fatalf("MPC total CPU %.2f GHz not below PI %.2f GHz at equal SLA",
			mpcTotal, piTotal)
	}
}
