package pid

import (
	"math"
	"testing"

	"vdcpower/internal/appsim"
	"vdcpower/internal/devs"
	"vdcpower/internal/mat"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
)

func testConfig() Config {
	return Config{
		Kp:       0.6,
		Ki:       0.25,
		Setpoint: 1.0,
		Split:    []float64{0.45, 0.55},
		CMin:     mat.Vec{0.1, 0.1},
		CMax:     mat.Vec{4, 4},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testConfig()); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Config){
		"Ki zero":       func(c *Config) { c.Ki = 0 },
		"Kp negative":   func(c *Config) { c.Kp = -1 },
		"bad setpoint":  func(c *Config) { c.Setpoint = 0 },
		"empty split":   func(c *Config) { c.Split = nil },
		"negative part": func(c *Config) { c.Split = []float64{1.2, -0.2} },
		"split sum":     func(c *Config) { c.Split = []float64{0.3, 0.3} },
		"bounds len":    func(c *Config) { c.CMin = mat.Vec{0.1} },
		"bounds order":  func(c *Config) { c.CMin = mat.Vec{5, 5} },
	}
	for name, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestStepDirection(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := mat.Vec{1, 1}
	// Above set point: allocations must grow.
	up := c.Step(2.0, cur)
	if up[0] <= cur[0] || up[1] <= cur[1] {
		t.Fatalf("no increase under high response time: %v", up)
	}
	c.Reset()
	// Below set point: allocations must shrink.
	down := c.Step(0.3, cur)
	if down[0] >= cur[0] || down[1] >= cur[1] {
		t.Fatalf("no decrease under low response time: %v", down)
	}
}

func TestStepRespectsBoundsAndSplit(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := mat.Vec{3.9, 3.9}
	for i := 0; i < 50; i++ {
		cur = c.Step(5.0, cur) // huge error drives toward CMax
	}
	if cur[0] != 4 || cur[1] != 4 {
		t.Fatalf("did not rail at CMax: %v", cur)
	}
	// Anti-windup: one low reading must immediately pull back.
	next := c.Step(0.2, cur)
	if next[0] >= 4 || next[1] >= 4 {
		t.Fatalf("integrator wind-up: %v", next)
	}
}

func TestStepWidthMismatchPanics(t *testing.T) {
	c, _ := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Step(1, mat.Vec{1})
}

func TestSetpointAccessors(t *testing.T) {
	c, _ := New(testConfig())
	c.SetSetpoint(1.4)
	if c.Setpoint() != 1.4 {
		t.Fatal("SetSetpoint failed")
	}
}

// Closed loop on a known ARX plant: the tuned PI must converge, like the
// MPC does — this is the baseline's best case.
func TestPIConvergesOnLinearPlant(t *testing.T) {
	plant := &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.4},
		B:     []mat.Vec{{-0.5, -0.4}, {-0.15, -0.1}},
		Gamma: 3.0,
	}
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur := mat.Vec{0.5, 0.5}
	tHist := []float64{3.0}
	cHist := []mat.Vec{cur.Clone(), cur.Clone()}
	var y float64
	for k := 0; k < 80; k++ {
		y = plant.Predict(tHist, cHist)
		cur = c.Step(y, cur)
		cHist = append([]mat.Vec{cur.Clone()}, cHist[:1]...)
		tHist = []float64{y}
	}
	if math.Abs(y-1.0) > 0.05 {
		t.Fatalf("PI loop settled at %v", y)
	}
}

// The MIMO weakness the paper argues (Section II): with a fixed split,
// the PI starves a tier whose relative load grows, while re-tuning the
// split would require manual intervention. The MPC redistributes
// automatically.
func TestPIFixedSplitStarvesShiftedBottleneck(t *testing.T) {
	runPI := func(dbDemand float64) float64 {
		sim := devs.NewSimulator()
		app := appsim.New(sim, appsim.Config{
			Name: "pi",
			Tiers: []appsim.TierConfig{
				{DemandMean: 0.025, DemandCV: 1.0, InitialAllocation: 1.0},
				{DemandMean: dbDemand, DemandCV: 1.0, InitialAllocation: 1.0},
			},
			Concurrency: 40,
			ThinkTime:   1.0,
			Seed:        9,
		})
		app.Start()
		cfg := testConfig()
		// Split tuned for the original 0.025/0.040 demand ratio.
		cfg.Split = []float64{0.4, 0.6}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := mat.Vec(app.Allocations())
		var tail []float64
		for k := 0; k < 150; k++ {
			sim.RunUntil(sim.Now() + 4)
			t90 := stats.Percentile(app.DrainResponseTimes(), 90)
			if math.IsNaN(t90) {
				t90 = cfg.Setpoint
			}
			cur = c.Step(t90, cur)
			for j := range cur {
				app.SetAllocation(j, cur[j])
			}
			if k >= 100 {
				tail = append(tail, t90)
			}
		}
		return stats.Mean(tail)
	}
	// Tuned case: the PI holds the set point.
	if m := runPI(0.040); math.Abs(m-1.0) > 0.35 {
		t.Fatalf("tuned PI settled at %v", m)
	}
	// Bottleneck shift: db demand triples, the fixed 40/60 split forces
	// the loop to over-provision the web tier to feed the db, raising
	// total CPU cost. Verify the loop still converges but allocates more
	// total CPU than the balanced case would need.
	m := runPI(0.120)
	if math.IsNaN(m) {
		t.Fatal("PI diverged")
	}
	t.Logf("PI with shifted bottleneck settles at %.2fs", m)
}
