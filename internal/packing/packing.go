// Package packing provides the vector bin-packing substrate of Section V.
// The VM-server mapping problem is a vector-packing problem (CPU and
// memory dimensions, plus arbitrary administrator constraints), which is
// NP-hard; the package implements the paper's Minimum Slack heuristic
// (Algorithm 1, extended from the minimum-bin-slack algorithm of Fleszar
// & Hindi) along with the first-fit family that pMapper builds on.
//
// Packing operates on plain Item/Bin values so optimizers can plan
// hypothetical placements without mutating the data center; the optimizer
// layer translates plans into live migrations.
package packing

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"vdcpower/internal/telemetry"
	"vdcpower/internal/units"
)

// Item is a VM viewed as a packing item.
type Item struct {
	ID  string
	CPU units.Hertz // demand in GHz
	Mem float64     // memory in GB
}

// Bin is a server viewed as a packing target. Load sums are cached so the
// constraint check is O(1) per candidate — essential when first-fitting
// thousands of VMs over thousands of servers.
type Bin struct {
	ID         string
	CPUCap     units.Hertz
	MemCap     float64
	Efficiency float64 // capacity per watt; callers sort by this
	items      []Item
	cpuUsed    units.Hertz
	memUsed    float64
}

// Items returns the planned load (do not mutate).
func (b *Bin) Items() []Item { return b.items }

// CPUUsed returns the CPU load planned onto the bin.
func (b *Bin) CPUUsed() units.Hertz { return b.cpuUsed }

// MemUsed returns the memory planned onto the bin.
func (b *Bin) MemUsed() float64 { return b.memUsed }

// Slack returns unallocated CPU capacity — the objective Algorithm 1
// minimizes per server.
func (b *Bin) Slack() units.Hertz { return b.CPUCap - b.cpuUsed }

// Add plans an item onto the bin.
func (b *Bin) Add(it Item) {
	b.items = append(b.items, it)
	b.cpuUsed += it.CPU
	b.memUsed += it.Mem
}

// Remove unplans the item with the given ID; it reports success.
func (b *Bin) Remove(id string) bool {
	for i, it := range b.items {
		if it.ID == id {
			b.items = append(b.items[:i], b.items[i+1:]...)
			b.cpuUsed -= it.CPU
			b.memUsed -= it.Mem
			return true
		}
	}
	return false
}

// Constraint is the general admission predicate evaluated at every step
// of Algorithm 1 ("a more general constraint ... instead of checking if
// the total size of the items exceeds the size of the bin").
type Constraint interface {
	// Fits reports whether bin can accept extra on top of its current
	// items.
	Fits(b *Bin, extra []Item) bool
	// Name identifies the constraint in diagnostics.
	Name() string
}

// VectorConstraint is the default two-dimensional constraint: CPU with
// optional headroom, plus memory ("the memory size of every server should
// be greater than the total memory allocations of the hosted VMs").
type VectorConstraint struct {
	CPUHeadroom units.Fraction // fraction of CPU capacity kept free
}

// Fits implements Constraint.
func (c VectorConstraint) Fits(b *Bin, extra []Item) bool {
	cpu, mem := b.CPUUsed(), b.MemUsed()
	for _, it := range extra {
		cpu += it.CPU
		mem += it.Mem
	}
	return cpu <= b.CPUCap*(1-c.CPUHeadroom)+1e-9 && mem <= b.MemCap+1e-9
}

// Name implements Constraint.
func (c VectorConstraint) Name() string { return "cpu+mem" }

// MinSlackConfig tunes Algorithm 1.
type MinSlackConfig struct {
	// Epsilon is the allowed slack ε: the search exits early once a
	// packing leaves less than ε GHz unallocated.
	Epsilon units.Hertz
	// EpsilonStep is how much ε grows when the node budget is exhausted
	// ("If the algorithm does not finish in certain steps, increase ε by
	// one step").
	EpsilonStep units.Hertz
	// MaxNodes bounds the branch-and-bound search. <= 0 means a default.
	MaxNodes int
	// Trace, when non-nil, records one "packing.minslack" span per call
	// with candidate/node/widening attributes. Nil disables tracing at
	// zero cost; the config is copied by value so harnesses set it once.
	Trace *telemetry.Track
	// Stats, when non-nil, accumulates search totals across calls. The
	// pointer survives config copies, so one counter block can observe a
	// whole consolidation pass.
	Stats *SearchStats
	// Pool, when non-nil, supplies reusable search buffers so repeated
	// calls allocate nothing in steady state (ROADMAP item 2). Like
	// Stats, the pointer survives config copies. See Pool for the
	// result-ownership consequences.
	Pool *Pool
}

// Pool holds the reusable buffers of Algorithm 1's search — an
// arena for the sort/suffix/stack/best-set state that one MinimumSlack
// call needs — so a consolidator solving one bin after another reuses
// the same backing arrays instead of reallocating them per call.
//
// A Pool serves one search at a time (not safe for concurrent use),
// and when it is set MinSlackResult.Chosen aliases pool-owned memory
// that is only valid until the next MinimumSlack call through the same
// pool; callers that keep it longer must copy. Without a pool the
// result is independently allocated, as before.
type Pool struct {
	sorted  []Item
	suffix  []units.Hertz
	chosen  []Item
	bestSet []Item
	search  mbsSearch
}

// NewPool returns an empty pool; capacity grows on first use.
func NewPool() *Pool { return &Pool{} }

// SearchStats aggregates Algorithm 1 search effort across calls.
// Harnesses read it via the optional SearchStats() accessor on
// consolidators and publish deltas into the metrics registry.
type SearchStats struct {
	Calls     int // MinimumSlack invocations
	Nodes     int // branch-and-bound nodes expanded
	Widenings int // ε-widenings after the first budget overrun
	Exhausted int // searches hard-stopped by the second overrun
}

// DefaultMinSlackConfig returns the tuning used by the experiments.
func DefaultMinSlackConfig() MinSlackConfig {
	return MinSlackConfig{Epsilon: 0.05, EpsilonStep: 0.1, MaxNodes: 20000}
}

// MinSlackResult reports the outcome of Algorithm 1 for one bin.
type MinSlackResult struct {
	Chosen    []Item      // items to add to the bin (A*)
	Slack     units.Hertz // resulting slack (s*)
	Widened   bool        // ε had to be increased to finish in budget
	Nodes     int         // search nodes explored
	Exhausted bool        // hard-stopped: budget overran even after widening
}

// MinimumSlack selects a subset of candidates that minimizes the bin's
// remaining CPU slack subject to the constraint — Algorithm 1. The bin's
// existing items stay; candidates are not mutated.
func MinimumSlack(b *Bin, candidates []Item, cons Constraint, cfg MinSlackConfig) MinSlackResult {
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = DefaultMinSlackConfig().MaxNodes
	}
	pool := cfg.Pool
	// MBS explores items in decreasing size order: large items first
	// prunes the search fastest.
	var sorted []Item
	if pool != nil {
		sorted = append(pool.sorted[:0], candidates...)
		pool.sorted = sorted
	} else {
		sorted = append([]Item(nil), candidates...)
	}
	slices.SortFunc(sorted, compareItems)
	// Suffix sums of CPU demand for the can't-improve prune.
	var suffix []units.Hertz
	if pool != nil {
		suffix = growHertz(pool.suffix, len(sorted)+1)
		pool.suffix = suffix
		suffix[len(sorted)] = 0
	} else {
		suffix = make([]units.Hertz, len(sorted)+1)
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sorted[i].CPU
	}
	s := &mbsSearch{}
	if pool != nil {
		s = &pool.search
	}
	*s = mbsSearch{
		bin:     b,
		items:   sorted,
		suffix:  suffix,
		cons:    cons,
		eps:     cfg.Epsilon,
		epsStep: cfg.EpsilonStep,
		budget:  cfg.MaxNodes,
		best:    b.Slack(),
	}
	if pool != nil {
		s.bestSet = pool.bestSet[:0]
	}
	sp := cfg.Trace.Start("packing.minslack").Int("candidates", len(candidates))
	// The chosen stack can never exceed the candidate count, so one
	// up-front allocation (reused from the pool when present) serves the
	// whole search: every append in dfs grows into this capacity.
	var stack []Item
	if pool != nil {
		stack = growItems(pool.chosen, len(sorted))
		pool.chosen = stack
	} else {
		stack = make([]Item, 0, len(sorted))
	}
	s.dfs(0, b.Slack(), stack)
	chosen := s.bestSet
	if pool != nil {
		pool.bestSet = s.bestSet
	} else {
		chosen = append([]Item(nil), s.bestSet...)
	}
	res := MinSlackResult{Chosen: chosen, Slack: s.best, Widened: s.widened, Nodes: s.nodes, Exhausted: s.exhausted}
	sp.Int("nodes", res.Nodes).Float("slack", res.Slack).
		Bool("widened", res.Widened).Bool("exhausted", res.Exhausted).End()
	if st := cfg.Stats; st != nil {
		st.Calls++
		st.Nodes += res.Nodes
		if res.Widened {
			st.Widenings++
		}
		if res.Exhausted {
			st.Exhausted++
		}
	}
	return res
}

// compareItems orders items by decreasing CPU demand with an exact ID
// tie-break — the deterministic MBS exploration order. The key is total
// over unique IDs, so the sorted order is unique regardless of the sort
// algorithm.
func compareItems(a, b Item) int {
	//lint:ignore floatcompare exact tie-break for a deterministic sort order
	if a.CPU != b.CPU {
		if a.CPU > b.CPU {
			return -1
		}
		return 1
	}
	return cmp.Compare(a.ID, b.ID)
}

// growHertz returns buf with length n, reusing its backing array when
// the capacity suffices. Contents are unspecified.
func growHertz(buf []units.Hertz, n int) []units.Hertz {
	if cap(buf) < n {
		buf = make([]units.Hertz, n)
	}
	return buf[:n]
}

// growItems returns an empty slice with capacity at least n, reusing
// buf's backing array when it suffices.
func growItems(buf []Item, n int) []Item {
	if cap(buf) < n {
		buf = make([]Item, 0, n)
	}
	return buf[:0]
}

type mbsSearch struct {
	bin       *Bin
	items     []Item
	suffix    []units.Hertz
	cons      Constraint
	eps       units.Hertz
	epsStep   units.Hertz
	budget    int
	nodes     int
	widened   bool
	exhausted bool
	best      units.Hertz
	bestSet   []Item
	done      bool
}

// dfs explores subsets of items[from:] given the current slack and the
// stack of chosen items.
//
//vdc:hotpath packing/minslack
func (s *mbsSearch) dfs(from int, slack units.Hertz, chosen []Item) {
	if s.done {
		return
	}
	if slack < s.best {
		s.best = slack
		s.bestSet = append(s.bestSet[:0], chosen...)
	}
	if s.best <= s.eps {
		s.done = true // ε-optimal: stop the whole search
		return
	}
	for i := from; i < len(s.items); i++ {
		// Prune: even packing every remaining item cannot beat the best.
		if slack-s.suffix[i] >= s.best {
			return
		}
		s.nodes++
		if s.nodes > s.budget {
			if s.widened {
				s.done = true // second overrun: hard stop with best-so-far
				s.exhausted = true
				return
			}
			// Out of budget once: widen ε so outstanding branches exit
			// fast, and grant one budget extension.
			s.eps += s.epsStep
			s.widened = true
			s.budget *= 2
			if s.best <= s.eps {
				s.done = true
				return
			}
		}
		it := s.items[i]
		if it.CPU > slack+1e-12 {
			continue // cannot fit by CPU alone
		}
		//lint:ignore hotalloc the stack is preallocated to cap len(items) in MinimumSlack; this append never grows it
		chosen = append(chosen, it)
		if s.cons.Fits(s.bin, chosen) {
			s.dfs(i+1, slack-it.CPU, chosen)
			if s.done {
				return
			}
		}
		chosen = chosen[:len(chosen)-1]
	}
}

// Assignment maps item IDs to bin IDs.
type Assignment map[string]string

// FirstFit places each item, in the given order, onto the first bin that
// admits it, planning the load onto the bins. It returns the assignment
// and the items no bin could take.
func FirstFit(items []Item, bins []*Bin, cons Constraint) (Assignment, []Item) {
	asg := Assignment{}
	var unplaced []Item
	for _, it := range items {
		placed := false
		for _, b := range bins {
			if cons.Fits(b, []Item{it}) {
				b.Add(it)
				asg[it.ID] = b.ID
				placed = true
				break
			}
		}
		if !placed {
			unplaced = append(unplaced, it)
		}
	}
	return asg, unplaced
}

// FirstFitDecreasing sorts items by decreasing CPU demand and first-fits
// them — the FFD algorithm pMapper's migration phase uses.
func FirstFitDecreasing(items []Item, bins []*Bin, cons Constraint) (Assignment, []Item) {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		//lint:ignore floatcompare exact tie-break for a deterministic sort order
		if sorted[i].CPU != sorted[j].CPU {
			return sorted[i].CPU > sorted[j].CPU
		}
		return sorted[i].ID < sorted[j].ID
	})
	return FirstFit(sorted, bins, cons)
}

// BestFitDecreasing places items in decreasing CPU order, each onto the
// admitting bin with the least remaining slack (ablation baseline).
func BestFitDecreasing(items []Item, bins []*Bin, cons Constraint) (Assignment, []Item) {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		//lint:ignore floatcompare exact tie-break for a deterministic sort order
		if sorted[i].CPU != sorted[j].CPU {
			return sorted[i].CPU > sorted[j].CPU
		}
		return sorted[i].ID < sorted[j].ID
	})
	asg := Assignment{}
	var unplaced []Item
	for _, it := range sorted {
		var best *Bin
		bestSlack := units.Hertz(0)
		for _, b := range bins {
			if !cons.Fits(b, []Item{it}) {
				continue
			}
			sl := b.Slack() - it.CPU
			if best == nil || sl < bestSlack {
				best, bestSlack = b, sl
			}
		}
		if best == nil {
			unplaced = append(unplaced, it)
			continue
		}
		best.Add(it)
		asg[it.ID] = best.ID
	}
	return asg, unplaced
}

// SortBinsByEfficiency orders bins most-power-efficient first, the
// server ordering both PAC and pMapper start from. Ties break by ID for
// determinism.
func SortBinsByEfficiency(bins []*Bin) {
	sort.Slice(bins, func(i, j int) bool {
		//lint:ignore floatcompare exact tie-break for a deterministic sort order
		if bins[i].Efficiency != bins[j].Efficiency {
			return bins[i].Efficiency > bins[j].Efficiency
		}
		return bins[i].ID < bins[j].ID
	})
}

// Validate checks that an assignment respects a constraint when replayed
// onto fresh bins; tests use it as an oracle.
func Validate(asg Assignment, items []Item, bins []*Bin, cons Constraint) error {
	byID := map[string]*Bin{}
	for _, b := range bins {
		byID[b.ID] = &Bin{ID: b.ID, CPUCap: b.CPUCap, MemCap: b.MemCap}
	}
	for _, it := range items {
		binID, ok := asg[it.ID]
		if !ok {
			continue
		}
		b, ok := byID[binID]
		if !ok {
			return fmt.Errorf("packing: assignment names unknown bin %q", binID)
		}
		if !cons.Fits(b, []Item{it}) {
			return fmt.Errorf("packing: item %q violates %s on bin %q", it.ID, cons.Name(), binID)
		}
		b.Add(it)
	}
	return nil
}
