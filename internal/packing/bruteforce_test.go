package packing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// bruteForceMinSlack enumerates every subset (n ≤ 16) and returns the
// minimum feasible slack — the exact optimum Algorithm 1 approximates.
func bruteForceMinSlack(b *Bin, items []Item, cons Constraint) float64 {
	n := len(items)
	best := b.Slack()
	for mask := 1; mask < 1<<n; mask++ {
		var subset []Item
		cpu := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, items[i])
				cpu += items[i].CPU
			}
		}
		if cpu > b.Slack()+1e-12 {
			continue
		}
		if !cons.Fits(b, subset) {
			continue
		}
		if s := b.Slack() - cpu; s < best {
			best = s
		}
	}
	return best
}

// With ε=0 and an ample node budget, Algorithm 1 must find the exact
// optimum on instances small enough to enumerate.
func TestMinimumSlackExactOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ID:  fmt.Sprintf("i%d", i),
				CPU: 0.1 + 3*rng.Float64(),
				Mem: rng.Float64() * 2,
			}
		}
		b := &Bin{ID: "b", CPUCap: 2 + 8*rng.Float64(), MemCap: 3 + 3*rng.Float64()}
		if rng.Intn(2) == 0 { // sometimes pre-load the bin
			b.Add(Item{ID: "pre", CPU: rng.Float64(), Mem: rng.Float64()})
		}
		cons := VectorConstraint{}
		want := bruteForceMinSlack(b, items, cons)

		// MinimumSlack mutates nothing, but it reads b.Slack(); pass a
		// fresh copy to be safe about planned items.
		bb := &Bin{ID: "b", CPUCap: b.CPUCap, MemCap: b.MemCap}
		for _, it := range b.Items() {
			bb.Add(it)
		}
		got := MinimumSlack(bb, items, cons, MinSlackConfig{Epsilon: 0, EpsilonStep: 1, MaxNodes: 1 << 22})
		if math.Abs(got.Slack-want) > 1e-9 {
			t.Fatalf("trial %d: MinimumSlack %v != brute force %v (n=%d cap=%v)",
				trial, got.Slack, want, n, b.CPUCap)
		}
	}
}

// The memory dimension must also be exact: brute force with a binding
// memory constraint.
func TestMinimumSlackExactUnderMemoryPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(8)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ID:  fmt.Sprintf("i%d", i),
				CPU: 0.5 + 2*rng.Float64(),
				Mem: 0.5 + 2*rng.Float64(),
			}
		}
		// Tight memory: roughly half the items fit by memory.
		b := &Bin{ID: "b", CPUCap: 100, MemCap: 2 + 2*rng.Float64()}
		cons := VectorConstraint{}
		want := bruteForceMinSlack(b, items, cons)
		got := MinimumSlack(b, items, cons, MinSlackConfig{Epsilon: 0, EpsilonStep: 1, MaxNodes: 1 << 22})
		if math.Abs(got.Slack-want) > 1e-9 {
			t.Fatalf("trial %d: %v != %v", trial, got.Slack, want)
		}
	}
}
