package packing_test

import (
	"fmt"

	"vdcpower/internal/packing"
)

func ExampleMinimumSlack() {
	// A 12-GHz server and four VMs: the greedy largest-first choice (8)
	// strands capacity, while Minimum Slack finds 7+5 = 12 exactly.
	bin := &packing.Bin{ID: "srv", CPUCap: 12, MemCap: 64}
	vms := []packing.Item{
		{ID: "a", CPU: 8, Mem: 2},
		{ID: "b", CPU: 7, Mem: 2},
		{ID: "c", CPU: 5, Mem: 2},
		{ID: "d", CPU: 2.5, Mem: 2},
	}
	res := packing.MinimumSlack(bin, vms, packing.VectorConstraint{}, packing.DefaultMinSlackConfig())
	fmt.Printf("slack %.1f GHz with %d VMs\n", res.Slack, len(res.Chosen))
	// Output: slack 0.0 GHz with 2 VMs
}

func ExampleFirstFitDecreasing() {
	bins := []*packing.Bin{
		{ID: "s1", CPUCap: 6, MemCap: 8},
		{ID: "s2", CPUCap: 6, MemCap: 8},
	}
	items := []packing.Item{
		{ID: "small", CPU: 2, Mem: 1},
		{ID: "large", CPU: 5, Mem: 1},
		{ID: "medium", CPU: 4, Mem: 1},
	}
	asg, unplaced := packing.FirstFitDecreasing(items, bins, packing.VectorConstraint{})
	fmt.Printf("large→%s medium→%s small→%s unplaced=%d\n",
		asg["large"], asg["medium"], asg["small"], len(unplaced))
	// Output: large→s1 medium→s2 small→s2 unplaced=0
}
