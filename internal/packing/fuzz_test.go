package packing_test

// Native fuzzing for the MBS search (Algorithm 1). The fuzzer drives
// packing.MinimumSlack through the runtime invariant checker: every
// input must yield a feasible selection whose slack accounting balances
// and that is never worse than greedy first-fit-decreasing beyond the
// configured ε. Seeds live in testdata/fuzz/FuzzMinimumSlack.

import (
	"fmt"
	"math"
	"testing"

	"vdcpower/internal/check"
	"vdcpower/internal/packing"
)

// decodePacking turns fuzz bytes into a bin and candidate items. The
// item count is capped so the branch-and-bound stays cheap per input.
func decodePacking(data []byte) (*packing.Bin, []packing.Item, packing.Constraint) {
	bin := &packing.Bin{
		ID:     "fuzz-bin",
		CPUCap: 1 + float64(data[0]%32)*0.5, // 1 .. 16.5 GHz
		MemCap: 1 + float64(data[1]%64)*0.5, // 1 .. 32.5 GB
	}
	cons := packing.VectorConstraint{CPUHeadroom: float64(data[0]%3) * 0.05}
	rest := data[2:]
	if len(rest) > 32 {
		rest = rest[:32] // at most 16 items
	}
	var items []packing.Item
	for i := 0; i+1 < len(rest); i += 2 {
		items = append(items, packing.Item{
			ID:  fmt.Sprintf("it-%02d", i/2),
			CPU: float64(rest[i]) / 16,   // 0 .. ~16 GHz
			Mem: float64(rest[i+1]) / 32, // 0 .. ~8 GB
		})
	}
	return bin, items, cons
}

func FuzzMinimumSlack(f *testing.F) {
	f.Add([]byte("\x18\x20ABCDEFGHIJ"))
	f.Add([]byte{4, 8, 0, 0, 255, 255, 16, 16, 32, 8})
	f.Add([]byte{31, 63, 200, 10, 100, 5, 50, 2, 25, 1, 12, 1, 6, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		bin, items, cons := decodePacking(data)
		c := check.New(check.PackingInvariants()...)
		res := check.ObserveMinimumSlack(c, bin, items, cons, packing.DefaultMinSlackConfig())
		if err := c.Err(); err != nil {
			t.Fatalf("invariants violated for bin %+v items %v: %v", bin, items, err)
		}
		if math.IsNaN(res.Slack) || math.IsInf(res.Slack, 0) {
			t.Fatalf("non-finite slack %v", res.Slack)
		}
		if len(res.Chosen) > len(items) {
			t.Fatalf("chose %d items from %d candidates", len(res.Chosen), len(items))
		}
	})
}
