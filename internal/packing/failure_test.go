package packing

import "testing"

// rejectAll is a constraint that admits nothing — a server drained for
// maintenance or failing its health checks.
type rejectAll struct{}

func (rejectAll) Fits(*Bin, []Item) bool { return false }
func (rejectAll) Name() string           { return "reject-all" }

func TestMinimumSlackAgainstRejectingConstraint(t *testing.T) {
	b := bin("b", 10, 10)
	items := []Item{item("a", 1, 1), item("b", 2, 1)}
	res := MinimumSlack(b, items, rejectAll{}, DefaultMinSlackConfig())
	if len(res.Chosen) != 0 {
		t.Fatalf("chose %d items against a rejecting constraint", len(res.Chosen))
	}
	if res.Slack != 10 {
		t.Fatalf("slack = %v", res.Slack)
	}
}

func TestFirstFitAgainstRejectingConstraint(t *testing.T) {
	bins := []*Bin{bin("b1", 10, 10), bin("b2", 10, 10)}
	items := []Item{item("a", 1, 1)}
	asg, unplaced := FirstFit(items, bins, rejectAll{})
	if len(asg) != 0 || len(unplaced) != 1 {
		t.Fatalf("asg=%v unplaced=%v", asg, unplaced)
	}
}

func TestMinimumSlackZeroCapacityBin(t *testing.T) {
	b := bin("dead", 0, 0)
	items := []Item{item("a", 1, 1)}
	res := MinimumSlack(b, items, VectorConstraint{}, DefaultMinSlackConfig())
	if len(res.Chosen) != 0 {
		t.Fatal("packed onto a zero-capacity bin")
	}
}

func TestPackingZeroSizeItems(t *testing.T) {
	// Zero-demand VMs (idle, but still placed) must not break anything.
	b := bin("b", 4, 4)
	items := []Item{item("idle1", 0, 0.1), item("idle2", 0, 0.1), item("busy", 4, 1)}
	res := MinimumSlack(b, items, VectorConstraint{}, DefaultMinSlackConfig())
	total := 0.0
	for _, it := range res.Chosen {
		total += it.CPU
	}
	if total > 4+1e-9 {
		t.Fatalf("overpacked: %v", total)
	}
	if res.Slack > 1e-9 {
		t.Fatalf("slack %v, the busy item fits exactly", res.Slack)
	}
}
