package packing

// Steady-state zero-allocation gate for the packing/minslack hot path
// (ROADMAP item 2): once a Pool has warmed up, repeated MinimumSlack
// calls through it must not touch the heap. Skipped under -race.

import (
	"fmt"
	"testing"

	"vdcpower/internal/race"
)

func TestMinimumSlackZeroAllocPooled(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	bin := &Bin{ID: "s1", CPUCap: 8, MemCap: 32}
	items := make([]Item, 12)
	for i := range items {
		items[i] = Item{
			ID:  fmt.Sprintf("vm%02d", i),
			CPU: 0.3 + 0.17*float64(i%7),
			Mem: 1 + float64(i%4),
		}
	}
	// Box the constraint once, outside the measured closure: interface
	// conversion of a non-empty struct is itself an allocation.
	var cons Constraint = VectorConstraint{CPUHeadroom: 0.1}
	cfg := DefaultMinSlackConfig()
	cfg.Pool = NewPool()
	for i := 0; i < 3; i++ { // warm the pool to its high-water mark
		MinimumSlack(bin, items, cons, cfg)
	}
	want := cloneItems(MinimumSlack(bin, items, cons, cfg).Chosen)
	allocs := testing.AllocsPerRun(200, func() {
		MinimumSlack(bin, items, cons, cfg)
	})
	if allocs != 0 {
		t.Fatalf("pooled MinimumSlack allocates %v objects/op in steady state, want 0", allocs)
	}
	// The pooled answer must still be the real answer after many reuses.
	got := MinimumSlack(bin, items, cons, cfg).Chosen
	if len(got) != len(want) {
		t.Fatalf("pooled result drifted: %d chosen, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled result drifted at %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func cloneItems(items []Item) []Item {
	return append([]Item(nil), items...)
}

// TestMinimumSlackPoolMatchesPoolless proves the pool is purely an
// allocation strategy: for a spread of instances, the pooled search
// returns exactly the same packing as the allocating one.
func TestMinimumSlackPoolMatchesPoolless(t *testing.T) {
	pool := NewPool()
	var cons Constraint = VectorConstraint{}
	for trial := 0; trial < 20; trial++ {
		bin := &Bin{ID: "b", CPUCap: 4 + float64(trial%5), MemCap: 16}
		n := 3 + trial%9
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				ID:  fmt.Sprintf("t%d-vm%d", trial, i),
				CPU: 0.2 + 0.31*float64((i*7+trial)%11),
				Mem: 0.5 + float64((i+trial)%5),
			}
		}
		cfg := DefaultMinSlackConfig()
		plain := MinimumSlack(bin, items, cons, cfg)
		cfg.Pool = pool
		pooled := MinimumSlack(bin, items, cons, cfg)
		//lint:ignore floatcompare the pooled search must be exactly the allocating search
		if plain.Slack != pooled.Slack || plain.Widened != pooled.Widened ||
			plain.Exhausted != pooled.Exhausted || plain.Nodes != pooled.Nodes {
			t.Fatalf("trial %d: pooled outcome %+v, plain %+v", trial, pooled, plain)
		}
		if len(plain.Chosen) != len(pooled.Chosen) {
			t.Fatalf("trial %d: pooled chose %d items, plain %d", trial, len(pooled.Chosen), len(plain.Chosen))
		}
		for i := range plain.Chosen {
			if plain.Chosen[i] != pooled.Chosen[i] {
				t.Fatalf("trial %d item %d: pooled %+v, plain %+v", trial, i, pooled.Chosen[i], plain.Chosen[i])
			}
		}
	}
}
