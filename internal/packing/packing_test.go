package packing

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func bin(id string, cpu, mem float64) *Bin {
	return &Bin{ID: id, CPUCap: cpu, MemCap: mem}
}

func item(id string, cpu, mem float64) Item {
	return Item{ID: id, CPU: cpu, Mem: mem}
}

var cons = VectorConstraint{}

func TestBinAccounting(t *testing.T) {
	b := bin("b", 10, 16)
	b.Add(item("a", 2, 4))
	b.Add(item("c", 3, 1))
	if b.CPUUsed() != 5 || b.MemUsed() != 5 {
		t.Fatalf("used cpu=%v mem=%v", b.CPUUsed(), b.MemUsed())
	}
	if b.Slack() != 5 {
		t.Fatalf("Slack = %v", b.Slack())
	}
	if !b.Remove("a") {
		t.Fatal("Remove failed")
	}
	if b.Remove("a") {
		t.Fatal("double remove succeeded")
	}
	if b.CPUUsed() != 3 {
		t.Fatalf("after remove cpu=%v", b.CPUUsed())
	}
}

func TestVectorConstraint(t *testing.T) {
	b := bin("b", 10, 8)
	if !cons.Fits(b, []Item{item("a", 10, 8)}) {
		t.Fatal("exact fit rejected")
	}
	if cons.Fits(b, []Item{item("a", 10.1, 1)}) {
		t.Fatal("CPU overflow admitted")
	}
	if cons.Fits(b, []Item{item("a", 1, 8.1)}) {
		t.Fatal("memory overflow admitted")
	}
	head := VectorConstraint{CPUHeadroom: 0.2}
	if head.Fits(b, []Item{item("a", 8.5, 1)}) {
		t.Fatal("headroom violated")
	}
	if !head.Fits(b, []Item{item("a", 8, 1)}) {
		t.Fatal("within headroom rejected")
	}
	if cons.Name() == "" {
		t.Fatal("Name empty")
	}
}

func TestMinimumSlackExactFit(t *testing.T) {
	// Items 6, 4 exactly fill a 10-GHz bin; greedy-by-size FFD would also
	// find this, but 7+4 style traps need search: see next test.
	b := bin("b", 10, 100)
	items := []Item{item("a", 6, 1), item("b", 4, 1), item("c", 3, 1)}
	res := MinimumSlack(b, items, cons, DefaultMinSlackConfig())
	if math.Abs(res.Slack) > 1e-9 {
		t.Fatalf("slack = %v, want 0", res.Slack)
	}
	total := 0.0
	for _, it := range res.Chosen {
		total += it.CPU
	}
	if math.Abs(total-10) > 1e-9 {
		t.Fatalf("chosen total = %v", total)
	}
}

func TestMinimumSlackBeatsGreedy(t *testing.T) {
	// Bin of 10: greedy takes 7 then 2 (slack 1); optimal is 6+4 (slack 0).
	b := bin("b", 10, 100)
	items := []Item{item("g", 7, 1), item("a", 6, 1), item("b", 4, 1), item("c", 2, 1)}
	res := MinimumSlack(b, items, cons, MinSlackConfig{Epsilon: 0, EpsilonStep: 0.1, MaxNodes: 10000})
	if math.Abs(res.Slack) > 1e-9 {
		t.Fatalf("slack = %v, want 0 (6+4)", res.Slack)
	}
}

func TestMinimumSlackRespectsMemory(t *testing.T) {
	// The CPU-optimal subset violates memory; the search must fall back.
	b := bin("b", 10, 4)
	items := []Item{item("big", 10, 8), item("a", 5, 2), item("c", 4, 2)}
	res := MinimumSlack(b, items, cons, DefaultMinSlackConfig())
	for _, it := range res.Chosen {
		if it.ID == "big" {
			t.Fatal("memory-violating item chosen")
		}
	}
	if math.Abs(res.Slack-1) > 1e-9 { // 5+4 fits both dims → slack 1
		t.Fatalf("slack = %v, want 1", res.Slack)
	}
}

func TestMinimumSlackNonEmptyBin(t *testing.T) {
	b := bin("b", 10, 100)
	b.Add(item("pre", 4, 1))
	items := []Item{item("a", 6, 1), item("b", 5, 1)}
	res := MinimumSlack(b, items, cons, DefaultMinSlackConfig())
	if math.Abs(res.Slack) > 1e-9 {
		t.Fatalf("slack = %v, want 0 (pre 4 + a 6)", res.Slack)
	}
	if len(res.Chosen) != 1 || res.Chosen[0].ID != "a" {
		t.Fatalf("chosen = %v", res.Chosen)
	}
}

func TestMinimumSlackEpsilonEarlyExit(t *testing.T) {
	b := bin("b", 10, 100)
	var items []Item
	for i := 0; i < 12; i++ {
		items = append(items, item(fmt.Sprintf("i%d", i), 1+float64(i%3), 1))
	}
	res := MinimumSlack(b, items, cons, MinSlackConfig{Epsilon: 2.0, EpsilonStep: 1, MaxNodes: 100000})
	if res.Slack > 2.0 {
		t.Fatalf("slack %v exceeds epsilon", res.Slack)
	}
	// A tiny epsilon explores more nodes than a loose one.
	tight := MinimumSlack(b, items, cons, MinSlackConfig{Epsilon: 0, EpsilonStep: 1, MaxNodes: 100000})
	if tight.Nodes < res.Nodes {
		t.Fatalf("tight ε explored fewer nodes (%d) than loose (%d)", tight.Nodes, res.Nodes)
	}
}

func TestMinimumSlackBudgetWidensEpsilon(t *testing.T) {
	// 30 items with irrational-ish sizes force a big search; a tiny node
	// budget must trigger widening and still return a valid packing.
	rng := rand.New(rand.NewSource(42))
	b := bin("b", 20, 1000)
	var items []Item
	for i := 0; i < 30; i++ {
		items = append(items, item(fmt.Sprintf("i%d", i), 0.5+rng.Float64(), 1))
	}
	res := MinimumSlack(b, items, cons, MinSlackConfig{Epsilon: 0, EpsilonStep: 0.5, MaxNodes: 50})
	if !res.Widened {
		t.Fatal("expected budget widening")
	}
	// Result must still be feasible.
	total := 0.0
	for _, it := range res.Chosen {
		total += it.CPU
	}
	if total > b.CPUCap+1e-9 {
		t.Fatalf("infeasible result: %v > %v", total, b.CPUCap)
	}
}

func TestMinimumSlackNoCandidates(t *testing.T) {
	b := bin("b", 10, 10)
	res := MinimumSlack(b, nil, cons, DefaultMinSlackConfig())
	if len(res.Chosen) != 0 || res.Slack != 10 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestMinimumSlackDeterministic(t *testing.T) {
	b1 := bin("b", 10, 100)
	b2 := bin("b", 10, 100)
	items := []Item{item("a", 3, 1), item("b", 3, 1), item("c", 4, 1), item("d", 2, 1)}
	r1 := MinimumSlack(b1, items, cons, DefaultMinSlackConfig())
	r2 := MinimumSlack(b2, items, cons, DefaultMinSlackConfig())
	if len(r1.Chosen) != len(r2.Chosen) {
		t.Fatal("nondeterministic result size")
	}
	for i := range r1.Chosen {
		if r1.Chosen[i].ID != r2.Chosen[i].ID {
			t.Fatal("nondeterministic choice order")
		}
	}
}

// Property: Minimum Slack never does worse than First Fit Decreasing on a
// single bin, and its result is always feasible.
func TestMinimumSlackDominatesFFDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		var items []Item
		for i := 0; i < n; i++ {
			items = append(items, item(fmt.Sprintf("i%d", i), 0.2+3*rng.Float64(), rng.Float64()))
		}
		capCPU := 4 + 6*rng.Float64()
		msBin := bin("b", capCPU, 1000)
		res := MinimumSlack(msBin, items, cons, DefaultMinSlackConfig())
		ffdBin := bin("b", capCPU, 1000)
		FirstFitDecreasing(items, []*Bin{ffdBin}, cons)
		if res.Slack > ffdBin.Slack()+1e-9 {
			return false
		}
		used := 0.0
		for _, it := range res.Chosen {
			used += it.CPU
		}
		return used <= capCPU+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFitOrderAndOverflow(t *testing.T) {
	b1, b2 := bin("b1", 5, 100), bin("b2", 5, 100)
	items := []Item{item("a", 3, 1), item("b", 3, 1), item("c", 2, 1), item("d", 9, 1)}
	asg, unplaced := FirstFit(items, []*Bin{b1, b2}, cons)
	if asg["a"] != "b1" || asg["b"] != "b2" || asg["c"] != "b1" {
		t.Fatalf("assignment %v", asg)
	}
	if len(unplaced) != 1 || unplaced[0].ID != "d" {
		t.Fatalf("unplaced %v", unplaced)
	}
}

func TestFirstFitDecreasingSortsFirst(t *testing.T) {
	b1 := bin("b1", 10, 100)
	items := []Item{item("s", 2, 1), item("l", 8, 1), item("m", 3, 1)}
	asg, unplaced := FirstFitDecreasing(items, []*Bin{b1}, cons)
	// Decreasing: l(8) then m(3) doesn't fit, s(2) fits.
	if asg["l"] != "b1" || asg["s"] != "b1" {
		t.Fatalf("assignment %v", asg)
	}
	if len(unplaced) != 1 || unplaced[0].ID != "m" {
		t.Fatalf("unplaced %v", unplaced)
	}
}

func TestBestFitDecreasingPrefersTightBin(t *testing.T) {
	big, tight := bin("big", 10, 100), bin("tight", 4, 100)
	items := []Item{item("a", 3, 1)}
	asg, _ := BestFitDecreasing(items, []*Bin{big, tight}, cons)
	if asg["a"] != "tight" {
		t.Fatalf("BFD chose %v, want tight", asg["a"])
	}
}

func TestBestFitDecreasingOverflow(t *testing.T) {
	b := bin("b", 2, 100)
	_, unplaced := BestFitDecreasing([]Item{item("a", 5, 1)}, []*Bin{b}, cons)
	if len(unplaced) != 1 {
		t.Fatal("expected unplaced item")
	}
}

func TestSortBinsByEfficiency(t *testing.T) {
	a := &Bin{ID: "a", Efficiency: 0.02}
	b := &Bin{ID: "b", Efficiency: 0.04}
	c := &Bin{ID: "c", Efficiency: 0.04}
	bins := []*Bin{a, c, b}
	SortBinsByEfficiency(bins)
	if bins[0].ID != "b" || bins[1].ID != "c" || bins[2].ID != "a" {
		t.Fatalf("order: %s %s %s", bins[0].ID, bins[1].ID, bins[2].ID)
	}
}

func TestValidateOracle(t *testing.T) {
	b1 := bin("b1", 5, 5)
	items := []Item{item("a", 3, 1), item("b", 3, 1)}
	good := Assignment{"a": "b1"}
	if err := Validate(good, items, []*Bin{b1}, cons); err != nil {
		t.Fatal(err)
	}
	bad := Assignment{"a": "b1", "b": "b1"} // 6 > 5 CPU
	if err := Validate(bad, items, []*Bin{b1}, cons); err == nil {
		t.Fatal("expected violation")
	}
	unknown := Assignment{"a": "nope"}
	if err := Validate(unknown, items, []*Bin{b1}, cons); err == nil {
		t.Fatal("expected unknown-bin error")
	}
}

// Property: FFD over many bins yields a feasible assignment.
func TestFFDFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var items []Item
		for i := 0; i < 20; i++ {
			items = append(items, item(fmt.Sprintf("i%d", i), rng.Float64()*3, rng.Float64()*2))
		}
		var bins []*Bin
		for i := 0; i < 12; i++ {
			bins = append(bins, bin(fmt.Sprintf("b%d", i), 2+rng.Float64()*6, 4))
		}
		asg, unplaced := FirstFitDecreasing(items, bins, cons)
		fresh := make([]*Bin, len(bins))
		for i, b := range bins {
			fresh[i] = bin(b.ID, b.CPUCap, b.MemCap)
		}
		if err := Validate(asg, items, fresh, cons); err != nil {
			return false
		}
		return len(asg)+len(unplaced) == len(items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMinimumSlack20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var items []Item
	for i := 0; i < 20; i++ {
		items = append(items, item(fmt.Sprintf("i%d", i), 0.3+rng.Float64()*2, 1))
	}
	cfg := DefaultMinSlackConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := bin("b", 12, 1000)
		MinimumSlack(bb, items, cons, cfg)
	}
}

func BenchmarkFFD100x50(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var items []Item
	for i := 0; i < 100; i++ {
		items = append(items, item(fmt.Sprintf("i%d", i), rng.Float64()*3, rng.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bins []*Bin
		for j := 0; j < 50; j++ {
			bins = append(bins, bin(fmt.Sprintf("b%d", j), 12, 16))
		}
		FirstFitDecreasing(items, bins, cons)
	}
}
