// Package report renders experiment results as aligned text, CSV, or
// Markdown tables. The cmd/ tools use it so every figure the harness
// regenerates can be piped straight into a plotting script or pasted
// into a results document.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(values ...any) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i (shared storage; do not mutate).
func (t *Table) Row(i int) []string { return t.rows[i] }

// WriteText renders an aligned plain-text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (headers first; the title is
// omitted — CSV consumers want clean columns).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// sparkLevels are the eight block characters a sparkline is built from.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a one-line unicode sparkline,
// scaled between the series' min and max. Empty input yields an empty
// string; a constant series renders at the lowest level.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Format selects an output renderer by name ("text", "csv", "markdown").
func (t *Table) Format(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return t.WriteText(w)
	case "csv":
		return t.WriteCSV(w)
	case "markdown", "md":
		return t.WriteMarkdown(w)
	}
	return fmt.Errorf("report: unknown format %q (want text, csv, or markdown)", format)
}
