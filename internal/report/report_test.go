package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	return New("Figure X", "app", "mean (ms)", "std (ms)").
		AddRow("App1", 998.4, 384).
		AddRow("App2", 1004.0, 295)
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X", "app", "App1", "998.4", "1004"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("line count %d", len(lines))
	}
}

func TestWriteTextAlignment(t *testing.T) {
	var buf bytes.Buffer
	tab := New("", "a", "long-header").AddRow("x", 1)
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	// Column 2 starts at the same offset in both lines.
	if strings.Index(lines[0], "long-header") != strings.Index(lines[1], "1") {
		t.Fatalf("misaligned:\n%s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "app,mean (ms),std (ms)" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "App1,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| app | mean (ms) | std (ms) |") {
		t.Fatalf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatalf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "**Figure X**") {
		t.Fatalf("markdown title missing:\n%s", out)
	}
}

func TestFormatDispatch(t *testing.T) {
	for _, f := range []string{"", "text", "csv", "markdown", "md"} {
		var buf bytes.Buffer
		if err := sample().Format(&buf, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q produced nothing", f)
		}
	}
	var buf bytes.Buffer
	if err := sample().Format(&buf, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRowAccessors(t *testing.T) {
	tab := sample()
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if tab.Row(0)[0] != "App1" {
		t.Fatalf("Row(0) = %v", tab.Row(0))
	}
}

// errWriter fails after n bytes, exercising the renderers' error paths.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFull
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errFull
	}
	w.n -= len(p)
	return len(p), nil
}

var errFull = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestWritersPropagateErrors(t *testing.T) {
	tab := sample()
	for name, f := range map[string]func(*errWriter) error{
		"text":     func(w *errWriter) error { return tab.WriteText(w) },
		"csv":      func(w *errWriter) error { return tab.WriteCSV(w) },
		"markdown": func(w *errWriter) error { return tab.WriteMarkdown(w) },
	} {
		if err := f(&errWriter{n: 3}); err == nil {
			t.Errorf("%s: write error swallowed", name)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should give empty string")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("constant series = %q", flat)
	}
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if ramp != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp = %q", ramp)
	}
	vee := Sparkline([]float64{10, 0, 10})
	if []rune(vee)[0] != '█' || []rune(vee)[1] != '▁' || []rune(vee)[2] != '█' {
		t.Fatalf("vee = %q", vee)
	}
}

func TestIntAndBoolFormatting(t *testing.T) {
	tab := New("", "n", "flag").AddRow(42, true)
	if tab.Row(0)[0] != "42" || tab.Row(0)[1] != "true" {
		t.Fatalf("row = %v", tab.Row(0))
	}
}
