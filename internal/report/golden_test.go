package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenTable is a fixed table exercising every cell type the renderers
// handle: strings, ints, float64 (with %.4g rounding), and a cell wider
// than its header.
func goldenTable() *Table {
	t := New("Figure 6: energy per VM (Wh)", "VMs", "IPAC", "pMapper", "saving_pct")
	t.AddRow(30, 696.9123, 844.4, "17.5")
	t.AddRow(230, 717.0, 829.15551, "13.5")
	t.AddRow(5415, 1038.25, 1260.5, "17.6")
	t.AddRow("mean (weighted)", 817.4, 978.0, 16.2)
	return t
}

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -update` to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s output changed:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenOutputs(t *testing.T) {
	for _, format := range []string{"text", "csv", "markdown"} {
		format := format
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := goldenTable().Format(&buf, format); err != nil {
				t.Fatal(err)
			}
			ext := map[string]string{"text": "txt", "csv": "csv", "markdown": "md"}[format]
			checkGolden(t, "table."+ext, buf.Bytes())
		})
	}
}
