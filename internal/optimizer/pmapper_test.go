package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/packing"
	"vdcpower/internal/power"
)

// Mechanics of the pMapper baseline, phase by phase.

func TestPMapperLeavesBalancedSystemAlone(t *testing.T) {
	// If the current placement already matches the virtual target, no
	// migrations should happen.
	dc := mixedDC(t, 1, 0, 0)
	placeVM(t, dc, "a", 2, 1, dc.Servers[0])
	pm := NewPMapper()
	rep, err := pm.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 0 {
		t.Fatalf("migrated %d on a balanced system", rep.Migrations)
	}
}

func TestPMapperDonorsShedSmallestFirst(t *testing.T) {
	// Low server hosts one big and two small VMs; the efficient high-end
	// server is empty. Phase 1 targets everything on high; phase 2 sheds
	// from the donor smallest-first.
	dc := mixedDC(t, 1, 0, 1)
	low := dc.Servers[1]
	placeVM(t, dc, "big", 2.0, 1, low)
	placeVM(t, dc, "small1", 0.2, 1, low)
	placeVM(t, dc, "small2", 0.3, 1, low)
	pm := NewPMapper()
	rep, err := pm.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations == 0 {
		t.Fatal("no migrations")
	}
	// Everything fits the 12-GHz high-end target, so the donor is fully
	// drained and slept.
	if low.State() != cluster.Sleeping {
		t.Fatalf("donor not drained: still hosts %d VMs", low.NumVMs())
	}
}

func TestPMapperRespectsConstraints(t *testing.T) {
	dc := mixedDC(t, 1, 3, 3)
	rng := rand.New(rand.NewSource(5))
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 0.4+rng.Float64(), 0.5+rng.Float64()*2, s)
	}
	pm := NewPMapper()
	if _, err := pm.Consolidate(dc); err != nil {
		t.Fatal(err)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, s := range dc.Servers {
		if s.Overloaded() {
			t.Fatalf("server %s overloaded", s.ID)
		}
		if s.TotalMemory() > s.Spec.MemoryGB+1e-9 {
			t.Fatalf("server %s memory oversubscribed", s.ID)
		}
	}
}

func TestPMapperHonorsCostPolicy(t *testing.T) {
	dc := mixedDC(t, 1, 2, 0)
	placeVM(t, dc, "a", 1, 1, dc.Servers[1])
	placeVM(t, dc, "b", 1, 1, dc.Servers[2])
	pm := NewPMapper()
	pm.Policy = DenyAll{}
	rep, err := pm.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 0 {
		t.Fatalf("deny-all policy bypassed: %d migrations", rep.Migrations)
	}
	if rep.Vetoed == 0 {
		t.Fatal("vetoes not recorded")
	}
}

func TestPMapperRecordsMoves(t *testing.T) {
	dc := mixedDC(t, 1, 3, 2)
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 0.8, 1, s)
	}
	pm := NewPMapper()
	rep, err := pm.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != rep.Migrations {
		t.Fatalf("moves %d != migrations %d", len(rep.Moves), rep.Migrations)
	}
	for _, mv := range rep.Moves {
		if mv.From == mv.To || mv.VM == nil {
			t.Fatalf("bad move record %+v", mv)
		}
	}
}

// IPAC stress property: after any consolidation of random workloads, no
// server violates the vector constraints.
func TestIPACConstraintSafetyProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		specs := power.AllTypes()
		var servers []*cluster.Server
		for i := 0; i < 10; i++ {
			servers = append(servers, cluster.NewServer(fmt.Sprintf("s%d", i), specs[rng.Intn(3)]))
		}
		dc, err := cluster.NewDataCenter(servers)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			v := &cluster.VM{
				ID:       fmt.Sprintf("vm%02d", i),
				Demand:   0.1 + rng.Float64()*1.5,
				MemoryGB: 0.2 + rng.Float64()*1.5,
			}
			if err := dc.Place(v, servers[rng.Intn(len(servers))]); err != nil {
				t.Fatal(err)
			}
		}
		ipac := NewIPAC()
		if _, err := ipac.Consolidate(dc); err != nil {
			t.Fatal(err)
		}
		if err := dc.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cons := ipac.Constraint.(packing.VectorConstraint)
		for _, s := range dc.ActiveServers() {
			if s.TotalMemory() > s.Spec.MemoryGB+1e-9 {
				t.Fatalf("seed %d: %s memory violated", seed, s.ID)
			}
			// IPAC may leave pre-existing load above its own headroom
			// (it only guarantees no *new* placement violates it), but
			// never above raw capacity unless the input was infeasible.
			_ = cons
			if s.Overloaded() {
				t.Fatalf("seed %d: %s overloaded after consolidation", seed, s.ID)
			}
		}
	}
}
