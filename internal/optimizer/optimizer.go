// Package optimizer implements the data-center-level power optimizer of
// Section V: the Power Aware Consolidation (PAC) algorithm built on
// Minimum Slack, its incremental driver IPAC, cost-aware migration
// policies, and the pMapper baseline of Verma et al. used in Section VII.
package optimizer

import (
	"fmt"

	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
	"vdcpower/internal/packing"
	"vdcpower/internal/telemetry"
)

// Consolidator is a data-center-level VM placement policy invoked on the
// optimizer's long time scale.
type Consolidator interface {
	// Consolidate re-maps VMs and adjusts server power states.
	Consolidate(dc *cluster.DataCenter) (Report, error)
	// UsesDVFS reports whether servers managed by this policy throttle
	// between invocations (IPAC integrates with the arbitrator's DVFS;
	// the pMapper baseline does not).
	UsesDVFS() bool
	// Name identifies the policy in experiment output.
	Name() string
}

// Report summarizes one optimizer invocation.
type Report struct {
	Migrations   int // migrations performed
	Vetoed       int // migrations rejected by the cost policy
	Rounds       int // consolidation rounds executed
	Unresolved   int // overloaded VMs that could not be re-placed
	FailedMoves  int // planned migrations abandoned after exhausting retries
	ActiveBefore int
	ActiveAfter  int
	// Moves records every performed migration, in order, so callers can
	// charge migration costs (network traffic, application downtime).
	Moves []cluster.Migration
	// FaultLog records the injected faults (migration aborts, pass errors)
	// absorbed during this pass, so degraded runs stay auditable.
	FaultLog []fault.Record
}

// String renders the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("migrations=%d vetoed=%d rounds=%d unresolved=%d failed=%d active %d→%d",
		r.Migrations, r.Vetoed, r.Rounds, r.Unresolved, r.FailedMoves, r.ActiveBefore, r.ActiveAfter)
}

// WithoutDVFS wraps a consolidator so its servers run at maximum
// frequency between invocations — the ablation isolating how much of
// IPAC's saving comes from consolidation versus DVFS integration.
type WithoutDVFS struct {
	Inner Consolidator
}

// Consolidate implements Consolidator.
func (w WithoutDVFS) Consolidate(dc *cluster.DataCenter) (Report, error) {
	return w.Inner.Consolidate(dc)
}

// UsesDVFS implements Consolidator.
func (w WithoutDVFS) UsesDVFS() bool { return false }

// Name implements Consolidator.
func (w WithoutDVFS) Name() string { return w.Inner.Name() + "-noDVFS" }

// SetTrace implements telemetry.Traceable by forwarding to the wrapped
// consolidator when it is itself traceable.
func (w WithoutDVFS) SetTrace(tk *telemetry.Track) {
	if t, ok := w.Inner.(telemetry.Traceable); ok {
		t.SetTrace(tk)
	}
}

// EstimateBenefit approximates the steady-state power saving (watts) of
// moving vm from one server to another: the per-GHz marginal power
// difference, plus the idle power reclaimed if the source empties and can
// sleep. Cost policies weigh this against their migration cost model.
func EstimateBenefit(vm *cluster.VM, from, to *cluster.Server) float64 {
	perGHzFrom := from.Spec.MaxPower() / from.Spec.Capacity()
	perGHzTo := to.Spec.MaxPower() / to.Spec.Capacity()
	benefit := vm.Demand * (perGHzFrom - perGHzTo)
	if from.NumVMs() == 1 { // vm is the last tenant: the server can sleep
		benefit += from.Spec.Power(from.Spec.PStates[0], 0) - from.Spec.PSleep
	}
	return benefit
}

// binFor views a server as a packing bin carrying its current load.
func binFor(s *cluster.Server) *packing.Bin {
	//lint:ignore hotalloc one bin view per candidate server per drain round: planning state, not per-iteration churn
	b := &packing.Bin{
		ID:         s.ID,
		CPUCap:     s.Spec.Capacity(),
		MemCap:     s.Spec.MemoryGB,
		Efficiency: s.Spec.Efficiency(),
	}
	for _, v := range s.VMs() {
		b.Add(packing.Item{ID: v.ID, CPU: v.Demand, Mem: v.MemoryGB})
	}
	return b
}

// itemFor views a VM as a packing item.
func itemFor(v *cluster.VM) packing.Item {
	return packing.Item{ID: v.ID, CPU: v.Demand, Mem: v.MemoryGB}
}
