package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/packing"
	"vdcpower/internal/power"
)

// mixedDC builds a data center with nHigh/nMid/nLow servers of the three
// standard types, all active and empty.
func mixedDC(t *testing.T, nHigh, nMid, nLow int) *cluster.DataCenter {
	t.Helper()
	var servers []*cluster.Server
	add := func(prefix string, n int, spec power.Spec) {
		for i := 0; i < n; i++ {
			servers = append(servers, cluster.NewServer(fmt.Sprintf("%s%d", prefix, i), spec))
		}
	}
	add("high", nHigh, power.TypeHighEnd())
	add("mid", nMid, power.TypeMid())
	add("low", nLow, power.TypeLow())
	dc, err := cluster.NewDataCenter(servers)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func placeVM(t *testing.T, dc *cluster.DataCenter, id string, demand, mem float64, srv *cluster.Server) *cluster.VM {
	t.Helper()
	v := &cluster.VM{ID: id, Demand: demand, MemoryGB: mem}
	if err := dc.Place(v, srv); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPACPrefersEfficientBins(t *testing.T) {
	bins := []*packing.Bin{
		{ID: "low", CPUCap: 3, MemCap: 8, Efficiency: 0.021},
		{ID: "high", CPUCap: 12, MemCap: 16, Efficiency: 0.040},
	}
	items := []packing.Item{
		{ID: "a", CPU: 2, Mem: 1},
		{ID: "b", CPU: 2, Mem: 1},
	}
	asg, unplaced := PAC(items, bins, packing.VectorConstraint{}, packing.DefaultMinSlackConfig())
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	for id, binID := range asg {
		if binID != "high" {
			t.Fatalf("item %s on %s, want high-efficiency bin", id, binID)
		}
	}
}

func TestPACOverflowsToNextBin(t *testing.T) {
	bins := []*packing.Bin{
		{ID: "high", CPUCap: 4, MemCap: 16, Efficiency: 0.040},
		{ID: "low", CPUCap: 4, MemCap: 16, Efficiency: 0.021},
	}
	items := []packing.Item{
		{ID: "a", CPU: 3, Mem: 1},
		{ID: "b", CPU: 3, Mem: 1},
	}
	asg, unplaced := PAC(items, bins, packing.VectorConstraint{}, packing.DefaultMinSlackConfig())
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	if asg["a"] == asg["b"] {
		t.Fatal("both items on one 4-GHz bin is infeasible")
	}
}

func TestPACReportsUnplaceable(t *testing.T) {
	bins := []*packing.Bin{{ID: "b", CPUCap: 1, MemCap: 1, Efficiency: 1}}
	items := []packing.Item{{ID: "huge", CPU: 50, Mem: 1}}
	_, unplaced := PAC(items, bins, packing.VectorConstraint{}, packing.DefaultMinSlackConfig())
	if len(unplaced) != 1 {
		t.Fatal("expected unplaced item")
	}
}

func TestIPACConsolidatesScatteredVMs(t *testing.T) {
	// 6 tiny VMs scattered over 6 servers consolidate onto the high-end
	// server; the rest sleep.
	dc := mixedDC(t, 1, 3, 2)
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 1.0, 1.0, s)
	}
	ipac := NewIPAC()
	rep, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rep.ActiveAfter >= rep.ActiveBefore {
		t.Fatalf("no consolidation: %s", rep)
	}
	// All 6 GHz of demand fits the 12-GHz high-end server.
	if got := dc.NumActive(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	high := dc.Servers[0]
	if high.NumVMs() != 6 {
		t.Fatalf("high-end hosts %d VMs, want 6", high.NumVMs())
	}
}

func TestIPACRespectsMemoryConstraint(t *testing.T) {
	// Both VMs fit any one server by CPU, but their combined memory
	// (24 GB) exceeds the 16 GB of a high-end server: consolidation onto
	// one host must be refused.
	dc := mixedDC(t, 3, 0, 0)
	placeVM(t, dc, "v0", 1, 12, dc.Servers[1])
	placeVM(t, dc, "v1", 1, 12, dc.Servers[2])
	ipac := NewIPAC()
	if _, err := ipac.Consolidate(dc); err != nil {
		t.Fatal(err)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, s := range dc.Servers {
		if s.TotalMemory() > s.Spec.MemoryGB+1e-9 {
			t.Fatalf("server %s memory oversubscribed: %v > %v", s.ID, s.TotalMemory(), s.Spec.MemoryGB)
		}
	}
}

func TestIPACReducesPower(t *testing.T) {
	dc := mixedDC(t, 2, 4, 4)
	rng := rand.New(rand.NewSource(1))
	i := 0
	for _, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 0.5+rng.Float64(), 1, s)
		i++
	}
	for _, s := range dc.Servers {
		s.ApplyDVFS()
	}
	before := dc.TotalPower()
	ipac := NewIPAC()
	if _, err := ipac.Consolidate(dc); err != nil {
		t.Fatal(err)
	}
	for _, s := range dc.ActiveServers() {
		s.ApplyDVFS()
	}
	after := dc.TotalPower()
	if after >= before {
		t.Fatalf("power did not drop: %v -> %v", before, after)
	}
}

func TestIPACResolvesOverload(t *testing.T) {
	dc := mixedDC(t, 1, 2, 0)
	mid := dc.Servers[1] // 4 GHz capacity
	placeVM(t, dc, "a", 2.5, 1, mid)
	placeVM(t, dc, "b", 2.5, 1, mid) // 5 > 4: overloaded
	if !mid.Overloaded() {
		t.Fatal("setup: server should be overloaded")
	}
	ipac := NewIPAC()
	rep, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unresolved != 0 {
		t.Fatalf("unresolved overloads: %d", rep.Unresolved)
	}
	for _, s := range dc.Servers {
		if s.Overloaded() {
			t.Fatalf("server %s still overloaded", s.ID)
		}
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIPACOverloadWakesSleepingServer(t *testing.T) {
	dc := mixedDC(t, 0, 2, 0)
	dc.Servers[1].Sleep()
	s := dc.Servers[0]
	placeVM(t, dc, "a", 3, 1, s)
	placeVM(t, dc, "b", 3, 1, s) // 6 > 4: overloaded, only a sleeper available
	ipac := NewIPAC()
	rep, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unresolved != 0 {
		t.Fatalf("unresolved: %d", rep.Unresolved)
	}
	if dc.Servers[1].State() != cluster.Active {
		t.Fatal("sleeping server was not woken for overload relief")
	}
}

func TestIPACUnresolvableOverloadReported(t *testing.T) {
	dc := mixedDC(t, 0, 1, 0)
	s := dc.Servers[0]
	placeVM(t, dc, "a", 3, 1, s)
	placeVM(t, dc, "b", 3, 1, s)
	ipac := NewIPAC()
	rep, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unresolved == 0 {
		t.Fatal("expected unresolved overload with nowhere to go")
	}
}

func TestIPACDenyAllPolicyBlocksConsolidation(t *testing.T) {
	dc := mixedDC(t, 1, 2, 0)
	placeVM(t, dc, "a", 1, 1, dc.Servers[1])
	placeVM(t, dc, "b", 1, 1, dc.Servers[2])
	ipac := NewIPAC()
	ipac.Policy = DenyAll{}
	rep, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 0 {
		t.Fatalf("migrations happened despite deny-all: %d", rep.Migrations)
	}
	if rep.Vetoed == 0 {
		t.Fatal("expected vetoes to be recorded")
	}
}

func TestIPACIdempotentSecondRun(t *testing.T) {
	dc := mixedDC(t, 1, 3, 2)
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 0.8, 1, s)
	}
	ipac := NewIPAC()
	if _, err := ipac.Consolidate(dc); err != nil {
		t.Fatal(err)
	}
	rep2, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Migrations != 0 {
		t.Fatalf("second run still migrates: %s", rep2)
	}
}

func TestPMapperConsolidates(t *testing.T) {
	dc := mixedDC(t, 1, 3, 2)
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 1.0, 1.0, s)
	}
	pm := NewPMapper()
	rep, err := pm.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rep.ActiveAfter >= rep.ActiveBefore {
		t.Fatalf("pMapper did not consolidate: %s", rep)
	}
	for _, s := range dc.Servers {
		if s.Overloaded() {
			t.Fatalf("server %s overloaded after pMapper", s.ID)
		}
		if s.TotalMemory() > s.Spec.MemoryGB+1e-9 {
			t.Fatalf("server %s memory oversubscribed", s.ID)
		}
	}
}

func TestPMapperNoDVFS(t *testing.T) {
	if NewPMapper().UsesDVFS() {
		t.Fatal("pMapper must not use DVFS (Section VII comparison)")
	}
	if !NewIPAC().UsesDVFS() {
		t.Fatal("IPAC must use DVFS")
	}
}

func TestIPACBeatsOrMatchesPMapperActiveServers(t *testing.T) {
	// On identical random workloads, IPAC (Minimum Slack) should need no
	// more active servers than pMapper (FFD) — the Section VII claim.
	for seed := int64(0); seed < 8; seed++ {
		build := func(t *testing.T) *cluster.DataCenter {
			dc := mixedDC(t, 3, 5, 5)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 24; i++ {
				srv := dc.Servers[i%len(dc.Servers)]
				v := &cluster.VM{ID: fmt.Sprintf("v%02d", i), Demand: 0.3 + 1.2*rng.Float64(), MemoryGB: 0.5 + rng.Float64()}
				if err := dc.Place(v, srv); err != nil {
					t.Fatal(err)
				}
			}
			return dc
		}
		dcA := build(t)
		dcB := build(t)
		// Compare packing quality at equal fill levels: disable IPAC's
		// growth headroom, since pMapper packs to 100%.
		ipac := NewIPAC()
		ipac.Constraint = packing.VectorConstraint{}
		if _, err := ipac.Consolidate(dcA); err != nil {
			t.Fatal(err)
		}
		if _, err := NewPMapper().Consolidate(dcB); err != nil {
			t.Fatal(err)
		}
		if dcA.NumActive() > dcB.NumActive() {
			t.Fatalf("seed %d: IPAC active %d > pMapper %d", seed, dcA.NumActive(), dcB.NumActive())
		}
	}
}

func TestNoOpConsolidator(t *testing.T) {
	dc := mixedDC(t, 1, 1, 0)
	placeVM(t, dc, "v", 1, 1, dc.Servers[1])
	rep, err := NoOp{}.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 0 || rep.ActiveBefore != rep.ActiveAfter {
		t.Fatalf("NoOp acted: %s", rep)
	}
	if (NoOp{}).Name() == "" || (NoOp{DVFS: true}).Name() == "" {
		t.Fatal("empty names")
	}
	if (NoOp{DVFS: true}).UsesDVFS() != true || (NoOp{}).UsesDVFS() != false {
		t.Fatal("NoOp DVFS flag wrong")
	}
}

func TestEstimateBenefit(t *testing.T) {
	high := cluster.NewServer("h", power.TypeHighEnd())
	low := cluster.NewServer("l", power.TypeLow())
	dc, err := cluster.NewDataCenter([]*cluster.Server{high, low})
	if err != nil {
		t.Fatal(err)
	}
	v := &cluster.VM{ID: "v", Demand: 2, MemoryGB: 1}
	if err := dc.Place(v, low); err != nil {
		t.Fatal(err)
	}
	// Moving from an inefficient to an efficient server, emptying the
	// source, must show a positive benefit.
	if b := EstimateBenefit(v, low, high); b <= 0 {
		t.Fatalf("benefit = %v, want > 0", b)
	}
	// The reverse direction is a loss (no sleep bonus: high hosts nothing
	// but the VM isn't there; craft a hosted case).
	if err := dc.Remove(v); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(v, high); err != nil {
		t.Fatal(err)
	}
	v2 := &cluster.VM{ID: "v2", Demand: 1, MemoryGB: 1}
	if err := dc.Place(v2, high); err != nil {
		t.Fatal(err)
	}
	if b := EstimateBenefit(v2, high, low); b >= 0 {
		t.Fatalf("benefit toward less efficient server = %v, want < 0", b)
	}
}

func TestPolicies(t *testing.T) {
	high := cluster.NewServer("h", power.TypeHighEnd())
	low := cluster.NewServer("l", power.TypeLow())
	v := &cluster.VM{ID: "v", Demand: 1, MemoryGB: 4}
	if !(AllowAll{}).Allow(v, low, high, -5) {
		t.Fatal("AllowAll denied")
	}
	if (DenyAll{}).Allow(v, low, high, 100) {
		t.Fatal("DenyAll allowed")
	}
	mb := MinBenefit{Watts: 10}
	if mb.Allow(v, low, high, 5) || !mb.Allow(v, low, high, 15) {
		t.Fatal("MinBenefit threshold wrong")
	}
	bp := BandwidthPriced{WattsPerGB: 3} // cost = 12 W
	if bp.Allow(v, low, high, 10) || !bp.Allow(v, low, high, 13) {
		t.Fatal("BandwidthPriced threshold wrong")
	}
	// ModelPriced charges the *transferred* bytes, not just the memory
	// size: more pre-copy passes (a write-hot VM) raise the price.
	model := cluster.DefaultMigrationModel()
	mp := ModelPriced{Model: model, WattsPerGB: 3}
	cost := model.NetworkGB(v.MemoryGB) * 3
	if mp.Allow(v, low, high, cost*0.9) || !mp.Allow(v, low, high, cost*1.1) {
		t.Fatal("ModelPriced threshold wrong")
	}
	hot := model
	hot.DirtyFraction = 0.5
	hotPolicy := ModelPriced{Model: hot, WattsPerGB: 3}
	if hotPolicy.Allow(v, low, high, cost*1.1) {
		t.Fatal("write-hot VM should cost more than the cold price")
	}
	for _, p := range []CostPolicy{AllowAll{}, DenyAll{}, mb, bp, mp} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{Migrations: 3, ActiveBefore: 5, ActiveAfter: 2}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func BenchmarkIPAC50Servers(b *testing.B) {
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		var servers []*cluster.Server
		specs := power.AllTypes()
		for i := 0; i < 50; i++ {
			servers = append(servers, cluster.NewServer(fmt.Sprintf("s%d", i), specs[i%3]))
		}
		dc, _ := cluster.NewDataCenter(servers)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 100; i++ {
			v := &cluster.VM{ID: fmt.Sprintf("v%d", i), Demand: 0.2 + rng.Float64(), MemoryGB: 0.5}
			_ = dc.Place(v, servers[i%50])
		}
		b.StartTimer()
		if _, err := NewIPAC().Consolidate(dc); err != nil {
			b.Fatal(err)
		}
	}
}
