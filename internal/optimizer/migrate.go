package optimizer

import (
	"fmt"

	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
	"vdcpower/internal/telemetry"
)

// migrateWithRetry performs one planned migration through the two-phase
// protocol under the fault plane: each attempt reserves the target, and an
// injected mid-copy abort rolls the reservation back (the VM stays on the
// source) and retries after the injector's deterministic backoff, up to
// its retry budget. It returns whether the move committed; a non-nil error
// is a real BeginMigration failure (bad plan), never an injected fault.
func migrateWithRetry(dc *cluster.DataCenter, vm *cluster.VM, target *cluster.Server,
	inj *fault.Injector, rep *Report, tk *telemetry.Track) (bool, error) {
	attempts := inj.MigrationMaxRetries() + 1
	for a := 0; a < attempts; a++ {
		tx, err := dc.BeginMigration(vm, target)
		if err != nil {
			return false, err
		}
		if inj.MigrationAborts(vm.ID, a) {
			if rbErr := tx.Rollback(); rbErr != nil {
				return false, rbErr
			}
			//lint:ignore hotalloc fault-injection bookkeeping runs only when a fault fires, off the steady-state path
			rep.FaultLog = append(rep.FaultLog, fault.Record{
				Kind: fault.MigrationAbort, Step: inj.Step(), Target: vm.ID,
				//lint:ignore hotalloc fault-path diagnostic string, built only when an injected abort fires
				Detail: fmt.Sprintf("attempt %d/%d to %s aborted, backoff %.1fs",
					a+1, attempts, target.ID, inj.MigrationBackoff(a)),
			})
			tk.Event("optimizer.migration_abort").Str("vm", vm.ID).
				Str("to", target.ID).Int("attempt", a).End()
			continue
		}
		mig, err := tx.Commit()
		if err != nil {
			return false, err
		}
		//lint:ignore hotalloc one record per committed migration; the report is unbounded by design
		rep.Moves = append(rep.Moves, mig)
		rep.Migrations++
		return true, nil
	}
	rep.FailedMoves++
	tk.Event("optimizer.move_failed").Str("vm", vm.ID).
		Str("to", target.ID).Int("attempts", attempts).End()
	return false, nil
}
