package optimizer

import (
	"fmt"
	"testing"
)

func TestIPACDrainsCordonedServerFirst(t *testing.T) {
	// The cordoned server is the *most* efficient — normally the last
	// drain candidate — but maintenance outranks efficiency.
	dc := mixedDC(t, 1, 2, 0)
	high := dc.Servers[0]
	placeVM(t, dc, "on-high", 1, 1, high)
	placeVM(t, dc, "on-mid", 1, 1, dc.Servers[1])
	high.Cordon()
	rep, err := NewIPAC().Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if high.NumVMs() != 0 {
		t.Fatalf("cordoned server still hosts %d VMs", high.NumVMs())
	}
	if rep.Migrations == 0 {
		t.Fatal("no migrations recorded")
	}
	// Nothing may have landed on the cordoned server.
	for _, mv := range rep.Moves {
		if mv.To == high {
			t.Fatal("migration targeted the cordoned server")
		}
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIPACOverloadReliefAvoidsCordoned(t *testing.T) {
	dc := mixedDC(t, 1, 2, 0)
	mid := dc.Servers[1]
	placeVM(t, dc, "a", 2.5, 1, mid)
	placeVM(t, dc, "b", 2.5, 1, mid) // overloaded (5 > 4)
	dc.Servers[0].Cordon()           // the obvious relief target is out
	rep, err := NewIPAC().Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Servers[0].NumVMs() != 0 {
		t.Fatal("overload relief used the cordoned server")
	}
	// The other mid server must have taken the shed VM instead.
	if mid.Overloaded() && rep.Unresolved == 0 {
		t.Fatal("overload neither resolved nor reported")
	}
}

func TestPMapperDrainsCordoned(t *testing.T) {
	dc := mixedDC(t, 1, 1, 0)
	mid := dc.Servers[1]
	placeVM(t, dc, "v", 1, 1, mid)
	mid.Cordon()
	rep, err := NewPMapper().Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if mid.NumVMs() != 0 {
		t.Fatalf("pMapper left %d VMs on the cordoned server", mid.NumVMs())
	}
	for _, mv := range rep.Moves {
		if mv.To == mid {
			t.Fatal("pMapper targeted the cordoned server")
		}
	}
}

func TestCordonedClusterStillConsolidates(t *testing.T) {
	// With one server cordoned, the remaining fleet still consolidates
	// normally.
	dc := mixedDC(t, 1, 3, 2)
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 0.8, 1, s)
	}
	dc.Servers[2].Cordon()
	if _, err := NewIPAC().Consolidate(dc); err != nil {
		t.Fatal(err)
	}
	if dc.Servers[2].NumVMs() != 0 {
		t.Fatal("cordoned server not drained")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
