package optimizer

import "vdcpower/internal/cluster"

// CostPolicy is the administrator-defined interface of Section V
// ("cost-aware VM migration"): before each migration the optimizer
// compares benefits and costs and the policy decides whether the
// migration is allowed or rejected. Cost structure differs between data
// centers, so policies are pluggable.
type CostPolicy interface {
	// Allow reports whether vm may migrate from→to given the estimated
	// steady-state power benefit in watts.
	Allow(vm *cluster.VM, from, to *cluster.Server, benefitWatts float64) bool
	// Name identifies the policy.
	Name() string
}

// AllowAll performs every requested migration (cost considered
// negligible, e.g. an over-provisioned migration network).
type AllowAll struct{}

// Allow implements CostPolicy.
func (AllowAll) Allow(*cluster.VM, *cluster.Server, *cluster.Server, float64) bool { return true }

// Name implements CostPolicy.
func (AllowAll) Name() string { return "allow-all" }

// DenyAll rejects every migration — the ablation that reduces IPAC to
// DVFS-only management.
type DenyAll struct{}

// Allow implements CostPolicy.
func (DenyAll) Allow(*cluster.VM, *cluster.Server, *cluster.Server, float64) bool { return false }

// Name implements CostPolicy.
func (DenyAll) Name() string { return "deny-all" }

// MinBenefit allows a migration only when the estimated power saving
// clears a fixed threshold, suppressing churn from marginal moves.
type MinBenefit struct {
	Watts float64
}

// Allow implements CostPolicy.
func (p MinBenefit) Allow(_ *cluster.VM, _, _ *cluster.Server, benefitWatts float64) bool {
	return benefitWatts >= p.Watts
}

// Name implements CostPolicy.
func (p MinBenefit) Name() string { return "min-benefit" }

// BandwidthPriced charges each migration in proportion to the VM's memory
// footprint (live migration copies memory over the network — the
// bandwidth bottleneck scenario of Section V) and allows it only when the
// power benefit pays for it.
type BandwidthPriced struct {
	// WattsPerGB converts a VM's memory size into an equivalent power
	// cost. Higher values model a more congested migration network.
	WattsPerGB float64
}

// Allow implements CostPolicy.
func (p BandwidthPriced) Allow(vm *cluster.VM, _, _ *cluster.Server, benefitWatts float64) bool {
	return benefitWatts >= vm.MemoryGB*p.WattsPerGB
}

// Name implements CostPolicy.
func (p BandwidthPriced) Name() string { return "bandwidth-priced" }

// ModelPriced prices each migration from the pre-copy migration model:
// the total bytes the migration pushes over the network (iterative
// copies included) are charged at WattsPerGB, so a write-hot VM that
// needs many re-copy passes costs proportionally more than its memory
// size alone suggests.
type ModelPriced struct {
	Model      cluster.MigrationModel
	WattsPerGB float64
}

// Allow implements CostPolicy.
func (p ModelPriced) Allow(vm *cluster.VM, _, _ *cluster.Server, benefitWatts float64) bool {
	return benefitWatts >= p.Model.NetworkGB(vm.MemoryGB)*p.WattsPerGB
}

// Name implements CostPolicy.
func (p ModelPriced) Name() string { return "model-priced" }
