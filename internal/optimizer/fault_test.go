package optimizer

import (
	"fmt"
	"testing"

	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
)

// scatteredDC builds the standard consolidation scenario: 6 tiny VMs over
// 6 servers, which a healthy IPAC packs onto the high-end server.
func scatteredDC(t *testing.T) *cluster.DataCenter {
	t.Helper()
	dc := mixedDC(t, 1, 3, 2)
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 1.0, 1.0, s)
	}
	return dc
}

func TestIPACRetriesAbortedMigration(t *testing.T) {
	// Abort probability 0.5 with 4 retries: essentially every planned move
	// eventually commits, so consolidation still completes — just with a
	// fault log documenting the aborted attempts.
	dc := scatteredDC(t)
	ipac := NewIPAC()
	ipac.SetFaults(fault.New(fault.Profile{Seed: 3,
		Migration: fault.MigrationProfile{AbortProb: 0.5, MaxRetries: 4}}))
	rep, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if dc.NumActive() != 1 || rep.Migrations != 5 {
		t.Fatalf("consolidation incomplete under retries: active=%d %s", dc.NumActive(), rep)
	}
	if len(rep.FaultLog) == 0 {
		t.Fatal("no aborts logged at abort_prob 0.5")
	}
	for _, r := range rep.FaultLog {
		if r.Kind != fault.MigrationAbort {
			t.Fatalf("unexpected fault %s", r)
		}
	}
}

func TestIPACSkipsMoveAfterRetriesExhausted(t *testing.T) {
	// Abort probability 1 with no retries: every move fails. IPAC must
	// skip-and-continue — no error, no panic, placement untouched.
	dc := scatteredDC(t)
	before := dc.NumActive()
	ipac := NewIPAC()
	ipac.SetFaults(fault.New(fault.Profile{Seed: 4,
		Migration: fault.MigrationProfile{AbortProb: 1}}))
	rep, err := ipac.Consolidate(dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 0 || rep.FailedMoves == 0 {
		t.Fatalf("moves under abort_prob 1: %s", rep)
	}
	if dc.NumActive() != before {
		t.Fatalf("active changed %d -> %d with every migration aborting", before, dc.NumActive())
	}
	for _, v := range dc.VMs() {
		if dc.HostOf(v.ID) == nil {
			t.Fatalf("VM %s lost", v.ID)
		}
	}
	if len(dc.InFlight()) != 0 {
		t.Fatal("leaked reservation after aborted pass")
	}
}

func TestIPACTransientPassError(t *testing.T) {
	dc := scatteredDC(t)
	ipac := NewIPAC()
	ipac.SetFaults(fault.New(fault.Profile{Seed: 5,
		Optimizer: fault.OptimizerProfile{ErrorProb: 1}}))
	rep, err := ipac.Consolidate(dc)
	if err == nil {
		t.Fatal("injected pass error not surfaced")
	}
	if !fault.IsInjected(err) {
		t.Fatalf("pass error not typed: %v", err)
	}
	if rep.Migrations != 0 || len(rep.FaultLog) != 1 {
		t.Fatalf("failed pass report: %s (log %v)", rep, rep.FaultLog)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The pass error is transient: a fault-free pass completes.
	ipac.SetFaults(nil)
	if _, err := ipac.Consolidate(dc); err != nil {
		t.Fatal(err)
	}
	if dc.NumActive() != 1 {
		t.Fatalf("recovery pass did not consolidate: active=%d", dc.NumActive())
	}
}

func TestResolveOverloadsWithFaultsLeavesOverloadReported(t *testing.T) {
	// One overloaded mid server (cap 4), relief target available, but every
	// relief migration aborts: the overload must stay reported as
	// unresolved, not fail the pass.
	dc := mixedDC(t, 1, 1, 0)
	mid := dc.Servers[1]
	placeVM(t, dc, "big", 3.0, 1.0, mid)
	placeVM(t, dc, "more", 2.0, 1.0, mid)
	if !mid.Overloaded() {
		t.Fatal("setup: mid not overloaded")
	}
	inj := fault.New(fault.Profile{Seed: 6, Migration: fault.MigrationProfile{AbortProb: 1}})
	ipac := NewIPAC()
	rep, err := ResolveOverloadsWithFaults(dc, ipac.Constraint, ipac.MinSlack, inj)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unresolved == 0 || rep.Migrations != 0 {
		t.Fatalf("overload silently resolved: %s", rep)
	}
	if !mid.Overloaded() {
		t.Fatal("overload vanished without migrations")
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Without faults the same relief succeeds.
	rep, err = ResolveOverloadsWithFaults(dc, ipac.Constraint, ipac.MinSlack, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Overloaded() || rep.Migrations == 0 {
		t.Fatalf("fault-free relief failed: %s", rep)
	}
}

func TestIPACFaultRunsAreReproducible(t *testing.T) {
	run := func() (Report, []string) {
		dc := scatteredDC(t)
		ipac := NewIPAC()
		ipac.SetFaults(fault.New(fault.Profile{Seed: 7,
			Migration: fault.MigrationProfile{AbortProb: 0.4, MaxRetries: 1}}))
		rep, err := ipac.Consolidate(dc)
		if err != nil {
			t.Fatal(err)
		}
		var placement []string
		for _, v := range dc.VMs() {
			placement = append(placement, v.ID+"@"+dc.HostOf(v.ID).ID)
		}
		return rep, placement
	}
	repA, placeA := run()
	repB, placeB := run()
	if repA.String() != repB.String() || len(repA.FaultLog) != len(repB.FaultLog) {
		t.Fatalf("same-seed reports differ: %s vs %s", repA, repB)
	}
	for i := range placeA {
		if placeA[i] != placeB[i] {
			t.Fatalf("same-seed placements differ: %v vs %v", placeA, placeB)
		}
	}
}
