package optimizer

import (
	"fmt"
	"sort"

	"vdcpower/internal/cluster"
	"vdcpower/internal/fault"
	"vdcpower/internal/packing"
	"vdcpower/internal/telemetry"
)

// PAC solves the power-aware consolidation sub-problem of Section V:
// given bins (servers, possibly loaded) and items (VMs to place), pack
// the items onto the most power-efficient bins first, minimizing each
// bin's slack with Algorithm 1, until every item is placed or bins run
// out. Bins are mutated to carry the planned load. It returns the
// assignment and any items no bin admitted.
func PAC(items []packing.Item, bins []*packing.Bin, cons packing.Constraint, cfg packing.MinSlackConfig) (packing.Assignment, []packing.Item) {
	sp := cfg.Trace.Start("optimizer.pac").Int("items", len(items)).Int("bins", len(bins))
	packing.SortBinsByEfficiency(bins)
	asg := packing.Assignment{}
	remaining := append([]packing.Item(nil), items...)
	for _, b := range bins {
		if len(remaining) == 0 {
			break
		}
		res := packing.MinimumSlack(b, remaining, cons, cfg)
		if len(res.Chosen) == 0 {
			continue
		}
		chosen := map[string]bool{}
		for _, it := range res.Chosen {
			b.Add(it)
			asg[it.ID] = b.ID
			chosen[it.ID] = true
		}
		kept := remaining[:0]
		for _, it := range remaining {
			if !chosen[it.ID] {
				kept = append(kept, it)
			}
		}
		remaining = kept
	}
	sp.Int("placed", len(asg)).Int("unplaced", len(remaining)).End()
	return asg, remaining
}

// IPAC is the Incremental Power Aware Consolidation algorithm: each
// invocation first resolves overloaded servers, then repeatedly drains
// the least power-efficient active server through PAC while the number of
// active servers keeps decreasing.
type IPAC struct {
	Constraint packing.Constraint
	MinSlack   packing.MinSlackConfig
	Policy     CostPolicy
	// MaxRounds bounds the drain loop per invocation. <= 0 means the
	// number of servers (the natural maximum).
	MaxRounds int
	// Faults, when non-nil, injects transient pass errors and migration
	// aborts; IPAC degrades by skipping the failed move (bounded retries
	// with deterministic backoff) instead of aborting the pass.
	Faults *fault.Injector

	trace *telemetry.Track // set via SetTrace; nil keeps tracing off
}

// SetFaults implements fault.Injectable; harnesses wire the fault plane by
// type assertion, so the Consolidator interface stays fault-free.
func (o *IPAC) SetFaults(in *fault.Injector) { o.Faults = in }

// SetTrace implements telemetry.Traceable: consolidation rounds, B&B
// searches, and cost-policy vetoes record onto tk. Harnesses discover
// the method by type assertion, so the Consolidator interface stays
// telemetry-free.
func (o *IPAC) SetTrace(tk *telemetry.Track) {
	o.trace = tk
	o.MinSlack.Trace = tk
}

// SearchStats exposes the accumulated Algorithm 1 search effort (nil
// until NewIPAC wires a collector). Harnesses publish deltas per pass.
func (o *IPAC) SearchStats() *packing.SearchStats { return o.MinSlack.Stats }

// NewIPAC returns an IPAC with the default constraint (CPU with 10%
// headroom to absorb demand growth between invocations, plus memory),
// the default Minimum Slack tuning, and the allow-all cost policy.
func NewIPAC() *IPAC {
	ms := packing.DefaultMinSlackConfig()
	ms.Stats = &packing.SearchStats{}
	ms.Pool = packing.NewPool()
	return &IPAC{
		Constraint: packing.VectorConstraint{CPUHeadroom: 0.1},
		MinSlack:   ms,
		Policy:     AllowAll{},
	}
}

// UsesDVFS implements Consolidator: IPAC integrates with the arbitrator's
// DVFS between invocations.
func (o *IPAC) UsesDVFS() bool { return true }

// Name implements Consolidator.
func (o *IPAC) Name() string { return "IPAC" }

// Consolidate implements Consolidator.
func (o *IPAC) Consolidate(dc *cluster.DataCenter) (Report, error) {
	rep := Report{ActiveBefore: dc.NumActive()}
	root := o.trace.Start("ipac.consolidate").Int("active_before", rep.ActiveBefore)
	defer func() {
		root.Int("rounds", rep.Rounds).Int("migrations", rep.Migrations).
			Int("vetoed", rep.Vetoed).Int("active_after", rep.ActiveAfter).End()
	}()
	if err := o.Faults.OptimizerError(o.Name()); err != nil {
		// Transient injected pass failure: report it typed so harnesses
		// skip this pass and continue (fault.IsInjected distinguishes it
		// from real errors).
		rep.FaultLog = append(rep.FaultLog, fault.Record{
			Kind: fault.OptimizerError, Step: o.Faults.Step(), Target: o.Name()})
		rep.ActiveAfter = dc.NumActive()
		return rep, err
	}
	if err := o.resolveOverloads(dc, &rep); err != nil {
		return rep, err
	}

	maxRounds := o.MaxRounds
	if maxRounds <= 0 {
		maxRounds = len(dc.Servers)
	}
	tried := map[string]bool{}
	for round := 0; round < maxRounds; round++ {
		donor := o.pickDonor(dc, tried)
		if donor == nil {
			break
		}
		tried[donor.ID] = true
		rep.Rounds++
		rsp := o.trace.Start("ipac.round").Str("donor", donor.ID)
		reduced := o.drain(dc, donor, &rep)
		rsp.Bool("drained", reduced).End()
		if !reduced {
			break // no reduction in active servers: stop (Section V)
		}
	}
	dc.SleepIdle()
	rep.ActiveAfter = dc.NumActive()
	return rep, nil
}

// pickDonor returns the next server to drain: cordoned servers first
// (maintenance outranks optimization), then the least power-efficient
// active non-empty server not yet tried, or nil.
func (o *IPAC) pickDonor(dc *cluster.DataCenter, tried map[string]bool) *cluster.Server {
	var cand []*cluster.Server
	for _, s := range dc.ActiveServers() {
		if s.NumVMs() > 0 && !tried[s.ID] {
			cand = append(cand, s)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].Cordoned() != cand[j].Cordoned() {
			return cand[i].Cordoned()
		}
		ei, ej := cand[i].Spec.Efficiency(), cand[j].Spec.Efficiency()
		//lint:ignore floatcompare exact tie-break for a deterministic sort order
		if ei != ej {
			return ei < ej
		}
		return cand[i].ID < cand[j].ID
	})
	return cand[0]
}

// drain plans moving every VM off donor via PAC onto the other active
// servers and commits the plan if it empties the donor. It reports
// whether the active-server count was reduced.
//
//vdc:hotpath fig6/energy-per-vm
func (o *IPAC) drain(dc *cluster.DataCenter, donor *cluster.Server, rep *Report) bool {
	vms := donor.VMs()
	items := make([]packing.Item, 0, len(vms))
	vmByID := make(map[string]*cluster.VM, len(vms))
	for _, v := range vms {
		//lint:ignore hotalloc items is preallocated to len(vms) just above; this append never grows it
		items = append(items, itemFor(v))
		vmByID[v.ID] = v
	}
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })

	active := dc.ActiveServers()
	bins := make([]*packing.Bin, 0, len(active))
	for _, s := range active {
		if s != donor && !s.Cordoned() {
			//lint:ignore hotalloc bins is preallocated to len(active) just above; this append never grows it
			bins = append(bins, binFor(s))
		}
	}
	asg, unplaced := PAC(items, bins, o.Constraint, o.MinSlack)
	if len(unplaced) > 0 {
		return false // the donor cannot be emptied: no reduction possible
	}
	serverByID := map[string]*cluster.Server{}
	for _, s := range dc.Servers {
		serverByID[s.ID] = s
	}
	emptied := true
	for _, it := range items {
		vm := vmByID[it.ID]
		target := serverByID[asg[it.ID]]
		if !o.Policy.Allow(vm, donor, target, EstimateBenefit(vm, donor, target)) {
			rep.Vetoed++
			emptied = false
			o.trace.Event("optimizer.veto").Str("vm", vm.ID).
				Str("from", donor.ID).Str("to", target.ID).End()
			continue
		}
		moved, err := migrateWithRetry(dc, vm, target, o.Faults, rep, o.trace)
		if err != nil {
			// Should not happen: the plan was validated by the constraint.
			//lint:ignore panicpolicy invariant: the plan was validated by the constraint, failure to apply it is a packing bug
			panic(fmt.Sprintf("optimizer: planned migration failed: %v", err))
		}
		if !moved {
			// Injected abort exhausted its retries: skip-and-continue. The
			// VM stays on the donor, so this round cannot empty it.
			emptied = false
		}
	}
	if emptied {
		donor.Sleep()
	}
	return emptied
}

// resolveOverloads sheds VMs from servers whose demand exceeds capacity
// (a workload increase since the last invocation) and re-places them via
// PAC, waking sleeping servers if necessary. Shedding always commits:
// it is a correctness fix, not an optimization.
func (o *IPAC) resolveOverloads(dc *cluster.DataCenter, rep *Report) error {
	return resolveOverloads(dc, o.Constraint, o.MinSlack, o.Faults, rep)
}

// ResolveOverloads is the on-demand overload reliever of Section III:
// between two invocations of the full optimizer, "an unexpected increase
// of the workload can cause a severe overload on a server", and the
// paper integrates with algorithms that "move VMs from the overloaded
// servers to idle servers in an on-demand manner" (its reference [25]).
// It sheds VMs from overloaded servers and re-places them via PAC,
// reporting the moves; it never consolidates.
func ResolveOverloads(dc *cluster.DataCenter, cons packing.Constraint, cfg packing.MinSlackConfig) (Report, error) {
	return ResolveOverloadsWithFaults(dc, cons, cfg, nil)
}

// ResolveOverloadsWithFaults is ResolveOverloads under a fault plane:
// relief migrations go through the two-phase retry protocol, and moves
// that exhaust their retries leave the overload reported as unresolved
// instead of failing the pass.
func ResolveOverloadsWithFaults(dc *cluster.DataCenter, cons packing.Constraint, cfg packing.MinSlackConfig, inj *fault.Injector) (Report, error) {
	rep := Report{ActiveBefore: dc.NumActive()}
	err := resolveOverloads(dc, cons, cfg, inj, &rep)
	rep.ActiveAfter = dc.NumActive()
	return rep, err
}

func resolveOverloads(dc *cluster.DataCenter, cons packing.Constraint, msCfg packing.MinSlackConfig, inj *fault.Injector, rep *Report) error {
	sp := msCfg.Trace.Start("optimizer.resolve_overloads")
	before := rep.Migrations
	defer func() {
		sp.Int("unresolved", rep.Unresolved).Int("migrations", rep.Migrations-before).End()
	}()
	type shedding struct {
		vm   *cluster.VM
		from *cluster.Server
	}
	var shed []shedding
	shedIDs := map[string]bool{}
	for _, s := range dc.ActiveServers() {
		if !s.Overloaded() {
			continue
		}
		vms := append([]*cluster.VM(nil), s.VMs()...)
		// Shed the largest VMs first: fewest migrations to relieve the
		// overload.
		sort.Slice(vms, func(i, j int) bool {
			//lint:ignore floatcompare exact tie-break for a deterministic sort order
			if vms[i].Demand != vms[j].Demand {
				return vms[i].Demand > vms[j].Demand
			}
			return vms[i].ID < vms[j].ID
		})
		excess := s.TotalDemand() - s.Spec.Capacity()
		for _, v := range vms {
			if excess <= 0 {
				break
			}
			shed = append(shed, shedding{vm: v, from: s})
			shedIDs[v.ID] = true
			excess -= v.Demand
		}
	}
	if len(shed) == 0 {
		return nil
	}
	// Bins: every non-cordoned, non-failed server (sleeping ones may be
	// woken), minus the shed VMs.
	var bins []*packing.Bin
	for _, s := range dc.Servers {
		if s.Cordoned() || s.State() == cluster.Failed {
			continue
		}
		b := &packing.Bin{
			ID:         s.ID,
			CPUCap:     s.Spec.Capacity(),
			MemCap:     s.Spec.MemoryGB,
			Efficiency: s.Spec.Efficiency(),
		}
		for _, v := range s.VMs() {
			if !shedIDs[v.ID] {
				b.Add(packing.Item{ID: v.ID, CPU: v.Demand, Mem: v.MemoryGB})
			}
		}
		bins = append(bins, b)
	}
	items := make([]packing.Item, len(shed))
	for i, sh := range shed {
		items[i] = itemFor(sh.vm)
	}
	asg, unplaced := PAC(items, bins, cons, msCfg)
	rep.Unresolved += len(unplaced)
	serverByID := map[string]*cluster.Server{}
	for _, s := range dc.Servers {
		serverByID[s.ID] = s
	}
	for _, sh := range shed {
		binID, ok := asg[sh.vm.ID]
		if !ok {
			continue // unplaced: the overload stays (reported)
		}
		target := serverByID[binID]
		if target == sh.from {
			continue // re-packed in place
		}
		// Overload relief bypasses the cost policy: SLAs outrank cost.
		moved, err := migrateWithRetry(dc, sh.vm, target, inj, rep, msCfg.Trace)
		if err != nil {
			return fmt.Errorf("optimizer: overload migration failed: %w", err)
		}
		if !moved {
			rep.Unresolved++ // retries exhausted: the overload stays
		}
	}
	return nil
}
