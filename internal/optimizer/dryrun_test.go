package optimizer

import (
	"fmt"
	"testing"

	"vdcpower/internal/cluster"
)

func TestDryRunLeavesDataCenterUntouched(t *testing.T) {
	dc := mixedDC(t, 1, 3, 2)
	for i, s := range dc.Servers {
		placeVM(t, dc, fmt.Sprintf("v%d", i), 1.0, 1.0, s)
	}
	activeBefore := dc.NumActive()
	hosts := map[string]string{}
	for _, v := range dc.VMs() {
		hosts[v.ID] = dc.HostOf(v.ID).ID
	}

	rep, powerDelta, err := DryRun(NewIPAC(), dc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations == 0 {
		t.Fatal("dry run predicted no consolidation on a scattered layout")
	}
	if powerDelta >= 0 {
		t.Fatalf("dry run predicted no saving: %v W", powerDelta)
	}
	// The live data center is untouched.
	if dc.NumActive() != activeBefore {
		t.Fatal("dry run changed active servers")
	}
	for id, host := range hosts {
		if dc.HostOf(id).ID != host {
			t.Fatalf("dry run moved VM %s", id)
		}
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDryRunMovesReferLiveObjects(t *testing.T) {
	dc := mixedDC(t, 1, 2, 0)
	placeVM(t, dc, "a", 1, 1, dc.Servers[1])
	placeVM(t, dc, "b", 1, 1, dc.Servers[2])
	rep, _, err := DryRun(NewIPAC(), dc)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range rep.Moves {
		if mv.VM == nil || mv.From == nil || mv.To == nil {
			t.Fatalf("move not mapped to live objects: %+v", mv)
		}
		// The From server must be the VM's *current* live host.
		if dc.HostOf(mv.VM.ID) != mv.From {
			t.Fatalf("move source %s is not the live host of %s", mv.From.ID, mv.VM.ID)
		}
	}
}

func TestDryRunMatchesRealRun(t *testing.T) {
	build := func() *cluster.DataCenter {
		dc := mixedDC(t, 1, 3, 2)
		for i, s := range dc.Servers {
			placeVM(t, dc, fmt.Sprintf("v%d", i), 0.8, 1.0, s)
		}
		return dc
	}
	dcA := build()
	predicted, _, err := DryRun(NewIPAC(), dcA)
	if err != nil {
		t.Fatal(err)
	}
	dcB := build()
	actual, err := NewIPAC().Consolidate(dcB)
	if err != nil {
		t.Fatal(err)
	}
	if predicted.Migrations != actual.Migrations || predicted.ActiveAfter != actual.ActiveAfter {
		t.Fatalf("prediction %+v diverges from reality %+v", predicted, actual)
	}
}
