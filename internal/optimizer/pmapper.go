package optimizer

import (
	"fmt"
	"sort"

	"vdcpower/internal/cluster"
	"vdcpower/internal/packing"
	"vdcpower/internal/telemetry"
)

// PMapper is the baseline of Section VII (Verma et al., Middleware'08) as
// the paper describes it: an incremental two-phase algorithm. Phase 1
// sorts servers by power efficiency and first-fits every VM onto them to
// compute a *virtual* target allocation (no migrations yet). Phase 2
// labels servers whose target demand exceeds their current demand as
// receivers; every donor sheds its smallest VMs into a migration list
// until it reaches its target, and the list is first-fit-decreasing
// packed onto the receivers.
//
// Per the paper's comparison, pMapper does not integrate DVFS: its
// servers run at maximum frequency between invocations.
type PMapper struct {
	Constraint packing.Constraint
	Policy     CostPolicy

	trace *telemetry.Track // set via SetTrace; nil keeps tracing off
}

// SetTrace implements telemetry.Traceable.
func (p *PMapper) SetTrace(tk *telemetry.Track) { p.trace = tk }

// NewPMapper returns the baseline with the default constraint and the
// allow-all policy.
func NewPMapper() *PMapper {
	return &PMapper{Constraint: packing.VectorConstraint{}, Policy: AllowAll{}}
}

// UsesDVFS implements Consolidator: the baseline relies on consolidation
// alone.
func (p *PMapper) UsesDVFS() bool { return false }

// Name implements Consolidator.
func (p *PMapper) Name() string { return "pMapper" }

// Consolidate implements Consolidator.
func (p *PMapper) Consolidate(dc *cluster.DataCenter) (Report, error) {
	rep := Report{ActiveBefore: dc.NumActive()}
	root := p.trace.Start("pmapper.consolidate").Int("active_before", rep.ActiveBefore)
	defer func() {
		root.Int("migrations", rep.Migrations).Int("vetoed", rep.Vetoed).
			Int("active_after", rep.ActiveAfter).End()
	}()

	// Phase 1: virtual target allocation over empty bins for every
	// server (first-fit in decreasing demand order, the strongest common
	// reading of "first-fit" — phase 2 is explicitly FFD).
	var bins []*packing.Bin
	for _, s := range dc.Servers {
		if s.Cordoned() || s.State() == cluster.Failed {
			continue // maintenance or crashed: not a valid target
		}
		bins = append(bins, &packing.Bin{
			ID:         s.ID,
			CPUCap:     s.Spec.Capacity(),
			MemCap:     s.Spec.MemoryGB,
			Efficiency: s.Spec.Efficiency(),
		})
	}
	packing.SortBinsByEfficiency(bins)
	allVMs := dc.VMs()
	items := make([]packing.Item, len(allVMs))
	for i, v := range allVMs {
		items[i] = itemFor(v)
	}
	targetAsg, unplaced := packing.FirstFitDecreasing(items, bins, p.Constraint)
	rep.Unresolved += len(unplaced)

	// Target demand per server under the virtual allocation.
	target := map[string]float64{}
	for _, it := range items {
		if binID, ok := targetAsg[it.ID]; ok {
			target[binID] += it.CPU
		}
	}

	// Phase 2: donors shed smallest VMs down to their target; receivers
	// absorb the migration list via FFD.
	const eps = 1e-9
	var donors, receivers []*cluster.Server
	for _, s := range dc.Servers {
		cur := s.TotalDemand()
		switch {
		case s.Cordoned():
			if s.NumVMs() > 0 {
				donors = append(donors, s) // drain, never receive
			}
		case target[s.ID] > cur+eps:
			receivers = append(receivers, s)
		case target[s.ID] < cur-eps && s.NumVMs() > 0:
			donors = append(donors, s)
		}
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i].ID < donors[j].ID })

	type pending struct {
		vm   *cluster.VM
		from *cluster.Server
	}
	var migList []pending
	for _, d := range donors {
		vms := append([]*cluster.VM(nil), d.VMs()...)
		sort.Slice(vms, func(i, j int) bool {
			//lint:ignore floatcompare exact tie-break for a deterministic sort order
			if vms[i].Demand != vms[j].Demand {
				return vms[i].Demand < vms[j].Demand // smallest first
			}
			return vms[i].ID < vms[j].ID
		})
		cur := d.TotalDemand()
		for _, v := range vms {
			if cur <= target[d.ID]+eps {
				break
			}
			migList = append(migList, pending{vm: v, from: d})
			cur -= v.Demand
		}
	}
	if len(migList) == 0 {
		dc.SleepIdle()
		rep.ActiveAfter = dc.NumActive()
		return rep, nil
	}

	// Receivers as bins with their current load, most efficient first.
	var recvBins []*packing.Bin
	for _, r := range receivers {
		recvBins = append(recvBins, binFor(r))
	}
	packing.SortBinsByEfficiency(recvBins)
	migItems := make([]packing.Item, len(migList))
	for i, pd := range migList {
		migItems[i] = itemFor(pd.vm)
	}
	asg, notPlaced := packing.FirstFitDecreasing(migItems, recvBins, p.Constraint)
	rep.Unresolved += len(notPlaced)

	serverByID := map[string]*cluster.Server{}
	for _, s := range dc.Servers {
		serverByID[s.ID] = s
	}
	for _, pd := range migList {
		binID, ok := asg[pd.vm.ID]
		if !ok {
			continue
		}
		to := serverByID[binID]
		if to == pd.from {
			continue
		}
		if !p.Policy.Allow(pd.vm, pd.from, to, EstimateBenefit(pd.vm, pd.from, to)) {
			rep.Vetoed++
			p.trace.Event("optimizer.veto").Str("vm", pd.vm.ID).
				Str("from", pd.from.ID).Str("to", to.ID).End()
			continue
		}
		mig, err := dc.Migrate(pd.vm, to)
		if err != nil {
			return rep, fmt.Errorf("optimizer: pMapper migration failed: %w", err)
		}
		rep.Moves = append(rep.Moves, mig)
		rep.Migrations++
	}
	dc.SleepIdle()
	rep.ActiveAfter = dc.NumActive()
	rep.Rounds = 1
	return rep, nil
}

// NoOp is a consolidator that never migrates — the static-placement
// baseline for ablations.
type NoOp struct {
	// DVFS controls whether servers under this policy still throttle.
	DVFS bool
}

// Consolidate implements Consolidator.
func (n NoOp) Consolidate(dc *cluster.DataCenter) (Report, error) {
	a := dc.NumActive()
	return Report{ActiveBefore: a, ActiveAfter: a}, nil
}

// UsesDVFS implements Consolidator.
func (n NoOp) UsesDVFS() bool { return n.DVFS }

// Name implements Consolidator.
func (n NoOp) Name() string {
	if n.DVFS {
		return "static+DVFS"
	}
	return "static"
}
