package optimizer_test

import (
	"fmt"

	"vdcpower/internal/cluster"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/power"
)

func ExampleIPAC_Consolidate() {
	// Three under-utilized servers: IPAC drains the least efficient ones
	// onto the high-end machine and sleeps them.
	servers := []*cluster.Server{
		cluster.NewServer("high", power.TypeHighEnd()),
		cluster.NewServer("mid", power.TypeMid()),
		cluster.NewServer("low", power.TypeLow()),
	}
	dc, err := cluster.NewDataCenter(servers)
	if err != nil {
		panic(err)
	}
	for i, s := range servers {
		vm := &cluster.VM{ID: fmt.Sprintf("vm%d", i), Demand: 1, MemoryGB: 1}
		if err := dc.Place(vm, s); err != nil {
			panic(err)
		}
	}
	rep, err := optimizer.NewIPAC().Consolidate(dc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("active %d→%d after %d migrations\n", rep.ActiveBefore, rep.ActiveAfter, rep.Migrations)
	// Output: active 3→1 after 2 migrations
}
