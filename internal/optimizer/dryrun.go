package optimizer

import (
	"fmt"

	"vdcpower/internal/cluster"
)

// DryRun evaluates what a consolidator would do to the data center —
// migrations, active-server change, estimated power delta — without
// touching it. Operators preview a consolidation pass before committing,
// exactly the benefit/cost comparison Section V's cost-aware migration
// calls for at the plan level. It works on a snapshot-restored clone, so
// the clone's VM pointers are distinct from the live ones.
func DryRun(cons Consolidator, dc *cluster.DataCenter) (Report, float64, error) {
	clone, err := cluster.Restore(dc.Snapshot())
	if err != nil {
		return Report{}, 0, fmt.Errorf("optimizer: cloning data center: %w", err)
	}
	before := clone.TotalPower()
	rep, err := cons.Consolidate(clone)
	if err != nil {
		return rep, 0, err
	}
	// Apply the policy's frequency regime to the clone for a fair power
	// estimate.
	for _, s := range clone.ActiveServers() {
		if cons.UsesDVFS() {
			s.ApplyDVFS()
		} else {
			s.SetFreq(s.Spec.MaxFreq)
		}
	}
	powerDelta := clone.TotalPower() - before
	// Rewrite the move records onto the live data center's objects so
	// callers can reason about real VMs and servers.
	for i := range rep.Moves {
		rep.Moves[i] = cluster.Migration{
			VM:   findVM(dc, rep.Moves[i].VM.ID),
			From: findServer(dc, rep.Moves[i].From.ID),
			To:   findServer(dc, rep.Moves[i].To.ID),
		}
	}
	return rep, powerDelta, nil
}

func findVM(dc *cluster.DataCenter, id string) *cluster.VM {
	host := dc.HostOf(id)
	if host == nil {
		return nil
	}
	for _, v := range host.VMs() {
		if v.ID == id {
			return v
		}
	}
	return nil
}

func findServer(dc *cluster.DataCenter, id string) *cluster.Server {
	for _, s := range dc.Servers {
		if s.ID == id {
			return s
		}
	}
	return nil
}
