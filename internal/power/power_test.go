package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardSpecsValidate(t *testing.T) {
	for _, s := range AllTypes() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := TypeMid()
	cases := map[string]func(*Spec){
		"no cores":        func(s *Spec) { s.Cores = 0 },
		"no pstates":      func(s *Spec) { s.PStates = nil },
		"unsorted":        func(s *Spec) { s.PStates = []float64{2.0, 1.0} },
		"nonpositive ps":  func(s *Spec) { s.PStates = []float64{0, 2.0} },
		"top != maxfreq":  func(s *Spec) { s.PStates = []float64{0.8, 1.9} },
		"bad dyn power":   func(s *Spec) { s.PDynMax = 0 },
		"negative static": func(s *Spec) { s.PStatic = -1 },
		"negative sleep":  func(s *Spec) { s.PSleep = -1 },
	}
	for name, mutate := range cases {
		s := base
		s.PStates = append([]float64(nil), base.PStates...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCapacity(t *testing.T) {
	s := TypeHighEnd()
	if s.Capacity() != 12 {
		t.Fatalf("Capacity = %v, want 12", s.Capacity())
	}
	if s.CapacityAt(1.5) != 6 {
		t.Fatalf("CapacityAt(1.5) = %v", s.CapacityAt(1.5))
	}
}

func TestEfficiencyOrdering(t *testing.T) {
	// The heterogeneity PAC exploits: high-end strictly more efficient.
	types := AllTypes()
	for i := 1; i < len(types); i++ {
		if types[i-1].Efficiency() <= types[i].Efficiency() {
			t.Fatalf("efficiency not decreasing: %s (%v) vs %s (%v)",
				types[i-1].Name, types[i-1].Efficiency(), types[i].Name, types[i].Efficiency())
		}
	}
}

func TestPowerMonotoneInUtilization(t *testing.T) {
	s := TypeHighEnd()
	for _, f := range s.PStates {
		prev := -1.0
		for u := 0.0; u <= 1.0; u += 0.1 {
			p := s.Power(f, u)
			if p <= prev {
				t.Fatalf("power not increasing in u at f=%v", f)
			}
			prev = p
		}
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	s := TypeHighEnd()
	for _, u := range []float64{0, 0.5, 1} {
		prev := -1.0
		for _, f := range s.PStates {
			p := s.Power(f, u)
			if p <= prev {
				t.Fatalf("power not increasing in f at u=%v", u)
			}
			prev = p
		}
	}
}

func TestPowerBounds(t *testing.T) {
	s := TypeMid()
	if got := s.Power(s.MaxFreq, 1); math.Abs(got-s.MaxPower()) > 1e-9 {
		t.Fatalf("full power = %v, want %v", got, s.MaxPower())
	}
	// Clamping of out-of-range utilization.
	if s.Power(s.MaxFreq, 2) != s.Power(s.MaxFreq, 1) {
		t.Fatal("u > 1 must clamp")
	}
	if s.Power(s.MaxFreq, -1) != s.Power(s.MaxFreq, 0) {
		t.Fatal("u < 0 must clamp")
	}
	// DVFS always saves power at equal utilization.
	if s.Power(s.PStates[0], 0.5) >= s.Power(s.MaxFreq, 0.5) {
		t.Fatal("low P-state must consume less")
	}
	// Sleep beats any active state.
	if s.PSleep >= s.Power(s.PStates[0], 0) {
		t.Fatal("sleep must beat idle at the lowest P-state")
	}
}

func TestLowestFreqFor(t *testing.T) {
	s := TypeHighEnd() // 4 cores, P-states 1.0..3.0
	cases := []struct {
		demand float64
		want   float64
	}{
		{0, 1.0},
		{3.9, 1.0}, // 4 cores * 1.0 = 4 covers it
		{4.1, 1.5}, // needs 4*1.5 = 6
		{11.9, 3.0},
		{12.0, 3.0},
		{99, 3.0}, // overloaded: pegged at max
	}
	for _, c := range cases {
		if got := s.LowestFreqFor(c.demand); got != c.want {
			t.Errorf("LowestFreqFor(%v) = %v, want %v", c.demand, got, c.want)
		}
	}
}

// Property: the chosen P-state always covers the demand when demand is
// within capacity, and no lower P-state does.
func TestLowestFreqForProperty(t *testing.T) {
	s := TypeMid()
	f := func(raw float64) bool {
		demand := math.Mod(math.Abs(raw), s.Capacity())
		got := s.LowestFreqFor(demand)
		if s.CapacityAt(got) < demand-1e-9 {
			return false
		}
		for _, ps := range s.PStates {
			if ps >= got {
				break
			}
			if s.CapacityAt(ps) >= demand {
				return false // a lower P-state would have sufficed
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Accumulate(100, 3600) // 100 W for an hour
	if math.Abs(m.Wh()-100) > 1e-9 {
		t.Fatalf("Wh = %v, want 100", m.Wh())
	}
	if math.Abs(m.Joules()-360000) > 1e-9 {
		t.Fatalf("Joules = %v", m.Joules())
	}
	m.Reset()
	if m.Joules() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMeterPanicsOnNegative(t *testing.T) {
	var m Meter
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Accumulate(-1, 10)
}
