package power_test

import (
	"fmt"

	"vdcpower/internal/power"
)

func ExampleSpec_LowestFreqFor() {
	s := power.TypeHighEnd() // 4 cores, P-states 1.0 … 3.0 GHz
	// The arbitrator picks the lowest P-state covering 7 GHz of demand.
	f := s.LowestFreqFor(7)
	fmt.Printf("%.1f GHz per core (%.0f GHz total)\n", f, s.CapacityAt(f))
	// Output: 2.0 GHz per core (8 GHz total)
}

func ExampleSpec_Efficiency() {
	for _, s := range power.AllTypes() {
		fmt.Printf("%-12s %.4f GHz/W\n", s.Name, s.Efficiency())
	}
	// Output:
	// quad-3.0GHz  0.0400 GHz/W
	// dual-2.0GHz  0.0242 GHz/W
	// dual-1.5GHz  0.0214 GHz/W
}
