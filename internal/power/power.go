// Package power models server power consumption, DVFS P-states, and
// energy accounting for the data-center simulations. The model follows
// the standard decomposition used by the paper's evaluation: a static
// (leakage + platform) term that only sleeping removes, plus a dynamic
// term that scales cubically with frequency and linearly with
// utilization. Power efficiency — the ratio between maximum CPU capacity
// and maximum power (Section V) — is what the PAC/IPAC optimizers sort
// servers by.
package power

import (
	"fmt"
	"math"
	"sort"

	"vdcpower/internal/units"
)

// Spec describes a server model's CPU and power characteristics.
type Spec struct {
	Name     string
	Cores    int
	MaxFreq  units.Hertz   // GHz per core
	PStates  []units.Hertz // per-core frequencies in GHz, ascending; must end at MaxFreq
	PStatic  units.Watt    // W consumed while active regardless of frequency
	PDynMax  units.Watt    // W of dynamic power at MaxFreq and 100% utilization
	PSleep   units.Watt    // W while in the sleep state
	MemoryGB float64
}

// Validate checks the spec for internal consistency.
func (s Spec) Validate() error {
	if s.Cores <= 0 || s.MaxFreq <= 0 {
		return fmt.Errorf("power: spec %q: bad cores/frequency", s.Name)
	}
	if len(s.PStates) == 0 {
		return fmt.Errorf("power: spec %q: no P-states", s.Name)
	}
	if !sort.Float64sAreSorted(s.PStates) {
		return fmt.Errorf("power: spec %q: P-states not ascending", s.Name)
	}
	if s.PStates[0] <= 0 {
		return fmt.Errorf("power: spec %q: nonpositive P-state", s.Name)
	}
	if math.Abs(s.PStates[len(s.PStates)-1]-s.MaxFreq) > 1e-9 {
		return fmt.Errorf("power: spec %q: highest P-state %v != MaxFreq %v", s.Name, s.PStates[len(s.PStates)-1], s.MaxFreq)
	}
	if s.PStatic < 0 || s.PDynMax <= 0 || s.PSleep < 0 {
		return fmt.Errorf("power: spec %q: bad power parameters", s.Name)
	}
	return nil
}

// Capacity returns the total CPU capacity at maximum frequency in GHz.
func (s Spec) Capacity() units.Hertz { return float64(s.Cores) * s.MaxFreq }

// CapacityAt returns the total CPU capacity at per-core frequency f.
func (s Spec) CapacityAt(f units.Hertz) units.Hertz { return float64(s.Cores) * f }

// MaxPower returns the active power at maximum frequency, full load.
func (s Spec) MaxPower() units.Watt { return s.PStatic + s.PDynMax }

// Efficiency is the paper's server-sorting key: maximum CPU capacity per
// watt of maximum power (GHz/W). Higher is better.
func (s Spec) Efficiency() float64 { return s.Capacity() / s.MaxPower() }

// idleDynFraction is the fraction of the dynamic term burned at idle:
// clock distribution and stalled pipelines are not free.
const idleDynFraction units.Fraction = 0.3

// Power returns active power in watts at per-core frequency f and
// utilization u ∈ [0,1] of the capacity available at f.
func (s Spec) Power(f units.Hertz, u units.Fraction) units.Watt {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	rel := f / s.MaxFreq
	dynCeil := s.PDynMax * rel * rel * rel
	idle := s.PStatic + idleDynFraction*dynCeil
	busy := s.PStatic + dynCeil
	return idle + (busy-idle)*u
}

// LowestFreqFor returns the lowest P-state whose total capacity covers
// demandGHz, or MaxFreq if none does (the server is then overloaded).
// This is the server-level arbitrator's DVFS decision (Section IV-B).
func (s Spec) LowestFreqFor(demandGHz units.Hertz) units.Hertz {
	for _, f := range s.PStates {
		if s.CapacityAt(f) >= demandGHz-1e-12 {
			return f
		}
	}
	return s.MaxFreq
}

// The three server types of Section VI-B. Power parameters are chosen so
// that power efficiency strictly decreases from high-end to low-end,
// which is the heterogeneity PAC exploits.

// TypeHighEnd is the 3 GHz quad-core model (12 GHz capacity).
func TypeHighEnd() Spec {
	return Spec{
		Name:     "quad-3.0GHz",
		Cores:    4,
		MaxFreq:  3.0,
		PStates:  []float64{1.0, 1.5, 2.0, 2.5, 3.0},
		PStatic:  120,
		PDynMax:  180,
		PSleep:   4,
		MemoryGB: 16,
	}
}

// TypeMid is the 2 GHz dual-core model (4 GHz capacity).
func TypeMid() Spec {
	return Spec{
		Name:     "dual-2.0GHz",
		Cores:    2,
		MaxFreq:  2.0,
		PStates:  []float64{0.8, 1.2, 1.6, 2.0},
		PStatic:  80,
		PDynMax:  85,
		PSleep:   3,
		MemoryGB: 8,
	}
}

// TypeLow is the 1.5 GHz dual-core model (3 GHz capacity).
func TypeLow() Spec {
	return Spec{
		Name:     "dual-1.5GHz",
		Cores:    2,
		MaxFreq:  1.5,
		PStates:  []float64{0.6, 0.9, 1.2, 1.5},
		PStatic:  75,
		PDynMax:  65,
		PSleep:   3,
		MemoryGB: 8,
	}
}

// AllTypes returns the three standard specs in decreasing efficiency.
func AllTypes() []Spec { return []Spec{TypeHighEnd(), TypeMid(), TypeLow()} }

// Meter integrates power over time into energy.
type Meter struct {
	joules units.Joule
}

// Accumulate adds watts·seconds of consumption.
func (m *Meter) Accumulate(watts units.Watt, seconds units.Second) {
	if watts < 0 || seconds < 0 {
		//lint:ignore panicpolicy meter invariant: negative energy means a sign error upstream
		panic("power: negative accumulation")
	}
	m.joules += watts * seconds
}

// Joules returns total energy in joules.
func (m *Meter) Joules() units.Joule { return m.joules }

// Wh returns total energy in watt-hours.
func (m *Meter) Wh() float64 { return m.joules / 3600 }

// Reset zeroes the meter.
func (m *Meter) Reset() { m.joules = 0 }
