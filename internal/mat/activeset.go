package mat

import (
	"errors"
	"fmt"
)

// maxActiveSetIters bounds the active-set loop. The MPC problems this
// package serves have a handful of constraints, so the bound is generous.
const maxActiveSetIters = 200

// QPState carries an active-set warm start between consecutive solves of
// a slowly varying QP: the MPC re-solves a near-identical program every
// control period, so the binding constraints rarely change and seeding
// the working set from the previous period's solution usually converges
// in one or two iterations. A zero QPState is a cold start; after each
// successful InequalityLSW call it holds the final active set.
type QPState struct {
	active []bool
	n      int // inequality count the seed was recorded for
	seeded bool

	// Solve-quality tallies (ints only — they never touch the floating
	// point path, so warm/cold bitwise equivalence is unaffected).
	solves       int // InequalityLSW calls that reached the active-set loop
	warmAttempts int // solves that started from a previous active set
	coldRetries  int // warm attempts that failed and were retried cold
}

// Reset discards the stored active set; the next solve starts cold.
// The solve tallies survive — they describe the state's lifetime.
func (s *QPState) Reset() { s.seeded = false }

// Warm reports whether the state holds a usable previous active set.
func (s *QPState) Warm() bool { return s != nil && s.seeded }

// QPStats summarizes a QPState's solve history. The warm-start hit rate
// is (WarmAttempts − ColdRetries) / Solves.
type QPStats struct {
	Solves       int
	WarmAttempts int
	ColdRetries  int
}

// Stats returns the accumulated solve tallies (zero for a nil state —
// e.g. when warm starting is disabled).
func (s *QPState) Stats() QPStats {
	if s == nil {
		return QPStats{}
	}
	return QPStats{Solves: s.solves, WarmAttempts: s.warmAttempts, ColdRetries: s.coldRetries}
}

// InequalityLS minimizes ||A·x − b||₂ subject to C·x = d and G·x ≤ h
// using a primal active-set method. The equality constraints stay active
// throughout; inequality rows are activated when violated and deactivated
// when their multiplier turns negative.
//
// The method assumes the problem is feasible and A has full column rank
// after the constraints are imposed, which holds for the MPC programs in
// this repository (the control-penalty term regularizes the Hessian).
//
// This is the allocating convenience form of InequalityLSW: each call
// solves cold through a fresh workspace.
func InequalityLS(a *Mat, b Vec, c *Mat, d Vec, g *Mat, h Vec) (Vec, error) {
	return InequalityLSW(NewWorkspace(), nil, a, b, c, d, g, h)
}

// InequalityLSW is InequalityLS with caller-managed solver state: w
// provides the scratch arena — the returned solution vector lives in w
// and is valid only until w's next use — and st, when non-nil, carries
// the active-set warm start across calls. A warm-started solve that
// fails (a singular working set or no convergence, possible when the
// constraint geometry shifted between periods) is retried cold before
// the error is reported; st is re-seeded only on success.
//
// The cold path (st nil or unseeded) performs exactly the same floating
// point operations as a fresh InequalityLS call, so their results are
// bitwise identical.
func InequalityLSW(w *Workspace, st *QPState, a *Mat, b Vec, c *Mat, d Vec, g *Mat, h Vec) (Vec, error) {
	if g == nil || g.Rows == 0 {
		return EqConstrainedLS(a, b, c, d)
	}
	if g.Cols != a.Cols {
		return nil, fmt.Errorf("mat: InequalityLS mismatched unknowns: A has %d, G has %d", a.Cols, g.Cols)
	}
	if len(h) != g.Rows {
		return nil, errors.New("mat: InequalityLS rhs dimension mismatch")
	}
	var active []bool
	warm := false
	if st != nil {
		if cap(st.active) < g.Rows {
			st.active = make([]bool, g.Rows)
		}
		st.active = st.active[:g.Rows]
		active = st.active
		warm = st.seeded && st.n == g.Rows
		if !warm {
			clear(active)
		}
		st.solves++
		if warm {
			st.warmAttempts++
		}
	} else {
		active = make([]bool, g.Rows)
	}
	x, err := ineqActiveSet(w, a, b, c, d, g, h, active)
	if err != nil && warm {
		// The previous period's active set can be inconsistent with the
		// new program (e.g. a surge changed which bounds bind); start
		// over from the empty working set before giving up.
		st.coldRetries++
		clear(active)
		x, err = ineqActiveSet(w, a, b, c, d, g, h, active)
	}
	if st != nil {
		st.seeded = err == nil
		st.n = g.Rows
	}
	return x, err
}

// ineqActiveSet runs the primal active-set iteration. active is both the
// starting working set and, on success, the final one. The returned
// solution lives in w.
//
// The normal-equations blocks 2AᵀA and 2Aᵀb are invariant across
// iterations, so they are built once up front — the per-iteration
// rebuild through intermediate row matrices is what used to dominate
// the mpc/solve profile.
//
//vdc:hotpath mpc/solve
func ineqActiveSet(w *Workspace, a *Mat, b Vec, c *Mat, d Vec, g *Mat, h Vec, active []bool) (Vec, error) {
	n := a.Cols
	nEq := 0
	if c != nil {
		nEq = c.Rows
	}
	w.Reset()
	ata := w.TakeMat(n, n)
	a.ATAInto(ata)
	atb := w.TakeVec(n)
	a.MulTVecInto(atb, b)
	activeIdx := w.TakeInts(g.Rows)
	const tol = 1e-9
	mark := w.Mark()
	for iter := 0; iter < maxActiveSetIters; iter++ {
		w.Release(mark)
		na := 0
		for i, on := range active {
			if on {
				activeIdx[na] = i
				na++
			}
		}
		p := nEq + na
		var x, lambda Vec
		if p == 0 {
			// Empty working set: plain least squares through QR, the
			// same route EqConstrainedLS takes without constraints.
			qr := w.QR()
			if err := qr.Factorize(a); err != nil {
				return nil, err
			}
			y := w.TakeVec(a.Rows)
			x = qr.SolveInto(w.TakeVec(n), y, b)
		} else {
			// KKT system of the working set:
			//   [ 2AᵀA  Wᵀ ] [x] = [2Aᵀb]
			//   [  W    0  ] [λ]   [ rhs ]
			// where W stacks the equality rows and the active G rows.
			dim := n + p
			kkt := w.TakeMat(dim, dim)
			rhs := w.TakeVec(dim)
			for i := 0; i < n; i++ {
				dst := kkt.Data[i*dim : i*dim+n]
				src := ata.Data[i*n : i*n+n]
				for j, v := range src {
					dst[j] = 2 * v
				}
				rhs[i] = 2 * atb[i]
			}
			for r := 0; r < p; r++ {
				var wrow []float64
				var rv float64
				if r < nEq {
					wrow = c.Data[r*n : r*n+n]
					rv = d[r]
				} else {
					gi := activeIdx[r-nEq]
					wrow = g.Data[gi*n : gi*n+n]
					rv = h[gi]
				}
				for j, v := range wrow {
					kkt.Data[(n+r)*dim+j] = v
					kkt.Data[j*dim+n+r] = v
				}
				rhs[n+r] = rv
			}
			lu := w.LU()
			if err := lu.Factorize(kkt); err != nil {
				return nil, err
			}
			sol := lu.SolveInto(w.TakeVec(dim), rhs)
			x, lambda = sol[:n], sol[n:]
		}
		// Find the most violated inactive inequality.
		worst, worstViol := -1, tol
		for i := 0; i < g.Rows; i++ {
			if active[i] {
				continue
			}
			if v := g.RowDot(i, x) - h[i]; v > worstViol {
				worst, worstViol = i, v
			}
		}
		if worst >= 0 {
			active[worst] = true
			continue
		}
		// All inequalities satisfied: check multipliers of the active set.
		drop := -1
		dropVal := -tol
		for k := 0; k < na; k++ {
			if mu := lambda[nEq+k]; mu < dropVal {
				drop, dropVal = activeIdx[k], mu
			}
		}
		if drop >= 0 {
			active[drop] = false
			continue
		}
		return x, nil
	}
	return nil, errors.New("mat: InequalityLS active-set did not converge")
}
