package mat

import (
	"errors"
	"fmt"
)

// maxActiveSetIters bounds the active-set loop. The MPC problems this
// package serves have a handful of constraints, so the bound is generous.
const maxActiveSetIters = 200

// constrainedLSWithMultipliers solves the equality-constrained least
// squares problem and additionally returns the Lagrange multipliers of
// the constraint rows.
func constrainedLSWithMultipliers(a *Mat, b Vec, c *Mat, d Vec) (x, lambda Vec, err error) {
	if c == nil || c.Rows == 0 {
		x, err = LeastSquares(a, b)
		return x, nil, err
	}
	n, p := a.Cols, c.Rows
	ata := a.T().Mul(a)
	atb := a.T().MulVec(b)
	kkt := NewMat(n+p, n+p)
	//lint:ignore hotalloc KKT assembly allocates per solve; ROADMAP item 2 (allocation-free hot paths) adds solver scratch buffers
	rhs := make(Vec, n+p)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, 2*ata.At(i, j))
		}
		rhs[i] = 2 * atb[i]
	}
	for i := 0; i < p; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(n+i, j, c.At(i, j))
			kkt.Set(j, n+i, c.At(i, j))
		}
		rhs[n+i] = d[i]
	}
	sol, err := SolveLinear(kkt, rhs)
	if err != nil {
		return nil, nil, err
	}
	return sol[:n], sol[n:], nil
}

// InequalityLS minimizes ||A·x − b||₂ subject to C·x = d and G·x ≤ h
// using a primal active-set method. The equality constraints stay active
// throughout; inequality rows are activated when violated and deactivated
// when their multiplier turns negative.
//
// The method assumes the problem is feasible and A has full column rank
// after the constraints are imposed, which holds for the MPC programs in
// this repository (the control-penalty term regularizes the Hessian).
//
//vdc:hotpath mpc/solve
func InequalityLS(a *Mat, b Vec, c *Mat, d Vec, g *Mat, h Vec) (Vec, error) {
	if g == nil || g.Rows == 0 {
		return EqConstrainedLS(a, b, c, d)
	}
	if g.Cols != a.Cols {
		return nil, fmt.Errorf("mat: InequalityLS mismatched unknowns: A has %d, G has %d", a.Cols, g.Cols)
	}
	if len(h) != g.Rows {
		return nil, errors.New("mat: InequalityLS rhs dimension mismatch")
	}
	nEq := 0
	if c != nil {
		nEq = c.Rows
	}
	active := make([]bool, g.Rows)
	const tol = 1e-9
	for iter := 0; iter < maxActiveSetIters; iter++ {
		// Assemble the working constraint set: equalities + active bounds.
		var rows [][]float64
		var rhs Vec
		for i := 0; i < nEq; i++ {
			//lint:ignore hotalloc working-set assembly is rebuilt per active-set iteration; ROADMAP item 2 hoists it into solver scratch
			rows = append(rows, c.Row(i))
			//lint:ignore hotalloc working-set assembly is rebuilt per active-set iteration; ROADMAP item 2 hoists it into solver scratch
			rhs = append(rhs, d[i])
		}
		var activeIdx []int
		for i, on := range active {
			if on {
				//lint:ignore hotalloc working-set assembly is rebuilt per active-set iteration; ROADMAP item 2 hoists it into solver scratch
				rows = append(rows, g.Row(i))
				//lint:ignore hotalloc working-set assembly is rebuilt per active-set iteration; ROADMAP item 2 hoists it into solver scratch
				rhs = append(rhs, h[i])
				//lint:ignore hotalloc working-set assembly is rebuilt per active-set iteration; ROADMAP item 2 hoists it into solver scratch
				activeIdx = append(activeIdx, i)
			}
		}
		var work *Mat
		if len(rows) > 0 {
			work = FromRows(rows)
		}
		x, lambda, err := constrainedLSWithMultipliers(a, b, work, rhs)
		if err != nil {
			return nil, err
		}
		// Find the most violated inactive inequality.
		worst, worstViol := -1, tol
		for i := 0; i < g.Rows; i++ {
			if active[i] {
				continue
			}
			if v := g.Row(i).Dot(x) - h[i]; v > worstViol {
				worst, worstViol = i, v
			}
		}
		if worst >= 0 {
			active[worst] = true
			continue
		}
		// All inequalities satisfied: check multipliers of the active set.
		drop := -1
		dropVal := -tol
		for k, gi := range activeIdx {
			if mu := lambda[nEq+k]; mu < dropVal {
				drop, dropVal = gi, mu
			}
		}
		if drop >= 0 {
			active[drop] = false
			continue
		}
		return x, nil
	}
	return nil, errors.New("mat: InequalityLS active-set did not converge")
}
