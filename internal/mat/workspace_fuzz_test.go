package mat

// Native fuzzing for workspace reuse: two problems decoded from the same
// input are solved back-to-back through ONE workspace, and each solution
// must be bitwise identical to a fresh cold solve — any state leaking
// from the first solve into the second (stale factorization, dirty
// scratch, cursor drift) breaks the equality. A third pass exercises the
// warm-start path and checks optimality instead of bits. Seeds live in
// testdata/fuzz/FuzzWorkspaceReuse.

import (
	"math"
	"testing"
)

// decodeQP derives a feasible box-constrained least-squares problem from
// fuzz bytes: n ≤ 5 unknowns, diagonally dominant A, G = [I; −I] with
// h ≥ 0.1 (so x = 0 is always feasible).
func decodeQP(data []byte) (qpProblem, []byte, bool) {
	if len(data) < 1 {
		return qpProblem{}, nil, false
	}
	n := 1 + int(data[0])%5
	rows := n + 2
	need := rows*n + rows + n
	data = data[1:]
	if len(data) < need {
		return qpProblem{}, nil, false
	}
	val := func(i int) float64 { return (float64(data[i]) - 127.5) / 32 } // ~[-4, 4]
	a := NewMat(rows, n)
	for i := range a.Data {
		a.Data[i] = val(i)
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+3)
	}
	b := make(Vec, rows)
	for i := range b {
		b[i] = 2 * val(rows*n+i)
	}
	g := NewMat(2*n, n)
	h := make(Vec, 2*n)
	for i := 0; i < n; i++ {
		u := 0.1 + math.Abs(val(rows*n+rows+i))
		g.Set(i, i, 1)
		h[i] = u
		g.Set(n+i, i, -1)
		h[n+i] = u
	}
	return qpProblem{a: a, b: b, g: g, h: h}, data[need:], true
}

func FuzzWorkspaceReuse(f *testing.F) {
	f.Add([]byte{0, 144, 40, 200, 128, 90})
	f.Add([]byte{1, 160, 128, 30, 128, 160, 128, 128, 250, 128, 100, 200, 40, 10,
		2, 128, 60, 128, 128, 128, 128, 128, 128, 250, 30, 128, 128, 128, 128, 200,
		128, 40, 128, 128, 128, 1, 2, 3, 4, 250, 90, 128, 128})
	f.Add([]byte{4, 200, 128, 128, 128, 128, 128, 200, 128, 128, 128, 128, 128, 200,
		128, 128, 128, 128, 128, 200, 128, 128, 128, 128, 128, 200, 128, 128, 128,
		128, 128, 128, 128, 128, 128, 128, 1, 2, 3, 4, 5, 6, 7, 10, 20, 30, 40, 50})
	f.Fuzz(func(t *testing.T, data []byte) {
		p1, rest, ok := decodeQP(data)
		if !ok {
			return
		}
		p2, _, ok2 := decodeQP(rest)

		w := NewWorkspace()
		check := func(label string, p qpProblem) {
			want, wantErr := solveFresh(p)
			got, gotErr := InequalityLSW(w, nil, p.a, p.b, p.c, p.d, p.g, p.h)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: error mismatch fresh=%v reused=%v", label, wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			for i := range want {
				//lint:ignore floatcompare cold reuse must be bitwise identical to a fresh solve
				if got[i] != want[i] {
					t.Fatalf("%s: x[%d] = %v, fresh %v", label, i, got[i], want[i])
				}
			}
		}
		check("first", p1)
		if ok2 {
			check("second", p2)
		}
		check("first-again", p1)

		// Warm pass over the same problem: a unique minimizer (strictly
		// convex by diagonal dominance) reached through a different
		// active-set route must land on the same point.
		var st QPState
		cold, coldErr := solveFresh(p1)
		prev := Vec(nil)
		for round := 0; round < 3; round++ {
			warm, err := InequalityLSW(w, &st, p1.a, p1.b, nil, nil, p1.g, p1.h)
			if (coldErr == nil) != (err == nil) {
				t.Fatalf("warm round %d: error mismatch cold=%v warm=%v", round, coldErr, err)
			}
			if err != nil {
				return
			}
			if !feasible(p1, warm, 1e-7) {
				t.Fatalf("warm round %d: infeasible solution", round)
			}
			if d := warm.Sub(cold).Norm(); d > 1e-6*(1+cold.Norm()) {
				t.Fatalf("warm round %d: differs from cold by %v", round, d)
			}
			if prev != nil && !vecBitwiseEq(warm, prev) {
				t.Fatalf("warm round %d: repeated identical solve changed its answer", round)
			}
			prev = append(prev[:0], warm...)
		}
	})
}
