package mat

import (
	"errors"
	"math"
	"testing"
)

// TestSolveLinearSingularTable verifies the typed rejection of singular
// systems instead of silently returning garbage.
func TestSolveLinearSingularTable(t *testing.T) {
	cases := []struct {
		name string
		a    *Mat
	}{
		{"zero-matrix", NewMat(2, 2)},
		{"duplicate-rows", FromRows([][]float64{{1, 2}, {1, 2}})},
		{"rank-1-3x3", FromRows([][]float64{{1, 2, 3}, {2, 4, 6}, {3, 6, 9}})},
		{"zero-column", FromRows([][]float64{{0, 1}, {0, 2}})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := make(Vec, tc.a.Rows)
			for i := range b {
				b[i] = 1
			}
			if _, err := SolveLinear(tc.a, b); !errors.Is(err, ErrSingular) {
				t.Fatalf("err = %v, want ErrSingular", err)
			}
		})
	}
}

func TestSolveLinearNonSquare(t *testing.T) {
	if _, err := SolveLinear(NewMat(2, 3), Vec{1, 2}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

// hilbert returns the notoriously ill-conditioned Hilbert matrix.
func hilbert(n int) *Mat {
	h := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	return h
}

// TestSolveLinearIllConditioned: the 4×4 Hilbert matrix has condition
// number ~1.5e4; LU with partial pivoting must still produce a tiny
// backward error (residual), whatever the forward error does.
func TestSolveLinearIllConditioned(t *testing.T) {
	for n := 2; n <= 4; n++ {
		h := hilbert(n)
		b := make(Vec, n)
		for i := range b {
			b[i] = 1
		}
		x, err := SolveLinear(h, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r := h.MulVec(x).Sub(b)
		if bound := 1e-10 * (x.Norm() + 1); r.Norm() > bound {
			t.Fatalf("n=%d residual %v exceeds %v", n, r.Norm(), bound)
		}
	}
}

func TestFactorizeQRRankDeficient(t *testing.T) {
	// Second column is a multiple of the first: the trailing norm under
	// the first reflector vanishes.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := FactorizeQR(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := FactorizeQR(NewMat(1, 2)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestLeastSquaresIllConditionedResidual(t *testing.T) {
	// Tall system with nearly collinear columns: least squares must keep
	// the normal-equation residual AᵀAx = Aᵀb near zero.
	a := FromRows([][]float64{{1, 1.0001}, {1, 1.0002}, {1, 1.0003}, {1, 1.0004}})
	b := Vec{1, 2, 3, 4}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	grad := a.T().MulVec(a.MulVec(x).Sub(b))
	if grad.Norm() > 1e-6 {
		t.Fatalf("normal-equation residual %v", grad.Norm())
	}
}

func TestEqConstrainedLSDimensionErrors(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := Vec{1, 2, 3}
	if _, err := EqConstrainedLS(a, b, FromRows([][]float64{{1, 0, 0}}), Vec{1}); err == nil {
		t.Fatal("mismatched constraint width accepted")
	}
	if _, err := EqConstrainedLS(a, Vec{1}, FromRows([][]float64{{1, 0}}), Vec{1}); err == nil {
		t.Fatal("short rhs accepted")
	}
	if _, err := EqConstrainedLS(a, b, FromRows([][]float64{{1, 0}}), Vec{1, 2}); err == nil {
		t.Fatal("short constraint rhs accepted")
	}
	// nil constraint degrades to plain least squares.
	x, err := EqConstrainedLS(a, b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	y, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x.Sub(y).Norm() > 1e-12 {
		t.Fatalf("nil-constraint solution %v differs from least squares %v", x, y)
	}
}

func TestEqConstrainedLSBindsConstraint(t *testing.T) {
	// Minimize ||x|| subject to x0 + x1 = 2: solution (1, 1).
	a := Identity(2)
	b := Vec{0, 0}
	x, err := EqConstrainedLS(a, b, FromRows([][]float64{{1, 1}}), Vec{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("x = %v, want (1, 1)", x)
	}
}

func TestLUDetSignAndValue(t *testing.T) {
	// A permutation-heavy matrix: det([[0,1],[1,0]]) = -1.
	f, err := FactorizeLU(FromRows([][]float64{{0, 1}, {1, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-1)) > 1e-12 {
		t.Fatalf("det = %v, want -1", d)
	}
	f, err = FactorizeLU(FromRows([][]float64{{2, 0}, {0, 3}}))
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-6) > 1e-12 {
		t.Fatalf("det = %v, want 6", d)
	}
}
