package mat

// Reuse-safety tests for the Workspace arena and the warm-started
// active-set QP (ROADMAP item 2): back-to-back solves through one
// Workspace must never leak state between calls — no stale
// factorizations, no dirty scratch, no output aliasing an input — and
// the warm-started path must agree with the cold path on the problems
// the MPC actually produces.

import (
	"math"
	"testing"
)

// qpProblem is one inequality-constrained least-squares instance.
type qpProblem struct {
	a *Mat
	b Vec
	c *Mat
	d Vec
	g *Mat
	h Vec
}

// boxQP builds a feasible n-variable problem: a diagonally dominant
// (hence full-column-rank) A, box constraints l ≤ x ≤ u expressed as
// G·x ≤ h, and an unconstrained optimum pushed outside the box so some
// constraints activate. seed varies the numbers deterministically.
func boxQP(n int, seed uint64) qpProblem {
	rnd := seed
	next := func() float64 {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return (float64(rnd>>40) / float64(1<<24)) - 0.5 // [-0.5, 0.5)
	}
	a := NewMat(n+2, n)
	for i := range a.Data {
		a.Data[i] = next()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+3)
	}
	b := make(Vec, n+2)
	for i := range b {
		b[i] = 4 * next() * float64(n)
	}
	g := NewMat(2*n, n)
	h := make(Vec, 2*n)
	for i := 0; i < n; i++ {
		u := 0.3 + math.Abs(next()) // tight box: activates constraints
		g.Set(i, i, 1)
		h[i] = u
		g.Set(n+i, i, -1)
		h[n+i] = u
	}
	return qpProblem{a: a, b: b, g: g, h: h}
}

// solveFresh is the reference: a brand-new workspace, no warm start.
func solveFresh(p qpProblem) (Vec, error) {
	return InequalityLS(p.a, p.b, p.c, p.d, p.g, p.h)
}

// qpObjective is ||A·x − b||² for comparing distinct minimizers.
func qpObjective(p qpProblem, x Vec) float64 {
	r := p.a.MulVec(x).Sub(p.b)
	return r.Dot(r)
}

func feasible(p qpProblem, x Vec, tol float64) bool {
	if p.g == nil {
		return true
	}
	for i := 0; i < p.g.Rows; i++ {
		if p.g.RowDot(i, x)-p.h[i] > tol {
			return false
		}
	}
	return true
}

// TestWorkspaceReuseMatchesFresh drives a sequence of differently shaped
// problems through ONE workspace and demands bitwise equality with fresh
// cold solves: the cold InequalityLSW path performs exactly the same
// floating-point operations as InequalityLS.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	w := NewWorkspace()
	shapes := []struct {
		n    int
		seed uint64
	}{{2, 1}, {5, 2}, {3, 3}, {5, 4}, {2, 5}, {8, 6}, {3, 7}}
	for round, s := range shapes {
		p := boxQP(s.n, s.seed)
		want, wantErr := solveFresh(p)
		got, gotErr := InequalityLSW(w, nil, p.a, p.b, p.c, p.d, p.g, p.h)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("round %d: error mismatch fresh=%v reused=%v", round, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		for i := range want {
			//lint:ignore floatcompare the cold reused path must be bitwise identical to a fresh solve
			if got[i] != want[i] {
				t.Fatalf("round %d (n=%d): x[%d] = %v, fresh %v", round, s.n, i, got[i], want[i])
			}
		}
	}
}

// TestWorkspaceNoStaleFactorization shrinks the problem between solves:
// the second solve's KKT system is strictly smaller than the first's, so
// any residue of the larger factorization (dimensions, pivots, tau)
// would corrupt it.
func TestWorkspaceNoStaleFactorization(t *testing.T) {
	w := NewWorkspace()
	big := boxQP(9, 11)
	if _, err := InequalityLSW(w, nil, big.a, big.b, nil, nil, big.g, big.h); err != nil {
		t.Fatalf("big solve failed: %v", err)
	}
	small := boxQP(2, 12)
	want, err := solveFresh(small)
	if err != nil {
		t.Fatalf("fresh small solve failed: %v", err)
	}
	got, err := InequalityLSW(w, nil, small.a, small.b, nil, nil, small.g, small.h)
	if err != nil {
		t.Fatalf("reused small solve failed: %v", err)
	}
	for i := range want {
		//lint:ignore floatcompare shrinking reuse must still be bitwise identical
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %v after larger solve, fresh %v", i, got[i], want[i])
		}
	}
}

// TestWorkspaceReuseAfterError feeds a malformed problem, then a valid
// one: the failed call must not leave the workspace in a state that
// changes the next solution.
func TestWorkspaceReuseAfterError(t *testing.T) {
	w := NewWorkspace()
	p := boxQP(4, 21)
	// Mismatched rhs: rejected before any factorization.
	if _, err := InequalityLSW(w, nil, p.a, p.b, nil, nil, p.g, p.h[:1]); err == nil {
		t.Fatal("expected dimension error")
	}
	// Singular KKT mid-iteration: duplicate equality rows.
	cBad := NewMat(2, 4)
	cBad.Set(0, 0, 1)
	cBad.Set(1, 0, 1)
	dBad := Vec{1, 2} // inconsistent AND rank-deficient
	if _, err := InequalityLSW(w, nil, p.a, p.b, cBad, dBad, p.g, p.h); err == nil {
		t.Fatal("expected singular working set error")
	}
	want, err := solveFresh(p)
	if err != nil {
		t.Fatalf("fresh solve failed: %v", err)
	}
	got, err := InequalityLSW(w, nil, p.a, p.b, nil, nil, p.g, p.h)
	if err != nil {
		t.Fatalf("reused solve after errors failed: %v", err)
	}
	for i := range want {
		//lint:ignore floatcompare reuse after a failed call must be bitwise identical
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %v after failed calls, fresh %v", i, got[i], want[i])
		}
	}
}

// TestWorkspaceSolveDoesNotMutateInputs clones every input, solves
// through a reused workspace twice, and verifies no input was written —
// the workspace must never alias caller memory.
func TestWorkspaceSolveDoesNotMutateInputs(t *testing.T) {
	w := NewWorkspace()
	p := boxQP(5, 31)
	aSaved, bSaved := p.a.Clone(), p.b.Clone()
	gSaved, hSaved := p.g.Clone(), p.h.Clone()
	var st QPState
	for round := 0; round < 3; round++ {
		x, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if shareBacking(x, p.b) || shareBacking(x, p.h) {
			t.Fatal("solution aliases an input vector")
		}
		for i, v := range p.a.Data {
			//lint:ignore floatcompare the solver must not touch its inputs
			if v != aSaved.Data[i] {
				t.Fatalf("round %d: A mutated at %d", round, i)
			}
		}
		for i, v := range p.g.Data {
			//lint:ignore floatcompare the solver must not touch its inputs
			if v != gSaved.Data[i] {
				t.Fatalf("round %d: G mutated at %d", round, i)
			}
		}
		if !vecBitwiseEq(p.b, bSaved) || !vecBitwiseEq(p.h, hSaved) {
			t.Fatalf("round %d: rhs mutated", round)
		}
	}
}

func vecBitwiseEq(a, b Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floatcompare bitwise comparison is the point
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shareBacking reports whether two vectors overlap in memory.
func shareBacking(a, b Vec) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	return &a[0] == &b[0]
}

// TestWorkspaceTakeSemantics pins the arena contract: slots come back in
// call order after Reset (same backing arrays, zeroed), and Release
// rewinds to a Mark.
func TestWorkspaceTakeSemantics(t *testing.T) {
	w := NewWorkspace()
	v1 := w.TakeVec(4)
	m1 := w.TakeMat(3, 3)
	v1[0], m1.Data[0] = 7, 9
	w.Reset()
	v2 := w.TakeVec(4)
	if &v1[0] != &v2[0] {
		t.Fatal("TakeVec after Reset did not recycle the slot")
	}
	//lint:ignore floatcompare recycled slots must come back zeroed
	if v2[0] != 0 {
		t.Fatalf("recycled vector not zeroed: %v", v2[0])
	}
	m2 := w.TakeMat(3, 3)
	if &m1.Data[0] != &m2.Data[0] {
		t.Fatal("TakeMat after Reset did not recycle the slot")
	}
	//lint:ignore floatcompare recycled slots must come back zeroed
	if m2.Data[0] != 0 {
		t.Fatalf("recycled matrix not zeroed: %v", m2.Data[0])
	}

	w.Reset()
	w.TakeVec(2)
	mark := w.Mark()
	inner := w.TakeVec(6)
	w.Release(mark)
	again := w.TakeVec(6)
	if &inner[0] != &again[0] {
		t.Fatal("Release did not rewind the vector cursor")
	}

	// Growing a slot keeps later reuse consistent.
	w.Reset()
	small := w.TakeVec(2)
	w.Reset()
	grown := w.TakeVec(10)
	if len(grown) != 10 {
		t.Fatalf("grown slot has length %d", len(grown))
	}
	_ = small
	shrunk := func() Vec { w.Reset(); return w.TakeVec(3) }()
	if len(shrunk) != 3 || cap(shrunk) < 10 {
		t.Fatalf("shrunk slot len=%d cap=%d, want len 3 over the grown backing", len(shrunk), cap(shrunk))
	}
}

// TestWarmStartMatchesCold re-solves a drifting QP with a persistent
// QPState and checks each warm solution against the cold one. The warm
// path may take a different route through the active-set lattice, so the
// comparison is on optimality, not bits: same objective and feasibility
// within documented tolerance (the problems are strictly convex, so the
// minimizer is unique and both paths converge to it).
func TestWarmStartMatchesCold(t *testing.T) {
	w := NewWorkspace()
	var st QPState
	base := boxQP(6, 41)
	for period := 0; period < 25; period++ {
		p := base
		p.b = base.b.Clone()
		for i := range p.b {
			p.b[i] += 0.05 * float64(period) * float64(i%3-1) // slow drift
		}
		cold, err := solveFresh(p)
		if err != nil {
			t.Fatalf("period %d cold: %v", period, err)
		}
		warm, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h)
		if err != nil {
			t.Fatalf("period %d warm: %v", period, err)
		}
		if period > 0 && !st.Warm() {
			t.Fatalf("period %d: state not re-seeded", period)
		}
		if !feasible(p, warm, 1e-8) {
			t.Fatalf("period %d: warm solution infeasible", period)
		}
		oc, ow := qpObjective(p, cold), qpObjective(p, warm)
		if math.Abs(oc-ow) > 1e-8*(1+math.Abs(oc)) {
			t.Fatalf("period %d: warm objective %v, cold %v", period, ow, oc)
		}
		if d := warm.Sub(cold).Norm(); d > 1e-7 {
			t.Fatalf("period %d: minimizers differ by %v", period, d)
		}
	}
}

// TestWarmStartGeometryChangeFallsBackCold changes the inequality count
// between solves: the recorded active set no longer matches, so the next
// solve must start cold (and still be bitwise identical to fresh), then
// re-seed.
func TestWarmStartGeometryChangeFallsBackCold(t *testing.T) {
	w := NewWorkspace()
	var st QPState
	first := boxQP(5, 51)
	if _, err := InequalityLSW(w, &st, first.a, first.b, nil, nil, first.g, first.h); err != nil {
		t.Fatalf("seed solve: %v", err)
	}
	if !st.Warm() {
		t.Fatal("state not seeded after success")
	}
	second := boxQP(3, 52) // 6 inequality rows vs 10: geometry changed
	want, err := solveFresh(second)
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	got, err := InequalityLSW(w, &st, second.a, second.b, nil, nil, second.g, second.h)
	if err != nil {
		t.Fatalf("after geometry change: %v", err)
	}
	for i := range want {
		//lint:ignore floatcompare a geometry change forces a cold start, which is bitwise identical to fresh
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %v, fresh %v", i, got[i], want[i])
		}
	}
	if !st.Warm() {
		t.Fatal("state not re-seeded after the cold fallback")
	}
}

// TestQPStateResetForcesCold pins Reset's contract: the next solve after
// Reset is bitwise identical to a fresh cold solve.
func TestQPStateResetForcesCold(t *testing.T) {
	w := NewWorkspace()
	var st QPState
	p := boxQP(4, 61)
	if _, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h); err != nil {
		t.Fatalf("seed: %v", err)
	}
	st.Reset()
	if st.Warm() {
		t.Fatal("Warm() true after Reset")
	}
	want, _ := solveFresh(p)
	got, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h)
	if err != nil {
		t.Fatalf("after Reset: %v", err)
	}
	for i := range want {
		//lint:ignore floatcompare a Reset state must reproduce the fresh cold solve exactly
		if got[i] != want[i] {
			t.Fatalf("x[%d] = %v, fresh %v", i, got[i], want[i])
		}
	}
}

// TestWarmStartFailedSolveNotSeeded verifies a failing call clears the
// seed so the next period cannot inherit a poisoned active set.
func TestWarmStartFailedSolveNotSeeded(t *testing.T) {
	w := NewWorkspace()
	var st QPState
	p := boxQP(4, 71)
	if _, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h); err != nil {
		t.Fatalf("seed: %v", err)
	}
	cBad := NewMat(2, 4)
	cBad.Set(0, 0, 1)
	cBad.Set(1, 0, 1)
	if _, err := InequalityLSW(w, &st, p.a, p.b, cBad, Vec{1, 2}, p.g, p.h); err == nil {
		t.Fatal("expected failure on a rank-deficient working set")
	}
	if st.Warm() {
		t.Fatal("state still seeded after a failed solve")
	}
}
