package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskySolveKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	f, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(Vec{6, 5})
	if !vecAlmostEq(a.MulVec(x), Vec{6, 5}, 1e-10) {
		t.Fatalf("x = %v", x)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if _, err := FactorizeCholesky(FromRows([][]float64{{1, 2}, {2, 1}})); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := FactorizeCholesky(NewMat(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := FactorizeCholesky(NewMat(2, 2)); err == nil {
		t.Fatal("zero matrix accepted")
	}
}

// Property: for random SPD matrices (BᵀB + I), Cholesky solves match LU.
func TestCholeskyMatchesLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		b := NewMat(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.T().Mul(b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		rhs := make(Vec, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		cf, err := FactorizeCholesky(a)
		if err != nil {
			return false
		}
		x1 := cf.Solve(rhs)
		x2, err := SolveLinear(a, rhs)
		if err != nil {
			return false
		}
		return vecAlmostEq(x1, x2, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeLSShrinksTowardZero(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := Vec{2, 2, 4}
	small, err := RidgeLS(a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RidgeLS(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if Vec(big).Norm() >= Vec(small).Norm() {
		t.Fatalf("large λ did not shrink: %v vs %v", big, small)
	}
	// λ→0 approaches the ordinary least squares solution (2, 2).
	if !vecAlmostEq(small, Vec{2, 2}, 1e-6) {
		t.Fatalf("λ→0 solution %v, want (2,2)", small)
	}
}

func TestRidgeLSHandlesRankDeficiency(t *testing.T) {
	// Perfectly collinear columns: QR-based LS fails, ridge succeeds.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := Vec{2, 4, 6}
	if _, err := LeastSquares(a, b); err == nil {
		t.Fatal("expected LS to fail on collinear columns")
	}
	x, err := RidgeLS(a, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Prediction must still fit: x1 + x2 ≈ 2.
	if math.Abs(x[0]+x[1]-2) > 1e-3 {
		t.Fatalf("ridge fit %v does not predict", x)
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !vecAlmostEq(inv.Data, want.Data, 1e-10) {
		t.Fatalf("Inverse = %v", inv)
	}
	prod := a.Mul(inv)
	if !vecAlmostEq(prod.Data, Identity(2).Data, 1e-10) {
		t.Fatalf("A·A⁻¹ = %v", prod)
	}
}

func TestInverseSingular(t *testing.T) {
	if _, err := Inverse(FromRows([][]float64{{1, 2}, {2, 4}})); err == nil {
		t.Fatal("singular matrix inverted")
	}
}

// Property: A·A⁻¹ ≈ I for random well-conditioned matrices.
func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewMat(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return vecAlmostEq(a.Mul(inv).Data, Identity(n).Data, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeLSValidation(t *testing.T) {
	a := Identity(2)
	if _, err := RidgeLS(a, Vec{1, 1}, 0); err == nil {
		t.Fatal("λ=0 accepted")
	}
	if _, err := RidgeLS(a, Vec{1}, 1); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

func BenchmarkCholesky16(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	n := 16
	m := NewMat(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := m.T().Mul(m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	rhs := make(Vec, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := FactorizeCholesky(a)
		if err != nil {
			b.Fatal(err)
		}
		f.Solve(rhs)
	}
}
