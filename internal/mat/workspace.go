package mat

// Workspace is a replay-style arena for the solver hot paths (ROADMAP
// item 2): growable Vec/Mat/[]int slots handed out in call order, plus
// one reusable LU and one reusable QR factorization. Reset rewinds the
// slot cursors without freeing anything, so a caller that issues the
// same sequence of Take calls every solve gets the same backing arrays
// back and performs zero steady-state heap allocations; capacity only
// grows while the workspace is warming up to its high-water mark.
//
// A Workspace serves exactly one solver loop at a time: it is not safe
// for concurrent use, and every buffer obtained from it — including
// solution vectors returned by InequalityLSW — is valid only until the
// cursor is rewound past it by the next Reset or Release.
type Workspace struct {
	vecs       []Vec
	mats       []*Mat
	ints       [][]int
	vi, mi, ii int

	lu LU
	qr QR
}

// NewWorkspace returns an empty workspace; capacity grows on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset rewinds every slot cursor to the start, recycling all buffers.
func (w *Workspace) Reset() { w.vi, w.mi, w.ii = 0, 0, 0 }

// WorkspaceMark is a cursor snapshot for Release.
type WorkspaceMark struct{ v, m, i int }

// Mark captures the current slot cursors.
func (w *Workspace) Mark() WorkspaceMark { return WorkspaceMark{w.vi, w.mi, w.ii} }

// Release rewinds the cursors to a previous Mark, recycling every slot
// taken since. Buffers handed out after the mark must not be used again.
func (w *Workspace) Release(m WorkspaceMark) { w.vi, w.mi, w.ii = m.v, m.m, m.i }

// TakeVec returns a zeroed length-n vector from the next vector slot.
func (w *Workspace) TakeVec(n int) Vec {
	if w.vi == len(w.vecs) {
		//lint:ignore hotalloc slot-table growth happens only until the workspace reaches its steady-state shape
		w.vecs = append(w.vecs, nil)
	}
	v := growVec(w.vecs[w.vi], n)
	w.vecs[w.vi] = v
	w.vi++
	clear(v)
	return v
}

// TakeMat returns a zeroed rows×cols matrix from the next matrix slot.
func (w *Workspace) TakeMat(rows, cols int) *Mat {
	if w.mi == len(w.mats) {
		//lint:ignore hotalloc slot-table growth happens only until the workspace reaches its steady-state shape
		w.mats = append(w.mats, new(Mat))
	}
	m := w.mats[w.mi]
	w.mi++
	m.reshape(rows, cols)
	clear(m.Data)
	return m
}

// TakeInts returns a zeroed length-n int slice from the next int slot.
func (w *Workspace) TakeInts(n int) []int {
	if w.ii == len(w.ints) {
		w.ints = append(w.ints, nil)
	}
	s := growInts(w.ints[w.ii], n)
	w.ints[w.ii] = s
	w.ii++
	clear(s)
	return s
}

// LU returns the workspace's reusable LU factorization.
func (w *Workspace) LU() *LU { return &w.lu }

// QR returns the workspace's reusable QR factorization.
func (w *Workspace) QR() *QR { return &w.qr }

// reshape resizes m to rows×cols, reusing the backing array when its
// capacity suffices. Contents are unspecified afterwards.
func (m *Mat) reshape(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		//lint:ignore hotalloc capacity growth happens only until the buffer reaches its steady-state size
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
}

// growVec returns buf with length n, reusing its backing array when the
// capacity suffices. Contents are unspecified.
func growVec(buf Vec, n int) Vec {
	if cap(buf) < n {
		//lint:ignore hotalloc capacity growth happens only until the buffer reaches its steady-state size
		buf = make(Vec, n)
	}
	return buf[:n]
}

// growInts is growVec for int slices.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		//lint:ignore hotalloc capacity growth happens only until the buffer reaches its steady-state size
		buf = make([]int, n)
	}
	return buf[:n]
}
