package mat

import "testing"

// TestQPStatsCountsSolves pins the solve-quality tallies: every call
// through a QPState counts one solve, warm attempts only after seeding,
// and cold retries only when a warm start failed.
func TestQPStatsCountsSolves(t *testing.T) {
	w := NewWorkspace()
	p := boxQP(4, 41)
	var st QPState
	for i := 0; i < 5; i++ {
		if _, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	got := st.Stats()
	want := QPStats{Solves: 5, WarmAttempts: 4, ColdRetries: 0}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

// TestQPStatsSurviveReset pins Reset's contract for the tallies: the
// active set is discarded (the next solve is cold) but the lifetime
// counters keep accumulating.
func TestQPStatsSurviveReset(t *testing.T) {
	w := NewWorkspace()
	p := boxQP(3, 42)
	var st QPState
	if _, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h); err != nil {
		t.Fatal(err)
	}
	st.Reset()
	if _, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h); err != nil {
		t.Fatal(err)
	}
	got := st.Stats()
	want := QPStats{Solves: 2, WarmAttempts: 0, ColdRetries: 0}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

// TestQPStatsNil pins the disabled-instrument behavior.
func TestQPStatsNil(t *testing.T) {
	var st *QPState
	if st.Stats() != (QPStats{}) {
		t.Fatal("nil QPState stats should be zero")
	}
	w := NewWorkspace()
	p := boxQP(3, 43)
	// nil state: no tallies anywhere, solve still works.
	if _, err := InequalityLSW(w, nil, p.a, p.b, nil, nil, p.g, p.h); err != nil {
		t.Fatal(err)
	}
}

// TestQPStatsColdRetry forces a warm-start failure by seeding the state
// on one geometry and then handing it a program whose seeded working
// set is singular, so the retry path must fire and be counted.
func TestQPStatsColdRetry(t *testing.T) {
	w := NewWorkspace()
	p := boxQP(3, 44)
	var st QPState
	if _, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h); err != nil {
		t.Fatal(err)
	}
	if !st.Warm() {
		t.Fatal("state should be seeded after a successful solve")
	}
	// Duplicate an active row so the warm working set is rank-deficient:
	// find a seeded-active inequality and overwrite another row with it.
	src := -1
	for i, on := range st.active {
		if on {
			src = i
			break
		}
	}
	if src < 0 {
		t.Skip("no active inequality to duplicate in this instance")
	}
	dst := (src + 1) % p.g.Rows
	st.active[dst] = true // force both duplicates into the working set
	for j := 0; j < p.g.Cols; j++ {
		p.g.Set(dst, j, p.g.At(src, j))
	}
	p.h[dst] = p.h[src]
	x, err := InequalityLSW(w, &st, p.a, p.b, nil, nil, p.g, p.h)
	if err != nil {
		t.Fatalf("cold retry should have recovered: %v", err)
	}
	if !feasible(p, x, 1e-8) {
		t.Fatal("recovered solution infeasible")
	}
	got := st.Stats()
	if got.Solves != 2 || got.WarmAttempts != 1 || got.ColdRetries != 1 {
		t.Fatalf("stats = %+v, want 2 solves / 1 warm / 1 cold retry", got)
	}
}
