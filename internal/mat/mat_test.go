package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestVecNorm(t *testing.T) {
	if got := (Vec{3, 4}).Norm(); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestVecAddScaled(t *testing.T) {
	v := Vec{1, 1}
	v.AddScaled(2, Vec{1, 2})
	if !vecAlmostEq(v, Vec{3, 5}, 0) {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestVecSubAddScaleClone(t *testing.T) {
	v := Vec{5, 7}
	w := Vec{1, 2}
	if got := v.Sub(w); !vecAlmostEq(got, Vec{4, 5}, 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Add(w); !vecAlmostEq(got, Vec{6, 9}, 0) {
		t.Fatalf("Add = %v", got)
	}
	c := v.Clone()
	c.Scale(2)
	if !vecAlmostEq(v, Vec{5, 7}, 0) {
		t.Fatal("Clone did not isolate storage")
	}
	if !vecAlmostEq(c, Vec{10, 14}, 0) {
		t.Fatalf("Scale = %v", c)
	}
}

func TestVecMax(t *testing.T) {
	if got := (Vec{-3, 7, 2}).Max(); got != 7 {
		t.Fatalf("Max = %v", got)
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.Mul(Identity(2))
	if !vecAlmostEq(got.Data, a.Data, 0) {
		t.Fatalf("A·I = %v", got)
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !vecAlmostEq(got.Data, want.Data, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMatMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec(Vec{5, 6})
	if !vecAlmostEq(got, Vec{17, 39}, 1e-12) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMatTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMatRowColSetRow(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if !vecAlmostEq(a.Row(1), Vec{3, 4}, 0) {
		t.Fatalf("Row = %v", a.Row(1))
	}
	if !vecAlmostEq(a.Col(0), Vec{1, 3}, 0) {
		t.Fatalf("Col = %v", a.Col(0))
	}
	a.SetRow(0, Vec{9, 9})
	if a.At(0, 1) != 9 {
		t.Fatal("SetRow did not apply")
	}
	r := a.Row(0)
	r[0] = -1
	if a.At(0, 0) != 9 {
		t.Fatal("Row should not alias matrix storage")
	}
}

func TestMatAddScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.Add(a).Scale(0.5)
	if !vecAlmostEq(got.Data, a.Data, 1e-12) {
		t.Fatalf("(A+A)/2 = %v", got)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, Vec{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{0.8, 1.4}, 1e-10) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, Vec{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, Vec{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{3, 2}, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := FactorizeLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-9) {
		t.Fatalf("Det = %v, want -6", f.Det())
	}
}

// Property: for random well-conditioned systems, A·Solve(A,b) ≈ b.
func TestSolveLinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := NewMat(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the system well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make(Vec, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		return vecAlmostEq(a.MulVec(x), b, 1e-7)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square full-rank system: least squares must reproduce the solution.
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	x, err := LeastSquares(a, Vec{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{2, 3}, 1e-10) {
		t.Fatalf("x = %v", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noiseless samples.
	a := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := Vec{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{2, 1}, 1e-10) {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

// Property: the least-squares residual is orthogonal to the column space.
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := n + 1 + r.Intn(8)
		a := NewMat(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make(Vec, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw: skip
		}
		resid := a.MulVec(x).Sub(b)
		grad := a.T().MulVec(resid)
		return grad.Norm() < 1e-6*(1+b.Norm())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEqConstrainedLS(t *testing.T) {
	// minimize ||x||² subject to x1 + x2 = 2 → x = (1, 1).
	a := Identity(2)
	b := Vec{0, 0}
	c := FromRows([][]float64{{1, 1}})
	x, err := EqConstrainedLS(a, b, c, Vec{2})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{1, 1}, 1e-9) {
		t.Fatalf("x = %v, want [1 1]", x)
	}
}

func TestEqConstrainedLSNilConstraint(t *testing.T) {
	a := Identity(2)
	x, err := EqConstrainedLS(a, Vec{3, 4}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{3, 4}, 1e-9) {
		t.Fatalf("x = %v", x)
	}
}

func TestEqConstrainedLSSatisfiesConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		m := n + rng.Intn(5)
		a := NewMat(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make(Vec, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		c := NewMat(1, n)
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64() + 0.1
		}
		d := Vec{rng.NormFloat64()}
		x, err := EqConstrainedLS(a, b, c, d)
		if err != nil {
			continue
		}
		if got := c.MulVec(x)[0]; !almostEq(got, d[0], 1e-6) {
			t.Fatalf("trial %d: Cx = %v, want %v", trial, got, d[0])
		}
	}
}

func TestInequalityLSInactive(t *testing.T) {
	// Unconstrained optimum already satisfies the bounds.
	a := Identity(2)
	b := Vec{1, 1}
	g := FromRows([][]float64{{1, 0}, {0, 1}})
	h := Vec{5, 5}
	x, err := InequalityLS(a, b, nil, nil, g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{1, 1}, 1e-9) {
		t.Fatalf("x = %v", x)
	}
}

func TestInequalityLSActiveBound(t *testing.T) {
	// minimize ||x - (3,3)||² s.t. x1 <= 1: optimum clamps x1.
	a := Identity(2)
	b := Vec{3, 3}
	g := FromRows([][]float64{{1, 0}})
	h := Vec{1}
	x, err := InequalityLS(a, b, nil, nil, g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{1, 3}, 1e-8) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestInequalityLSWithEqualityAndBounds(t *testing.T) {
	// minimize ||x - (4,0)||² s.t. x1 + x2 = 2, x1 <= 1.5.
	// Without the bound x = (3, -1); with the bound x1 = 1.5, x2 = 0.5.
	a := Identity(2)
	b := Vec{4, 0}
	c := FromRows([][]float64{{1, 1}})
	g := FromRows([][]float64{{1, 0}})
	x, err := InequalityLS(a, b, c, Vec{2}, g, Vec{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{1.5, 0.5}, 1e-8) {
		t.Fatalf("x = %v, want [1.5 0.5]", x)
	}
}

func TestInequalityLSDropConstraint(t *testing.T) {
	// Start from a state where activating then releasing a bound is
	// required: lower bound -x1 <= 0 (x1 >= 0) with target inside.
	a := Identity(2)
	b := Vec{2, 2}
	g := FromRows([][]float64{{-1, 0}, {0, -1}, {1, 0}, {0, 1}})
	h := Vec{0, 0, 5, 5}
	x, err := InequalityLS(a, b, nil, nil, g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, Vec{2, 2}, 1e-8) {
		t.Fatalf("x = %v", x)
	}
}

// Property: InequalityLS output always satisfies its constraints and never
// beats the unconstrained optimum.
func TestInequalityLSFeasibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		a := Identity(n)
		b := make(Vec, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 3
		}
		// Box |x_i| <= 1 expressed as 2n inequality rows.
		g := NewMat(2*n, n)
		h := make(Vec, 2*n)
		for i := 0; i < n; i++ {
			g.Set(i, i, 1)
			h[i] = 1
			g.Set(n+i, i, -1)
			h[n+i] = 1
		}
		x, err := InequalityLS(a, b, nil, nil, g, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if x[i] > 1+1e-7 || x[i] < -1-1e-7 {
				t.Fatalf("trial %d: infeasible x = %v", trial, x)
			}
			// For this separable problem the optimum is the clamp.
			want := math.Max(-1, math.Min(1, b[i]))
			if !almostEq(x[i], want, 1e-6) {
				t.Fatalf("trial %d: x[%d] = %v, want clamp %v", trial, i, x[i], want)
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatString(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("String is empty")
	}
}

func BenchmarkSolveLinear16(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 16
	a := NewMat(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+20)
	}
	rhs := make(Vec, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLinear(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquares64x8(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := NewMat(64, 8)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	rhs := make(Vec, 64)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
