// Package mat provides the dense linear algebra needed by the response
// time controller: vectors, matrices, LU and QR factorizations, ordinary
// and equality-constrained least squares, and a small active-set solver
// for box-constrained quadratic programs.
//
// The package is self-contained (stdlib only) and tuned for the small,
// well-conditioned systems that arise in MPC for multi-tier applications:
// tens of unknowns, not thousands. All operations are deterministic.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// AddScaled sets v = v + a*w in place and returns v.
func (v Vec) AddScaled(a float64, w Vec) Vec {
	if len(v) != len(w) {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: AddScaled length mismatch")
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Scale multiplies every element of v by a in place and returns v.
func (v Vec) Scale(a float64) Vec {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: Sub length mismatch")
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: Add length mismatch")
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Max returns the largest element of v. It panics on an empty vector.
func (v Vec) Max() float64 {
	if len(v) == 0 {
		//lint:ignore panicpolicy precondition: Max of nothing has no answer; caller must check
		panic("mat: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMat returns a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		//lint:ignore panicpolicy precondition: a negative dimension is a programming error
		panic("mat: negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			//lint:ignore panicpolicy precondition: ragged rows are a programming error
			panic("mat: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns row i as a vector sharing no storage with m.
func (m *Mat) Row(i int) Vec {
	out := make(Vec, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns column j as a new vector.
func (m *Mat) Col(j int) Vec {
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SetRow copies v into row i.
func (m *Mat) SetRow(i int, v Vec) {
	if len(v) != m.Cols {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: SetRow length mismatch")
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b as a new matrix. It panics on a dimension mismatch.
func (m *Mat) Mul(b *Mat) *Mat {
	if m.Cols != b.Rows {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMat(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			//lint:ignore floatcompare exact-zero sparsity fast path; any nonzero must multiply
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·v as a new vector.
func (m *Mat) MulVec(v Vec) Vec {
	return m.MulVecInto(make(Vec, m.Rows), v)
}

// MulVecInto sets out (length Rows) to m·v and returns out. out must not
// alias v.
func (m *Mat) MulVecInto(out Vec, v Vec) Vec {
	if m.Cols != len(v) || len(out) != m.Rows {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic(fmt.Sprintf("mat: MulVecInto dimension mismatch %dx%d · %d into %d", m.Rows, m.Cols, len(v), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// MulTVecInto sets out (length Cols) to mᵀ·v and returns out. Column
// sums accumulate in the same ascending-row order as m.T().MulVec(v),
// so the results are bitwise identical. out must not alias v.
func (m *Mat) MulTVecInto(out Vec, v Vec) Vec {
	if m.Rows != len(v) || len(out) != m.Cols {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic(fmt.Sprintf("mat: MulTVecInto dimension mismatch %dx%d ᵀ· %d into %d", m.Rows, m.Cols, len(v), len(out)))
	}
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for k := 0; k < m.Rows; k++ {
			s += m.Data[k*m.Cols+j] * v[k]
		}
		out[j] = s
	}
	return out
}

// ATAInto sets out (Cols×Cols) to mᵀ·m without materializing the
// transpose. Each entry accumulates over rows in ascending order, the
// same order as m.T().Mul(m), so for finite inputs the results are
// bitwise identical. out must not alias m.
func (m *Mat) ATAInto(out *Mat) *Mat {
	n := m.Cols
	if out.Rows != n || out.Cols != n {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic(fmt.Sprintf("mat: ATAInto wants %dx%d output, got %dx%d", n, n, out.Rows, out.Cols))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < m.Rows; k++ {
				s += m.Data[k*n+i] * m.Data[k*n+j]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// RowDot returns the dot product of row i with v without materializing
// the row, matching m.Row(i).Dot(v) bitwise.
func (m *Mat) RowDot(i int, v Vec) float64 {
	row := m.Data[i*m.Cols : (i+1)*m.Cols]
	if len(v) != len(row) {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: RowDot length mismatch")
	}
	s := 0.0
	for j, x := range row {
		s += x * v[j]
	}
	return s
}

// Add returns m + b as a new matrix.
func (m *Mat) Add(b *Mat) *Mat {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: Add dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Scale returns a·m as a new matrix.
func (m *Mat) Scale(a float64) *Mat {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= a
	}
	return out
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%9.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
