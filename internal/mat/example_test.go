package mat_test

import (
	"fmt"

	"vdcpower/internal/mat"
)

func ExampleSolveLinear() {
	a := mat.FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := mat.SolveLinear(a, mat.Vec{3, 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.2f %.2f]\n", x[0], x[1])
	// Output: x = [0.80 1.40]
}

func ExampleLeastSquares() {
	// Fit y = 2x + 1 from noiseless samples.
	a := mat.FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	coef, err := mat.LeastSquares(a, mat.Vec{1, 3, 5, 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("slope %.1f intercept %.1f\n", coef[0], coef[1])
	// Output: slope 2.0 intercept 1.0
}

func ExampleInequalityLS() {
	// Closest point to (3, 3) on the plane x+y=2 with x ≤ 0.5.
	obj := mat.Identity(2)
	eq := mat.FromRows([][]float64{{1, 1}})
	ineq := mat.FromRows([][]float64{{1, 0}})
	x, err := mat.InequalityLS(obj, mat.Vec{3, 3}, eq, mat.Vec{2}, ineq, mat.Vec{0.5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.2f %.2f]\n", x[0], x[1])
	// Output: x = [0.50 1.50]
}
