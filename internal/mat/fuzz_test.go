package mat

// Native fuzzing for the LU solver: any square system it accepts must be
// solved with a small backward error (LU with partial pivoting is
// backward stable at these sizes), and any rejection must be the typed
// ErrSingular. Seeds live in testdata/fuzz/FuzzSolveLinear.

import (
	"errors"
	"math"
	"testing"
)

// decodeSystem derives an n×n system (n ≤ 4) from fuzz bytes.
func decodeSystem(data []byte) (*Mat, Vec, bool) {
	if len(data) < 1 {
		return nil, nil, false
	}
	n := 1 + int(data[0])%4
	need := n*n + n
	if len(data)-1 < need {
		return nil, nil, false
	}
	vals := make([]float64, need)
	for i := range vals {
		vals[i] = (float64(data[1+i]) - 127.5) / 16 // roughly [-8, 8]
	}
	a := NewMat(n, n)
	copy(a.Data, vals[:n*n])
	return a, Vec(vals[n*n:]), true
}

func frobenius(m *Mat) float64 {
	s := 0.0
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

func FuzzSolveLinear(f *testing.F) {
	f.Add([]byte{0, 144, 128})                                                                                   // 1×1
	f.Add([]byte{1, 160, 128, 128, 160, 100, 200})                                                               // 2×2 diagonal-ish
	f.Add([]byte{3, 200, 128, 128, 128, 128, 200, 128, 128, 128, 128, 200, 128, 128, 128, 128, 200, 1, 2, 3, 4}) // 4×4
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := decodeSystem(data)
		if !ok {
			return
		}
		saved := a.Clone()
		x, err := SolveLinear(a, b)
		if err != nil {
			if !errors.Is(err, ErrSingular) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		for i, v := range a.Data {
			//lint:ignore floatcompare the solver must not touch its input
			if v != saved.Data[i] {
				t.Fatalf("SolveLinear mutated A at %d", i)
			}
		}
		for _, xi := range x {
			if math.IsNaN(xi) || math.IsInf(xi, 0) {
				t.Fatalf("non-finite solution %v", x)
			}
		}
		r := a.MulVec(x).Sub(b)
		if bound := 1e-6 * (frobenius(a)*x.Norm() + b.Norm() + 1); r.Norm() > bound {
			t.Fatalf("residual %v exceeds %v for\n%sb=%v x=%v", r.Norm(), bound, a, b, x)
		}
	})
}
