package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: singular matrix")

// LU holds an LU factorization with partial pivoting: P·A = L·U. A zero
// LU is ready to use; Factorize reuses its storage across calls.
type LU struct {
	lu   Mat   // combined L (unit lower) and U storage
	piv  []int // row permutation
	sign int   // permutation parity, for Det
}

// FactorizeLU computes the LU factorization of the square matrix a.
func FactorizeLU(a *Mat) (*LU, error) {
	f := new(LU)
	if err := f.Factorize(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factorize computes the LU factorization of the square matrix a into f,
// replacing any previous factorization and reusing f's storage. a is not
// modified.
func (f *LU) Factorize(a *Mat) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("mat: LU needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f.lu.reshape(n, n)
	copy(f.lu.Data, a.Data)
	lu := &f.lu
	f.piv = growInts(f.piv, n)
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	f.sign = 1
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(lu.At(i, k)); ab > maxAbs {
				p, maxAbs = i, ab
			}
		}
		if maxAbs < 1e-13 {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[k*n+j], lu.Data[p*n+j] = lu.Data[p*n+j], lu.Data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			fac := lu.At(i, k) / pivot
			lu.Set(i, k, fac)
			//lint:ignore floatcompare exact-zero elimination fast path; any nonzero must eliminate
			if fac == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Data[i*n+j] -= fac * lu.Data[k*n+j]
			}
		}
	}
	return nil
}

// Solve returns x such that A·x = b using the factorization.
func (f *LU) Solve(b Vec) Vec {
	return f.SolveInto(make(Vec, f.lu.Rows), b)
}

// SolveInto writes the solution of A·x = b into x (length n) and returns
// it. x must not alias b.
func (f *LU) SolveInto(x, b Vec) Vec {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: LU.SolveInto dimension mismatch")
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear solves the square system A·x = b.
func SolveLinear(a *Mat, b Vec) (Vec, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// QR holds a Householder QR factorization A = Q·R for Rows >= Cols. A
// zero QR is ready to use; Factorize reuses its storage across calls.
type QR struct {
	qr   Mat // R in the upper triangle, Householder vectors below
	tau  Vec // Householder scalars
	rows int
	cols int
}

// FactorizeQR computes a Householder QR factorization of a (Rows >= Cols).
func FactorizeQR(a *Mat) (*QR, error) {
	f := new(QR)
	if err := f.Factorize(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factorize computes a Householder QR factorization of a (Rows >= Cols)
// into f, replacing any previous factorization and reusing f's storage.
// a is not modified.
func (f *QR) Factorize(a *Mat) error {
	if a.Rows < a.Cols {
		return fmt.Errorf("mat: QR needs rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	f.qr.reshape(m, n)
	copy(f.qr.Data, a.Data)
	qr := &f.qr
	f.tau = growVec(f.tau, n)
	f.rows, f.cols = m, n
	for k := 0; k < n; k++ {
		// Norm of the trailing part of column k.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm < 1e-13 {
			return ErrSingular
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		f.tau[k] = -norm // diagonal of R
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
	}
	return nil
}

// Solve returns the least-squares solution x minimizing ||A·x - b||₂.
func (f *QR) Solve(b Vec) Vec {
	return f.SolveInto(make(Vec, f.cols), make(Vec, f.rows), b)
}

// SolveInto writes the least-squares solution minimizing ||A·x - b||₂
// into x (length Cols), using y (length Rows) as scratch for Qᵀ·b, and
// returns x. Neither x nor y may alias b.
func (f *QR) SolveInto(x, y, b Vec) Vec {
	if len(b) != f.rows || len(y) != f.rows || len(x) != f.cols {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: QR.SolveInto dimension mismatch")
	}
	m, n := f.rows, f.cols
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R (diag stored in tau).
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.tau[i]
	}
	return x
}

// LeastSquares minimizes ||A·x - b||₂ for a (possibly tall) full-rank A.
func LeastSquares(a *Mat, b Vec) (Vec, error) {
	f, err := FactorizeQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// EqConstrainedLS minimizes ||A·x - b||₂ subject to C·x = d by solving the
// KKT system
//
//	[ 2AᵀA  Cᵀ ] [x] = [2Aᵀb]
//	[  C    0  ] [λ]   [  d ]
//
// A must have at least as many rows as columns and C must have full row
// rank with C.Rows <= A.Cols.
func EqConstrainedLS(a *Mat, b Vec, c *Mat, d Vec) (Vec, error) {
	if c == nil || c.Rows == 0 {
		return LeastSquares(a, b)
	}
	if a.Cols != c.Cols {
		return nil, fmt.Errorf("mat: EqConstrainedLS mismatched unknowns: A has %d, C has %d", a.Cols, c.Cols)
	}
	if len(b) != a.Rows || len(d) != c.Rows {
		return nil, errors.New("mat: EqConstrainedLS rhs dimension mismatch")
	}
	n, p := a.Cols, c.Rows
	ata := a.T().Mul(a)
	atb := a.T().MulVec(b)
	kkt := NewMat(n+p, n+p)
	rhs := make(Vec, n+p)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, 2*ata.At(i, j))
		}
		rhs[i] = 2 * atb[i]
	}
	for i := 0; i < p; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(n+i, j, c.At(i, j))
			kkt.Set(j, n+i, c.At(i, j))
		}
		rhs[n+i] = d[i]
	}
	sol, err := SolveLinear(kkt, rhs)
	if err != nil {
		return nil, err
	}
	return sol[:n], nil
}
