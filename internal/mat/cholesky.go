package mat

import (
	"fmt"
	"math"
)

// Cholesky holds the factorization A = L·Lᵀ of a symmetric positive
// definite matrix. It is the fast path for normal-equation solves such
// as ridge-regularized identification.
type Cholesky struct {
	l *Mat // lower triangle
}

// FactorizeCholesky factorizes a symmetric positive definite matrix. It
// returns ErrSingular if a non-positive pivot is met (A not SPD).
func FactorizeCholesky(a *Mat) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMat(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 1e-13 {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b.
func (c *Cholesky) Solve(b Vec) Vec {
	n := c.l.Rows
	if len(b) != n {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic("mat: Cholesky.Solve dimension mismatch")
	}
	// Forward: L·y = b.
	y := make(Vec, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make(Vec, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// Inverse returns A⁻¹ for a square nonsingular matrix, via LU with
// partial pivoting. Prefer the Solve methods when a single system is
// needed; the explicit inverse exists for covariance reporting.
func Inverse(a *Mat) (*Mat, error) {
	f, err := FactorizeLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMat(n, n)
	e := make(Vec, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
		e[j] = 0
	}
	return inv, nil
}

// RidgeLS minimizes ‖A·x − b‖² + λ‖x‖² via the regularized normal
// equations (AᵀA + λI)·x = Aᵀb, factorized with Cholesky. λ > 0
// guarantees a solution even for rank-deficient A — the fallback used
// when an identification experiment lacks persistent excitation.
func RidgeLS(a *Mat, b Vec, lambda float64) (Vec, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("mat: ridge parameter %v must be positive", lambda)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("mat: RidgeLS rhs length %d, want %d", len(b), a.Rows)
	}
	ata := a.T().Mul(a)
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	f, err := FactorizeCholesky(ata)
	if err != nil {
		return nil, err
	}
	return f.Solve(a.T().MulVec(b)), nil
}
