//go:build race

package race

// Enabled is true when the race detector is active.
const Enabled = true
