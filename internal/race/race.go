//go:build !race

// Package race reports whether the binary was built with the race
// detector. The zero-allocation test gates (ROADMAP item 2) skip
// themselves under -race: the detector instruments every memory access
// and allocates shadow state, so testing.AllocsPerRun measures the
// instrumentation, not the code under test.
package race

// Enabled is true when the race detector is active.
const Enabled = false
