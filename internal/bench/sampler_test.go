package bench

import (
	"errors"
	"strings"
	"testing"
)

// scriptClock returns a clock that advances by the scripted number of
// seconds on each *pair* of reads (start/stop): rep i takes durs[i].
func scriptClock(durs []float64) func() float64 {
	now := 0.0
	reads := 0
	i := 0
	return func() float64 {
		if reads%2 == 1 && i < len(durs) {
			now += durs[i]
			i++
		}
		reads++
		return now
	}
}

func TestMeasureDeterministicWithInjectedClock(t *testing.T) {
	runs := 0
	sc := &Scenario{
		Name: "test/clocked",
		Run: func(*Env) (Metrics, error) {
			runs++
			return Metrics{"runs": float64(runs)}, nil
		},
	}
	// Warmup reps do not read the clock, so the script covers only the
	// 4 measured reps: 10ms, 12ms, 11ms, 90ms (one outlier).
	res, err := Measure(sc, nil, Options{
		Warmup: 2,
		Reps:   4,
		Clock:  scriptClock([]float64{0.010, 0.012, 0.011, 0.090}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 6 {
		t.Errorf("scenario ran %d times, want 2 warmup + 4 reps", runs)
	}
	want := []float64{10e6, 12e6, 11e6, 90e6}
	if len(res.NsPerOp) != len(want) {
		t.Fatalf("got %d samples", len(res.NsPerOp))
	}
	for i, w := range want {
		if diff := res.NsPerOp[i] - w; diff > 1 || diff < -1 {
			t.Errorf("sample %d = %v ns, want %v", i, res.NsPerOp[i], w)
		}
	}
	// Robust summary: the median ignores the 90ms outlier.
	if res.MedianNs < 11e6-1 || res.MedianNs > 11.5e6+1 {
		t.Errorf("median = %v ns, want ~11.5e6", res.MedianNs)
	}
	if res.MADNs > 5e6 {
		t.Errorf("MAD = %v ns dominated by the outlier", res.MADNs)
	}
	if !(res.CI95LoNs <= res.MedianNs && res.MedianNs <= res.CI95HiNs) {
		t.Errorf("median %v outside CI [%v, %v]", res.MedianNs, res.CI95LoNs, res.CI95HiNs)
	}
	if res.Metrics["runs"] != 6 {
		t.Errorf("metrics not taken from the final rep: %v", res.Metrics)
	}
	if res.Name != "test/clocked" || res.Reps != 4 || res.Warmup != 2 {
		t.Errorf("result header wrong: %+v", res)
	}

	// Same samples, same bootstrap seed => identical CI on re-summarize.
	lo, hi := res.CI95LoNs, res.CI95HiNs
	res.summarize(bootstrapRNG(res.Name))
	if res.CI95LoNs != lo || res.CI95HiNs != hi {
		t.Error("summary not reproducible for fixed samples")
	}
}

func TestMeasurePrepareAndHooks(t *testing.T) {
	var order []string
	sc := &Scenario{
		Name:    "test/hooks",
		Prepare: func(*Env) error { order = append(order, "prepare"); return nil },
		Run:     func(*Env) (Metrics, error) { order = append(order, "run"); return nil, nil },
	}
	_, err := Measure(sc, nil, Options{
		Warmup:      1,
		Reps:        1,
		Clock:       scriptClock([]float64{0.001}),
		BeforeTimed: func() error { order = append(order, "before"); return nil },
		AfterTimed:  func() { order = append(order, "after") },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "prepare,run,before,run,after"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestMeasureErrors(t *testing.T) {
	boom := errors.New("boom")
	runErr := &Scenario{Name: "test/err", Run: func(*Env) (Metrics, error) { return nil, boom }}
	if _, err := Measure(runErr, nil, Options{Reps: 2, Clock: scriptClock(nil)}); !errors.Is(err, boom) {
		t.Errorf("run error not surfaced: %v", err)
	}
	prepErr := &Scenario{
		Name:    "test/prep",
		Prepare: func(*Env) error { return boom },
		Run:     func(*Env) (Metrics, error) { return nil, nil },
	}
	if _, err := Measure(prepErr, nil, Options{Reps: 1, Clock: scriptClock(nil)}); !errors.Is(err, boom) {
		t.Errorf("prepare error not surfaced: %v", err)
	}
	hookErr := &Scenario{Name: "test/hook", Run: func(*Env) (Metrics, error) { return nil, nil }}
	_, err := Measure(hookErr, nil, Options{Reps: 1, Clock: scriptClock(nil), BeforeTimed: func() error { return boom }})
	if !errors.Is(err, boom) {
		t.Errorf("hook error not surfaced: %v", err)
	}
	if _, err := Measure(hookErr, nil, Options{Reps: -1, Clock: scriptClock(nil)}); err == nil {
		t.Error("negative reps accepted")
	}
}

func TestMeasureDefaultsAndWallClock(t *testing.T) {
	runs := 0
	sc := &Scenario{Name: "test/defaults", Run: func(*Env) (Metrics, error) { runs++; return nil, nil }}
	// No clock injected: the wall-clock edge itself is exercised.
	res, err := Measure(sc, nil, Options{Warmup: -1, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Errorf("Warmup<0 should mean no warmup; ran %d times", runs)
	}
	for i, ns := range res.NsPerOp {
		if ns < 0 {
			t.Errorf("wall-clocked sample %d negative: %v", i, ns)
		}
	}
	if len(res.AllocsPerOp) != 3 || len(res.BytesPerOp) != 3 {
		t.Errorf("memory columns misaligned: %d/%d", len(res.AllocsPerOp), len(res.BytesPerOp))
	}

	runs = 0
	if _, err := Measure(sc, nil, Options{Clock: scriptClock(nil)}); err != nil {
		t.Fatal(err)
	}
	if runs != DefaultWarmup+DefaultReps {
		t.Errorf("defaults ran %d times, want %d", runs, DefaultWarmup+DefaultReps)
	}
}

func TestMeasureAllocCounting(t *testing.T) {
	var sink [][]byte
	sc := &Scenario{
		Name: "test/allocs",
		Run: func(*Env) (Metrics, error) {
			// ~64 KiB across 64 allocations per op.
			for i := 0; i < 64; i++ {
				sink = append(sink, make([]byte, 1024))
			}
			return nil, nil
		},
	}
	res, err := Measure(sc, nil, Options{Warmup: -1, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = sink
	for i := range res.NsPerOp {
		if res.AllocsPerOp[i] < 64 {
			t.Errorf("rep %d counted %v allocs, want >= 64", i, res.AllocsPerOp[i])
		}
		if res.BytesPerOp[i] < 64*1024 {
			t.Errorf("rep %d counted %v bytes, want >= 64Ki", i, res.BytesPerOp[i])
		}
	}
}
