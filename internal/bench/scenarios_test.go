package bench

import (
	"strings"
	"testing"
)

// wantMetrics maps every default scenario to the metric keys its Run
// must report — the contract BENCH_*.json consumers (EXPERIMENTS.md
// tables, the CI gate summary) read.
var wantMetrics = map[string][]string{
	"fig2/response-time":      {"ms-mean-abs-err"},
	"fig3/surge":              {"ms-recovery-err", "surge-power-rise-w"},
	"fig4/concurrency-sweep":  {"ms-mean-abs-err"},
	"fig5/setpoint-sweep":     {"ms-mean-abs-err"},
	"fig6/energy-per-vm":      {"saving-pct"},
	"fig6/telemetry-off":      {"energy-per-vm-wh", "optimizer-passes"},
	"fig6/telemetry-on":       {"energy-per-vm-wh", "optimizer-passes", "spans", "spans-dropped"},
	"fig6/obs-on":             {"audit-records", "energy-per-vm-wh", "optimizer-passes", "slo-bad-steps"},
	"fig6/chaos":              {"crashes", "degraded-passes", "energy-per-vm-wh", "failed-moves", "faults-injected"},
	"ablation/dvfs":           {"dvfs-saving-pct"},
	"ablation/watchdog":       {"overload-steps-avoided", "watchdog-moves"},
	"ablation/migration-cost": {"energy-cost-pct", "migrations-avoided"},
	"ablation/economic-mpc":   {"ghz-saved"},
	"mpc/solve":               {"solves"},
	"queueing/mva":            {"solves", "sum-response-s"},
	"packing/minslack":        {"slack-gain-ghz"},
	"packing/ffd":             {"bins-used", "unplaced"},
	"lint/module":             {"packages"},
	"trace/ingest":            {"grid-mass", "grid-vms", "records"},
	"trace/replay":            {"distorted", "records", "trace-vms"},
	"guard/wedge":             {"completed", "events"},
}

// TestDefaultScenariosRunAtQuickScale executes every registered
// scenario once against the CI-smoke environment: each must prepare,
// run without error and report exactly its contracted metric keys.
func TestDefaultScenariosRunAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every benchmark scenario once")
	}
	env := NewEnv(ScaleQuick)
	for _, sc := range Default().All() {
		sc := sc
		t.Run(strings.ReplaceAll(sc.Name, "/", "_"), func(t *testing.T) {
			want, known := wantMetrics[sc.Name]
			if !known {
				t.Fatalf("scenario %q has no metric contract in wantMetrics; add one", sc.Name)
			}
			if sc.Prepare != nil {
				if err := sc.Prepare(env); err != nil {
					t.Fatalf("prepare: %v", err)
				}
			}
			m, err := sc.Run(env)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := strings.Join(m.Keys(), ",")
			if got != strings.Join(want, ",") {
				t.Errorf("metrics = [%s], want [%s]", got, strings.Join(want, ","))
			}
		})
	}
	// Every contracted scenario still exists.
	r := Default()
	for name := range wantMetrics {
		if _, ok := r.Get(name); !ok {
			t.Errorf("contracted scenario %q missing from the registry", name)
		}
	}
}

func TestEnvScaleParameters(t *testing.T) {
	full, quick := NewEnv(ScaleFull), NewEnv(ScaleQuick)
	if full.Scale() != ScaleFull || quick.Scale() != ScaleQuick {
		t.Fatal("Scale() does not round-trip")
	}
	if got := full.TestbedConfig(); got.NumApps != 4 || got.IdentPeriods != 80 {
		t.Errorf("full testbed config: %+v", got)
	}
	if got := quick.TestbedConfig(); got.NumApps != 2 || got.IdentPeriods != 40 {
		t.Errorf("quick testbed config: %+v", got)
	}
	if len(full.Fig6Sizes()) <= len(quick.Fig6Sizes()) {
		t.Error("full scale should sweep more Fig. 6 sizes")
	}
	if full.DCVMs() <= quick.DCVMs() {
		t.Error("full scale should simulate more VMs")
	}
	if len(full.ConcurrencyLevels()) <= len(quick.ConcurrencyLevels()) {
		t.Error("full scale should sweep more concurrency levels")
	}
	if len(full.Setpoints()) <= len(quick.Setpoints()) {
		t.Error("full scale should sweep more set points")
	}
	if full.LintPatterns()[0] != "./..." || quick.LintPatterns()[0] == "./..." {
		t.Errorf("lint patterns: full %v quick %v", full.LintPatterns(), quick.LintPatterns())
	}
	if p := quick.ChaosProfile(); p.Seed != 42 || len(p.Crash.At) != 1 {
		t.Errorf("chaos profile drifted: %+v", p)
	}

	if _, err := ParseScale("full"); err != nil {
		t.Error(err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}

	e := NewEnv(ScaleQuick)
	if e.ModuleRoot() != "." {
		t.Errorf("default module root = %q", e.ModuleRoot())
	}
	e.SetModuleRoot("../..")
	if e.ModuleRoot() != "../.." {
		t.Error("SetModuleRoot did not stick")
	}
}

// TestTraceCachedPerEnv pins rule 2 of the package doc: the shared
// trace is generated once per Env and reused by every scenario.
func TestTraceCachedPerEnv(t *testing.T) {
	e := NewEnv(ScaleQuick)
	tr1, err := e.Trace()
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := e.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("Trace() regenerated the fixture instead of caching it")
	}
	if n := tr1.NumVMs(); n != 60 {
		t.Errorf("quick trace has %d VMs, want 60", n)
	}
}
