package bench

import (
	"bytes"
	"fmt"
	"sync"

	"vdcpower/internal/fault"
	"vdcpower/internal/packing"
	"vdcpower/internal/testbed"
	"vdcpower/internal/trace"
	"vdcpower/internal/workload"
)

// Scale selects the fixture sizes every scenario derives its work from.
// Results are only comparable within one scale (Compare enforces this).
type Scale string

// Scales.
const (
	// ScaleFull is the reduced-but-faithful scale the root bench_test.go
	// benchmarks always ran at: 4 apps on 2 servers, a 300-VM 2-day
	// trace, two Fig. 6 sizes. Figures keep their shapes; iterations
	// stay under a second.
	ScaleFull Scale = "full"
	// ScaleQuick is the CI-smoke scale: the smallest configuration that
	// still exercises every code path. Used by the perf-smoke gate,
	// where wall-clock budget matters more than figure fidelity.
	ScaleQuick Scale = "quick"
)

// ParseScale validates a scale string.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case ScaleFull, ScaleQuick:
		return Scale(s), nil
	}
	return "", fmt.Errorf("bench: unknown scale %q (full or quick)", s)
}

// Env carries the scale-dependent configuration and the shared fixtures
// of a benchmark session. Fixtures are built once per Env (sync.Once)
// so scenarios time the system under test, not fixture generation: the
// Fig. 6 trace used to be regenerated per benchmark iteration, which
// timed the workload generator instead of the optimizer.
//
// An Env is safe for concurrent use by the fixture accessors; scenarios
// themselves run sequentially (one timed op at a time).
type Env struct {
	scale      Scale
	moduleRoot string

	traceOnce sync.Once
	trace     *workload.Trace
	traceErr  error

	poolOnce sync.Once
	pool     *packing.Pool

	corpusOnce sync.Once
	corpus     []byte
	corpusErr  error
}

// NewEnv builds an environment at the given scale.
func NewEnv(scale Scale) *Env {
	return &Env{scale: scale, moduleRoot: "."}
}

// Scale returns the environment's scale.
func (e *Env) Scale() Scale { return e.scale }

// SetModuleRoot points the lint scenario at the module to analyze —
// any directory inside it works (the loader searches upward for
// go.mod). The default "." suits cmd/vdcbench run from the repository;
// tests running in a package directory may pass their own location.
func (e *Env) SetModuleRoot(dir string) { e.moduleRoot = dir }

// ModuleRoot returns the directory the lint scenario loads from.
func (e *Env) ModuleRoot() string { return e.moduleRoot }

// TestbedConfig returns the figure-testbed configuration (Figs. 2-5).
func (e *Env) TestbedConfig() testbed.Config {
	cfg := testbed.DefaultConfig()
	switch e.scale {
	case ScaleQuick:
		cfg.NumApps = 2
		cfg.NumServers = 2
		cfg.IdentPeriods = 40
		cfg.IdentWarmupSec = 10
	default: // ScaleFull
		cfg.NumApps = 4
		cfg.NumServers = 2
		cfg.IdentPeriods = 80
		cfg.IdentWarmupSec = 20
	}
	return cfg
}

// Trace returns the shared Fig. 6 workload trace, generating it on
// first use and caching it for every scenario and rep thereafter.
func (e *Env) Trace() (*workload.Trace, error) {
	e.traceOnce.Do(func() {
		gc := workload.GenConfig{NumVMs: 300, Days: 2, StepsPerHour: 4, Seed: 2008}
		if e.scale == ScaleQuick {
			gc.NumVMs, gc.Days = 60, 1
		}
		e.trace, e.traceErr = workload.Generate(gc)
	})
	return e.trace, e.traceErr
}

// Fig6Sizes returns the data-center sizes the Fig. 6 sweep visits.
func (e *Env) Fig6Sizes() []int {
	if e.scale == ScaleQuick {
		return []int{30}
	}
	return []int{60, 300}
}

// DCVMs returns the data-center size of the single-run dcsim scenarios
// (telemetry on/off, chaos, ablations).
func (e *Env) DCVMs() int {
	if e.scale == ScaleQuick {
		return 30
	}
	return 150
}

// ConcurrencyLevels returns the Fig. 4 sweep levels.
func (e *Env) ConcurrencyLevels() []int {
	if e.scale == ScaleQuick {
		return []int{40}
	}
	return []int{30, 50, 80}
}

// Setpoints returns the Fig. 5 sweep set points (seconds).
func (e *Env) Setpoints() []float64 {
	if e.scale == ScaleQuick {
		return []float64{1.0}
	}
	return []float64{0.6, 0.9, 1.3}
}

// LintPatterns returns the package patterns the lint scenario loads:
// the whole module at full scale, one small package at quick scale
// (loading+type-checking everything from source costs seconds).
func (e *Env) LintPatterns() []string {
	if e.scale == ScaleQuick {
		return []string{"./internal/power"}
	}
	return []string{"./..."}
}

// MinSlackPool returns the session-shared Minimum Slack search pool.
// The accessor is safe for concurrent use; the pool itself serves one
// search at a time, which holds because scenarios run sequentially.
// Sharing it across reps means the packing/minslack scenario measures
// the search at its allocation-free steady state (ROADMAP item 2).
func (e *Env) MinSlackPool() *packing.Pool {
	e.poolOnce.Do(func() { e.pool = packing.NewPool() })
	return e.pool
}

// ReplayCorpus returns the shared fabricated Google-usage corpus the
// trace scenarios decode, built once per Env so fixture generation
// never lands in a timed section. Same scale → byte-identical bytes.
func (e *Env) ReplayCorpus() ([]byte, error) {
	e.corpusOnce.Do(func() {
		cfg := trace.FabConfig{VMs: 200, Steps: 96, Seed: 2010, GapProb: 0.01, EmptyProb: 0.01}
		if e.scale == ScaleQuick {
			cfg.VMs, cfg.Steps = 40, 24
		}
		var buf bytes.Buffer
		_, e.corpusErr = trace.WriteGoogleUsage(&buf, cfg)
		e.corpus = buf.Bytes()
	})
	return e.corpus, e.corpusErr
}

// ChaosProfile returns the deterministic fault profile of the chaos
// scenario — the same fault classes as testdata/faults/smoke.json, so
// the benchmark tracks the cost of a degraded run with sensor noise,
// DVFS failures, migration aborts, optimizer errors and one crash.
func (e *Env) ChaosProfile() fault.Profile {
	return fault.Profile{
		Seed:      42,
		Sensor:    fault.SensorProfile{DropoutProb: 0.1, OutlierProb: 0.05},
		DVFS:      fault.DVFSProfile{FailProb: 0.05},
		Migration: fault.MigrationProfile{AbortProb: 0.3, MaxRetries: 2},
		Optimizer: fault.OptimizerProfile{ErrorProb: 0.1},
		Crash:     fault.CrashProfile{At: []fault.CrashSpec{{Step: 8, Policy: fault.Evacuate}}},
	}
}
