package bench

import (
	"fmt"
	"io"
	"math"

	"vdcpower/internal/stats"
)

// Class is the verdict on one scenario's shift between two sessions.
type Class string

// Verdict classes.
const (
	ClassUnchanged Class = "unchanged"
	ClassImproved  Class = "improved"
	ClassRegressed Class = "regressed"
	// ClassAdded/ClassRemoved mark scenarios present in only one
	// document; they never gate (a new scenario has no baseline).
	ClassAdded   Class = "added"
	ClassRemoved Class = "removed"
)

// allocFloor is the median allocs/op below which alloc shifts are
// ignored: at a handful of allocations per op, one incidental runtime
// allocation is a large ratio but not a regression.
const allocFloor = 64

// hotAllocFloor is the tightened floor for the declared hot paths: they
// run allocation-free in steady state (ROADMAP item 2), so their per-op
// budget is a small fixed setup cost and even a few extra allocations
// signal a reuse regression.
const hotAllocFloor = 8

// allocFloorFor picks the alloc-shift floor for a scenario.
func allocFloorFor(name string) float64 {
	switch name {
	case "mpc/solve", "packing/minslack", "queueing/mva":
		return hotAllocFloor
	}
	return allocFloor
}

// Thresholds tune the gate. A scenario regresses only when its shift is
// both LARGE (median ratio beyond MinShift) and SIGNIFICANT
// (Mann-Whitney p below Alpha); each test alone is too twitchy — ratios
// flap on noisy medians with few reps, and significance alone flags
// 1%-but-real shifts nobody should block a merge over.
type Thresholds struct {
	// MinShift is the relative median shift that matters: 0.2 flags
	// >20% slower as regressed and >20% faster (in ratio terms,
	// new/old < 1/1.2) as improved.
	MinShift float64
	// Alpha is the Mann-Whitney significance level.
	Alpha float64
	// GateAllocs extends the gate to allocs/op (same MinShift/Alpha).
	// Alloc counts are nearly machine-independent, so CI can gate them
	// tightly even when timings cross hardware.
	GateAllocs bool
}

// DefaultThresholds suit same-machine comparisons; CI across unknown
// hardware should pass something far more generous (see the perf-smoke
// job).
func DefaultThresholds() Thresholds {
	return Thresholds{MinShift: 0.20, Alpha: 0.01}
}

// Delta is the compared record of one scenario.
type Delta struct {
	Name  string
	Class Class // overall verdict (time, plus allocs when gated)

	TimeClass                Class
	OldMedianNs, NewMedianNs float64
	Ratio                    float64 // new/old median ns
	P                        float64 // Mann-Whitney two-sided p on the ns samples

	AllocClass           Class
	OldAllocs, NewAllocs float64 // median allocs/op
	AllocRatio           float64
	AllocP               float64
}

// Comparison is the scenario-by-scenario verdict on two documents.
type Comparison struct {
	OldLabel, NewLabel string
	Th                 Thresholds
	Deltas             []Delta
}

// Compare classifies every scenario of new against old. Both documents
// must be valid and share a scale; scenarios are matched by name, with
// old-only scenarios reported as removed and new-only as added.
func Compare(oldDoc, newDoc *Doc, th Thresholds) (*Comparison, error) {
	if err := oldDoc.Validate(); err != nil {
		return nil, err
	}
	if err := newDoc.Validate(); err != nil {
		return nil, err
	}
	if oldDoc.Scale != newDoc.Scale {
		return nil, fmt.Errorf("bench: cannot compare scale %q (%s) against scale %q (%s): fixture sizes differ",
			oldDoc.Scale, oldDoc.Label, newDoc.Scale, newDoc.Label)
	}
	if th.MinShift <= 0 {
		th.MinShift = DefaultThresholds().MinShift
	}
	if th.Alpha <= 0 {
		th.Alpha = DefaultThresholds().Alpha
	}
	oldByName := map[string]*ScenarioResult{}
	for i := range oldDoc.Scenarios {
		oldByName[oldDoc.Scenarios[i].Name] = &oldDoc.Scenarios[i]
	}
	c := &Comparison{OldLabel: oldDoc.Label, NewLabel: newDoc.Label, Th: th}
	seen := map[string]bool{}
	for i := range newDoc.Scenarios {
		ns := &newDoc.Scenarios[i]
		seen[ns.Name] = true
		prev, ok := oldByName[ns.Name]
		if !ok {
			c.Deltas = append(c.Deltas, Delta{
				Name: ns.Name, Class: ClassAdded, TimeClass: ClassAdded, AllocClass: ClassAdded,
				NewMedianNs: stats.Median(ns.NsPerOp), NewAllocs: stats.Median(ns.AllocsPerOp),
				Ratio: math.NaN(), P: 1, AllocRatio: math.NaN(), AllocP: 1,
			})
			continue
		}
		d := Delta{Name: ns.Name}
		d.TimeClass, d.Ratio, d.P = classify(prev.NsPerOp, ns.NsPerOp, th, 0)
		d.OldMedianNs, d.NewMedianNs = stats.Median(prev.NsPerOp), stats.Median(ns.NsPerOp)
		d.AllocClass, d.AllocRatio, d.AllocP = classify(prev.AllocsPerOp, ns.AllocsPerOp, th, allocFloorFor(ns.Name))
		d.OldAllocs, d.NewAllocs = stats.Median(prev.AllocsPerOp), stats.Median(ns.AllocsPerOp)
		d.Class = d.TimeClass
		if th.GateAllocs && d.AllocClass == ClassRegressed {
			d.Class = ClassRegressed
		}
		c.Deltas = append(c.Deltas, d)
	}
	for i := range oldDoc.Scenarios {
		prev := &oldDoc.Scenarios[i]
		if !seen[prev.Name] {
			c.Deltas = append(c.Deltas, Delta{
				Name: prev.Name, Class: ClassRemoved, TimeClass: ClassRemoved, AllocClass: ClassRemoved,
				OldMedianNs: stats.Median(prev.NsPerOp), OldAllocs: stats.Median(prev.AllocsPerOp),
				Ratio: math.NaN(), P: 1, AllocRatio: math.NaN(), AllocP: 1,
			})
		}
	}
	return c, nil
}

// classify runs the two-pronged test on one sample column. floor, when
// positive, declares shifts irrelevant while both medians sit below it
// (used for alloc counts; timings pass 0).
func classify(oldS, newS []float64, th Thresholds, floor float64) (Class, float64, float64) {
	om, nm := stats.Median(oldS), stats.Median(newS)
	if floor > 0 && om < floor && nm < floor {
		return ClassUnchanged, ratioOf(om, nm), 1
	}
	ratio := ratioOf(om, nm)
	_, p := stats.MannWhitney(oldS, newS)
	switch {
	case p < th.Alpha && ratio > 1+th.MinShift:
		return ClassRegressed, ratio, p
	case p < th.Alpha && ratio < 1/(1+th.MinShift):
		return ClassImproved, ratio, p
	}
	return ClassUnchanged, ratio, p
}

// ratioOf guards the new/old median ratio against zero denominators.
func ratioOf(om, nm float64) float64 {
	switch {
	//lint:ignore floatcompare guarding exact zero medians, not near-equality
	case om == 0 && nm == 0:
		return 1
	//lint:ignore floatcompare guarding an exact zero denominator
	case om == 0:
		return math.Inf(1)
	}
	return nm / om
}

// Regressions returns the gating deltas (Class == regressed).
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Class == ClassRegressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteText renders the comparison as an aligned table followed by a
// one-line summary.
func (c *Comparison) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "comparing %s -> %s (shift > %.0f%%, alpha %g",
		c.OldLabel, c.NewLabel, 100*c.Th.MinShift, c.Th.Alpha); err != nil {
		return err
	}
	if c.Th.GateAllocs {
		if _, err := fmt.Fprint(w, ", allocs gated"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, ")"); err != nil {
		return err
	}
	counts := map[Class]int{}
	for _, d := range c.Deltas {
		counts[d.Class]++
		var err error
		switch d.Class {
		case ClassAdded:
			_, err = fmt.Fprintf(w, "  %-28s %-10s %14s -> %11.3fms\n", d.Name, d.Class, "(none)", d.NewMedianNs/1e6)
		case ClassRemoved:
			_, err = fmt.Fprintf(w, "  %-28s %-10s %11.3fms -> %14s\n", d.Name, d.Class, d.OldMedianNs/1e6, "(none)")
		default:
			_, err = fmt.Fprintf(w, "  %-28s %-10s %11.3fms -> %11.3fms  x%-6.3f p=%-8.3g allocs x%.3f\n",
				d.Name, d.Class, d.OldMedianNs/1e6, d.NewMedianNs/1e6, d.Ratio, d.P, d.AllocRatio)
		}
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "verdict: %d improved, %d regressed, %d unchanged, %d added, %d removed\n",
		counts[ClassImproved], counts[ClassRegressed], counts[ClassUnchanged], counts[ClassAdded], counts[ClassRemoved])
	return err
}
