package bench

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// makeScenario builds a ScenarioResult from ns samples, with alloc and
// byte columns defaulting to a constant well above the alloc floor.
func makeScenario(name string, ns []float64, allocs ...[]float64) ScenarioResult {
	al := make([]float64, len(ns))
	for i := range al {
		al[i] = 1000
	}
	if len(allocs) > 0 {
		al = allocs[0]
	}
	by := make([]float64, len(ns))
	for i := range by {
		by[i] = 1 << 20
	}
	return ScenarioResult{Name: name, Warmup: 2, Reps: len(ns), NsPerOp: ns, AllocsPerOp: al, BytesPerOp: by}
}

func makeDoc(label string, scale Scale, scs ...ScenarioResult) *Doc {
	return &Doc{Schema: SchemaVersion, Label: label, Scale: string(scale), Warmup: 2, Reps: 8, Scenarios: scs}
}

func constSamples(v float64, jitter []float64) []float64 {
	out := make([]float64, len(jitter))
	for i, j := range jitter {
		out[i] = v + j
	}
	return out
}

// tightJitter keeps samples distinct (Mann-Whitney dislikes pure ties)
// but within a fraction of a percent of the nominal value.
var tightJitter = []float64{0, 1, 2, 3, 4, 5, 6, 7}

func TestCompareKnownShifts(t *testing.T) {
	oldDoc := makeDoc("old", ScaleQuick,
		makeScenario("a/steady", constSamples(1e6, tightJitter)),
		makeScenario("b/faster", constSamples(1e6, tightJitter)),
		makeScenario("c/slower", constSamples(1e6, tightJitter)),
	)
	newDoc := makeDoc("new", ScaleQuick,
		makeScenario("a/steady", constSamples(1e6+3, tightJitter)),
		makeScenario("b/faster", constSamples(0.4e6, tightJitter)), // 2.5x faster
		makeScenario("c/slower", constSamples(2e6, tightJitter)),   // 2x slower
	)
	c, err := Compare(oldDoc, newDoc, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Class{}
	for _, d := range c.Deltas {
		got[d.Name] = d.Class
	}
	want := map[string]Class{"a/steady": ClassUnchanged, "b/faster": ClassImproved, "c/slower": ClassRegressed}
	for name, cls := range want {
		if got[name] != cls {
			t.Errorf("%s classified %s, want %s", name, got[name], cls)
		}
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "c/slower" {
		t.Errorf("Regressions() = %+v, want exactly c/slower", regs)
	}
	if r := regs[0].Ratio; r < 1.9 || r > 2.1 {
		t.Errorf("c/slower ratio = %v, want ~2", r)
	}
	if regs[0].P >= DefaultThresholds().Alpha {
		t.Errorf("c/slower p = %v, not significant", regs[0].P)
	}

	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"c/slower", "regressed", "1 improved, 1 regressed, 1 unchanged"} {
		if !strings.Contains(out, frag) {
			t.Errorf("WriteText output missing %q:\n%s", frag, out)
		}
	}
}

// TestCompareNoFalsePositivesAtHighVariance is the gate's calibration
// test: both columns drawn from the same heavy-noise distribution must
// (almost) never be flagged. The two-pronged test — large AND
// significant — is what keeps the false-positive rate below alpha even
// when run-to-run variance is ~40% of the median.
func TestCompareNoFalsePositivesAtHighVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(20080806))
	const trials = 200
	flagged := 0
	th := DefaultThresholds()
	for trial := 0; trial < trials; trial++ {
		draw := func() []float64 {
			xs := make([]float64, 8)
			for i := range xs {
				// Log-normal-ish: median 1e6, multiplicative noise up to ~2x.
				xs[i] = 1e6 * math.Exp(0.4*rng.NormFloat64())
			}
			return xs
		}
		oldDoc := makeDoc("old", ScaleQuick, makeScenario("noisy/sc", draw()))
		newDoc := makeDoc("new", ScaleQuick, makeScenario("noisy/sc", draw()))
		c, err := Compare(oldDoc, newDoc, th)
		if err != nil {
			t.Fatal(err)
		}
		if c.Deltas[0].Class != ClassUnchanged {
			flagged++
		}
	}
	// alpha = 0.01 two-sided bounds the expected flag rate at ~2/200
	// before the ratio prong tightens it further; allow a little slack.
	if flagged > 4 {
		t.Errorf("%d/%d same-distribution trials flagged; the gate is too twitchy", flagged, trials)
	}
}

func TestCompareAllocGatingAndFloor(t *testing.T) {
	ns := constSamples(1e6, tightJitter)
	// Alloc regression: 1000 -> 3000 allocs/op (above the floor).
	oldDoc := makeDoc("old", ScaleQuick,
		makeScenario("alloc/high", ns, constSamples(1000, tightJitter)),
		makeScenario("alloc/tiny", ns, constSamples(4, []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75})),
	)
	newDoc := makeDoc("new", ScaleQuick,
		makeScenario("alloc/high", ns, constSamples(3000, tightJitter)),
		// 4 -> 16 allocs/op: a 4x ratio, but both medians sit under the
		// floor, so it is noise, not a regression.
		makeScenario("alloc/tiny", ns, constSamples(16, []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75})),
	)

	// Without GateAllocs the overall class follows time only.
	th := DefaultThresholds()
	c, err := Compare(oldDoc, newDoc, th)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Deltas {
		if d.Class != ClassUnchanged {
			t.Errorf("%s: allocs gated the overall class without GateAllocs: %s", d.Name, d.Class)
		}
	}
	if c.Deltas[0].AllocClass != ClassRegressed {
		t.Errorf("alloc/high AllocClass = %s, want regressed", c.Deltas[0].AllocClass)
	}

	th.GateAllocs = true
	c, err = Compare(oldDoc, newDoc, th)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Delta{}
	for _, d := range c.Deltas {
		byName[d.Name] = d
	}
	if byName["alloc/high"].Class != ClassRegressed {
		t.Errorf("alloc/high not gated: %s", byName["alloc/high"].Class)
	}
	if d := byName["alloc/tiny"]; d.Class != ClassUnchanged || d.AllocClass != ClassUnchanged {
		t.Errorf("alloc/tiny below the floor still flagged: %s/%s", d.Class, d.AllocClass)
	}
}

func TestCompareAddedRemovedAndScaleMismatch(t *testing.T) {
	ns := constSamples(1e6, tightJitter)
	oldDoc := makeDoc("old", ScaleQuick, makeScenario("keep/sc", ns), makeScenario("gone/sc", ns))
	newDoc := makeDoc("new", ScaleQuick, makeScenario("keep/sc", ns), makeScenario("fresh/sc", ns))
	c, err := Compare(oldDoc, newDoc, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Class{}
	for _, d := range c.Deltas {
		got[d.Name] = d.Class
	}
	if got["fresh/sc"] != ClassAdded || got["gone/sc"] != ClassRemoved || got["keep/sc"] != ClassUnchanged {
		t.Errorf("added/removed handling wrong: %v", got)
	}
	if len(c.Regressions()) != 0 {
		t.Error("added/removed scenarios must never gate")
	}

	fullDoc := makeDoc("full", ScaleFull, makeScenario("keep/sc", ns))
	if _, err := Compare(oldDoc, fullDoc, DefaultThresholds()); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Errorf("cross-scale compare not refused: %v", err)
	}

	bad := makeDoc("bad", ScaleQuick)
	if _, err := Compare(bad, newDoc, DefaultThresholds()); err == nil {
		t.Error("invalid old document accepted")
	}
	if _, err := Compare(oldDoc, bad, DefaultThresholds()); err == nil {
		t.Error("invalid new document accepted")
	}
}

func TestCompareZeroThresholdsGetDefaults(t *testing.T) {
	ns := constSamples(1e6, tightJitter)
	oldDoc := makeDoc("old", ScaleQuick, makeScenario("a/sc", ns))
	newDoc := makeDoc("new", ScaleQuick, makeScenario("a/sc", ns))
	c, err := Compare(oldDoc, newDoc, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultThresholds()
	if c.Th.MinShift != def.MinShift || c.Th.Alpha != def.Alpha {
		t.Errorf("zero thresholds not defaulted: %+v", c.Th)
	}
}

func TestRatioOf(t *testing.T) {
	if r := ratioOf(0, 0); r != 1 {
		t.Errorf("ratioOf(0,0) = %v", r)
	}
	if r := ratioOf(0, 5); !math.IsInf(r, 1) {
		t.Errorf("ratioOf(0,5) = %v", r)
	}
	if r := ratioOf(2, 6); r != 3 {
		t.Errorf("ratioOf(2,6) = %v", r)
	}
}

// failAfter fails every write after the first n calls, so looping n over
// a range drives every error-return branch of a renderer.
type failAfter struct {
	n     int
	calls int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.calls++
	if f.calls > f.n {
		return 0, errShortWrite
	}
	return len(p), nil
}

var errShortWrite = errors.New("short write")

func TestWriteTextPropagatesWriterErrors(t *testing.T) {
	ns := constSamples(1e6, tightJitter)
	oldDoc := makeDoc("old", ScaleQuick, makeScenario("keep/sc", ns), makeScenario("gone/sc", ns))
	newDoc := makeDoc("new", ScaleQuick, makeScenario("keep/sc", ns), makeScenario("fresh/sc", ns))
	th := DefaultThresholds()
	th.GateAllocs = true
	c, err := Compare(oldDoc, newDoc, th)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy writer renders all three row shapes plus the gated header.
	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if out := sb.String(); !strings.Contains(out, "allocs gated") || !strings.Contains(out, "(none)") {
		t.Errorf("render missing gated header or added/removed rows:\n%s", out)
	}
	counter := &failAfter{n: 1 << 30}
	if err := c.WriteText(counter); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < counter.calls; n++ {
		if err := c.WriteText(&failAfter{n: n}); !errors.Is(err, errShortWrite) {
			t.Errorf("failure at write %d not propagated: %v", n, err)
		}
	}
}
