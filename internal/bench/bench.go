// Package bench is the measurement subsystem of the repository: a
// registry of benchmark scenarios wrapping the paper's figures and the
// DESIGN.md ablations, a sampler that runs each scenario with warmup and
// repeated measured reps, robust statistics over the rep samples
// (median, MAD, bootstrap confidence intervals), a versioned JSON
// result schema (BENCH_<label>.json), and a compare engine that
// classifies two result files scenario-by-scenario as improved,
// regressed or unchanged — the perf-regression gate CI runs on every
// change (see cmd/vdcbench).
//
// Three rules keep the numbers honest:
//
//  1. One code path. The root bench_test.go benchmarks are thin
//     adapters over this registry, so `go test -bench` and vdcbench
//     time identical work.
//
//  2. Setup is never timed. Shared fixtures (the Fig. 6 workload
//     trace) are built once per Env via sync.Once and warmed by
//     Scenario.Prepare before the clock starts.
//
//  3. The wall clock lives at one edge. Everything in this package is
//     deterministic except the sampler's default clock in sampler.go;
//     vdclint's determinism analyzer enforces that no other file reads
//     wall time, and tests inject a logical clock.
//
// A shift only counts as a regression when it is both large (median
// ratio beyond the configured threshold) and statistically significant
// (Mann-Whitney U below alpha) — run-to-run noise produces neither.
package bench

import (
	"fmt"
	"regexp"
	"sort"
)

// Metrics are the headline quantities a scenario reports per measured
// rep, keyed by a short unit-suffixed name ("saving-pct", "spans").
// They carry figure results and telemetry counters alongside the
// sampler's timing columns.
type Metrics map[string]float64

// Keys returns the metric names sorted for deterministic rendering.
func (m Metrics) Keys() []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Scenario is one registered benchmark: a named unit of repeatable work
// whose single execution is the timed op.
type Scenario struct {
	// Name is the slash-namespaced identity ("fig6/energy-per-vm"); it
	// keys results in BENCH_*.json and must match scenarioNameRe.
	Name string
	// Doc is the one-line description shown by vdcbench -list.
	Doc string
	// Prepare, when non-nil, warms shared fixtures before any timed
	// work (never measured). It must be idempotent: every rep of every
	// scenario sharing a fixture may call it.
	Prepare func(*Env) error
	// Run executes one measured iteration against the environment and
	// returns the scenario's headline metrics.
	Run func(*Env) (Metrics, error)
}

// scenarioNameRe constrains names to lowercase slug segments separated
// by slashes, so names are stable JSON keys and safe file-name stems.
var scenarioNameRe = regexp.MustCompile(`^[a-z0-9]+(?:[-.][a-z0-9]+)*(?:/[a-z0-9]+(?:[-.][a-z0-9]+)*)*$`)

// Registry is an ordered, name-unique collection of scenarios.
type Registry struct {
	order  []*Scenario
	byName map[string]*Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Scenario{}}
}

// Register adds sc, rejecting invalid names, duplicate names and nil
// Run functions.
func (r *Registry) Register(sc *Scenario) error {
	if sc == nil || sc.Run == nil {
		return fmt.Errorf("bench: scenario without a Run function")
	}
	if !scenarioNameRe.MatchString(sc.Name) {
		return fmt.Errorf("bench: invalid scenario name %q", sc.Name)
	}
	if _, dup := r.byName[sc.Name]; dup {
		return fmt.Errorf("bench: duplicate scenario %q", sc.Name)
	}
	r.order = append(r.order, sc)
	r.byName[sc.Name] = sc
	return nil
}

// mustRegister is the registration form used by the static Default
// registry, whose entries are compile-time constants.
func (r *Registry) mustRegister(sc *Scenario) {
	if err := r.Register(sc); err != nil {
		panic(err) // must* helper: exempt from panicpolicy by convention
	}
}

// All returns the scenarios in registration order. The slice is shared;
// callers must not mutate it.
func (r *Registry) All() []*Scenario {
	return r.order
}

// Get returns the scenario with the given name.
func (r *Registry) Get(name string) (*Scenario, bool) {
	sc, ok := r.byName[name]
	return sc, ok
}

// Match returns the scenarios whose names match the anchored regular
// expression pattern, in registration order. An empty pattern selects
// everything.
func (r *Registry) Match(pattern string) ([]*Scenario, error) {
	if pattern == "" {
		return r.All(), nil
	}
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("bench: bad scenario pattern %q: %v", pattern, err)
	}
	var out []*Scenario
	for _, sc := range r.order {
		if re.MatchString(sc.Name) {
			out = append(out, sc)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: pattern %q matches no scenario", pattern)
	}
	return out, nil
}

// WithSlowdown returns a copy of sc whose Run executes the original
// factor times per op — an exact, work-based slowdown multiplier. It
// exists to self-test the regression gate end to end (vdcbench
// -slowdown): a gate that cannot flag a deliberate 2x slowdown is not
// protecting anything.
func WithSlowdown(sc *Scenario, factor int) *Scenario {
	if factor <= 1 {
		return sc
	}
	slow := *sc
	slow.Run = func(e *Env) (Metrics, error) {
		var last Metrics
		for i := 0; i < factor; i++ {
			m, err := sc.Run(e)
			if err != nil {
				return nil, err
			}
			last = m
		}
		return last, nil
	}
	return &slow
}
