// The sampler is the bench package's only wall-clock edge: wallNow below
// is the one permitted direct clock read (vdclint's determinism and
// telemetry analyzers enforce that no other file in internal/bench
// touches time.Now/Since/Until). Everything downstream of the recorded
// samples — statistics, schema, compare — is pure.
package bench

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"time"

	"vdcpower/internal/stats"
)

// Defaults applied when Options leave a field zero.
const (
	DefaultWarmup     = 2
	DefaultReps       = 10
	bootstrapSamples  = 1000
	bootstrapConf     = 0.95
	bootstrapSeedSalt = 0x76646362 // "vdcb": decouples the CI rng from other seeded streams
)

// Options configure one measurement.
type Options struct {
	// Warmup is the number of unmeasured runs after Prepare (negative
	// means none, zero selects DefaultWarmup). Warmup reps absorb
	// first-touch effects: lazy initialization, cache population, JIT'd
	// branch predictors.
	Warmup int
	// Reps is the number of measured repetitions (zero selects
	// DefaultReps). Robust statistics need several: below ~8 reps the
	// Mann-Whitney gate loses resolution.
	Reps int
	// Clock returns monotonic seconds. Nil selects the wall clock —
	// the production edge; tests inject a logical clock to make the
	// sampler itself deterministic.
	Clock func() float64
	// BeforeTimed/AfterTimed, when set, bracket the measured reps
	// (after warmup). The driver hangs per-scenario CPU/heap profiling
	// off them so profiles exclude fixture setup and warmup.
	BeforeTimed func() error
	AfterTimed  func()
}

// wallNow is the default sampler clock — wall time in seconds on the
// runtime's monotonic clock. These are the only direct clock reads the
// determinism/telemetry analyzers permit in this package (sampler.go is
// the registered wall-clock edge).
func wallNow() float64 {
	return time.Since(samplerStart).Seconds()
}

// samplerStart anchors wallNow on the monotonic clock.
var samplerStart = time.Now()

// Measure runs sc against env with warmup and repeated measured reps
// and returns the per-rep samples with their robust summary. Memory
// columns come from the runtime's allocation counters (monotonic, so GC
// timing cannot skew them); the headline Metrics are taken from the
// final rep.
func Measure(sc *Scenario, env *Env, opt Options) (ScenarioResult, error) {
	if opt.Reps == 0 {
		opt.Reps = DefaultReps
	}
	if opt.Warmup == 0 {
		opt.Warmup = DefaultWarmup
	}
	if opt.Warmup < 0 {
		opt.Warmup = 0
	}
	if opt.Reps < 1 {
		return ScenarioResult{}, fmt.Errorf("bench: %s: reps must be >= 1", sc.Name)
	}
	clock := opt.Clock
	if clock == nil {
		clock = wallNow
	}

	if sc.Prepare != nil {
		if err := sc.Prepare(env); err != nil {
			return ScenarioResult{}, fmt.Errorf("bench: %s: prepare: %w", sc.Name, err)
		}
	}
	for i := 0; i < opt.Warmup; i++ {
		if _, err := sc.Run(env); err != nil {
			return ScenarioResult{}, fmt.Errorf("bench: %s: warmup rep %d: %w", sc.Name, i, err)
		}
	}

	if opt.BeforeTimed != nil {
		if err := opt.BeforeTimed(); err != nil {
			return ScenarioResult{}, fmt.Errorf("bench: %s: before-timed hook: %w", sc.Name, err)
		}
	}
	if opt.AfterTimed != nil {
		defer opt.AfterTimed()
	}

	res := ScenarioResult{
		Name:        sc.Name,
		Doc:         sc.Doc,
		Warmup:      opt.Warmup,
		Reps:        opt.Reps,
		NsPerOp:     make([]float64, 0, opt.Reps),
		AllocsPerOp: make([]float64, 0, opt.Reps),
		BytesPerOp:  make([]float64, 0, opt.Reps),
	}
	var ms0, ms1 runtime.MemStats
	for i := 0; i < opt.Reps; i++ {
		runtime.ReadMemStats(&ms0)
		t0 := clock()
		metrics, err := sc.Run(env)
		t1 := clock()
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("bench: %s: rep %d: %w", sc.Name, i, err)
		}
		res.NsPerOp = append(res.NsPerOp, (t1-t0)*1e9)
		res.AllocsPerOp = append(res.AllocsPerOp, float64(ms1.Mallocs-ms0.Mallocs))
		res.BytesPerOp = append(res.BytesPerOp, float64(ms1.TotalAlloc-ms0.TotalAlloc))
		if i == opt.Reps-1 && len(metrics) > 0 {
			res.Metrics = map[string]float64(metrics)
		}
	}
	res.summarize(bootstrapRNG(sc.Name))
	return res, nil
}

// bootstrapRNG derives a deterministic per-scenario rng for the
// confidence-interval bootstrap, so re-summarizing the same samples
// reproduces the same interval.
func bootstrapRNG(name string) *rand.Rand {
	h := fnv.New64a()
	//lint:ignore errcheck hash.Hash.Write never returns an error
	h.Write([]byte(name))
	return rand.New(rand.NewSource(int64(h.Sum64() ^ bootstrapSeedSalt)))
}

// summarize fills the robust-summary columns from the raw samples.
func (r *ScenarioResult) summarize(rng *rand.Rand) {
	r.MedianNs = stats.Median(r.NsPerOp)
	r.MADNs = stats.MAD(r.NsPerOp)
	r.CI95LoNs, r.CI95HiNs = stats.BootstrapCI(r.NsPerOp, stats.Median, bootstrapSamples, bootstrapConf, rng)
}
