package bench

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"vdcpower/internal/appsim"
	"vdcpower/internal/dcsim"
	"vdcpower/internal/devs"
	"vdcpower/internal/fault"
	"vdcpower/internal/guard"
	"vdcpower/internal/lint"
	"vdcpower/internal/mat"
	"vdcpower/internal/mpc"
	"vdcpower/internal/obs"
	"vdcpower/internal/optimizer"
	"vdcpower/internal/packing"
	"vdcpower/internal/queueing"
	"vdcpower/internal/stats"
	"vdcpower/internal/sysid"
	"vdcpower/internal/telemetry"
	"vdcpower/internal/testbed"
	"vdcpower/internal/trace"
	"vdcpower/internal/units"
)

// Default builds the full scenario registry: the paper's figures
// (Section VII), the DESIGN.md ablations, the telemetry-overhead pair,
// the chaos profile and the vdclint pass. The registry is rebuilt per
// call — scenarios are stateless closures, so this is cheap and keeps
// callers isolated.
func Default() *Registry {
	r := NewRegistry()
	r.mustRegister(&Scenario{
		Name: "fig2/response-time",
		Doc:  "Figure 2: all applications held at the 1000 ms set point",
		Run:  runFig2,
	})
	r.mustRegister(&Scenario{
		Name: "fig3/surge",
		Doc:  "Figure 3: workload surge — recovery error and cluster power rise",
		Run:  runFig3,
	})
	r.mustRegister(&Scenario{
		Name: "fig4/concurrency-sweep",
		Doc:  "Figure 4: set-point tracking across unidentified concurrency levels",
		Run:  runFig4,
	})
	r.mustRegister(&Scenario{
		Name: "fig5/setpoint-sweep",
		Doc:  "Figure 5: tracking across set points",
		Run:  runFig5,
	})
	r.mustRegister(&Scenario{
		Name:    "fig6/energy-per-vm",
		Doc:     "Figure 6: IPAC vs pMapper energy per VM across data-center sizes",
		Prepare: prepareTrace,
		Run:     runFig6,
	})
	r.mustRegister(&Scenario{
		Name:    "fig6/telemetry-off",
		Doc:     "one Fig. 6 IPAC run with tracing disabled (nil track)",
		Prepare: prepareTrace,
		Run:     runTelemetryOff,
	})
	r.mustRegister(&Scenario{
		Name:    "fig6/telemetry-on",
		Doc:     "the same run with a span track recording every pass",
		Prepare: prepareTrace,
		Run:     runTelemetryOn,
	})
	r.mustRegister(&Scenario{
		Name:    "fig6/obs-on",
		Doc:     "the same run with a controller-health scorecard observing every step",
		Prepare: prepareTrace,
		Run:     runObsOn,
	})
	r.mustRegister(&Scenario{
		Name:    "fig6/chaos",
		Doc:     "the same run degraded under the deterministic chaos profile",
		Prepare: prepareTrace,
		Run:     runChaos,
	})
	r.mustRegister(&Scenario{
		Name:    "ablation/dvfs",
		Doc:     "ablation A: DVFS contribution to IPAC's saving",
		Prepare: prepareTrace,
		Run:     runAblationDVFS,
	})
	r.mustRegister(&Scenario{
		Name:    "ablation/watchdog",
		Doc:     "ablation D: overload steps avoided by the on-demand reliever",
		Prepare: prepareTrace,
		Run:     runAblationWatchdog,
	})
	r.mustRegister(&Scenario{
		Name:    "ablation/migration-cost",
		Doc:     "ablation C: migrations avoided by a bandwidth-priced cost policy",
		Prepare: prepareTrace,
		Run:     runAblationMigrationCost,
	})
	r.mustRegister(&Scenario{
		Name: "ablation/economic-mpc",
		Doc:  "ablation E: pure-tracking MPC cost vs the level-penalty extension",
		Run:  runAblationEconomicMPC,
	})
	r.mustRegister(&Scenario{
		Name: "mpc/solve",
		Doc:  "100 closed-loop MPC periods (Eq. 2 solve per period)",
		Run:  runMPCSolve,
	})
	r.mustRegister(&Scenario{
		Name: "queueing/mva",
		Doc:  "exact MVA solves across a population sweep of a 3-tier network",
		Run:  runQueueingMVA,
	})
	r.mustRegister(&Scenario{
		Name: "packing/minslack",
		Doc:  "Minimum Slack branch-and-bound vs FFD on the awkward fixture",
		Run:  runPackingMinSlack,
	})
	r.mustRegister(&Scenario{
		Name: "packing/ffd",
		Doc:  "First Fit Decreasing over a 200-item seeded random instance",
		Run:  runPackingFFD,
	})
	r.mustRegister(&Scenario{
		Name: "lint/module",
		Doc:  "vdclint: load, type-check and analyze packages from source",
		Run:  runLintModule,
	})
	r.mustRegister(&Scenario{
		Name:    "trace/ingest",
		Doc:     "stream-decode and grid-resample the fabricated Google-usage corpus",
		Prepare: prepareReplayCorpus,
		Run:     runTraceIngest,
	})
	r.mustRegister(&Scenario{
		Name:    "trace/replay",
		Doc:     "the same corpus replayed through a distortion pipeline into a workload trace",
		Prepare: prepareReplayCorpus,
		Run:     runTraceReplay,
	})
	r.mustRegister(&Scenario{
		Name: "guard/wedge",
		Doc:  "bounded drains over a PS queue under submit/actuation churn (the ROADMAP item 6 shape)",
		Run:  runGuardWedge,
	})
	return r
}

// prepareTrace warms the shared Fig. 6 trace fixture so trace
// generation never lands in a timed section.
func prepareTrace(e *Env) error {
	_, err := e.Trace()
	return err
}

// setpointAbsErr folds |mean - sp| across app rows into a
// milliseconds-scaled mean absolute error.
func setpointAbsErr(rows []testbed.AppStat, sp float64) float64 {
	sum := 0.0
	for _, r := range rows {
		sum += math.Abs(r.Mean - sp)
	}
	return 1000 * sum / float64(len(rows))
}

func runFig2(e *Env) (Metrics, error) {
	rows, err := testbed.Fig2(e.TestbedConfig())
	if err != nil {
		return nil, err
	}
	return Metrics{"ms-mean-abs-err": setpointAbsErr(rows, 1.0)}, nil
}

func runFig3(e *Env) (Metrics, error) {
	res, err := testbed.Fig3(e.TestbedConfig())
	if err != nil {
		return nil, err
	}
	// Recovery error: distance from the set point late in the surge.
	var late []float64
	for _, p := range res.ResponseTime {
		if p.Time >= 900 && p.Time < 1200 {
			late = append(late, p.Value)
		}
	}
	window := func(lo, hi float64) []float64 {
		var xs []float64
		for _, p := range res.Power {
			if p.Time >= lo && p.Time < hi {
				xs = append(xs, p.Value)
			}
		}
		return xs
	}
	rise := stats.Mean(window(800, 1200)) - stats.Mean(window(300, 600))
	return Metrics{
		"ms-recovery-err":    1000 * math.Abs(stats.Mean(late)-1.0),
		"surge-power-rise-w": rise,
	}, nil
}

func runFig4(e *Env) (Metrics, error) {
	rows, err := testbed.Fig4(e.TestbedConfig(), e.ConcurrencyLevels())
	if err != nil {
		return nil, err
	}
	return Metrics{"ms-mean-abs-err": setpointAbsErr(rows, 1.0)}, nil
}

func runFig5(e *Env) (Metrics, error) {
	sps := e.Setpoints()
	rows, err := testbed.Fig5(e.TestbedConfig(), sps)
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for i, r := range rows {
		sum += math.Abs(r.Mean - sps[i])
	}
	return Metrics{"ms-mean-abs-err": 1000 * sum / float64(len(sps))}, nil
}

func runFig6(e *Env) (Metrics, error) {
	tr, err := e.Trace()
	if err != nil {
		return nil, err
	}
	points, err := dcsim.Fig6(tr, e.Fig6Sizes(), []func() optimizer.Consolidator{
		func() optimizer.Consolidator { return optimizer.NewIPAC() },
		func() optimizer.Consolidator { return optimizer.NewPMapper() },
	})
	if err != nil {
		return nil, err
	}
	saving := 0.0
	for _, p := range points {
		saving += 1 - p.PerVMWh["IPAC"]/p.PerVMWh["pMapper"]
	}
	return Metrics{"saving-pct": 100 * saving / float64(len(points))}, nil
}

// fig6Run is the single-run unit shared by the telemetry pair, the
// chaos scenario, and the scorecard-overhead scenario.
func fig6Run(e *Env, tk *telemetry.Track, inj *fault.Injector, sc *obs.Scorecard) (dcsim.Result, dcsim.Config, error) {
	tr, err := e.Trace()
	if err != nil {
		return dcsim.Result{}, dcsim.Config{}, err
	}
	cfg := dcsim.DefaultConfig(tr, e.DCVMs(), optimizer.NewIPAC())
	cfg.Telemetry = tk
	cfg.Faults = inj
	cfg.Obs = sc
	res, err := dcsim.Run(cfg)
	return res, cfg, err
}

func runTelemetryOff(e *Env) (Metrics, error) {
	res, cfg, err := fig6Run(e, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	return Metrics{
		"energy-per-vm-wh": res.EnergyPerVMWh,
		"optimizer-passes": float64(res.Steps / cfg.OptimizeEverySteps),
	}, nil
}

func runTelemetryOn(e *Env) (Metrics, error) {
	tracer := telemetry.New(nil, 0)
	res, cfg, err := fig6Run(e, tracer.Track("main"), nil, nil)
	if err != nil {
		return nil, err
	}
	return Metrics{
		"energy-per-vm-wh": res.EnergyPerVMWh,
		"optimizer-passes": float64(res.Steps / cfg.OptimizeEverySteps),
		"spans":            float64(len(tracer.Snapshot())),
		"spans-dropped":    float64(tracer.Dropped()),
	}, nil
}

// runObsOn is the scorecard half of the observability-overhead pair:
// fig6/telemetry-off is the baseline, this run additionally streams
// every step's SLO event, power sample, and optimizer tally into a
// scorecard. The perf gate holding this scenario "unchanged" vs the
// baseline is the acceptance bound on observation cost.
func runObsOn(e *Env) (Metrics, error) {
	sc := obs.New(obs.Config{Label: "bench", SLOBudget: 0.05, FastWindow: 8, SlowWindow: 64})
	res, cfg, err := fig6Run(e, nil, nil, sc)
	if err != nil {
		return nil, err
	}
	rep := sc.Report()
	return Metrics{
		"energy-per-vm-wh": res.EnergyPerVMWh,
		"optimizer-passes": float64(res.Steps / cfg.OptimizeEverySteps),
		"slo-bad-steps":    float64(rep.SLO.Bad),
		"audit-records":    float64(len(rep.Audit.Records)),
	}, nil
}

func runChaos(e *Env) (Metrics, error) {
	res, _, err := fig6Run(e, nil, fault.New(e.ChaosProfile()), nil)
	if err != nil {
		return nil, err
	}
	return Metrics{
		"energy-per-vm-wh": res.EnergyPerVMWh,
		"faults-injected":  float64(res.FaultsInjected),
		"degraded-passes":  float64(res.DegradedPasses),
		"failed-moves":     float64(res.FailedMoves),
		"crashes":          float64(res.Crashes),
	}, nil
}

func runAblationDVFS(e *Env) (Metrics, error) {
	tr, err := e.Trace()
	if err != nil {
		return nil, err
	}
	with, err := dcsim.Run(dcsim.DefaultConfig(tr, e.DCVMs(), optimizer.NewIPAC()))
	if err != nil {
		return nil, err
	}
	without, err := dcsim.Run(dcsim.DefaultConfig(tr, e.DCVMs(), optimizer.WithoutDVFS{Inner: optimizer.NewIPAC()}))
	if err != nil {
		return nil, err
	}
	return Metrics{"dvfs-saving-pct": 100 * (1 - with.EnergyPerVMWh/without.EnergyPerVMWh)}, nil
}

func runAblationWatchdog(e *Env) (Metrics, error) {
	tr, err := e.Trace()
	if err != nil {
		return nil, err
	}
	plain, err := dcsim.Run(dcsim.DefaultConfig(tr, e.DCVMs(), optimizer.NewIPAC()))
	if err != nil {
		return nil, err
	}
	cfg := dcsim.DefaultConfig(tr, e.DCVMs(), optimizer.NewIPAC())
	cfg.WatchdogEverySteps = 1
	wd, err := dcsim.Run(cfg)
	if err != nil {
		return nil, err
	}
	return Metrics{
		"overload-steps-avoided": float64(plain.OverloadSteps - wd.OverloadSteps),
		"watchdog-moves":         float64(wd.WatchdogMoves),
	}, nil
}

func runAblationMigrationCost(e *Env) (Metrics, error) {
	tr, err := e.Trace()
	if err != nil {
		return nil, err
	}
	free, err := dcsim.Run(dcsim.DefaultConfig(tr, e.DCVMs(), optimizer.NewIPAC()))
	if err != nil {
		return nil, err
	}
	priced := optimizer.NewIPAC()
	priced.Policy = optimizer.BandwidthPriced{WattsPerGB: 15}
	pr, err := dcsim.Run(dcsim.DefaultConfig(tr, e.DCVMs(), priced))
	if err != nil {
		return nil, err
	}
	return Metrics{
		"migrations-avoided": float64(free.Migrations - pr.Migrations),
		"energy-cost-pct":    100 * (pr.EnergyPerVMWh/free.EnergyPerVMWh - 1),
	}, nil
}

// mpcModel is the identified two-input model the MPC scenarios solve
// against (the BenchmarkAblationEconomicMPC fixture).
func mpcModel() *sysid.Model {
	return &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.4},
		B:     []mat.Vec{{-0.5, -0.4}, {-0.15, -0.1}},
		Gamma: 3.0,
	}
}

// mpcRun closes the loop for 100 control periods from an
// over-provisioned start and returns the final total allocation.
func mpcRun(levelPenalty float64) (float64, error) {
	cfg := mpc.Config{
		Model: mpcModel(), P: 8, M: 2, Q: 1,
		R:           mat.Vec{0.1, 0.1},
		TrefPeriods: 2, Setpoint: 1.0,
		CMin: mat.Vec{0.1, 0.1}, CMax: mat.Vec{4, 4},
		LevelPenalty: levelPenalty,
	}
	ctl, err := mpc.New(cfg)
	if err != nil {
		return 0, err
	}
	tHist := []float64{0.3, 0.3}
	cur := mat.Vec{3, 3}
	// Rotating 3-slot allocation history: each period recycles the oldest
	// slot as the new head instead of prepending a fresh clone, so the
	// driver loop stays allocation-free and the benchmark times the solve,
	// not the harness (ROADMAP item 2). Values match the old prepend-and-
	// trim loop bit for bit (1*delta is exactly delta).
	cHist := []mat.Vec{cur.Clone(), cur.Clone(), cur.Clone()}
	for k := 0; k < 100; k++ {
		out, err := ctl.Compute(tHist, cHist)
		if err != nil {
			return 0, err
		}
		cur.AddScaled(1, out.Delta)
		head := cHist[len(cHist)-1]
		copy(cHist[1:], cHist)
		copy(head, cur)
		cHist[0] = head
		y := cfg.Model.Predict(tHist, cHist)
		tHist[1] = tHist[0]
		tHist[0] = y
	}
	return cur[0] + cur[1], nil
}

func runAblationEconomicMPC(_ *Env) (Metrics, error) {
	plain, err := mpcRun(0)
	if err != nil {
		return nil, err
	}
	econ, err := mpcRun(0.01)
	if err != nil {
		return nil, err
	}
	return Metrics{"ghz-saved": plain - econ}, nil
}

func runMPCSolve(_ *Env) (Metrics, error) {
	if _, err := mpcRun(0); err != nil {
		return nil, err
	}
	return Metrics{"solves": 100}, nil
}

func runQueueingMVA(_ *Env) (Metrics, error) {
	// The paper's 3-tier shape: web, app, and db demands per visit plus
	// client think time. Sweeping the population through one Solver and
	// one Result exercises the O(n·k) recursion the //vdc:hotpath
	// annotation on Solver.Solve declares, with steady-state buffer reuse.
	net := &queueing.Network{
		ThinkTime: 1.0,
		Demands:   []units.Second{0.008, 0.025, 0.012},
	}
	var s queueing.Solver
	var res queueing.Result
	total := 0.0
	for n := 1; n <= 200; n++ {
		if err := s.Solve(net, n, &res); err != nil {
			return nil, err
		}
		total += res.ResponseTime
	}
	return Metrics{"solves": 200, "sum-response-s": total}, nil
}

func runPackingMinSlack(e *Env) (Metrics, error) {
	// Deterministic awkward sizes: FFD grabs the 8 first and strands
	// capacity; the optimal 12-GHz packing is 7+5 (plus small change).
	sizes := []float64{8, 7, 5, 4.5, 2.9, 1.3, 0.9, 0.6}
	items := make([]packing.Item, len(sizes))
	for i := range items {
		items[i] = packing.Item{ID: string(rune('a' + i)), CPU: sizes[i], Mem: 1}
	}
	cons := packing.VectorConstraint{}
	cfg := packing.DefaultMinSlackConfig()
	cfg.Epsilon = 0
	cfg.Pool = e.MinSlackPool() // session-shared arena: B&B is alloc-free once warm
	msBin := &packing.Bin{ID: "ms", CPUCap: 12, MemCap: 100}
	res := packing.MinimumSlack(msBin, items, cons, cfg)
	ffdBin := &packing.Bin{ID: "ffd", CPUCap: 12, MemCap: 100}
	packing.FirstFitDecreasing(items, []*packing.Bin{ffdBin}, cons)
	return Metrics{"slack-gain-ghz": ffdBin.Slack() - res.Slack}, nil
}

func runPackingFFD(_ *Env) (Metrics, error) {
	// A fresh seeded instance per op: generation is ~100x cheaper than
	// the packing pass it feeds, and the fixed seed keeps every op
	// identical.
	rng := rand.New(rand.NewSource(7))
	items := make([]packing.Item, 200)
	for i := range items {
		items[i] = packing.Item{
			ID:  fmt.Sprintf("vm%03d", i),
			CPU: 0.5 + 2.5*rng.Float64(),
			Mem: 0.25 + 1.25*rng.Float64(),
		}
	}
	bins := make([]*packing.Bin, 60)
	for i := range bins {
		bins[i] = &packing.Bin{ID: fmt.Sprintf("s%02d", i), CPUCap: 12, MemCap: 16}
	}
	_, unplaced := packing.FirstFitDecreasing(items, bins, packing.VectorConstraint{})
	used := 0
	for _, b := range bins {
		if len(b.Items()) > 0 {
			used++
		}
	}
	return Metrics{"bins-used": float64(used), "unplaced": float64(len(unplaced))}, nil
}

func runLintModule(e *Env) (Metrics, error) {
	mod, err := lint.LoadModule(e.ModuleRoot())
	if err != nil {
		return nil, err
	}
	pkgs, err := mod.Load(e.LintPatterns()...)
	if err != nil {
		return nil, err
	}
	findings := mod.Analyze(pkgs, lint.Analyzers())
	if len(findings) != 0 {
		return nil, fmt.Errorf("bench: module is not lint-clean: %d finding(s), first: %s", len(findings), findings[0])
	}
	return Metrics{"packages": float64(len(pkgs))}, nil
}

// prepareReplayCorpus warms the shared fabricated corpus so corpus
// generation never lands in a timed section.
func prepareReplayCorpus(e *Env) error {
	_, err := e.ReplayCorpus()
	return err
}

// runTraceIngest times the raw-ingestion half of the replay engine:
// the streaming Google-usage decoder feeding the 15-minute resampler,
// drained to a counting sink. The corpus has gaps and empty fields, so
// the gap policy and skip paths are priced, not just the happy path.
func runTraceIngest(e *Env) (Metrics, error) {
	corpus, err := e.ReplayCorpus()
	if err != nil {
		return nil, err
	}
	src, err := trace.NewGoogleUsage(bytes.NewReader(corpus))
	if err != nil {
		return nil, err
	}
	grid, err := trace.NewGrid(src, trace.GridConfig{})
	if err != nil {
		return nil, err
	}
	mass := 0.0
	n, err := trace.Drain(grid, trace.SinkFunc(func(rec trace.Record) error {
		mass += rec.Util
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return Metrics{
		"records":   float64(n),
		"grid-vms":  float64(grid.NumVMs()),
		"grid-mass": mass,
	}, nil
}

// runTraceReplay times the full ingest→distort→assemble path: the same
// corpus replayed through a flash-crowd + time-warp pipeline into a
// rectangular workload trace — the dcsim -replay shape end to end.
func runTraceReplay(e *Env) (Metrics, error) {
	corpus, err := e.ReplayCorpus()
	if err != nil {
		return nil, err
	}
	src, err := trace.NewGoogleUsage(bytes.NewReader(corpus))
	if err != nil {
		return nil, err
	}
	grid, err := trace.NewGrid(src, trace.GridConfig{})
	if err != nil {
		return nil, err
	}
	col := trace.NewCollector(trace.CollectConfig{StepSeconds: grid.StepSeconds(), SectorSalt: 2010})
	st, err := trace.Replay(grid, col, trace.ReplayConfig{
		StepSeconds: grid.StepSeconds(),
		Seed:        2010,
		Distortions: []trace.Distortion{
			trace.FlashCrowd{StartStep: 8, Steps: 12, Amplify: 1.6, VMFraction: 0.3},
			&trace.TimeWarp{MaxLagSteps: 4},
		},
	})
	if err != nil {
		return nil, err
	}
	tr, err := col.Trace()
	if err != nil {
		return nil, err
	}
	return Metrics{
		"records":   float64(st.Records),
		"distorted": float64(st.Distorted),
		"trace-vms": float64(len(tr.Names)),
	}, nil
}

// runGuardWedge tracks the cost of the bounded-execution path: a PS
// queue under heavy submit + SetCapacity churn (the actuation pattern
// that fed ROADMAP item 6's wedge) drained period by period through
// RunUntilBudget under the default step budget. The budget never trips
// here — the scenario prices what a guarded healthy drain costs, so a
// regression in the budget bookkeeping (or the kernel's lazy purge)
// shows up as a latency shift.
func runGuardWedge(e *Env) (Metrics, error) {
	sim := devs.NewSimulator()
	q := appsim.NewPSQueue(sim, 2.5)
	rng := rand.New(rand.NewSource(7))
	budget := guard.DefaultStepBudget().DevsBudget(nil)
	completed := 0
	events := 0
	for burst := 0; burst < 400; burst++ {
		for j := 0; j < 32; j++ {
			q.Submit(0.001+0.01*rng.Float64(), func() { completed++ })
			q.SetCapacity(0.5 + 4*rng.Float64())
		}
		st, err := sim.RunUntilBudget(sim.Now()+0.25, budget)
		if err != nil {
			return nil, err
		}
		events += st.Events
	}
	st, err := sim.RunUntilBudget(sim.Now()+1e6, budget)
	if err != nil {
		return nil, err
	}
	events += st.Events
	if pending := sim.Pending(); pending != 0 {
		return nil, fmt.Errorf("bench: %d events still pending after the final drain", pending)
	}
	return Metrics{
		"events":    float64(events),
		"completed": float64(completed),
	}, nil
}
