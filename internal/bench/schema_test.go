package bench

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenDoc is a hand-constructed, fully deterministic document (no
// CreatedAt, no toolchain stamps) so the golden bytes are stable across
// machines and Go versions.
func goldenDoc() *Doc {
	a := makeScenario("fig6/energy-per-vm", []float64{1.25e8, 1.3e8, 1.28e8})
	a.Doc = "Fig. 6 consolidation sweep"
	a.Metrics = map[string]float64{"saving-pct": 31.5}
	a.MedianNs, a.MADNs, a.CI95LoNs, a.CI95HiNs = 1.28e8, 2e6, 1.25e8, 1.3e8
	b := makeScenario("mpc/solve", []float64{4.1e5, 4.0e5, 4.2e5})
	b.Metrics = map[string]float64{"solves": 100}
	b.MedianNs, b.MADNs, b.CI95LoNs, b.CI95HiNs = 4.1e5, 1e4, 4.0e5, 4.2e5
	return &Doc{
		Schema: SchemaVersion, Label: "golden", Scale: string(ScaleQuick),
		Warmup: 2, Reps: 3, Scenarios: []ScenarioResult{a, b},
	}
}

// TestGoldenSchema pins the serialized form of the result document. A
// diff here means the on-disk schema changed: bump SchemaVersion, check
// committed baselines, then regenerate with `go test ./internal/bench
// -run TestGoldenSchema -update`.
func TestGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenDoc().Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "bench.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialized schema drifted from golden file %s (run with -update after bumping SchemaVersion)\n got: %s\nwant: %s",
			path, buf.Bytes(), want)
	}
	// And the golden bytes round-trip through the validating reader.
	d, err := Read(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden file does not read back: %v", err)
	}
	if d.Label != "golden" || len(d.Scenarios) != 2 || d.Scenarios[0].Metrics["saving-pct"] != 31.5 {
		t.Errorf("golden round-trip lost data: %+v", d)
	}
}

func TestDocValidateRejects(t *testing.T) {
	ns := []float64{1e6, 1.1e6, 1.2e6}
	cases := []struct {
		name string
		mut  func(*Doc)
		want string
	}{
		{"wrong version", func(d *Doc) { d.Schema = 99 }, "schema version"},
		{"bad scale", func(d *Doc) { d.Scale = "huge" }, "unknown scale"},
		{"no scenarios", func(d *Doc) { d.Scenarios = nil }, "no scenarios"},
		{"bad name", func(d *Doc) { d.Scenarios[0].Name = "Bad Name" }, "invalid name"},
		{"dup name", func(d *Doc) { d.Scenarios[1].Name = d.Scenarios[0].Name }, "duplicate"},
		{"no samples", func(d *Doc) { d.Scenarios[0].NsPerOp = nil }, "no samples"},
		{"misaligned", func(d *Doc) { d.Scenarios[0].AllocsPerOp = d.Scenarios[0].AllocsPerOp[:1] }, "misaligned"},
		{"nan timing", func(d *Doc) { d.Scenarios[0].NsPerOp[1] = math.NaN() }, "non-finite"},
		{"negative timing", func(d *Doc) { d.Scenarios[0].NsPerOp[1] = -5 }, "non-finite or negative"},
	}
	for _, c := range cases {
		d := makeDoc("x", ScaleQuick, makeScenario("a/sc", append([]float64(nil), ns...)), makeScenario("b/sc", append([]float64(nil), ns...)))
		c.mut(d)
		err := d.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
		if err := d.Write(&bytes.Buffer{}); err == nil {
			t.Errorf("%s: Write serialized an invalid document", c.name)
		}
	}
}

func TestReadRejectsUnknownFieldsAndGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":1,"scale":"quick","bogus_field":3}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWriteFileReadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	d := goldenDoc()
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != d.Label || len(got.Scenarios) != len(d.Scenarios) {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file read succeeded")
	}
	bad := makeDoc("bad", ScaleQuick)
	if err := bad.WriteFile(filepath.Join(dir, "bad.json")); err == nil {
		t.Error("WriteFile serialized an invalid document")
	}
}
