package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// SchemaVersion is the version stamped into every result document.
// Readers reject other versions outright: silently reinterpreting an
// old baseline is how a regression gate rots.
const SchemaVersion = 1

// Doc is one benchmark session serialized as BENCH_<label>.json.
type Doc struct {
	// Schema must equal SchemaVersion.
	Schema int `json:"schema"`
	// Label names the session ("baseline", "ci", a branch name).
	Label string `json:"label"`
	// CreatedAt is an RFC3339 wall-clock stamp set by the driver edge;
	// deterministic producers (tests, golden files) leave it empty.
	CreatedAt string `json:"created_at,omitempty"`
	// GoVersion/GOOS/GOARCH record the toolchain and platform —
	// cross-platform comparisons deserve suspicion.
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	// Scale is the fixture scale every scenario ran at; Compare
	// refuses to gate across scales.
	Scale string `json:"scale"`
	// Warmup and Reps record the sampling parameters.
	Warmup int `json:"warmup"`
	Reps   int `json:"reps"`
	// Scenarios holds one result per scenario, in registry order.
	Scenarios []ScenarioResult `json:"scenarios"`
}

// ScenarioResult is the measured record of one scenario: raw per-rep
// samples (kept so the compare engine can run order statistics, not
// just point estimates) plus the robust summary.
type ScenarioResult struct {
	Name   string `json:"name"`
	Doc    string `json:"doc,omitempty"`
	Warmup int    `json:"warmup"`
	Reps   int    `json:"reps"`
	// Per-rep samples, index-aligned.
	NsPerOp     []float64 `json:"ns_per_op"`
	AllocsPerOp []float64 `json:"allocs_per_op"`
	BytesPerOp  []float64 `json:"bytes_per_op"`
	// Robust summary of NsPerOp: median, median absolute deviation and
	// the 95% bootstrap confidence interval of the median.
	MedianNs float64 `json:"median_ns"`
	MADNs    float64 `json:"mad_ns"`
	CI95LoNs float64 `json:"ci95_lo_ns"`
	CI95HiNs float64 `json:"ci95_hi_ns"`
	// Metrics carries the scenario's headline quantities and telemetry
	// counters from the final rep.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Validate checks structural integrity: version, scale, unique scenario
// names, non-empty index-aligned samples, finite timings.
func (d *Doc) Validate() error {
	if d.Schema != SchemaVersion {
		return fmt.Errorf("bench: schema version %d, this build reads %d", d.Schema, SchemaVersion)
	}
	if _, err := ParseScale(d.Scale); err != nil {
		return err
	}
	if len(d.Scenarios) == 0 {
		return fmt.Errorf("bench: document %q has no scenarios", d.Label)
	}
	seen := map[string]bool{}
	for i := range d.Scenarios {
		s := &d.Scenarios[i]
		if !scenarioNameRe.MatchString(s.Name) {
			return fmt.Errorf("bench: scenario %d has invalid name %q", i, s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("bench: duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		n := len(s.NsPerOp)
		if n == 0 {
			return fmt.Errorf("bench: scenario %q has no samples", s.Name)
		}
		if len(s.AllocsPerOp) != n || len(s.BytesPerOp) != n {
			return fmt.Errorf("bench: scenario %q has misaligned sample columns (%d ns, %d allocs, %d bytes)",
				s.Name, n, len(s.AllocsPerOp), len(s.BytesPerOp))
		}
		for _, v := range s.NsPerOp {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("bench: scenario %q has a non-finite or negative timing sample %v", s.Name, v)
			}
		}
	}
	return nil
}

// Write serializes the document as stable, indented JSON.
func (d *Doc) Write(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile writes the document to path (the BENCH_<label>.json form).
func (d *Doc) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		//lint:ignore errcheck the write error is already being returned
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes and validates a result document. Unknown fields are
// rejected: a typo'd baseline should fail loudly, not gate vacuously.
func Read(r io.Reader) (*Doc, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Doc
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("bench: decode result document: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// ReadFile reads a result document from path.
func ReadFile(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errcheck close error on a read-only file cannot lose data
	defer f.Close()
	d, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
