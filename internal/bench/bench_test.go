package bench

import (
	"errors"
	"strings"
	"testing"
)

func TestRegistryRegisterValidation(t *testing.T) {
	r := NewRegistry()
	ok := &Scenario{Name: "group/name-1.x", Run: func(*Env) (Metrics, error) { return nil, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		sc   *Scenario
		want string
	}{
		{nil, "without a Run"},
		{&Scenario{Name: "no-run"}, "without a Run"},
		{&Scenario{Name: "Bad/Upper", Run: ok.Run}, "invalid scenario name"},
		{&Scenario{Name: "trailing/", Run: ok.Run}, "invalid scenario name"},
		{&Scenario{Name: "", Run: ok.Run}, "invalid scenario name"},
		{&Scenario{Name: "group/name-1.x", Run: ok.Run}, "duplicate"},
	}
	for _, c := range cases {
		err := r.Register(c.sc)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Register(%+v) = %v, want error containing %q", c.sc, err, c.want)
		}
	}
}

func TestRegistryLookupAndOrder(t *testing.T) {
	r := Default()
	all := r.All()
	if len(all) < 15 {
		t.Fatalf("default registry has %d scenarios, want >= 15", len(all))
	}
	for _, sc := range all {
		got, ok := r.Get(sc.Name)
		if !ok || got != sc {
			t.Errorf("Get(%q) did not round-trip", sc.Name)
		}
		if sc.Doc == "" {
			t.Errorf("scenario %q has no doc line", sc.Name)
		}
	}
	if _, ok := r.Get("no/such"); ok {
		t.Error("Get of unknown scenario succeeded")
	}
	// Registration order is stable and figure-first.
	if all[0].Name != "fig2/response-time" {
		t.Errorf("first scenario = %q", all[0].Name)
	}
}

func TestRegistryMatch(t *testing.T) {
	r := Default()
	figs, err := r.Match("fig6/.*")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Errorf("fig6/.* matched %d scenarios, want 5", len(figs))
	}
	for _, sc := range figs {
		if !strings.HasPrefix(sc.Name, "fig6/") {
			t.Errorf("pattern leaked %q", sc.Name)
		}
	}
	// The pattern is anchored: "fig6" alone matches nothing.
	if _, err := r.Match("fig6"); err == nil {
		t.Error("unanchored prefix unexpectedly matched")
	}
	if _, err := r.Match("("); err == nil {
		t.Error("bad regexp accepted")
	}
	everything, err := r.Match("")
	if err != nil || len(everything) != len(r.All()) {
		t.Errorf("empty pattern: %d scenarios, err %v", len(everything), err)
	}
}

func TestWithSlowdown(t *testing.T) {
	calls := 0
	sc := &Scenario{Name: "x", Run: func(*Env) (Metrics, error) {
		calls++
		return Metrics{"n": float64(calls)}, nil
	}}
	slow := WithSlowdown(sc, 3)
	m, err := slow.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("factor-3 slowdown ran the op %d times", calls)
	}
	if m["n"] != 3 {
		t.Errorf("slowdown did not return the final rep's metrics: %v", m)
	}
	if WithSlowdown(sc, 1) != sc || WithSlowdown(sc, 0) != sc {
		t.Error("factor <= 1 should return the scenario unchanged")
	}
}

func TestMetricsKeysSorted(t *testing.T) {
	m := Metrics{"b": 1, "a": 2, "c": 3}
	got := m.Keys()
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("Keys() = %v", got)
	}
}

func TestMustRegisterPanicsOnBadEntry(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("mustRegister did not panic on an invalid entry")
		}
	}()
	r.mustRegister(&Scenario{Name: "Bad Name", Run: func(*Env) (Metrics, error) { return nil, nil }})
}

func TestWithSlowdownPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	sc := &Scenario{Name: "x", Run: func(*Env) (Metrics, error) {
		calls++
		if calls == 2 {
			return nil, boom
		}
		return nil, nil
	}}
	if _, err := WithSlowdown(sc, 4).Run(nil); !errors.Is(err, boom) {
		t.Errorf("slowdown swallowed the error: %v", err)
	}
	if calls != 2 {
		t.Errorf("slowdown kept running after an error: %d calls", calls)
	}
}
