// Package units declares the dimensional vocabulary of the control
// stack as float64 aliases. An alias is *identical* to float64 — using
// one changes no runtime behaviour, no API compatibility, and no
// arithmetic — but it records, in the type of a struct field, parameter,
// result, or variable, which physical quantity the number carries. The
// vdclint units analyzer (internal/lint, rule "units") keys on these
// aliases: it propagates unit tags through assignments, arithmetic, and
// call boundaries, and reports unit-incompatible additions, comparisons,
// and argument passing — the silent watt-vs-utilization mix-ups that
// corrupt an MPC model without failing any test.
//
// Conversion rules the analyzer knows (beyond "like combines with
// like"): Watt·Second = Joule, Hertz·Second = GHzSecond (CPU work),
// GHzSecond/Hertz = Second, any unit divided by itself = Fraction, and
// Fraction scales any unit without changing it. Quantities outside this
// vocabulary (GB of memory, requests per second, weights) stay plain
// float64 and are exempt from checking.
//
// An explicit conversion is the escape hatch at a genuine dimensional
// boundary: units.Watt(x) asserts x is a power, float64(x) strips the
// tag. Both compile to nothing.
package units

type (
	// Watt is instantaneous electrical power (the paper's P terms:
	// static, dynamic, sleep, and cluster draw).
	Watt = float64

	// Hertz is CPU frequency or CPU capacity/allocation/demand. The
	// repo's numbers are in GHz throughout; the tag tracks the
	// dimension, not the SI prefix, so GHz values are Hertz-tagged.
	Hertz = float64

	// Fraction is a dimensionless ratio: utilization in [0,1],
	// headroom, a proportional scale factor. Fraction·X = X.
	Fraction = float64

	// Second is a duration: response times, SLO set points, service
	// demands per visit, control periods in wall terms.
	Second = float64

	// Joule is energy: the integral of Watt over Second.
	Joule = float64

	// VMCount is a number of VMs (or servers) carried as a float, e.g.
	// the denominators of per-VM energy metrics.
	VMCount = float64

	// GHzSecond is CPU work — a service demand in cycles (frequency ×
	// time). Dividing it by an allocation in Hertz yields the Second
	// per-visit demand MVA consumes.
	GHzSecond = float64
)
