package sysid

import (
	"errors"
	"fmt"
	"math"
)

// OrderSelection reports the winner of a model-order search.
type OrderSelection struct {
	Na, Nb int
	Model  *Model
	BIC    float64
	// Tried lists every candidate with its score, for diagnostics.
	Tried []OrderScore
}

// OrderScore is one candidate's result.
type OrderScore struct {
	Na, Nb int
	BIC    float64
	RMSE   float64
}

// SelectOrder fits ARX models for every (na, nb) in the given ranges and
// returns the one minimizing the Bayesian information criterion
//
//	BIC = n·ln(SSE/n) + k·ln(n)
//
// which balances fit against parameter count. The paper fixes (1, 2) by
// inspection (Eq. 1); this automates that choice for new applications.
func SelectOrder(d *Dataset, maxNa, maxNb, numInputs int) (*OrderSelection, error) {
	if maxNa < 0 || maxNb < 1 {
		return nil, fmt.Errorf("sysid: invalid search bounds Na<=%d Nb<=%d", maxNa, maxNb)
	}
	best := &OrderSelection{BIC: math.Inf(1)}
	for na := 0; na <= maxNa; na++ {
		for nb := 1; nb <= maxNb; nb++ {
			m, err := Identify(d, na, nb, numInputs)
			if err != nil {
				continue // not enough data for this order: skip
			}
			fm, err := Evaluate(m, d)
			if err != nil {
				continue
			}
			lag := na
			if nb > lag {
				lag = nb
			}
			n := float64(d.Len() - lag)
			if n <= 1 {
				continue
			}
			sse := fm.RMSE * fm.RMSE * n
			if sse <= 0 {
				sse = 1e-300 // perfect fit: BIC → −∞ dominated by k·ln n
			}
			k := float64(m.NumParams())
			bic := n*math.Log(sse/n) + k*math.Log(n)
			best.Tried = append(best.Tried, OrderScore{Na: na, Nb: nb, BIC: bic, RMSE: fm.RMSE})
			if bic < best.BIC {
				best.Na, best.Nb, best.Model, best.BIC = na, nb, m, bic
			}
		}
	}
	if best.Model == nil {
		return nil, errors.New("sysid: no candidate order could be fitted")
	}
	return best, nil
}
