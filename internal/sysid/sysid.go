// Package sysid implements the system identification step of Section IV-B:
// fitting an ARX (autoregressive with exogenous inputs) model
//
//	t(k) = Σ_{i=1..Na} a_i·t(k−i) + Σ_{j=1..Nb} b_jᵀ·c(k−j) + γ
//
// from measured (response time, CPU allocation) sequences, exactly the
// form of Eq. (1) in the paper (there Na=1, Nb=2). Both batch least
// squares and recursive least squares (for online re-identification) are
// provided, along with fit-quality metrics.
package sysid

import (
	"errors"
	"fmt"
	"math"

	"vdcpower/internal/mat"
)

// Model is an identified ARX model for one application: a single output
// (90-percentile response time) and NumInputs control inputs (the CPU
// allocations of the application's VMs).
type Model struct {
	Na        int       // autoregressive order
	Nb        int       // input order
	NumInputs int       // number of VMs (tiers)
	A         []float64 // a_1..a_Na
	B         []mat.Vec // b_1..b_Nb, each of length NumInputs
	Gamma     float64   // affine offset
}

// NumParams returns the number of free parameters of the model.
func (m *Model) NumParams() int { return m.Na + m.Nb*m.NumInputs + 1 }

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if m.Na < 0 || m.Nb < 1 || m.NumInputs < 1 {
		return fmt.Errorf("sysid: invalid orders Na=%d Nb=%d inputs=%d", m.Na, m.Nb, m.NumInputs)
	}
	if len(m.A) != m.Na {
		return fmt.Errorf("sysid: len(A)=%d, want Na=%d", len(m.A), m.Na)
	}
	if len(m.B) != m.Nb {
		return fmt.Errorf("sysid: len(B)=%d, want Nb=%d", len(m.B), m.Nb)
	}
	for j, b := range m.B {
		if len(b) != m.NumInputs {
			return fmt.Errorf("sysid: len(B[%d])=%d, want %d", j, len(b), m.NumInputs)
		}
	}
	return nil
}

// Predict computes t(k) from the history. tPast[i] is t(k−1−i);
// cPast[j] is c(k−1−j). The slices must hold at least Na and Nb entries.
func (m *Model) Predict(tPast []float64, cPast []mat.Vec) float64 {
	if len(tPast) < m.Na || len(cPast) < m.Nb {
		//lint:ignore panicpolicy precondition: the caller owns the history window and must fill it first
		panic("sysid: Predict history too short")
	}
	y := m.Gamma
	for i := 0; i < m.Na; i++ {
		y += m.A[i] * tPast[i]
	}
	for j := 0; j < m.Nb; j++ {
		y += m.B[j].Dot(cPast[j])
	}
	return y
}

// Simulate free-runs the model over the input sequence c (c[k] is the
// input applied during period k) starting from the given histories, and
// returns the predicted outputs, one per input sample.
func (m *Model) Simulate(tPast []float64, cPast []mat.Vec, c []mat.Vec) []float64 {
	th := append([]float64(nil), tPast...)
	ch := cloneHistory(cPast)
	out := make([]float64, len(c))
	for k := range c {
		ch = pushFront(ch, c[k].Clone())
		y := m.Predict(th, ch)
		out[k] = y
		th = append([]float64{y}, th...)
		if len(th) > m.Na+1 {
			th = th[:m.Na+1]
		}
		if len(ch) > m.Nb+1 {
			ch = ch[:m.Nb+1]
		}
	}
	return out
}

func cloneHistory(h []mat.Vec) []mat.Vec {
	out := make([]mat.Vec, len(h))
	for i, v := range h {
		out[i] = v.Clone()
	}
	return out
}

func pushFront(h []mat.Vec, v mat.Vec) []mat.Vec {
	return append([]mat.Vec{v}, h...)
}

// DCGain returns the steady-state change in output per unit steady change
// of input i: (Σ_j b_j[i]) / (1 − Σ a).
func (m *Model) DCGain(input int) float64 {
	num := 0.0
	for _, b := range m.B {
		num += b[input]
	}
	den := 1.0
	for _, a := range m.A {
		den -= a
	}
	return num / den
}

// Stable reports whether the autoregressive part is (sufficient-condition)
// stable: Σ|a_i| < 1. This is conservative but adequate for the
// first-order models the controller uses.
func (m *Model) Stable() bool {
	s := 0.0
	for _, a := range m.A {
		if a < 0 {
			s -= a
		} else {
			s += a
		}
	}
	return s < 1
}

// String renders the model equation.
func (m *Model) String() string {
	s := "t(k) ="
	for i, a := range m.A {
		s += fmt.Sprintf(" %+.4g·t(k-%d)", a, i+1)
	}
	for j, b := range m.B {
		for i, bi := range b {
			s += fmt.Sprintf(" %+.4g·c%d(k-%d)", bi, i+1, j+1)
		}
	}
	s += fmt.Sprintf(" %+.4g", m.Gamma)
	return s
}

// Dataset is a recorded identification experiment: aligned sequences of
// outputs T[k] and the inputs C[k] that were applied during period k.
type Dataset struct {
	T []float64
	C []mat.Vec
}

// Append adds one sample.
func (d *Dataset) Append(t float64, c mat.Vec) {
	d.T = append(d.T, t)
	d.C = append(d.C, c.Clone())
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.T) }

// Identify fits an ARX(Na, Nb) model with numInputs inputs to the dataset
// by batch least squares. It needs at least NumParams + max(Na,Nb)
// samples.
func Identify(d *Dataset, na, nb, numInputs int) (*Model, error) {
	return identify(d, na, nb, numInputs, 0)
}

// IdentifyRidge fits the same ARX model with Tikhonov regularization
// (ridge parameter lambda > 0). Use it when the identification experiment
// lacks persistent excitation — e.g. live data recorded while the
// controller holds allocations nearly constant — where ordinary least
// squares is rank-deficient.
func IdentifyRidge(d *Dataset, na, nb, numInputs int, lambda float64) (*Model, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("sysid: ridge parameter %v must be positive", lambda)
	}
	return identify(d, na, nb, numInputs, lambda)
}

func identify(d *Dataset, na, nb, numInputs int, lambda float64) (*Model, error) {
	if na < 0 || nb < 1 || numInputs < 1 {
		return nil, fmt.Errorf("sysid: invalid orders Na=%d Nb=%d inputs=%d", na, nb, numInputs)
	}
	if len(d.T) != len(d.C) {
		return nil, errors.New("sysid: dataset T and C lengths differ")
	}
	lag := na
	if nb > lag {
		lag = nb
	}
	nParams := na + nb*numInputs + 1
	nRows := len(d.T) - lag
	if nRows < nParams {
		return nil, fmt.Errorf("sysid: need at least %d samples, have %d", nParams+lag, len(d.T))
	}
	for _, c := range d.C {
		if len(c) != numInputs {
			return nil, fmt.Errorf("sysid: input dimension %d, want %d", len(c), numInputs)
		}
	}
	phi := mat.NewMat(nRows, nParams)
	y := make(mat.Vec, nRows)
	for r := 0; r < nRows; r++ {
		k := r + lag
		col := 0
		for i := 1; i <= na; i++ {
			phi.Set(r, col, d.T[k-i])
			col++
		}
		for j := 1; j <= nb; j++ {
			for i := 0; i < numInputs; i++ {
				phi.Set(r, col, d.C[k-j][i])
				col++
			}
		}
		phi.Set(r, col, 1) // affine term
		y[r] = d.T[k]
	}
	var theta mat.Vec
	var err error
	if lambda > 0 {
		theta, err = mat.RidgeLS(phi, y, lambda)
	} else {
		theta, err = mat.LeastSquares(phi, y)
	}
	if err != nil {
		return nil, fmt.Errorf("sysid: identification failed: %w", err)
	}
	return unpack(theta, na, nb, numInputs), nil
}

func unpack(theta mat.Vec, na, nb, numInputs int) *Model {
	m := &Model{Na: na, Nb: nb, NumInputs: numInputs}
	col := 0
	m.A = make([]float64, na)
	for i := 0; i < na; i++ {
		m.A[i] = theta[col]
		col++
	}
	m.B = make([]mat.Vec, nb)
	for j := 0; j < nb; j++ {
		m.B[j] = make(mat.Vec, numInputs)
		for i := 0; i < numInputs; i++ {
			m.B[j][i] = theta[col]
			col++
		}
	}
	m.Gamma = theta[col]
	return m
}

// FitMetrics quantifies one-step-ahead prediction quality on a dataset.
type FitMetrics struct {
	R2     float64 // coefficient of determination
	FitPct float64 // 100·(1 − ||y−ŷ|| / ||y−mean(y)||), MATLAB-style
	RMSE   float64
}

// Evaluate computes one-step-ahead fit metrics of the model on d.
func Evaluate(m *Model, d *Dataset) (FitMetrics, error) {
	if err := m.Validate(); err != nil {
		return FitMetrics{}, err
	}
	lag := m.Na
	if m.Nb > lag {
		lag = m.Nb
	}
	if len(d.T) <= lag {
		return FitMetrics{}, errors.New("sysid: dataset too short to evaluate")
	}
	var sse, sst, mean float64
	n := 0
	for k := lag; k < len(d.T); k++ {
		mean += d.T[k]
		n++
	}
	mean /= float64(n)
	for k := lag; k < len(d.T); k++ {
		tPast := make([]float64, m.Na)
		for i := 0; i < m.Na; i++ {
			tPast[i] = d.T[k-1-i]
		}
		cPast := make([]mat.Vec, m.Nb)
		for j := 0; j < m.Nb; j++ {
			cPast[j] = d.C[k-1-j]
		}
		pred := m.Predict(tPast, cPast)
		e := d.T[k] - pred
		sse += e * e
		dm := d.T[k] - mean
		sst += dm * dm
	}
	fm := FitMetrics{}
	if sst > 0 {
		fm.R2 = 1 - sse/sst
		fm.FitPct = 100 * (1 - math.Sqrt(sse)/math.Sqrt(sst))
		//lint:ignore floatcompare exact-zero residual is a perfect fit, not a tolerance question
	} else if sse == 0 {
		fm.R2, fm.FitPct = 1, 100
	}
	fm.RMSE = math.Sqrt(sse / float64(n))
	return fm, nil
}
