package sysid_test

import (
	"fmt"

	"vdcpower/internal/mat"
	"vdcpower/internal/sysid"
)

func ExampleIdentify() {
	// Record an experiment: the response time follows a known ARX law of
	// the two tiers' CPU allocations.
	truth := &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.5},
		B:     []mat.Vec{{-0.3, -0.2}, {-0.1, -0.05}},
		Gamma: 2.5,
	}
	ds := &sysid.Dataset{}
	tHist := []float64{0}
	cHist := []mat.Vec{{1, 1}, {1, 1}}
	inputs := []mat.Vec{{1, 2}, {2, 1}, {1.5, 1.5}, {2.5, 1}, {1, 2.5}, {2, 2}, {1.2, 1.8}, {2.2, 1.1}, {1.7, 2.3}, {1.1, 1.3}}
	for k := 0; k < 40; k++ {
		y := truth.Predict(tHist, cHist)
		c := inputs[k%len(inputs)]
		ds.Append(y, c)
		cHist = append([]mat.Vec{c.Clone()}, cHist[:1]...)
		tHist = []float64{y}
	}
	m, err := sysid.Identify(ds, 1, 2, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("a1=%.2f gamma=%.2f stable=%v\n", m.A[0], m.Gamma, m.Stable())
	// Output: a1=0.50 gamma=2.50 stable=true
}

func ExampleModel_DCGain() {
	m := &sysid.Model{
		Na: 1, Nb: 2, NumInputs: 1,
		A: []float64{0.5}, B: []mat.Vec{{-0.3}, {-0.1}}, Gamma: 2,
	}
	// Steady-state response time change per GHz of extra CPU.
	fmt.Printf("%.1f s/GHz\n", m.DCGain(0))
	// Output: -0.8 s/GHz
}
