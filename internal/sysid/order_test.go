package sysid

import (
	"testing"

	"vdcpower/internal/mat"
)

func TestSelectOrderRecoversTrueOrders(t *testing.T) {
	// Data from an ARX(1,2): BIC should pick exactly (1,2) — richer
	// orders improve the fit negligibly and pay the parameter penalty.
	ref := refModel()
	d := makeARXData(ref, 600, 0.05, 31)
	sel, err := SelectOrder(d, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Na != 1 || sel.Nb != 2 {
		t.Fatalf("selected (%d,%d), want (1,2); tried: %+v", sel.Na, sel.Nb, sel.Tried)
	}
	if sel.Model == nil || len(sel.Tried) == 0 {
		t.Fatal("incomplete selection result")
	}
}

func TestSelectOrderSimplerTruth(t *testing.T) {
	// Data from ARX(0? no—Na=1,Nb=1): selection must not over-fit.
	truth := &Model{Na: 1, Nb: 1, NumInputs: 1, A: []float64{0.5}, B: []mat.Vec{{-0.7}}, Gamma: 2}
	d := makeARXData(truth, 600, 0.05, 32)
	sel, err := SelectOrder(d, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Na != 1 || sel.Nb != 1 {
		t.Fatalf("selected (%d,%d), want (1,1)", sel.Na, sel.Nb)
	}
}

func TestSelectOrderErrors(t *testing.T) {
	if _, err := SelectOrder(&Dataset{}, 2, 2, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
	d := makeARXData(refModel(), 100, 0, 33)
	if _, err := SelectOrder(d, -1, 0, 2); err == nil {
		t.Fatal("bad bounds accepted")
	}
}
