package sysid

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	m := refModel()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Na != m.Na || back.Nb != m.Nb || back.NumInputs != m.NumInputs {
		t.Fatalf("orders changed: %+v", back)
	}
	if back.A[0] != m.A[0] || back.Gamma != m.Gamma {
		t.Fatalf("parameters changed: %+v", back)
	}
	for j := range m.B {
		for i := range m.B[j] {
			if back.B[j][i] != m.B[j][i] {
				t.Fatalf("B[%d][%d] changed", j, i)
			}
		}
	}
}

func TestReadModelValidates(t *testing.T) {
	// Structurally valid JSON but inconsistent orders must be rejected.
	bad := `{"na":2,"nb":2,"num_inputs":2,"a":[0.5],"b":[[-1,-1],[-0.1,-0.1]],"gamma":1}`
	if _, err := ReadModel(strings.NewReader(bad)); err == nil {
		t.Fatal("inconsistent model accepted")
	}
	if _, err := ReadModel(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestModelJSONIsStableFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := refModel().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"na"`, `"nb"`, `"num_inputs"`, `"a"`, `"b"`, `"gamma"`} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("wire format missing %s:\n%s", key, buf.String())
		}
	}
}
