package sysid

import (
	"fmt"

	"vdcpower/internal/mat"
)

// RLS is a recursive least-squares estimator with exponential forgetting,
// used for online re-identification when the workload drifts away from
// the operating point of the offline experiment (the robustness concern
// of Section VII-A).
type RLS struct {
	na, nb, numInputs int
	theta             mat.Vec  // parameter estimate
	p                 *mat.Mat // inverse covariance
	lambda            float64  // forgetting factor in (0, 1]

	tHist []float64 // t(k-1), t(k-2), ...
	cHist []mat.Vec // c(k-1), c(k-2), ...
	seen  int
}

// NewRLS creates an estimator for an ARX(na, nb) model with numInputs
// inputs. lambda is the forgetting factor (1 = ordinary RLS; 0.95–0.99
// adapts to drift). p0 scales the initial covariance; 1e4 is a sensible
// default for poorly known parameters.
func NewRLS(na, nb, numInputs int, lambda, p0 float64) (*RLS, error) {
	if na < 0 || nb < 1 || numInputs < 1 {
		return nil, fmt.Errorf("sysid: invalid orders Na=%d Nb=%d inputs=%d", na, nb, numInputs)
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("sysid: forgetting factor %v outside (0,1]", lambda)
	}
	if p0 <= 0 {
		return nil, fmt.Errorf("sysid: p0 must be positive, got %v", p0)
	}
	n := na + nb*numInputs + 1
	r := &RLS{
		na: na, nb: nb, numInputs: numInputs,
		theta:  make(mat.Vec, n),
		p:      mat.Identity(n).Scale(p0),
		lambda: lambda,
	}
	return r, nil
}

// regressor builds φ(k) from the stored history, or nil if the history is
// still too short.
func (r *RLS) regressor() mat.Vec {
	if len(r.tHist) < r.na || len(r.cHist) < r.nb {
		return nil
	}
	phi := make(mat.Vec, 0, r.na+r.nb*r.numInputs+1)
	for i := 0; i < r.na; i++ {
		phi = append(phi, r.tHist[i])
	}
	for j := 0; j < r.nb; j++ {
		phi = append(phi, r.cHist[j]...)
	}
	phi = append(phi, 1)
	return phi
}

// Observe folds one sample (the measured output t under input c applied
// this period) into the estimate.
func (r *RLS) Observe(t float64, c mat.Vec) {
	if len(c) != r.numInputs {
		//lint:ignore panicpolicy dimension mismatch is a programming error, like an out-of-range index
		panic(fmt.Sprintf("sysid: RLS input dimension %d, want %d", len(c), r.numInputs))
	}
	// Record the input first: c is c(k), part of the regressor for t(k)
	// via the c(k−1) term at the *next* step — but for t(k) itself the
	// regressor uses history already stored. Following the dataset
	// convention of Identify, c[k] is applied during period k, so t(k)
	// depends on c(k−1), c(k−2), ...
	if phi := r.regressor(); phi != nil {
		r.update(phi, t)
	}
	r.tHist = append([]float64{t}, r.tHist...)
	if len(r.tHist) > r.na {
		r.tHist = r.tHist[:r.na]
	}
	r.cHist = append([]mat.Vec{c.Clone()}, r.cHist...)
	if len(r.cHist) > r.nb {
		r.cHist = r.cHist[:r.nb]
	}
	r.seen++
}

// update applies the RLS recursion with forgetting.
func (r *RLS) update(phi mat.Vec, y float64) {
	pphi := r.p.MulVec(phi)
	denom := r.lambda + phi.Dot(pphi)
	gain := pphi.Clone().Scale(1 / denom)
	err := y - phi.Dot(r.theta)
	r.theta.AddScaled(err, gain)
	// P ← (P − g·φᵀP) / λ
	n := len(phi)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.p.Set(i, j, (r.p.At(i, j)-gain[i]*pphi[j])/r.lambda)
		}
	}
}

// Samples returns the number of observations folded in.
func (r *RLS) Samples() int { return r.seen }

// Model extracts the current parameter estimate as an ARX model.
func (r *RLS) Model() *Model {
	return unpack(r.theta.Clone(), r.na, r.nb, r.numInputs)
}
