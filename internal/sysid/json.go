package sysid

import (
	"encoding/json"
	"fmt"
	"io"
)

// Models identified offline are deployed to controllers at run time; the
// JSON form is the hand-off artifact (cmd/sysident writes it, operators
// check it into config management).

// modelJSON is the serialized layout, kept separate from Model so the
// wire format is explicit and stable.
type modelJSON struct {
	Na        int         `json:"na"`
	Nb        int         `json:"nb"`
	NumInputs int         `json:"num_inputs"`
	A         []float64   `json:"a"`
	B         [][]float64 `json:"b"`
	Gamma     float64     `json:"gamma"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	mj := modelJSON{Na: m.Na, Nb: m.Nb, NumInputs: m.NumInputs, A: m.A, Gamma: m.Gamma}
	for _, b := range m.B {
		mj.B = append(mj.B, b)
	}
	return json.Marshal(mj)
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return fmt.Errorf("sysid: decoding model: %w", err)
	}
	m.Na, m.Nb, m.NumInputs = mj.Na, mj.Nb, mj.NumInputs
	m.A, m.Gamma = mj.A, mj.Gamma
	m.B = nil
	for _, b := range mj.B {
		m.B = append(m.B, b)
	}
	return m.Validate()
}

// WriteJSON writes the model as indented JSON.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadModel parses a model written by WriteJSON.
func ReadModel(r io.Reader) (*Model, error) {
	m := &Model{}
	if err := json.NewDecoder(r).Decode(m); err != nil {
		return nil, fmt.Errorf("sysid: reading model: %w", err)
	}
	return m, nil
}
