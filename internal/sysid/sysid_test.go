package sysid

import (
	"math"
	"math/rand"
	"testing"

	"vdcpower/internal/mat"
)

// makeARXData generates a dataset from a known ARX model, optionally with
// output noise, using persistently exciting random inputs.
func makeARXData(m *Model, n int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	tHist := make([]float64, m.Na)
	cHist := make([]mat.Vec, m.Nb)
	for j := range cHist {
		cHist[j] = make(mat.Vec, m.NumInputs)
	}
	for k := 0; k < n; k++ {
		// Measure t(k) from the history (it depends on c(k−1), c(k−2), …
		// per Eq. 1), then pick the new allocation c(k) for the next
		// period — the same convention Dataset/Identify use.
		y := m.Predict(tHist, cHist) + noise*rng.NormFloat64()
		c := make(mat.Vec, m.NumInputs)
		for i := range c {
			c[i] = 1 + rng.Float64()*2 // inputs in [1, 3] GHz
		}
		d.Append(y, c)
		cHist = append([]mat.Vec{c}, cHist...)
		if len(cHist) > m.Nb {
			cHist = cHist[:m.Nb]
		}
		tHist = append([]float64{y}, tHist...)
		if len(tHist) > m.Na {
			tHist = tHist[:m.Na]
		}
	}
	return d
}

func refModel() *Model {
	return &Model{
		Na: 1, Nb: 2, NumInputs: 2,
		A:     []float64{0.5},
		B:     []mat.Vec{{-0.3, -0.2}, {-0.1, -0.05}},
		Gamma: 2.5,
	}
}

func TestIdentifyRecoversNoiselessModel(t *testing.T) {
	ref := refModel()
	d := makeARXData(ref, 200, 0, 1)
	got, err := Identify(d, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A[0]-0.5) > 1e-8 {
		t.Fatalf("A = %v", got.A)
	}
	for j := range ref.B {
		for i := range ref.B[j] {
			if math.Abs(got.B[j][i]-ref.B[j][i]) > 1e-8 {
				t.Fatalf("B[%d][%d] = %v, want %v", j, i, got.B[j][i], ref.B[j][i])
			}
		}
	}
	if math.Abs(got.Gamma-2.5) > 1e-7 {
		t.Fatalf("Gamma = %v", got.Gamma)
	}
}

func TestIdentifyWithNoiseStillClose(t *testing.T) {
	ref := refModel()
	d := makeARXData(ref, 2000, 0.05, 2)
	got, err := Identify(d, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A[0]-0.5) > 0.05 {
		t.Fatalf("A = %v", got.A)
	}
	fm, err := Evaluate(got, d)
	if err != nil {
		t.Fatal(err)
	}
	if fm.R2 < 0.7 {
		t.Fatalf("R2 = %v, too low", fm.R2)
	}
}

func TestIdentifyErrors(t *testing.T) {
	d := &Dataset{}
	if _, err := Identify(d, 1, 2, 2); err == nil {
		t.Fatal("expected error: too few samples")
	}
	if _, err := Identify(d, -1, 2, 2); err == nil {
		t.Fatal("expected error: bad na")
	}
	if _, err := Identify(d, 1, 0, 2); err == nil {
		t.Fatal("expected error: bad nb")
	}
	if _, err := Identify(d, 1, 1, 0); err == nil {
		t.Fatal("expected error: bad inputs")
	}
	d.T = []float64{1}
	if _, err := Identify(d, 1, 1, 1); err == nil {
		t.Fatal("expected error: T/C mismatch")
	}
	// Wrong input dimension.
	d2 := &Dataset{}
	for k := 0; k < 30; k++ {
		d2.Append(float64(k), mat.Vec{1})
	}
	if _, err := Identify(d2, 1, 1, 2); err == nil {
		t.Fatal("expected error: wrong input dim")
	}
}

func TestModelValidate(t *testing.T) {
	m := refModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := refModel()
	bad.A = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	bad2 := refModel()
	bad2.B[0] = mat.Vec{1}
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected validation error for B width")
	}
}

func TestModelPredictTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	refModel().Predict(nil, nil)
}

func TestDCGain(t *testing.T) {
	m := refModel()
	// input 0: (−0.3 − 0.1)/(1 − 0.5) = −0.8
	if g := m.DCGain(0); math.Abs(g+0.8) > 1e-12 {
		t.Fatalf("DCGain = %v, want -0.8", g)
	}
}

func TestStable(t *testing.T) {
	if !refModel().Stable() {
		t.Fatal("reference model should be stable")
	}
	un := refModel()
	un.A = []float64{1.2}
	if un.Stable() {
		t.Fatal("|a|>1 should be unstable")
	}
}

func TestSimulateMatchesPredictChain(t *testing.T) {
	m := refModel()
	c := []mat.Vec{{1, 1}, {2, 1}, {1.5, 2}, {1, 1}}
	out := m.Simulate([]float64{1.0}, []mat.Vec{{1, 1}, {1, 1}}, c)
	if len(out) != len(c) {
		t.Fatalf("len = %d", len(out))
	}
	// Manual first step: t = 0.5·1 + B1·c0 + B2·(1,1) + γ
	want := 0.5*1 + (-0.3*1 - 0.2*1) + (-0.1*1 - 0.05*1) + 2.5
	if math.Abs(out[0]-want) > 1e-12 {
		t.Fatalf("out[0] = %v, want %v", out[0], want)
	}
}

func TestSimulateConvergesToDCValue(t *testing.T) {
	m := refModel()
	c := make([]mat.Vec, 200)
	for i := range c {
		c[i] = mat.Vec{2, 2}
	}
	out := m.Simulate([]float64{0}, []mat.Vec{{2, 2}, {2, 2}}, c)
	// Steady state: t = (γ + Σb·2) / (1−a)
	want := (2.5 + 2*(-0.3-0.2-0.1-0.05)) / 0.5
	if math.Abs(out[len(out)-1]-want) > 1e-9 {
		t.Fatalf("steady state %v, want %v", out[len(out)-1], want)
	}
}

func TestEvaluatePerfectModel(t *testing.T) {
	ref := refModel()
	d := makeARXData(ref, 100, 0, 3)
	fm, err := Evaluate(ref, d)
	if err != nil {
		t.Fatal(err)
	}
	if fm.R2 < 1-1e-9 || fm.RMSE > 1e-9 {
		t.Fatalf("perfect model metrics %+v", fm)
	}
}

func TestEvaluateErrors(t *testing.T) {
	m := refModel()
	if _, err := Evaluate(m, &Dataset{}); err == nil {
		t.Fatal("expected error on empty dataset")
	}
	bad := refModel()
	bad.A = nil
	d := makeARXData(refModel(), 50, 0, 4)
	if _, err := Evaluate(bad, d); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestModelStringAndNumParams(t *testing.T) {
	m := refModel()
	if m.NumParams() != 1+2*2+1 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRLSConvergesToTrueParameters(t *testing.T) {
	ref := refModel()
	r, err := NewRLS(1, 2, 2, 1.0, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	d := makeARXData(ref, 500, 0, 5)
	for k := 0; k < d.Len(); k++ {
		r.Observe(d.T[k], d.C[k])
	}
	got := r.Model()
	if math.Abs(got.A[0]-0.5) > 1e-3 {
		t.Fatalf("RLS A = %v", got.A)
	}
	if math.Abs(got.Gamma-2.5) > 1e-2 {
		t.Fatalf("RLS Gamma = %v", got.Gamma)
	}
	if r.Samples() != 500 {
		t.Fatalf("Samples = %d", r.Samples())
	}
}

func TestRLSTracksParameterDrift(t *testing.T) {
	r, err := NewRLS(1, 1, 1, 0.97, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	m1 := &Model{Na: 1, Nb: 1, NumInputs: 1, A: []float64{0.4}, B: []mat.Vec{{-0.5}}, Gamma: 2}
	m2 := &Model{Na: 1, Nb: 1, NumInputs: 1, A: []float64{0.6}, B: []mat.Vec{{-0.9}}, Gamma: 3}
	for _, m := range []*Model{m1, m2} {
		d := makeARXData(m, 400, 0, 6)
		for k := 0; k < d.Len(); k++ {
			r.Observe(d.T[k], d.C[k])
		}
	}
	got := r.Model()
	if math.Abs(got.A[0]-0.6) > 0.05 || math.Abs(got.B[0][0]+0.9) > 0.05 {
		t.Fatalf("RLS failed to track drift: %+v", got)
	}
}

func TestNewRLSValidation(t *testing.T) {
	cases := []struct {
		na, nb, ni int
		lambda, p0 float64
	}{
		{-1, 1, 1, 1, 1},
		{1, 0, 1, 1, 1},
		{1, 1, 0, 1, 1},
		{1, 1, 1, 0, 1},
		{1, 1, 1, 1.5, 1},
		{1, 1, 1, 1, 0},
	}
	for i, c := range cases {
		if _, err := NewRLS(c.na, c.nb, c.ni, c.lambda, c.p0); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestRLSWrongInputDimPanics(t *testing.T) {
	r, _ := NewRLS(1, 1, 2, 1, 1e4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Observe(1.0, mat.Vec{1})
}

func BenchmarkIdentify500(b *testing.B) {
	d := makeARXData(refModel(), 500, 0.05, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Identify(d, 1, 2, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRLSObserve(b *testing.B) {
	r, _ := NewRLS(1, 2, 2, 0.98, 1e4)
	c := mat.Vec{1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(1.0, c)
	}
}
