package sysid

import (
	"math"
	"testing"

	"vdcpower/internal/mat"
)

func TestIdentifyRidgeMatchesLSWhenWellConditioned(t *testing.T) {
	ref := refModel()
	d := makeARXData(ref, 400, 0.01, 21)
	ls, err := Identify(d, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := IdentifyRidge(d, 1, 2, 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ls.A[0]-rr.A[0]) > 1e-4 || math.Abs(ls.Gamma-rr.Gamma) > 1e-3 {
		t.Fatalf("ridge diverged from LS: %v vs %v", rr, ls)
	}
}

func TestIdentifyRidgeSurvivesConstantInputs(t *testing.T) {
	// Constant allocations: the input columns are collinear with the
	// affine term, ordinary least squares fails, ridge degrades
	// gracefully.
	ref := refModel()
	d := &Dataset{}
	tHist := []float64{0}
	cHist := []mat.Vec{{2, 2}, {2, 2}}
	for k := 0; k < 100; k++ {
		y := ref.Predict(tHist, cHist)
		d.Append(y, mat.Vec{2, 2})
		tHist = []float64{y}
	}
	if _, err := Identify(d, 1, 2, 2); err == nil {
		t.Fatal("expected LS failure on unexcited data")
	}
	m, err := IdentifyRidge(d, 1, 2, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// The ridge model must at least reproduce the steady state.
	fm, err := Evaluate(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if fm.RMSE > 0.05 {
		t.Fatalf("ridge model RMSE %v too high on its own data", fm.RMSE)
	}
}

func TestIdentifyRidgeValidation(t *testing.T) {
	d := makeARXData(refModel(), 100, 0, 22)
	if _, err := IdentifyRidge(d, 1, 2, 2, 0); err == nil {
		t.Fatal("λ=0 accepted")
	}
	if _, err := IdentifyRidge(d, 1, 2, 2, -1); err == nil {
		t.Fatal("λ<0 accepted")
	}
}
