package workload

import (
	"bytes"
	"math"
	"testing"
)

func smallConfig() GenConfig {
	return GenConfig{NumVMs: 40, Days: 7, StepsPerHour: 4, Seed: 1}
}

func TestGenerateDimensions(t *testing.T) {
	tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVMs() != 40 {
		t.Fatalf("NumVMs = %d", tr.NumVMs())
	}
	if tr.NumSteps() != 7*24*4 {
		t.Fatalf("NumSteps = %d, want 672", tr.NumSteps())
	}
	if tr.StepSeconds != 900 {
		t.Fatalf("StepSeconds = %v, want 900", tr.StepSeconds)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for k := range a.Series[i] {
			if a.Series[i][k] != b.Series[i][k] {
				t.Fatalf("nondeterministic at vm %d step %d", i, k)
			}
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	a, _ := Generate(smallConfig())
	cfg := smallConfig()
	cfg.Seed = 99
	b, _ := Generate(cfg)
	same := true
	for k := range a.Series[0] {
		if a.Series[0][k] != b.Series[0][k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	for _, cfg := range []GenConfig{
		{NumVMs: 0, Days: 1, StepsPerHour: 4},
		{NumVMs: 1, Days: 0, StepsPerHour: 4},
		{NumVMs: 1, Days: 1, StepsPerHour: 0},
	} {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestFinancialSectorWeekdayWeekendContrast(t *testing.T) {
	// Financial load during weekday business hours must clearly exceed
	// weekend load at the same hour — the diurnal/weekly structure the
	// consolidation algorithms exploit.
	cfg := GenConfig{NumVMs: 200, Days: 7, StepsPerHour: 4, Seed: 3}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var weekday, weekend float64
	var nd, ne int
	for i := 0; i < tr.NumVMs(); i++ {
		if tr.Sectors[i] != Financial {
			continue
		}
		for k := 0; k < tr.NumSteps(); k++ {
			hourOfWeek := float64(k) / 4
			day := int(hourOfWeek/24) % 7
			hour := math.Mod(hourOfWeek, 24)
			if hour < 10 || hour >= 16 {
				continue
			}
			if day < 5 {
				weekday += tr.At(i, k)
				nd++
			} else {
				weekend += tr.At(i, k)
				ne++
			}
		}
	}
	if nd == 0 || ne == 0 {
		t.Fatal("no financial VMs sampled")
	}
	weekday /= float64(nd)
	weekend /= float64(ne)
	if weekday < weekend*1.5 {
		t.Fatalf("weekday %v vs weekend %v: no business-hours contrast", weekday, weekend)
	}
}

func TestSectorString(t *testing.T) {
	for s := Manufacturing; s < numSectors; s++ {
		if s.String() == "" {
			t.Fatalf("sector %d has empty name", s)
		}
	}
	if Sector(99).String() == "" {
		t.Fatal("unknown sector must still render")
	}
}

func TestSlice(t *testing.T) {
	tr, _ := Generate(smallConfig())
	sub, err := tr.Slice(10)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVMs() != 10 || sub.NumSteps() != tr.NumSteps() {
		t.Fatalf("slice dims %d/%d", sub.NumVMs(), sub.NumSteps())
	}
	if _, err := tr.Slice(0); err == nil {
		t.Fatal("slice 0 accepted")
	}
	if _, err := tr.Slice(41); err == nil {
		t.Fatal("oversized slice accepted")
	}
}

func TestMeanUtilizationInRange(t *testing.T) {
	tr, _ := Generate(smallConfig())
	for i := 0; i < tr.NumVMs(); i++ {
		m := tr.MeanUtilization(i)
		if m <= 0 || m >= 1 {
			t.Fatalf("vm %d mean %v outside (0,1)", i, m)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, _ := Generate(smallConfig())
	tr.Series[3][5] = 1.5
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-range value not caught")
	}
	tr, _ = Generate(smallConfig())
	tr.Series[0] = tr.Series[0][:10]
	if err := tr.Validate(); err == nil {
		t.Fatal("ragged series not caught")
	}
	tr, _ = Generate(smallConfig())
	tr.Names = tr.Names[:5]
	if err := tr.Validate(); err == nil {
		t.Fatal("name mismatch not caught")
	}
	tr, _ = Generate(smallConfig())
	tr.StepSeconds = 0
	if err := tr.Validate(); err == nil {
		t.Fatal("zero step not caught")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.NumVMs = 5
	cfg.Days = 1
	tr, _ := Generate(cfg)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVMs() != tr.NumVMs() || back.NumSteps() != tr.NumSteps() {
		t.Fatalf("dims changed: %d/%d", back.NumVMs(), back.NumSteps())
	}
	if back.StepSeconds != tr.StepSeconds {
		t.Fatal("step changed")
	}
	for i := range tr.Series {
		if back.Names[i] != tr.Names[i] || back.Sectors[i] != tr.Sectors[i] {
			t.Fatalf("metadata changed for vm %d", i)
		}
		for k := range tr.Series[i] {
			if math.Abs(back.Series[i][k]-tr.Series[i][k]) > 1e-6 {
				t.Fatalf("value drift at %d/%d", i, k)
			}
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"not,a,trace\n",
		"step_seconds,abc\n",
		"step_seconds,900\nvm0,notanint,0.5\n",
		"step_seconds,900\nvm0,0,xyz\n",
		"step_seconds,900\nvm0,0\n", // too short
	} {
		if _, err := ReadCSV(bytes.NewReader([]byte(s))); err == nil {
			t.Fatalf("accepted garbage %q", s)
		}
	}
}

func TestGobRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.NumVMs = 8
	tr, _ := Generate(cfg)
	var buf bytes.Buffer
	if err := tr.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVMs() != 8 || back.NumSteps() != tr.NumSteps() {
		t.Fatal("gob round trip changed dims")
	}
	for k := range tr.Series[2] {
		if back.Series[2][k] != tr.Series[2][k] {
			t.Fatal("gob round trip changed values")
		}
	}
}

func TestGobRejectsGarbage(t *testing.T) {
	if _, err := ReadGob(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("accepted garbage gob")
	}
}

func BenchmarkGenerate500VMs(b *testing.B) {
	cfg := GenConfig{NumVMs: 500, Days: 7, StepsPerHour: 4, Seed: 5}
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
