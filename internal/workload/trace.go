// Package workload generates and stores CPU utilization traces. The
// paper's Fig. 6 simulation replays a proprietary trace of 5,415 real
// servers (15-minute average CPU utilization, 7 days, ten companies in
// manufacturing, telecommunications, financial and retail sectors). That
// trace is not publicly available, so this package synthesizes an
// equivalent: per-sector diurnal and weekly patterns, heterogeneous base
// loads, autocorrelated noise, and occasional bursts, sampled every 15
// minutes for 7 days starting on a Monday — the statistical features the
// consolidation optimizer actually reacts to. Generation is fully
// deterministic given a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Sector labels the industry pattern of a VM's load, mirroring the
// sectors covered by the paper's trace.
type Sector int

// The four sectors of the source trace.
const (
	Manufacturing Sector = iota
	Telecom
	Financial
	Retail
	numSectors
)

// String names the sector.
func (s Sector) String() string {
	switch s {
	case Manufacturing:
		return "manufacturing"
	case Telecom:
		return "telecom"
	case Financial:
		return "financial"
	case Retail:
		return "retail"
	}
	return fmt.Sprintf("sector(%d)", int(s))
}

// Trace holds per-VM CPU utilization series sampled at a fixed interval.
// Utilization is relative to the VM's own peak requirement (0..1).
type Trace struct {
	StepSeconds float64     // sampling interval (900 for 15 minutes)
	Names       []string    // VM names, one per series
	Sectors     []Sector    // sector per VM
	Series      [][]float64 // [vm][step] utilization in [0,1]
}

// NumVMs returns the number of series.
func (t *Trace) NumVMs() int { return len(t.Series) }

// NumSteps returns the number of samples per series (0 if empty).
func (t *Trace) NumSteps() int {
	if len(t.Series) == 0 {
		return 0
	}
	return len(t.Series[0])
}

// At returns the utilization of VM vm at step k.
func (t *Trace) At(vm, k int) float64 { return t.Series[vm][k] }

// Validate checks structural consistency and value ranges.
func (t *Trace) Validate() error {
	if t.StepSeconds <= 0 {
		return fmt.Errorf("workload: nonpositive step %v", t.StepSeconds)
	}
	if len(t.Names) != len(t.Series) || len(t.Sectors) != len(t.Series) {
		return fmt.Errorf("workload: names/sectors/series length mismatch %d/%d/%d",
			len(t.Names), len(t.Sectors), len(t.Series))
	}
	steps := t.NumSteps()
	for i, s := range t.Series {
		if len(s) != steps {
			return fmt.Errorf("workload: series %d has %d steps, want %d", i, len(s), steps)
		}
		for k, u := range s {
			if u < 0 || u > 1 || math.IsNaN(u) {
				return fmt.Errorf("workload: series %d step %d utilization %v out of [0,1]", i, k, u)
			}
		}
	}
	return nil
}

// GenConfig parameterizes trace synthesis.
type GenConfig struct {
	NumVMs       int
	Days         int // 7 reproduces the paper's horizon
	StepsPerHour int // 4 reproduces the 15-minute sampling
	Seed         int64
}

// DefaultGenConfig mirrors the paper's trace dimensions.
func DefaultGenConfig() GenConfig {
	return GenConfig{NumVMs: 5415, Days: 7, StepsPerHour: 4, Seed: 2008}
}

// sectorShape returns the deterministic utilization shape for a sector at
// the given hour-of-day and day-of-week (0 = Monday), in [0,1].
func sectorShape(s Sector, hour float64, day int) float64 {
	weekend := day >= 5
	switch s {
	case Manufacturing:
		// Two production shifts 06–22, lower weekend output.
		v := 0.25
		if hour >= 6 && hour < 22 {
			v = 0.7
		}
		if weekend {
			v *= 0.55
		}
		return v
	case Telecom:
		// Smooth diurnal wave peaking in the evening, mild weekend dip.
		v := 0.45 + 0.3*math.Sin((hour-13)/24*2*math.Pi)
		if weekend {
			v *= 0.9
		}
		return clamp01(v)
	case Financial:
		// Business hours on weekdays, near-idle otherwise, with an
		// end-of-day batch bump.
		v := 0.12
		if !weekend && hour >= 8 && hour < 18 {
			v = 0.75
		}
		if !weekend && hour >= 18 && hour < 21 {
			v = 0.5 // settlement batch
		}
		return v
	case Retail:
		// Daytime plus evening peaks, strongest on weekends.
		v := 0.2 + 0.35*math.Exp(-sq(hour-12)/18) + 0.3*math.Exp(-sq(hour-19.5)/8)
		if weekend {
			v *= 1.25
		}
		return clamp01(v)
	}
	return 0.3
}

func sq(x float64) float64      { return x * x }
func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// Generate synthesizes a trace. Each VM gets a sector, a scale and phase
// jitter, AR(1) noise, and rare bursts (the "breaking news" events the
// response time controller must absorb).
func Generate(cfg GenConfig) (*Trace, error) {
	if cfg.NumVMs <= 0 || cfg.Days <= 0 || cfg.StepsPerHour <= 0 {
		return nil, fmt.Errorf("workload: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	steps := cfg.Days * 24 * cfg.StepsPerHour
	tr := &Trace{
		StepSeconds: 3600 / float64(cfg.StepsPerHour),
		Names:       make([]string, cfg.NumVMs),
		Sectors:     make([]Sector, cfg.NumVMs),
		Series:      make([][]float64, cfg.NumVMs),
	}
	for i := 0; i < cfg.NumVMs; i++ {
		sector := Sector(rng.Intn(int(numSectors)))
		tr.Names[i] = fmt.Sprintf("vm-%s-%05d", sector, i)
		tr.Sectors[i] = sector
		scale := 0.3 + 0.45*rng.Float64()     // peak utilization of this VM
		phase := (rng.Float64() - 0.5) * 2.0  // ±1 h phase jitter
		noiseAmp := 0.03 + 0.05*rng.Float64() // AR(1) noise amplitude
		burstRate := 0.002 + 0.002*rng.Float64()
		series := make([]float64, steps)
		noise := 0.0
		burstLeft, burstLevel := 0, 0.0
		for k := 0; k < steps; k++ {
			hourOfWeek := float64(k) / float64(cfg.StepsPerHour)
			day := int(hourOfWeek/24) % 7
			hour := math.Mod(hourOfWeek+phase+24, 24)
			base := sectorShape(sector, hour, day) * scale
			noise = 0.85*noise + noiseAmp*rng.NormFloat64()
			if burstLeft == 0 && rng.Float64() < burstRate {
				burstLeft = 2 + rng.Intn(8) // 30 min – 2.5 h surge
				burstLevel = 0.2 + 0.4*rng.Float64()
			}
			burst := 0.0
			if burstLeft > 0 {
				burst = burstLevel
				burstLeft--
			}
			series[k] = clamp01(base + noise + burst)
			if series[k] < 0.01 {
				series[k] = 0.01 // servers are never literally idle
			}
		}
		tr.Series[i] = series
	}
	return tr, nil
}

// Slice returns a new trace restricted to the first n VMs (the Fig. 6
// sweep over data centers of increasing size).
func (t *Trace) Slice(n int) (*Trace, error) {
	if n <= 0 || n > t.NumVMs() {
		return nil, fmt.Errorf("workload: slice size %d out of range [1,%d]", n, t.NumVMs())
	}
	return &Trace{
		StepSeconds: t.StepSeconds,
		Names:       t.Names[:n],
		Sectors:     t.Sectors[:n],
		Series:      t.Series[:n],
	}, nil
}

// MeanUtilization returns the average utilization of VM vm over the trace.
func (t *Trace) MeanUtilization(vm int) float64 {
	s := 0.0
	for _, u := range t.Series[vm] {
		s += u
	}
	return s / float64(len(t.Series[vm]))
}
