package workload

// Native fuzzing for the trace CSV codec: arbitrary bytes must either be
// rejected with an error or parse into a trace that validates and
// round-trips. Seeds live in testdata/fuzz/FuzzReadCSV.

import (
	"bytes"
	"math"
	"testing"
)

func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("step_seconds,900\nweb-a,0,0.5,0.25\nweb-b,1,0.1,0.9\n"))
	f.Add([]byte("step_seconds,1\nonly,2,1\n"))
	f.Add([]byte("step_seconds,900\n"))
	f.Add([]byte("not,a,trace\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // malformed input rejected: fine
		}
		// Anything accepted must satisfy the documented contract.
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace does not validate: %v", err)
		}
		// Write → read must succeed and preserve shape and samples within
		// the codec's documented 6-significant-digit quantization.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("writing accepted trace: %v", err)
		}
		first := buf.String()
		tr2, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written trace: %v", err)
		}
		if tr2.NumVMs() != tr.NumVMs() || tr2.NumSteps() != tr.NumSteps() {
			t.Fatalf("round-trip shape %dx%d, want %dx%d",
				tr2.NumVMs(), tr2.NumSteps(), tr.NumVMs(), tr.NumSteps())
		}
		for i := range tr.Series {
			if tr2.Names[i] != tr.Names[i] || tr2.Sectors[i] != tr.Sectors[i] {
				t.Fatalf("vm %d identity changed: %q/%d vs %q/%d",
					i, tr2.Names[i], tr2.Sectors[i], tr.Names[i], tr.Sectors[i])
			}
			for k := range tr.Series[i] {
				if math.Abs(tr2.Series[i][k]-tr.Series[i][k]) > 1e-5 {
					t.Fatalf("vm %d step %d: %v vs %v", i, k, tr2.Series[i][k], tr.Series[i][k])
				}
			}
		}
		// A second cycle must be byte-identical: the codec is idempotent
		// once values are quantized.
		var buf2 bytes.Buffer
		if err := tr2.WriteCSV(&buf2); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != first {
			t.Fatalf("second write differs from first:\n%s\nvs\n%s", buf2.String(), first)
		}
	})
}
