package workload

import (
	"errors"
	"fmt"
	"math"
)

// SampleError is a typed rejection of one utilization sample: NaN, Inf,
// negative, or above 1. Decoders return it as soon as the offending
// sample is read, so a bad row in a large file fails fast with its
// coordinates instead of after the whole file is parsed.
type SampleError struct {
	VM    string
	Index int // sample index within the VM's series
	Value float64
}

// Error implements error.
func (e *SampleError) Error() string {
	return fmt.Sprintf("workload: VM %q sample %d: utilization %v out of [0,1]", e.VM, e.Index, e.Value)
}

// ShapeError is a typed rejection of a non-rectangular trace: a VM
// whose series length disagrees with the first VM's.
type ShapeError struct {
	VM        string
	Got, Want int
}

// Error implements error.
func (e *ShapeError) Error() string {
	return fmt.Sprintf("workload: VM %q has %d samples, want %d (series must be rectangular)", e.VM, e.Got, e.Want)
}

// IsSampleError reports whether err (or anything it wraps) is a sample
// rejection.
func IsSampleError(err error) bool {
	var se *SampleError
	return errors.As(err, &se)
}

// IsShapeError reports whether err (or anything it wraps) is a shape
// rejection.
func IsShapeError(err error) bool {
	var se *ShapeError
	return errors.As(err, &se)
}

// checkSample applies the sample contract shared by every decoder.
func checkSample(vm string, i int, u float64) error {
	if math.IsNaN(u) || math.IsInf(u, 0) || u < 0 || u > 1 {
		return &SampleError{VM: vm, Index: i, Value: u}
	}
	return nil
}
