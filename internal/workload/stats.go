package workload

import (
	"fmt"
	"sort"
)

// AggregateUtilization returns the across-VM mean utilization at each
// step — the data-center-wide load curve the consolidation optimizer
// rides.
func (t *Trace) AggregateUtilization() []float64 {
	steps := t.NumSteps()
	out := make([]float64, steps)
	if t.NumVMs() == 0 {
		return out
	}
	for _, series := range t.Series {
		for k, u := range series {
			out[k] += u
		}
	}
	for k := range out {
		out[k] /= float64(t.NumVMs())
	}
	return out
}

// PeakToMean returns the ratio between the highest and the average
// aggregate utilization — the consolidation opportunity: a flat trace
// (ratio ≈ 1) leaves nothing for the optimizer to reclaim at night.
func (t *Trace) PeakToMean() float64 {
	agg := t.AggregateUtilization()
	if len(agg) == 0 {
		return 0
	}
	peak, sum := agg[0], 0.0
	for _, u := range agg {
		sum += u
		if u > peak {
			peak = u
		}
	}
	mean := sum / float64(len(agg))
	//lint:ignore floatcompare exact-zero guard before division
	if mean == 0 {
		return 0
	}
	return peak / mean
}

// SectorStat summarizes one sector's share of the trace.
type SectorStat struct {
	Sector   Sector
	NumVMs   int
	MeanUtil float64
}

// SectorBreakdown returns per-sector VM counts and mean utilizations,
// ordered by sector.
func (t *Trace) SectorBreakdown() []SectorStat {
	agg := map[Sector]*SectorStat{}
	for i, s := range t.Sectors {
		st, ok := agg[s]
		if !ok {
			st = &SectorStat{Sector: s}
			agg[s] = st
		}
		st.NumVMs++
		st.MeanUtil += t.MeanUtilization(i)
	}
	var out []SectorStat
	for _, st := range agg {
		st.MeanUtil /= float64(st.NumVMs)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sector < out[j].Sector })
	return out
}

// String renders one sector row.
func (s SectorStat) String() string {
	return fmt.Sprintf("%-14s %6d VMs  mean util %.1f%%", s.Sector, s.NumVMs, 100*s.MeanUtil)
}
