package workload

import (
	"math"
	"testing"
)

func TestAggregateUtilizationBounds(t *testing.T) {
	tr, _ := Generate(smallConfig())
	agg := tr.AggregateUtilization()
	if len(agg) != tr.NumSteps() {
		t.Fatalf("len = %d", len(agg))
	}
	for k, u := range agg {
		if u <= 0 || u > 1 {
			t.Fatalf("step %d: aggregate %v out of (0,1]", k, u)
		}
	}
}

func TestAggregateUtilizationEmptyTrace(t *testing.T) {
	tr := &Trace{StepSeconds: 900}
	if got := tr.AggregateUtilization(); len(got) != 0 {
		t.Fatalf("expected empty, got %v", got)
	}
}

func TestPeakToMeanShowsDiurnalSwing(t *testing.T) {
	tr, _ := Generate(GenConfig{NumVMs: 300, Days: 7, StepsPerHour: 4, Seed: 4})
	ratio := tr.PeakToMean()
	// Sector shapes produce a clear day/night swing.
	if ratio < 1.15 {
		t.Fatalf("peak/mean %v too flat for a diurnal trace", ratio)
	}
	if ratio > 5 {
		t.Fatalf("peak/mean %v implausibly spiky", ratio)
	}
}

func TestPeakToMeanDegenerate(t *testing.T) {
	if (&Trace{}).PeakToMean() != 0 {
		t.Fatal("empty trace should give 0")
	}
}

func TestSectorBreakdown(t *testing.T) {
	tr, _ := Generate(GenConfig{NumVMs: 400, Days: 1, StepsPerHour: 4, Seed: 9})
	rows := tr.SectorBreakdown()
	if len(rows) != 4 {
		t.Fatalf("sectors = %d", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.NumVMs
		if r.MeanUtil <= 0 || r.MeanUtil >= 1 || math.IsNaN(r.MeanUtil) {
			t.Fatalf("%s: mean util %v", r.Sector, r.MeanUtil)
		}
		if r.String() == "" {
			t.Fatal("empty String")
		}
	}
	if total != 400 {
		t.Fatalf("VM counts sum to %d", total)
	}
	// Ordered by sector.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Sector >= rows[i].Sector {
			t.Fatal("not ordered by sector")
		}
	}
}
