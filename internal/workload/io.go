package workload

import (
	"bufio"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV stores the trace in a simple interchange format: a header row
// `step_seconds,<value>` then one row per VM: name, sector, samples...
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"step_seconds", strconv.FormatFloat(t.StepSeconds, 'g', -1, 64)}); err != nil {
		return err
	}
	for i, series := range t.Series {
		row := make([]string, 0, len(series)+2)
		row = append(row, t.Names[i], strconv.Itoa(int(t.Sectors[i])))
		for _, u := range series {
			row = append(row, strconv.FormatFloat(u, 'g', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	if len(header) != 2 || header[0] != "step_seconds" {
		return nil, fmt.Errorf("workload: malformed header %v", header)
	}
	step, err := strconv.ParseFloat(header[1], 64)
	if err != nil {
		return nil, fmt.Errorf("workload: bad step: %w", err)
	}
	tr := &Trace{StepSeconds: step}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading row: %w", err)
		}
		if len(row) < 3 {
			return nil, fmt.Errorf("workload: row for %q too short", row[0])
		}
		sector, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("workload: bad sector for %q: %w", row[0], err)
		}
		if len(tr.Series) > 0 && len(row)-2 != len(tr.Series[0]) {
			return nil, &ShapeError{VM: row[0], Got: len(row) - 2, Want: len(tr.Series[0])}
		}
		series := make([]float64, len(row)-2)
		for i, f := range row[2:] {
			u, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: bad sample %d for %q: %w", i, row[0], err)
			}
			if err := checkSample(row[0], i, u); err != nil {
				return nil, err
			}
			series[i] = u
		}
		tr.Names = append(tr.Names, row[0])
		tr.Sectors = append(tr.Sectors, Sector(sector))
		tr.Series = append(tr.Series, series)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteGob stores the trace in the compact binary format used for large
// traces (the full 5,415-VM trace is ~30 MB as CSV). The write is
// buffered and the flush error propagated — a full disk surfaces here,
// not as a silently truncated file.
func (t *Trace) WriteGob(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(t); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadGob parses a trace written by WriteGob, applying the same typed
// rejections as ReadCSV: a ragged series is a *ShapeError, an
// out-of-range sample a *SampleError.
func ReadGob(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	if err := gob.NewDecoder(r).Decode(tr); err != nil {
		return nil, fmt.Errorf("workload: decoding gob: %w", err)
	}
	for vi, series := range tr.Series {
		if len(series) != len(tr.Series[0]) {
			return nil, &ShapeError{VM: name(tr, vi), Got: len(series), Want: len(tr.Series[0])}
		}
		for i, u := range series {
			if err := checkSample(name(tr, vi), i, u); err != nil {
				return nil, err
			}
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// name is a bounds-tolerant Names lookup for error paths (a corrupt gob
// may carry fewer names than series).
func name(t *Trace, i int) string {
	if i < len(t.Names) {
		return t.Names[i]
	}
	return fmt.Sprintf("#%d", i)
}
