package workload_test

import (
	"fmt"

	"vdcpower/internal/workload"
)

func ExampleGenerate() {
	tr, err := workload.Generate(workload.GenConfig{
		NumVMs: 100, Days: 7, StepsPerHour: 4, Seed: 2008,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d VMs × %d samples, %d sectors\n",
		tr.NumVMs(), tr.NumSteps(), len(tr.SectorBreakdown()))
	// Output: 100 VMs × 672 samples, 4 sectors
}
