// Package appsim simulates multi-tier web applications on the devs
// kernel. Each tier is a processor-sharing (PS) queue whose service
// capacity equals the CPU allocation (GHz) of the VM hosting the tier —
// the standard model of a time-shared web or database server. Closed-loop
// client populations reproduce the semantics of the paper's `ab -c N`
// workload generator, and a response-time monitor yields the
// 90-percentile SLA metric per control period.
package appsim

import (
	"container/heap"
	"math"

	"vdcpower/internal/devs"
)

// job is one request's visit to a tier, keyed by the virtual time at
// which it completes.
type job struct {
	vfinish float64 // virtual time of completion
	done    func()
	index   int // heap index
}

type jobHeap []*job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].vfinish < h[j].vfinish }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *jobHeap) Push(x any)        { j := x.(*job); j.index = len(*h); *h = append(*h, j) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// PSQueue is an egalitarian processor-sharing service station with a
// capacity that may change at any instant (the actuator of the response
// time controller). All jobs in service receive capacity/n GHz each.
//
// The implementation uses the virtual-time formulation of PS: a virtual
// clock advances at rate capacity/n, each job finishes when the clock
// has advanced by its service demand since arrival, and the earliest
// completion sits at the top of a min-heap. Every operation is
// O(log n), so even a divergently overloaded queue (an open workload
// past its stability limit) stays cheap to simulate.
type PSQueue struct {
	sim        *devs.Simulator
	capacity   float64 // effective GHz (minCapacity while paused)
	desired    float64 // capacity requested by the controller
	paused     int     // nesting count of active pauses
	vnow       float64 // virtual clock (GHz·s of per-job service granted)
	jobs       jobHeap
	lastUpdate float64
	next       *devs.Event
	busyCycles float64 // integrated work served, GHz·s
}

// minCapacity guards against a zero allocation stalling the queue forever;
// it corresponds to the tiny CPU share the hypervisor always grants.
const minCapacity = 1e-3

// maxCapacity caps the service rate a single tier may be granted. No
// modeled host comes near it; its job is to keep +Inf (and the virtual
// clock arithmetic downstream) out of the queue.
const maxCapacity = 1e6

// clampCapacity forces a requested capacity into [minCapacity,
// maxCapacity]. NaN needs its own check: math.Max(NaN, min) is NaN, so
// the old clamp let NaN straight through into the virtual clock.
func clampCapacity(capacityGHz float64) float64 {
	if math.IsNaN(capacityGHz) || capacityGHz < minCapacity {
		return minCapacity
	}
	if capacityGHz > maxCapacity {
		return maxCapacity
	}
	return capacityGHz
}

// NewPSQueue creates a PS queue with the given capacity in GHz.
func NewPSQueue(sim *devs.Simulator, capacityGHz float64) *PSQueue {
	q := &PSQueue{sim: sim, lastUpdate: sim.Now()}
	q.desired = clampCapacity(capacityGHz)
	q.capacity = q.desired
	return q
}

// Capacity returns the capacity requested by the controller (the
// effective rate is near zero while paused).
func (q *PSQueue) Capacity() float64 { return q.desired }

// Paused reports whether the queue is currently stalled by a migration.
func (q *PSQueue) Paused() bool { return q.paused > 0 }

// Pause stalls service for the given duration — the stop-and-copy
// downtime of a live migration of the VM backing this tier. Overlapping
// pauses nest; service resumes when the last one expires.
func (q *PSQueue) Pause(seconds float64) {
	if seconds <= 0 {
		return
	}
	q.advance()
	q.paused++
	q.capacity = minCapacity
	q.reschedule()
	q.sim.After(seconds, func() {
		q.advance()
		q.paused--
		if q.paused == 0 {
			q.capacity = q.desired
		}
		q.reschedule()
	})
}

// Len returns the number of jobs in service.
func (q *PSQueue) Len() int { return len(q.jobs) }

// BusyCycles returns the cumulative work served in GHz·s, for utilization
// accounting.
func (q *PSQueue) BusyCycles() float64 {
	q.advance()
	return q.busyCycles
}

// SetCapacity changes the service capacity, crediting work done so far.
// During a pause the new capacity takes effect when service resumes.
func (q *PSQueue) SetCapacity(capacityGHz float64) {
	q.advance()
	q.desired = clampCapacity(capacityGHz)
	if q.paused == 0 {
		q.capacity = q.desired
	}
	q.reschedule()
}

// Submit enqueues a request with the given service demand (GHz·s) and
// calls done when it completes.
func (q *PSQueue) Submit(demand float64, done func()) {
	q.advance()
	// `demand <= 0` alone is a NaN hole: every comparison with NaN is
	// false, so a NaN demand used to poison vfinish and silently corrupt
	// the job heap's ordering. `!(demand > 0)` catches NaN, zero, and
	// negatives alike; +Inf needs its own check.
	if !(demand > 0) || math.IsInf(demand, 1) {
		demand = 1e-9
	}
	heap.Push(&q.jobs, &job{vfinish: q.vnow + demand, done: done})
	q.reschedule()
}

// advance moves the virtual clock forward to the present: each in-service
// job has received (elapsed × capacity / n) further GHz·s of work.
func (q *PSQueue) advance() {
	now := q.sim.Now()
	dt := now - q.lastUpdate
	q.lastUpdate = now
	if dt <= 0 || len(q.jobs) == 0 {
		return
	}
	q.vnow += dt * q.capacity / float64(len(q.jobs))
	q.busyCycles += dt * q.capacity
}

// reschedule re-arms the next-completion event. A re-arm that lands at
// the exact time already armed is coalesced into a no-op: Submit and
// SetCapacity churn would otherwise cancel and recreate the event on
// every call, bloating the kernel heap with dead entries and — once the
// completion time collapses onto the current instant — feeding the
// same-timestamp storm of ROADMAP item 6.
func (q *PSQueue) reschedule() {
	if len(q.jobs) == 0 {
		if q.next != nil {
			q.next.Cancel()
			q.next = nil
		}
		return
	}
	remaining := q.jobs[0].vfinish - q.vnow
	if remaining < 0 {
		remaining = 0
	}
	at := q.sim.Now() + remaining*float64(len(q.jobs))/q.capacity
	//lint:ignore floatcompare coalescing only the bit-identical re-arm; an epsilon would drop genuinely distinct re-arms
	if q.next != nil && !q.next.Cancelled() && q.next.Time == at {
		return
	}
	if q.next != nil {
		q.next.Cancel()
	}
	q.next = q.sim.Schedule(at, q.complete)
	q.next.Label = "psqueue.complete"
}

// complete retires every job whose virtual finish time has been reached.
func (q *PSQueue) complete() {
	q.advance()
	q.next = nil
	const eps = 1e-12
	var finished []*job
	for len(q.jobs) > 0 && q.jobs[0].vfinish <= q.vnow+eps {
		finished = append(finished, heap.Pop(&q.jobs).(*job))
	}
	// Zeno guard (ROADMAP item 6). At large sim times the head job's
	// remaining virtual work can sit above eps while its ETA is below one
	// ulp of the clock: the completion event then re-arms at this exact
	// instant, advance() sees dt == 0, and the loop never terminates.
	// When the ETA cannot move the clock, the work is below the
	// simulation's time resolution — treat it as done: snap the virtual
	// clock forward to the head's finish (a monotone minimum advance) and
	// retire every job that releases. Each complete pass therefore either
	// retires a job or schedules strictly later.
	if len(finished) == 0 && len(q.jobs) > 0 {
		now := q.sim.Now()
		remaining := q.jobs[0].vfinish - q.vnow
		if remaining < 0 {
			remaining = 0
		}
		//lint:ignore floatcompare detecting that the ETA underflows the clock's resolution requires the exact comparison
		if now+remaining*float64(len(q.jobs))/q.capacity == now {
			q.vnow = q.jobs[0].vfinish
			for len(q.jobs) > 0 && q.jobs[0].vfinish <= q.vnow+eps {
				finished = append(finished, heap.Pop(&q.jobs).(*job))
			}
		}
	}
	q.reschedule()
	for _, j := range finished {
		j.done()
	}
}
