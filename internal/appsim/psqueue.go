// Package appsim simulates multi-tier web applications on the devs
// kernel. Each tier is a processor-sharing (PS) queue whose service
// capacity equals the CPU allocation (GHz) of the VM hosting the tier —
// the standard model of a time-shared web or database server. Closed-loop
// client populations reproduce the semantics of the paper's `ab -c N`
// workload generator, and a response-time monitor yields the
// 90-percentile SLA metric per control period.
package appsim

import (
	"container/heap"
	"math"

	"vdcpower/internal/devs"
)

// job is one request's visit to a tier, keyed by the virtual time at
// which it completes.
type job struct {
	vfinish float64 // virtual time of completion
	done    func()
	index   int // heap index
}

type jobHeap []*job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].vfinish < h[j].vfinish }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *jobHeap) Push(x any)        { j := x.(*job); j.index = len(*h); *h = append(*h, j) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// PSQueue is an egalitarian processor-sharing service station with a
// capacity that may change at any instant (the actuator of the response
// time controller). All jobs in service receive capacity/n GHz each.
//
// The implementation uses the virtual-time formulation of PS: a virtual
// clock advances at rate capacity/n, each job finishes when the clock
// has advanced by its service demand since arrival, and the earliest
// completion sits at the top of a min-heap. Every operation is
// O(log n), so even a divergently overloaded queue (an open workload
// past its stability limit) stays cheap to simulate.
type PSQueue struct {
	sim        *devs.Simulator
	capacity   float64 // effective GHz (minCapacity while paused)
	desired    float64 // capacity requested by the controller
	paused     int     // nesting count of active pauses
	vnow       float64 // virtual clock (GHz·s of per-job service granted)
	jobs       jobHeap
	lastUpdate float64
	next       *devs.Event
	busyCycles float64 // integrated work served, GHz·s
}

// minCapacity guards against a zero allocation stalling the queue forever;
// it corresponds to the tiny CPU share the hypervisor always grants.
const minCapacity = 1e-3

// NewPSQueue creates a PS queue with the given capacity in GHz.
func NewPSQueue(sim *devs.Simulator, capacityGHz float64) *PSQueue {
	q := &PSQueue{sim: sim, lastUpdate: sim.Now()}
	q.desired = math.Max(capacityGHz, minCapacity)
	q.capacity = q.desired
	return q
}

// Capacity returns the capacity requested by the controller (the
// effective rate is near zero while paused).
func (q *PSQueue) Capacity() float64 { return q.desired }

// Paused reports whether the queue is currently stalled by a migration.
func (q *PSQueue) Paused() bool { return q.paused > 0 }

// Pause stalls service for the given duration — the stop-and-copy
// downtime of a live migration of the VM backing this tier. Overlapping
// pauses nest; service resumes when the last one expires.
func (q *PSQueue) Pause(seconds float64) {
	if seconds <= 0 {
		return
	}
	q.advance()
	q.paused++
	q.capacity = minCapacity
	q.reschedule()
	q.sim.After(seconds, func() {
		q.advance()
		q.paused--
		if q.paused == 0 {
			q.capacity = q.desired
		}
		q.reschedule()
	})
}

// Len returns the number of jobs in service.
func (q *PSQueue) Len() int { return len(q.jobs) }

// BusyCycles returns the cumulative work served in GHz·s, for utilization
// accounting.
func (q *PSQueue) BusyCycles() float64 {
	q.advance()
	return q.busyCycles
}

// SetCapacity changes the service capacity, crediting work done so far.
// During a pause the new capacity takes effect when service resumes.
func (q *PSQueue) SetCapacity(capacityGHz float64) {
	q.advance()
	q.desired = math.Max(capacityGHz, minCapacity)
	if q.paused == 0 {
		q.capacity = q.desired
	}
	q.reschedule()
}

// Submit enqueues a request with the given service demand (GHz·s) and
// calls done when it completes.
func (q *PSQueue) Submit(demand float64, done func()) {
	q.advance()
	if demand <= 0 {
		demand = 1e-9
	}
	heap.Push(&q.jobs, &job{vfinish: q.vnow + demand, done: done})
	q.reschedule()
}

// advance moves the virtual clock forward to the present: each in-service
// job has received (elapsed × capacity / n) further GHz·s of work.
func (q *PSQueue) advance() {
	now := q.sim.Now()
	dt := now - q.lastUpdate
	q.lastUpdate = now
	if dt <= 0 || len(q.jobs) == 0 {
		return
	}
	q.vnow += dt * q.capacity / float64(len(q.jobs))
	q.busyCycles += dt * q.capacity
}

// reschedule cancels and re-arms the next-completion event.
func (q *PSQueue) reschedule() {
	if q.next != nil {
		q.next.Cancel()
		q.next = nil
	}
	if len(q.jobs) == 0 {
		return
	}
	remaining := q.jobs[0].vfinish - q.vnow
	if remaining < 0 {
		remaining = 0
	}
	eta := remaining * float64(len(q.jobs)) / q.capacity
	q.next = q.sim.After(eta, q.complete)
}

// complete retires every job whose virtual finish time has been reached.
func (q *PSQueue) complete() {
	q.advance()
	q.next = nil
	const eps = 1e-12
	var finished []*job
	for len(q.jobs) > 0 && q.jobs[0].vfinish <= q.vnow+eps {
		finished = append(finished, heap.Pop(&q.jobs).(*job))
	}
	q.reschedule()
	for _, j := range finished {
		j.done()
	}
}
