package appsim

import (
	"math"
	"testing"

	"vdcpower/internal/devs"
	"vdcpower/internal/stats"
)

func TestPauseStallsService(t *testing.T) {
	// 1 GHz·s job at 1 GHz would finish at t=1; a pause [0, 2) delays it
	// to ≈3.
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	var doneAt float64
	q.Submit(1.0, func() { doneAt = sim.Now() })
	q.Pause(2.0)
	if !q.Paused() {
		t.Fatal("Paused() = false during pause")
	}
	sim.Run()
	// A paused queue retains the tiny minCapacity floor, so the job
	// finishes a couple of ms early.
	if math.Abs(doneAt-3.0) > 0.01 {
		t.Fatalf("job finished at %v, want ≈3", doneAt)
	}
	if q.Paused() {
		t.Fatal("still paused after expiry")
	}
}

func TestPauseZeroOrNegativeIsNoop(t *testing.T) {
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	q.Pause(0)
	q.Pause(-1)
	if q.Paused() {
		t.Fatal("no-op pause left queue paused")
	}
	var doneAt float64
	q.Submit(1.0, func() { doneAt = sim.Now() })
	sim.Run()
	if math.Abs(doneAt-1.0) > 1e-9 {
		t.Fatalf("finished at %v, want 1", doneAt)
	}
}

func TestOverlappingPausesNest(t *testing.T) {
	// Pauses [0,2) and [1,3): service resumes at t=3, job done ≈4.
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	var doneAt float64
	q.Submit(1.0, func() { doneAt = sim.Now() })
	q.Pause(2.0)
	sim.Schedule(1.0, func() { q.Pause(2.0) })
	sim.Run()
	if math.Abs(doneAt-4.0) > 1e-2 {
		t.Fatalf("finished at %v, want ≈4", doneAt)
	}
}

func TestSetCapacityDuringPauseDeferred(t *testing.T) {
	// Capacity raised mid-pause takes effect only at resume.
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	var doneAt float64
	q.Submit(2.0, func() { doneAt = sim.Now() })
	q.Pause(1.0)
	sim.Schedule(0.5, func() { q.SetCapacity(2.0) })
	sim.Run()
	// Resume at t=1 with 2 GHz: 2 GHz·s of work → done at 2.
	if math.Abs(doneAt-2.0) > 1e-2 {
		t.Fatalf("finished at %v, want ≈2", doneAt)
	}
	if q.Capacity() != 2.0 {
		t.Fatalf("Capacity() = %v, want the desired 2.0", q.Capacity())
	}
}

func TestAppPauseTierSpikesResponseTimes(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(21))
	a.Start()
	sim.RunUntil(60)
	baseline := stats.Percentile(a.DrainResponseTimes(), 90)
	// A long stall on the database tier.
	a.PauseTier(1, 5.0)
	sim.RunUntil(70)
	spike := stats.Percentile(a.DrainResponseTimes(), 90)
	if spike < baseline+3 {
		t.Fatalf("pause did not spike response times: %v -> %v", baseline, spike)
	}
	// Recovery after the backlog drains.
	sim.RunUntil(140)
	a.DrainResponseTimes()
	sim.RunUntil(200)
	after := stats.Percentile(a.DrainResponseTimes(), 90)
	if after > baseline*3 {
		t.Fatalf("no recovery after pause: %v vs baseline %v", after, baseline)
	}
}
