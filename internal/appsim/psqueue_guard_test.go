package appsim

import (
	"math"
	"math/rand"
	"testing"

	"vdcpower/internal/devs"
)

// Regression for ROADMAP item 6, the Zeno wedge. At a large sim time the
// clock's ulp (~1.2e-7 s at t=1e9) dwarfs the completion tolerance
// (eps=1e-12 GHz·s of virtual work): a tiny job's remaining work sits
// above eps while its ETA underflows the clock, so the completion event
// re-armed at exactly `now` forever. Pre-fix this test never returned.
func TestPSQueueZenoWedgeAtLargeTime(t *testing.T) {
	sim := devs.NewSimulator()
	sim.RunUntil(1e9) // park the clock where ulp is coarse
	q := NewPSQueue(sim, 2.5)
	done := false
	q.Submit(1e-9, func() { done = true }) // ETA 4e-10 s << ulp(1e9)
	st, err := sim.RunUntilBudget(1e9+1, devs.Budget{MaxEvents: 10_000})
	if err != nil {
		t.Fatalf("drain tripped its budget — the Zeno guard regressed: %v", err)
	}
	if !done {
		t.Fatal("sub-resolution job never completed")
	}
	if st.Events > 4 {
		t.Fatalf("retiring one tiny job took %d events", st.Events)
	}
}

// The same shape with many tiny jobs sharing the instant: each complete
// pass must retire at least one job or schedule strictly later.
func TestPSQueueZenoWedgeManyTinyJobs(t *testing.T) {
	sim := devs.NewSimulator()
	sim.RunUntil(1e9)
	q := NewPSQueue(sim, 2.5)
	completed := 0
	for i := 0; i < 100; i++ {
		q.Submit(1e-9*float64(i+1), func() { completed++ })
	}
	if _, err := sim.RunUntilBudget(1e9+1, devs.Budget{MaxEvents: 10_000, MaxSameTimeEvents: 1_000}); err != nil {
		t.Fatalf("drain tripped: %v", err)
	}
	if completed != 100 {
		t.Fatalf("completed = %d, want 100", completed)
	}
}

// Satellite 2: non-finite demand must not poison the virtual clock.
func TestPSQueueSubmitNonFiniteDemand(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), 0, -1} {
		sim := devs.NewSimulator()
		q := NewPSQueue(sim, 2.0)
		order := make([]int, 0, 2)
		q.Submit(bad, func() { order = append(order, 0) })
		q.Submit(1.0, func() { order = append(order, 1) })
		if _, err := sim.RunUntilBudget(100, devs.Budget{MaxEvents: 1_000}); err != nil {
			t.Fatalf("demand=%v wedged the queue: %v", bad, err)
		}
		if len(order) != 2 {
			t.Fatalf("demand=%v: %d of 2 jobs completed", bad, len(order))
		}
		// The degenerate job is clamped to a near-zero demand, so it must
		// finish first — NaN used to corrupt the job heap's ordering.
		if order[0] != 0 {
			t.Fatalf("demand=%v: completion order %v", bad, order)
		}
	}
}

// Satellite 2: non-finite capacity must clamp, not propagate.
func TestPSQueueNonFiniteCapacity(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -3} {
		sim := devs.NewSimulator()
		q := NewPSQueue(sim, bad)
		if c := q.Capacity(); math.IsNaN(c) || c < minCapacity || c > maxCapacity {
			t.Fatalf("NewPSQueue(%v): Capacity = %v", bad, c)
		}
		done := false
		q.Submit(1e-4, func() { done = true })
		q.SetCapacity(bad)
		if c := q.Capacity(); math.IsNaN(c) || c < minCapacity || c > maxCapacity {
			t.Fatalf("SetCapacity(%v): Capacity = %v", bad, c)
		}
		if _, err := sim.RunUntilBudget(1e6, devs.Budget{MaxEvents: 1_000}); err != nil {
			t.Fatalf("capacity=%v wedged the queue: %v", bad, err)
		}
		if !done {
			t.Fatalf("capacity=%v: job never completed", bad)
		}
	}
}

// Submit/SetCapacity churn used to cancel-and-recreate the completion
// event on every call; coalescing plus the kernel's lazy purge keep the
// kernel's pending count proportional to live work, not to call volume.
func TestPSQueueChurnKeepsKernelPendingBounded(t *testing.T) {
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 2.5)
	rng := rand.New(rand.NewSource(42))
	completed := 0
	for burst := 0; burst < 200; burst++ {
		for j := 0; j < 64; j++ {
			q.Submit(0.001+0.01*rng.Float64(), func() { completed++ })
			q.SetCapacity(0.5 + 4*rng.Float64())
		}
		if p := sim.Pending(); p > 2 {
			t.Fatalf("kernel pending = %d after burst %d, want <= 2 (one live completion event)", p, burst)
		}
		if _, err := sim.RunUntilBudget(sim.Now()+0.5, devs.Budget{MaxEvents: 1 << 20}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	if completed != 200*64 {
		t.Fatalf("completed = %d, want %d", completed, 200*64)
	}
}
