package appsim

import (
	"math"
	"testing"

	"vdcpower/internal/devs"
	"vdcpower/internal/stats"
)

func openApp(sim *devs.Simulator, alloc float64, seed int64) *App {
	return New(sim, Config{
		Name: "open",
		Tiers: []TierConfig{
			{DemandMean: 0.020, DemandCV: 1.0, InitialAllocation: alloc},
		},
		Concurrency: 0, // no closed clients
		ThinkTime:   1.0,
		Seed:        seed,
	})
}

func TestOpenWorkloadGeneratesTraffic(t *testing.T) {
	sim := devs.NewSimulator()
	app := openApp(sim, 1.0, 1)
	app.Start()
	src := NewOpenWorkload(sim, app, 20, 2)
	src.Start()
	src.Start() // idempotent
	sim.RunUntil(100)
	// ≈ 2000 completions expected.
	if c := app.Completed(); c < 1700 || c > 2300 {
		t.Fatalf("completed %d, want ≈2000", c)
	}
}

func TestOpenWorkloadStop(t *testing.T) {
	sim := devs.NewSimulator()
	app := openApp(sim, 1.0, 3)
	src := NewOpenWorkload(sim, app, 50, 4)
	src.Start()
	sim.RunUntil(20)
	src.Stop()
	drained := sim.Now() + 10
	sim.RunUntil(drained)
	app.DrainResponseTimes()
	before := app.Completed()
	sim.RunUntil(drained + 50)
	if app.Completed() != before {
		t.Fatal("arrivals continued after Stop")
	}
}

func TestOpenWorkloadSetRate(t *testing.T) {
	sim := devs.NewSimulator()
	app := openApp(sim, 2.0, 5)
	src := NewOpenWorkload(sim, app, 5, 6)
	src.Start()
	sim.RunUntil(100)
	low := app.Completed()
	src.SetRate(50)
	sim.RunUntil(200)
	high := app.Completed() - low
	if high < 5*low {
		t.Fatalf("rate change ineffective: %d then %d", low, high)
	}
	if src.Rate() != 50 {
		t.Fatalf("Rate = %v", src.Rate())
	}
}

func TestOpenWorkloadValidation(t *testing.T) {
	sim := devs.NewSimulator()
	app := openApp(sim, 1.0, 7)
	for _, f := range []func(){
		func() { NewOpenWorkload(sim, app, 0, 1) },
		func() { NewOpenWorkload(sim, app, -3, 1) },
		func() { NewOpenWorkload(sim, app, 1, 1).SetRate(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// The virtual-time PS implementation must stay cheap even when an open
// workload runs past its stability limit and the queue grows without
// bound (the naive O(n)-per-event formulation turns quadratic here).
func TestOverloadedOpenQueueStaysFast(t *testing.T) {
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 0.1) // tiny capacity
	// 20,000 jobs of 1 GHz·s each: the queue only drains ~0.1·3600 GHz·s
	// in an hour, so most jobs pile up.
	for i := 0; i < 20000; i++ {
		at := float64(i) * 0.01
		sim.Schedule(at, func() { q.Submit(1.0, func() {}) })
	}
	sim.RunUntil(3600)
	if q.Len() < 15000 {
		t.Fatalf("queue drained implausibly: %d left", q.Len())
	}
	// Reaching here quickly is the assertion; the old implementation
	// needed minutes for this scenario.
}

func BenchmarkPSQueueHeavyBacklog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := devs.NewSimulator()
		q := NewPSQueue(sim, 1.0)
		for j := 0; j < 5000; j++ {
			at := float64(j) * 0.001
			sim.Schedule(at, func() { q.Submit(0.5, func() {}) })
		}
		sim.RunUntil(600)
	}
}

// M/G/1-PS theory: with Poisson arrivals at rate λ into a PS station
// with mean service time s, the mean sojourn time is s/(1−ρ) regardless
// of the service distribution (PS insensitivity). The simulator must
// reproduce this.
func TestOpenWorkloadMatchesMG1PS(t *testing.T) {
	const (
		alloc  = 1.0
		demand = 0.020 // GHz·s → s = 20 ms at 1 GHz
		lambda = 30.0  // ρ = 0.6
	)
	for _, cv := range []float64{0.5, 1.0, 2.0} {
		sim := devs.NewSimulator()
		app := New(sim, Config{
			Name: "mg1",
			Tiers: []TierConfig{
				{DemandMean: demand, DemandCV: cv, InitialAllocation: alloc},
			},
			Concurrency: 0,
			ThinkTime:   1.0,
			Seed:        11,
		})
		src := NewOpenWorkload(sim, app, lambda, 13)
		src.Start()
		sim.RunUntil(500) // warm up
		app.DrainResponseTimes()
		sim.RunUntil(4500)
		mean := stats.Mean(app.DrainResponseTimes())
		rho := lambda * demand / alloc
		want := (demand / alloc) / (1 - rho)
		if math.Abs(mean-want)/want > 0.08 {
			t.Fatalf("cv=%v: mean sojourn %v, M/G/1-PS predicts %v", cv, mean, want)
		}
	}
}
