package appsim

import (
	"math"
	"testing"

	"vdcpower/internal/devs"
	"vdcpower/internal/stats"
)

func TestPSQueueSingleJob(t *testing.T) {
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 2.0) // 2 GHz
	var doneAt float64 = -1
	q.Submit(1.0, func() { doneAt = sim.Now() }) // 1 GHz·s of work
	sim.Run()
	if math.Abs(doneAt-0.5) > 1e-9 {
		t.Fatalf("single job finished at %v, want 0.5", doneAt)
	}
}

func TestPSQueueEqualSharing(t *testing.T) {
	// Two identical jobs share the processor: both take twice as long.
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	var at []float64
	q.Submit(1.0, func() { at = append(at, sim.Now()) })
	q.Submit(1.0, func() { at = append(at, sim.Now()) })
	sim.Run()
	if len(at) != 2 {
		t.Fatalf("completions = %d", len(at))
	}
	for _, x := range at {
		if math.Abs(x-2.0) > 1e-9 {
			t.Fatalf("completion at %v, want 2.0", x)
		}
	}
}

func TestPSQueueUnequalJobs(t *testing.T) {
	// Jobs of 1 and 3 GHz·s at 1 GHz: the small one finishes at t=2
	// (shared), the big one at t=4 (1 left, alone at full speed after 2,
	// having done 1 of 3 by then... worked out: shares until small exits).
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	var small, big float64
	q.Submit(1.0, func() { small = sim.Now() })
	q.Submit(3.0, func() { big = sim.Now() })
	sim.Run()
	if math.Abs(small-2.0) > 1e-9 {
		t.Fatalf("small at %v, want 2", small)
	}
	if math.Abs(big-4.0) > 1e-9 {
		t.Fatalf("big at %v, want 4", big)
	}
}

func TestPSQueueLateArrival(t *testing.T) {
	// Job A (2 GHz·s) at t=0; job B (1 GHz·s) arrives at t=1.
	// A runs alone 0..1 (1 done), then shares: B needs 1 at 0.5 GHz →
	// finishes t=3; A has 1-... A: remaining 1 at t=1, gets 0.5 GHz for
	// 2s → finishes t=3 too.
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	var aAt, bAt float64
	q.Submit(2.0, func() { aAt = sim.Now() })
	sim.Schedule(1.0, func() { q.Submit(1.0, func() { bAt = sim.Now() }) })
	sim.Run()
	if math.Abs(aAt-3.0) > 1e-9 || math.Abs(bAt-3.0) > 1e-9 {
		t.Fatalf("a=%v b=%v, want both 3", aAt, bAt)
	}
}

func TestPSQueueCapacityChange(t *testing.T) {
	// 2 GHz·s job at 1 GHz; at t=1 capacity doubles → finish at 1.5.
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	var doneAt float64
	q.Submit(2.0, func() { doneAt = sim.Now() })
	sim.Schedule(1.0, func() { q.SetCapacity(2.0) })
	sim.Run()
	if math.Abs(doneAt-1.5) > 1e-9 {
		t.Fatalf("done at %v, want 1.5", doneAt)
	}
}

func TestPSQueueMinCapacityClamp(t *testing.T) {
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 0)
	if q.Capacity() <= 0 {
		t.Fatal("capacity must be clamped above zero")
	}
	q.SetCapacity(-5)
	if q.Capacity() <= 0 {
		t.Fatal("SetCapacity must clamp")
	}
}

func TestPSQueueBusyCycles(t *testing.T) {
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 2.0)
	q.Submit(1.0, func() {})
	sim.Run()
	if got := q.BusyCycles(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("BusyCycles = %v, want 1", got)
	}
}

func TestPSQueueLen(t *testing.T) {
	sim := devs.NewSimulator()
	q := NewPSQueue(sim, 1.0)
	q.Submit(10, func() {})
	q.Submit(10, func() {})
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func twoTierConfig(seed int64) Config {
	return Config{
		Name: "rubbos",
		Tiers: []TierConfig{
			{DemandMean: 0.025, DemandCV: 1.0, InitialAllocation: 1.0},
			{DemandMean: 0.040, DemandCV: 1.0, InitialAllocation: 1.0},
		},
		Concurrency: 40,
		ThinkTime:   1.0,
		Seed:        seed,
	}
}

func TestAppRunsAndCompletesRequests(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(1))
	a.Start()
	sim.RunUntil(60)
	if a.Completed() < 100 {
		t.Fatalf("completed only %d requests in 60s", a.Completed())
	}
	rt := a.DrainResponseTimes()
	if len(rt) != a.Completed() {
		t.Fatalf("window %d != completed %d", len(rt), a.Completed())
	}
	for _, x := range rt {
		if x <= 0 || x > 60 {
			t.Fatalf("implausible response time %v", x)
		}
	}
	// A second drain is empty.
	if len(a.DrainResponseTimes()) != 0 {
		t.Fatal("drain did not reset window")
	}
}

func TestAppDeterministicWithSeed(t *testing.T) {
	run := func() (int, float64) {
		sim := devs.NewSimulator()
		a := New(sim, twoTierConfig(7))
		a.Start()
		sim.RunUntil(30)
		rt := a.DrainResponseTimes()
		return a.Completed(), stats.Mean(rt)
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", n1, m1, n2, m2)
	}
}

func TestAppMoreCPUMeansFasterResponses(t *testing.T) {
	measure := func(alloc float64) float64 {
		sim := devs.NewSimulator()
		cfg := twoTierConfig(3)
		cfg.Tiers[0].InitialAllocation = alloc
		cfg.Tiers[1].InitialAllocation = alloc
		a := New(sim, cfg)
		a.Start()
		sim.RunUntil(120)
		return stats.Percentile(a.DrainResponseTimes(), 90)
	}
	slow := measure(0.7)
	fast := measure(2.5)
	if fast >= slow {
		t.Fatalf("p90 with 2.5GHz (%v) not faster than 0.7GHz (%v)", fast, slow)
	}
}

func TestAppConcurrencyIncreaseRaisesLoad(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(4))
	a.Start()
	sim.RunUntil(60)
	base := stats.Percentile(a.DrainResponseTimes(), 90)
	a.SetConcurrency(80)
	sim.RunUntil(120)
	loaded := stats.Percentile(a.DrainResponseTimes(), 90)
	if loaded <= base {
		t.Fatalf("p90 did not rise after doubling concurrency: %v -> %v", base, loaded)
	}
}

func TestAppConcurrencyDecreaseRetiresClients(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(5))
	a.Start()
	sim.RunUntil(30)
	a.SetConcurrency(5)
	sim.RunUntil(90)
	// After retiring clients, in-flight must never exceed the new level.
	if got := a.InFlight(); got > 5 {
		t.Fatalf("in-flight %d exceeds concurrency 5", got)
	}
	a.DrainResponseTimes()
	before := a.Completed()
	sim.RunUntil(120)
	rate := float64(a.Completed()-before) / 30
	// 5 clients with ~1s cycle time cannot exceed ~5 req/s.
	if rate > 6 {
		t.Fatalf("throughput %v too high for 5 clients", rate)
	}
}

func TestAppSetConcurrencyZeroQuiesces(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(6))
	a.Start()
	sim.RunUntil(30)
	a.SetConcurrency(0)
	sim.RunUntil(60)
	a.DrainResponseTimes()
	before := a.Completed()
	sim.RunUntil(120)
	if a.Completed() != before {
		t.Fatal("requests still completing after concurrency 0")
	}
}

func TestAppAllocationsAccessors(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(8))
	a.SetAllocation(0, 1.7)
	if math.Abs(a.Allocation(0)-1.7) > 1e-12 {
		t.Fatalf("Allocation = %v", a.Allocation(0))
	}
	all := a.Allocations()
	if len(all) != 2 || all[0] != 1.7 {
		t.Fatalf("Allocations = %v", all)
	}
	if a.NumTiers() != 2 {
		t.Fatalf("NumTiers = %d", a.NumTiers())
	}
	if a.Tier(0) == nil {
		t.Fatal("Tier(0) nil")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAppDeterministicDemand(t *testing.T) {
	sim := devs.NewSimulator()
	cfg := Config{
		Name:        "det",
		Tiers:       []TierConfig{{DemandMean: 0.01, DemandCV: 0, InitialAllocation: 1.0}},
		Concurrency: 1,
		ThinkTime:   1.0,
		Seed:        1,
	}
	a := New(sim, cfg)
	a.Start()
	sim.RunUntil(100)
	for _, rt := range a.DrainResponseTimes() {
		if math.Abs(rt-0.01) > 1e-9 {
			t.Fatalf("deterministic single-client response %v, want 0.01", rt)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	sim := devs.NewSimulator()
	for name, f := range map[string]func(){
		"no tiers": func() { New(sim, Config{Concurrency: 1}) },
		"negative concurrency": func() {
			New(sim, Config{Tiers: []TierConfig{{DemandMean: 1}}, Concurrency: -1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAppStartIdempotent(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(9))
	a.Start()
	a.Start()
	sim.RunUntil(20)
	if a.InFlight() > a.Concurrency() {
		t.Fatalf("double Start leaked clients: in-flight %d > %d", a.InFlight(), a.Concurrency())
	}
}

// Interactive response time law sanity check: X = N / (R + Z) in a closed
// network. Throughput measured must match the law within tolerance.
func TestAppInteractiveResponseTimeLaw(t *testing.T) {
	sim := devs.NewSimulator()
	a := New(sim, twoTierConfig(10))
	a.Start()
	sim.RunUntil(100) // warm up
	a.DrainResponseTimes()
	c0 := a.Completed()
	sim.RunUntil(700)
	rt := a.DrainResponseTimes()
	x := float64(a.Completed()-c0) / 600
	r := stats.Mean(rt)
	n := float64(a.Concurrency())
	law := n / (r + 1.0)
	if math.Abs(x-law)/law > 0.15 {
		t.Fatalf("throughput %v violates interactive law %v", x, law)
	}
}

func BenchmarkAppSimulation60s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := devs.NewSimulator()
		a := New(sim, twoTierConfig(11))
		a.Start()
		sim.RunUntil(60)
	}
}
