package appsim

import (
	"math/rand"

	"vdcpower/internal/devs"
)

// OpenWorkload drives an App with Poisson arrivals at a configurable
// rate instead of a closed client population — the traffic model of a
// public-facing service whose users do not wait for each other. The
// paper's testbed uses a closed generator (ab); the open generator is
// the natural library extension for Internet-facing workloads and is
// validated against M/G/1-PS theory in the tests.
type OpenWorkload struct {
	app  *App
	sim  *devs.Simulator
	rng  *rand.Rand
	rate float64
	on   bool
}

// NewOpenWorkload attaches a Poisson source to the app. The app should
// be constructed with Concurrency 0 so no closed clients compete.
func NewOpenWorkload(sim *devs.Simulator, app *App, ratePerSec float64, seed int64) *OpenWorkload {
	if ratePerSec <= 0 {
		//lint:ignore panicpolicy precondition: a nonpositive arrival rate is a programming error
		panic("appsim: arrival rate must be positive")
	}
	return &OpenWorkload{
		app:  app,
		sim:  sim,
		rng:  rand.New(rand.NewSource(seed)),
		rate: ratePerSec,
	}
}

// Rate returns the current arrival rate (requests/second).
func (o *OpenWorkload) Rate() float64 { return o.rate }

// SetRate changes the arrival rate; it takes effect from the next
// arrival.
func (o *OpenWorkload) SetRate(ratePerSec float64) {
	if ratePerSec <= 0 {
		//lint:ignore panicpolicy precondition: a nonpositive arrival rate is a programming error
		panic("appsim: arrival rate must be positive")
	}
	o.rate = ratePerSec
}

// Start begins generating arrivals. It is idempotent.
func (o *OpenWorkload) Start() {
	if o.on {
		return
	}
	o.on = true
	o.scheduleNext()
}

// Stop halts the source after in-flight requests complete.
func (o *OpenWorkload) Stop() { o.on = false }

func (o *OpenWorkload) scheduleNext() {
	if !o.on {
		return
	}
	o.sim.After(o.rng.ExpFloat64()/o.rate, func() {
		if !o.on {
			return
		}
		o.app.injectRequest()
		o.scheduleNext()
	})
}

// injectRequest pushes one externally-generated request through the tier
// chain, recording its response time in the same window the monitor
// drains.
func (a *App) injectRequest() {
	start := a.sim.Now()
	a.inFlight++
	a.visitTier(0, func() {
		a.inFlight--
		a.completed++
		a.window = append(a.window, a.sim.Now()-start)
	})
}
