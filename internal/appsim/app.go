package appsim

import (
	"fmt"
	"math"
	"math/rand"

	"vdcpower/internal/devs"
)

// TierConfig describes one tier of a multi-tier application.
type TierConfig struct {
	// DemandMean is the mean per-request service demand in GHz·s
	// (e.g. 0.03 means 30M cycles per request).
	DemandMean float64
	// DemandCV is the coefficient of variation of the lognormal demand
	// distribution. Zero means deterministic demands.
	DemandCV float64
	// InitialAllocation is the starting CPU allocation in GHz.
	InitialAllocation float64
}

// Config describes a complete application and its closed-loop workload.
type Config struct {
	Name        string
	Tiers       []TierConfig
	Concurrency int     // number of closed-loop clients (ab -c N)
	ThinkTime   float64 // mean exponential think time, seconds
	Seed        int64
}

// App is a running multi-tier application: a chain of PS-queue tiers
// driven by a closed-loop client population.
type App struct {
	Name  string
	sim   *devs.Simulator
	cfg   Config
	tiers []*PSQueue
	rng   *rand.Rand

	concurrency int
	nextClient  int
	inFlight    int

	window    []float64 // response times completed in the current period
	completed int
	started   bool
}

// New constructs an application. Call Start to launch the clients.
func New(sim *devs.Simulator, cfg Config) *App {
	if len(cfg.Tiers) == 0 {
		//lint:ignore panicpolicy constructor precondition: a tierless application is a programming error
		panic("appsim: application needs at least one tier")
	}
	if cfg.Concurrency < 0 {
		//lint:ignore panicpolicy precondition: negative concurrency is a programming error
		panic("appsim: negative concurrency")
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 1.0
	}
	a := &App{
		Name:        cfg.Name,
		sim:         sim,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		concurrency: cfg.Concurrency,
	}
	for _, tc := range cfg.Tiers {
		a.tiers = append(a.tiers, NewPSQueue(sim, tc.InitialAllocation))
	}
	return a
}

// NumTiers returns the number of tiers.
func (a *App) NumTiers() int { return len(a.tiers) }

// Tier exposes tier i's queue (read-mostly; used by monitors and tests).
func (a *App) Tier(i int) *PSQueue { return a.tiers[i] }

// SetAllocation sets the CPU allocation of tier i in GHz. This is the
// control input c_ij of the paper.
func (a *App) SetAllocation(tier int, ghz float64) { a.tiers[tier].SetCapacity(ghz) }

// Allocation returns tier i's current CPU allocation in GHz.
func (a *App) Allocation(tier int) float64 { return a.tiers[tier].Capacity() }

// Allocations returns a copy of all tier allocations.
func (a *App) Allocations() []float64 {
	out := make([]float64, len(a.tiers))
	for i, t := range a.tiers {
		out[i] = t.Capacity()
	}
	return out
}

// Concurrency returns the current client population size.
func (a *App) Concurrency() int { return a.concurrency }

// SetConcurrency changes the client population at run time (the paper's
// workload-increase experiments). Growth spawns clients immediately;
// shrinkage retires clients as their in-flight requests complete.
func (a *App) SetConcurrency(n int) {
	if n < 0 {
		//lint:ignore panicpolicy precondition: negative concurrency is a programming error
		panic("appsim: negative concurrency")
	}
	old := a.concurrency
	a.concurrency = n
	if a.started && n > old {
		for i := old; i < n; i++ {
			a.spawnClient(a.nextClient)
			a.nextClient++
		}
	}
}

// Start launches the closed-loop clients. It is idempotent.
func (a *App) Start() {
	if a.started {
		return
	}
	a.started = true
	for i := 0; i < a.concurrency; i++ {
		a.spawnClient(a.nextClient)
		a.nextClient++
	}
}

// spawnClient starts one client slot with an initial randomized think so
// clients do not arrive in lockstep.
func (a *App) spawnClient(slot int) {
	a.sim.After(a.think(), func() { a.issue(slot) })
}

// think samples an exponential think time.
func (a *App) think() float64 { return a.rng.ExpFloat64() * a.cfg.ThinkTime }

// issue sends one request through the tier chain on behalf of slot.
func (a *App) issue(slot int) {
	if slot >= a.concurrency {
		return // retired while thinking
	}
	start := a.sim.Now()
	a.inFlight++
	a.visitTier(0, func() {
		a.inFlight--
		a.completed++
		a.window = append(a.window, a.sim.Now()-start)
		if slot >= a.concurrency {
			return // retired
		}
		a.sim.After(a.think(), func() { a.issue(slot) })
	})
}

// visitTier runs one request through tier i and then the next.
func (a *App) visitTier(i int, done func()) {
	if i >= len(a.tiers) {
		done()
		return
	}
	a.tiers[i].Submit(a.sampleDemand(i), func() { a.visitTier(i+1, done) })
}

// sampleDemand draws a lognormal service demand for tier i.
func (a *App) sampleDemand(i int) float64 {
	tc := a.cfg.Tiers[i]
	if tc.DemandCV <= 0 {
		return tc.DemandMean
	}
	sigma := math.Sqrt(math.Log(1 + tc.DemandCV*tc.DemandCV))
	mu := math.Log(tc.DemandMean) - sigma*sigma/2
	return math.Exp(mu + sigma*a.rng.NormFloat64())
}

// PauseTier stalls tier i for the given duration — the downtime of a
// live migration of the VM hosting that tier.
func (a *App) PauseTier(tier int, seconds float64) { a.tiers[tier].Pause(seconds) }

// SetDemandMean changes tier i's mean per-request service demand (GHz·s)
// at run time — a workload-mix change such as a software update or a
// shift to heavier queries, which alters the plant's gains and motivates
// online re-identification.
func (a *App) SetDemandMean(tier int, mean float64) {
	if mean <= 0 {
		//lint:ignore panicpolicy precondition: service demand must be positive by construction
		panic("appsim: nonpositive demand mean")
	}
	a.cfg.Tiers[tier].DemandMean = mean
}

// DemandMean returns tier i's current mean per-request service demand.
func (a *App) DemandMean(tier int) float64 { return a.cfg.Tiers[tier].DemandMean }

// InFlight returns the number of requests currently inside the tiers.
func (a *App) InFlight() int { return a.inFlight }

// Completed returns the total number of completed requests.
func (a *App) Completed() int { return a.completed }

// DrainResponseTimes returns the response times (seconds) completed since
// the previous drain and resets the window. This is the paper's
// application-level response time monitor sampled once per control period.
func (a *App) DrainResponseTimes() []float64 {
	w := a.window
	a.window = nil
	return w
}

// String identifies the app for logs.
func (a *App) String() string {
	return fmt.Sprintf("app %q (%d tiers, concurrency %d)", a.Name, len(a.tiers), a.concurrency)
}
