package queueing_test

import (
	"fmt"

	"vdcpower/internal/queueing"
)

func ExampleSolve() {
	// 40 clients with 1 s think time over a two-tier application:
	// web tier 25 ms/visit, database tier 40 ms/visit.
	net := &queueing.Network{ThinkTime: 1.0, Demands: []float64{0.025, 0.040}}
	r, err := queueing.Solve(net, 40)
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput %.1f req/s, mean response %.0f ms\n",
		r.Throughput, 1000*r.ResponseTime)
	// Output: throughput 24.9 req/s, mean response 607 ms
}
