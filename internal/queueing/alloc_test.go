package queueing

// Steady-state zero-allocation gate for the queueing/mva hot path
// (ROADMAP item 2): repeated Solver.Solve calls into a reused Result
// must not touch the heap once the buffers fit the station count.
// Skipped under -race.

import (
	"math"
	"testing"

	"vdcpower/internal/race"
)

func TestSolverZeroAllocSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("AllocsPerRun is meaningless under the race detector")
	}
	net := &Network{ThinkTime: 1.0, Demands: []float64{0.02, 0.05, 0.01}}
	var s Solver
	var res Result
	if err := s.Solve(net, 80, &res); err != nil { // warm the buffers
		t.Fatal(err)
	}
	var cErr error
	allocs := testing.AllocsPerRun(200, func() {
		cErr = s.Solve(net, 80, &res)
	})
	if cErr != nil {
		t.Fatal(cErr)
	}
	if allocs != 0 {
		t.Fatalf("Solver.Solve allocates %v objects/op in steady state, want 0", allocs)
	}
}

// TestSolverMatchesSolve proves the reusable form is purely an
// allocation strategy: across populations and station counts — including
// shrinking the network under a warm solver — it reproduces package
// Solve bit for bit.
func TestSolverMatchesSolve(t *testing.T) {
	var s Solver
	var res Result
	nets := []*Network{
		{ThinkTime: 1, Demands: []float64{0.02, 0.05, 0.01}},
		{ThinkTime: 0.5, Demands: []float64{0.1, 0.03, 0.07, 0.02, 0.04}},
		{ThinkTime: 2, Demands: []float64{0.2}}, // shrink: stale tail must not leak
		{ThinkTime: 0, Demands: []float64{0.05, 0.05}},
	}
	for _, net := range nets {
		for _, n := range []int{0, 1, 7, 64} {
			want, err := Solve(net, n)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Solve(net, n, &res); err != nil {
				t.Fatal(err)
			}
			//lint:ignore floatcompare the reusable solver must be bitwise identical to Solve
			if res.Throughput != want.Throughput || res.ResponseTime != want.ResponseTime {
				t.Fatalf("k=%d n=%d: got X=%v R=%v, want X=%v R=%v",
					len(net.Demands), n, res.Throughput, res.ResponseTime, want.Throughput, want.ResponseTime)
			}
			if len(res.StationResp) != len(want.StationResp) {
				t.Fatalf("k=%d n=%d: station slice length %d, want %d",
					len(net.Demands), n, len(res.StationResp), len(want.StationResp))
			}
			for i := range want.StationResp {
				//lint:ignore floatcompare the reusable solver must be bitwise identical to Solve
				if res.StationResp[i] != want.StationResp[i] ||
					res.QueueLen[i] != want.QueueLen[i] ||
					res.Utilization[i] != want.Utilization[i] {
					t.Fatalf("k=%d n=%d station %d: reused (%v,%v,%v), fresh (%v,%v,%v)",
						len(net.Demands), n, i,
						res.StationResp[i], res.QueueLen[i], res.Utilization[i],
						want.StationResp[i], want.QueueLen[i], want.Utilization[i])
				}
			}
		}
	}
	// A validation failure must not corrupt the next solve.
	bad := &Network{ThinkTime: 1, Demands: []float64{math.NaN()}}
	if err := s.Solve(bad, 5, &res); err == nil {
		t.Fatal("expected validation error")
	}
	good := nets[0]
	want, _ := Solve(good, 9)
	if err := s.Solve(good, 9, &res); err != nil {
		t.Fatal(err)
	}
	//lint:ignore floatcompare reuse after a failed call must be bitwise identical
	if res.Throughput != want.Throughput {
		t.Fatalf("after failed call: X=%v, want %v", res.Throughput, want.Throughput)
	}
}
