// Package queueing provides exact Mean Value Analysis (MVA) for closed
// product-form queueing networks of processor-sharing stations with an
// infinite-server think node. The appsim package's discrete-event
// simulator is validated against these analytical results: a multi-tier
// application under N closed-loop clients is exactly such a network
// (PS stations are BCMP type-2, so the product-form solution is exact
// even with non-exponential service demands).
//
// The solver also powers capacity planning helpers: given per-tier
// service demands, what CPU allocation meets a mean response time target
// at a given concurrency?
package queueing

import (
	"errors"
	"fmt"
	"math"

	"vdcpower/internal/units"
)

// Network is a closed queueing network: N clients cycle through a think
// node (mean ThinkTime) and then visit each station once, in sequence.
type Network struct {
	// ThinkTime is the infinite-server node's mean delay (seconds).
	ThinkTime units.Second
	// Demands holds each PS station's mean service demand (seconds) —
	// for a tier, demand in GHz·s divided by the allocation in GHz.
	Demands []units.Second
}

// Validate checks parameters.
func (n *Network) Validate() error {
	if n.ThinkTime < 0 {
		return errors.New("queueing: negative think time")
	}
	if len(n.Demands) == 0 {
		return errors.New("queueing: no stations")
	}
	for i, d := range n.Demands {
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("queueing: station %d has invalid demand %v", i, d)
		}
	}
	return nil
}

// Result holds the exact MVA solution at population N.
type Result struct {
	N            int
	Throughput   float64          // clients per second
	ResponseTime units.Second     // total time in stations (excludes think)
	StationResp  []units.Second   // per-station residence time
	QueueLen     []float64        // per-station mean number of clients
	Utilization  []units.Fraction // per-station utilization
}

// Solve runs exact MVA for population n. Complexity O(n · stations).
// It is the allocating convenience form of Solver.Solve.
func Solve(net *Network, n int) (Result, error) {
	var s Solver
	var res Result
	if err := s.Solve(net, n, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Solver runs exact MVA through reusable scratch: a zero Solver is ready
// to use, and repeated Solve calls through the same Solver (and the same
// Result) allocate nothing once the buffers reach the largest station
// count seen (ROADMAP item 2). A Solver serves one call at a time.
type Solver struct {
	q []float64 // queue lengths at population m-1
}

// Solve runs exact MVA for population n into res, resizing res's slices
// only when the station count outgrows their capacity.
//
//vdc:hotpath queueing/mva
func (s *Solver) Solve(net *Network, n int, res *Result) error {
	if err := net.Validate(); err != nil {
		return err
	}
	if n < 0 {
		return errors.New("queueing: negative population")
	}
	k := len(net.Demands)
	if cap(s.q) < k {
		s.q = make([]float64, k)
	}
	q := s.q[:k]
	clear(q)
	res.N = n
	res.Throughput = 0
	res.ResponseTime = 0
	res.StationResp = growSeconds(res.StationResp, k)
	res.QueueLen = growFloats(res.QueueLen, k)
	res.Utilization = growFractions(res.Utilization, k)
	for m := 1; m <= n; m++ {
		total := net.ThinkTime
		for i := 0; i < k; i++ {
			// PS (like FCFS-exponential) residence: service plus the work
			// of customers already there.
			res.StationResp[i] = net.Demands[i] * (1 + q[i])
			total += res.StationResp[i]
		}
		x := float64(m) / total
		for i := 0; i < k; i++ {
			q[i] = x * res.StationResp[i]
		}
		res.Throughput = x
	}
	for i := 0; i < k; i++ {
		res.ResponseTime += res.StationResp[i]
		res.QueueLen[i] = q[i]
		res.Utilization[i] = res.Throughput * net.Demands[i]
	}
	return nil
}

// growSeconds returns buf with length n and zeroed contents, reusing its
// backing array when the capacity suffices.
func growSeconds(buf []units.Second, n int) []units.Second {
	if cap(buf) < n {
		buf = make([]units.Second, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growFloats is growSeconds for plain float64 slices.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growFractions is growSeconds for utilization slices.
func growFractions(buf []units.Fraction, n int) []units.Fraction {
	if cap(buf) < n {
		buf = make([]units.Fraction, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// BottleneckBounds returns the asymptotic bounds of the network: the
// maximum throughput 1/max(D_i) and the response-time asymptote
// N·Dmax − Z for large N (balanced job bounds are not needed here).
func BottleneckBounds(net *Network, n int) (maxThroughput float64, minResponse units.Second, err error) {
	if err := net.Validate(); err != nil {
		return 0, 0, err
	}
	dmax, dsum := 0.0, 0.0
	for _, d := range net.Demands {
		dsum += d
		if d > dmax {
			dmax = d
		}
	}
	maxThroughput = 1 / dmax
	minResponse = math.Max(dsum, float64(n)*dmax-net.ThinkTime)
	return maxThroughput, minResponse, nil
}

// AllocationFor searches for a uniform scaling of CPU allocations that
// achieves the target mean response time at population n, given per-tier
// service demands in GHz·s. It returns the per-tier allocations (GHz)
// scaledAlloc = base · factor where base is proportional to the demand
// (balanced utilization), the paper's intuition that heavier tiers need
// proportionally more CPU. Returns an error if the target is infeasible
// within maxAllocGHz per tier.
func AllocationFor(demandGHzS []units.GHzSecond, thinkTime units.Second, n int, targetResp units.Second, maxAllocGHz units.Hertz) ([]units.Hertz, error) {
	if targetResp <= 0 {
		return nil, errors.New("queueing: nonpositive target")
	}
	if len(demandGHzS) == 0 {
		return nil, errors.New("queueing: no tiers")
	}
	base := make([]units.GHzSecond, len(demandGHzS))
	copy(base, demandGHzS)
	respAt := func(factor float64) (units.Second, error) {
		net := &Network{ThinkTime: thinkTime, Demands: make([]units.Second, len(base))}
		for i, d := range demandGHzS {
			// factor converts a GHz·s demand into a GHz allocation, so
			// the product's dimension is asserted at the boundary.
			alloc := units.Hertz(base[i] * factor)
			net.Demands[i] = d / alloc // GHz·s per GHz: seconds per visit
		}
		r, err := Solve(net, n)
		if err != nil {
			return 0, err
		}
		return r.ResponseTime, nil
	}
	// The response time is decreasing in the scale factor: bisect.
	lo, hi := 1e-3, maxAllocGHz/maxOf(base)
	rHi, err := respAt(hi)
	if err != nil {
		return nil, err
	}
	if rHi > targetResp {
		return nil, fmt.Errorf("queueing: target %vs infeasible even at %v GHz", targetResp, maxAllocGHz)
	}
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		r, err := respAt(mid)
		if err != nil {
			return nil, err
		}
		if r > targetResp {
			lo = mid
		} else {
			hi = mid
		}
	}
	out := make([]units.Hertz, len(base))
	for i := range out {
		out[i] = base[i] * hi
	}
	return out, nil
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
