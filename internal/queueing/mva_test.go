package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"vdcpower/internal/appsim"
	"vdcpower/internal/devs"
	"vdcpower/internal/stats"
)

func TestValidate(t *testing.T) {
	good := &Network{ThinkTime: 1, Demands: []float64{0.1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, n := range map[string]*Network{
		"negative think": {ThinkTime: -1, Demands: []float64{0.1}},
		"no stations":    {ThinkTime: 1},
		"zero demand":    {ThinkTime: 1, Demands: []float64{0}},
		"nan demand":     {ThinkTime: 1, Demands: []float64{math.NaN()}},
	} {
		if err := n.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSolveSingleCustomer(t *testing.T) {
	// One customer never queues: response = sum of demands.
	net := &Network{ThinkTime: 2, Demands: []float64{0.3, 0.5}}
	r, err := Solve(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ResponseTime-0.8) > 1e-12 {
		t.Fatalf("R = %v, want 0.8", r.ResponseTime)
	}
	wantX := 1.0 / (2 + 0.8)
	if math.Abs(r.Throughput-wantX) > 1e-12 {
		t.Fatalf("X = %v, want %v", r.Throughput, wantX)
	}
}

func TestSolveZeroPopulation(t *testing.T) {
	net := &Network{ThinkTime: 1, Demands: []float64{0.1}}
	r, err := Solve(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput != 0 {
		t.Fatalf("X = %v", r.Throughput)
	}
}

func TestSolveErrors(t *testing.T) {
	net := &Network{ThinkTime: 1, Demands: []float64{0.1}}
	if _, err := Solve(net, -1); err == nil {
		t.Fatal("negative population accepted")
	}
	if _, err := Solve(&Network{}, 1); err == nil {
		t.Fatal("invalid network accepted")
	}
}

func TestSolveMatchesKnownMM1Limit(t *testing.T) {
	// With a huge think time the station sees Poisson-like arrivals at
	// rate ≈ N/Z; utilization ρ = N·D/Z and mean response ≈ D/(1−ρ).
	net := &Network{ThinkTime: 100, Demands: []float64{0.5}}
	n := 100 // ρ ≈ 0.5
	r, err := Solve(net, n)
	if err != nil {
		t.Fatal(err)
	}
	approx := 0.5 / (1 - 0.5)
	if math.Abs(r.ResponseTime-approx)/approx > 0.1 {
		t.Fatalf("R = %v, want ≈%v", r.ResponseTime, approx)
	}
}

func TestThroughputSaturatesAtBottleneck(t *testing.T) {
	net := &Network{ThinkTime: 1, Demands: []float64{0.2, 0.05}}
	r, err := Solve(net, 200)
	if err != nil {
		t.Fatal(err)
	}
	maxX, _, err := BottleneckBounds(net, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput > maxX+1e-9 {
		t.Fatalf("X = %v exceeds bottleneck bound %v", r.Throughput, maxX)
	}
	if r.Throughput < 0.95*maxX {
		t.Fatalf("X = %v far below saturation %v at N=200", r.Throughput, maxX)
	}
}

// Property: throughput is nondecreasing and response time nondecreasing
// in the population (standard MVA monotonicity).
func TestMVAMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		d1 := 0.01 + float64(seed%97)/970.0
		d2 := 0.01 + float64(seed%53)/530.0
		net := &Network{ThinkTime: 1, Demands: []float64{d1, d2}}
		prevX, prevR := 0.0, 0.0
		for n := 1; n <= 40; n++ {
			r, err := Solve(net, n)
			if err != nil {
				return false
			}
			if r.Throughput < prevX-1e-12 || r.ResponseTime < prevR-1e-12 {
				return false
			}
			prevX, prevR = r.Throughput, r.ResponseTime
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Little's law holds at every station: Q_i = X · R_i.
func TestLittlesLawProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		d := 0.02 + float64(seed%89)/890.0
		net := &Network{ThinkTime: 0.5, Demands: []float64{d, d / 2, d / 3}}
		r, err := Solve(net, 25)
		if err != nil {
			return false
		}
		for i := range net.Demands {
			if math.Abs(r.QueueLen[i]-r.Throughput*r.StationResp[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Cross-validation: the discrete-event simulator must agree with the
// exact analytical solution — the strongest correctness check available
// for the appsim substrate.
func TestSimulatorMatchesMVA(t *testing.T) {
	const (
		think = 1.0
		a1    = 1.2 // GHz web tier
		a2    = 1.5 // GHz db tier
		d1    = 0.025
		d2    = 0.040
		n     = 40
	)
	net := &Network{ThinkTime: think, Demands: []float64{d1 / a1, d2 / a2}}
	exact, err := Solve(net, n)
	if err != nil {
		t.Fatal(err)
	}

	sim := devs.NewSimulator()
	app := appsim.New(sim, appsim.Config{
		Name: "xval",
		Tiers: []appsim.TierConfig{
			// CV=1 exponential-like demands; PS is insensitive to the
			// demand distribution, so the product form applies anyway.
			{DemandMean: d1, DemandCV: 1.0, InitialAllocation: a1},
			{DemandMean: d2, DemandCV: 1.0, InitialAllocation: a2},
		},
		Concurrency: n,
		ThinkTime:   think,
		Seed:        123,
	})
	app.Start()
	sim.RunUntil(200) // warm up
	app.DrainResponseTimes()
	c0 := app.Completed()
	sim.RunUntil(1600)
	rt := app.DrainResponseTimes()
	simX := float64(app.Completed()-c0) / 1400
	simR := stats.Mean(rt)

	if math.Abs(simX-exact.Throughput)/exact.Throughput > 0.05 {
		t.Fatalf("throughput: sim %v vs MVA %v", simX, exact.Throughput)
	}
	if math.Abs(simR-exact.ResponseTime)/exact.ResponseTime > 0.08 {
		t.Fatalf("response: sim %v vs MVA %v", simR, exact.ResponseTime)
	}
}

func TestAllocationForMeetsTarget(t *testing.T) {
	demands := []float64{0.025, 0.040}
	alloc, err := AllocationFor(demands, 1.0, 40, 0.5, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the returned allocation actually achieves ≤ target.
	net := &Network{ThinkTime: 1.0, Demands: []float64{demands[0] / alloc[0], demands[1] / alloc[1]}}
	r, err := Solve(net, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r.ResponseTime > 0.5+1e-6 {
		t.Fatalf("allocation %v yields R=%v > 0.5", alloc, r.ResponseTime)
	}
	// And is not wildly over-provisioned (within 10% of the target from
	// below would mean the bisection converged).
	if r.ResponseTime < 0.4 {
		t.Fatalf("over-provisioned: R=%v for target 0.5", r.ResponseTime)
	}
}

func TestAllocationForInfeasible(t *testing.T) {
	// A 1 ms target at concurrency 100 with tiny max allocation.
	if _, err := AllocationFor([]float64{0.05}, 1.0, 100, 0.001, 0.5); err == nil {
		t.Fatal("infeasible target accepted")
	}
}

func TestAllocationForValidation(t *testing.T) {
	if _, err := AllocationFor(nil, 1, 10, 1, 4); err == nil {
		t.Fatal("no tiers accepted")
	}
	if _, err := AllocationFor([]float64{0.1}, 1, 10, 0, 4); err == nil {
		t.Fatal("zero target accepted")
	}
}

func BenchmarkSolveN100(b *testing.B) {
	net := &Network{ThinkTime: 1, Demands: []float64{0.02, 0.04, 0.01}}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(net, 100); err != nil {
			b.Fatal(err)
		}
	}
}
