package check

import "fmt"

// GuardInvariants returns the bounded-execution laws introduced with the
// guard layer: a step's event drain never silently overruns its budget,
// and exhaustion is always converted into a failed step (never swallowed,
// never invented).
func GuardInvariants() []Invariant {
	return []Invariant{guardBudgetBounded{}}
}

// guardBudgetBounded is the guard/step-budget-bounded law. For every
// EvGuard event it checks that (1) the drain never fired more events than
// its budget without tripping, (2) a same-instant run never exceeded its
// bound without tripping, and (3) "tripped" and "step aborted" imply each
// other — a trip the harness ignored would be a silent partial period,
// and an abort without a trip would be a fabricated failure.
type guardBudgetBounded struct{}

func (guardBudgetBounded) Name() string { return "guard/step-budget-bounded" }

func (guardBudgetBounded) Check(ev Event) error {
	if ev.Kind != EvGuard || ev.Guard == nil {
		return nil
	}
	g := ev.Guard
	if g.Events < 0 || g.SameTime < 0 {
		return fmt.Errorf("negative drain accounting: events=%d same-time=%d", g.Events, g.SameTime)
	}
	if g.MaxEvents > 0 && g.Events > g.MaxEvents && !g.Tripped {
		return fmt.Errorf("drain fired %d events past its %d-event budget without tripping", g.Events, g.MaxEvents)
	}
	if g.MaxSameTime > 0 && g.SameTime > g.MaxSameTime && !g.Tripped {
		return fmt.Errorf("same-instant run of %d exceeded the %d bound without tripping", g.SameTime, g.MaxSameTime)
	}
	if g.Tripped && !g.Aborted {
		return fmt.Errorf("budget exhaustion (%d events, same-instant run %d) was not converted into a failed step", g.Events, g.SameTime)
	}
	if g.Aborted && !g.Tripped {
		return fmt.Errorf("step aborted without a budget trip")
	}
	return nil
}
